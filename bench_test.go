// Benchmarks that regenerate the paper's tables and figures through the
// testing.B interface. Each figure panel of the evaluation has a benchmark
// whose sub-benchmarks are its (scheme, thread-count) cells; every iteration
// runs one short trial and the reported custom metrics are the quantities
// the paper plots (Mops/s for the throughput figures, allocated megabytes
// for the memory figure).
//
// These benchmarks use scaled-down key ranges and short trials so that
// `go test -bench=. -benchmem` completes in minutes; the full-scale sweeps
// (key ranges 10^4/10^6/2*10^5, longer trials, full thread sweep) are
// produced by `go run ./cmd/reclaimbench`, and the measured results are
// recorded in EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/recordmgr"
)

// benchDuration is the length of one trial iteration.
const benchDuration = 50 * time.Millisecond

// benchKeyRangeSmall / Large are the scaled stand-ins for the paper's
// 10^4 and 10^6 (and 2*10^5) key ranges.
const (
	benchKeyRangeSmall = 4 << 10
	benchKeyRangeLarge = 64 << 10
)

// benchThreads returns the two thread counts benchmarked per cell: one
// uncontended and one using every hardware thread.
func benchThreads() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// runCells runs one sub-benchmark per (scheme, threads) cell of a panel.
func runCells(b *testing.B, ds string, keyRange int64, mix bench.Workload, alloc recordmgr.AllocatorKind, usePool bool) {
	b.Helper()
	mix.KeyRange = keyRange
	for _, scheme := range bench.SupportedSchemes(ds) {
		for _, threads := range benchThreads() {
			name := fmt.Sprintf("%s/threads=%d", scheme, threads)
			b.Run(name, func(b *testing.B) {
				var totalOps int64
				var elapsed time.Duration
				for i := 0; i < b.N; i++ {
					res, err := bench.RunTrial(bench.Config{
						DataStructure: ds,
						Scheme:        scheme,
						Threads:       threads,
						Duration:      benchDuration,
						Workload:      mix,
						Allocator:     alloc,
						UsePool:       usePool,
						Seed:          int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					totalOps += res.Ops
					elapsed += res.Elapsed
				}
				if elapsed > 0 {
					b.ReportMetric(float64(totalOps)/elapsed.Seconds()/1e6, "Mops/s")
				}
			})
		}
	}
}

// --- Figure 8 (left): Experiment 1, reclamation overhead without reuse ---

func BenchmarkExp1_BST_LargeRange_Update50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeLarge, bench.MixUpdateHeavy, recordmgr.AllocBump, false)
}

func BenchmarkExp1_BST_SmallRange_Update50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocBump, false)
}

func BenchmarkExp1_BST_SmallRange_Read50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeSmall, bench.MixReadHeavy, recordmgr.AllocBump, false)
}

func BenchmarkExp1_SkipList_Update50(b *testing.B) {
	runCells(b, bench.DSSkipList, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocBump, false)
}

// --- Figure 8 (right) and Figure 9 (left): Experiment 2, bump allocator + pool ---

func BenchmarkExp2_BST_LargeRange_Update50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeLarge, bench.MixUpdateHeavy, recordmgr.AllocBump, true)
}

func BenchmarkExp2_BST_SmallRange_Update50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocBump, true)
}

func BenchmarkExp2_BST_SmallRange_Read50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeSmall, bench.MixReadHeavy, recordmgr.AllocBump, true)
}

func BenchmarkExp2_SkipList_Update50(b *testing.B) {
	runCells(b, bench.DSSkipList, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocBump, true)
}

// BenchmarkExp2_BST_Oversubscribed64 reproduces the Figure 9 (left) regime:
// 64 worker threads on however many hardware threads this machine has.
func BenchmarkExp2_BST_Oversubscribed64(b *testing.B) {
	for _, scheme := range bench.SupportedSchemes(bench.DSBST) {
		b.Run(scheme, func(b *testing.B) {
			var totalOps int64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunTrial(bench.Config{
					DataStructure: bench.DSBST,
					Scheme:        scheme,
					Threads:       64,
					Duration:      benchDuration,
					Workload:      bench.Workload{InsertPct: 50, DeletePct: 50, KeyRange: benchKeyRangeLarge, PrefillFraction: 0.5},
					Allocator:     recordmgr.AllocBump,
					UsePool:       true,
					Seed:          int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				totalOps += res.Ops
				elapsed += res.Elapsed
			}
			if elapsed > 0 {
				b.ReportMetric(float64(totalOps)/elapsed.Seconds()/1e6, "Mops/s")
			}
		})
	}
}

// --- Figure 10: Experiment 3, heap allocator (malloc stand-in) + pool ---

func BenchmarkExp3_BST_SmallRange_Update50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocHeap, true)
}

func BenchmarkExp3_BST_SmallRange_Read50(b *testing.B) {
	runCells(b, bench.DSBST, benchKeyRangeSmall, bench.MixReadHeavy, recordmgr.AllocHeap, true)
}

func BenchmarkExp3_SkipList_Update50(b *testing.B) {
	runCells(b, bench.DSSkipList, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocHeap, true)
}

// --- Figure 9 (right): memory allocated for records under oversubscription ---

func BenchmarkFig9_MemoryFootprint(b *testing.B) {
	threads := 2 * runtime.NumCPU()
	for _, scheme := range []string{recordmgr.SchemeDEBRA, recordmgr.SchemeDEBRAPlus, recordmgr.SchemeHP} {
		b.Run(fmt.Sprintf("%s/threads=%d", scheme, threads), func(b *testing.B) {
			var bytes, neut int64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunTrial(bench.Config{
					DataStructure: bench.DSBST,
					Scheme:        scheme,
					Threads:       threads,
					Duration:      benchDuration,
					Workload:      bench.Workload{InsertPct: 50, DeletePct: 50, KeyRange: benchKeyRangeSmall, PrefillFraction: 0.5},
					Allocator:     recordmgr.AllocBump,
					UsePool:       true,
					Seed:          int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes += res.AllocatedBytes
				neut += res.Reclaimer.Neutralizations
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/(1<<20), "alloc-MB/trial")
			b.ReportMetric(float64(neut)/float64(b.N), "neutralizations/trial")
		})
	}
}

// --- Hash map panels (beyond the paper): every scheme, incl. EBR/QSBR ---

func BenchmarkHashMap_LargeRange_Update50(b *testing.B) {
	runCells(b, bench.DSHashMap, benchKeyRangeLarge, bench.MixUpdateHeavy, recordmgr.AllocBump, true)
}

func BenchmarkHashMap_SmallRange_Update50(b *testing.B) {
	runCells(b, bench.DSHashMap, benchKeyRangeSmall, bench.MixUpdateHeavy, recordmgr.AllocBump, true)
}

func BenchmarkHashMap_SmallRange_Read50(b *testing.B) {
	runCells(b, bench.DSHashMap, benchKeyRangeSmall, bench.MixReadHeavy, recordmgr.AllocBump, true)
}

// BenchmarkHashMap_GrowFromDefault measures the incremental-resize regime:
// the table starts at the package default and doubles its way up (with lazy
// dummy splicing) inside the measured phase. No prefill — prefilling would
// grow the table before the clock starts.
func BenchmarkHashMap_GrowFromDefault(b *testing.B) {
	for _, scheme := range bench.SupportedSchemes(bench.DSHashMap) {
		b.Run(scheme, func(b *testing.B) {
			var totalOps int64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunTrial(bench.Config{
					DataStructure: bench.DSHashMap,
					Scheme:        scheme,
					Threads:       runtime.NumCPU(),
					Duration:      benchDuration,
					Workload:      bench.Workload{InsertPct: 50, DeletePct: 50, KeyRange: benchKeyRangeLarge, PrefillFraction: 0},
					Allocator:     recordmgr.AllocBump,
					UsePool:       true,
					Seed:          int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				totalOps += res.Ops
				elapsed += res.Elapsed
			}
			if elapsed > 0 {
				b.ReportMetric(float64(totalOps)/elapsed.Seconds()/1e6, "Mops/s")
			}
		})
	}
}

// --- Figure 2: qualitative scheme comparison ---

func BenchmarkFigure2SchemesTable(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = core.RenderFigureTwo(recordmgr.Properties())
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// --- Reclaimer micro-benchmarks: per-operation and per-retire overhead ---

type microRec struct{ pad [4]int64 }

func BenchmarkReclaimerOperationOverhead(b *testing.B) {
	for _, scheme := range recordmgr.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[microRec](recordmgr.Config{Scheme: scheme, Threads: 1, UsePool: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.LeaveQstate(0)
				mgr.EnterQstate(0)
			}
		})
	}
}

func BenchmarkReclaimerRetireFree(b *testing.B) {
	for _, scheme := range recordmgr.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[microRec](recordmgr.Config{Scheme: scheme, Threads: 1, UsePool: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.LeaveQstate(0)
				rec := mgr.Allocate(0)
				mgr.Retire(0, rec)
				mgr.EnterQstate(0)
			}
		})
	}
}
