// Hashmap quickstart: build a Record Manager, plug it into the lock-free
// split-ordered hash map, and run concurrent workers while the table resizes
// itself incrementally under load. As everywhere in this module, the
// reclamation scheme — including the neutralizing DEBRA+ — is the single
// string constant below.
package main

import (
	"fmt"
	"sync"

	"repro/internal/ds/hashmap"
	"repro/internal/recordmgr"
)

const (
	// scheme is the reclamation scheme behind the map. The hash map runs
	// with all six: "none", "ebr", "qsbr", "debra", "debra+" or "hp".
	scheme  = recordmgr.SchemeDEBRAPlus
	workers = 4
	keys    = 20_000
)

func main() {
	mgr := recordmgr.MustBuild[hashmap.Node[string]](recordmgr.Config{
		Scheme:  scheme,
		Threads: workers,
		UsePool: true,
	})
	// Start with the default tiny table so incremental resizing (lock-free
	// table doubling plus lazy bucket splicing) happens under full load.
	m := hashmap.New(mgr, workers)

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			base := int64(tid) * keys
			for i := int64(0); i < keys; i++ {
				key := base + i
				m.Insert(tid, key, fmt.Sprintf("value-%d", key))
				if i%2 == 0 {
					m.Delete(tid, key)
				}
				m.Contains(tid, key-1)
			}
		}(tid)
	}
	wg.Wait()

	if err := m.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("scheme: %s\n", scheme)
	fmt.Printf("live keys: %d (count %d), buckets: %d\n", m.Len(), m.Count(), m.Buckets())
	ds := m.Stats()
	fmt.Printf("map ops: restarts=%d unlinks=%d resizes=%d dummies=%d\n",
		ds.Restarts, ds.Unlinks, ds.Resizes, ds.Dummies)
	st := mgr.Stats()
	fmt.Printf("records: allocated=%d reused=%d retired=%d freed=%d in-limbo=%d neutralizations=%d\n",
		st.Alloc.Allocated, st.Pool.Reused, st.Reclaimer.Retired,
		st.Reclaimer.Freed, st.Reclaimer.Limbo, st.Reclaimer.Neutralizations)
}
