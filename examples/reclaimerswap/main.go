// Reclaimerswap runs the identical BST workload under every reclamation
// scheme by changing only the Record Manager construction — the paper's
// "interchange schemes by changing a single line of code" demonstration —
// and prints throughput and memory behaviour side by side.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ds/bst"
	"repro/internal/recordmgr"
)

const (
	keyRange = 1 << 14
	duration = 300 * time.Millisecond
)

func main() {
	threads := runtime.NumCPU()
	if threads < 2 {
		threads = 2
	}
	fmt.Printf("BST, %d threads, 50%% insert / 50%% delete, key range %d, %v per scheme\n\n",
		threads, keyRange, duration)
	fmt.Printf("%-8s %12s %14s %14s %12s %12s\n", "scheme", "Mops/s", "allocated", "freed", "in-limbo", "reused")

	for _, scheme := range []string{
		recordmgr.SchemeNone,
		recordmgr.SchemeEBR,
		recordmgr.SchemeQSBR,
		recordmgr.SchemeDEBRA,
		recordmgr.SchemeDEBRAPlus,
		recordmgr.SchemeHP,
	} {
		// The one line that changes between schemes:
		mgr := recordmgr.MustBuild[bst.Record[int64]](recordmgr.Config{Scheme: scheme, Threads: threads, UsePool: true})

		tree := bst.New(mgr)
		ops := run(tree, threads)
		st := mgr.Stats()
		fmt.Printf("%-8s %12.2f %14d %14d %12d %12d\n",
			scheme,
			float64(ops)/duration.Seconds()/1e6,
			st.Alloc.Allocated,
			st.Reclaimer.Freed,
			st.Reclaimer.Limbo,
			st.Pool.Reused,
		)
	}
}

// run drives the tree with an update-heavy workload and returns the number
// of completed operations.
func run(tree *bst.Tree[int64], threads int) int64 {
	// Prefill to half the key range.
	for k := int64(0); k < keyRange; k += 2 {
		tree.Insert(0, k, k)
	}
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) + 42))
			n := int64(0)
			for !stop.Load() {
				k := rng.Int63n(keyRange)
				if rng.Intn(2) == 0 {
					tree.Insert(tid, k, k)
				} else {
					tree.Delete(tid, k)
				}
				n++
			}
			total.Add(n)
		}(tid)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	return total.Load()
}
