// Neutralization demonstrates the difference between DEBRA and DEBRA+ that
// motivates the paper: a worker that stalls in the middle of an operation.
//
// With DEBRA, the stalled worker's epoch announcement never changes, so no
// other worker can reclaim memory: the limbo count and the allocator
// footprint grow for as long as the stall lasts. With DEBRA+, the other
// workers neutralize the stalled worker with a (simulated) signal, keep
// advancing the epoch, and memory stays bounded; when the stalled worker
// finally resumes, it is interrupted at its next checkpoint, runs its
// recovery code and simply retries its operation.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/bst"
	"repro/internal/pool"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/debraplus"
)

const (
	workers  = 4
	keyRange = 1 << 12
	runFor   = 400 * time.Millisecond
)

type rec = bst.Record[int64]

func main() {
	fmt.Println("A worker stalls mid-operation while the others keep updating the tree.")
	fmt.Println()

	limbo, footprint, neutral := runWithScheme("debra")
	fmt.Printf("DEBRA : in-limbo records at end = %8d, bytes allocated = %10d, neutralizations = %d\n",
		limbo, footprint, neutral)

	limbo, footprint, neutral = runWithScheme("debra+")
	fmt.Printf("DEBRA+: in-limbo records at end = %8d, bytes allocated = %10d, neutralizations = %d\n",
		limbo, footprint, neutral)

	fmt.Println()
	fmt.Println("DEBRA+ keeps garbage bounded by neutralizing the stalled worker (Figure 9, right).")
}

// runWithScheme runs the stall scenario and returns the final limbo size,
// allocated bytes and neutralization count.
func runWithScheme(scheme string) (limbo, bytes, neutralizations int64) {
	alloc := arena.NewBump[rec](workers, 0)
	pl := pool.New[rec](workers, alloc)
	var rcl core.Reclaimer[rec]
	switch scheme {
	case "debra":
		rcl = debra.New[rec](workers, pl, debra.WithIncrThresh(16))
	case "debra+":
		rcl = debraplus.New[rec](workers, pl,
			debraplus.WithIncrThresh(16),
			debraplus.WithSuspectThresholdBlocks(1),
			debraplus.WithScanThresholdBlocks(1))
	default:
		panic("unknown scheme " + scheme)
	}
	tree := bst.New(core.NewRecordManager[rec](alloc, pl, rcl))

	// Worker 0 stalls in the middle of an operation: it announces the
	// current epoch (leaves its quiescent state) and then goes to sleep,
	// exactly like a thread preempted inside a data structure operation.
	rcl.LeaveQstate(0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for tid := 1; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)))
			for !stop.Load() {
				k := rng.Int63n(keyRange)
				if rng.Intn(2) == 0 {
					tree.Insert(tid, k, k)
				} else {
					tree.Delete(tid, k)
				}
			}
		}(tid)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	st := tree.Manager().Stats()
	return st.Reclaimer.Limbo, st.Alloc.AllocatedBytes, st.Reclaimer.Neutralizations
}
