// Kvstore builds a small concurrent key-value store on top of the lock-free
// hash map and drives it the way a real server runs: with a churning worker
// pool. Worker goroutines come and go — each one binds itself to a thread
// slot with AcquireHandle, serves a bounded burst of get/put/delete
// "requests" through the slot-bound handle, releases the slot (which flushes
// its retire buffer and returns its pool cache) and exits; a supervisor
// immediately starts a replacement. No goroutine is hand-wired to a dense
// thread id, and the store never needs to know its peak goroutine count —
// only the slot capacity (recordmgr.Config.MaxThreads). The choice of
// reclamation scheme stays a one-line configuration detail.
//
// Request tallies are kept in per-session locals and merged when each
// session ends — the per-request atomic counters of the old example are
// gone, matching the single-writer counter discipline of the rest of the
// stack.
//
// This is the in-process miniature of cmd/kvserver: the same burst contract
// served over TCP, with partitioned namespaces and wire-level stats
// (internal/kvservice; docs/OPERATIONS.md).
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ds/hashmap"
	"repro/internal/recordmgr"
)

// Store is a minimal concurrent KV store keyed by int64.
type Store struct {
	m   *hashmap.Map[string]
	mgr *hashmap.Manager[string]
}

// NewStore creates a store with the given reclamation scheme and slot
// capacity. workers is the nominal concurrency (sizes the retire batching);
// maxSlots is the registry capacity the churning goroutines draw from.
func NewStore(scheme string, workers, maxSlots int) *Store {
	mgr := recordmgr.MustBuild[hashmap.Node[string]](recordmgr.Config{
		Scheme:     scheme,
		Threads:    workers,
		MaxThreads: maxSlots,
		UsePool:    true,
	})
	return &Store{m: hashmap.New[string](mgr, workers), mgr: mgr}
}

// session is one short-lived worker goroutine's service loop: bind a slot,
// serve up to maxRequests requests, release the slot, report the tally.
type tally struct{ gets, puts, deletes, sessions int64 }

func (s *Store) session(rng *rand.Rand, keySpace int64, maxRequests int, stop *atomic.Bool) tally {
	h := s.m.AcquireHandle()
	defer s.m.ReleaseHandle(h)
	var t tally
	t.sessions = 1
	for i := 0; i < maxRequests && !stop.Load(); i++ {
		key := rng.Int63n(keySpace)
		switch rng.Intn(10) {
		case 0, 1, 2: // 30% writes
			h.Insert(key, fmt.Sprintf("session-%d", key))
			t.puts++
		case 3: // 10% deletes
			h.Delete(key)
			t.deletes++
		default: // 60% reads
			_, _ = h.Get(key)
			t.gets++
		}
	}
	return t
}

func main() {
	const (
		scheme             = recordmgr.SchemeDEBRAPlus
		workers            = 4      // concurrent sessions
		maxSlots           = 8      // slot capacity the sessions draw from
		keySpace           = 50_000 // key universe
		requestsPerSession = 4096   // a session's lifetime, in requests
		runFor             = 500 * time.Millisecond
	)
	store := NewStore(scheme, workers, maxSlots)

	var stop atomic.Bool
	var wg sync.WaitGroup
	results := make(chan tally, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 3))
			var total tally
			// The churn loop: every iteration is a fresh "goroutine" in
			// spirit — slot acquired, bounded service burst, slot released.
			for !stop.Load() {
				t := store.session(rng, keySpace, requestsPerSession, &stop)
				total.gets += t.gets
				total.puts += t.puts
				total.deletes += t.deletes
				total.sessions += t.sessions
			}
			results <- total
		}(w)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	close(results)

	var total tally
	for t := range results {
		total.gets += t.gets
		total.puts += t.puts
		total.deletes += t.deletes
		total.sessions += t.sessions
	}

	st := store.mgr.Stats()
	requests := total.gets + total.puts + total.deletes
	fmt.Printf("served %d requests (%d gets, %d puts, %d deletes) across %d sessions in %v\n",
		requests, total.gets, total.puts, total.deletes, total.sessions, runFor)
	fmt.Printf("slot registry: capacity=%d live-after-shutdown=%d\n",
		store.mgr.SlotRegistry().Capacity(), store.mgr.SlotRegistry().Live())
	fmt.Printf("store size: %d keys in %d buckets\n", store.m.Len(), store.m.Buckets())
	fmt.Printf("records: allocated=%d reused=%d retired=%d freed=%d in-limbo=%d neutralizations=%d\n",
		st.Alloc.Allocated, st.Pool.Reused, st.Reclaimer.Retired, st.Reclaimer.Freed,
		st.Reclaimer.Limbo, st.Reclaimer.Neutralizations)
	// Close before validating so the reclamation pipeline shuts down on the
	// failure path too (Close only drains retired — unreachable — records,
	// so the structural validation below is unaffected).
	store.mgr.Close()
	fmt.Println("reclamation pipeline closed")
	if err := store.m.Validate(); err != nil {
		fmt.Println("validation failed:", err)
		return
	}
	fmt.Println("map structure validated cleanly")
}
