// Kvstore builds a small concurrent key-value store on top of the lock-free
// BST and drives it with a realistic mixed workload: a pool of worker
// goroutines serving get/put/delete "requests", a background reporter, and a
// clean shutdown that prints reclamation statistics. It shows how a real
// application wires dense thread ids to goroutines and how the choice of
// reclamation scheme stays a configuration detail.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ds/bst"
	"repro/internal/recordmgr"
)

// Store is a minimal concurrent KV store keyed by int64.
type Store struct {
	tree    *bst.Tree[string]
	mgr     *bst.Manager[string]
	gets    atomic.Int64
	puts    atomic.Int64
	deletes atomic.Int64
}

// NewStore creates a store served by n worker threads using the given
// reclamation scheme.
func NewStore(scheme string, n int) *Store {
	mgr := recordmgr.MustBuild[bst.Record[string]](recordmgr.Config{
		Scheme:  scheme,
		Threads: n,
		UsePool: true,
	})
	return &Store{tree: bst.New(mgr), mgr: mgr}
}

// Get returns the value for key.
func (s *Store) Get(tid int, key int64) (string, bool) {
	s.gets.Add(1)
	return s.tree.Get(tid, key)
}

// Put inserts the value for key (no overwrite: the store keeps the first
// value, mirroring the set semantics of the underlying tree).
func (s *Store) Put(tid int, key int64, value string) bool {
	s.puts.Add(1)
	return s.tree.Insert(tid, key, value)
}

// Delete removes key.
func (s *Store) Delete(tid int, key int64) bool {
	s.deletes.Add(1)
	return s.tree.Delete(tid, key)
}

func main() {
	const (
		workers  = 6
		keySpace = 50_000
		runFor   = 500 * time.Millisecond
	)
	store := NewStore(recordmgr.SchemeDEBRAPlus, workers)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) * 7))
			for !stop.Load() {
				key := rng.Int63n(keySpace)
				switch rng.Intn(10) {
				case 0, 1, 2: // 30% writes
					store.Put(tid, key, fmt.Sprintf("session-%d", key))
				case 3: // 10% deletes
					store.Delete(tid, key)
				default: // 60% reads
					store.Get(tid, key)
				}
			}
		}(tid)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	st := store.mgr.Stats()
	total := store.gets.Load() + store.puts.Load() + store.deletes.Load()
	fmt.Printf("served %d requests (%d gets, %d puts, %d deletes) in %v\n",
		total, store.gets.Load(), store.puts.Load(), store.deletes.Load(), runFor)
	fmt.Printf("store size: %d keys\n", store.tree.Len())
	fmt.Printf("records: allocated=%d reused=%d retired=%d freed=%d in-limbo=%d neutralizations=%d\n",
		st.Alloc.Allocated, st.Pool.Reused, st.Reclaimer.Retired, st.Reclaimer.Freed,
		st.Reclaimer.Limbo, st.Reclaimer.Neutralizations)
	if err := store.tree.Validate(); err != nil {
		fmt.Println("validation failed:", err)
		return
	}
	fmt.Println("tree structure validated cleanly")
}
