// Quickstart: build a Record Manager, plug it into a lock-free queue and a
// lock-free BST, and run a few concurrent workers. Changing the reclamation
// scheme — the whole point of the Record Manager abstraction — is the single
// string constant below.
package main

import (
	"fmt"
	"sync"

	"repro/internal/ds/bst"
	"repro/internal/ds/queue"
	"repro/internal/recordmgr"
)

const (
	// scheme is the reclamation scheme used by both structures. Try
	// "none", "ebr", "qsbr", "debra", "debra+" or "hp".
	scheme  = recordmgr.SchemeDEBRA
	workers = 4
)

func main() {
	// A Record Manager per record type: one for tree records, one for queue
	// nodes. Each pairs an allocator, an object pool and a reclaimer.
	treeMgr := recordmgr.MustBuild[bst.Record[string]](recordmgr.Config{
		Scheme:  scheme,
		Threads: workers,
		UsePool: true,
	})
	queueMgr := recordmgr.MustBuild[queue.Node[int]](recordmgr.Config{
		Scheme:  scheme,
		Threads: workers,
		UsePool: true,
	})

	tree := bst.New(treeMgr)
	q := queue.New(queueMgr)

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				key := int64(tid*10_000 + i)
				tree.Insert(tid, key, fmt.Sprintf("value-%d", key))
				q.Enqueue(tid, int(key))
				if i%2 == 0 {
					tree.Delete(tid, key)
					q.Dequeue(tid)
				}
			}
		}(tid)
	}
	wg.Wait()

	fmt.Printf("scheme: %s\n", scheme)
	fmt.Printf("tree size: %d, queue length: %d\n", tree.Len(), q.Len())
	ts := treeMgr.Stats()
	fmt.Printf("tree records: allocated=%d reused=%d retired=%d freed=%d in-limbo=%d\n",
		ts.Alloc.Allocated, ts.Pool.Reused, ts.Reclaimer.Retired, ts.Reclaimer.Freed, ts.Reclaimer.Limbo)
	qs := queueMgr.Stats()
	fmt.Printf("queue records: allocated=%d reused=%d retired=%d freed=%d in-limbo=%d\n",
		qs.Alloc.Allocated, qs.Pool.Reused, qs.Reclaimer.Retired, qs.Reclaimer.Freed, qs.Reclaimer.Limbo)
}
