// Command kvserver runs the TCP key-value service of internal/kvservice: N
// partitioned lock-free hash map namespaces, each on its own Record Manager,
// behind the length-prefixed internal/kvwire protocol (GET/PUT/DEL/STATS —
// see docs/PROTOCOL.md for the wire format and docs/OPERATIONS.md for every
// flag and how to choose a scheme).
//
// Every connection goroutine follows the dynamic-slot churn contract: it
// binds a worker slot in every partition for a -burst of requests and then
// releases the slots back (a connection that goes quiet mid-burst releases
// after -idlehold instead), so the server admits any number of connections
// while -maxconns bounds how many the reclamation schemes ever see at once.
//
// The service degrades gracefully under faults and overload: -readtimeout
// and -writetimeout bound every frame, slot waits are bounded by
// -acquirewait with an ERR_BUSY fast-fail past it, and a watchdog reaps
// peers that complete no frame within -reapafter.
//
// The request path is batch-oriented: every complete frame already buffered
// on a connection (up to -pipeline-depth) executes as one batch under a
// single slot acquisition and is answered with a single write, so pipelining
// clients (kvload -pipeline) amortise the per-request syscall cost.
//
//	kvserver -addr :7070 -scheme debra -partitions 4 -maxconns 64
//	kvserver -scheme hp -pool -shards 4 -reclaimers 1
//	kvserver -pprof 127.0.0.1:6060     # live CPU/alloc profiles during load
//
// On SIGINT/SIGTERM the server drains connections, closes every partition's
// Record Manager and prints a final stats snapshot (the same JSON document a
// STATS request returns) to stderr, so a supervised run always ends with the
// Retired/Freed accounting on record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/kvservice"
	"repro/internal/recordmgr"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address (host:port)")
		scheme      = flag.String("scheme", recordmgr.SchemeDEBRA, fmt.Sprintf("reclamation scheme: %v", recordmgr.Schemes()))
		partitions  = flag.Int("partitions", 1, "independent map namespaces, each with its own Record Manager")
		maxConns    = flag.Int("maxconns", 8, "worker-slot capacity per partition: connections holding a burst concurrently")
		burst       = flag.Int("burst", 64, "requests a connection serves per slot hold before releasing")
		pipeDepth   = flag.Int("pipeline-depth", 0, "max buffered request frames executed as one batch per connection (0 = library default, 32)")
		idleHold    = flag.Duration("idlehold", 0, "how long an idle connection may keep its slots mid-burst before releasing them (0 = library default)")
		readTO      = flag.Duration("readtimeout", 0, "per-frame read deadline: a peer that delivers no complete request within it is dropped (0 = library default, 30s)")
		writeTO     = flag.Duration("writetimeout", 0, "per-response write deadline: a peer that stops reading is dropped once it expires (0 = library default, 10s)")
		acquireWait = flag.Duration("acquirewait", 0, "how long a request may wait for a worker slot before the ERR_BUSY fast-fail (0 = library default, 100ms)")
		reapAfter   = flag.Duration("reapafter", 0, "slow-peer reaper threshold: connections completing no frame within it are closed (0 = library default, 2x readtimeout)")
		pool        = flag.Bool("pool", false, "recycle reclaimed nodes through the record pool")
		shards      = flag.Int("shards", 0, "sharded reclamation domains per partition (0/1 = one global domain)")
		placement   = flag.String("placement", "", "tid->shard placement policy: block or stripe")
		retireBatch = flag.Int("retirebatch", 0, "per-slot deferred-retire batch size (0 = direct retirement)")
		reclaimers  = flag.Int("reclaimers", 0, "dedicated async reclaimer goroutines per partition (0 = reclamation on the connections)")
		buckets     = flag.Int("buckets", 0, "initial bucket count per partition (0 = map default)")
		adaptive    = flag.Bool("adaptive", false, "self-tuning runtime: a controller retunes effective shards, retire batches and active reclaimers from live load (shards/retirebatch/reclaimers become starting points)")
		adaptiveInt = flag.Duration("adaptive-interval", 0, "adaptive controller decision period (0 = library default)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (host:port; empty = disabled)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// Surface bind errors synchronously; the profiling server itself
		// runs in the background for the process lifetime.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listen: %w", err))
		}
		fmt.Fprintf(os.Stderr, "kvserver: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "kvserver: pprof server:", err)
			}
		}()
	}

	pl, err := core.ParsePlacement(*placement)
	if err != nil {
		fatal(err)
	}
	srv, err := kvservice.New(kvservice.Config{
		Scheme:           *scheme,
		Partitions:       *partitions,
		MaxConns:         *maxConns,
		Burst:            *burst,
		PipelineDepth:    *pipeDepth,
		IdleHold:         *idleHold,
		ReadTimeout:      *readTO,
		WriteTimeout:     *writeTO,
		AcquireWait:      *acquireWait,
		ReapAfter:        *reapAfter,
		UsePool:          *pool,
		Shards:           *shards,
		Placement:        pl,
		RetireBatch:      *retireBatch,
		Reclaimers:       *reclaimers,
		Adaptive:         *adaptive,
		AdaptiveInterval: *adaptiveInt,
		InitialBuckets:   *buckets,
	})
	if err != nil {
		fatal(err)
	}
	laddr, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kvserver: serving %s on %s (%d partitions, %d slots each, burst %d)\n",
		*scheme, laddr, *partitions, *maxConns, *burst)

	// Block until asked to stop; Close drains the connection handlers and
	// tears down every partition's Record Manager (reclaiming schemes exit
	// with Retired == Freed — visible in the final snapshot below).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "kvserver: %s, shutting down\n", sig)

	srv.Close()
	// The post-Close snapshot is the authoritative one: every connection's
	// tally has merged and the reclaimers have drained (Retired == Freed for
	// every reclaiming scheme).
	out, err := json.MarshalIndent(srv.Stats(), "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvserver:", err)
	os.Exit(1)
}
