// Command kvload drives a kvserver with a configurable key-value workload
// and reports throughput and request-latency quantiles (p50/p99/p999). It is
// the measurement half of bench experiment 9 packaged as a standalone tool —
// see docs/OPERATIONS.md for flag-by-flag guidance and how to read the tail.
//
// Two load disciplines:
//
//   - Closed loop (default): each connection issues its next request as soon
//     as the previous response arrives; latency is response time.
//   - Open loop (-open -rate R): requests are scheduled at a fixed aggregate
//     rate and latency is measured from each request's *intended* send time,
//     so a stalled server accrues the queueing delay it caused (no
//     coordinated omission).
//
// Examples:
//
//	kvload -addr 127.0.0.1:7070 -conns 16 -duration 10s
//	kvload -dist uniform -readpct 50 -delpct 25 -prefill 100000
//	kvload -open -rate 50000 -duration 30s -json
//	kvload -pipeline 64 -conns 4              # 64 requests in flight per conn
//	kvload -retries 4 -chaos-kill 500 -json     # chaos mode: random self-kills
//
// With -pipeline N each connection keeps N requests in flight, sending the
// window with one write and matching responses back in order; this is what
// saturates a batch-executing server (kvserver -pipeline-depth). Open-loop
// intended-send-time accounting stays coordinated-omission-free: a window
// shares its scheduling step's intended time.
//
// Transient failures — dial errors, broken connections, ERR_BUSY fast-fails
// from an overloaded server — are retried with exponential backoff
// (-retries, -backoff) instead of failing the run; the retry, reconnect and
// give-up counts are part of the report. The -chaos-stall and -chaos-kill
// cadences make the generator misbehave on purpose (stall mid-frame, kill
// its own connections) to exercise the server's timeouts and reaper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/kvload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address (host:port)")
		conns    = flag.Int("conns", 4, "concurrent connections")
		duration = flag.Duration("duration", time.Second, "measured run length")
		keys     = flag.Int64("keys", 1<<20, "key-space size; keys are drawn from [0, keys)")
		dist     = flag.String("dist", kvload.DistZipf, "key distribution: zipf or uniform")
		zipfS    = flag.Float64("zipf", 1.1, "zipfian skew exponent (> 1; larger = hotter hot set)")
		readPct  = flag.Int("readpct", 80, "percentage of operations that are GETs")
		delPct   = flag.Int("delpct", 0, "percentage that are DELs (0 = half the non-read share); PUTs take the rest")
		valueLen = flag.Int("valuelen", 16, "PUT value size in bytes")
		pipeline = flag.Int("pipeline", 1, "requests kept in flight per connection (1 = request/response lockstep)")
		open     = flag.Bool("open", false, "open-loop discipline: fixed schedule, latency from intended send time")
		rate     = flag.Float64("rate", 0, "open loop's total target requests/second across all connections")
		seed     = flag.Int64("seed", 1, "workload random seed (connection c uses seed+c)")
		prefill  = flag.Int64("prefill", 0, "PUT keys [0, prefill) before measuring, so GETs hit and DELs delete")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of text")

		retries    = flag.Int("retries", 0, "retry budget per operation for transient errors and ERR_BUSY (0 = library default, 8; negative = no retries)")
		backoff    = flag.Duration("backoff", 0, "initial retry backoff, doubled per attempt with jitter (0 = library default, 1ms)")
		chaosStall = flag.Int("chaos-stall", 0, "chaos: stall mid-frame roughly every N requests per connection (0 = never)")
		chaosHold  = flag.Duration("chaos-hold", 0, "chaos: how long a mid-frame stall lasts (0 = library default, 5ms)")
		chaosKill  = flag.Int("chaos-kill", 0, "chaos: kill the connection roughly every N requests per connection, forcing a reconnect (0 = never)")
	)
	flag.Parse()

	res, err := kvload.Run(kvload.Config{
		Addr:     *addr,
		Conns:    *conns,
		Duration: *duration,
		Keys:     *keys,
		Dist:     *dist,
		ZipfS:    *zipfS,
		ReadPct:  *readPct,
		DelPct:   *delPct,
		ValueLen: *valueLen,
		Pipeline: *pipeline,
		OpenLoop: *open,
		Rate:     *rate,
		Seed:     *seed,
		Prefill:  *prefill,

		Retries:         *retries,
		RetryBackoff:    *backoff,
		ChaosStallEvery: *chaosStall,
		ChaosStallFor:   *chaosHold,
		ChaosKillEvery:  *chaosKill,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		doc := struct {
			Ops        int64   `json:"ops"`
			Gets       int64   `json:"gets"`
			Puts       int64   `json:"puts"`
			Dels       int64   `json:"dels"`
			Seconds    float64 `json:"elapsed_seconds"`
			OpsPerSec  float64 `json:"ops_per_sec"`
			P50Ns      int64   `json:"p50_ns"`
			P99Ns      int64   `json:"p99_ns"`
			P999Ns     int64   `json:"p999_ns"`
			MaxNs      int64   `json:"max_ns"`
			Discipline string  `json:"discipline"`

			Busy        int64 `json:"busy"`
			Retries     int64 `json:"retries"`
			Reconnects  int64 `json:"reconnects"`
			GaveUp      int64 `json:"gave_up"`
			ChaosStalls int64 `json:"chaos_stalls,omitempty"`
			ChaosKills  int64 `json:"chaos_kills,omitempty"`
		}{
			Ops: res.Ops, Gets: res.Gets, Puts: res.Puts, Dels: res.Dels,
			Seconds: res.Elapsed.Seconds(), OpsPerSec: res.Throughput(),
			P50Ns: int64(res.P50()), P99Ns: int64(res.P99()), P999Ns: int64(res.P999()),
			MaxNs: res.Hist.Max(), Discipline: discipline(*open),
			Busy: res.Busy, Retries: res.Retries, Reconnects: res.Reconnects,
			GaveUp: res.GaveUp, ChaosStalls: res.ChaosStalls, ChaosKills: res.ChaosKills,
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	fmt.Printf("%d ops in %v (%.0f ops/s): %d gets, %d puts, %d dels\n",
		res.Ops, res.Elapsed.Round(time.Millisecond), res.Throughput(), res.Gets, res.Puts, res.Dels)
	fmt.Printf("latency (%s): p50 %v  p99 %v  p999 %v  max %v\n",
		discipline(*open), res.P50(), res.P99(), res.P999(), time.Duration(res.Hist.Max()))
	if res.Busy+res.Retries+res.Reconnects+res.GaveUp+res.ChaosStalls+res.ChaosKills > 0 {
		fmt.Printf("resilience: %d busy, %d retries, %d reconnects, %d gave up (chaos: %d stalls, %d kills)\n",
			res.Busy, res.Retries, res.Reconnects, res.GaveUp, res.ChaosStalls, res.ChaosKills)
	}
}

func discipline(open bool) string {
	if open {
		return "open loop, from intended send time"
	}
	return "closed loop, response time"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvload:", err)
	os.Exit(1)
}
