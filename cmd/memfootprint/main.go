// Command memfootprint reproduces Figure 9 (right) of the paper: the total
// memory allocated for records by the BST under a 50% insert / 50% delete
// workload on key range [0, 10^4), as the number of threads grows past the
// number of hardware threads. Once threads are preempted mid-operation,
// DEBRA cannot advance its epoch and its footprint explodes; DEBRA+
// neutralizes the preempted threads and keeps the footprint bounded, close
// to hazard pointers.
//
// The per-trial knobs mirror reclaimbench's: -shards, -placement,
// -retirebatch, -async and -reclaimers apply the experiment 5-6 ablation
// axes, and -churn (experiment 8's axis) makes workers release and
// re-acquire their thread slot every N operations, so the footprint can be
// measured under dynamic slot binding as well as the paper's static one.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		duration    = flag.Duration("duration", 1*time.Second, "duration of each trial")
		maxThreads  = flag.Int("threads", 0, "maximum thread count (0 = 4 x NumCPU to force oversubscription)")
		ds          = flag.String("ds", bench.DSBST, "data structure to drive: bst (the paper's setup) or hashmap")
		shards      = flag.Int("shards", 0, "sharded reclamation domains per trial (0/1 = one global domain)")
		placement   = flag.String("placement", "", "tid->shard placement policy: block or stripe")
		retireBatch = flag.Int("retirebatch", 0, "per-thread deferred-retire batch size (0 = direct retirement)")
		async       = flag.Bool("async", false, "enable asynchronous reclamation (implies -reclaimers 1 when unset)")
		reclaimers  = flag.Int("reclaimers", 0, "dedicated async reclaimer goroutines per trial (0 = reclamation on the workers; implies -async)")
		churn       = flag.Int("churn", 0, "goroutine churn: workers release+acquire their thread slot every N operations (0 = static binding)")
	)
	flag.Parse()
	if _, err := core.ParsePlacement(*placement); err != nil {
		fmt.Fprintln(os.Stderr, "memfootprint:", err)
		os.Exit(1)
	}
	if *churn < 0 {
		fmt.Fprintln(os.Stderr, "memfootprint: -churn must be >= 0, got", *churn)
		os.Exit(1)
	}
	if *async && *reclaimers == 0 {
		*reclaimers = core.DefaultAsyncReclaimers
	}
	max := *maxThreads
	if max == 0 {
		max = 4 * runtime.NumCPU()
	}
	rows, schemes, err := bench.MemoryExperiment(bench.Options{
		Duration: *duration, MaxThreads: max, Seed: 1, DataStructure: *ds,
		Shards: *shards, Placement: *placement, RetireBatch: *retireBatch,
		Reclaimers: *reclaimers, ChurnOps: *churn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memfootprint:", err)
		os.Exit(1)
	}
	fmt.Printf("GOMAXPROCS=%d, hardware threads=%d\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Print(bench.RenderMemoryTable(rows, schemes, *ds))
}
