// Command benchdiff compares a fresh bench-smoke JSON report (produced by
// `reclaimbench -json`) against a committed baseline and exits non-zero when
// any cell's throughput regressed past the threshold. CI runs it after the
// bench-smoke job with the repository's BENCH_baseline.json.
//
// By default the comparison is relative: each cell's current/baseline ratio
// is normalised by the median ratio across all cells, so a uniformly slower
// (or faster) CI machine cancels out and only cells that got slower
// *relative to the rest of the suite* — the signature of a code-level
// regression — trip the gate. Use -absolute for same-machine comparisons.
//
//	benchdiff -baseline BENCH_baseline.json -current bench-smoke.json
//	benchdiff -baseline a.json -current b.json -threshold 0.2 -absolute
//	benchdiff bench-history/20260101.json bench-history/20260201.json
//
// Two positional arguments name an explicit (baseline, current) artifact
// pair — any two reports from the bench-history archive can be compared,
// not just HEAD against the committed baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON report")
		currentPath  = flag.String("current", "bench-smoke.json", "fresh JSON report to check")
		threshold    = flag.Float64("threshold", 0.30, "fractional throughput drop that fails (0.30 = 30%)")
		minMops      = flag.Float64("min-mops", 0.05, "ignore cells below this baseline throughput")
		absolute     = flag.Bool("absolute", false, "compare raw Mops/s instead of median-normalised ratios")
	)
	flag.Parse()

	// Positional form: benchdiff <baseline.json> <current.json> — compare
	// any two archived artifacts (the bench-history trend use case).
	switch flag.NArg() {
	case 0:
	case 2:
		// Mixing the positional pair with explicit -baseline/-current flags
		// would have to silently drop one of the two sources; reject it.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "baseline" || f.Name == "current" {
				fatal(fmt.Errorf("-%s cannot be combined with positional artifact paths", f.Name))
			}
		})
		*baselinePath = flag.Arg(0)
		*currentPath = flag.Arg(1)
	default:
		fatal(fmt.Errorf("want zero or exactly two positional arguments (baseline current), got %d", flag.NArg()))
	}

	baseline, err := readReport(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := readReport(*currentPath)
	if err != nil {
		fatal(err)
	}
	opts := bench.DiffOptions{Threshold: *threshold, MinMops: *minMops, Absolute: *absolute}
	res, err := bench.DiffReports(baseline, current, opts)
	if err != nil {
		// Degenerate comparisons (no overlapping cells, everything under the
		// noise floor) are hard failures: the gate verified nothing.
		fatal(err)
	}
	fmt.Print(bench.RenderDiff(res, opts))
	// Surface the per-op microcost columns of the hotpath probes (experiment
	// 7) whenever either report carries them — the numbers a hot-path
	// regression shows up in first.
	if mc := bench.RenderMicrocosts(baseline, current); mc != "" {
		fmt.Print(mc)
	}
	// Likewise the acquire/release latency columns of the churn rows
	// (experiment 8) — the cost a dynamically bound server actually pays
	// per goroutine turnover.
	if cc := bench.RenderChurnCosts(baseline, current); cc != "" {
		fmt.Print(cc)
	}
	// And the latency quantiles of the KV service rows (experiment 9) — the
	// end-to-end tail a reclamation stall surfaces in.
	if sl := bench.RenderServiceLatencies(baseline, current); sl != "" {
		fmt.Print(sl)
	}
	// And the pipelined service rows (experiment 12): the batching
	// amortisation across the depth sweep and the allocs/op the zero-alloc
	// request path is supposed to hold near zero.
	if pl := bench.RenderPipeline(baseline, current); pl != "" {
		fmt.Print(pl)
	}
	// And the per-phase throughput and controller-lever trajectories of the
	// self-tuning rows (experiment 10) — where adaptive-vs-static lives and
	// where a controller that stopped making decisions is visible.
	if at := bench.RenderAdaptiveTrajectories(baseline, current); at != "" {
		fmt.Print(at)
	}
	// And the fault-injection rows (experiment 11): the bounded/unbounded
	// unreclaimed-growth classification per scheme under a stalled thread and
	// the chaos-mode service resilience counters. Excluded from the gate,
	// rendered here — a classification flip is the regression to look for.
	if ft := bench.RenderFaults(baseline, current); ft != "" {
		fmt.Print(ft)
	}
	if len(res.Regressions) > 0 {
		fatal(fmt.Errorf("%d cells regressed more than %.0f%%", len(res.Regressions), *threshold*100))
	}
}

func readReport(path string) (bench.JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return bench.JSONReport{}, err
	}
	return bench.ParseReport(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
