// Command doclint fails when an exported identifier in the named package
// directories lacks a doc comment. It is the repository's documentation gate
// for the API surface packages (CI runs it over internal/core and
// internal/recordmgr): godoc there is the contract users program against, so
// an undocumented exported symbol is drift, not style.
//
//	doclint ./internal/core ./internal/recordmgr
//
// Checked: package-level types, functions, methods on exported receivers,
// and each exported name in const/var declarations (a doc comment on the
// enclosing declaration group covers its members, matching godoc's
// rendering). Test files are skipped. Exit status 1 lists every violation as
// file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package directory> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		violations, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported symbol(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test .go file in dir and returns one formatted
// violation per undocumented exported symbol.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					lintFunc(d, report)
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return out, nil
}

// lintFunc checks a function or method: exported name, and for methods an
// exported receiver type (methods on unexported types are not API surface).
func lintFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind = "method"
		name = recv + "." + name
	}
	report(d.Pos(), kind, name)
}

// lintGen checks a type/const/var declaration. godoc attaches a group's doc
// comment to all its members, so a documented group excuses undocumented
// specs inside it; an undocumented group requires per-spec comments.
func lintGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
				report(ts.Pos(), "type", ts.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		if d.Doc != nil {
			return
		}
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its type name,
// looking through pointers and generic instantiations ([T any] receivers
// parse as IndexExpr/IndexListExpr).
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
