// Command reclaimvet is the repository's static-analysis gate: a
// multichecker running the six reclamation-contract analyzers (retirepin,
// handlepair, singlewriter, protectorder, noclock, exporteddoc) over the
// named packages. It exits non-zero on any diagnostic, so CI wires it as a
// hard gate (`make vet-reclaim`); deliberate exceptions are annotated in the
// source with reasoned `//lint:allow <analyzer> <reason>` markers, which the
// driver checks (a bare marker, an unknown analyzer name, or a marker that
// suppresses nothing are themselves diagnostics).
//
//	reclaimvet [-run list] [packages]
//
// With no package arguments it analyzes ./.... The -run flag restricts the
// suite to a comma-separated subset of analyzer names (debugging aid; the CI
// gate always runs everything).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reclaimvet [-run analyzer,...] [packages]\n\nanalyzers:\n")
		for _, a := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := suite.All()
	if *runFlag != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			if !suite.Known(name) {
				fmt.Fprintf(os.Stderr, "reclaimvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			want[name] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reclaimvet:", err)
		os.Exit(2)
	}

	bad := 0
	for _, u := range units {
		diags, err := analysis.RunUnit(u, analyzers, suite.Known)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reclaimvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", u.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		bad += len(diags)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "reclaimvet: %d contract violation(s)\n", bad)
		os.Exit(1)
	}
}
