// Command schemes prints the qualitative comparison of reclamation schemes
// (the paper's Figure 2): which code modifications each scheme needs, its
// timing assumptions, fault tolerance, termination guarantee and whether it
// supports traversing pointers between retired records. Rows for the schemes
// implemented in this module come from their Props(); rows for surveyed-only
// schemes come from the reference table.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recordmgr"
)

func main() {
	fmt.Println("Figure 2: summary of reclamation schemes")
	fmt.Println()
	fmt.Print(core.RenderFigureTwo(recordmgr.Properties()))
}
