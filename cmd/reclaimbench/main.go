// Command reclaimbench regenerates the paper's evaluation: it runs the
// requested experiment (1, 2 or 3), the hash map panels (4), the Figure 9
// memory-footprint measurement, or the headline summary, and prints one
// throughput table per figure panel.
//
// Examples:
//
//	reclaimbench -experiment 1                 # Figure 8 (left)
//	reclaimbench -experiment 2 -threads 64     # Figure 8 (right) + Figure 9 (left) sweep
//	reclaimbench -experiment 3 -duration 2s    # Figure 10
//	reclaimbench -experiment hashmap           # hash map panels, all six schemes
//	reclaimbench -experiment hashmap -shards 4 # ... over 4 sharded reclamation domains
//	reclaimbench -experiment shards            # shard x batch ablation sweep
//	reclaimbench -experiment memory            # Figure 9 (right)
//	reclaimbench -experiment summary           # headline ratios from Experiment 2
//	reclaimbench -experiment 2 -csv            # machine-readable CSV
//	reclaimbench -experiment hashmap -json     # machine-readable JSON (CI artifact)
//
// The -shards, -placement and -retirebatch flags apply the sharded-domain
// and deferred-retirement knobs to every trial of experiments 1-4 and
// memory; the "shards" experiment sweeps them itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		experiment  = flag.String("experiment", "2", "experiment to run: 1, 2, 3, 4|hashmap, 5|shards, memory, or summary")
		duration    = flag.Duration("duration", 500*time.Millisecond, "duration of each trial")
		maxThreads  = flag.Int("threads", 0, "maximum thread count of the sweep (0 = 2 x NumCPU)")
		quick       = flag.Bool("quick", false, "shrink key ranges and the thread sweep for a fast smoke run")
		csv         = flag.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut     = flag.Bool("json", false, "emit JSON instead of text tables")
		seed        = flag.Int64("seed", 1, "workload random seed")
		shards      = flag.Int("shards", 0, "sharded reclamation domains per trial (0/1 = one global domain)")
		placement   = flag.String("placement", "", "tid->shard placement policy: block or stripe")
		retireBatch = flag.Int("retirebatch", 0, "per-thread deferred-retire batch size (0 = direct retirement)")
	)
	flag.Parse()

	if _, err := core.ParsePlacement(*placement); err != nil {
		fatal(err)
	}
	opts := bench.Options{
		Duration: *duration, MaxThreads: *maxThreads, Quick: *quick, Seed: *seed,
		Shards: *shards, Placement: *placement, RetireBatch: *retireBatch,
	}

	switch *experiment {
	case "1", "2", "3", "4", "hashmap", "5", "shards":
		exp := bench.ExperimentHashMap
		switch *experiment {
		case "hashmap":
		case "shards":
			exp = bench.ExperimentSharding
		default:
			exp = int((*experiment)[0] - '0')
		}
		results, err := bench.RunExperiment(exp, opts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			rep := bench.BuildJSONReport(results)
			out, err := rep.Render()
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
			// The JSON mode is the CI gate: an empty or error-carrying
			// report must fail the job, not archive a green artifact.
			if rep.RowCount == 0 {
				fatal(fmt.Errorf("no cells were measured"))
			}
			if len(rep.Errors) > 0 {
				fatal(fmt.Errorf("%d trials failed (see the errors field)", len(rep.Errors)))
			}
			return
		}
		for i, pr := range results {
			if *csv {
				fmt.Print(bench.RenderCSV(pr, i == 0))
			} else {
				fmt.Println(bench.RenderThroughputTable(pr))
			}
		}
		if !*csv && exp != bench.ExperimentHashMap && exp != bench.ExperimentSharding {
			// The headline summary compares the paper's schemes; the hash
			// map panels include schemes the paper does not quote ratios for.
			fmt.Println(bench.RenderSummary(bench.Summarize(results)))
		}
	case "memory":
		rows, schemes, err := bench.MemoryExperiment(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderMemoryTable(rows, schemes, ""))
	case "summary":
		results, err := bench.RunExperiment(bench.Experiment2, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderSummary(bench.Summarize(results)))
	default:
		fatal(fmt.Errorf("unknown experiment %q (want 1, 2, 3, 4, hashmap, 5, shards, memory or summary)", *experiment))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reclaimbench:", err)
	os.Exit(1)
}
