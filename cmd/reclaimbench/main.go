// Command reclaimbench regenerates the paper's evaluation: it runs the
// requested experiment (1, 2 or 3), the hash map panels (4), the sharding
// (5) and async-reclamation (6) ablations, the hot-path microcosts (7), the
// goroutine-churn (8), KV-service (9), self-tuning-runtime (10),
// fault-injection (11) and pipelined-service (12) experiments, the Figure 9
// memory-footprint measurement, or the headline summary, and prints one
// throughput table per figure panel.
//
// Examples:
//
//	reclaimbench -experiment 1                 # Figure 8 (left)
//	reclaimbench -experiment 2 -threads 64     # Figure 8 (right) + Figure 9 (left) sweep
//	reclaimbench -experiment 3 -duration 2s    # Figure 10
//	reclaimbench -experiment hashmap           # hash map panels, all six schemes
//	reclaimbench -experiment hashmap -shards 4 # ... over 4 sharded reclamation domains
//	reclaimbench -experiment hashmap -async    # ... with one async reclaimer goroutine
//	reclaimbench -experiment shards            # shard x batch ablation sweep
//	reclaimbench -experiment async             # async on/off x reclaimer-count sweep
//	reclaimbench -experiment hotpath           # per-op microcosts (pin, alloc+retire)
//	reclaimbench -experiment churn             # goroutine churn over the slot registry
//	reclaimbench -experiment service           # KV service over loopback TCP (p50/p99/p999)
//	reclaimbench -experiment adaptive          # self-tuning runtime vs static configs
//	reclaimbench -experiment faults            # stalled threads + chaos service panel
//	reclaimbench -experiment pipeline          # pipelined KV service, depth sweep + allocs/op
//	reclaimbench -experiment hashmap -churn 256  # ... any experiment under slot churn
//	reclaimbench -experiment hashmap -cpuprofile cpu.pprof  # profile the trials
//	reclaimbench -experiment memory            # Figure 9 (right)
//	reclaimbench -experiment summary           # headline ratios from Experiment 2
//	reclaimbench -experiment 2 -csv            # machine-readable CSV
//	reclaimbench -experiment hashmap,async -json  # merged JSON (the CI artifact)
//
// The -shards, -placement, -retirebatch, -async, -reclaimers and -churn
// flags apply the sharded-domain, deferred-retirement, async-reclamation
// and goroutine-churn knobs to every trial of experiments 1-4, 7 and
// memory; the "shards", "async" and "churn" experiments sweep their own
// axis. Several experiments may be given comma-separated; their panels are
// concatenated into one report. -repeat N runs the whole sweep N times and
// reports each cell's best-throughput run — repeats of any one cell land a
// full sweep apart, straddling a noisy machine's slow episodes — so the
// committed-baseline gate compares best-of-N cells instead of single noisy
// samples (the bench-smoke target uses it).
//
// -cpuprofile and -memprofile write pprof profiles covering the whole run
// (all trials of the invocation), so hot-path regressions spotted by the
// bench-diff gate can be diagnosed from the same binary that measured them.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		experiment  = flag.String("experiment", "2", "experiment(s) to run, comma-separated: 1, 2, 3, 4|hashmap, 5|shards, 6|async, 7|hotpath, 8|churn, 9|service, 10|adaptive, 11|faults, 12|pipeline, memory, or summary")
		duration    = flag.Duration("duration", 500*time.Millisecond, "duration of each trial")
		maxThreads  = flag.Int("threads", 0, "maximum thread count of the sweep (0 = 2 x NumCPU)")
		quick       = flag.Bool("quick", false, "shrink key ranges and the thread sweep for a fast smoke run")
		csv         = flag.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut     = flag.Bool("json", false, "emit JSON instead of text tables")
		seed        = flag.Int64("seed", 1, "workload random seed")
		shards      = flag.Int("shards", 0, "sharded reclamation domains per trial (0/1 = one global domain)")
		placement   = flag.String("placement", "", "tid->shard placement policy: block or stripe")
		retireBatch = flag.Int("retirebatch", 0, "per-thread deferred-retire batch size (0 = direct retirement)")
		async       = flag.Bool("async", false, "enable asynchronous reclamation (implies -reclaimers 1 when unset)")
		reclaimers  = flag.Int("reclaimers", 0, "dedicated async reclaimer goroutines per trial (0 = reclamation on the workers; implies -async)")
		churn       = flag.Int("churn", 0, "goroutine churn: workers release+acquire their thread slot every N operations (0 = static binding)")
		repeat      = flag.Int("repeat", 1, "run the whole experiment sweep N times and keep each cell's best-throughput run (suppresses scheduler-noise outliers on shared machines)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()

	// Profile teardown must also run on the error path: fatal() exits with
	// os.Exit, which skips defers, and a CPU profile that is never stopped
	// is truncated and unusable — on exactly the runs one wants to diagnose.
	// fatal() therefore runs the registered cleanups before exiting.
	defer runCleanups()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(fmt.Errorf("creating -cpuprofile file: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(fmt.Errorf("starting CPU profile: %w", err))
		}
		cleanups = append(cleanups, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		path := *memprofile
		cleanups = append(cleanups, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reclaimbench: creating -memprofile file:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the live set before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reclaimbench: writing heap profile:", err)
			}
		})
	}

	if _, err := core.ParsePlacement(*placement); err != nil {
		fatal(err)
	}
	if *reclaimers < 0 {
		fatal(fmt.Errorf("-reclaimers must be >= 0, got %d", *reclaimers))
	}
	if *async && *reclaimers == 0 {
		*reclaimers = core.DefaultAsyncReclaimers
	}
	if *churn < 0 {
		fatal(fmt.Errorf("-churn must be >= 0, got %d", *churn))
	}
	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat must be >= 1, got %d", *repeat))
	}
	opts := bench.Options{
		Duration: *duration, MaxThreads: *maxThreads, Quick: *quick, Seed: *seed,
		Shards: *shards, Placement: *placement, RetireBatch: *retireBatch,
		Reclaimers: *reclaimers, ChurnOps: *churn,
	}

	names := strings.Split(*experiment, ",")
	if len(names) > 1 {
		for _, name := range names {
			if name == "memory" || name == "summary" {
				fatal(fmt.Errorf("experiment %q cannot be combined with others", name))
			}
		}
	}

	switch names[0] {
	case "1", "2", "3", "4", "hashmap", "5", "shards", "6", "async", "7", "hotpath", "8", "churn", "9", "service", "10", "adaptive", "11", "faults", "12", "pipeline":
		var exps []int
		tabular := false
		seen := map[int]bool{}
		for _, name := range names {
			exp := 0
			switch name {
			case "hashmap":
				exp = bench.ExperimentHashMap
			case "shards":
				exp = bench.ExperimentSharding
			case "async":
				exp = bench.ExperimentAsync
			case "hotpath":
				exp = bench.ExperimentHotPath
			case "churn":
				exp = bench.ExperimentChurn
			case "service":
				exp = bench.ExperimentService
			case "adaptive", "10":
				exp = bench.ExperimentAdaptive
			case "faults", "11":
				exp = bench.ExperimentFaults
			case "pipeline", "12":
				exp = bench.ExperimentPipeline
			case "1", "2", "3", "4", "5", "6", "7", "8", "9":
				exp = int(name[0] - '0')
			default:
				fatal(fmt.Errorf("unknown experiment %q in list", name))
			}
			if seen[exp] {
				// Duplicates (or an alias of a numeric id) would emit rows
				// with identical identities, which the trend gate's keyed
				// matching silently collapses.
				fatal(fmt.Errorf("experiment %q appears more than once in the list", name))
			}
			seen[exp] = true
			if exp != bench.ExperimentHashMap && exp != bench.ExperimentSharding &&
				exp != bench.ExperimentAsync && exp != bench.ExperimentHotPath &&
				exp != bench.ExperimentChurn && exp != bench.ExperimentService &&
				exp != bench.ExperimentAdaptive && exp != bench.ExperimentFaults &&
				exp != bench.ExperimentPipeline {
				tabular = true
			}
			exps = append(exps, exp)
		}
		// -repeat reruns the whole sweep, not each trial in place: a noisy
		// machine's slow episodes outlast back-to-back repeats of one cell,
		// but not a full sweep between repeats (see MergeBestResults).
		var sweeps [][]bench.PanelResult
		for s := 0; s < *repeat; s++ {
			var results []bench.PanelResult
			for _, exp := range exps {
				res, err := bench.RunExperiment(exp, opts)
				if err != nil {
					fatal(err)
				}
				results = append(results, res...)
			}
			sweeps = append(sweeps, results)
		}
		results, err := bench.MergeBestResults(sweeps...)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			rep := bench.BuildJSONReport(results)
			out, err := rep.Render()
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
			// The JSON mode is the CI gate: an empty or error-carrying
			// report must fail the job, not archive a green artifact.
			if rep.RowCount == 0 {
				fatal(fmt.Errorf("no cells were measured"))
			}
			if len(rep.Errors) > 0 {
				fatal(fmt.Errorf("%d trials failed (see the errors field)", len(rep.Errors)))
			}
			return
		}
		for i, pr := range results {
			if *csv {
				fmt.Print(bench.RenderCSV(pr, i == 0))
			} else {
				fmt.Println(bench.RenderThroughputTable(pr))
			}
		}
		if !*csv && len(names) == 1 && tabular {
			// The headline summary compares the paper's schemes; the hash
			// map panels include schemes the paper does not quote ratios for.
			fmt.Println(bench.RenderSummary(bench.Summarize(results)))
		}
	case "memory":
		rows, schemes, err := bench.MemoryExperiment(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderMemoryTable(rows, schemes, ""))
	case "summary":
		results, err := bench.RunExperiment(bench.Experiment2, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderSummary(bench.Summarize(results)))
	default:
		fatal(fmt.Errorf("unknown experiment %q (want 1, 2, 3, 4, hashmap, 5, shards, 6, async, 7, hotpath, 8, churn, 9, service, 10, adaptive, 11, faults, 12, pipeline, memory or summary)", *experiment))
	}
}

// cleanups runs (last-in-first-out) before any exit, normal or fatal.
var cleanups []func()

func runCleanups() {
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
	cleanups = nil
}

func fatal(err error) {
	runCleanups()
	fmt.Fprintln(os.Stderr, "reclaimbench:", err)
	os.Exit(1)
}
