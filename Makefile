# Local development and CI run the exact same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet fmt fmt-check vet-reclaim test race fuzz-smoke bench-smoke bench-diff bench-baseline bench check

all: check

## build: compile every package and binary
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file is not gofmt-clean
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet-reclaim: the repository's own static-analysis gate. cmd/reclaimvet
## runs six analyzers over every package (tests included) and fails on any
## diagnostic: retirepin (raw scheme retires must be pin-dominated),
## handlepair (every acquired slot handle must reach a release), singlewriter
## (per-thread stat cells stay core.Counter — replaces the old
## hotpathguard_test grep), protectorder (HP protect -> validate -> deref
## ordering), noclock (no wall clock on Controller.Step paths or in
## Step-driven tests) and exporteddoc (the old cmd/doclint, folded in).
## Deliberate exceptions carry reasoned //lint:allow markers, which the
## driver checks too.
vet-reclaim:
	$(GO) run ./cmd/reclaimvet ./...

## test: full test suite
test:
	$(GO) test ./...

## race: test suite under the race detector (short mode, as in CI)
race:
	$(GO) test -race -short ./...

## fuzz-smoke: short fuzzing pass over the kvwire frame and request decoders.
## go test accepts one -fuzz target per invocation, so the targets run back to
## back; the anchored patterns keep FuzzDecodeRequest from also matching
## FuzzDecodeRequests (the batch decoder, which additionally cross-checks
## itself against the sequential ReadFrame+DecodeRequest path). The committed
## seed corpora plus a few seconds of mutation per target catch frame-parsing
## regressions without turning CI into a fuzz farm.
fuzz-smoke:
	$(GO) test ./internal/kvwire -run='^$$' -fuzz='^FuzzReadFrame$$' -fuzztime=5s
	$(GO) test ./internal/kvwire -run='^$$' -fuzz='^FuzzDecodeRequest$$' -fuzztime=5s
	$(GO) test ./internal/kvwire -run='^$$' -fuzz='^FuzzDecodeRequests$$' -fuzztime=5s

## bench-smoke: tiny experiment run, JSON report to bench-smoke.json (CI artifact).
## Covers the hash map panels (experiment 4), the async-reclamation sweep
## (experiment 6), the hot-path per-op microcost probes (experiment 7), the
## goroutine-churn sweep over the slot registry (experiment 8), the KV
## service end-to-end run over loopback TCP (experiment 9: mixed read/write
## load from 4 connections, p50/p99/p999 request latencies, hard-failing if
## any reclaiming scheme exits with Retired != Freed) and the self-tuning
## runtime comparison (experiment 10: adaptive vs static-optimal vs
## static-worst on a phase-changing workload, controller trajectories as
## JSON columns, hard-failing on Retired != Freed with the controller
## enabled) and the fault-injection experiment (11: per-scheme
## bounded/unbounded unreclaimed growth under an injected stalled thread,
## plus a chaos-mode service panel whose rows carry the shed/retry
## counters; fault rows are excluded from the bench-diff throughput gate
## but rendered as their own tables) and the pipelined-service experiment
## (12: the service shapes repeated at pipeline depths 1/8/64 — the load
## generator keeps a window in flight, the server batch-executes it — with
## the depth-1 lockstep baseline making the batching amortisation visible
## and an allocs_per_op column tracking the request path's zero-alloc steady
## state) in one merged report.
## The thread sweep is pinned so the row set matches BENCH_baseline.json on
## any machine (the async reclaimer-count and churn sweeps are likewise
## fixed, not machine-derived). The sweep runs 3 times and every cell keeps
## its best-throughput run (-repeat 3): single 75ms trials swing far
## outside the bench-diff gate's 30% margin on a loaded or single-core CI
## machine, and its slow episodes outlast back-to-back repeats of one cell
## but not the full sweep between sweep-level repeats — so the best-of-3
## envelope is stable, suppressing the downward outliers the gate acts on.
## Every smoke report is also archived under bench-history/ with a UTC
## timestamp, so any two runs can be compared later (benchdiff takes two
## positional artifact paths).
bench-smoke: build
	$(GO) run ./cmd/reclaimbench -experiment hashmap,async,hotpath,churn,service,adaptive,faults,pipeline -quick -threads 4 -duration 75ms -repeat 3 -json > bench-smoke.json
	@grep -q '"row_count"' bench-smoke.json
	@mkdir -p bench-history
	@cp bench-smoke.json "bench-history/$$(date -u +%Y%m%dT%H%M%SZ).json"
	@echo "wrote bench-smoke.json (archived under bench-history/)"

## bench-diff: compare the fresh bench-smoke artifact against the committed
## baseline, failing on >30% (median-normalised) throughput regressions.
bench-diff: bench-smoke
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current bench-smoke.json

## bench-baseline: refresh the committed baseline from a fresh smoke run
bench-baseline: bench-smoke
	cp bench-smoke.json BENCH_baseline.json
	@echo "updated BENCH_baseline.json; commit it"

## bench: the full benchmark suite through the testing.B interface
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

## check: everything CI checks, in one shot
check: build vet fmt-check vet-reclaim test race
