// Package repro is a Go reproduction of "Reclaiming Memory for Lock-Free
// Data Structures: There has to be a Better Way" (Trevor Brown, PODC 2015):
// DEBRA, DEBRA+, the Record Manager abstraction, the competing reclamation
// schemes the paper evaluates against, the data structures used in its
// evaluation, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation section.
//
// Beyond the paper's own benchmarks, internal/ds/hashmap adds a lock-free
// split-ordered hash map with incremental resizing (and an Upsert/replace
// operation) as the first structure demonstrating that the Record Manager
// generalises: it is programmed once against the abstraction and runs with
// all six reclamation schemes (none, ebr, qsbr, debra, debra+, hp). Its
// panels are experiment 4 of cmd/reclaimbench.
//
// # Sharded reclamation domains and batched retirement
//
// The Record Manager stack scales past one global reclamation domain. A
// core.ShardSpec partitions the dense thread ids of a Record Manager into N
// shards (recordmgr.Config.Shards; -shards on the CLIs) under a tid→shard
// placement policy (core.PlaceBlock keeps contiguous worker ids together,
// the NUMA-style default; core.PlaceStripe round-robins — the
// recordmgr.Config.Placement / -placement knob). Inside the epoch schemes
// the per-operation announcement scan then covers only the caller's shard,
// each shard publishes its verified epoch in a padded summary word, and the
// global epoch advances once every summary matches — with a direct member
// scan as the slow path for lagging or idle shards (in DEBRA+ that slow
// path also neutralizes cross-shard laggards, preserving fault tolerance).
// EBR's shared limbo bags and their lock are likewise per-shard. Safety is
// unchanged: no record is freed until every thread in every shard has been
// verified quiescent or at the current epoch; shards=1 reproduces the
// classic single-domain behaviour exactly. Hazard pointers and the leaking
// baseline are already fully distributed, so for them the spec is
// informational.
//
// Retirement batches the same way: core.WithRetireBatching gives the Record
// Manager per-thread deferred-retire buffers (recordmgr.Config.RetireBatch;
// -retirebatch on the CLIs) that hand full blocks to the scheme through the
// core.BlockReclaimer interface — an O(1) block splice per batch in EBR,
// QSBR, DEBRA, DEBRA+ and HP, with a per-record fallback adapter
// (core.RetireChain) for sub-block batch sizes or schemes without native
// support. Experiment 5 of cmd/reclaimbench ("shards") sweeps the
// shards × batch axes over the update-heavy hash map panel.
//
// The implementation lives under internal/ (see DESIGN.md for the map);
// runnable entry points are the programs under cmd/ and examples/, and the
// benchmarks in bench_test.go. CI (.github/workflows/ci.yml) and local
// development share the Makefile targets: build, vet, gofmt check, the test
// suite, the race-detector run (`make race`), a benchmark smoke run whose
// JSON report is archived per commit (`make bench-smoke`), and a throughput
// trend gate (`make bench-diff`) that compares the smoke report against the
// committed BENCH_baseline.json with cmd/benchdiff, failing on >30%
// median-normalised regressions.
package repro
