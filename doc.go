// Package repro is a Go reproduction of "Reclaiming Memory for Lock-Free
// Data Structures: There has to be a Better Way" (Trevor Brown, PODC 2015):
// DEBRA, DEBRA+, the Record Manager abstraction, the competing reclamation
// schemes the paper evaluates against, the data structures used in its
// evaluation, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation section.
//
// The implementation lives under internal/ (see DESIGN.md for the map);
// runnable entry points are the programs under cmd/ and examples/, and the
// benchmarks in bench_test.go.
package repro
