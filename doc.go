// Package repro is a Go reproduction of "Reclaiming Memory for Lock-Free
// Data Structures: There has to be a Better Way" (Trevor Brown, PODC 2015):
// DEBRA, DEBRA+, the Record Manager abstraction, the competing reclamation
// schemes the paper evaluates against, the data structures used in its
// evaluation, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation section.
//
// Beyond the paper's own benchmarks, internal/ds/hashmap adds a lock-free
// split-ordered hash map with incremental resizing as the first structure
// demonstrating that the Record Manager generalises: it is programmed once
// against the abstraction and runs with all six reclamation schemes (none,
// ebr, qsbr, debra, debra+, hp), including hazard-pointer traversal with
// validation and DEBRA+ neutralization-safe operation bodies. Its panels are
// experiment 4 of cmd/reclaimbench.
//
// The implementation lives under internal/ (see DESIGN.md for the map);
// runnable entry points are the programs under cmd/ and examples/, and the
// benchmarks in bench_test.go. CI (.github/workflows/ci.yml) and local
// development share the Makefile targets: build, vet, gofmt check, the test
// suite, the race-detector run (`make race`) and a benchmark smoke run whose
// JSON report is archived per commit (`make bench-smoke`).
package repro
