// Package repro is a Go reproduction of "Reclaiming Memory for Lock-Free
// Data Structures: There has to be a Better Way" (Trevor Brown, PODC 2015):
// DEBRA, DEBRA+, the Record Manager abstraction, the competing reclamation
// schemes the paper evaluates against, the data structures used in its
// evaluation, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation section.
//
// Beyond the paper's own benchmarks, internal/ds/hashmap adds a lock-free
// split-ordered hash map with incremental resizing (and an Upsert/replace
// operation) as the first structure demonstrating that the Record Manager
// generalises: it is programmed once against the abstraction and runs with
// all six reclamation schemes (none, ebr, qsbr, debra, debra+, hp). Its
// panels are experiment 4 of cmd/reclaimbench.
//
// # Sharded reclamation domains and batched retirement
//
// The Record Manager stack scales past one global reclamation domain. A
// core.ShardSpec partitions the dense thread ids of a Record Manager into N
// shards (recordmgr.Config.Shards; -shards on the CLIs) under a tid→shard
// placement policy (core.PlaceBlock keeps contiguous worker ids together,
// the NUMA-style default; core.PlaceStripe round-robins — the
// recordmgr.Config.Placement / -placement knob). Inside the epoch schemes
// the per-operation announcement scan then covers only the caller's shard,
// each shard publishes its verified epoch in a padded summary word, and the
// global epoch advances once every summary matches — with a direct member
// scan as the slow path for lagging or idle shards (in DEBRA+ that slow
// path also neutralizes cross-shard laggards, preserving fault tolerance).
// EBR's shared limbo bags and their lock are likewise per-shard. Safety is
// unchanged: no record is freed until every thread in every shard has been
// verified quiescent or at the current epoch; shards=1 reproduces the
// classic single-domain behaviour exactly. Hazard pointers and the leaking
// baseline are already fully distributed, so for them the spec is
// informational.
//
// Retirement batches the same way: core.WithRetireBatching gives the Record
// Manager per-thread deferred-retire buffers (recordmgr.Config.RetireBatch;
// -retirebatch on the CLIs) that hand full blocks to the scheme through the
// core.BlockReclaimer interface — an O(1) block splice per batch in EBR,
// QSBR, DEBRA, DEBRA+ and HP, with a per-record fallback adapter
// (core.RetireChain) for sub-block batch sizes or schemes without native
// support. Experiment 5 of cmd/reclaimbench ("shards") sweeps the
// shards × batch axes over the update-heavy hash map panel.
//
// # The quiescent-retire contract
//
// The epoch schemes' retire paths are only safe under an active
// announcement: a retire loads the current epoch, and it is the caller's own
// announced, non-quiescent state that bounds how stale that load can be by
// the time the record lands in a limbo bag — without it the epoch can
// advance arbitrarily in the window, racing the advance winner's drain of
// that very bag. EBR, QSBR, DEBRA and DEBRA+ therefore panic on a Retire or
// RetireBlock from a quiescent thread and expose core.RetirePinner
// (PinRetire/UnpinRetire), a pin-while-retiring entry point without the
// scan, advance, rotation or neutralization side effects of a full
// operation boundary. Callers rarely see any of this: RecordManager.Retire
// routes quiescent callers (data structure postambles after EnterQstate,
// DEBRA+ recovery paths) through the pin automatically, and
// RecordManager.FlushRetired pins around the hand-off of a parked batch —
// which is what makes its documented "safe from quiescent shutdown paths"
// contract actually hold.
//
// # Asynchronous reclamation
//
// recordmgr.Config.Reclaimers (core.WithAsyncReclaim; -async / -reclaimers
// on the CLIs) moves reclamation off the workers' critical path entirely: N
// dedicated reclaimer goroutines register as extra epoch participants (the
// scheme, allocator and pool are built for Threads+Reclaimers dense ids) and
// drain per-shard hand-off queues of retired blocks behind the workers. A
// worker's Retire becomes an O(1) append to its deferred-retire buffer plus,
// once per batch, an O(1) lock-free push of the detached blocks
// (blockbag.SharedStack) — the worker never touches the scheme's retire
// path. Each reclaimer drain cycle is a complete pinned operation on the
// reclaimer's own tid, so the hand-off is sound under the same epoch
// argument as a worker's retire, and idle reclaimers keep cycling (with
// backoff) while limbo remains, so grace periods advance even when every
// worker is quiescent. ManagerStats reports the pipeline's true footprint:
// Unreclaimed = scheme limbo + deferred-retire buffers + hand-off queues
// (the "unreclaimed" column in the bench JSON/CSV; scheme limbo alone
// understates it).
//
// Shutdown follows a fixed ordering — workers quiesce, buffers flush,
// reclaimers drain, limbo is force-freed: RecordManager.Close performs all
// four steps (the force-free through core.LimboDrainer, which every
// reclaiming scheme implements for the all-quiescent shutdown case), after
// which Retired == Freed. Experiment 6 of cmd/reclaimbench ("async") sweeps
// async off/on × reclaimer count over the update-heavy hash map panel
// across all six schemes.
//
// # Thread lifecycle
//
// The Record Manager's per-thread state — scheme announcement slots, limbo
// bags, pool caches, retire buffers, handle tables — is still sized once,
// at construction, for a fixed capacity of dense thread ids
// (recordmgr.Config.MaxThreads, defaulting to Threads). Which goroutine
// owns which id is no longer fixed: a core.SlotRegistry hands slots out at
// runtime through a lock-free free list. There are two binding styles, and
// they compose on one manager:
//
//   - Static: RecordManager.Handle(tid) (and the data structures' tid-based
//     methods) permanently claims tid's slot on first use — the historical
//     fixed-Threads wiring, byte-for-byte compatible.
//   - Dynamic: RecordManager.AcquireHandle() binds the calling goroutine to
//     a vacant slot and returns its ThreadHandle; ReleaseHandle returns the
//     slot for reuse. The data structures expose the same pair
//     (AcquireHandle/ReleaseHandle), so a server's request goroutines can
//     come and go without any tid bookkeeping (examples/kvstore is the
//     usage demo; internal/kvservice is the production-shaped version).
//
// Release is only legal from a quiescent, flushed state — the slot-registry
// sibling of the quiescent-retire contract: ReleaseHandle panics when the
// slot's announcement is still active (or, under hazard pointers, a
// protection slot is still held), then drains the slot's deferred-retire
// buffer under the scheme's retire pin and hands the slot's private pool
// cache back to the shared pool (core.ThreadDrainer). Only after that is
// the slot pushed onto the free list, and the push/pop CAS pair is the
// happens-before edge to the next acquirer — so a reused tid can never
// inherit a stale epoch or hazard-pointer announcement, and starts from the
// same state a freshly constructed slot has.
//
// Vacant slots are quiescent by that contract, so the schemes' scan paths
// skip them: per-shard occupancy summary words (maintained by the registry,
// exposed through core.ShardMap) let the epoch schemes verify an idle shard
// in O(1) and a shard's only live occupant skip its member scan entirely,
// DEBRA/DEBRA+ fast-forward their incremental scan cycle past vacant
// members (keeping the cycle proportional to the live population, not the
// capacity), DEBRA+ never signals a vacant slot, and the hazard-pointer
// reclamation scan skips vacant threads' slot arrays. The remaining race —
// a scanner observes a slot vacant while a goroutine concurrently acquires
// it — is exactly the quiescent-thread-wakes race every scheme already
// tolerates. Experiment 8 of cmd/reclaimbench ("churn"; -churn applies the
// knob to any experiment) measures throughput and the acquire/release
// latency under goroutine churn, and cmd/benchdiff reports the per-cycle
// ns columns alongside the trend gate.
//
// # Hot-path cost model
//
// The paper's performance claim is that DEBRA makes every reclamation
// operation O(1) with tiny constants, and Hart et al.'s reclamation study
// shows exactly those per-operation constants dominating scheme
// comparisons. The Record Manager stack therefore keeps its own per-op
// constants explicit — and small:
//
//   - Statistics counters are single-writer core.Counter cells (a plain
//     read of the owner's last value plus an atomic publishing store),
//     grouped into padded per-thread blocks. The stack used to pay a
//     LOCK-prefixed atomic.Int64.Add — a full read-modify-write — on four
//     or more per-thread counters per data structure operation (scheme
//     retired/freed/scans, pool reused/freed, allocator allocated,
//     retire-buffer pending); none remain on the hot path, enforced by the
//     guard test in internal/core. Genuinely multi-writer cells (the global
//     epoch and grace clocks, announcement words, shared-stack depths)
//     stay atomic.
//   - Per-thread handles devirtualize the fast path. A worker resolves
//     RecordManager.Handle(tid) once at registration; the ThreadHandle
//     caches direct pointers to the thread's deferred-retire buffer, pool
//     fast path (core.PoolHandle), the scheme's per-thread view
//     (core.ReclaimerHandle — announcement slot, limbo state, shard member
//     list, counters resolved at construction) and the capability
//     interfaces (core.RetirePinner) that the generic path type-asserts per
//     call. A steady-state operation through a handle performs zero
//     threads[tid] slice indexing and at most one interface call per
//     primitive; a batched Retire is a buffer append with no interface call
//     at all. All four data structures thread handles through their
//     operation bodies and expose DS-level Handle types the bench workers
//     use; the tid-based APIs remain as thin wrappers.
//
// What one steady-state operation costs per scheme, in Record Manager
// primitives (data structure work excluded): none — nothing but the leak
// counter; epoch schemes (EBR, QSBR, DEBRA, DEBRA+) — one announcement
// store at each operation boundary plus the scheme's (possibly amortised)
// scan share, with DEBRA/DEBRA+ amortising to O(1) checks; HP — one
// sequentially consistent announcement store per record visited (the
// paper's dominant HP cost) plus an amortised scan per retireThreshold
// retires. Retirement adds a bag append (plus, per batch, one O(1) block
// splice or lock-free hand-off push under batching/async); allocation is a
// pool bag pop. Experiment 7 of cmd/reclaimbench ("hotpath") measures these
// per-op microcosts directly — a pin/unpin probe and an allocate/retire
// round-trip probe per scheme — and cmd/benchdiff reports the ns/op columns
// of those probes alongside the trend gate.
//
// # Self-tuning runtime
//
// The sharding, batching and async-reclamation knobs above are static
// per-run configuration — right for a benchmark, wrong for a service whose
// traffic shifts. recordmgr.Config.Adaptive (core.WithController; -adaptive
// on cmd/kvserver) attaches a core.Controller: a feedback loop, one
// observation and at most three lever writes per control period
// (AdaptiveInterval, default 10ms), that moves all three knobs with the
// live workload. Effective shards track live slot occupancy
// (SlotRegistry.SetEffectiveShards biases placement onto a shard prefix so
// the occupancy-aware scans skip the rest); the per-thread retire batch
// follows the observed retire rate by AIMD between configurable bounds
// (MinRetireBatch/MaxRetireBatch), growing while retirement is hot and the
// Unreclaimed backlog is modest or shrinking, halving on lulls — written
// only to the existing padded per-thread limit cells, so the hot path gains
// no atomics; and the active reclaimer count scales with the hand-off
// backlog between 1 and the constructed pool, with lock-free work stealing
// (blockbag.SharedStack detach) draining a deactivated reclaimer's queue so
// scale-down never strands a record and the Close invariant
// (Retired == Freed) is preserved. Every lever is a bias, not a safety
// input: extreme settings degenerate to configurations the stack already
// runs, so a mis-tuned controller costs throughput, never correctness.
// Experiment 10 of cmd/reclaimbench ("adaptive") runs a phase-changing
// workload comparing static-optimal, static-worst and adaptive
// configurations, publishing the controller's decision trajectory
// (traj_live/traj_shards/traj_batch/traj_reclaimers) into the bench JSON,
// and docs/OPERATIONS.md covers when to pin the knobs instead.
//
// # The KV service layer
//
// The stack's deployment story is concrete: internal/kvservice serves N
// partitioned hash map namespaces (internal/ds/hashmap.Partitioned — keys
// route to a partition by the high bits of the same hash whose low bits
// index buckets, one Record Manager per partition) behind the
// length-prefixed binary protocol of internal/kvwire (GET/PUT/DEL/STATS;
// specified in docs/PROTOCOL.md). Every connection goroutine follows the
// dynamic-binding contract above: it acquires a slot in each partition for
// a bounded burst of requests and releases at the burst boundary, so
// connections can vastly outnumber slots and an idle or slow client holds
// no reclamation state at all. cmd/kvserver and cmd/kvload are the server
// and load-generator binaries (docs/OPERATIONS.md covers every flag,
// scheme selection and how to read the latency tail), and experiment 9 of
// cmd/reclaimbench ("service") runs the pair in-process, publishing
// p50/p99/p999 request latencies per scheme into the bench JSON and
// hard-failing any trial whose reclaiming scheme exits with
// Retired != Freed.
//
// # Fault injection and graceful degradation
//
// The paper's motivating failure — one stalled thread making an epoch
// scheme's unreclaimed memory grow without bound — is reproduced on
// demand, not waited for. internal/faultinject is a deterministic fault
// plane over the reclaimer: a Plan of seeded, replayable triggers (timed
// stalls, gated "crash" parks that hold a victim mid-operation until
// released, derived chaos schedules) fires at the scheme's operation
// boundaries. recordmgr.Config.FaultPlan interposes it with
// faultinject.Wrap, which forwards the block-retirement and sharding
// capability interfaces so the wrapped stack behaves identically; with no
// plan there is no wrapper and no cost. faultinject.Probe runs the
// two-phase measurement — unreclaimed growth per operation with and
// without a stalled thread — and classifies each scheme bounded or
// unbounded by the slope delta: DEBRA+ (neutralization) and HP (bounded by
// construction) stay flat, EBR/QSBR/DEBRA approach one record per
// operation behind the stalled announcement. Experiment 11 of
// cmd/reclaimbench ("faults") sweeps the probe over every scheme and
// stall count and adds a chaos-mode KV service panel (client-side
// mid-frame stalls and connection kills via internal/kvload's chaos
// flags) that must still shut down with Retired == Freed; cmd/benchdiff
// excludes the fault rows from the throughput gate and renders them as
// classification and resilience tables instead.
//
// The service layer holds up its own end: every read and write carries a
// deadline, slot acquisition is bounded in time and queue depth with an
// ERR_BUSY fast-fail that leaves the connection usable, and a background
// reaper closes peers that complete no frame — so a dead, stalled or
// malicious peer can never park a handler goroutine or the worker slots
// it would bind. internal/kvload retries transient failures with
// exponential backoff and jitter, reconnects through connection loss, and
// reports the recovery work (busy/retries/reconnects/gaveup) in its
// results. docs/OPERATIONS.md ("Fault tolerance") is the operator's view.
//
// # Static analysis
//
// The contracts above are also proven at build time. cmd/reclaimvet is a
// multichecker (internal/analysis, self-contained on the standard
// library) that typechecks every package in the module — test files
// included — and runs six repository-specific analyzers over the result:
// retirepin (raw Retire/RetireBlock/FlushRetired call sites must be
// dominated by LeaveQstate/PinRetire or go through the auto-pinning
// RecordManager/ThreadHandle wrappers — the static face of the
// quiescent-retire panic), handlepair (an acquired ThreadHandle must
// reach ReleaseHandle on every non-panic path, and a deferred release
// must not sit inside the acquire loop), singlewriter (per-thread stat
// carriers declare their counters as core.Counter and nothing applies an
// atomic read-modify-write to them — the single-writer hot-path cost
// model, previously a grep-based test), protectorder (in internal/ds
// packages a pointer loaded before Protect is re-validated before
// dereference and never dereferenced after Unprotect — the hazard-pointer
// idiom), noclock (no wall clock on paths reachable from
// core.Controller.Step, nor in test files that drive Step, keeping the
// self-tuning controller deterministic), and exporteddoc (exported
// identifiers in the API-surface packages carry doc comments). Deliberate
// exceptions are annotated //lint:allow <analyzer> <reason>; the driver
// rejects bare, reasonless, unknown-analyzer and stale markers, so the
// escape hatch cannot rot. Each analyzer ships with golden-file tests
// under internal/analysis/testdata (a separate module, invisible to
// go build ./...) proving it fires on seeded violations.
//
// The implementation lives under internal/ (see docs/ARCHITECTURE.md for
// the layer map and the stack's two load-bearing contracts stated as
// invariants); runnable entry points are the programs under cmd/ and
// examples/ (indexed in examples/README.md), and the benchmarks in
// bench_test.go. CI (.github/workflows/ci.yml) and local development share
// the Makefile targets: build, vet, gofmt check, the reclamation-contract
// analyzers over every package (`make vet-reclaim`), the test suite, the
// race-detector run (`make race`), a benchmark smoke run whose JSON report
// is archived per commit (`make bench-smoke`), and a throughput trend gate
// (`make bench-diff`) that compares the smoke report against the committed
// BENCH_baseline.json with cmd/benchdiff, failing on >30%
// median-normalised regressions.
package repro
