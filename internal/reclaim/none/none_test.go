package none_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim/none"
	"repro/internal/reclaimtest"
)

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return none.New[reclaimtest.Record](n)
}

func TestConformance(t *testing.T) { reclaimtest.Conformance(t, factory) }

func TestStress(t *testing.T) { reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions()) }

func TestNeverFrees(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := none.New[reclaimtest.Record](1)
	_ = sink
	for i := 0; i < 10_000; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	s := r.Stats()
	if s.Retired != 10_000 {
		t.Fatalf("Retired=%d", s.Retired)
	}
	if s.Freed != 0 {
		t.Fatalf("Freed=%d want 0", s.Freed)
	}
	if s.Limbo != 10_000 {
		t.Fatalf("Limbo=%d want 10000", s.Limbo)
	}
}

func TestRetireNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	//lint:allow retirepin deliberate Retire(nil): asserts the validation panic; the none scheme has no quiescent state
	none.New[reclaimtest.Record](1).Retire(0, nil)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	none.New[reclaimtest.Record](0)
}
