// Package none provides the "no reclamation" baseline used throughout the
// paper's experiments ("None"): retired records are counted but never freed,
// so the data structure pays no reclamation overhead and its memory
// footprint grows without bound.
package none

import (
	"repro/internal/blockbag"
	"repro/internal/core"
)

// Option configures the reclaimer.
type Option func(*config)

type config struct {
	spec core.ShardSpec
}

// WithShards records a sharded-domain spec for instrumentation parity with
// the epoch schemes; the leaking baseline has no reclamation state to shard.
func WithShards(spec core.ShardSpec) Option { return func(c *config) { c.spec = spec } }

// Reclaimer is the no-op reclaimer. It is safe (it never frees anything) but
// leaks every retired record.
type Reclaimer[T any] struct {
	smap    *core.ShardMap
	threads []thread
	handles []handle[T]
}

type thread struct {
	// retired is a single-writer counter (core.Counter): written by the
	// owning tid, read racily by Stats.
	retired core.Counter
	_       [core.PadBytes]byte
}

// handle is one thread's fast-path view (core.ReclaimerHandle): everything
// is a no-op except the leak counter.
type handle[T any] struct {
	t *thread
}

// New creates a no-op reclaimer for n threads.
func New[T any](n int, opts ...Option) *Reclaimer[T] {
	if n <= 0 {
		panic("none: New requires n >= 1")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	r := &Reclaimer[T]{smap: core.NewShardMap(n, cfg.spec), threads: make([]thread, n)}
	r.handles = make([]handle[T], n)
	for i := range r.handles {
		r.handles[i] = handle[T]{t: &r.threads[i]}
	}
	return r
}

// Handle implements core.HandledReclaimer.
func (r *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] { return &r.handles[tid] }

// LeaveQstate implements core.ReclaimerHandle (no-op).
func (h *handle[T]) LeaveQstate() bool { return false }

// EnterQstate implements core.ReclaimerHandle (no-op).
func (h *handle[T]) EnterQstate() {}

// Retire implements core.ReclaimerHandle: count and leak.
func (h *handle[T]) Retire(rec *T) {
	if rec == nil {
		panic("none: Retire(nil)")
	}
	h.t.retired.Inc()
}

// Protect implements core.ReclaimerHandle (always succeeds).
func (h *handle[T]) Protect(rec *T) bool { return true }

// Unprotect implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Unprotect(rec *T) {}

// Checkpoint implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Checkpoint() {}

// ShardMap implements core.Sharded (informational only).
func (r *Reclaimer[T]) ShardMap() *core.ShardMap { return r.smap }

// RetireBlock implements core.BlockReclaimer: the whole batch is counted and
// leaked in O(1). The block itself holds leaked records forever, so there is
// no spare to hand back.
func (r *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	if blk == nil {
		return nil
	}
	r.threads[tid].retired.Add(int64(blk.Len()))
	return nil
}

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "none" }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:                   "None",
		Termination:              core.ProgressWaitFree,
		TraverseRetiredToRetired: true,
		// Leaking is trivially "fault tolerant" in the sense that a crashed
		// process cannot make things worse, but garbage is unbounded.
		FaultTolerant:  true,
		BoundedGarbage: false,
	}
}

// LeaveQstate implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) LeaveQstate(tid int) bool { return false }

// EnterQstate implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) EnterQstate(tid int) {}

// IsQuiescent implements core.Reclaimer.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool { return true }

// Retire implements core.Reclaimer; the record is counted and leaked.
func (r *Reclaimer[T]) Retire(tid int, rec *T) { r.handles[tid].Retire(rec) }

// PinRetire implements core.RetirePinner (no-op: the leaking baseline has no
// epoch state for a retire to race).
func (r *Reclaimer[T]) PinRetire(tid int) {}

// UnpinRetire implements core.RetirePinner (no-op).
func (r *Reclaimer[T]) UnpinRetire(tid int) {}

// Protect implements core.Reclaimer (always succeeds).
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return true }

// Unprotect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return true }

// RProtect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {}

// RUnprotectAll implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RUnprotectAll(tid int) {}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return false }

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return false }

// Checkpoint implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Checkpoint(tid int) {}

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	var s core.Stats
	for i := range r.threads {
		s.Retired += r.threads[i].retired.Load()
	}
	s.Limbo = s.Retired
	return s
}

var (
	_ core.Reclaimer[int]      = (*Reclaimer[int])(nil)
	_ core.BlockReclaimer[int] = (*Reclaimer[int])(nil)
	_ core.Sharded             = (*Reclaimer[int])(nil)
	_ core.RetirePinner        = (*Reclaimer[int])(nil)

	_ core.HandledReclaimer[int] = (*Reclaimer[int])(nil)
)
