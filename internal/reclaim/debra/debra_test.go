package debra_test

import (
	"testing"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaimtest"
)

// fast returns options that make epochs advance quickly in unit tests.
func fast() []debra.Option {
	return []debra.Option{debra.WithCheckThresh(1), debra.WithIncrThresh(1)}
}

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return debra.New(n, sink, fast()...)
}

func factoryDefault(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return debra.New(n, sink)
}

func TestConformance(t *testing.T)        { reclaimtest.Conformance(t, factory) }
func TestConformanceDefault(t *testing.T) { reclaimtest.Conformance(t, factoryDefault) }
func TestStressFastEpochs(t *testing.T) {
	reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions())
}
func TestStressDefaultPacing(t *testing.T) {
	reclaimtest.Stress(t, factoryDefault, reclaimtest.DefaultStressOptions())
}

// retireMany drives tid through ops, retiring fresh records, and returns them.
func retireMany(r *debra.Reclaimer[reclaimtest.Record], tid, n int) []*reclaimtest.Record {
	recs := make([]*reclaimtest.Record, 0, n)
	for i := 0; i < n; i++ {
		r.LeaveQstate(tid)
		rec := &reclaimtest.Record{ID: int64(i)}
		r.Retire(tid, rec)
		recs = append(recs, rec)
		r.EnterQstate(tid)
	}
	return recs
}

// TestSingleThreadReclaims checks that a single thread reclaims its own
// retired records once enough operations (and therefore epochs) pass. Only
// full blocks move to the pool, so we retire several blocks' worth.
func TestSingleThreadReclaims(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New(1, sink, fast()...)
	n := 4 * blockbag.BlockSize
	retireMany(r, 0, n)
	// A few empty operations to advance epochs and rotate bags.
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatalf("no records freed after %d retires (stats=%+v epoch=%d)", n, r.Stats(), r.Epoch())
	}
	s := r.Stats()
	if s.Freed > s.Retired {
		t.Fatalf("freed %d > retired %d", s.Freed, s.Retired)
	}
	// At most 3 partial head blocks (one per limbo bag) may be withheld.
	if s.Limbo > 3*int64(blockbag.BlockSize) {
		t.Fatalf("limbo=%d exceeds the 3 partial-block bound", s.Limbo)
	}
}

// TestRecordNotFreedBeforeTwoEpochs checks the core epoch-safety property:
// a retired record is not handed to the sink until the epoch has advanced at
// least twice past its retirement.
func TestRecordNotFreedBeforeTwoEpochs(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New(2, sink, fast()...)

	// Thread 1 is in the middle of an operation: it announced the current
	// epoch and holds (conceptually) pointers into the structure.
	r.LeaveQstate(1)

	// Thread 0 retires many records; thread 1 never finishes its operation,
	// so no record may be freed.
	for i := 0; i < 3*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got != 0 {
		t.Fatalf("%d records freed while thread 1 was still in its operation", got)
	}

	// Thread 1 finishes; after thread 0 performs more operations the epoch
	// advances and reclamation proceeds.
	r.EnterQstate(1)
	for i := 0; i < 20; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("records never freed after thread 1 became quiescent")
	}
}

// TestQuiescentThreadDoesNotBlock demonstrates DEBRA's partial fault
// tolerance: threads that are quiescent (crashed or descheduled BETWEEN
// operations) never delay reclamation.
func TestQuiescentThreadDoesNotBlock(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New(8, sink, fast()...) // threads 1..7 never run at all
	// With fast epochs the retires are spread across the three limbo bags,
	// and only full blocks are ever moved to the sink, so retire enough to
	// fill several blocks per bag.
	retireMany(r, 0, 12*blockbag.BlockSize)
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("quiescent threads blocked reclamation (they must not)")
	}
}

// TestStalledOperationBlocksReclamation is the flip side: DEBRA alone is NOT
// fault tolerant, so a thread stalled inside an operation stops everyone
// from freeing memory (this is what DEBRA+ fixes).
func TestStalledOperationBlocksReclamation(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New(2, sink, fast()...)
	r.LeaveQstate(1) // stalled mid-operation
	retireMany(r, 0, 4*blockbag.BlockSize)
	if got := sink.Freed(); got != 0 {
		t.Fatalf("%d records freed despite a thread stalled mid-operation", got)
	}
	if r.Stats().Limbo == 0 {
		t.Fatal("expected records to accumulate in limbo")
	}
}

// TestEpochAdvancesRequireFullScan checks that the epoch only advances after
// the incremental scan has covered every thread.
func TestEpochAdvancesRequireFullScan(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	const n = 5
	r := debra.New(n, sink, fast()...)
	start := r.Epoch()
	// All threads must participate (or be quiescent); with every thread
	// quiescent except thread 0, thread 0 still needs at least n checks.
	for i := 0; i < n-1; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if r.Epoch() != start {
		t.Fatalf("epoch advanced after only %d operations (scan cannot have covered all %d threads)", n-1, n)
	}
	for i := 0; i < n+2; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if r.Epoch() == start {
		t.Fatal("epoch never advanced even though all other threads are quiescent")
	}
}

// TestIncrThreshDelaysAdvance checks the INCR_THRESH pacing: with the
// default threshold of 100, a lone thread does not advance the epoch on
// every operation.
func TestIncrThreshDelaysAdvance(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New(1, sink, debra.WithCheckThresh(1), debra.WithIncrThresh(100))
	start := r.Epoch()
	for i := 0; i < 50; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if r.Epoch() != start {
		t.Fatal("epoch advanced before INCR_THRESH operations")
	}
	for i := 0; i < 200; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if r.Epoch() == start {
		t.Fatal("epoch never advanced after INCR_THRESH operations")
	}
}

// TestBlockSinkReceivesWholeBlocks verifies the O(1) block transfer path:
// when the sink supports blocks, records arrive in multiples of BlockSize.
func TestBlockSinkReceivesWholeBlocks(t *testing.T) {
	sink := &blockRecordingSink{}
	r := debra.New[reclaimtest.Record](1, sink, fast()...)
	retireMany2(r, 0, 3*blockbag.BlockSize)
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.blocks == 0 {
		t.Fatal("block sink never received a block")
	}
	if sink.singles != 0 {
		t.Fatalf("block sink received %d individual records; expected whole blocks only", sink.singles)
	}
}

func retireMany2(r *debra.Reclaimer[reclaimtest.Record], tid, n int) {
	for i := 0; i < n; i++ {
		r.LeaveQstate(tid)
		r.Retire(tid, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(tid)
	}
}

// blockRecordingSink counts whole-block versus individual frees.
type blockRecordingSink struct {
	blocks  int
	singles int
}

func (s *blockRecordingSink) Free(tid int, rec *reclaimtest.Record) { s.singles++ }

func (s *blockRecordingSink) FreeBlocks(tid int, chain *blockbag.Block[reclaimtest.Record]) {
	for blk := chain; blk != nil; blk = blk.Next() {
		s.blocks++
	}
}

func TestNewValidation(t *testing.T) {
	if !panics(func() { debra.New[reclaimtest.Record](0, reclaimtest.NewRecordingSink()) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { debra.New[reclaimtest.Record](1, nil) }) {
		t.Fatal("expected panic for nil sink")
	}
	//lint:allow retirepin deliberate contract violation: asserts the Retire(nil) panic fires before any pin check matters
	if !panics(func() { debra.New[reclaimtest.Record](1, reclaimtest.NewRecordingSink()).Retire(0, nil) }) {
		t.Fatal("expected panic for Retire(nil)")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

// --- sharded domains ---------------------------------------------------------

// TestShardedCrossShardSafety: with shard-local incremental scans, a record
// retired in shard 0 must still not be freed while a thread of shard 1 is
// mid-operation.
func TestShardedCrossShardSafety(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New[reclaimtest.Record](4, sink,
		append(fast(), debra.WithShards(core.ShardSpec{Shards: 2}))...)
	r.LeaveQstate(3) // other-shard thread mid-operation, not quiescent
	// Retire several blocks' worth: the retires may straddle one epoch
	// rotation, but at least one limbo bag then holds a full block (partial
	// head blocks stay behind by design, so assertions below are on freed
	// counts, not individual records).
	for i := 0; i < 4*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	for i := 0; i < 400; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got != 0 {
		t.Fatalf("%d records freed while a thread of another shard was mid-operation", got)
	}
	r.EnterQstate(3)
	for i := 0; i < 400; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got < int64(blockbag.BlockSize) {
		t.Fatalf("only %d records freed after the other shard became quiescent", got)
	}
}

// TestShardedQuiescentShardDoesNotBlock: a shard whose members are all
// quiescent passes through the summary-phase slow path.
func TestShardedQuiescentShardDoesNotBlock(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debra.New[reclaimtest.Record](6, sink,
		append(fast(), debra.WithShards(core.ShardSpec{Shards: 3}))...)
	for i := 0; i < 2000; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("quiescent shards blocked reclamation")
	}
}

// TestShardedStress runs the generic reclaimer stress over both placements.
func TestShardedStress(t *testing.T) {
	for _, placement := range []core.ShardPlacement{core.PlaceBlock, core.PlaceStripe} {
		t.Run(string(placement), func(t *testing.T) {
			reclaimtest.Stress(t, func(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
				return debra.New[reclaimtest.Record](n, sink,
					append(fast(), debra.WithShards(core.ShardSpec{Shards: 2, Placement: placement}))...)
			}, reclaimtest.DefaultStressOptions())
		})
	}
}

// TestRetireBlockSplice checks the O(1) batched-retire path: the spliced
// block's records rotate through the limbo bags and reach the sink whole.
func TestRetireBlockSplice(t *testing.T) {
	sink := &blockRecordingSink{}
	r := debra.New[reclaimtest.Record](1, sink, fast()...)
	bag := blockbag.New[reclaimtest.Record](nil)
	for i := 0; i < blockbag.BlockSize; i++ {
		bag.Add(&reclaimtest.Record{ID: int64(i)})
	}
	r.LeaveQstate(0)
	r.RetireBlock(0, bag.DetachAllFullBlocks())
	r.EnterQstate(0)
	if got := r.Stats().Retired; got != int64(blockbag.BlockSize) {
		t.Fatalf("Retired = %d want %d", got, blockbag.BlockSize)
	}
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.blocks == 0 {
		t.Fatal("spliced block never reached the sink as a whole block")
	}
	if sink.singles != 0 {
		t.Fatalf("%d records arrived individually", sink.singles)
	}
}
