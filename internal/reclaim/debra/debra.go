// Package debra implements DEBRA, the distributed epoch based reclamation
// scheme of Section 4 of the paper (Figure 4 pseudocode).
//
// Differences from classical EBR that this implementation reproduces:
//
//   - Private limbo bags: each thread keeps three block bags of records it
//     retired (one per recent epoch) and rotates them locally; there is no
//     shared limbo bag to synchronise on.
//   - Incremental announcement scanning: instead of reading every thread's
//     announcement at the start of every operation, a thread checks a single
//     announcement every CHECK_THRESH operations and only attempts to
//     advance the epoch after it has observed all n announcements (and has
//     performed at least INCR_THRESH operations since its last advance
//     attempt), amortising the scan to O(1) per operation.
//   - Quiescent bit: the least significant bit of a thread's announcement
//     word records whether the thread is between operations. Quiescent
//     threads do not delay the epoch, which is DEBRA's partial fault
//     tolerance: a thread that crashes (or is descheduled) outside an
//     operation does not stop reclamation.
//   - Block transfers: when a thread observes a new epoch it rotates its
//     limbo bags and moves all full blocks of the oldest bag to the free
//     sink in O(1) (whole blocks when the sink supports it).
//
// Every operation (LeaveQstate, EnterQstate, Retire) takes O(1) worst-case
// steps, matching the paper's complexity claim.
package debra

import (
	"sync/atomic"

	"repro/internal/blockbag"
	"repro/internal/core"
)

// Default pacing constants from the paper's experiments.
const (
	// DefaultCheckThresh is the number of leaveQstate calls between
	// checks of another thread's announcement (CHECK_THRESH).
	DefaultCheckThresh = 1
	// DefaultIncrThresh is the minimum number of leaveQstate calls before a
	// thread attempts to increment the epoch (INCR_THRESH, 100 in the
	// paper's experiments).
	DefaultIncrThresh = 100
)

// epochInc is the amount by which the global epoch advances: announcements
// reserve their least significant bit for the quiescent flag, so epochs are
// always even.
const epochInc = 2

// quiescentBit is the quiescent flag within an announcement word.
const quiescentBit = 1

// Option configures the reclaimer.
type Option func(*config)

type config struct {
	checkThresh int64
	incrThresh  int64
	spec        core.ShardSpec
}

// WithShards partitions the incremental announcement scan into sharded
// domains (core.ShardSpec): a thread's scan cycle covers its own shard's
// members and then the per-shard summary words instead of all n
// announcements, shortening the cycle from n checks to n/s + s and keeping
// the checked cache lines shard-local (the NUMA motivation behind
// CHECK_THRESH, taken further). Lagging shards — typically shards whose
// members are all quiescent — are verified by a direct member scan, so the
// epoch still never advances until every thread has been observed quiescent
// or at the current epoch; with one shard the behaviour is the classic
// DEBRA scan.
func WithShards(spec core.ShardSpec) Option { return func(c *config) { c.spec = spec } }

// WithCheckThresh sets how many operations pass between reads of another
// thread's announcement (the paper's CHECK_THRESH, used to avoid cross-socket
// cache misses on NUMA machines).
func WithCheckThresh(v int) Option { return func(c *config) { c.checkThresh = int64(v) } }

// WithIncrThresh sets the minimum number of operations between epoch-advance
// attempts (the paper's INCR_THRESH).
func WithIncrThresh(v int) Option { return func(c *config) { c.incrThresh = int64(v) } }

// Reclaimer implements core.Reclaimer with DEBRA.
type Reclaimer[T any] struct {
	sink core.FreeSink[T]
	cfg  config

	epoch   atomic.Int64 // always a multiple of epochInc
	smap    *core.ShardMap
	shards  []shardSummary
	shared  []announceSlot
	threads []thread[T]
	handles []handle[T]

	blockSink core.BlockFreeSink[T] // sink if it supports whole blocks, else nil
}

// handle is one thread's fast-path view (core.ReclaimerHandle): the thread's
// private state, announcement slot and shard scan set resolved once at
// construction, so per-operation calls index no slices at all.
type handle[T any] struct {
	r       *Reclaimer[T]
	t       *thread[T]
	slot    *announceSlot
	tid     int
	members []int // the owning shard's member tids
	self    int   // the owning shard
}

// shardSummary is a shard's verified-epoch word, padded to its own cache
// lines (stored by whichever member completes the member phase of its scan,
// read by every thread's summary phase).
type shardSummary struct {
	v atomic.Int64
	_ [core.PadBytes]byte
}

// announceSlot is a thread's announcement word (epoch | quiescent bit),
// padded to its own cache lines because it is written by its owner and read
// by every other thread.
type announceSlot struct {
	v atomic.Int64
	_ [core.PadBytes]byte
}

// thread holds the private, single-owner state of one thread.
type thread[T any] struct {
	bags       [3]*blockbag.Bag[T]
	currentBag *blockbag.Bag[T]
	index      int

	checkNext     int64
	opsSinceCheck int64
	opsSinceIncr  int64

	blockPool *blockbag.BlockPool[T]

	// Single-writer statistics counters (core.Counter): written by the
	// owning tid (or by a quiescent-shutdown drainer holding a
	// happens-before edge), read racily by Stats.
	retired       core.Counter
	freed         core.Counter
	epochAdvances core.Counter
	scans         core.Counter

	_ [core.PadBytes]byte
}

// New creates a DEBRA reclaimer for n threads. Reclaimed records are given
// to sink; if sink also implements core.BlockFreeSink, full blocks are moved
// wholesale.
func New[T any](n int, sink core.FreeSink[T], opts ...Option) *Reclaimer[T] {
	if n <= 0 {
		panic("debra: New requires n >= 1")
	}
	if sink == nil {
		panic("debra: New requires a FreeSink")
	}
	cfg := config{checkThresh: DefaultCheckThresh, incrThresh: DefaultIncrThresh}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.checkThresh < 1 {
		cfg.checkThresh = 1
	}
	if cfg.incrThresh < 1 {
		cfg.incrThresh = 1
	}
	smap := core.NewShardMap(n, cfg.spec)
	r := &Reclaimer[T]{
		sink:    sink,
		cfg:     cfg,
		smap:    smap,
		shards:  make([]shardSummary, smap.Shards()),
		shared:  make([]announceSlot, n),
		threads: make([]thread[T], n),
	}
	if bs, ok := sink.(core.BlockFreeSink[T]); ok {
		r.blockSink = bs
	}
	r.epoch.Store(epochInc)
	for i := range r.threads {
		t := &r.threads[i]
		t.blockPool = blockbag.NewBlockPool[T](blockbag.DefaultBlockPoolCap)
		for j := range t.bags {
			t.bags[j] = blockbag.New(t.blockPool)
		}
		t.currentBag = t.bags[0]
		t.index = 0
		// Every thread starts quiescent with an announcement that differs
		// from the current epoch, so its first LeaveQstate rotates nothing.
		r.shared[i].v.Store(quiescentBit)
	}
	r.handles = make([]handle[T], n)
	for i := range r.handles {
		self := smap.ShardOf(i)
		r.handles[i] = handle[T]{
			r:       r,
			t:       &r.threads[i],
			slot:    &r.shared[i],
			tid:     i,
			self:    self,
			members: smap.Members(self),
		}
	}
	return r
}

// Handle implements core.HandledReclaimer.
func (r *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] { return &r.handles[tid] }

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "debra" }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:                   "DEBRA",
		ModPerOperation:          true,
		ModPerRetiredRecord:      true,
		Termination:              core.ProgressWaitFree,
		TraverseRetiredToRetired: true,
		FaultTolerant:            false, // partial: only quiescent crashes are tolerated
		BoundedGarbage:           false,
	}
}

// getQuiescentBit returns thread other's quiescent flag.
func (r *Reclaimer[T]) getQuiescentBit(other int) bool {
	return r.shared[other].v.Load()&quiescentBit != 0
}

// isEqual reports whether announcement ann announces epoch readEpoch.
func isEqual(readEpoch, ann int64) bool { return readEpoch == ann&^quiescentBit }

// LeaveQstate implements core.Reclaimer (Figure 4, leaveQstate).
func (r *Reclaimer[T]) LeaveQstate(tid int) bool { return r.handles[tid].LeaveQstate() }

// LeaveQstate implements core.ReclaimerHandle (Figure 4, leaveQstate): the
// same incremental scan as the tid-based entry point, with the thread's
// private state, announcement slot and shard member list pre-resolved.
func (h *handle[T]) LeaveQstate() bool {
	r, t := h.r, h.t
	result := false
	readEpoch := r.epoch.Load()
	if !isEqual(readEpoch, h.slot.v.Load()) {
		// Our announcement differs from the current epoch: we are observing
		// a new epoch, so the records in our oldest limbo bag were retired
		// at least two epochs ago and can be reclaimed.
		t.opsSinceCheck = 0
		t.checkNext = 0
		t.opsSinceIncr = 0
		r.rotateAndReclaim(h.tid)
		result = true
	}
	// Incrementally scan: one check every CHECK_THRESH operations. The scan
	// cycle first covers the caller's shard members (publishing the shard's
	// verified epoch in its summary word once complete), then the other
	// shards' summary words.
	t.opsSinceCheck++
	t.opsSinceIncr++
	if t.opsSinceCheck >= r.cfg.checkThresh {
		t.opsSinceCheck = 0
		nm := int64(len(h.members))
		total := nm + int64(len(r.shards))
		if t.checkNext < nm {
			// Member phase: vacant slots are quiescent by the release
			// contract and are fast-forwarded wholesale, then one live
			// shard-local announcement is checked. The fast-forward is what
			// keeps the scan cycle proportional to the live population, not
			// the registry capacity, when slots churn.
			for t.checkNext < nm && !r.smap.SlotOccupied(h.members[t.checkNext]) {
				t.checkNext++
			}
			if t.checkNext < nm {
				ann := r.shared[h.members[t.checkNext]].v.Load()
				if isEqual(readEpoch, ann) || ann&quiescentBit != 0 {
					t.checkNext++
				}
			}
			if t.checkNext == nm {
				r.shards[h.self].v.Store(readEpoch)
			}
		} else {
			// Summary phase: check one shard summary per operation,
			// cycling while the epoch stands still.
			s := int((t.checkNext - nm) % int64(len(r.shards)))
			if r.shardAt(h.tid, s, readEpoch) {
				t.checkNext++
			}
		}
		if t.checkNext >= total && t.opsSinceIncr >= r.cfg.incrThresh {
			if r.epoch.CompareAndSwap(readEpoch, readEpoch+epochInc) {
				t.epochAdvances.Inc()
			}
		}
	}
	// Announce the (possibly new) epoch with the quiescent bit cleared.
	h.slot.v.Store(readEpoch)
	return result
}

// shardAt reports whether shard s has been verified at epoch readEpoch:
// its summary matches, or a direct scan of its members (the slow path for
// lagging shards, typically shards that are entirely quiescent) passes, in
// which case the summary is helped forward. tid is unused here but keeps
// the signature shared with DEBRA+'s neutralizing override.
func (r *Reclaimer[T]) shardAt(tid, s int, readEpoch int64) bool {
	if r.shards[s].v.Load() == readEpoch {
		return true
	}
	if r.smap.ShardLive(s) == 0 {
		// Zero live occupants: every member is vacant, hence quiescent; the
		// lagging (idle) shard is verified in O(1).
		r.shards[s].v.Store(readEpoch)
		return true
	}
	for _, m := range r.smap.Members(s) {
		ann := r.shared[m].v.Load()
		if !isEqual(readEpoch, ann) && ann&quiescentBit == 0 {
			return false
		}
	}
	r.shards[s].v.Store(readEpoch)
	return true
}

// ShardMap implements core.Sharded.
func (r *Reclaimer[T]) ShardMap() *core.ShardMap { return r.smap }

// EnterQstate implements core.Reclaimer: set the quiescent bit.
func (r *Reclaimer[T]) EnterQstate(tid int) { r.handles[tid].EnterQstate() }

// EnterQstate implements core.ReclaimerHandle.
func (h *handle[T]) EnterQstate() {
	h.slot.v.Store(h.slot.v.Load() | quiescentBit)
}

// IsQuiescent implements core.Reclaimer.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool { return r.getQuiescentBit(tid) }

// PinRetire implements core.RetirePinner: clear the quiescent bit while
// keeping the announced epoch, without LeaveQstate's rotation and scan
// bookkeeping. A possibly stale announcement with the bit clear reads as a
// mid-operation thread to every scanner, so the epoch cannot run ahead while
// the pin stands — the same conservative pin a worker's operation provides,
// held only for the duration of the hand-off.
func (r *Reclaimer[T]) PinRetire(tid int) {
	s := &r.shared[tid]
	s.v.Store(s.v.Load() &^ quiescentBit)
}

// UnpinRetire implements core.RetirePinner: set the quiescent bit again. No
// rotation happens — the retired records wait in the current bag for the
// owner's next real LeaveQstate cycles, or for DrainLimbo at shutdown.
func (r *Reclaimer[T]) UnpinRetire(tid int) {
	s := &r.shared[tid]
	s.v.Store(s.v.Load() | quiescentBit)
}

// requirePinned panics when thread tid retires with its quiescent bit set.
// DEBRA's limbo bags are single-owner, but the scheme's bag-rotation
// argument ("records in the oldest bag were retired at least two observed
// epochs ago") is stated for deposits made by a non-quiescent thread; the
// uniform epoch-scheme contract (core.RetirePinner) is that quiescent
// callers pin first.
func (r *Reclaimer[T]) requirePinned(tid int) {
	if r.getQuiescentBit(tid) {
		panic("debra: Retire from a quiescent context; pin the thread first (PinRetire or LeaveQstate)")
	}
}

// Retire implements core.Reclaimer: add the record to the current limbo bag
// (O(1) worst case). The caller must be pinned (mid-operation, or inside a
// PinRetire/UnpinRetire window).
func (r *Reclaimer[T]) Retire(tid int, rec *T) { r.handles[tid].Retire(rec) }

// Retire implements core.ReclaimerHandle.
func (h *handle[T]) Retire(rec *T) {
	if rec == nil {
		panic("debra: Retire(nil)")
	}
	if h.slot.v.Load()&quiescentBit != 0 {
		panic("debra: Retire from a quiescent context; pin the thread first (PinRetire or LeaveQstate)")
	}
	h.t.currentBag.Add(rec)
	h.t.retired.Inc()
}

// Protect implements core.ReclaimerHandle (no-op for DEBRA).
func (h *handle[T]) Protect(rec *T) bool { return true }

// Unprotect implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Unprotect(rec *T) {}

// Checkpoint implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Checkpoint() {}

// RetireBlock implements core.BlockReclaimer: splice one detached full block
// into the caller's current limbo bag in O(1) (single-owner, so the batch
// hand-off is synchronisation-free), returning a recycled empty block from
// the thread's pool in exchange when one is cached. The caller must be
// pinned like for Retire.
func (r *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	if blk == nil {
		return nil
	}
	r.requirePinned(tid)
	t := &r.threads[tid]
	n := int64(blk.Len())
	t.currentBag.AddBlock(blk)
	t.retired.Add(n)
	return t.blockPool.TryGet()
}

// DrainLimbo implements core.LimboDrainer: free every record in every
// thread's limbo bags, partial head blocks included. Only safe once every
// thread is quiescent for good and the caller holds a happens-before edge
// from their last operation (joined goroutines).
func (r *Reclaimer[T]) DrainLimbo(tid int) int64 {
	for i := range r.shared {
		if r.shared[i].v.Load()&quiescentBit == 0 {
			panic("debra: DrainLimbo while a thread is still non-quiescent")
		}
	}
	var total int64
	for i := range r.threads {
		t := &r.threads[i]
		var n int64
		for _, bag := range t.bags {
			n += core.FreeChain(r.sink, r.blockSink, t.blockPool, tid, bag.DetachAllFullBlocks())
			n += int64(bag.Drain(func(rec *T) { r.sink.Free(tid, rec) }))
		}
		t.freed.Add(n)
		total += n
	}
	return total
}

// rotateAndReclaim implements Figure 4's rotateAndReclaim: reuse the oldest
// limbo bag as the new current bag and move its full blocks to the sink.
func (r *Reclaimer[T]) rotateAndReclaim(tid int) {
	t := &r.threads[tid]
	t.index = (t.index + 1) % 3
	t.currentBag = t.bags[t.index]
	r.freeFullBlocks(tid, t.currentBag)
}

// freeFullBlocks moves every full block of bag to the free sink, using the
// block interface when available.
func (r *Reclaimer[T]) freeFullBlocks(tid int, bag *blockbag.Bag[T]) {
	t := &r.threads[tid]
	chain := bag.DetachAllFullBlocks()
	if chain == nil {
		return
	}
	n := int64(blockbag.ChainLen(chain))
	if r.blockSink != nil {
		r.blockSink.FreeBlocks(tid, chain)
	} else {
		for blk := chain; blk != nil; {
			next := blk.Next()
			for i := 0; i < blk.Len(); i++ {
				r.sink.Free(tid, blk.Record(i))
			}
			t.blockPool.Put(blk)
			blk = next
		}
	}
	t.freed.Add(n)
}

// Protect implements core.Reclaimer. DEBRA needs no per-record protection;
// the call is a no-op that always succeeds (and is skipped entirely by data
// structures that consult Props().PerRecordProtection).
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return true }

// Unprotect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return true }

// RProtect implements core.Reclaimer (no-op; DEBRA has no crash recovery).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {}

// RUnprotectAll implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RUnprotectAll(tid int) {}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return false }

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return false }

// Checkpoint implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Checkpoint(tid int) {}

// Epoch returns the current global epoch (instrumentation).
func (r *Reclaimer[T]) Epoch() int64 { return r.epoch.Load() }

// LimboSize returns the number of records currently waiting in thread tid's
// limbo bags (instrumentation for tests and the harness; only approximate
// when tid is running concurrently).
func (r *Reclaimer[T]) LimboSize(tid int) int {
	t := &r.threads[tid]
	total := 0
	for _, b := range t.bags {
		total += b.Len()
	}
	return total
}

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	var s core.Stats
	for i := range r.threads {
		t := &r.threads[i]
		s.Retired += t.retired.Load()
		s.Freed += t.freed.Load()
		s.EpochAdvances += t.epochAdvances.Load()
		s.Scans += t.scans.Load()
	}
	s.Limbo = s.Retired - s.Freed
	return s
}

var (
	_ core.Reclaimer[int]        = (*Reclaimer[int])(nil)
	_ core.BlockReclaimer[int]   = (*Reclaimer[int])(nil)
	_ core.Sharded               = (*Reclaimer[int])(nil)
	_ core.RetirePinner          = (*Reclaimer[int])(nil)
	_ core.LimboDrainer          = (*Reclaimer[int])(nil)
	_ core.HandledReclaimer[int] = (*Reclaimer[int])(nil)
)
