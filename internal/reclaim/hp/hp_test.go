package hp_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim/hp"
	"repro/internal/reclaimtest"
)

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	// A small retire threshold keeps unit tests snappy while still
	// exercising the scan-and-free machinery.
	return hp.New(n, sink, hp.WithRetireThreshold(64))
}

func TestConformance(t *testing.T) { reclaimtest.Conformance(t, factory) }

func TestStress(t *testing.T) { reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions()) }

func TestStressDefaultThreshold(t *testing.T) {
	reclaimtest.Stress(t, func(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
		return hp.New(n, sink)
	}, reclaimtest.DefaultStressOptions())
}

func TestProtectUnprotect(t *testing.T) {
	r := hp.New[reclaimtest.Record](2, reclaimtest.NewRecordingSink())
	a := &reclaimtest.Record{ID: 1}
	b := &reclaimtest.Record{ID: 2}
	if !r.Protect(0, a) || !r.Protect(0, b) {
		t.Fatal("Protect failed")
	}
	if !r.IsProtected(0, a) || !r.IsProtected(0, b) {
		t.Fatal("IsProtected lost an announcement")
	}
	if r.IsProtected(1, a) {
		t.Fatal("thread 1 reports protection it never acquired")
	}
	r.Unprotect(0, a)
	if r.IsProtected(0, a) {
		t.Fatal("record still protected after Unprotect")
	}
	if !r.IsProtected(0, b) {
		t.Fatal("Unprotect removed the wrong announcement")
	}
	r.EnterQstate(0)
	if r.IsProtected(0, b) {
		t.Fatal("EnterQstate must release every hazard pointer")
	}
	if !r.IsQuiescent(0) {
		t.Fatal("thread with no hazard pointers should be quiescent")
	}
}

func TestProtectNilIsNoop(t *testing.T) {
	r := hp.New[reclaimtest.Record](1, reclaimtest.NewRecordingSink())
	if !r.Protect(0, nil) {
		t.Fatal("Protect(nil) must succeed trivially")
	}
	r.Unprotect(0, nil)
}

func TestSlotExhaustionPanics(t *testing.T) {
	r := hp.New[reclaimtest.Record](1, reclaimtest.NewRecordingSink(), hp.WithSlots(2))
	r.Protect(0, &reclaimtest.Record{ID: 1})
	r.Protect(0, &reclaimtest.Record{ID: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when slots are exhausted")
		}
	}()
	r.Protect(0, &reclaimtest.Record{ID: 3})
}

// TestProtectedRecordSurvivesScan is the fundamental hazard pointer
// guarantee: a retired record that is announced by some thread is not freed
// by a scan; it is freed by a later scan after the announcement is released.
func TestProtectedRecordSurvivesScan(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := hp.New(2, sink, hp.WithRetireThreshold(32))
	victim := &reclaimtest.Record{ID: 99}
	if !r.Protect(1, victim) {
		t.Fatal("Protect failed")
	}
	// Thread 0 retires the victim plus enough records to trigger scans.
	//lint:allow retirepin hp is a membership scheme with no quiescent state; Retire is legal from any context
	r.Retire(0, victim)
	for i := 0; i < 200; i++ {
		//lint:allow retirepin hp is a membership scheme with no quiescent state; Retire is legal from any context
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
	}
	if sink.Freed() == 0 {
		t.Fatal("scan never freed anything")
	}
	if sink.Contains(victim) {
		t.Fatal("protected record was freed")
	}
	// Release the announcement; further retiring triggers another scan that
	// may now free the victim.
	r.Unprotect(1, victim)
	for i := 0; i < 200; i++ {
		//lint:allow retirepin hp is a membership scheme with no quiescent state; Retire is legal from any context
		r.Retire(0, &reclaimtest.Record{ID: int64(1000 + i)})
	}
	if !sink.Contains(victim) {
		t.Fatal("record never freed after its hazard pointer was released")
	}
}

// TestBoundedGarbage checks the O(k n^2) bound in spirit: with a threshold
// of R, a thread's limbo never exceeds R plus one scan's withheld records.
func TestBoundedGarbage(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	const threshold = 128
	r := hp.New(2, sink, hp.WithRetireThreshold(threshold))
	for i := 0; i < 10_000; i++ {
		//lint:allow retirepin hp is a membership scheme with no quiescent state; Retire is legal from any context
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		if limbo := r.Stats().Limbo; limbo > 2*threshold+512 {
			t.Fatalf("limbo=%d exceeds bound at iteration %d", limbo, i)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := hp.New(1, sink, hp.WithRetireThreshold(32))
	for i := 0; i < 500; i++ {
		//lint:allow retirepin hp is a membership scheme with no quiescent state; Retire is legal from any context
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
	}
	s := r.Stats()
	if s.Retired != 500 {
		t.Fatalf("Retired=%d want 500", s.Retired)
	}
	if s.Freed+s.Limbo != s.Retired {
		t.Fatalf("Freed+Limbo=%d want %d", s.Freed+s.Limbo, s.Retired)
	}
	if s.Scans == 0 {
		t.Fatal("expected at least one scan")
	}
	if int64(len(sink.Records())) != s.Freed {
		t.Fatalf("sink saw %d records, stats say %d", len(sink.Records()), s.Freed)
	}
}

func TestNewValidation(t *testing.T) {
	if !panics(func() { hp.New[reclaimtest.Record](0, reclaimtest.NewRecordingSink()) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { hp.New[reclaimtest.Record](1, nil) }) {
		t.Fatal("expected panic for nil sink")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}
