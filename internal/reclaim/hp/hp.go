// Package hp implements Michael-style hazard pointers (Section 3 of the
// paper, "Hazard Pointers"), the main non-automatic competitor the paper
// evaluates DEBRA and DEBRA+ against.
//
// Before accessing a record (or using its address as the expected value of a
// CAS), a thread must Protect it, which publishes an announcement that other
// threads consult before freeing. Go's sync/atomic operations are
// sequentially consistent, so the announcement store itself provides the
// store-load barrier that the paper identifies as the dominant per-record
// cost of hazard pointers; no additional fence is needed (or possible) here,
// and the cost model therefore matches the original scheme: one fence per
// record visited, versus DEBRA's one announcement per operation.
//
// After announcing, the caller must validate that the record is still
// reachable (for example by re-reading the pointer it was loaded from) and
// restart if not; the Record Manager exposes this through the data
// structure's own validation step, exactly as the paper describes (and with
// the same caveat: for structures whose searches traverse retired records,
// restarting on suspicion forfeits lock-freedom).
//
// Retired records accumulate in a per-thread bag; once the bag holds
// retireThreshold records the thread hashes every announced hazard pointer
// and frees the records that are not announced, giving O(1) expected
// amortised cost per retired record and an O(k·n²) bound on unreclaimed
// garbage.
package hp

import (
	"sync/atomic"

	"repro/internal/blockbag"
	"repro/internal/core"
)

// DefaultSlots is the default number of hazard pointer slots per thread (the
// paper's k). The BST needs a handful for its search path and helping; the
// skip list protects its whole predecessor/successor arrays (up to two per
// level), so the default leaves room for both.
const DefaultSlots = 48

// Option configures the reclaimer.
type Option func(*config)

type config struct {
	slots           int
	retireThreshold int
	spec            core.ShardSpec
}

// WithShards records a sharded-domain spec for instrumentation parity with
// the epoch schemes. Hazard pointers are already fully distributed — retire
// bags are per-thread and there is no shared epoch state to shard — and the
// reclamation scan MUST read every thread's announcement slots regardless of
// shard (a record is unsafe to free while any thread anywhere protects it),
// so the spec changes no scan topology here. The shard map does carry the
// slot registry, through which the scan skips the slot arrays of vacant
// (unowned, hence announcement-free) threads.
func WithShards(spec core.ShardSpec) Option { return func(c *config) { c.spec = spec } }

// WithSlots sets the number of hazard pointer slots per thread.
func WithSlots(k int) Option { return func(c *config) { c.slots = k } }

// WithRetireThreshold sets the number of retired records a thread
// accumulates before scanning hazard pointers. The default is
// 2·n·k + BlockSize, which makes each scan free Omega(n·k) records (the
// paper's tuning for performance rather than space).
func WithRetireThreshold(v int) Option { return func(c *config) { c.retireThreshold = v } }

// Reclaimer implements core.Reclaimer with hazard pointers.
type Reclaimer[T any] struct {
	sink core.FreeSink[T]
	cfg  config
	smap *core.ShardMap

	slots   []hpSlots[T]
	threads []thread[T]
	handles []handle[T]
}

// handle is one thread's fast-path view (core.ReclaimerHandle): the thread's
// hazard pointer array and retire state resolved once, so a Protect —
// hazard pointers' per-record hot path — indexes no per-thread slices.
type handle[T any] struct {
	r    *Reclaimer[T]
	t    *thread[T]
	ptrs []atomic.Pointer[T]
	tid  int
}

// hpSlots is one thread's hazard pointer array: single writer (the owner),
// many readers (threads performing scans).
type hpSlots[T any] struct {
	ptrs []atomic.Pointer[T]
	_    [core.PadBytes]byte
}

type thread[T any] struct {
	retireBag *blockbag.Bag[T]
	blockPool *blockbag.BlockPool[T]
	scanSet   map[*T]struct{}
	keep      []*T // scratch buffer reused across scans

	// Single-writer statistics counters (core.Counter): written by the
	// owning tid (or the quiescent-shutdown drainer), read racily by Stats.
	retired core.Counter
	freed   core.Counter
	scans   core.Counter

	_ [core.PadBytes]byte
}

// New creates a hazard pointer reclaimer for n threads; reclaimed records
// are handed to sink.
func New[T any](n int, sink core.FreeSink[T], opts ...Option) *Reclaimer[T] {
	if n <= 0 {
		panic("hp: New requires n >= 1")
	}
	if sink == nil {
		panic("hp: New requires a FreeSink")
	}
	cfg := config{slots: DefaultSlots}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.slots < 1 {
		cfg.slots = 1
	}
	if cfg.retireThreshold <= 0 {
		cfg.retireThreshold = 2*n*cfg.slots + blockbag.BlockSize
	}
	r := &Reclaimer[T]{
		sink:    sink,
		cfg:     cfg,
		smap:    core.NewShardMap(n, cfg.spec),
		slots:   make([]hpSlots[T], n),
		threads: make([]thread[T], n),
	}
	for i := range r.threads {
		t := &r.threads[i]
		t.blockPool = blockbag.NewBlockPool[T](blockbag.DefaultBlockPoolCap)
		t.retireBag = blockbag.New(t.blockPool)
		t.scanSet = make(map[*T]struct{}, n*cfg.slots)
		r.slots[i].ptrs = make([]atomic.Pointer[T], cfg.slots)
	}
	r.handles = make([]handle[T], n)
	for i := range r.handles {
		r.handles[i] = handle[T]{r: r, t: &r.threads[i], ptrs: r.slots[i].ptrs, tid: i}
	}
	return r
}

// Handle implements core.HandledReclaimer.
func (r *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] { return &r.handles[tid] }

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "hp" }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:               "HP",
		ModPerAccessedRecord: true,
		ModPerRetiredRecord:  true,
		ModOther:             "recovery code for failed hazard pointer acquisition",
		Termination:          core.ProgressWaitFree,
		FaultTolerant:        true,
		BoundedGarbage:       true,
		// Hazard pointers cannot be used (without losing lock-freedom) by
		// data structures whose operations traverse pointers from retired
		// records to other retired records.
		TraverseRetiredToRetired: false,
		PerRecordProtection:      true,
	}
}

// LeaveQstate implements core.Reclaimer (nothing to do for HP).
func (r *Reclaimer[T]) LeaveQstate(tid int) bool { return false }

// LeaveQstate implements core.ReclaimerHandle (no-op).
func (h *handle[T]) LeaveQstate() bool { return false }

// EnterQstate implements core.Reclaimer: release every hazard pointer held
// by the thread.
func (r *Reclaimer[T]) EnterQstate(tid int) { r.handles[tid].EnterQstate() }

// EnterQstate implements core.ReclaimerHandle.
func (h *handle[T]) EnterQstate() {
	ptrs := h.ptrs
	for i := range ptrs {
		if ptrs[i].Load() != nil {
			ptrs[i].Store(nil)
		}
	}
}

// IsQuiescent implements core.Reclaimer. Hazard pointers have no notion of
// quiescence; a thread is "quiescent" when it holds no announcements.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool {
	for i := range r.slots[tid].ptrs {
		if r.slots[tid].ptrs[i].Load() != nil {
			return false
		}
	}
	return true
}

// Protect implements core.Reclaimer: announce a hazard pointer to rec. The
// sequentially consistent store doubles as the required memory barrier. The
// caller must validate reachability afterwards.
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return r.handles[tid].Protect(rec) }

// Protect implements core.ReclaimerHandle (see Reclaimer.Protect).
func (h *handle[T]) Protect(rec *T) bool {
	if rec == nil {
		return true
	}
	ptrs := h.ptrs
	free := -1
	for i := range ptrs {
		switch ptrs[i].Load() {
		case rec:
			// Already announced (data structures may legitimately protect a
			// record they reach through several paths); keep a single slot.
			return true
		case nil:
			if free < 0 {
				free = i
			}
		}
	}
	if free < 0 {
		panic("hp: out of hazard pointer slots; raise WithSlots")
	}
	ptrs[free].Store(rec)
	return true
}

// Unprotect implements core.Reclaimer: release the hazard pointer to rec.
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) { r.handles[tid].Unprotect(rec) }

// Unprotect implements core.ReclaimerHandle.
func (h *handle[T]) Unprotect(rec *T) {
	if rec == nil {
		return
	}
	ptrs := h.ptrs
	for i := range ptrs {
		if ptrs[i].Load() == rec {
			ptrs[i].Store(nil)
			return
		}
	}
}

// Checkpoint implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Checkpoint() {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool {
	ptrs := r.slots[tid].ptrs
	for i := range ptrs {
		if ptrs[i].Load() == rec {
			return true
		}
	}
	return false
}

// RProtect implements core.Reclaimer (no crash recovery for HP; no-op).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {}

// RUnprotectAll implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RUnprotectAll(tid int) {}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return false }

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return false }

// Checkpoint implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Checkpoint(tid int) {}

// Retire implements core.Reclaimer: buffer the record and scan once the
// buffer is large enough to amortise the cost.
func (r *Reclaimer[T]) Retire(tid int, rec *T) { r.handles[tid].Retire(rec) }

// Retire implements core.ReclaimerHandle.
func (h *handle[T]) Retire(rec *T) {
	if rec == nil {
		panic("hp: Retire(nil)")
	}
	t := h.t
	t.retireBag.Add(rec)
	t.retired.Inc()
	if t.retireBag.Len() >= h.r.cfg.retireThreshold {
		h.r.scanAndFree(h.tid)
	}
}

// RetireBlock implements core.BlockReclaimer: splice one detached full block
// into the caller's retire bag in O(1), run the threshold check once for
// the whole batch, and return a recycled empty block from the thread's pool
// in exchange when one is cached.
func (r *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	if blk == nil {
		return nil
	}
	t := &r.threads[tid]
	t.retireBag.AddBlock(blk)
	t.retired.Add(int64(blk.Len()))
	if t.retireBag.Len() >= r.cfg.retireThreshold {
		r.scanAndFree(tid)
	}
	return t.blockPool.TryGet()
}

// ShardMap implements core.Sharded (see WithShards: informational only).
func (r *Reclaimer[T]) ShardMap() *core.ShardMap { return r.smap }

// scanAndFree hashes every announced hazard pointer, frees every record in
// the caller's retire bag that is not announced, and keeps the announced
// ones for a later scan. This is Michael's amortised scheme: the scan costs
// O(R + nk) for R retired records but frees Omega(R - nk) of them.
func (r *Reclaimer[T]) scanAndFree(tid int) {
	t := &r.threads[tid]
	t.scans.Inc()
	set := t.scanSet
	clear(set)
	for i := range r.slots {
		if !r.smap.SlotOccupied(i) {
			// A vacant slot holds no hazard pointers: release requires
			// quiescence, which for HP means every slot is nil. A
			// concurrent acquirer that protects a record after this check
			// is covered by the protect-validate discipline, exactly like a
			// thread whose nil slot is read just before it stores: if the
			// record was already in our retire bag it was unreachable
			// before the acquire, so the newcomer's validation fails and
			// it restarts.
			continue
		}
		ptrs := r.slots[i].ptrs
		for j := range ptrs {
			if rec := ptrs[j].Load(); rec != nil {
				set[rec] = struct{}{}
			}
		}
	}
	freed := int64(0)
	t.keep = t.keep[:0]
	t.retireBag.Drain(func(rec *T) {
		if _, ok := set[rec]; ok {
			t.keep = append(t.keep, rec)
			return
		}
		r.sink.Free(tid, rec)
		freed++
	})
	for _, rec := range t.keep {
		t.retireBag.Add(rec)
	}
	t.freed.Add(freed)
}

// PinRetire implements core.RetirePinner (no-op: hazard pointer retire bags
// are per-thread and the scan consults announcements, not epochs, so a
// retire needs no pin — the uniform entry point exists so callers can treat
// every scheme alike).
func (r *Reclaimer[T]) PinRetire(tid int) {}

// UnpinRetire implements core.RetirePinner (no-op).
func (r *Reclaimer[T]) UnpinRetire(tid int) {}

// DrainLimbo implements core.LimboDrainer: run a forced scan for every
// thread's retire bag, regardless of the amortisation threshold, freeing
// every record that no hazard pointer announces. The retire bags are
// single-owner, so this may only run on shutdown paths after the worker
// goroutines are joined; the announced side of that precondition — every
// hazard slot released, which EnterQstate guarantees for a cleanly finished
// worker — is verified and violations panic, like the epoch schemes'
// drains. (A held slot would not make the free unsafe, but it reveals a
// worker that may still be mid-operation and racing its own bag.)
func (r *Reclaimer[T]) DrainLimbo(tid int) int64 {
	for i := range r.threads {
		if !r.IsQuiescent(i) {
			panic("hp: DrainLimbo while a thread still holds hazard pointers")
		}
	}
	var total int64
	for i := range r.threads {
		before := r.threads[i].freed.Load()
		r.scanAndFree(i)
		total += r.threads[i].freed.Load() - before
	}
	return total
}

// Slots returns the per-thread hazard pointer capacity (instrumentation).
func (r *Reclaimer[T]) Slots() int { return r.cfg.slots }

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	var s core.Stats
	for i := range r.threads {
		t := &r.threads[i]
		s.Retired += t.retired.Load()
		s.Freed += t.freed.Load()
		s.Scans += t.scans.Load()
	}
	s.Limbo = s.Retired - s.Freed
	return s
}

var (
	_ core.Reclaimer[int]      = (*Reclaimer[int])(nil)
	_ core.BlockReclaimer[int] = (*Reclaimer[int])(nil)
	_ core.Sharded             = (*Reclaimer[int])(nil)
	_ core.RetirePinner        = (*Reclaimer[int])(nil)
	_ core.LimboDrainer        = (*Reclaimer[int])(nil)

	_ core.HandledReclaimer[int] = (*Reclaimer[int])(nil)
)
