package qsbr_test

import (
	"testing"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/reclaim/qsbr"
	"repro/internal/reclaimtest"
)

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return qsbr.New[reclaimtest.Record](n, sink)
}

func TestConformance(t *testing.T) { reclaimtest.Conformance(t, factory) }

func TestStress(t *testing.T) { reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions()) }

func TestSingleThreadReclaims(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](1, sink)
	for i := 0; i < 6*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatalf("no records freed: %+v", r.Stats())
	}
}

func TestStalledThreadBlocksReclamation(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](2, sink)
	r.LeaveQstate(1) // stalled inside an operation, never announces quiescence
	for i := 0; i < 6*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() != 0 {
		t.Fatal("QSBR freed records while a thread never passed a quiescent state")
	}
}

func TestOfflineThreadDoesNotBlock(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](4, sink) // threads 1..3 never run
	for i := 0; i < 6*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("offline threads blocked reclamation")
	}
}

func TestNewValidation(t *testing.T) {
	if !panics(func() { qsbr.New[reclaimtest.Record](0, reclaimtest.NewRecordingSink()) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { qsbr.New[reclaimtest.Record](1, nil) }) {
		t.Fatal("expected panic for nil sink")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

// --- sharded domains ---------------------------------------------------------

// TestShardedCrossShardSafety: a record retired in shard 0 must not be freed
// while a thread of shard 1 is online mid-operation.
func TestShardedCrossShardSafety(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](4, sink, qsbr.WithShards(core.ShardSpec{Shards: 2}))
	r.LeaveQstate(3) // other-shard thread online, never announcing quiescence
	// Retire several blocks' worth: the retires may straddle one epoch
	// rotation, but at least one limbo bag then holds a full block (partial
	// head blocks stay behind by design, so assertions below are on freed
	// counts, not individual records).
	for i := 0; i < 4*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	for i := 0; i < 200; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got != 0 {
		t.Fatalf("%d records freed while an online thread of another shard had not passed a quiescent state", got)
	}
	r.EnterQstate(3)
	for i := 0; i < 200; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got < int64(blockbag.BlockSize) {
		t.Fatalf("only %d records freed after the other shard went quiescent", got)
	}
}

// TestShardedOfflineShardDoesNotBlock: shards whose members never come
// online must not stall grace periods (the lagging-shard slow path).
func TestShardedOfflineShardDoesNotBlock(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](4, sink, qsbr.WithShards(core.ShardSpec{Shards: 4}))
	for i := 0; i < 1000; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("offline shards blocked reclamation")
	}
}

// TestShardedStress runs the generic reclaimer stress over both placements.
func TestShardedStress(t *testing.T) {
	for _, placement := range []core.ShardPlacement{core.PlaceBlock, core.PlaceStripe} {
		t.Run(string(placement), func(t *testing.T) {
			reclaimtest.Stress(t, func(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
				return qsbr.New[reclaimtest.Record](n, sink, qsbr.WithShards(core.ShardSpec{Shards: 2, Placement: placement}))
			}, reclaimtest.DefaultStressOptions())
		})
	}
}

// TestRetireBlockSplice checks the O(1) batched-retire path.
func TestRetireBlockSplice(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](1, sink)
	bag := blockbag.New[reclaimtest.Record](nil)
	recs := make([]*reclaimtest.Record, blockbag.BlockSize)
	for i := range recs {
		recs[i] = &reclaimtest.Record{ID: int64(i)}
		bag.Add(recs[i])
	}
	r.LeaveQstate(0)
	r.RetireBlock(0, bag.DetachAllFullBlocks())
	r.EnterQstate(0)
	if got := r.Stats().Retired; got != int64(blockbag.BlockSize) {
		t.Fatalf("Retired = %d want %d", got, blockbag.BlockSize)
	}
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	for _, rec := range recs {
		if !sink.Contains(rec) {
			t.Fatalf("record %d from the spliced block was never freed", rec.ID)
		}
	}
}
