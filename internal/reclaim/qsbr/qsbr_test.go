package qsbr_test

import (
	"testing"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/reclaim/qsbr"
	"repro/internal/reclaimtest"
)

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return qsbr.New[reclaimtest.Record](n, sink)
}

func TestConformance(t *testing.T) { reclaimtest.Conformance(t, factory) }

func TestStress(t *testing.T) { reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions()) }

func TestSingleThreadReclaims(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](1, sink)
	for i := 0; i < 6*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatalf("no records freed: %+v", r.Stats())
	}
}

func TestStalledThreadBlocksReclamation(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](2, sink)
	r.LeaveQstate(1) // stalled inside an operation, never announces quiescence
	for i := 0; i < 6*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() != 0 {
		t.Fatal("QSBR freed records while a thread never passed a quiescent state")
	}
}

func TestOfflineThreadDoesNotBlock(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := qsbr.New[reclaimtest.Record](4, sink) // threads 1..3 never run
	for i := 0; i < 6*blockbag.BlockSize; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("offline threads blocked reclamation")
	}
}

func TestNewValidation(t *testing.T) {
	if !panics(func() { qsbr.New[reclaimtest.Record](0, reclaimtest.NewRecordingSink()) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { qsbr.New[reclaimtest.Record](1, nil) }) {
		t.Fatal("expected panic for nil sink")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}
