// Package qsbr implements quiescent-state-based reclamation (McKenney and
// Slingwine), the generalisation of epoch based reclamation mentioned in
// Section 3 of the paper. Where EBR infers quiescence from operation
// boundaries, QSBR relies on the application explicitly announcing quiescent
// states; in the Record Manager interface that announcement is EnterQstate,
// so for the data structures in this module QSBR behaves like an epoch
// scheme whose bookkeeping happens at the end of operations rather than the
// beginning.
//
// The implementation mirrors DEBRA's distributed structure (per-thread limbo
// bags, no shared bags) but performs its announcement scan at each quiescent
// state, so its per-operation cost sits between classical EBR and DEBRA.
// Like both, it is not fault tolerant: a thread that stops announcing
// quiescent states while non-quiescent halts reclamation for everyone.
//
// With WithShards the quiescent-state scan becomes shard-local: a thread
// scans only its own shard's announcements, publishes the shard's verified
// grace period in a padded summary word, and the global grace period
// advances once every shard summary matches (with a direct member scan as
// the fallback for lagging or idle shards). Limbo bags were per-thread
// already, so sharding only changes the scan topology; safety is unchanged
// because the grace period still advances only after every thread has been
// verified offline or past the current period.
package qsbr

import (
	"sync/atomic"

	"repro/internal/blockbag"
	"repro/internal/core"
)

// Option configures the reclaimer.
type Option func(*config)

type config struct {
	spec core.ShardSpec
}

// WithShards partitions the announcement scan into sharded domains.
func WithShards(spec core.ShardSpec) Option { return func(c *config) { c.spec = spec } }

// Reclaimer implements core.Reclaimer with QSBR.
type Reclaimer[T any] struct {
	sink      core.FreeSink[T]
	blockSink core.BlockFreeSink[T]

	// grace is the global grace-period counter.
	grace   atomic.Int64
	smap    *core.ShardMap
	shards  []shardSummary
	shared  []announceSlot
	threads []thread[T]
	handles []handle[T]
}

// handle is one thread's fast-path view (core.ReclaimerHandle): private
// state, announcement slot and shard scan set resolved once, so per-op calls
// index no slices.
type handle[T any] struct {
	r       *Reclaimer[T]
	t       *thread[T]
	slot    *announceSlot
	tid     int
	members []int
	self    int
}

// shardSummary is a shard's verified-grace-period word, padded onto its own
// cache lines (written by the shard's members, read by every advancer).
type shardSummary struct {
	v atomic.Int64
	_ [core.PadBytes]byte
}

type announceSlot struct {
	// v holds the last grace period this thread has passed through, with
	// the low bit set while the thread is offline (quiescent between
	// operations, not blocking grace periods).
	v atomic.Int64
	_ [core.PadBytes]byte
}

const offlineBit = 1

type thread[T any] struct {
	bags      [3]*blockbag.Bag[T]
	current   int
	blockPool *blockbag.BlockPool[T]

	// Single-writer statistics counters (core.Counter): written by the
	// owning tid (or a quiescent-shutdown drainer), read racily by Stats.
	retired core.Counter
	freed   core.Counter
	grace   core.Counter

	_ [core.PadBytes]byte
}

// New creates a QSBR reclaimer for n threads; reclaimed records go to sink.
func New[T any](n int, sink core.FreeSink[T], opts ...Option) *Reclaimer[T] {
	if n <= 0 {
		panic("qsbr: New requires n >= 1")
	}
	if sink == nil {
		panic("qsbr: New requires a FreeSink")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	smap := core.NewShardMap(n, cfg.spec)
	r := &Reclaimer[T]{
		sink:    sink,
		smap:    smap,
		shards:  make([]shardSummary, smap.Shards()),
		shared:  make([]announceSlot, n),
		threads: make([]thread[T], n),
	}
	if bs, ok := sink.(core.BlockFreeSink[T]); ok {
		r.blockSink = bs
	}
	r.grace.Store(2)
	for i := range r.shards {
		r.shards[i].v.Store(2)
	}
	for i := range r.threads {
		t := &r.threads[i]
		t.blockPool = blockbag.NewBlockPool[T](blockbag.DefaultBlockPoolCap)
		for j := range t.bags {
			t.bags[j] = blockbag.New(t.blockPool)
		}
		r.shared[i].v.Store(2 | offlineBit)
	}
	r.handles = make([]handle[T], n)
	for i := range r.handles {
		self := smap.ShardOf(i)
		r.handles[i] = handle[T]{
			r:       r,
			t:       &r.threads[i],
			slot:    &r.shared[i],
			tid:     i,
			self:    self,
			members: smap.Members(self),
		}
	}
	return r
}

// Handle implements core.HandledReclaimer.
func (r *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] { return &r.handles[tid] }

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "qsbr" }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:                   "QSBR",
		ModPerOperation:          true,
		ModPerRetiredRecord:      true,
		ModOther:                 "identify quiescent states manually",
		Termination:              core.ProgressWaitFree,
		TraverseRetiredToRetired: true,
		FaultTolerant:            false,
		BoundedGarbage:           false,
	}
}

// LeaveQstate implements core.Reclaimer: mark the thread online for the
// current grace period.
func (r *Reclaimer[T]) LeaveQstate(tid int) bool { return r.handles[tid].LeaveQstate() }

// LeaveQstate implements core.ReclaimerHandle.
func (h *handle[T]) LeaveQstate() bool {
	g := h.r.grace.Load()
	prev := h.slot.v.Load()
	h.slot.v.Store(g &^ offlineBit)
	return prev&^offlineBit != g
}

// EnterQstate implements core.Reclaimer: announce a quiescent state, try to
// advance the grace period (scanning the caller's shard and then the shard
// summaries), and reclaim the oldest local bag when the thread observes a
// new grace period.
func (r *Reclaimer[T]) EnterQstate(tid int) { r.handles[tid].EnterQstate() }

// EnterQstate implements core.ReclaimerHandle.
func (h *handle[T]) EnterQstate() {
	r, t := h.r, h.t
	g := r.grace.Load()
	// Announce that we have passed through a quiescent state in period g,
	// and mark ourselves offline so we do not hold up future periods while
	// we are between operations.
	h.slot.v.Store(g | offlineBit)

	// Verify the caller's shard: every member must be offline or have
	// announced period g. When the slot registry reports the caller as the
	// shard's only live occupant the loop is skipped — vacant slots are
	// offline by the release contract (the concurrent-acquire race is the
	// usual offline-thread-wakes race the plain scan already tolerates).
	advance := true
	if live := r.smap.ShardLive(h.self); live < 0 || live > 1 {
		for _, i := range h.members {
			if !r.passes(i, g) {
				advance = false
				break
			}
		}
	}
	if advance {
		s := &r.shards[h.self]
		if s.v.Load() != g {
			s.v.Store(g)
		}
		if r.allShardsAt(g) {
			r.grace.CompareAndSwap(g, g+2)
		}
	}
	// Reclaim locally once per observed grace period.
	if t.grace.Load() != g {
		t.grace.Store(g)
		t.current = (t.current + 1) % 3
		r.freeFullBlocks(h.tid, t.bags[t.current])
	}
}

// Retire implements core.ReclaimerHandle.
func (h *handle[T]) Retire(rec *T) {
	if rec == nil {
		panic("qsbr: Retire(nil)")
	}
	if h.slot.v.Load()&offlineBit != 0 {
		panic("qsbr: Retire from a quiescent (offline) context; pin the thread first (PinRetire or LeaveQstate)")
	}
	h.t.bags[h.t.current].Add(rec)
	h.t.retired.Inc()
}

// Protect implements core.ReclaimerHandle (no-op for QSBR).
func (h *handle[T]) Protect(rec *T) bool { return true }

// Unprotect implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Unprotect(rec *T) {}

// Checkpoint implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Checkpoint() {}

// passes reports whether thread i does not block grace period g: it is
// offline or has announced g.
func (r *Reclaimer[T]) passes(i int, g int64) bool {
	v := r.shared[i].v.Load()
	return v&offlineBit != 0 || v&^offlineBit == g
}

// allShardsAt reports whether every shard has been verified at grace period
// g, consulting the memoised summaries first and falling back to a direct
// member scan for lagging (for example idle) shards, helping their summary
// forward on success.
func (r *Reclaimer[T]) allShardsAt(g int64) bool {
	for i := range r.shards {
		s := &r.shards[i]
		if s.v.Load() == g {
			continue
		}
		if r.smap.ShardLive(i) == 0 {
			// Zero live occupants: every member is vacant, hence offline;
			// the lagging (idle) shard is verified in O(1).
			s.v.Store(g)
			continue
		}
		for _, m := range r.smap.Members(i) {
			if !r.passes(m, g) {
				return false
			}
		}
		s.v.Store(g)
	}
	return true
}

// ShardMap implements core.Sharded.
func (r *Reclaimer[T]) ShardMap() *core.ShardMap { return r.smap }

func (r *Reclaimer[T]) freeFullBlocks(tid int, bag *blockbag.Bag[T]) {
	t := &r.threads[tid]
	chain := bag.DetachAllFullBlocks()
	if chain == nil {
		return
	}
	n := int64(blockbag.ChainLen(chain))
	if r.blockSink != nil {
		r.blockSink.FreeBlocks(tid, chain)
	} else {
		for blk := chain; blk != nil; {
			next := blk.Next()
			for i := 0; i < blk.Len(); i++ {
				r.sink.Free(tid, blk.Record(i))
			}
			t.blockPool.Put(blk)
			blk = next
		}
	}
	t.freed.Add(n)
}

// IsQuiescent implements core.Reclaimer.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool {
	return r.shared[tid].v.Load()&offlineBit != 0
}

// PinRetire implements core.RetirePinner: mark the thread online at the
// current grace period, without EnterQstate's scan/advance/rotation work.
// While the pin stands, the thread blocks grace periods exactly like a
// mid-operation worker, so records it retires get the same two-period
// separation from any reclaim of its bags.
func (r *Reclaimer[T]) PinRetire(tid int) {
	r.shared[tid].v.Store(r.grace.Load() &^ offlineBit)
}

// UnpinRetire implements core.RetirePinner: mark the thread offline again,
// keeping its announced period (no rotation — the retired records wait in
// the current bag for the owner's next real quiescent cycles, or for
// DrainLimbo at shutdown).
func (r *Reclaimer[T]) UnpinRetire(tid int) {
	s := &r.shared[tid]
	s.v.Store(s.v.Load() | offlineBit)
}

// requirePinned panics when thread tid retires while offline. QSBR's limbo
// bags are single-owner, but an offline retirer's records enter a bag whose
// rotation cadence assumes every deposit was made by a thread participating
// in grace periods; the uniform epoch-scheme contract (see
// core.RetirePinner) is that quiescent callers pin first.
func (r *Reclaimer[T]) requirePinned(tid int) {
	if r.shared[tid].v.Load()&offlineBit != 0 {
		panic("qsbr: Retire from a quiescent (offline) context; pin the thread first (PinRetire or LeaveQstate)")
	}
}

// Retire implements core.Reclaimer. The caller must be pinned
// (mid-operation, or inside a PinRetire/UnpinRetire window).
func (r *Reclaimer[T]) Retire(tid int, rec *T) { r.handles[tid].Retire(rec) }

// RetireBlock implements core.BlockReclaimer: splice one detached full block
// into the caller's current limbo bag in O(1) (the bag is single-owner, so
// the hand-off needs no synchronisation), returning a recycled empty block
// from the thread's pool in exchange when one is cached. The caller must be
// pinned like for Retire.
func (r *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	if blk == nil {
		return nil
	}
	r.requirePinned(tid)
	t := &r.threads[tid]
	n := int64(blk.Len())
	t.bags[t.current].AddBlock(blk)
	t.retired.Add(n)
	return t.blockPool.TryGet()
}

// DrainLimbo implements core.LimboDrainer: free every record in every
// thread's limbo bags, partial head blocks included. Only safe once every
// thread is offline for good and the caller holds a happens-before edge from
// their last operation (joined goroutines); the offline check catches the
// announcement side of violations.
func (r *Reclaimer[T]) DrainLimbo(tid int) int64 {
	for i := range r.shared {
		if r.shared[i].v.Load()&offlineBit == 0 {
			panic("qsbr: DrainLimbo while a thread is still online")
		}
	}
	var total int64
	for i := range r.threads {
		t := &r.threads[i]
		var n int64
		for _, bag := range t.bags {
			n += core.FreeChain(r.sink, r.blockSink, t.blockPool, tid, bag.DetachAllFullBlocks())
			n += int64(bag.Drain(func(rec *T) { r.sink.Free(tid, rec) }))
		}
		t.freed.Add(n)
		total += n
	}
	return total
}

// Protect implements core.Reclaimer (no per-record work).
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return true }

// Unprotect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return true }

// RProtect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {}

// RUnprotectAll implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RUnprotectAll(tid int) {}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return false }

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return false }

// Checkpoint implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Checkpoint(tid int) {}

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	var s core.Stats
	for i := range r.threads {
		t := &r.threads[i]
		s.Retired += t.retired.Load()
		s.Freed += t.freed.Load()
	}
	s.Limbo = s.Retired - s.Freed
	return s
}

var (
	_ core.Reclaimer[int]        = (*Reclaimer[int])(nil)
	_ core.BlockReclaimer[int]   = (*Reclaimer[int])(nil)
	_ core.Sharded               = (*Reclaimer[int])(nil)
	_ core.RetirePinner          = (*Reclaimer[int])(nil)
	_ core.LimboDrainer          = (*Reclaimer[int])(nil)
	_ core.HandledReclaimer[int] = (*Reclaimer[int])(nil)
)
