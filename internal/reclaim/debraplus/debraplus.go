// Package debraplus implements DEBRA+, the fault-tolerant distributed epoch
// based reclamation scheme of Section 5 of the paper (Figure 6 pseudocode).
//
// DEBRA+ extends DEBRA with neutralization: a thread that cannot advance the
// epoch because another thread has been non-quiescent for too long sends
// that thread a signal and then treats it as quiescent. The signalled thread
// delivers the signal at its next checkpoint, enters a quiescent state and
// jumps (via a typed panic recovered by the operation wrapper) into recovery
// code. Recovery uses a limited form of hazard pointers — RProtect /
// RUnprotectAll / IsRProtected — so that a neutralized thread can still help
// its own announced operation to completion even though other threads have
// stopped waiting for it.
//
// Consequences reproduced here:
//
//   - reclamation continues even if a thread stalls or crashes in the middle
//     of an operation (fault tolerance);
//   - at any time O(n·(n·m + c)) records are waiting to be freed, where m is
//     the largest number of records retired by one operation and c is the
//     suspicion threshold;
//   - freeing a record costs O(1) expected amortised time: limbo bags are
//     scanned against the RProtect table only once they hold at least
//     scanThreshold blocks, protected records are swapped to the front of
//     the bag, and everything behind them is moved to the pool in whole
//     blocks.
//
// See the internal/neutralize package documentation for how POSIX signal
// delivery and siglongjmp are simulated, and for the argument that the
// weaker "delivery at the next checkpoint" guarantee preserves safety.
package debraplus

import (
	"sync/atomic"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/neutralize"
	"repro/internal/reclaim/debra"
)

// Defaults for the DEBRA+ specific thresholds. The DEBRA pacing constants
// (CHECK_THRESH, INCR_THRESH) are reused from the debra package.
const (
	// DefaultSuspectThresholdBlocks is the number of blocks the caller's
	// current limbo bag must reach before it suspects (and neutralizes) a
	// thread that is holding the epoch back.
	DefaultSuspectThresholdBlocks = 4
	// DefaultMaxRProtect is the number of recovery hazard pointer slots per
	// thread (the paper's k); data structure operations protect a small
	// constant number of records plus one descriptor.
	DefaultMaxRProtect = 32
)

// Option configures the reclaimer.
type Option func(*config)

type config struct {
	checkThresh           int64
	incrThresh            int64
	suspectThresholdBlks  int
	scanThresholdBlks     int
	maxRProtect           int
	domain                *neutralize.Domain
	disableNeutralization bool
	spec                  core.ShardSpec
}

// WithShards partitions the incremental announcement scan into sharded
// domains, exactly as in DEBRA (see debra.WithShards): the fast path checks
// only shard-local announcements plus per-shard summary words. Fault
// tolerance is preserved across shard boundaries: when a lagging shard
// blocks the summary phase, the scanning thread falls back to that shard's
// members directly and neutralizes the laggards once its own limbo bag has
// grown past the suspicion threshold — so a thread stalled mid-operation in
// ANY shard is eventually signalled by whichever thread is trying to
// advance, not only by its shard mates.
func WithShards(spec core.ShardSpec) Option { return func(c *config) { c.spec = spec } }

// WithCheckThresh sets the announcement-check pacing (CHECK_THRESH).
func WithCheckThresh(v int) Option { return func(c *config) { c.checkThresh = int64(v) } }

// WithIncrThresh sets the epoch-advance pacing (INCR_THRESH).
func WithIncrThresh(v int) Option { return func(c *config) { c.incrThresh = int64(v) } }

// WithSuspectThresholdBlocks sets how large (in blocks) a thread's current
// limbo bag must grow before it starts neutralizing laggards.
func WithSuspectThresholdBlocks(v int) Option {
	return func(c *config) { c.suspectThresholdBlks = v }
}

// WithScanThresholdBlocks sets how large (in blocks) a rotated limbo bag must
// be before it is scanned against the RProtect table and reclaimed. The
// default is derived from n and the RProtect capacity so that each scan frees
// Omega(nk) records, giving O(1) amortised cost per record.
func WithScanThresholdBlocks(v int) Option { return func(c *config) { c.scanThresholdBlks = v } }

// WithMaxRProtect sets the number of recovery hazard pointer slots per
// thread.
func WithMaxRProtect(v int) Option { return func(c *config) { c.maxRProtect = v } }

// WithDomain supplies an externally created neutralization domain so that
// several reclaimers (or the test harness) can share one set of signal
// words. By default each reclaimer creates its own domain.
func WithDomain(d *neutralize.Domain) Option { return func(c *config) { c.domain = d } }

// WithNeutralizationDisabled turns off signalling entirely (the reclaimer
// then degrades to DEBRA's behaviour); used by ablation benchmarks.
func WithNeutralizationDisabled() Option { return func(c *config) { c.disableNeutralization = true } }

// Reclaimer implements core.Reclaimer with DEBRA+.
type Reclaimer[T any] struct {
	sink      core.FreeSink[T]
	blockSink core.BlockFreeSink[T]
	cfg       config
	domain    *neutralize.Domain

	epoch   atomic.Int64
	smap    *core.ShardMap
	shards  []shardSummary
	shared  []announceSlot
	rprot   []rprotectSlots[T]
	threads []thread[T]
	handles []handle[T]
}

// handle is one thread's fast-path view (core.ReclaimerHandle): the thread's
// private state, announcement slot and shard scan set resolved once, so
// per-operation calls index no slices at all.
type handle[T any] struct {
	r       *Reclaimer[T]
	t       *thread[T]
	slot    *announceSlot
	tid     int
	members []int
	self    int
}

// shardSummary is a shard's verified-epoch word (see debra.WithShards).
type shardSummary struct {
	v atomic.Int64
	_ [core.PadBytes]byte
}

type announceSlot struct {
	v atomic.Int64
	_ [core.PadBytes]byte
}

// rprotectSlots is one thread's recovery-hazard-pointer table: written only
// by its owner, read by every thread that scans before freeing.
type rprotectSlots[T any] struct {
	count atomic.Int32
	slots []atomic.Pointer[T]
	_     [core.PadBytes]byte
}

type thread[T any] struct {
	bags       [3]*blockbag.Bag[T]
	currentBag *blockbag.Bag[T]
	index      int

	checkNext     int64
	opsSinceCheck int64
	opsSinceIncr  int64

	blockPool *blockbag.BlockPool[T]
	scanSet   map[*T]struct{} // scratch hash table reused across scans

	// Single-writer statistics counters (core.Counter): written by the
	// owning tid (neutralizations by the signalling tid, selfNeutralized by
	// the delivering tid — both single-writer), read racily by Stats.
	retired         core.Counter
	freed           core.Counter
	epochAdvances   core.Counter
	scans           core.Counter
	neutralizations core.Counter
	selfNeutralized core.Counter

	_ [core.PadBytes]byte
}

const (
	epochInc     = 2
	quiescentBit = 1
)

// New creates a DEBRA+ reclaimer for n threads. Reclaimed records are handed
// to sink (whole blocks when it implements core.BlockFreeSink).
func New[T any](n int, sink core.FreeSink[T], opts ...Option) *Reclaimer[T] {
	if n <= 0 {
		panic("debraplus: New requires n >= 1")
	}
	if sink == nil {
		panic("debraplus: New requires a FreeSink")
	}
	cfg := config{
		checkThresh:          debra.DefaultCheckThresh,
		incrThresh:           debra.DefaultIncrThresh,
		suspectThresholdBlks: DefaultSuspectThresholdBlocks,
		maxRProtect:          DefaultMaxRProtect,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.checkThresh < 1 {
		cfg.checkThresh = 1
	}
	if cfg.incrThresh < 1 {
		cfg.incrThresh = 1
	}
	if cfg.maxRProtect < 1 {
		cfg.maxRProtect = 1
	}
	if cfg.suspectThresholdBlks < 1 {
		cfg.suspectThresholdBlks = 1
	}
	if cfg.scanThresholdBlks <= 0 {
		// Scan once the bag holds at least n*k records (rounded up to
		// blocks) plus one block, so each scan can free Omega(nk) records.
		cfg.scanThresholdBlks = (n*cfg.maxRProtect)/blockbag.BlockSize + 2
	}
	dom := cfg.domain
	if dom == nil {
		dom = neutralize.NewDomain(n)
	}
	smap := core.NewShardMap(n, cfg.spec)
	r := &Reclaimer[T]{
		sink:    sink,
		cfg:     cfg,
		domain:  dom,
		smap:    smap,
		shards:  make([]shardSummary, smap.Shards()),
		shared:  make([]announceSlot, n),
		rprot:   make([]rprotectSlots[T], n),
		threads: make([]thread[T], n),
	}
	if bs, ok := sink.(core.BlockFreeSink[T]); ok {
		r.blockSink = bs
	}
	r.epoch.Store(epochInc)
	for i := range r.threads {
		t := &r.threads[i]
		t.blockPool = blockbag.NewBlockPool[T](blockbag.DefaultBlockPoolCap)
		for j := range t.bags {
			t.bags[j] = blockbag.New(t.blockPool)
		}
		t.currentBag = t.bags[0]
		t.scanSet = make(map[*T]struct{}, n*cfg.maxRProtect)
		r.shared[i].v.Store(quiescentBit)
		r.rprot[i].slots = make([]atomic.Pointer[T], cfg.maxRProtect)
	}
	r.handles = make([]handle[T], n)
	for i := range r.handles {
		self := smap.ShardOf(i)
		r.handles[i] = handle[T]{
			r:       r,
			t:       &r.threads[i],
			slot:    &r.shared[i],
			tid:     i,
			self:    self,
			members: smap.Members(self),
		}
	}
	return r
}

// Handle implements core.HandledReclaimer.
func (r *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] { return &r.handles[tid] }

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "debra+" }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:                   "DEBRA+",
		ModPerOperation:          true,
		ModPerRetiredRecord:      true,
		ModOther:                 "write crash recovery code (trivial for descriptor-based operations)",
		Termination:              core.ProgressWaitFreeSignal,
		TraverseRetiredToRetired: true,
		FaultTolerant:            true,
		BoundedGarbage:           true,
	}
}

// Domain returns the neutralization domain used by this reclaimer.
func (r *Reclaimer[T]) Domain() *neutralize.Domain { return r.domain }

func isEqual(readEpoch, ann int64) bool { return readEpoch == ann&^quiescentBit }

// deliver performs the signal-handler action for a non-quiescent thread:
// enter the quiescent state and jump (panic) to recovery.
func (r *Reclaimer[T]) deliver(tid int) {
	s := &r.shared[tid]
	s.v.Store(s.v.Load() | quiescentBit)
	r.domain.Consume(tid)
	r.threads[tid].selfNeutralized.Inc()
	panic(neutralize.Neutralized{Tid: tid})
}

// LeaveQstate implements core.Reclaimer (Figure 6, leaveQstate).
func (r *Reclaimer[T]) LeaveQstate(tid int) bool { return r.handles[tid].LeaveQstate() }

// LeaveQstate implements core.ReclaimerHandle (Figure 6, leaveQstate).
func (h *handle[T]) LeaveQstate() bool {
	r, t, tid := h.r, h.t, h.tid
	// Signals that arrived while we were quiescent are ignored, exactly as
	// the paper's signal handler returns immediately for quiescent threads.
	r.domain.Consume(tid)

	result := false
	readEpoch := r.epoch.Load()
	if !isEqual(readEpoch, h.slot.v.Load()) {
		t.opsSinceCheck = 0
		t.checkNext = 0
		t.opsSinceIncr = 0
		r.rotateAndReclaim(tid)
		result = true
	}
	t.opsSinceCheck++
	t.opsSinceIncr++
	if t.opsSinceCheck >= r.cfg.checkThresh {
		t.opsSinceCheck = 0
		nm := int64(len(h.members))
		total := nm + int64(len(r.shards))
		if t.checkNext < nm {
			// Member phase: vacant slots are quiescent by the release
			// contract and are fast-forwarded wholesale (and must never be
			// signalled — see suspectNeutralized); then one live shard-local
			// announcement is checked per operation, and a laggard holding
			// the epoch back for too long is neutralized and treated as
			// quiescent (Figure 6).
			for t.checkNext < nm && !r.smap.SlotOccupied(h.members[t.checkNext]) {
				t.checkNext++
			}
			if t.checkNext < nm {
				other := h.members[t.checkNext]
				ann := r.shared[other].v.Load()
				if isEqual(readEpoch, ann) || ann&quiescentBit != 0 || r.suspectNeutralized(tid, other) {
					t.checkNext++
				}
			}
			if t.checkNext == nm {
				r.shards[h.self].v.Store(readEpoch)
			}
		} else {
			// Summary phase: one shard summary per operation; lagging
			// shards are verified (and their laggards neutralized) by a
			// direct member scan.
			s := int((t.checkNext - nm) % int64(len(r.shards)))
			if r.shardAt(tid, s, readEpoch) {
				t.checkNext++
			}
		}
		if t.checkNext >= total && t.opsSinceIncr >= r.cfg.incrThresh {
			if r.epoch.CompareAndSwap(readEpoch, readEpoch+epochInc) {
				t.epochAdvances.Inc()
			}
		}
	}
	h.slot.v.Store(readEpoch)
	return result
}

// shardAt reports whether shard s has been verified at epoch readEpoch: its
// summary matches, or every member is quiescent, at the epoch, or freshly
// neutralized (in which case the summary is helped forward). This is the
// cross-shard slow path that preserves DEBRA+'s fault tolerance when
// threads span multiple domains.
func (r *Reclaimer[T]) shardAt(tid, s int, readEpoch int64) bool {
	if r.shards[s].v.Load() == readEpoch {
		return true
	}
	if r.smap.ShardLive(s) == 0 {
		// Zero live occupants: every member is vacant, hence quiescent; the
		// lagging shard is verified in O(1) and nobody gets signalled.
		r.shards[s].v.Store(readEpoch)
		return true
	}
	for _, m := range r.smap.Members(s) {
		if !r.smap.SlotOccupied(m) {
			// Vacant: quiescent by the release contract, never signalled.
			continue
		}
		ann := r.shared[m].v.Load()
		if isEqual(readEpoch, ann) || ann&quiescentBit != 0 || r.suspectNeutralized(tid, m) {
			continue
		}
		return false
	}
	r.shards[s].v.Store(readEpoch)
	return true
}

// ShardMap implements core.Sharded.
func (r *Reclaimer[T]) ShardMap() *core.ShardMap { return r.smap }

// suspectNeutralized neutralizes thread other if the caller's current limbo
// bag has grown past the suspicion threshold. Returns true when a signal was
// sent, in which case the caller may treat other as quiescent.
func (r *Reclaimer[T]) suspectNeutralized(tid, other int) bool {
	if r.cfg.disableNeutralization || other == tid {
		return false
	}
	if !r.smap.SlotOccupied(other) {
		// Never signal a vacant slot: nobody owns it, and a pending signal
		// would land on whatever goroutine acquires the slot next (harmless —
		// the first LeaveQstate consumes stale signals, and a mid-operation
		// delivery is an ordinary restartable neutralization — but a wasted
		// signal and a spurious restart). Vacant slots are quiescent by the
		// release contract, so the member passes without one.
		return true
	}
	t := &r.threads[tid]
	if t.currentBag.LenBlocks() < r.cfg.suspectThresholdBlks {
		return false
	}
	if r.domain.Pending(other) {
		// A signal we (or someone else) already sent has not been consumed
		// yet; the thread is as good as neutralized, so there is no need to
		// send another one (real signals are not free).
		return true
	}
	r.domain.Signal(other)
	t.neutralizations.Inc()
	return true
}

// EnterQstate implements core.Reclaimer. A signal that is pending when the
// body finishes is delivered rather than swallowed, so an operation never
// returns a result computed from records that may have been reclaimed behind
// its back (the neutralization-window argument; see the package doc and
// internal/neutralize).
func (r *Reclaimer[T]) EnterQstate(tid int) { r.handles[tid].EnterQstate() }

// EnterQstate implements core.ReclaimerHandle.
func (h *handle[T]) EnterQstate() {
	s := h.slot
	if s.v.Load()&quiescentBit == 0 && h.r.domain.Pending(h.tid) {
		h.r.deliver(h.tid)
	}
	s.v.Store(s.v.Load() | quiescentBit)
}

// IsQuiescent implements core.Reclaimer.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool {
	return r.shared[tid].v.Load()&quiescentBit != 0
}

// Checkpoint implements core.Reclaimer: deliver a pending signal to a
// non-quiescent thread. Data structure bodies call this once per search-loop
// iteration.
func (r *Reclaimer[T]) Checkpoint(tid int) { r.handles[tid].Checkpoint() }

// Checkpoint implements core.ReclaimerHandle.
func (h *handle[T]) Checkpoint() {
	if h.slot.v.Load()&quiescentBit != 0 {
		return
	}
	if h.r.domain.Pending(h.tid) {
		h.r.deliver(h.tid)
	}
}

// PinRetire implements core.RetirePinner: clear the quiescent bit while
// keeping the announced epoch (see debra.Reclaimer.PinRetire; the same
// conservative pin). A signal arriving while pinned stays pending: Retire
// and RetireBlock contain no checkpoint, UnpinRetire sets the bit back
// without delivering — a pinned retirer computes nothing from shared
// records, so there is nothing a neutralization would need to discard — and
// the signal is consumed (ignored, as for any quiescent thread) at the
// owner's next LeaveQstate.
func (r *Reclaimer[T]) PinRetire(tid int) {
	s := &r.shared[tid]
	s.v.Store(s.v.Load() &^ quiescentBit)
}

// UnpinRetire implements core.RetirePinner.
func (r *Reclaimer[T]) UnpinRetire(tid int) {
	s := &r.shared[tid]
	s.v.Store(s.v.Load() | quiescentBit)
}

// requirePinned panics on a quiescent retire (core.RetirePinner contract;
// see the debra package for the rationale).
func (r *Reclaimer[T]) requirePinned(tid int) {
	if r.shared[tid].v.Load()&quiescentBit != 0 {
		panic("debraplus: Retire from a quiescent context; pin the thread first (PinRetire or LeaveQstate)")
	}
}

// Retire implements core.Reclaimer. The caller must be pinned
// (mid-operation, or inside a PinRetire/UnpinRetire window).
func (r *Reclaimer[T]) Retire(tid int, rec *T) { r.handles[tid].Retire(rec) }

// Retire implements core.ReclaimerHandle.
func (h *handle[T]) Retire(rec *T) {
	if rec == nil {
		panic("debraplus: Retire(nil)")
	}
	if h.slot.v.Load()&quiescentBit != 0 {
		panic("debraplus: Retire from a quiescent context; pin the thread first (PinRetire or LeaveQstate)")
	}
	h.t.currentBag.Add(rec)
	h.t.retired.Inc()
}

// Protect implements core.ReclaimerHandle (epoch protection; no per-record
// work).
func (h *handle[T]) Protect(rec *T) bool { return true }

// Unprotect implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Unprotect(rec *T) {}

// RetireBlock implements core.BlockReclaimer: splice one detached full block
// into the caller's current limbo bag in O(1) (single-owner, no
// synchronisation), returning a recycled empty block from the thread's pool
// in exchange when one is cached. The spliced records take part in the
// RProtect scan of rotateAndReclaim like individually retired ones.
func (r *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	if blk == nil {
		return nil
	}
	r.requirePinned(tid)
	t := &r.threads[tid]
	n := int64(blk.Len())
	t.currentBag.AddBlock(blk)
	t.retired.Add(n)
	return t.blockPool.TryGet()
}

// DrainLimbo implements core.LimboDrainer: free every record in every
// thread's limbo bags that is not covered by a recovery protection (records
// still RProtected are left in place — at a clean shutdown every recovery
// table is empty and everything drains). Only safe once every thread is
// quiescent for good and the caller holds a happens-before edge from their
// last operation.
func (r *Reclaimer[T]) DrainLimbo(tid int) int64 {
	for i := range r.shared {
		if r.shared[i].v.Load()&quiescentBit == 0 {
			panic("debraplus: DrainLimbo while a thread is still non-quiescent")
		}
	}
	protected := make(map[*T]struct{})
	for i := range r.rprot {
		rp := &r.rprot[i]
		n := int(rp.count.Load())
		if n > len(rp.slots) {
			n = len(rp.slots)
		}
		for j := 0; j < n; j++ {
			if rec := rp.slots[j].Load(); rec != nil {
				protected[rec] = struct{}{}
			}
		}
	}
	var total int64
	for i := range r.threads {
		t := &r.threads[i]
		var n int64
		for _, bag := range t.bags {
			var keep []*T
			bag.Drain(func(rec *T) {
				if _, ok := protected[rec]; ok {
					keep = append(keep, rec)
					return
				}
				r.sink.Free(tid, rec)
				n++
			})
			for _, rec := range keep {
				bag.Add(rec)
			}
		}
		t.freed.Add(n)
		total += n
	}
	return total
}

// Protect implements core.Reclaimer (epoch protection; nothing per record).
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return true }

// Unprotect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return true }

// RProtect implements core.Reclaimer: announce a recovery hazard pointer to
// rec. RProtect is called in the non-quiescent body, so it may deliver a
// pending neutralization; in that case the protections announced so far are
// withdrawn before jumping to recovery, which guarantees that recovery never
// relies on a protection a concurrent scanner might have missed (the
// announce-then-recheck handshake).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {
	if rec == nil {
		return
	}
	rp := &r.rprot[tid]
	n := rp.count.Load()
	if int(n) >= len(rp.slots) {
		panic("debraplus: RProtect capacity exceeded; raise WithMaxRProtect")
	}
	rp.slots[n].Store(rec)
	rp.count.Store(n + 1)
	if r.domain.Pending(tid) && r.shared[tid].v.Load()&quiescentBit == 0 {
		r.RUnprotectAll(tid)
		r.deliver(tid)
	}
}

// RUnprotectAll implements core.Reclaimer.
func (r *Reclaimer[T]) RUnprotectAll(tid int) {
	r.rprot[tid].count.Store(0)
}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool {
	rp := &r.rprot[tid]
	n := int(rp.count.Load())
	for i := 0; i < n; i++ {
		if rp.slots[i].Load() == rec {
			return true
		}
	}
	return false
}

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return true }

// rotateAndReclaim implements Figure 6's rotateAndReclaim: rotate the limbo
// bags and, once the rotated bag is large enough to amortise the scan, free
// every record in it that is not RProtected, moving whole blocks to the free
// sink after swapping protected records to the front of the bag.
func (r *Reclaimer[T]) rotateAndReclaim(tid int) {
	t := &r.threads[tid]
	t.index = (t.index + 1) % 3
	t.currentBag = t.bags[t.index]
	bag := t.currentBag
	if bag.LenBlocks() < r.cfg.scanThresholdBlks {
		return
	}
	t.scans.Inc()
	// Hash every announced recovery protection.
	set := t.scanSet
	clear(set)
	for i := range r.rprot {
		rp := &r.rprot[i]
		n := int(rp.count.Load())
		if n > len(rp.slots) {
			n = len(rp.slots)
		}
		for j := 0; j < n; j++ {
			if rec := rp.slots[j].Load(); rec != nil {
				set[rec] = struct{}{}
			}
		}
	}
	// Swap protected records to the front of the bag.
	it1 := bag.Begin()
	it2 := bag.Begin()
	for ; !it1.Done(); it1.Next() {
		if _, ok := set[it1.Get()]; ok {
			it1.Swap(&it2)
			it2.Next()
		}
	}
	// Everything after it2 is unprotected; move its full blocks to the sink.
	chain := bag.DetachFullBlocksAfter(it2)
	if chain == nil {
		return
	}
	n := int64(blockbag.ChainLen(chain))
	if r.blockSink != nil {
		r.blockSink.FreeBlocks(tid, chain)
	} else {
		for blk := chain; blk != nil; {
			next := blk.Next()
			for i := 0; i < blk.Len(); i++ {
				r.sink.Free(tid, blk.Record(i))
			}
			t.blockPool.Put(blk)
			blk = next
		}
	}
	t.freed.Add(n)
}

// Epoch returns the current global epoch (instrumentation).
func (r *Reclaimer[T]) Epoch() int64 { return r.epoch.Load() }

// LimboSize returns the number of records waiting in thread tid's limbo bags.
func (r *Reclaimer[T]) LimboSize(tid int) int {
	t := &r.threads[tid]
	total := 0
	for _, b := range t.bags {
		total += b.Len()
	}
	return total
}

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	var s core.Stats
	for i := range r.threads {
		t := &r.threads[i]
		s.Retired += t.retired.Load()
		s.Freed += t.freed.Load()
		s.EpochAdvances += t.epochAdvances.Load()
		s.Scans += t.scans.Load()
		s.Neutralizations += t.neutralizations.Load()
	}
	s.Limbo = s.Retired - s.Freed
	return s
}

// SelfNeutralizations returns how many times thread tid delivered a signal
// to itself (jumped to recovery); instrumentation for tests.
func (r *Reclaimer[T]) SelfNeutralizations(tid int) int64 {
	return r.threads[tid].selfNeutralized.Load()
}

var (
	_ core.Reclaimer[int]      = (*Reclaimer[int])(nil)
	_ core.BlockReclaimer[int] = (*Reclaimer[int])(nil)
	_ core.Sharded             = (*Reclaimer[int])(nil)
	_ core.RetirePinner        = (*Reclaimer[int])(nil)
	_ core.LimboDrainer        = (*Reclaimer[int])(nil)

	_ core.HandledReclaimer[int] = (*Reclaimer[int])(nil)
)
