package debraplus_test

import (
	"testing"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/neutralize"
	"repro/internal/reclaim/debraplus"
	"repro/internal/reclaimtest"
)

// fast makes epochs advance and suspicion trigger quickly for unit tests.
func fast() []debraplus.Option {
	return []debraplus.Option{
		debraplus.WithCheckThresh(1),
		debraplus.WithIncrThresh(1),
		debraplus.WithSuspectThresholdBlocks(1),
		debraplus.WithScanThresholdBlocks(1),
	}
}

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return debraplus.New(n, sink, fast()...)
}

func factoryDefault(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return debraplus.New(n, sink)
}

func TestConformance(t *testing.T)        { reclaimtest.Conformance(t, factory) }
func TestConformanceDefault(t *testing.T) { reclaimtest.Conformance(t, factoryDefault) }
func TestStressFast(t *testing.T) {
	reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions())
}
func TestStressDefault(t *testing.T) {
	reclaimtest.Stress(t, factoryDefault, reclaimtest.DefaultStressOptions())
}

// drive runs tid through n operations retiring one fresh record each.
func drive(r *debraplus.Reclaimer[reclaimtest.Record], tid, n int) {
	for i := 0; i < n; i++ {
		r.LeaveQstate(tid)
		r.Retire(tid, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(tid)
	}
}

// TestNeutralizationUnblocksReclamation is the headline DEBRA+ property: a
// thread stalled in the middle of an operation does NOT stop other threads
// from reclaiming memory — it gets neutralized instead.
func TestNeutralizationUnblocksReclamation(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink, fast()...)

	// Thread 1 stalls inside an operation (it never reaches EnterQstate and
	// never executes another checkpoint — a crashed or descheduled thread).
	r.LeaveQstate(1)

	drive(r, 0, 20*blockbag.BlockSize)
	if sink.Freed() == 0 {
		t.Fatalf("reclamation blocked by a stalled thread: stats=%+v", r.Stats())
	}
	s := r.Stats()
	if s.Neutralizations == 0 {
		t.Fatal("expected at least one neutralization signal to be sent")
	}
	if s.Freed > s.Retired {
		t.Fatalf("freed %d > retired %d", s.Freed, s.Retired)
	}
}

// TestStalledThreadIsNeutralizedAtNextCheckpoint verifies the delivery path:
// after being signalled, the stalled thread's next checkpoint panics with
// neutralize.Neutralized and leaves the thread quiescent.
func TestStalledThreadIsNeutralizedAtNextCheckpoint(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink, fast()...)
	r.LeaveQstate(1)
	drive(r, 0, 20*blockbag.BlockSize) // forces thread 0 to signal thread 1
	if r.Domain().SignalsSent() == 0 {
		t.Fatal("no signal was sent to the stalled thread")
	}

	delivered := func() (d bool) {
		defer func() {
			if v := recover(); v != nil {
				n, ok := neutralize.Recover(v)
				if !ok || n.Tid != 1 {
					t.Errorf("unexpected panic value %+v", v)
				}
				d = true
			}
		}()
		r.Checkpoint(1)
		return false
	}()
	if !delivered {
		t.Fatal("pending signal was not delivered at the next checkpoint")
	}
	if !r.IsQuiescent(1) {
		t.Fatal("neutralized thread must be left in a quiescent state")
	}
	if r.SelfNeutralizations(1) != 1 {
		t.Fatalf("SelfNeutralizations=%d want 1", r.SelfNeutralizations(1))
	}
	// Once quiescent, further checkpoints are no-ops even if more signals
	// arrive (the paper's handler returns immediately for quiescent threads).
	r.Domain().Signal(1)
	r.Checkpoint(1) // must not panic
	// And the next operation consumes stale signals silently.
	r.LeaveQstate(1)
	r.Checkpoint(1) // must not panic: signal was sent while quiescent
	r.EnterQstate(1)
}

// TestEnterQstateDeliversPendingSignal: an operation that finishes its body
// while a signal is pending must be neutralized rather than allowed to
// return a possibly stale result.
func TestEnterQstateDeliversPendingSignal(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink, fast()...)
	r.LeaveQstate(1)
	r.Domain().Signal(1)
	neutralized := false
	func() {
		defer func() {
			if v := recover(); v != nil {
				_, ok := neutralize.Recover(v)
				neutralized = ok
			}
		}()
		r.EnterQstate(1)
	}()
	if !neutralized {
		t.Fatal("EnterQstate must deliver a pending signal to a non-quiescent thread")
	}
}

// TestRProtectPreventsReclamation: records announced through RProtect are
// never freed, even though the epoch advances past a neutralized thread;
// they are freed after RUnprotectAll.
func TestRProtectPreventsReclamation(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink, fast()...)

	victim := &reclaimtest.Record{ID: 7}
	r.LeaveQstate(1)
	r.RProtect(1, victim)
	if !r.IsRProtected(1, victim) {
		t.Fatal("IsRProtected returned false after RProtect")
	}
	// Thread 1 now stalls; thread 0 retires the victim and lots of other
	// records, neutralizing thread 1 and reclaiming.
	r.LeaveQstate(0)
	r.Retire(0, victim)
	r.EnterQstate(0)
	drive(r, 0, 20*blockbag.BlockSize)
	if sink.Freed() == 0 {
		t.Fatal("nothing was reclaimed")
	}
	if sink.Contains(victim) {
		t.Fatal("RProtected record was freed")
	}
	// Releasing the protection lets a later scan free the victim.
	r.RUnprotectAll(1)
	drive(r, 0, 20*blockbag.BlockSize)
	if !sink.Contains(victim) {
		t.Fatal("record never freed after RUnprotectAll")
	}
}

// TestRProtectDeliversPendingSignalAndWithdraws: if a signal is already
// pending when RProtect is called, the protection must be withdrawn before
// jumping to recovery (the announce-then-recheck handshake).
func TestRProtectDeliversPendingSignalAndWithdraws(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink, fast()...)
	victim := &reclaimtest.Record{ID: 9}
	r.LeaveQstate(1)
	r.Domain().Signal(1)
	neutralized := false
	func() {
		defer func() {
			if v := recover(); v != nil {
				_, ok := neutralize.Recover(v)
				neutralized = ok
			}
		}()
		r.RProtect(1, victim)
	}()
	if !neutralized {
		t.Fatal("RProtect did not deliver the pending signal")
	}
	if r.IsRProtected(1, victim) {
		t.Fatal("protection must be withdrawn when RProtect is neutralized")
	}
}

// TestBoundedGarbageUnderStall: with a stalled thread, DEBRA+ keeps the
// number of unreclaimed records bounded (the O(n(nm+c)) bound), in contrast
// to DEBRA where it grows without bound.
func TestBoundedGarbageUnderStall(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink, fast()...)
	r.LeaveQstate(1) // stalled forever
	const total = 60 * blockbag.BlockSize
	maxLimbo := int64(0)
	for i := 0; i < total; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
		if l := r.Stats().Limbo; l > maxLimbo {
			maxLimbo = l
		}
	}
	// The bound is a small number of blocks per bag per thread; 20 blocks is
	// far below the 60 blocks retired and far above the expected steady
	// state, so it distinguishes bounded from unbounded behaviour robustly.
	if maxLimbo > 20*blockbag.BlockSize {
		t.Fatalf("limbo reached %d records; expected it to stay bounded", maxLimbo)
	}
}

// TestNeutralizationDisabledBehavesLikeDEBRA: with signalling turned off, a
// stalled thread blocks reclamation again (ablation switch).
func TestNeutralizationDisabledBehavesLikeDEBRA(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(2, sink,
		debraplus.WithCheckThresh(1), debraplus.WithIncrThresh(1),
		debraplus.WithSuspectThresholdBlocks(1), debraplus.WithScanThresholdBlocks(1),
		debraplus.WithNeutralizationDisabled())
	r.LeaveQstate(1)
	drive(r, 0, 20*blockbag.BlockSize)
	if sink.Freed() != 0 {
		t.Fatal("records were freed even though neutralization was disabled and a thread is stalled")
	}
}

// TestSharedDomain: two reclaimers can share a neutralization domain.
func TestSharedDomain(t *testing.T) {
	dom := neutralize.NewDomain(2)
	sink := reclaimtest.NewRecordingSink()
	r1 := debraplus.New(2, sink, append(fast(), debraplus.WithDomain(dom))...)
	r2 := debraplus.New(2, sink, append(fast(), debraplus.WithDomain(dom))...)
	if r1.Domain() != dom || r2.Domain() != dom {
		t.Fatal("WithDomain was not honoured")
	}
}

// TestRProtectCapacity: exceeding the RProtect capacity is a programming
// error and must be reported loudly.
func TestRProtectCapacity(t *testing.T) {
	r := debraplus.New(1, reclaimtest.NewRecordingSink(), debraplus.WithMaxRProtect(2))
	r.LeaveQstate(0)
	r.RProtect(0, &reclaimtest.Record{ID: 1})
	r.RProtect(0, &reclaimtest.Record{ID: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when RProtect capacity is exceeded")
		}
	}()
	r.RProtect(0, &reclaimtest.Record{ID: 3})
}

func TestNewValidation(t *testing.T) {
	if !panics(func() { debraplus.New[reclaimtest.Record](0, reclaimtest.NewRecordingSink()) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { debraplus.New[reclaimtest.Record](1, nil) }) {
		t.Fatal("expected panic for nil sink")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

// --- sharded domains ---------------------------------------------------------

// TestShardedCrossShardNeutralization: fault tolerance survives sharding. A
// thread stalled mid-operation in ANOTHER shard is neutralized by the
// advancing thread's summary-phase slow path, so reclamation continues.
func TestShardedCrossShardNeutralization(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := debraplus.New(4, sink, append(fast(), debraplus.WithShards(core.ShardSpec{Shards: 2}))...)

	// Thread 3 (shard 1) stalls inside an operation; thread 0 (shard 0)
	// does all the work.
	r.LeaveQstate(3)
	drive(r, 0, 20*blockbag.BlockSize)

	s := r.Stats()
	if sink.Freed() == 0 {
		t.Fatalf("reclamation blocked by a stalled thread in another shard: stats=%+v", s)
	}
	if s.Neutralizations == 0 {
		t.Fatal("expected the cross-shard slow path to send a neutralization signal")
	}
	// The stalled thread's next checkpoint delivers the signal.
	func() {
		defer func() {
			if _, ok := neutralize.Recover(recover()); !ok {
				t.Fatal("stalled thread's checkpoint did not deliver the neutralization")
			}
		}()
		r.Checkpoint(3)
	}()
	if !r.IsQuiescent(3) {
		t.Fatal("neutralized thread should be quiescent")
	}
}

// TestShardedStress runs the generic reclaimer stress over both placements.
func TestShardedStress(t *testing.T) {
	for _, placement := range []core.ShardPlacement{core.PlaceBlock, core.PlaceStripe} {
		t.Run(string(placement), func(t *testing.T) {
			reclaimtest.Stress(t, func(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
				return debraplus.New[reclaimtest.Record](n, sink,
					append(fast(), debraplus.WithShards(core.ShardSpec{Shards: 2, Placement: placement}))...)
			}, reclaimtest.DefaultStressOptions())
		})
	}
}
