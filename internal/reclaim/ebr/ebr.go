// Package ebr implements classical epoch based reclamation as described by
// Fraser and summarised in Section 3 of the paper ("Epochs"). It is the
// baseline that DEBRA improves upon and is included for the ablation
// benchmarks:
//
//   - a single global epoch counter;
//   - an announcement per process, re-read and re-published at the start of
//     every operation;
//   - every operation scans announcements (O(n) per operation in the classic
//     single-domain configuration, versus DEBRA's amortised O(1));
//   - SHARED limbo bags, one per recent epoch, that processes synchronise on
//     (versus DEBRA's private per-process bags);
//   - no quiescent bit: a process that is between operations (or asleep, or
//     crashed) still blocks the epoch from advancing, so classical EBR is
//     not fault tolerant and has no bound on unreclaimed garbage.
//
// The shared limbo bags are protected by a mutex; this is faithful to the
// "shared bags" cost model the paper contrasts DEBRA against (Fraser's
// original used per-CPU lists with a lock per list).
//
// # Sharded domains
//
// With WithShards the shared state is partitioned into N reclamation
// domains (core.ShardSpec): each shard owns its own limbo bags, mutex and a
// padded epoch-summary word. The per-operation announcement scan covers only
// the caller's shard members; a shard whose members have all been verified
// at the current epoch publishes that fact in its summary word, and the
// global epoch advances once every shard's summary matches. When a summary
// lags (for example because the whole shard is idle and nobody is updating
// it), the advancing thread falls back to scanning that shard's members
// directly — so the fast path is shard-local, the worst case is the classic
// full scan, and safety is unchanged: the epoch never advances until every
// thread has been observed inactive or announcing the current epoch.
package ebr

import (
	"sync"
	"sync/atomic"

	"repro/internal/blockbag"
	"repro/internal/core"
)

// Option configures the reclaimer.
type Option func(*config)

type config struct {
	spec core.ShardSpec
}

// WithShards partitions the reclaimer into sharded domains.
func WithShards(spec core.ShardSpec) Option { return func(c *config) { c.spec = spec } }

// Reclaimer implements core.Reclaimer with classical EBR.
type Reclaimer[T any] struct {
	sink      core.FreeSink[T]
	blockSink core.BlockFreeSink[T]

	epoch   atomic.Int64
	smap    *core.ShardMap
	shards  []shardState[T]
	threads []thread
	// stats holds each thread's single-writer statistics counters, in a
	// separate padded array so the owner's counter stores do not dirty the
	// announcement lines every other thread's scan reads. (These used to be
	// four global atomic.Int64 cells — a LOCK-prefixed RMW on a line shared
	// by every thread, several times per operation.)
	stats   []threadStats
	handles []handle[T]
}

type thread struct {
	announce atomic.Int64
	active   atomic.Bool
	_        [core.PadBytes]byte
}

// threadStats is one thread's single-writer counters (core.Counter), padded
// so neighbouring threads' cells do not share cache lines.
type threadStats struct {
	retired       core.Counter
	freed         core.Counter
	epochAdvances core.Counter
	scans         core.Counter
	_             [core.PadBytes]byte
}

// handle is one thread's fast-path view (core.ReclaimerHandle): the thread's
// announcement slot, stats, shard state and member list resolved once.
type handle[T any] struct {
	r       *Reclaimer[T]
	t       *thread
	st      *threadStats
	shard   *shardState[T]
	tid     int
	members []int
	self    int
}

// shardState is one reclamation domain: its verified-epoch summary, the
// epoch up to which its limbo has been reclaimed, and the shard-shared limbo
// bags (guarded by mu, as in the classic shared-bag cost model — sharding
// divides the contention by the shard count instead of removing it, which is
// exactly the knob the ablation measures).
type shardState[T any] struct {
	summary atomic.Int64 // last epoch every member was verified at

	mu    sync.Mutex
	limbo [3]*blockbag.Bag[T] // indexed by retire epoch modulo 3
	pool  *blockbag.BlockPool[T]

	_ [core.PadBytes]byte
}

// New creates a classical EBR reclaimer for n threads whose reclaimed
// records are passed to sink.
func New[T any](n int, sink core.FreeSink[T], opts ...Option) *Reclaimer[T] {
	if n <= 0 {
		panic("ebr: New requires n >= 1")
	}
	if sink == nil {
		panic("ebr: New requires a FreeSink")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	smap := core.NewShardMap(n, cfg.spec)
	r := &Reclaimer[T]{
		sink:    sink,
		smap:    smap,
		shards:  make([]shardState[T], smap.Shards()),
		threads: make([]thread, n),
		stats:   make([]threadStats, n),
	}
	if bs, ok := sink.(core.BlockFreeSink[T]); ok {
		r.blockSink = bs
	}
	r.epoch.Store(1)
	for i := range r.shards {
		s := &r.shards[i]
		s.pool = blockbag.NewBlockPool[T](blockbag.DefaultBlockPoolCap)
		for j := range s.limbo {
			s.limbo[j] = blockbag.New(s.pool)
		}
		s.summary.Store(1)
	}
	r.handles = make([]handle[T], n)
	for i := range r.handles {
		self := smap.ShardOf(i)
		r.handles[i] = handle[T]{
			r:       r,
			t:       &r.threads[i],
			st:      &r.stats[i],
			shard:   &r.shards[self],
			tid:     i,
			self:    self,
			members: smap.Members(self),
		}
	}
	return r
}

// Handle implements core.HandledReclaimer.
func (r *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] { return &r.handles[tid] }

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "ebr" }

// ShardMap implements core.Sharded.
func (r *Reclaimer[T]) ShardMap() *core.ShardMap { return r.smap }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:                   "EBR",
		ModPerOperation:          true,
		ModPerRetiredRecord:      true,
		Termination:              core.ProgressLockFree,
		TraverseRetiredToRetired: true,
		FaultTolerant:            false,
		BoundedGarbage:           false,
	}
}

// passes reports whether thread i does not block an advance away from epoch
// e: it is inactive or has announced e.
func (r *Reclaimer[T]) passes(i int, e int64) bool {
	t := &r.threads[i]
	return !t.active.Load() || t.announce.Load() == e
}

// LeaveQstate implements core.Reclaimer: announce the current epoch and scan
// the caller's shard; when the whole shard has been verified at the current
// epoch, publish that in the shard summary, and advance the epoch once every
// shard's summary (or, for lagging shards, a direct member scan) passes.
func (r *Reclaimer[T]) LeaveQstate(tid int) bool { return r.handles[tid].LeaveQstate() }

// LeaveQstate implements core.ReclaimerHandle.
func (h *handle[T]) LeaveQstate() bool {
	r, t := h.r, h.t
	e := r.epoch.Load()
	changed := t.announce.Load() != e
	t.announce.Store(e)
	t.active.Store(true)

	// Classical EBR scans announcements on every operation; with shards the
	// scan is the caller's shard members only. When a slot registry reports
	// the caller as its shard's only live occupant, the member loop is
	// skipped outright — every other member is vacant, hence quiescent (the
	// release contract), and the race with a concurrent acquire is the same
	// quiescent-thread-wakes race the plain scan already tolerates.
	canAdvance := true
	if live := r.smap.ShardLive(h.self); live < 0 || live > 1 {
		for _, i := range h.members {
			if i == h.tid {
				continue
			}
			if !r.passes(i, e) {
				canAdvance = false
				break
			}
		}
	}
	h.st.scans.Inc()
	if canAdvance {
		s := h.shard
		if s.summary.Load() != e {
			s.summary.Store(e)
		}
		if r.allShardsAt(e) && r.epoch.CompareAndSwap(e, e+1) {
			h.st.epochAdvances.Inc()
			r.reclaimEpoch(h.tid, e+1)
		}
	}
	return changed
}

// allShardsAt reports whether every shard has been verified at epoch e,
// consulting the memoised summaries first and falling back to a direct
// member scan for lagging shards (helping their summary forward on success).
// A shard whose occupancy summary reads zero live slots has only vacant —
// hence quiescent — members and is verified in O(1), which is what keeps
// the lagging-shard slow path cheap when the registry's capacity far
// exceeds the live goroutine count.
func (r *Reclaimer[T]) allShardsAt(e int64) bool {
	for i := range r.shards {
		s := &r.shards[i]
		if s.summary.Load() == e {
			continue
		}
		if r.smap.ShardLive(i) == 0 {
			s.summary.Store(e)
			continue
		}
		for _, m := range r.smap.Members(i) {
			if !r.passes(m, e) {
				return false
			}
		}
		s.summary.Store(e)
	}
	return true
}

// reclaimEpoch frees every shard's limbo bag that is now two epochs old. It
// is called ONLY by the thread that just advanced the epoch to newEpoch, and
// that caller's own still-active announcement of newEpoch-1 is the safety
// argument: the freed index (newEpoch+1)%3 is the bag that will collect
// retires at epoch newEpoch+1, and the epoch cannot reach newEpoch+1 until
// the caller — currently announcing newEpoch-1 — passes through another
// LeaveQstate, which happens only after this drain returns. Concurrent
// retires therefore land in the other two bags. (A freer that merely
// re-loaded the epoch would lack this pin and could race a retire into the
// bag it is draining.) Sweeping ALL shards from the winner also keeps idle
// shards' garbage bounded, exactly as the single shared bag behaved.
func (r *Reclaimer[T]) reclaimEpoch(tid int, newEpoch int64) {
	idx := int((newEpoch + 1) % 3)
	for si := range r.shards {
		s := &r.shards[si]
		var rest []*T
		s.mu.Lock()
		bag := s.limbo[idx]
		chain := bag.DetachAllFullBlocks()
		for {
			rec, ok := bag.Remove()
			if !ok {
				break
			}
			rest = append(rest, rec)
		}
		s.mu.Unlock()
		n := int64(blockbag.ChainLen(chain)) + int64(len(rest))
		if n == 0 {
			continue
		}
		if r.blockSink != nil && chain != nil {
			r.blockSink.FreeBlocks(tid, chain)
		} else {
			for blk := chain; blk != nil; blk = blk.Next() {
				for i := 0; i < blk.Len(); i++ {
					r.sink.Free(tid, blk.Record(i))
				}
			}
		}
		for _, rec := range rest {
			r.sink.Free(tid, rec)
		}
		r.stats[tid].freed.Add(n)
	}
}

// EnterQstate implements core.Reclaimer. Classical EBR has no quiescent bit,
// but we record inactivity so that threads which never perform another
// operation do not block the epoch forever in long-running processes; a
// thread that stalls *inside* an operation still blocks reclamation, which
// is the failure mode the paper highlights.
func (r *Reclaimer[T]) EnterQstate(tid int) { r.threads[tid].active.Store(false) }

// EnterQstate implements core.ReclaimerHandle.
func (h *handle[T]) EnterQstate() { h.t.active.Store(false) }

// Retire implements core.ReclaimerHandle.
func (h *handle[T]) Retire(rec *T) {
	if rec == nil {
		panic("ebr: Retire(nil)")
	}
	if !h.t.active.Load() {
		panic("ebr: Retire from a quiescent context; pin the thread first (PinRetire or LeaveQstate)")
	}
	e := h.r.epoch.Load()
	idx := int(e % 3)
	s := h.shard
	s.mu.Lock()
	s.limbo[idx].Add(rec)
	s.mu.Unlock()
	h.st.retired.Inc()
}

// Protect implements core.ReclaimerHandle (no-op for EBR).
func (h *handle[T]) Protect(rec *T) bool { return true }

// Unprotect implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Unprotect(rec *T) {}

// Checkpoint implements core.ReclaimerHandle (no-op).
func (h *handle[T]) Checkpoint() {}

// IsQuiescent implements core.Reclaimer.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool { return !r.threads[tid].active.Load() }

// PinRetire implements core.RetirePinner: announce the current epoch and
// mark the thread active, without the scan/advance work of LeaveQstate. The
// announcement is the retire-side pin: while it stands, the epoch can run at
// most one advance ahead of any epoch a Retire between Pin and Unpin loads,
// so retired records always land at least two advances away from the bag an
// advance winner may be draining.
func (r *Reclaimer[T]) PinRetire(tid int) {
	t := &r.threads[tid]
	t.announce.Store(r.epoch.Load())
	t.active.Store(true)
}

// UnpinRetire implements core.RetirePinner.
func (r *Reclaimer[T]) UnpinRetire(tid int) { r.threads[tid].active.Store(false) }

// requirePinned panics when thread tid retires without an active
// announcement. An unpinned (quiescent) retirer's loaded epoch can go
// arbitrarily stale between the load and the bag append — nothing stops the
// epoch advancing twice in that window, at which point the append races the
// advance winner's reclaimEpoch drain of that very bag index. Quiescent
// callers must pin first (core.RetirePinner), which is what
// RecordManager.FlushRetired does on shutdown paths.
func (r *Reclaimer[T]) requirePinned(tid int) {
	if !r.threads[tid].active.Load() {
		panic("ebr: Retire from a quiescent context; pin the thread first (PinRetire or LeaveQstate)")
	}
}

// Retire implements core.Reclaimer: append to the caller's shard's limbo bag
// of the current epoch. The caller must be pinned (mid-operation, or inside
// a PinRetire/UnpinRetire window).
func (r *Reclaimer[T]) Retire(tid int, rec *T) { r.handles[tid].Retire(rec) }

// RetireBlock implements core.BlockReclaimer: splice one detached full block
// into the caller's shard's current limbo bag — O(1) under one lock
// acquisition for the whole batch — returning a recycled empty block from
// the shard's pool in exchange when one is cached. The caller must be pinned
// like for Retire.
func (r *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	if blk == nil {
		return nil
	}
	r.requirePinned(tid)
	n := int64(blk.Len())
	e := r.epoch.Load()
	idx := int(e % 3)
	s := &r.shards[r.smap.ShardOf(tid)]
	s.mu.Lock()
	s.limbo[idx].AddBlock(blk)
	spare := s.pool.TryGet()
	s.mu.Unlock()
	r.stats[tid].retired.Add(n)
	return spare
}

// DrainLimbo implements core.LimboDrainer: free every record in every
// shard's limbo bags. Only safe once every thread has quiesced for good
// (verified against the announcements; references are the caller's
// contract) — shutdown paths after workers are joined.
func (r *Reclaimer[T]) DrainLimbo(tid int) int64 {
	for i := range r.threads {
		if r.threads[i].active.Load() {
			panic("ebr: DrainLimbo while a thread is still active")
		}
	}
	var total int64
	for si := range r.shards {
		s := &r.shards[si]
		var chains []*blockbag.Block[T]
		var rest []*T
		s.mu.Lock()
		for _, bag := range s.limbo {
			if c := bag.DetachAllFullBlocks(); c != nil {
				chains = append(chains, c)
			}
			bag.Drain(func(rec *T) { rest = append(rest, rec) })
		}
		s.mu.Unlock()
		n := int64(len(rest))
		for _, chain := range chains {
			// Touching s.pool outside s.mu is fine here: the all-quiescent
			// precondition means no concurrent Retire/RetireBlock exists.
			n += core.FreeChain(r.sink, r.blockSink, s.pool, tid, chain)
		}
		for _, rec := range rest {
			r.sink.Free(tid, rec)
		}
		r.stats[tid].freed.Add(n)
		total += n
	}
	return total
}

// Protect implements core.Reclaimer (no per-record work for EBR).
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return true }

// Unprotect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return true }

// RProtect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {}

// RUnprotectAll implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RUnprotectAll(tid int) {}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return false }

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return false }

// Checkpoint implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Checkpoint(tid int) {}

// Epoch returns the current global epoch (instrumentation).
func (r *Reclaimer[T]) Epoch() int64 { return r.epoch.Load() }

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	var s core.Stats
	for i := range r.stats {
		st := &r.stats[i]
		s.Retired += st.retired.Load()
		s.Freed += st.freed.Load()
		s.EpochAdvances += st.epochAdvances.Load()
		s.Scans += st.scans.Load()
	}
	s.Limbo = s.Retired - s.Freed
	return s
}

var (
	_ core.Reclaimer[int]      = (*Reclaimer[int])(nil)
	_ core.BlockReclaimer[int] = (*Reclaimer[int])(nil)
	_ core.Sharded             = (*Reclaimer[int])(nil)
	_ core.RetirePinner        = (*Reclaimer[int])(nil)
	_ core.LimboDrainer        = (*Reclaimer[int])(nil)

	_ core.HandledReclaimer[int] = (*Reclaimer[int])(nil)
)
