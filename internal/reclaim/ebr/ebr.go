// Package ebr implements classical epoch based reclamation as described by
// Fraser and summarised in Section 3 of the paper ("Epochs"). It is the
// baseline that DEBRA improves upon and is included for the ablation
// benchmarks:
//
//   - a single global epoch counter;
//   - an announcement per process, re-read and re-published at the start of
//     every operation;
//   - every operation scans the announcements of ALL processes (O(n) per
//     operation, versus DEBRA's amortised O(1));
//   - three SHARED limbo bags, one per recent epoch, that all processes
//     synchronise on (versus DEBRA's private per-process bags);
//   - no quiescent bit: a process that is between operations (or asleep, or
//     crashed) still blocks the epoch from advancing, so classical EBR is
//     not fault tolerant and has no bound on unreclaimed garbage.
//
// The shared limbo bags are protected by a mutex; this is faithful to the
// "shared bags" cost model the paper contrasts DEBRA against (Fraser's
// original used per-CPU lists with a lock per list).
package ebr

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Reclaimer implements core.Reclaimer with classical EBR.
type Reclaimer[T any] struct {
	sink core.FreeSink[T]

	epoch   atomic.Int64
	threads []thread

	mu    sync.Mutex
	limbo [3][]*T // shared limbo bags indexed by epoch modulo 3

	retired       atomic.Int64
	freed         atomic.Int64
	epochAdvances atomic.Int64
	scans         atomic.Int64
}

type thread struct {
	announce atomic.Int64
	active   atomic.Bool
	_        [core.PadBytes]byte
}

// New creates a classical EBR reclaimer for n threads whose reclaimed
// records are passed to sink.
func New[T any](n int, sink core.FreeSink[T]) *Reclaimer[T] {
	if n <= 0 {
		panic("ebr: New requires n >= 1")
	}
	if sink == nil {
		panic("ebr: New requires a FreeSink")
	}
	r := &Reclaimer[T]{sink: sink, threads: make([]thread, n)}
	r.epoch.Store(1)
	return r
}

// Name implements core.Reclaimer.
func (r *Reclaimer[T]) Name() string { return "ebr" }

// Props implements core.Reclaimer.
func (r *Reclaimer[T]) Props() core.Properties {
	return core.Properties{
		Scheme:                   "EBR",
		ModPerOperation:          true,
		ModPerRetiredRecord:      true,
		Termination:              core.ProgressLockFree,
		TraverseRetiredToRetired: true,
		FaultTolerant:            false,
		BoundedGarbage:           false,
	}
}

// LeaveQstate implements core.Reclaimer: announce the current epoch and scan
// every other announcement; if all active processes announced the current
// epoch, advance it and free the oldest limbo bag.
func (r *Reclaimer[T]) LeaveQstate(tid int) bool {
	t := &r.threads[tid]
	e := r.epoch.Load()
	changed := t.announce.Load() != e
	t.announce.Store(e)
	t.active.Store(true)

	// Classical EBR scans all announcements on every operation.
	canAdvance := true
	for i := range r.threads {
		if i == tid {
			continue
		}
		other := &r.threads[i]
		if other.active.Load() && other.announce.Load() != e {
			canAdvance = false
			break
		}
	}
	r.scans.Add(1)
	if canAdvance && r.epoch.CompareAndSwap(e, e+1) {
		r.epochAdvances.Add(1)
		r.reclaimEpoch(tid, e+1)
	}
	return changed
}

// reclaimEpoch frees the limbo bag that is now two epochs old.
func (r *Reclaimer[T]) reclaimEpoch(tid int, newEpoch int64) {
	idx := int((newEpoch + 1) % 3) // the bag that will be reused for newEpoch+1
	r.mu.Lock()
	bag := r.limbo[idx]
	r.limbo[idx] = nil
	r.mu.Unlock()
	for _, rec := range bag {
		r.sink.Free(tid, rec)
	}
	r.freed.Add(int64(len(bag)))
}

// EnterQstate implements core.Reclaimer. Classical EBR has no quiescent bit,
// but we record inactivity so that threads which never perform another
// operation do not block the epoch forever in long-running processes; a
// thread that stalls *inside* an operation still blocks reclamation, which
// is the failure mode the paper highlights.
func (r *Reclaimer[T]) EnterQstate(tid int) { r.threads[tid].active.Store(false) }

// IsQuiescent implements core.Reclaimer.
func (r *Reclaimer[T]) IsQuiescent(tid int) bool { return !r.threads[tid].active.Load() }

// Retire implements core.Reclaimer: append to the shared limbo bag of the
// current epoch.
func (r *Reclaimer[T]) Retire(tid int, rec *T) {
	if rec == nil {
		panic("ebr: Retire(nil)")
	}
	e := r.epoch.Load()
	idx := int(e % 3)
	r.mu.Lock()
	r.limbo[idx] = append(r.limbo[idx], rec)
	r.mu.Unlock()
	r.retired.Add(1)
}

// Protect implements core.Reclaimer (no per-record work for EBR).
func (r *Reclaimer[T]) Protect(tid int, rec *T) bool { return true }

// Unprotect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Unprotect(tid int, rec *T) {}

// IsProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return true }

// RProtect implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RProtect(tid int, rec *T) {}

// RUnprotectAll implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) RUnprotectAll(tid int) {}

// IsRProtected implements core.Reclaimer.
func (r *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return false }

// SupportsCrashRecovery implements core.Reclaimer.
func (r *Reclaimer[T]) SupportsCrashRecovery() bool { return false }

// Checkpoint implements core.Reclaimer (no-op).
func (r *Reclaimer[T]) Checkpoint(tid int) {}

// Epoch returns the current global epoch (instrumentation).
func (r *Reclaimer[T]) Epoch() int64 { return r.epoch.Load() }

// Stats implements core.Reclaimer.
func (r *Reclaimer[T]) Stats() core.Stats {
	retired := r.retired.Load()
	freed := r.freed.Load()
	return core.Stats{
		Retired:       retired,
		Freed:         freed,
		Limbo:         retired - freed,
		EpochAdvances: r.epochAdvances.Load(),
		Scans:         r.scans.Load(),
	}
}

var _ core.Reclaimer[int] = (*Reclaimer[int])(nil)
