package ebr_test

import (
	"testing"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/reclaim/ebr"
	"repro/internal/reclaimtest"
)

func factory(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
	return ebr.New[reclaimtest.Record](n, sink)
}

func TestConformance(t *testing.T) { reclaimtest.Conformance(t, factory) }

func TestStress(t *testing.T) { reclaimtest.Stress(t, factory, reclaimtest.DefaultStressOptions()) }

// TestSingleThreadEventuallyFrees drives one thread through many operations
// and checks that retired records are eventually handed to the sink, and
// only after at least two epoch advances.
func TestSingleThreadEventuallyFrees(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](1, sink)
	rec := &reclaimtest.Record{ID: 42}
	r.LeaveQstate(0)
	r.Retire(0, rec)
	r.EnterQstate(0)
	if sink.Contains(rec) {
		t.Fatal("record freed immediately after retire")
	}
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if !sink.Contains(rec) {
		t.Fatalf("record not freed after 10 idle operations (epoch=%d, stats=%+v)", r.Epoch(), r.Stats())
	}
}

// TestStalledOperationBlocksReclamation verifies the paper's criticism of
// classical EBR: a thread that is stalled inside an operation prevents every
// other thread from reclaiming memory.
func TestStalledOperationBlocksReclamation(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](2, sink)

	// Thread 1 starts an operation and stalls (never calls EnterQstate).
	r.LeaveQstate(1)

	for i := 0; i < 10_000; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got != 0 {
		t.Fatalf("stalled thread should block reclamation, but %d records were freed", got)
	}
	if limbo := r.Stats().Limbo; limbo != 10_000 {
		t.Fatalf("limbo=%d want 10000", limbo)
	}

	// Once the stalled thread finishes, reclamation resumes.
	r.EnterQstate(1)
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if got := sink.Freed(); got == 0 {
		t.Fatal("reclamation did not resume after the stalled thread finished")
	}
}

// TestIdleThreadDoesNotBlockForever checks that a registered thread which
// never performs an operation does not prevent reclamation (the
// implementation tracks activity; see the package comment).
func TestIdleThreadDoesNotBlockForever(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](4, sink) // threads 1..3 never run
	for i := 0; i < 1000; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("idle registered threads blocked reclamation")
	}
}

// TestNoFreeWhileRetireeCouldBeReferenced retires a record while a second
// thread is mid-operation and verifies the record is not freed until that
// thread passes through a quiescent state.
func TestNoFreeWhileRetireeCouldBeReferenced(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](2, sink)

	r.LeaveQstate(1) // thread 1 is mid-operation and may hold pointers
	rec := &reclaimtest.Record{ID: 7}
	r.LeaveQstate(0)
	r.Retire(0, rec)
	r.EnterQstate(0)
	for i := 0; i < 100; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.Contains(rec) {
		t.Fatal("record freed while thread 1 was still inside its operation")
	}
	r.EnterQstate(1)
	for i := 0; i < 100; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if !sink.Contains(rec) {
		t.Fatal("record never freed after thread 1 became quiescent")
	}
}

func TestNewValidation(t *testing.T) {
	if !panics(func() { ebr.New[reclaimtest.Record](0, reclaimtest.NewRecordingSink()) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { ebr.New[reclaimtest.Record](1, nil) }) {
		t.Fatal("expected panic for nil sink")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

// --- sharded domains ---------------------------------------------------------

// TestShardedCrossShardSafety is the critical sharding property: a record
// retired by a thread of shard 0 must not be freed while a thread of shard 1
// is mid-operation, even though the fast-path scans are shard-local.
func TestShardedCrossShardSafety(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](4, sink, ebr.WithShards(core.ShardSpec{Shards: 2}))
	if r.ShardMap().ShardOf(0) == r.ShardMap().ShardOf(3) {
		t.Fatal("tids 0 and 3 should be in different shards")
	}

	r.LeaveQstate(3) // other-shard thread is mid-operation and may hold pointers
	rec := &reclaimtest.Record{ID: 7}
	r.LeaveQstate(0)
	r.Retire(0, rec)
	r.EnterQstate(0)
	for i := 0; i < 200; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if sink.Contains(rec) {
		t.Fatal("record freed while a thread of another shard was mid-operation")
	}
	r.EnterQstate(3)
	for i := 0; i < 200; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	if !sink.Contains(rec) {
		t.Fatal("record never freed after the other shard became quiescent")
	}
}

// TestShardedIdleShardDoesNotBlock checks the lagging-shard slow path: a
// shard whose members never run at all must not stall the epoch.
func TestShardedIdleShardDoesNotBlock(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](4, sink, ebr.WithShards(core.ShardSpec{Shards: 4}))
	for i := 0; i < 1000; i++ {
		r.LeaveQstate(0)
		r.Retire(0, &reclaimtest.Record{ID: int64(i)})
		r.EnterQstate(0)
	}
	if sink.Freed() == 0 {
		t.Fatal("idle shards blocked reclamation")
	}
}

// TestShardedStress runs the generic reclaimer stress over both placements.
func TestShardedStress(t *testing.T) {
	for _, placement := range []core.ShardPlacement{core.PlaceBlock, core.PlaceStripe} {
		t.Run(string(placement), func(t *testing.T) {
			reclaimtest.Stress(t, func(n int, sink core.FreeSink[reclaimtest.Record]) core.Reclaimer[reclaimtest.Record] {
				return ebr.New[reclaimtest.Record](n, sink, ebr.WithShards(core.ShardSpec{Shards: 2, Placement: placement}))
			}, reclaimtest.DefaultStressOptions())
		})
	}
}

// TestRetireBlockSplice checks the O(1) batched-retire path: a full block
// splices into the shard limbo bag and its records are freed after the usual
// two epochs.
func TestRetireBlockSplice(t *testing.T) {
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[reclaimtest.Record](1, sink)
	bag := blockbag.New[reclaimtest.Record](nil)
	recs := make([]*reclaimtest.Record, blockbag.BlockSize)
	for i := range recs {
		recs[i] = &reclaimtest.Record{ID: int64(i)}
		bag.Add(recs[i])
	}
	r.LeaveQstate(0)
	r.RetireBlock(0, bag.DetachAllFullBlocks())
	r.EnterQstate(0)
	if got := r.Stats().Retired; got != int64(blockbag.BlockSize) {
		t.Fatalf("Retired = %d want %d", got, blockbag.BlockSize)
	}
	for i := 0; i < 10; i++ {
		r.LeaveQstate(0)
		r.EnterQstate(0)
	}
	for _, rec := range recs {
		if !sink.Contains(rec) {
			t.Fatalf("record %d from the spliced block was never freed", rec.ID)
		}
	}
}
