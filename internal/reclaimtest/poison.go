package reclaimtest

import (
	"sync/atomic"

	"repro/internal/core"
)

// Poisonable is implemented (with pointer receivers) by managed record types
// that carry a freed-mark for use-after-free detection. The poison wrappers
// below set the mark on every record handed to the free path and clear it on
// reuse; data structure instrumentation (for example the hash map's visit
// hook) asserts that a traversal never observes the mark on a record its
// protection has made safe to access.
type Poisonable interface {
	// Poison marks the record freed and reports whether it already was
	// (a double free).
	Poison() bool
	// Unpoison clears the freed mark (the record is being reused).
	Unpoison()
	// IsPoisoned reports whether the record is currently marked freed.
	IsPoisoned() bool
}

// PoisonPool wraps an object pool for any record type whose pointer type
// implements Poisonable: records are poisoned when the reclaimer frees them
// into the pool and unpoisoned when the pool hands them back out, so a
// reader that still observes a poisoned record has, by construction, crossed
// a free. It implements core.Pool and is installed both as the reclaimer's
// free sink and as the Record Manager's pool.
type PoisonPool[T any, PT interface {
	*T
	Poisonable
}] struct {
	inner       core.Pool[T]
	frees       atomic.Int64
	doubleFrees atomic.Int64
}

// NewPoisonPool wraps inner with poisoning instrumentation.
func NewPoisonPool[T any, PT interface {
	*T
	Poisonable
}](inner core.Pool[T]) *PoisonPool[T, PT] {
	if inner == nil {
		panic("reclaimtest: NewPoisonPool requires a pool")
	}
	return &PoisonPool[T, PT]{inner: inner}
}

// Allocate implements core.Pool: the record is unpoisoned before the caller
// can see it, so a subsequent publish makes it observable only as live.
func (p *PoisonPool[T, PT]) Allocate(tid int) *T {
	rec := p.inner.Allocate(tid)
	PT(rec).Unpoison()
	return rec
}

// Free implements core.FreeSink.
func (p *PoisonPool[T, PT]) Free(tid int, rec *T) {
	if PT(rec).Poison() {
		p.doubleFrees.Add(1)
	}
	p.frees.Add(1)
	p.inner.Free(tid, rec)
}

// Stats implements core.Pool.
func (p *PoisonPool[T, PT]) Stats() core.PoolStats { return p.inner.Stats() }

// Freed returns the number of records freed through the wrapper.
func (p *PoisonPool[T, PT]) Freed() int64 { return p.frees.Load() }

// DoubleFrees returns the number of records freed more than once.
func (p *PoisonPool[T, PT]) DoubleFrees() int64 { return p.doubleFrees.Load() }

// PoisonDiscard is the no-reuse analogue of PoisonPool: a free sink that
// poisons records and discards them (Experiment-1 style configurations,
// where freed records are never recycled so the mark is permanent).
type PoisonDiscard[T any, PT interface {
	*T
	Poisonable
}] struct {
	frees       atomic.Int64
	doubleFrees atomic.Int64
}

// NewPoisonDiscard creates a poisoning, discarding free sink.
func NewPoisonDiscard[T any, PT interface {
	*T
	Poisonable
}]() *PoisonDiscard[T, PT] {
	return &PoisonDiscard[T, PT]{}
}

// Free implements core.FreeSink.
func (s *PoisonDiscard[T, PT]) Free(tid int, rec *T) {
	if PT(rec).Poison() {
		s.doubleFrees.Add(1)
	}
	s.frees.Add(1)
}

// Freed returns the number of records freed.
func (s *PoisonDiscard[T, PT]) Freed() int64 { return s.frees.Load() }

// DoubleFrees returns the number of records freed more than once.
func (s *PoisonDiscard[T, PT]) DoubleFrees() int64 { return s.doubleFrees.Load() }
