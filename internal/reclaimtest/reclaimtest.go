// Package reclaimtest provides shared test scaffolding for the reclamation
// schemes: a recording free sink, a poisoning sink that detects
// use-after-free at the logical level, and a generic concurrent stress
// harness (a tiny lock-free "data structure" of atomic slots) that exercises
// any core.Reclaimer implementation and checks the fundamental safety
// property — a record is never handed to the free sink while a protected /
// epoch-covered reader can still reach it.
package reclaimtest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/neutralize"
)

// Record is the record type used by the shared tests.
type Record struct {
	ID int64
	// poisoned is set by the PoisonSink when the record is freed; readers
	// that still hold the record under protection must never observe it.
	poisoned atomic.Bool
	// birth distinguishes reuse generations when a pool recycles records.
	birth atomic.Int64
	pad   [4]int64
}

// RecordingSink collects every freed record (thread safe).
type RecordingSink struct {
	mu    sync.Mutex
	freed []*Record
	count atomic.Int64
}

// NewRecordingSink creates an empty recording sink.
func NewRecordingSink() *RecordingSink { return &RecordingSink{} }

// Free implements core.FreeSink.
func (s *RecordingSink) Free(tid int, rec *Record) {
	s.mu.Lock()
	s.freed = append(s.freed, rec)
	s.mu.Unlock()
	s.count.Add(1)
}

// Freed returns the number of records freed so far.
func (s *RecordingSink) Freed() int64 { return s.count.Load() }

// Records returns a snapshot of the freed records.
func (s *RecordingSink) Records() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, len(s.freed))
	copy(out, s.freed)
	return out
}

// Contains reports whether rec has been freed.
func (s *RecordingSink) Contains(rec *Record) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.freed {
		if r == rec {
			return true
		}
	}
	return false
}

// PoisonSink marks freed records as poisoned and detects double frees.
type PoisonSink struct {
	count       atomic.Int64
	doubleFrees atomic.Int64
}

// NewPoisonSink creates a poisoning sink.
func NewPoisonSink() *PoisonSink { return &PoisonSink{} }

// Free implements core.FreeSink.
func (s *PoisonSink) Free(tid int, rec *Record) {
	if rec.poisoned.Swap(true) {
		s.doubleFrees.Add(1)
	}
	s.count.Add(1)
}

// Freed returns the number of records freed.
func (s *PoisonSink) Freed() int64 { return s.count.Load() }

// DoubleFrees returns the number of records freed more than once.
func (s *PoisonSink) DoubleFrees() int64 { return s.doubleFrees.Load() }

// Factory constructs the reclaimer under test for n threads with the given
// free sink.
type Factory func(n int, sink core.FreeSink[Record]) core.Reclaimer[Record]

// StressOptions tunes the concurrent safety stress.
type StressOptions struct {
	Threads  int
	Slots    int
	Duration time.Duration
	// OpsPerEpoch is the number of slot operations performed per
	// leaveQstate/enterQstate pair (simulating one data structure
	// operation touching a few records).
	OpsPerEpoch int
}

// DefaultStressOptions returns options suitable for `go test`.
func DefaultStressOptions() StressOptions {
	return StressOptions{Threads: 6, Slots: 64, Duration: 150 * time.Millisecond, OpsPerEpoch: 3}
}

// Stress runs the generic safety stress against the reclaimer produced by
// factory and fails the test if a protected reader ever observes a poisoned
// (freed) record, or if any record is freed twice.
//
// The "data structure" is an array of atomic slots, each holding a pointer
// to a live record. A writer replaces a slot's record with CAS and retires
// the old one. A reader loads a slot, protects the record (validating the
// slot still holds it when the scheme requires per-record protection), and
// then asserts the record is not poisoned. Retired records can still be
// observed by readers that obtained them before the retire — exactly the
// window safe memory reclamation must keep open — but freed records must
// never be observed by an operation that completes.
//
// Operations that are neutralized (DEBRA+) have their observations
// discarded, mirroring the scheme's contract that a neutralized operation's
// results are thrown away and the operation retried.
func Stress(t *testing.T, factory Factory, opts StressOptions) {
	t.Helper()
	if opts.Threads <= 0 {
		opts = DefaultStressOptions()
	}
	sink := NewPoisonSink()
	rec := factory(opts.Threads, sink)
	perRecord := rec.Props().PerRecordProtection

	slots := make([]atomic.Pointer[Record], opts.Slots)
	var nextID atomic.Int64
	for i := range slots {
		slots[i].Store(&Record{ID: nextID.Add(1)})
	}

	var (
		violations atomic.Int64
		totalOps   atomic.Int64
		stop       atomic.Bool
		wg         sync.WaitGroup
	)
	for tid := 0; tid < opts.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*7919 + 13))
			for !stop.Load() {
				completed, observedFreed := runStressOp(rec, slots, &nextID, rng, tid, opts.OpsPerEpoch, perRecord)
				if completed {
					totalOps.Add(1)
					violations.Add(observedFreed)
				}
			}
		}(tid)
	}
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("use-after-free: %d protected reads observed a freed record", v)
	}
	if d := sink.DoubleFrees(); d != 0 {
		t.Fatalf("%d records were freed more than once", d)
	}
	stats := rec.Stats()
	if stats.Freed > stats.Retired {
		t.Fatalf("freed (%d) exceeds retired (%d)", stats.Freed, stats.Retired)
	}
	if stats.Limbo < 0 {
		t.Fatalf("negative limbo count: %d", stats.Limbo)
	}
	if totalOps.Load() == 0 {
		t.Fatal("stress performed no operations")
	}
}

// runStressOp performs one leaveQstate/enterQstate cycle of slot operations.
// It returns whether the operation completed (was not neutralized) and the
// number of freed-record observations made during it.
func runStressOp(rec core.Reclaimer[Record], slots []atomic.Pointer[Record], nextID *atomic.Int64,
	rng *rand.Rand, tid, opsPerEpoch int, perRecord bool) (completed bool, observedFreed int64) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := neutralize.Recover(v); ok {
				// Neutralized: the operation's observations are discarded
				// and it is simply retried, exactly as a data structure
				// using DEBRA+ would do.
				completed = false
				observedFreed = 0
				return
			}
		}
	}()
	rec.LeaveQstate(tid)
	for k := 0; k < opsPerEpoch; k++ {
		rec.Checkpoint(tid)
		idx := rng.Intn(len(slots))
		cur := slots[idx].Load()
		if cur == nil {
			continue
		}
		if perRecord {
			if !rec.Protect(tid, cur) {
				continue
			}
			if slots[idx].Load() != cur {
				// The record may already be retired; abandon it.
				rec.Unprotect(tid, cur)
				continue
			}
		}
		// The record is now safe to access: it must not have been freed.
		if cur.poisoned.Load() {
			observedFreed++
		}
		if rng.Intn(3) == 0 {
			// Replace the record and retire the old one.
			repl := &Record{ID: nextID.Add(1)}
			if slots[idx].CompareAndSwap(cur, repl) {
				rec.Retire(tid, cur)
			}
		}
		if perRecord {
			rec.Unprotect(tid, cur)
		}
	}
	rec.EnterQstate(tid)
	return true, observedFreed
}

// Conformance runs quick single-threaded sanity checks every reclaimer must
// pass: retiring is counted, quiescence toggles, protect/unprotect and the
// recovery-protection calls do not panic, and stats are consistent.
func Conformance(t *testing.T, factory Factory) {
	t.Helper()
	sink := NewRecordingSink()
	rec := factory(2, sink)

	if got := rec.Name(); got == "" {
		t.Fatal("Name returned an empty string")
	}
	props := rec.Props()
	if props.Scheme == "" {
		t.Fatal("Props().Scheme is empty")
	}
	if len(props.Row()) != len(core.FigureTwoHeader()) {
		t.Fatal("Properties.Row length does not match FigureTwoHeader")
	}

	rec.LeaveQstate(0)
	r1 := &Record{ID: 1}
	r2 := &Record{ID: 2}
	if !rec.Protect(0, r1) {
		t.Fatal("Protect returned false for a live record")
	}
	if !rec.IsProtected(0, r1) {
		t.Fatal("IsProtected returned false right after Protect")
	}
	rec.Retire(0, r2)
	rec.Unprotect(0, r1)
	rec.RProtect(0, r1)
	if rec.SupportsCrashRecovery() && !rec.IsRProtected(0, r1) {
		t.Fatal("IsRProtected returned false right after RProtect on a crash-recovery scheme")
	}
	rec.RUnprotectAll(0)
	rec.Checkpoint(0)
	rec.EnterQstate(0)
	if !rec.IsQuiescent(0) {
		t.Fatal("thread 0 not quiescent after EnterQstate")
	}

	s := rec.Stats()
	if s.Retired != 1 {
		t.Fatalf("Retired=%d want 1", s.Retired)
	}
	if s.Freed < 0 || s.Freed > 1 {
		t.Fatalf("Freed=%d out of range", s.Freed)
	}
	if s.Limbo != s.Retired-s.Freed {
		t.Fatalf("Limbo=%d inconsistent with Retired-Freed=%d", s.Limbo, s.Retired-s.Freed)
	}
}
