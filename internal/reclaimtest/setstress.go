package reclaimtest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// ShardCounts returns the sharded-domain counts the DS-level safety stresses
// cover on this machine (see core.DefaultShardSweep).
func ShardCounts() []int { return core.DefaultShardSweep() }

// Set is the minimal concurrent-set surface the data-structure-level stress
// drives. Implementations take the dense thread id of the calling worker and
// are expected to handle their own restarts and neutralization recovery
// internally (a real data structure, unlike the raw-reclaimer Stress above).
type Set interface {
	Insert(tid int, key int64) bool
	Delete(tid int, key int64) bool
	Contains(tid int, key int64) bool
}

// ChurnWorker is one dynamically bound worker of a set under churn stress:
// an acquired thread slot with the set's operations bound to it. Release
// returns the slot for reuse; the worker must not be used afterwards.
type ChurnWorker interface {
	Insert(key int64) bool
	Delete(key int64) bool
	Contains(key int64) bool
	Release()
}

// SetUnderTest couples the set being stressed with the observation counters
// its instrumentation exposes.
type SetUnderTest struct {
	Set Set
	// AcquireWorker binds the calling goroutine to a vacant thread slot and
	// returns the slot-bound operations (the data structures' AcquireHandle
	// surface). Required by StressSetChurn; nil elsewhere.
	AcquireWorker func() ChurnWorker
	// RequireDrained, when true, makes the churn stress assert
	// Retired == Freed after Close (every reclaiming scheme; the leaking
	// baseline leaves it false).
	RequireDrained bool
	// Violations returns the number of freed-record observations the set's
	// traversal instrumentation made (wired to the poison wrappers; see
	// Poisonable). Nil disables the check.
	Violations func() int64
	// DoubleFrees returns the poison wrapper's double-free count. Nil
	// disables the check.
	DoubleFrees func() int64
	// Stats returns the reclaimer's counters. Nil disables the check.
	Stats func() core.Stats
	// Validate, when non-nil, is a quiescent structural check run after the
	// stress (for example the hash map's split-order validation).
	Validate func() error
	// Close, when non-nil, shuts the reclamation pipeline down after all
	// checks (Record Manager Close: flush, async drain, limbo force-free).
	// StressSet re-checks the double-free counter afterwards, so shutdown
	// draining is covered by the same poison instrumentation.
	Close func()
}

// SetFactory builds a fresh set instance for n threads.
type SetFactory func(n int) SetUnderTest

// SetStressOptions tunes StressSet and StressSetChurn.
type SetStressOptions struct {
	Threads  int
	Duration time.Duration
	// KeyRange is the shared key universe all threads contend on.
	KeyRange int64
	// PrivateKeys is the number of keys each thread owns exclusively, used
	// for deterministic semantic checks under concurrent load (an op on a
	// private key has exactly one correct answer).
	PrivateKeys int64
	// InsertPct and DeletePct are percentages of the mixed shared-range
	// workload; the remainder are Contains calls.
	InsertPct, DeletePct int
	// OpsPerSlot is the number of operations a churn-stress goroutine
	// performs between releasing its thread slot and acquiring a fresh one
	// (StressSetChurn only; 0 picks a default).
	OpsPerSlot int
}

// DefaultSetStressOptions returns options suitable for `go test`.
func DefaultSetStressOptions() SetStressOptions {
	return SetStressOptions{
		Threads:     6,
		Duration:    150 * time.Millisecond,
		KeyRange:    512,
		PrivateKeys: 64,
		InsertPct:   40,
		DeletePct:   40,
	}
}

// StressSet runs concurrent mixed churn over the set produced by factory and
// fails the test if the set's instrumentation observed a freed record, any
// record was freed twice, reclamation counters are inconsistent, or an
// operation on a thread-private key returned the wrong answer.
//
// Three of every four operations hit the shared key range (maximum retire /
// reuse contention); the fourth hits the thread's private range, where the
// linearized outcome is deterministic and checked against a local model.
func StressSet(t *testing.T, factory SetFactory, opts SetStressOptions) {
	t.Helper()
	if opts.Threads <= 0 {
		opts = DefaultSetStressOptions()
	}
	su := factory(opts.Threads)
	if su.Set == nil {
		t.Fatal("SetFactory returned a nil Set")
	}

	var (
		semanticFailures atomic.Int64
		totalOps         atomic.Int64
		stop             atomic.Bool
		wg               sync.WaitGroup
	)
	for tid := 0; tid < opts.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*104729 + 17))
			// Private keys live above the shared range, in per-thread bands.
			privBase := opts.KeyRange + int64(tid)*opts.PrivateKeys
			model := make([]bool, opts.PrivateKeys)
			ops := int64(0)
			for !stop.Load() {
				if opts.PrivateKeys > 0 && ops%4 == 3 {
					k := rng.Int63n(opts.PrivateKeys)
					key := privBase + k
					switch rng.Intn(3) {
					case 0:
						if su.Set.Insert(tid, key) == model[k] {
							// Insert succeeds iff the key was absent.
							semanticFailures.Add(1)
						}
						model[k] = true
					case 1:
						if su.Set.Delete(tid, key) != model[k] {
							semanticFailures.Add(1)
						}
						model[k] = false
					default:
						if su.Set.Contains(tid, key) != model[k] {
							semanticFailures.Add(1)
						}
					}
				} else {
					key := rng.Int63n(opts.KeyRange)
					p := rng.Intn(100)
					switch {
					case p < opts.InsertPct:
						su.Set.Insert(tid, key)
					case p < opts.InsertPct+opts.DeletePct:
						su.Set.Delete(tid, key)
					default:
						su.Set.Contains(tid, key)
					}
				}
				ops++
			}
			totalOps.Add(ops)
		}(tid)
	}
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()

	checkSetStress(t, su, &semanticFailures, &totalOps)
}

// checkSetStress runs the shared post-stress verification: poison counters,
// semantic model failures, counter sanity, structural validation, and the
// shutdown-drain re-checks (including Retired == Freed when the set demands
// it via RequireDrained).
func checkSetStress(t *testing.T, su SetUnderTest, semanticFailures, totalOps *atomic.Int64) {
	t.Helper()
	if su.Violations != nil {
		if v := su.Violations(); v != 0 {
			t.Fatalf("use-after-free: %d traversal visits observed a freed record", v)
		}
	}
	if su.DoubleFrees != nil {
		if d := su.DoubleFrees(); d != 0 {
			t.Fatalf("%d records were freed more than once", d)
		}
	}
	if s := semanticFailures.Load(); s != 0 {
		t.Fatalf("%d operations on thread-private keys returned the wrong answer", s)
	}
	if su.Stats != nil {
		stats := su.Stats()
		if stats.Freed > stats.Retired {
			t.Fatalf("freed (%d) exceeds retired (%d)", stats.Freed, stats.Retired)
		}
		if stats.Limbo < 0 {
			t.Fatalf("negative limbo count: %d", stats.Limbo)
		}
	}
	if totalOps.Load() == 0 {
		t.Fatal("stress performed no operations")
	}
	if su.Validate != nil {
		if err := su.Validate(); err != nil {
			t.Fatalf("post-stress validation: %v", err)
		}
	}
	if su.Close != nil {
		su.Close()
		if su.DoubleFrees != nil {
			if d := su.DoubleFrees(); d != 0 {
				t.Fatalf("%d records were freed more than once during shutdown draining", d)
			}
		}
		if su.Stats != nil {
			stats := su.Stats()
			if stats.Freed > stats.Retired {
				t.Fatalf("after close: freed (%d) exceeds retired (%d)", stats.Freed, stats.Retired)
			}
			if su.RequireDrained && stats.Freed != stats.Retired {
				t.Fatalf("after close: retired (%d) != freed (%d); shutdown draining left limbo behind",
					stats.Retired, stats.Freed)
			}
		}
	}
}

// StressSetChurn is the slot-churn variant of StressSet: every worker
// goroutine continually acquires a thread slot, performs a bounded burst of
// operations through it, and releases the slot again (ReleaseHandle flushes
// the slot's retire buffer and returns its pool cache), so thread slots are
// constantly vacated, skipped by reclamation scans, and reused by other
// goroutines. The same poison-sink instrumentation as StressSet applies:
// a freed-record observation, a double free, or a wrong answer on a
// goroutine-private key — in particular one caused by state leaking across
// slot reuse — fails the test. After Close, Retired == Freed is asserted
// for sets that demand it (every reclaiming scheme).
func StressSetChurn(t *testing.T, factory SetFactory, opts SetStressOptions) {
	t.Helper()
	if opts.Threads <= 0 {
		opts = DefaultSetStressOptions()
	}
	if opts.OpsPerSlot <= 0 {
		opts.OpsPerSlot = 64
	}
	su := factory(opts.Threads)
	if su.AcquireWorker == nil {
		t.Fatal("SetFactory returned no AcquireWorker; StressSetChurn needs the dynamic binding surface")
	}

	var (
		semanticFailures atomic.Int64
		totalOps         atomic.Int64
		stop             atomic.Bool
		wg               sync.WaitGroup
	)
	for g := 0; g < opts.Threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*104729 + 23))
			// Private keys are per-goroutine, not per-slot: the model must
			// stay correct while the goroutine migrates across slots.
			privBase := opts.KeyRange + int64(g)*opts.PrivateKeys
			model := make([]bool, opts.PrivateKeys)
			ops := int64(0)
			for !stop.Load() {
				w := su.AcquireWorker()
				for burst := 0; burst < opts.OpsPerSlot && !stop.Load(); burst++ {
					if opts.PrivateKeys > 0 && ops%4 == 3 {
						k := rng.Int63n(opts.PrivateKeys)
						key := privBase + k
						switch rng.Intn(3) {
						case 0:
							if w.Insert(key) == model[k] {
								semanticFailures.Add(1)
							}
							model[k] = true
						case 1:
							if w.Delete(key) != model[k] {
								semanticFailures.Add(1)
							}
							model[k] = false
						default:
							if w.Contains(key) != model[k] {
								semanticFailures.Add(1)
							}
						}
					} else {
						key := rng.Int63n(opts.KeyRange)
						p := rng.Intn(100)
						switch {
						case p < opts.InsertPct:
							w.Insert(key)
						case p < opts.InsertPct+opts.DeletePct:
							w.Delete(key)
						default:
							w.Contains(key)
						}
					}
					ops++
				}
				w.Release()
			}
			totalOps.Add(ops)
		}(g)
	}
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()

	checkSetStress(t, su, &semanticFailures, &totalOps)
}
