package reclaimtest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// QueueIface is the minimal concurrent FIFO surface the queue-level stress
// drives (the Michael-Scott queue's shape). Values are int64 so the harness
// can encode (producer tid, sequence number) pairs and verify exactly-once
// delivery.
type QueueIface interface {
	Enqueue(tid int, value int64)
	Dequeue(tid int) (int64, bool)
}

// QueueUnderTest couples the queue being stressed with its observation
// counters, mirroring SetUnderTest.
type QueueUnderTest struct {
	Queue QueueIface
	// Violations returns the number of freed-record observations made by the
	// queue's traversal instrumentation (visit hook + poison wrappers). Nil
	// disables the check.
	Violations func() int64
	// DoubleFrees returns the poison wrapper's double-free count. Nil
	// disables the check.
	DoubleFrees func() int64
	// Stats returns the reclaimer's counters. Nil disables the check.
	Stats func() core.Stats
	// Len returns the number of elements in the queue (quiescent use only);
	// nil disables the conservation check.
	Len func() int
}

// QueueFactory builds a fresh queue instance for n threads.
type QueueFactory func(n int) QueueUnderTest

// QueueStressOptions tunes StressQueue.
type QueueStressOptions struct {
	Threads  int
	Duration time.Duration
	// EnqueuePct is the percentage of operations that enqueue; the rest
	// dequeue (values below 50 keep the queue short, maximising head/tail
	// contention and node recycling).
	EnqueuePct int
}

// DefaultQueueStressOptions returns options suitable for `go test`.
func DefaultQueueStressOptions() QueueStressOptions {
	return QueueStressOptions{Threads: 6, Duration: 150 * time.Millisecond, EnqueuePct: 50}
}

// seqShift packs (tid, seq) into an int64 value: value = tid<<seqShift | seq.
const seqShift = 40

// StressQueue runs concurrent enqueue/dequeue churn over the queue produced
// by factory and fails the test if the instrumentation observed a freed
// record, any record was freed twice, a value was lost, duplicated or
// invented, or the element count fails to balance — the queue-shaped
// analogue of StressSet's poison-sink safety harness.
func StressQueue(t *testing.T, factory QueueFactory, opts QueueStressOptions) {
	t.Helper()
	if opts.Threads <= 0 {
		opts = DefaultQueueStressOptions()
	}
	qu := factory(opts.Threads)
	if qu.Queue == nil {
		t.Fatal("QueueFactory returned a nil Queue")
	}

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		enqCount = make([]atomic.Int64, opts.Threads)
		dequeued = make([][]int64, opts.Threads)
	)
	for tid := 0; tid < opts.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*7919 + 3))
			seq := int64(0)
			for !stop.Load() {
				if rng.Intn(100) < opts.EnqueuePct {
					qu.Queue.Enqueue(tid, int64(tid)<<seqShift|seq)
					seq++
					enqCount[tid].Store(seq)
				} else if v, ok := qu.Queue.Dequeue(tid); ok {
					dequeued[tid] = append(dequeued[tid], v)
				}
			}
		}(tid)
	}
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()

	// Exactly-once delivery: every dequeued value decodes to a (tid, seq)
	// that was actually enqueued, and no value appears twice.
	seen := make(map[int64]bool)
	totalDeq := int64(0)
	for _, vals := range dequeued {
		for _, v := range vals {
			producer := v >> seqShift
			seq := v & (1<<seqShift - 1)
			if producer < 0 || producer >= int64(opts.Threads) || seq >= enqCount[producer].Load() {
				t.Fatalf("dequeued value %#x was never enqueued (producer %d, seq %d)", v, producer, seq)
			}
			if seen[v] {
				t.Fatalf("value %#x was dequeued twice", v)
			}
			seen[v] = true
			totalDeq++
		}
	}
	totalEnq := int64(0)
	for i := range enqCount {
		totalEnq += enqCount[i].Load()
	}
	if totalDeq > totalEnq {
		t.Fatalf("dequeued %d values but only %d were enqueued", totalDeq, totalEnq)
	}
	if qu.Len != nil {
		if rest := int64(qu.Len()); totalDeq+rest != totalEnq {
			t.Fatalf("conservation failure: enqueued %d, dequeued %d, %d left in the queue", totalEnq, totalDeq, rest)
		}
	}
	if qu.Violations != nil {
		if v := qu.Violations(); v != 0 {
			t.Fatalf("use-after-free: %d traversal visits observed a freed record", v)
		}
	}
	if qu.DoubleFrees != nil {
		if d := qu.DoubleFrees(); d != 0 {
			t.Fatalf("%d records were freed more than once", d)
		}
	}
	if qu.Stats != nil {
		stats := qu.Stats()
		if stats.Freed > stats.Retired {
			t.Fatalf("freed (%d) exceeds retired (%d)", stats.Freed, stats.Retired)
		}
		if stats.Limbo < 0 {
			t.Fatalf("negative limbo count: %d", stats.Limbo)
		}
	}
	if totalEnq == 0 {
		t.Fatal("stress performed no enqueues")
	}
}
