package kvwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// frame strips the length prefix off a single encoded frame, verifying the
// prefix matches the payload it covers.
func frame(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) < lenPrefix {
		t.Fatalf("frame shorter than the length prefix: %d bytes", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) != len(b)-lenPrefix {
		t.Fatalf("length prefix %d does not match payload length %d", n, len(b)-lenPrefix)
	}
	return b[lenPrefix:]
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		enc  func([]byte) []byte
		want Request
	}{
		{"get", func(d []byte) []byte { return AppendGet(d, 42) }, Request{Op: OpGet, Key: 42}},
		{"get-negative-key", func(d []byte) []byte { return AppendGet(d, -7) }, Request{Op: OpGet, Key: -7}},
		{"del", func(d []byte) []byte { return AppendDel(d, 1<<40) }, Request{Op: OpDel, Key: 1 << 40}},
		{"put", func(d []byte) []byte { return AppendPut(d, 9, []byte("hello")) }, Request{Op: OpPut, Key: 9, Value: []byte("hello")}},
		{"put-empty-value", func(d []byte) []byte { return AppendPut(d, 9, nil) }, Request{Op: OpPut, Key: 9, Value: []byte{}}},
		{"stats", AppendStats, Request{Op: OpStats}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := frame(t, tc.enc(nil))
			got, err := DecodeRequest(payload)
			if err != nil {
				t.Fatalf("DecodeRequest: %v", err)
			}
			if got.Op != tc.want.Op || got.Key != tc.want.Key || !bytes.Equal(got.Value, tc.want.Value) {
				t.Fatalf("round trip: got %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		status Status
		body   []byte
	}{
		{StatusOK, []byte("value")},
		{StatusOK, nil},
		{StatusNotFound, nil},
		{StatusErr, []byte("boom")},
	} {
		payload := frame(t, AppendResponse(nil, tc.status, tc.body))
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("DecodeResponse(%v): %v", tc.status, err)
		}
		if got.Status != tc.status || !bytes.Equal(got.Body, tc.body) {
			t.Fatalf("round trip: got %+v, want status=%v body=%q", got, tc.status, tc.body)
		}
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	var wire []byte
	wire = AppendGet(wire, 1)
	wire = AppendPut(wire, 2, []byte("two"))
	wire = AppendStats(wire)
	r := bytes.NewReader(wire)
	var buf []byte
	for i, want := range []Request{{Op: OpGet, Key: 1}, {Op: OpPut, Key: 2, Value: []byte("two")}, {Op: OpStats}} {
		payload, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		buf = payload // exercise buffer reuse across frames
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("frame %d: DecodeRequest: %v", i, err)
		}
		if got.Op != want.Op || got.Key != want.Key || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("after the last frame: got %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var prefix [lenPrefix]byte
	binary.BigEndian.PutUint32(prefix[:], MaxPayload+1)
	_, err := ReadFrame(bytes.NewReader(prefix[:]), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length prefix: got %v, want ErrFrameTooLarge", err)
	}
	// MaxPayload exactly is legal.
	body := make([]byte, MaxPayload)
	body[0] = byte(OpStats)
	binary.BigEndian.PutUint32(prefix[:], MaxPayload)
	payload, err := ReadFrame(bytes.NewReader(append(prefix[:], body...)), nil)
	if err != nil {
		t.Fatalf("MaxPayload-sized frame: %v", err)
	}
	if len(payload) != MaxPayload {
		t.Fatalf("MaxPayload-sized frame: got %d payload bytes", len(payload))
	}
}

func TestReadFrameRejectsEmpty(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader(make([]byte, lenPrefix)), nil)
	if !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("zero-length frame: got %v, want ErrEmptyFrame", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := AppendPut(nil, 7, []byte("payload"))
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("stream cut at %d/%d bytes: got %v, want io.ErrUnexpectedEOF", cut, len(full), err)
		}
	}
	// A cut at 0 is a clean end-of-stream, not a protocol error.
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrEmptyFrame},
		{"get-truncated-key", append([]byte{byte(OpGet)}, 1, 2, 3), ErrTruncated},
		{"del-truncated-key", []byte{byte(OpDel)}, ErrTruncated},
		{"put-truncated-key", append([]byte{byte(OpPut)}, 1, 2, 3, 4, 5, 6, 7), ErrTruncated},
		{"get-trailing", append(frameless(AppendGet(nil, 1)), 0xff), ErrTrailingBytes},
		{"stats-trailing", []byte{byte(OpStats), 0x00}, ErrTrailingBytes},
		{"unknown-op", []byte{0xee, 0, 0, 0, 0, 0, 0, 0, 0}, ErrUnknownOp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRequest(tc.payload); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// frameless strips the length prefix without validation (test helper for
// constructing deliberately malformed payloads).
func frameless(b []byte) []byte { return b[lenPrefix:] }

func TestDecodeResponseRejectsEmpty(t *testing.T) {
	if _, err := DecodeResponse(nil); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("got %v, want ErrEmptyFrame", err)
	}
}

func TestAppendPutRejectsOversizedValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendPut accepted a value above MaxValueLen")
		}
	}()
	AppendPut(nil, 1, make([]byte, MaxValueLen+1))
}

func TestOpAndStatusStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{OpGet.String(), "GET"}, {OpPut.String(), "PUT"}, {OpDel.String(), "DEL"},
		{OpStats.String(), "STATS"}, {Op(0xee).String(), "Op(0xee)"},
		{StatusOK.String(), "OK"}, {StatusNotFound.String(), "NOT_FOUND"},
		{StatusErr.String(), "ERR"}, {Status(0x55).String(), "Status(0x55)"},
	} {
		if tc.got != tc.want {
			t.Fatalf("String: got %q, want %q", tc.got, tc.want)
		}
	}
	if !strings.Contains(Op(0xee).String(), "0xee") {
		t.Fatal("unknown opcode should render its byte")
	}
}

func TestDecodeRequestsBatch(t *testing.T) {
	var wire []byte
	wire = AppendGet(wire, 1)
	wire = AppendPut(wire, 2, []byte("two"))
	wire = AppendDel(wire, 3)
	wire = AppendStats(wire)
	want := []Request{
		{Op: OpGet, Key: 1},
		{Op: OpPut, Key: 2, Value: []byte("two")},
		{Op: OpDel, Key: 3},
		{Op: OpStats},
	}

	// Whole buffer at once, no cap: every frame decodes, all bytes consumed.
	reqs, consumed, err := DecodeRequests(nil, wire, 0)
	if err != nil {
		t.Fatalf("DecodeRequests: %v", err)
	}
	if consumed != len(wire) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(wire))
	}
	if len(reqs) != len(want) {
		t.Fatalf("decoded %d requests, want %d", len(reqs), len(want))
	}
	for i, w := range want {
		if reqs[i].Op != w.Op || reqs[i].Key != w.Key || !bytes.Equal(reqs[i].Value, w.Value) {
			t.Fatalf("request %d: got %+v, want %+v", i, reqs[i], w)
		}
	}

	// Capped: stops after max requests, consuming exactly their frames.
	reqs, consumed, err = DecodeRequests(reqs[:0], wire, 2)
	if err != nil || len(reqs) != 2 {
		t.Fatalf("capped decode: %d requests, err %v", len(reqs), err)
	}
	rest, consumed2, err := DecodeRequests(nil, wire[consumed:], 0)
	if err != nil || len(rest) != 2 || consumed+consumed2 != len(wire) {
		t.Fatalf("resume after cap: %d requests, consumed %d+%d of %d, err %v",
			len(rest), consumed, consumed2, len(wire), err)
	}
}

func TestDecodeRequestsPartialFrames(t *testing.T) {
	var wire []byte
	wire = AppendGet(wire, 7)
	wire = AppendPut(wire, 8, []byte("value"))
	// Every cut point: complete frames before the cut decode, the partial
	// tail is left unconsumed without error.
	for cut := 0; cut <= len(wire); cut++ {
		reqs, consumed, err := DecodeRequests(nil, wire[:cut], 0)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if consumed > cut {
			t.Fatalf("cut at %d: consumed %d bytes past the cut", cut, consumed)
		}
		wantN := 0
		first := len(AppendGet(nil, 7))
		if cut >= first {
			wantN = 1
		}
		if cut == len(wire) {
			wantN = 2
		}
		if len(reqs) != wantN {
			t.Fatalf("cut at %d: decoded %d requests, want %d", cut, len(reqs), wantN)
		}
	}
}

func TestDecodeRequestsErrorsKeepPrefix(t *testing.T) {
	good := AppendGet(nil, 1)
	cases := []struct {
		name string
		tail []byte
		want error
	}{
		{"empty-frame", make([]byte, lenPrefix), ErrEmptyFrame},
		{"oversized", []byte{0xff, 0xff, 0xff, 0xff}, ErrFrameTooLarge},
		{"unknown-op", func() []byte {
			b := []byte{0, 0, 0, 9, 0xee, 0, 0, 0, 0, 0, 0, 0, 0}
			return b
		}(), ErrUnknownOp},
		{"trailing-bytes", func() []byte {
			b := AppendGet(nil, 2)
			b = append(b, 0xff)
			binary.BigEndian.PutUint32(b, uint32(len(b)-lenPrefix))
			return b
		}(), ErrTrailingBytes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := append(append([]byte(nil), good...), tc.tail...)
			reqs, consumed, err := DecodeRequests(nil, wire, 0)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			// The good frame before the bad one still decodes and is
			// consumed, so its response can be flushed before the drop.
			if len(reqs) != 1 || reqs[0].Op != OpGet || reqs[0].Key != 1 {
				t.Fatalf("requests before the bad frame: %+v", reqs)
			}
			if consumed != len(good) {
				t.Fatalf("consumed %d bytes, want %d (up to the bad frame)", consumed, len(good))
			}
		})
	}
}

// FuzzDecodeRequest feeds arbitrary payloads through the request decoder:
// it must never panic, and whatever it accepts must re-encode to an
// equivalent request (decode/encode/decode agreement).
func FuzzDecodeRequest(f *testing.F) {
	// Seed corpus: one well-formed payload per opcode, plus the malformed
	// shapes the decoder distinguishes.
	f.Add(frameless(AppendGet(nil, 42)))
	f.Add(frameless(AppendPut(nil, -1, []byte("value"))))
	f.Add(frameless(AppendDel(nil, 0)))
	f.Add(frameless(AppendStats(nil)))
	f.Add([]byte{})
	f.Add([]byte{byte(OpGet), 1, 2, 3})
	f.Add([]byte{byte(OpPut), 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xee, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		var wire []byte
		switch req.Op {
		case OpGet:
			wire = AppendGet(nil, req.Key)
		case OpPut:
			wire = AppendPut(nil, req.Key, req.Value)
		case OpDel:
			wire = AppendDel(nil, req.Key)
		case OpStats:
			wire = AppendStats(nil)
		default:
			t.Fatalf("decoder accepted unknown opcode %v", req.Op)
		}
		again, err := DecodeRequest(wire[lenPrefix:])
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Op != req.Op || again.Key != req.Key || !bytes.Equal(again.Value, req.Value) {
			t.Fatalf("decode/encode/decode mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeRequests feeds arbitrary byte streams through the batch decoder:
// it must never panic, never consume past the buffer, and must agree with
// the sequential ReadFrame + DecodeRequest path on the same stream
// (differential check — the two decoders cannot drift apart).
func FuzzDecodeRequests(f *testing.F) {
	f.Add(AppendGet(nil, 1))
	f.Add(append(AppendPut(nil, 2, []byte("two")), AppendDel(nil, 3)...))
	f.Add(append(AppendStats(nil), AppendGet(nil, 4)...))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 1, 0xee})
	f.Fuzz(func(t *testing.T, stream []byte) {
		reqs, consumed, batchErr := DecodeRequests(nil, stream, 0)
		if consumed < 0 || consumed > len(stream) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(stream))
		}
		// Replay the same stream through the sequential path: it must
		// yield the same requests, then fail iff the batch decoder failed.
		r := bytes.NewReader(stream)
		var buf []byte
		for i, want := range reqs {
			payload, err := ReadFrame(r, buf)
			if err != nil {
				t.Fatalf("frame %d: batch decoded it but ReadFrame failed: %v", i, err)
			}
			buf = payload
			got, err := DecodeRequest(payload)
			if err != nil {
				t.Fatalf("frame %d: batch decoded it but DecodeRequest failed: %v", i, err)
			}
			if got.Op != want.Op || got.Key != want.Key || !bytes.Equal(got.Value, want.Value) {
				t.Fatalf("frame %d: sequential %+v vs batch %+v", i, got, want)
			}
		}
		if batchErr != nil {
			// The next sequential step must also reject the stream (the
			// exact error can differ: ReadFrame sees a truncated bad frame
			// as ErrUnexpectedEOF where the batch decoder already knows the
			// prefix is invalid).
			payload, err := ReadFrame(r, buf)
			if err == nil {
				if _, err = DecodeRequest(payload); err == nil {
					t.Fatalf("batch decoder failed (%v) but sequential path accepted the next frame", batchErr)
				}
			}
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams through the frame reader: it
// must never panic and never return a payload longer than MaxPayload.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendGet(nil, 1))
	f.Add(append(AppendStats(nil), AppendDel(nil, 2)...))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var buf []byte
		for {
			payload, err := ReadFrame(r, buf)
			if err != nil {
				return
			}
			if len(payload) == 0 || len(payload) > MaxPayload {
				t.Fatalf("ReadFrame returned a %d-byte payload", len(payload))
			}
			buf = payload
		}
	})
}
