// Package kvwire implements the wire protocol spoken between cmd/kvserver
// and cmd/kvload: a minimal length-prefixed binary framing with four request
// opcodes (GET, PUT, DEL, STATS) and a one-byte response status. The format
// is specified normatively in docs/PROTOCOL.md; this package is the single
// codec both sides share, so the spec, the server and the load generator
// cannot drift apart.
//
// Framing: every message — request or response — is one frame:
//
//	uint32 big-endian payload length | payload (length bytes)
//
// The length covers the payload only (not the 4 length bytes itself) and is
// bounded by MaxPayload; a peer announcing a larger frame is violating the
// protocol and the connection must be dropped (ReadFrame returns
// ErrFrameTooLarge without consuming the payload). A zero-length frame is
// likewise a protocol error: every payload starts with at least an opcode or
// status byte.
//
// The Append* encoders write complete frames onto a caller-owned byte slice
// (append-style, so steady-state encoding performs no allocation), and the
// Decode* functions parse a payload in place — returned value slices alias
// the input buffer and are only valid until the buffer is reused.
package kvwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxPayload bounds a frame's payload: 1 MiB, far above any key+value this
// protocol carries, small enough that a malicious or corrupt length prefix
// cannot make the server buffer gigabytes.
const MaxPayload = 1 << 20

// MaxValueLen bounds a PUT value so the whole request fits comfortably in
// one frame (opcode + key + value <= MaxPayload).
const MaxValueLen = MaxPayload - reqHeaderLen

// Op is a request opcode (the first payload byte of a request frame).
type Op byte

// Request opcodes.
const (
	// OpGet looks a key up: payload is opcode + 8-byte key.
	OpGet Op = 0x01
	// OpPut upserts a key: payload is opcode + 8-byte key + value bytes
	// (the rest of the frame, possibly empty).
	OpPut Op = 0x02
	// OpDel removes a key: payload is opcode + 8-byte key.
	OpDel Op = 0x03
	// OpStats requests the server's statistics snapshot: payload is the
	// opcode alone.
	OpStats Op = 0x04
)

// String names the opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpStats:
		return "STATS"
	default:
		return fmt.Sprintf("Op(0x%02x)", byte(o))
	}
}

// Status is a response status (the first payload byte of a response frame).
type Status byte

// Response statuses.
const (
	// StatusOK: the operation succeeded. GET carries the value bytes, PUT
	// carries one byte (1 = an existing binding was replaced, 0 = inserted
	// fresh), DEL carries one byte (1 = the key existed and was removed,
	// 0 = it was absent), STATS carries a JSON document (docs/PROTOCOL.md).
	StatusOK Status = 0x00
	// StatusNotFound: GET on an absent key; empty body.
	StatusNotFound Status = 0x01
	// StatusBusy: the server is overloaded and fast-failed the request
	// without executing it (no handler slot within the configured bound);
	// empty body. Unlike StatusErr the framing is intact and the connection
	// stays open — the client should back off and retry.
	StatusBusy Status = 0x02
	// StatusErr: the request was malformed or could not be served; the body
	// is a UTF-8 diagnostic message. The server drops the connection after
	// sending it, since framing can no longer be trusted.
	StatusErr Status = 0x7f
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBusy:
		return "ERR_BUSY"
	case StatusErr:
		return "ERR"
	default:
		return fmt.Sprintf("Status(0x%02x)", byte(s))
	}
}

// Protocol violation errors.
var (
	// ErrFrameTooLarge reports a length prefix above MaxPayload (or a PUT
	// value above MaxValueLen on the encode side).
	ErrFrameTooLarge = errors.New("kvwire: frame exceeds MaxPayload")
	// ErrEmptyFrame reports a zero-length frame (payloads always carry at
	// least an opcode or status byte).
	ErrEmptyFrame = errors.New("kvwire: empty frame")
	// ErrTruncated reports a payload shorter than its opcode demands.
	ErrTruncated = errors.New("kvwire: truncated payload")
	// ErrTrailingBytes reports a payload longer than its opcode allows
	// (fixed-size requests with extra bytes after the last field).
	ErrTrailingBytes = errors.New("kvwire: trailing bytes after request")
	// ErrUnknownOp reports an unrecognised request opcode.
	ErrUnknownOp = errors.New("kvwire: unknown opcode")
)

// lenPrefix is the frame length prefix size; reqHeaderLen is opcode + key.
const (
	lenPrefix    = 4
	reqHeaderLen = 1 + 8
)

// Request is a decoded request payload. Value aliases the decode buffer.
type Request struct {
	Op    Op
	Key   int64
	Value []byte // PUT only
}

// Response is a decoded response payload. Body aliases the decode buffer:
// the value for GET, the replaced/deleted flag byte for PUT/DEL, the JSON
// document for STATS, the diagnostic message for StatusErr.
type Response struct {
	Status Status
	Body   []byte
}

// appendPrefix reserves a frame's length prefix, returning the extended
// slice and the prefix offset for patchLen.
func appendPrefix(dst []byte) ([]byte, int) {
	return append(dst, 0, 0, 0, 0), len(dst)
}

// patchLen back-fills the length prefix at off once the payload is written.
func patchLen(dst []byte, off int) []byte {
	binary.BigEndian.PutUint32(dst[off:], uint32(len(dst)-off-lenPrefix))
	return dst
}

// AppendGet appends a complete GET request frame for key.
func AppendGet(dst []byte, key int64) []byte {
	dst, off := appendPrefix(dst)
	dst = append(dst, byte(OpGet))
	dst = binary.BigEndian.AppendUint64(dst, uint64(key))
	return patchLen(dst, off)
}

// AppendPut appends a complete PUT request frame for key/value. Values
// longer than MaxValueLen cannot be framed; AppendPut panics, since the
// bound is a static protocol constant the caller must respect.
func AppendPut(dst []byte, key int64, value []byte) []byte {
	if len(value) > MaxValueLen {
		panic(ErrFrameTooLarge)
	}
	dst, off := appendPrefix(dst)
	dst = append(dst, byte(OpPut))
	dst = binary.BigEndian.AppendUint64(dst, uint64(key))
	dst = append(dst, value...)
	return patchLen(dst, off)
}

// AppendDel appends a complete DEL request frame for key.
func AppendDel(dst []byte, key int64) []byte {
	dst, off := appendPrefix(dst)
	dst = append(dst, byte(OpDel))
	dst = binary.BigEndian.AppendUint64(dst, uint64(key))
	return patchLen(dst, off)
}

// AppendStats appends a complete STATS request frame.
func AppendStats(dst []byte) []byte {
	dst, off := appendPrefix(dst)
	dst = append(dst, byte(OpStats))
	return patchLen(dst, off)
}

// AppendResponse appends a complete response frame with the given status and
// body. Bodies longer than MaxPayload-1 cannot be framed; AppendResponse
// panics, as for AppendPut.
func AppendResponse(dst []byte, status Status, body []byte) []byte {
	if len(body) > MaxPayload-1 {
		panic(ErrFrameTooLarge)
	}
	dst, off := appendPrefix(dst)
	dst = append(dst, byte(status))
	dst = append(dst, body...)
	return patchLen(dst, off)
}

// AppendResponseHeader appends a response frame's length prefix and status
// byte for a body of bodyLen bytes the caller will put on the wire itself
// (vectored writes: a large body is framed here but not copied through the
// staging buffer — see net.Buffers). Panics for bodies too long to frame, as
// for AppendResponse.
func AppendResponseHeader(dst []byte, status Status, bodyLen int) []byte {
	if bodyLen > MaxPayload-1 {
		panic(ErrFrameTooLarge)
	}
	dst, off := appendPrefix(dst)
	dst = append(dst, byte(status))
	binary.BigEndian.PutUint32(dst[off:], uint32(bodyLen+1))
	return dst
}

// ReadFrame reads one frame from r and returns its payload, reusing buf when
// it is large enough. It returns ErrFrameTooLarge for a length prefix above
// MaxPayload and ErrEmptyFrame for a zero length — both before consuming any
// payload, so the caller can close the connection knowing nothing else was
// read. io.EOF is returned untouched when the stream ends cleanly between
// frames (a partial prefix or payload becomes io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < lenPrefix {
		// The prefix is staged in the caller's buffer (grown once here when
		// too small) rather than a local array: a local escapes through the
		// io.Reader interface calls and would cost an allocation per frame.
		buf = make([]byte, 64)
	}
	prefix := buf[:lenPrefix]
	if _, err := io.ReadFull(r, prefix[:1]); err != nil {
		return nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, prefix[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix)
	if n > MaxPayload {
		return nil, ErrFrameTooLarge
	}
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// DecodeRequest parses a request payload. The returned Value aliases
// payload.
func DecodeRequest(payload []byte) (Request, error) {
	if len(payload) == 0 {
		return Request{}, ErrEmptyFrame
	}
	op := Op(payload[0])
	rest := payload[1:]
	switch op {
	case OpGet, OpDel:
		if len(rest) < 8 {
			return Request{}, ErrTruncated
		}
		if len(rest) > 8 {
			return Request{}, ErrTrailingBytes
		}
		return Request{Op: op, Key: int64(binary.BigEndian.Uint64(rest))}, nil
	case OpPut:
		if len(rest) < 8 {
			return Request{}, ErrTruncated
		}
		return Request{Op: op, Key: int64(binary.BigEndian.Uint64(rest)), Value: rest[8:]}, nil
	case OpStats:
		if len(rest) > 0 {
			return Request{}, ErrTrailingBytes
		}
		return Request{Op: op}, nil
	default:
		return Request{}, fmt.Errorf("%w: 0x%02x", ErrUnknownOp, payload[0])
	}
}

// DecodeRequests decodes every complete request frame at the front of buf,
// appending the decoded requests to dst (append-style: steady-state batch
// decoding performs no allocation once dst has grown to the pipeline depth).
// It stops at the first incomplete frame, after max requests (max <= 0 means
// no cap), or at the first protocol error. It returns the extended slice, the
// number of bytes consumed through the last cleanly decoded frame, and the
// error, if any. A trailing partial frame is not an error — the caller reads
// more bytes and calls again. Decoded Values alias buf and are only valid
// until buf is overwritten.
//
// On error the returned requests and consumed count cover the frames decoded
// before the bad one, so a server can still execute and flush those responses
// before dropping the connection (docs/PROTOCOL.md, "Pipelining").
func DecodeRequests(dst []Request, buf []byte, max int) ([]Request, int, error) {
	consumed := 0
	for max <= 0 || len(dst) < max {
		rest := buf[consumed:]
		if len(rest) < lenPrefix {
			break // partial length prefix: wait for more bytes
		}
		n := binary.BigEndian.Uint32(rest)
		if n > MaxPayload {
			return dst, consumed, ErrFrameTooLarge
		}
		if n == 0 {
			return dst, consumed, ErrEmptyFrame
		}
		if uint32(len(rest)-lenPrefix) < n {
			break // partial payload: wait for more bytes
		}
		req, err := DecodeRequest(rest[lenPrefix : lenPrefix+int(n)])
		if err != nil {
			return dst, consumed, err
		}
		dst = append(dst, req)
		consumed += lenPrefix + int(n)
	}
	return dst, consumed, nil
}

// DecodeResponse parses a response payload. The returned Body aliases
// payload. Any status byte is accepted (forward compatibility: new statuses
// must not break old clients' framing); interpreting the body is the
// caller's job per docs/PROTOCOL.md.
func DecodeResponse(payload []byte) (Response, error) {
	if len(payload) == 0 {
		return Response{}, ErrEmptyFrame
	}
	return Response{Status: Status(payload[0]), Body: payload[1:]}, nil
}
