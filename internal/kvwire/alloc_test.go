package kvwire

import "testing"

// The encode and batch-decode primitives sit on the server's per-request hot
// path; these tests pin their steady state at zero allocations once the
// caller reuses its buffers, which is what internal/kvservice does.

func TestAppendResponseAllocs(t *testing.T) {
	body := []byte("0123456789abcdef")
	dst := AppendResponse(nil, StatusOK, body)
	allocs := testing.AllocsPerRun(1000, func() {
		dst = AppendResponse(dst[:0], StatusOK, body)
	})
	if allocs != 0 {
		t.Fatalf("AppendResponse into a reused buffer allocates %.1f/op, want 0", allocs)
	}
}

func TestAppendResponseHeaderAllocs(t *testing.T) {
	dst := AppendResponseHeader(nil, StatusOK, 4096)
	allocs := testing.AllocsPerRun(1000, func() {
		dst = AppendResponseHeader(dst[:0], StatusOK, 4096)
	})
	if allocs != 0 {
		t.Fatalf("AppendResponseHeader into a reused buffer allocates %.1f/op, want 0", allocs)
	}
}

func TestDecodeRequestsAllocs(t *testing.T) {
	var stream []byte
	for i := int64(0); i < 8; i++ {
		stream = AppendPut(stream, i, []byte("0123456789abcdef"))
	}
	reqs, _, err := DecodeRequests(nil, stream, 0)
	if err != nil || len(reqs) != 8 {
		t.Fatalf("DecodeRequests: %d requests, err=%v", len(reqs), err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		reqs, _, err = DecodeRequests(reqs[:0], stream, 0)
		if err != nil {
			t.Fatalf("DecodeRequests: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeRequests into a reused slice allocates %.1f/op, want 0", allocs)
	}
}
