package kvload

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

func TestHistogramExact(t *testing.T) {
	var h Histogram
	// Values below subBuckets land in exact unit buckets.
	for v := int64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	if h.Count() != subBuckets {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %d", got)
	}
	if got := h.Quantile(1); got != subBuckets-1 {
		t.Fatalf("Quantile(1) = %d, want %d", got, subBuckets-1)
	}
	if got := h.Quantile(0.5); got < subBuckets/2-2 || got > subBuckets/2+2 {
		t.Fatalf("Quantile(0.5) = %d", got)
	}
}

func TestHistogramResolution(t *testing.T) {
	var h Histogram
	// Every recorded value must come back within the log-linear resolution
	// (half a bucket width, ~1/subBuckets relative).
	for _, v := range []int64{1, 100, 1_000, 50_000, 1_000_000, 123_456_789, 5_000_000_000} {
		h = Histogram{}
		h.Record(v)
		got := h.Quantile(0.5)
		lo, hi := v-v/subBuckets-1, v+v/subBuckets+1
		if got < lo || got > hi {
			t.Fatalf("Record(%d): Quantile = %d, outside [%d, %d]", v, got, lo, hi)
		}
	}
}

func TestHistogramMergeAndMax(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if got := a.Quantile(0.25); got != 10 {
		t.Fatalf("Quantile(0.25) = %d, want 10", got)
	}
	q75 := a.Quantile(0.75)
	if q75 < 970 || q75 > 1030 {
		t.Fatalf("Quantile(0.75) = %d, want ~1000", q75)
	}
	if mx := a.Max(); mx < 970 || mx > 1030 {
		t.Fatalf("Max = %d, want ~1000", mx)
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram should report 0")
	}
	var neg Histogram
	neg.Record(-5)
	if neg.Quantile(1) != 0 {
		t.Fatal("negative observations should clamp to 0")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                   // no Addr
		{Addr: "x", Dist: "bogus"},           // unknown distribution
		{Addr: "x", ZipfS: 0.5},              // zipf skew <= 1
		{Addr: "x", ReadPct: 90, DelPct: 20}, // mix over 100%
		{Addr: "x", OpenLoop: true},          // open loop without Rate
		{Addr: "x", ValueLen: -1},            // negative value length
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
}

// startServer brings up an in-process kvservice instance for load tests.
func startServer(t *testing.T, scheme string) (addr string, srv *kvservice.Server) {
	t.Helper()
	srv, err := kvservice.New(kvservice.Config{Scheme: scheme, Partitions: 2, MaxConns: 8, Burst: 32, UsePool: true})
	if err != nil {
		t.Fatalf("kvservice.New: %v", err)
	}
	a, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return a.String(), srv
}

func TestClosedLoopAgainstServer(t *testing.T) {
	addr, srv := startServer(t, recordmgr.SchemeDEBRA)
	defer srv.Close()
	res, err := Run(Config{
		Addr:     addr,
		Conns:    4,
		Duration: 100 * time.Millisecond,
		Keys:     1 << 10,
		Dist:     DistZipf,
		ReadPct:  60,
		DelPct:   20,
		Prefill:  512,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops == 0 || res.Ops != res.Gets+res.Puts+res.Dels {
		t.Fatalf("op accounting: %+v", res)
	}
	if res.Hist.Count() != res.Ops {
		t.Fatalf("histogram holds %d observations for %d ops", res.Hist.Count(), res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("Throughput = %g", res.Throughput())
	}
	if res.P50() <= 0 || res.P99() < res.P50() || res.P999() < res.P99() {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v", res.P50(), res.P99(), res.P999())
	}
	// Prefilled zipfian reads against a hot set should mostly hit.
	snap := srv.Stats()
	if snap.Gets > 0 && snap.GetHits == 0 {
		t.Fatal("no GET hit despite prefill")
	}
}

func TestOpenLoopAgainstServer(t *testing.T) {
	addr, srv := startServer(t, recordmgr.SchemeEBR)
	defer srv.Close()
	res, err := Run(Config{
		Addr:     addr,
		Conns:    2,
		Duration: 200 * time.Millisecond,
		Keys:     1 << 10,
		Dist:     DistUniform,
		OpenLoop: true,
		Rate:     2000, // 400 requests in 200ms: far below capacity
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("open loop issued no requests")
	}
	// The schedule bounds the op count: rate * duration, with slack for
	// scheduling coarseness.
	want := 2000 * 0.2
	if float64(res.Ops) > want*1.5 {
		t.Fatalf("open loop issued %d ops, schedule allows ~%g", res.Ops, want)
	}
}

// fakeKV is a scriptable kvwire endpoint for driving the client-side retry
// machinery deterministically: respond receives the global request ordinal
// and the decoded request and returns the response frame to send — or nil to
// close the connection in the peer's face (a scripted server crash).
func fakeKV(t *testing.T, respond func(n int64, req kvwire.Request) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var n atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var buf []byte
				for {
					payload, err := kvwire.ReadFrame(conn, buf)
					if err != nil {
						return
					}
					buf = payload
					req, err := kvwire.DecodeRequest(payload)
					if err != nil {
						return
					}
					out := respond(n.Add(1)-1, req)
					if out == nil {
						return
					}
					if _, err := conn.Write(out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// okFrame is a minimally correct success response for req (a miss for GETs,
// an unreplaced/unfound flag for PUTs and DELs).
func okFrame(req kvwire.Request) []byte {
	if req.Op == kvwire.OpGet {
		return kvwire.AppendResponse(nil, kvwire.StatusNotFound, nil)
	}
	return kvwire.AppendResponse(nil, kvwire.StatusOK, []byte{0})
}

// TestRetryAfterBusy: ERR_BUSY is absorbed by backoff-and-retry on the same
// connection — every other request is shed, yet the run completes every
// operation and counts the shedding.
func TestRetryAfterBusy(t *testing.T) {
	addr := fakeKV(t, func(n int64, req kvwire.Request) []byte {
		if n%2 == 0 {
			return kvwire.AppendResponse(nil, kvwire.StatusBusy, nil)
		}
		return okFrame(req)
	})
	res, err := Run(Config{Addr: addr, Conns: 1, Duration: 40 * time.Millisecond, Keys: 64, Dist: DistUniform})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("no operation completed against an alternating-busy server")
	}
	if res.Busy == 0 || res.Retries < res.Busy {
		t.Fatalf("Busy = %d, Retries = %d; every other request was shed", res.Busy, res.Retries)
	}
	if res.GaveUp != 0 {
		t.Fatalf("GaveUp = %d with the default retry budget against single shed responses", res.GaveUp)
	}
}

// TestReconnectAfterPeerCrash: a connection cut mid-conversation is transient
// — the client re-dials and the operation retries on the fresh connection.
func TestReconnectAfterPeerCrash(t *testing.T) {
	addr := fakeKV(t, func(n int64, req kvwire.Request) []byte {
		if n%4 == 3 {
			return nil // crash: drop the connection instead of answering
		}
		return okFrame(req)
	})
	res, err := Run(Config{Addr: addr, Conns: 2, Duration: 60 * time.Millisecond, Keys: 64, Dist: DistUniform})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reconnects == 0 {
		t.Fatal("no reconnect after scripted connection drops")
	}
	if res.Ops == 0 {
		t.Fatal("no operation completed across the drops")
	}
	if res.GaveUp != 0 {
		t.Fatalf("GaveUp = %d; isolated drops must not exhaust the retry budget", res.GaveUp)
	}
}

// TestGiveUpKeepsRunAlive: a connection that exhausts its retry budget stops
// and is counted — it does not abort the run (Run tolerates ErrGaveUp).
func TestGiveUpKeepsRunAlive(t *testing.T) {
	addr := fakeKV(t, func(int64, kvwire.Request) []byte {
		return kvwire.AppendResponse(nil, kvwire.StatusBusy, nil)
	})
	res, err := Run(Config{
		Addr: addr, Conns: 2, Duration: 50 * time.Millisecond, Keys: 8, Dist: DistUniform,
		Retries: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run must tolerate given-up connections: %v", err)
	}
	if res.GaveUp != 2 {
		t.Fatalf("GaveUp = %d, want 2 (every connection)", res.GaveUp)
	}
	if res.Ops != 0 {
		t.Fatalf("Ops = %d against an always-busy server", res.Ops)
	}
	// Each connection burns its full budget on its first operation: the
	// initial attempt plus Retries retries, all shed.
	if res.Busy != 6 || res.Retries != 4 {
		t.Fatalf("Busy = %d, Retries = %d; want 3 shed responses and 2 retries per connection", res.Busy, res.Retries)
	}
}

// TestChaosRunAgainstServer is the end-to-end graceful-degradation loop:
// chaos-mode clients (mid-frame stalls longer than the server's IdleHold —
// which cost the stalled connection its slots but, being inside ReadTimeout,
// not its life — plus self-inflicted kills) against a real server, with the
// retry path keeping the run alive and the server's shutdown invariant
// intact afterwards.
func TestChaosRunAgainstServer(t *testing.T) {
	addr, srv := startServer(t, recordmgr.SchemeDEBRA)
	res, err := Run(Config{
		Addr: addr, Conns: 4, Duration: 150 * time.Millisecond, Keys: 1 << 10,
		Dist: DistUniform, ReadPct: 40, DelPct: 30, Prefill: 256,
		ChaosStallEvery: 4, ChaosStallFor: 10 * time.Millisecond, ChaosKillEvery: 8,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ChaosStalls == 0 || res.ChaosKills == 0 {
		t.Fatalf("chaos injection inactive: %d stalls, %d kills", res.ChaosStalls, res.ChaosKills)
	}
	if res.Reconnects == 0 {
		t.Fatal("connection kills produced no reconnects")
	}
	if res.Ops == 0 {
		t.Fatal("no operation survived chaos")
	}
	srv.Close()
	snap := srv.Stats()
	if snap.Manager.Retired != snap.Manager.Freed {
		t.Fatalf("after Close under chaos: Retired=%d Freed=%d", snap.Manager.Retired, snap.Manager.Freed)
	}
}
