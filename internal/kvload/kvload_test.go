package kvload

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/recordmgr"
)

func TestHistogramExact(t *testing.T) {
	var h Histogram
	// Values below subBuckets land in exact unit buckets.
	for v := int64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	if h.Count() != subBuckets {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %d", got)
	}
	if got := h.Quantile(1); got != subBuckets-1 {
		t.Fatalf("Quantile(1) = %d, want %d", got, subBuckets-1)
	}
	if got := h.Quantile(0.5); got < subBuckets/2-2 || got > subBuckets/2+2 {
		t.Fatalf("Quantile(0.5) = %d", got)
	}
}

func TestHistogramResolution(t *testing.T) {
	var h Histogram
	// Every recorded value must come back within the log-linear resolution
	// (half a bucket width, ~1/subBuckets relative).
	for _, v := range []int64{1, 100, 1_000, 50_000, 1_000_000, 123_456_789, 5_000_000_000} {
		h = Histogram{}
		h.Record(v)
		got := h.Quantile(0.5)
		lo, hi := v-v/subBuckets-1, v+v/subBuckets+1
		if got < lo || got > hi {
			t.Fatalf("Record(%d): Quantile = %d, outside [%d, %d]", v, got, lo, hi)
		}
	}
}

func TestHistogramMergeAndMax(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if got := a.Quantile(0.25); got != 10 {
		t.Fatalf("Quantile(0.25) = %d, want 10", got)
	}
	q75 := a.Quantile(0.75)
	if q75 < 970 || q75 > 1030 {
		t.Fatalf("Quantile(0.75) = %d, want ~1000", q75)
	}
	if mx := a.Max(); mx < 970 || mx > 1030 {
		t.Fatalf("Max = %d, want ~1000", mx)
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram should report 0")
	}
	var neg Histogram
	neg.Record(-5)
	if neg.Quantile(1) != 0 {
		t.Fatal("negative observations should clamp to 0")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                   // no Addr
		{Addr: "x", Dist: "bogus"},           // unknown distribution
		{Addr: "x", ZipfS: 0.5},              // zipf skew <= 1
		{Addr: "x", ReadPct: 90, DelPct: 20}, // mix over 100%
		{Addr: "x", OpenLoop: true},          // open loop without Rate
		{Addr: "x", ValueLen: -1},            // negative value length
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
}

// startServer brings up an in-process kvservice instance for load tests.
func startServer(t *testing.T, scheme string) (addr string, srv *kvservice.Server) {
	t.Helper()
	srv, err := kvservice.New(kvservice.Config{Scheme: scheme, Partitions: 2, MaxConns: 8, Burst: 32, UsePool: true})
	if err != nil {
		t.Fatalf("kvservice.New: %v", err)
	}
	a, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return a.String(), srv
}

func TestClosedLoopAgainstServer(t *testing.T) {
	addr, srv := startServer(t, recordmgr.SchemeDEBRA)
	defer srv.Close()
	res, err := Run(Config{
		Addr:     addr,
		Conns:    4,
		Duration: 100 * time.Millisecond,
		Keys:     1 << 10,
		Dist:     DistZipf,
		ReadPct:  60,
		DelPct:   20,
		Prefill:  512,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops == 0 || res.Ops != res.Gets+res.Puts+res.Dels {
		t.Fatalf("op accounting: %+v", res)
	}
	if res.Hist.Count() != res.Ops {
		t.Fatalf("histogram holds %d observations for %d ops", res.Hist.Count(), res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("Throughput = %g", res.Throughput())
	}
	if res.P50() <= 0 || res.P99() < res.P50() || res.P999() < res.P99() {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v", res.P50(), res.P99(), res.P999())
	}
	// Prefilled zipfian reads against a hot set should mostly hit.
	snap := srv.Stats()
	if snap.Gets > 0 && snap.GetHits == 0 {
		t.Fatal("no GET hit despite prefill")
	}
}

func TestOpenLoopAgainstServer(t *testing.T) {
	addr, srv := startServer(t, recordmgr.SchemeEBR)
	defer srv.Close()
	res, err := Run(Config{
		Addr:     addr,
		Conns:    2,
		Duration: 200 * time.Millisecond,
		Keys:     1 << 10,
		Dist:     DistUniform,
		OpenLoop: true,
		Rate:     2000, // 400 requests in 200ms: far below capacity
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("open loop issued no requests")
	}
	// The schedule bounds the op count: rate * duration, with slack for
	// scheduling coarseness.
	want := 2000 * 0.2
	if float64(res.Ops) > want*1.5 {
		t.Fatalf("open loop issued %d ops, schedule allows ~%g", res.Ops, want)
	}
}
