// Package kvload is the load generator behind cmd/kvload: it drives a
// kvservice server (cmd/kvserver) over the kvwire protocol with a
// configurable connection count, read/write mix and key distribution, and
// reports throughput plus latency quantiles — the p99/p999 tail numbers that
// throughput panels hide and that reclamation stalls actually move.
//
// Two loop disciplines are supported. The closed loop sends each request the
// moment the previous response arrives: it measures the server's capacity,
// but its latency numbers suffer coordinated omission (a server stall delays
// the requests that would have observed it). The open loop schedules
// requests at a fixed rate and measures each latency from the request's
// *intended* send time, so a stall is charged to every request it delays —
// the honest tail. See docs/OPERATIONS.md for guidance on reading the two.
package kvload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/kvwire"
)

// Key distributions.
const (
	// DistZipf draws keys from a zipfian distribution (skew Config.ZipfS):
	// a small hot set absorbs most operations, the realistic cache shape.
	DistZipf = "zipf"
	// DistUniform draws keys uniformly: maximal working set, minimal
	// contention per key.
	DistUniform = "uniform"
)

// Config describes a load run.
type Config struct {
	// Addr is the server's "host:port".
	Addr string
	// Conns is the number of concurrent connections (default 4).
	Conns int
	// Duration is the measured run length (default 1s).
	Duration time.Duration
	// Keys is the key-space size; keys are drawn from [0, Keys) (default
	// 1<<20).
	Keys int64
	// Dist is the key distribution, DistZipf or DistUniform (default zipf).
	Dist string
	// ZipfS is the zipfian skew exponent, > 1 (default 1.1; larger = hotter
	// hot set).
	ZipfS float64
	// ReadPct is the percentage of operations that are GETs (default 80).
	ReadPct int
	// DelPct is the percentage of operations that are DELs (default half the
	// non-read share, rounded down). PUTs make up the remainder, so churn —
	// every DEL retires a node, every PUT of an absent key allocates one —
	// is ReadPct/DelPct-tunable.
	DelPct int
	// ValueLen is the PUT value size in bytes (default 16).
	ValueLen int
	// Pipeline is the number of requests each connection keeps in flight
	// (default 1: strict request/response lockstep). Depths > 1 encode the
	// whole window into one buffer, send it with a single write, and match
	// the responses back in order — the kvwire protocol answers strictly one
	// response per request, in request order (docs/PROTOCOL.md,
	// "Pipelining") — so the generator can saturate a batch-executing server
	// instead of paying one network round trip per request. Each response's
	// latency is measured from the window's send time (closed loop) or
	// intended send time (open loop), so in-window queueing is charged to
	// the requests that experience it.
	Pipeline int
	// OpenLoop selects the open-loop discipline; Rate must be set.
	OpenLoop bool
	// Rate is the open loop's total target request rate per second across
	// all connections.
	Rate float64
	// Seed seeds the per-connection RNGs (default 1; connection c uses
	// Seed+c, so runs are reproducible).
	Seed int64
	// Prefill, when > 0, PUTs keys [0, Prefill) before the measured run so
	// GETs hit and DELs delete (issued round-robin over the connections,
	// not measured).
	Prefill int64

	// Retries bounds the consecutive transient failures (ERR_BUSY, dial or
	// IO errors) one operation may absorb — with exponential backoff and
	// jitter between attempts — before its connection gives up. A given-up
	// connection stops contributing but does not abort the run (see
	// Result.GaveUp). Default 8; negative disables retrying entirely.
	Retries int
	// RetryBackoff is the first retry's backoff; it doubles per consecutive
	// failure (±50% jitter, capped at 100x). Default 1ms.
	RetryBackoff time.Duration
	// ChaosStallEvery, when > 0, makes each connection stall mid-frame —
	// write half a request, sleep ChaosStallFor, write the rest — with
	// probability 1/ChaosStallEvery per operation, exercising the server's
	// slow-peer handling. The stall may cost the connection (the server is
	// entitled to drop a mid-frame staller); the retry path reconnects.
	ChaosStallEvery int
	// ChaosStallFor is the mid-frame stall length (default 5ms).
	ChaosStallFor time.Duration
	// ChaosKillEvery, when > 0, makes each connection close its own socket
	// with probability 1/ChaosKillEvery per operation — a mid-burst crash
	// the retry path recovers from by reconnecting.
	ChaosKillEvery int
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg Config) withDefaults() Config {
	if cfg.Conns == 0 {
		cfg.Conns = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = time.Second
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 20
	}
	if cfg.Dist == "" {
		cfg.Dist = DistZipf
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.ReadPct == 0 && cfg.DelPct == 0 {
		cfg.ReadPct = 80
	}
	if cfg.DelPct == 0 {
		cfg.DelPct = (100 - cfg.ReadPct) / 2
	}
	if cfg.ValueLen == 0 {
		cfg.ValueLen = 16
	}
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Retries == 0 {
		cfg.Retries = 8
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.ChaosStallFor == 0 {
		cfg.ChaosStallFor = 5 * time.Millisecond
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.Addr == "" {
		return errors.New("kvload: Addr is required")
	}
	if cfg.Conns < 1 {
		return fmt.Errorf("kvload: Conns must be >= 1, got %d", cfg.Conns)
	}
	if cfg.Keys < 1 {
		return fmt.Errorf("kvload: Keys must be >= 1, got %d", cfg.Keys)
	}
	if cfg.Dist != DistZipf && cfg.Dist != DistUniform {
		return fmt.Errorf("kvload: unknown distribution %q (want %q or %q)", cfg.Dist, DistZipf, DistUniform)
	}
	if cfg.Dist == DistZipf && cfg.ZipfS <= 1 {
		return fmt.Errorf("kvload: ZipfS must be > 1, got %g", cfg.ZipfS)
	}
	if cfg.ReadPct < 0 || cfg.DelPct < 0 || cfg.ReadPct+cfg.DelPct > 100 {
		return fmt.Errorf("kvload: ReadPct (%d) + DelPct (%d) must fit in [0, 100]", cfg.ReadPct, cfg.DelPct)
	}
	if cfg.ValueLen < 0 || cfg.ValueLen > kvwire.MaxValueLen {
		return fmt.Errorf("kvload: ValueLen must be in [0, %d], got %d", kvwire.MaxValueLen, cfg.ValueLen)
	}
	if cfg.Pipeline < 1 {
		return fmt.Errorf("kvload: Pipeline must be >= 1, got %d", cfg.Pipeline)
	}
	if cfg.OpenLoop && cfg.Rate <= 0 {
		return fmt.Errorf("kvload: open loop requires Rate > 0, got %g", cfg.Rate)
	}
	if cfg.ChaosStallEvery < 0 || cfg.ChaosKillEvery < 0 {
		return fmt.Errorf("kvload: ChaosStallEvery/ChaosKillEvery must be >= 0")
	}
	if cfg.RetryBackoff < 0 || cfg.ChaosStallFor < 0 {
		return fmt.Errorf("kvload: RetryBackoff/ChaosStallFor must be >= 0")
	}
	return nil
}

// Result is a completed run's measurements.
type Result struct {
	// Ops counts completed requests (Gets + Puts + Dels).
	Ops, Gets, Puts, Dels int64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// Hist is the merged latency histogram. Closed-loop latencies are
	// response times; open-loop latencies are measured from each request's
	// intended send time.
	Hist Histogram

	// Busy counts ERR_BUSY responses (requests the server shed under
	// overload; each is retried after backoff up to Config.Retries).
	Busy int64
	// Retries counts retry attempts across all causes (busy, IO, dial).
	Retries int64
	// Reconnects counts successful re-dials after a broken connection.
	Reconnects int64
	// GaveUp counts connections that exhausted Retries on one operation and
	// stopped early (their completed work still counts; the run goes on).
	GaveUp int64
	// ChaosStalls and ChaosKills count injected mid-frame stalls and
	// self-inflicted connection kills (Config.ChaosStallEvery/KillEvery).
	ChaosStalls, ChaosKills int64

	// Mallocs is the process-wide heap allocation count over the measured
	// phase (runtime.MemStats.Mallocs delta, prefill excluded). Divided by
	// Ops it approximates allocations per request across client and server
	// together — an upper bound on the server's own per-request allocations
	// when both run in one process, as in the bench harness. The hard
	// per-path guarantees live in kvservice's AllocsPerRun tests.
	Mallocs uint64
}

// Throughput returns completed operations per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// P50 returns the median latency.
func (r *Result) P50() time.Duration { return time.Duration(r.Hist.Quantile(0.50)) }

// P99 returns the 99th-percentile latency.
func (r *Result) P99() time.Duration { return time.Duration(r.Hist.Quantile(0.99)) }

// P999 returns the 99.9th-percentile latency.
func (r *Result) P999() time.Duration { return time.Duration(r.Hist.Quantile(0.999)) }

// keygen draws keys for one connection.
type keygen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	keys int64
}

func newKeygen(cfg Config, seed int64) *keygen {
	g := &keygen{rng: rand.New(rand.NewSource(seed)), keys: cfg.Keys}
	if cfg.Dist == DistZipf {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return g
}

func (g *keygen) next() int64 {
	if g.zipf != nil {
		return int64(g.zipf.Uint64())
	}
	return g.rng.Int63n(g.keys)
}

// connState is one connection's workload state and tallies.
type connState struct {
	conn  net.Conn
	rd    *bufio.Reader // buffered response reader (reset on reconnect)
	gen   *keygen
	value []byte
	req   []byte
	buf   []byte
	kinds []int8 // per-request op kind of the in-flight pipeline window
	hist  Histogram

	gets, puts, dels          int64
	busy, retries, reconnects int64
	chaosStalls, chaosKills   int64
	gaveUp                    bool
}

// errBusy marks an ERR_BUSY response inside the retry loop: the server shed
// the request but the connection (and its framing) is intact.
var errBusy = errors.New("kvload: server busy")

// ErrGaveUp marks a connection that exhausted Config.Retries on a single
// operation. Run treats it as a per-connection stop, not a run failure.
var ErrGaveUp = errors.New("kvload: connection gave up after retries")

// step issues one scheduling unit — a single operation, or a whole pipeline
// window when Config.Pipeline > 1 — recording latencies relative to intended
// (the zero time means "now": closed-loop response time).
func (c *connState) step(cfg Config, intended time.Time) error {
	if cfg.Pipeline > 1 {
		return c.stepBatch(cfg, intended)
	}
	return c.stepOne(cfg, intended)
}

// appendOp encodes one randomly drawn operation onto c.req and records its
// kind (0 GET, 1 PUT, 2 DEL) in c.kinds.
func (c *connState) appendOp(cfg Config) {
	k := c.gen.next()
	switch p := c.gen.rng.Intn(100); {
	case p < cfg.ReadPct:
		c.req = kvwire.AppendGet(c.req, k)
		c.kinds = append(c.kinds, 0)
	case p < cfg.ReadPct+cfg.DelPct:
		c.req = kvwire.AppendDel(c.req, k)
		c.kinds = append(c.kinds, 2)
	default:
		c.req = kvwire.AppendPut(c.req, k, c.value)
		c.kinds = append(c.kinds, 1)
	}
}

// readResp reads and decodes the next response frame.
func (c *connState) readResp() (kvwire.Response, error) {
	payload, err := kvwire.ReadFrame(c.rd, c.buf)
	if err != nil {
		return kvwire.Response{}, err
	}
	c.buf = payload
	return kvwire.DecodeResponse(payload)
}

// countOp credits one completed operation of the given kind.
func (c *connState) countOp(kind int8) {
	switch kind {
	case 0:
		c.gets++
	case 1:
		c.puts++
	default:
		c.dels++
	}
}

// stepOne issues one operation in request/response lockstep.
func (c *connState) stepOne(cfg Config, intended time.Time) error {
	c.req = c.req[:0]
	c.kinds = c.kinds[:0]
	c.appendOp(cfg)
	start := time.Now()
	if intended.IsZero() {
		intended = start
	}
	if cfg.ChaosKillEvery > 0 && c.gen.rng.Intn(cfg.ChaosKillEvery) == 0 {
		// Self-inflicted crash: the write below fails and the retry path
		// reconnects, exactly as if the network had cut us off mid-burst.
		c.chaosKills++
		c.conn.Close()
	}
	if err := c.writeReq(cfg); err != nil {
		return err
	}
	resp, err := c.readResp()
	if err != nil {
		return err
	}
	if resp.Status == kvwire.StatusBusy {
		c.busy++
		return errBusy
	}
	if resp.Status == kvwire.StatusErr {
		return fmt.Errorf("kvload: server error: %s", resp.Body)
	}
	c.hist.Record(int64(time.Since(intended)))
	c.countOp(c.kinds[0])
	return nil
}

// stepBatch issues Config.Pipeline operations as one in-flight window: the
// whole window is encoded into one buffer and sent with a single write, then
// the responses are matched back strictly in request order. Each completed
// response records its latency from intended, so queueing behind earlier
// responses of the same window is charged to the requests that experience
// it. Requests the server shed with ERR_BUSY are counted but not credited;
// only a window shed in its entirety surfaces as errBusy (retried with
// backoff by stepRetry like a lockstep busy).
func (c *connState) stepBatch(cfg Config, intended time.Time) error {
	c.req = c.req[:0]
	c.kinds = c.kinds[:0]
	for i := 0; i < cfg.Pipeline; i++ {
		c.appendOp(cfg)
	}
	start := time.Now()
	if intended.IsZero() {
		intended = start
	}
	if cfg.ChaosKillEvery > 0 && c.gen.rng.Intn(cfg.ChaosKillEvery) == 0 {
		c.chaosKills++
		c.conn.Close()
	}
	if err := c.writeReq(cfg); err != nil {
		return err
	}
	busy := 0
	for i := range c.kinds {
		resp, err := c.readResp()
		if err != nil {
			return err
		}
		switch resp.Status {
		case kvwire.StatusBusy:
			c.busy++
			busy++
			continue
		case kvwire.StatusErr:
			return fmt.Errorf("kvload: server error: %s", resp.Body)
		}
		c.hist.Record(int64(time.Since(intended)))
		c.countOp(c.kinds[i])
	}
	if busy == len(c.kinds) {
		return errBusy
	}
	return nil
}

// writeReq sends the encoded request, optionally stalling mid-frame (chaos
// mode): half the frame, a sleep, the rest — a slow peer from the server's
// point of view.
func (c *connState) writeReq(cfg Config) error {
	if cfg.ChaosStallEvery > 0 && len(c.req) > 1 && c.gen.rng.Intn(cfg.ChaosStallEvery) == 0 {
		c.chaosStalls++
		half := len(c.req) / 2
		if _, err := c.conn.Write(c.req[:half]); err != nil {
			return err
		}
		time.Sleep(cfg.ChaosStallFor)
		_, err := c.conn.Write(c.req[half:])
		return err
	}
	_, err := c.conn.Write(c.req)
	return err
}

// stepRetry runs step under the retry policy: transient failures (busy, IO,
// dial) back off exponentially with jitter and retry, reconnecting first
// when the connection broke; past Config.Retries consecutive failures the
// connection gives up (ErrGaveUp). Non-transient errors pass through.
func (c *connState) stepRetry(cfg Config, intended time.Time) error {
	backoff := cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := c.step(cfg, intended)
		if err == nil {
			return nil
		}
		busy := errors.Is(err, errBusy)
		if !busy && !transient(err) {
			return err
		}
		if attempt >= cfg.Retries {
			c.gaveUp = true
			return fmt.Errorf("%w: %v", ErrGaveUp, err)
		}
		c.retries++
		c.sleepBackoff(&backoff)
		if !busy {
			// The connection's framing state is unknown after an IO error:
			// drop it and re-dial. A failed dial is itself transient — the
			// next attempt (if any remain) tries again.
			c.conn.Close()
			if conn, derr := net.Dial("tcp", cfg.Addr); derr == nil {
				c.conn = conn
				c.rd.Reset(conn)
				c.reconnects++
			}
		}
	}
}

// sleepBackoff sleeps *backoff ±50% jitter and doubles it (capped at 100x
// the configured base).
func (c *connState) sleepBackoff(backoff *time.Duration) {
	d := *backoff
	if d <= 0 {
		return
	}
	jittered := d/2 + time.Duration(c.gen.rng.Int63n(int64(d)+1))
	time.Sleep(jittered)
	*backoff = d * 2
}

// transient reports whether err is worth retrying: busy shedding, timeouts
// and every networking failure (broken pipes, resets, refused dials, our own
// chaos kills), plus torn frames from a connection cut mid-response.
func transient(err error) bool {
	if errors.Is(err, errBusy) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
}

// Run executes the configured load against the server and returns the merged
// measurements. Transient failures — ERR_BUSY shedding, broken connections,
// refused dials — are retried with backoff per Config.Retries; a connection
// that exhausts its retries stops early and is counted in Result.GaveUp
// without aborting the run. Only non-transient errors (protocol violations,
// server-reported errors) abort.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	states := make([]*connState, cfg.Conns)
	for i := range states {
		st := &connState{gen: newKeygen(cfg, cfg.Seed+int64(i)), value: make([]byte, cfg.ValueLen)}
		conn, err := dialRetry(cfg, st)
		if err != nil {
			for _, s := range states[:i] {
				s.conn.Close()
			}
			return nil, fmt.Errorf("kvload: %w", err)
		}
		st.conn = conn
		st.rd = bufio.NewReaderSize(conn, 32<<10)
		for b := range st.value {
			st.value[b] = byte('a' + b%26)
		}
		states[i] = st
	}
	defer func() {
		for _, s := range states {
			s.conn.Close()
		}
	}()
	if cfg.Prefill > 0 {
		if err := prefill(cfg, states); err != nil {
			return nil, err
		}
	}

	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	// The measured phase is bracketed with MemStats reads so Result.Mallocs
	// covers exactly the steady-state request traffic (prefill and dialing
	// excluded).
	var memStart runtime.MemStats
	runtime.ReadMemStats(&memStart)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *connState) {
			defer wg.Done()
			if cfg.OpenLoop {
				errs[i] = runOpen(cfg, st, start, deadline)
			} else {
				errs[i] = runClosed(cfg, st, deadline)
			}
		}(i, st)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memEnd runtime.MemStats
	runtime.ReadMemStats(&memEnd)
	res := &Result{Elapsed: elapsed, Mallocs: memEnd.Mallocs - memStart.Mallocs}
	for i, st := range states {
		if errs[i] != nil && !errors.Is(errs[i], ErrGaveUp) {
			return nil, fmt.Errorf("kvload: connection %d: %w", i, errs[i])
		}
		res.Gets += st.gets
		res.Puts += st.puts
		res.Dels += st.dels
		res.Busy += st.busy
		res.Retries += st.retries
		res.Reconnects += st.reconnects
		res.ChaosStalls += st.chaosStalls
		res.ChaosKills += st.chaosKills
		if st.gaveUp {
			res.GaveUp++
		}
		res.Hist.Merge(&st.hist)
	}
	res.Ops = res.Gets + res.Puts + res.Dels
	return res, nil
}

// dialRetry dials cfg.Addr under the retry policy (st's rng supplies the
// jitter and st's counters record the attempts), so a server still binding
// its listener — or refusing briefly under overload — does not fail the run.
func dialRetry(cfg Config, st *connState) (net.Conn, error) {
	backoff := cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		conn, err := net.Dial("tcp", cfg.Addr)
		if err == nil {
			return conn, nil
		}
		if attempt >= cfg.Retries {
			return nil, err
		}
		st.retries++
		st.sleepBackoff(&backoff)
	}
}

// runClosed issues back-to-back requests until the deadline.
func runClosed(cfg Config, st *connState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		if err := st.stepRetry(cfg, time.Time{}); err != nil {
			return err
		}
	}
	return nil
}

// runOpen issues requests on a fixed schedule, measuring from each request's
// intended send time so server stalls are charged to every request they
// delay (no coordinated omission). With pipelining each scheduling step is a
// whole window of Config.Pipeline requests sharing that step's intended
// time, so the interval stretches by the depth and the aggregate rate stays
// Config.Rate.
func runOpen(cfg Config, st *connState, start, deadline time.Time) error {
	interval := time.Duration(float64(time.Second) * float64(cfg.Conns) * float64(cfg.Pipeline) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	for intended := start; intended.Before(deadline); intended = intended.Add(interval) {
		if wait := time.Until(intended); wait > 0 {
			time.Sleep(wait)
		}
		// When behind schedule we send immediately but still measure from
		// intended — the queueing delay is part of the latency.
		if err := st.stepRetry(cfg, intended); err != nil {
			return err
		}
	}
	return nil
}

// prefill PUTs keys [0, cfg.Prefill) striped over the connections.
func prefill(cfg Config, states []*connState) error {
	errs := make([]error, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *connState) {
			defer wg.Done()
			var req, buf []byte
			for k := int64(i); k < cfg.Prefill; k += int64(len(states)) {
				for attempt := 0; ; attempt++ {
					req = kvwire.AppendPut(req[:0], k, st.value)
					if _, err := st.conn.Write(req); err != nil {
						errs[i] = err
						return
					}
					payload, err := kvwire.ReadFrame(st.rd, buf)
					if err != nil {
						errs[i] = err
						return
					}
					buf = payload
					resp, err := kvwire.DecodeResponse(payload)
					if err != nil {
						errs[i] = err
						return
					}
					if resp.Status == kvwire.StatusBusy && attempt < cfg.Retries {
						// The unmeasured prefill just waits overload out.
						time.Sleep(cfg.RetryBackoff)
						continue
					}
					if resp.Status != kvwire.StatusOK {
						errs[i] = fmt.Errorf("prefill PUT: status %v", resp.Status)
						return
					}
					break
				}
			}
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}
