package kvload

import "math/bits"

// Histogram is a log-linear latency histogram: subBuckets linear buckets per
// power of two, so relative error is bounded by 1/subBuckets (~3%) at every
// magnitude from nanoseconds to hours, in a few kilobytes of memory. One
// histogram per connection records without synchronisation; Merge folds them
// together for the run-level quantiles.
type Histogram struct {
	counts [numBuckets]int64
	total  int64
}

const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits) << subBits
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - subBits - 1
	return exp<<subBits + int(u>>exp)
}

// bucketMid returns a representative (midpoint) value for bucket i.
func bucketMid(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i>>subBits - 1
	lower := int64(subBuckets+i&(subBuckets-1)) << exp
	return lower + (int64(1)<<exp)/2
}

// Record adds one observation (negative values clamp to zero).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Merge folds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Quantile returns the value at quantile q in [0, 1] (0 on an empty
// histogram). The result is a bucket midpoint, so it carries the histogram's
// ~3% relative resolution.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := int64(q*float64(h.total-1)) + 1
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(numBuckets - 1)
}

// Max returns the largest recorded bucket's midpoint (0 when empty).
func (h *Histogram) Max() int64 {
	for i := numBuckets - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			return bucketMid(i)
		}
	}
	return 0
}
