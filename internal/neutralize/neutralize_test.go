package neutralize

import (
	"sync"
	"testing"
)

func TestSignalPendingConsume(t *testing.T) {
	d := NewDomain(3)
	if d.Pending(1) {
		t.Fatal("fresh domain reports a pending signal")
	}
	if !d.Signal(1) {
		t.Fatal("Signal returned false")
	}
	if !d.Pending(1) {
		t.Fatal("signal not pending after Signal")
	}
	if d.Pending(0) || d.Pending(2) {
		t.Fatal("signal leaked to another thread")
	}
	if !d.Consume(1) {
		t.Fatal("Consume returned false with a pending signal")
	}
	if d.Pending(1) {
		t.Fatal("signal still pending after Consume")
	}
	if d.Consume(1) {
		t.Fatal("Consume returned true with no pending signal")
	}
	if d.SignalsSent() != 1 {
		t.Fatalf("SignalsSent=%d want 1", d.SignalsSent())
	}
}

func TestMultipleSignalsCoalesce(t *testing.T) {
	d := NewDomain(1)
	for i := 0; i < 5; i++ {
		d.Signal(0)
	}
	if !d.Consume(0) {
		t.Fatal("Consume returned false")
	}
	if d.Pending(0) {
		t.Fatal("Consume must deliver every signal sent so far")
	}
	if d.SignalsSent() != 5 {
		t.Fatalf("SignalsSent=%d want 5", d.SignalsSent())
	}
}

func TestConcurrentSignalers(t *testing.T) {
	d := NewDomain(2)
	var wg sync.WaitGroup
	const signals = 1000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < signals; i++ {
				d.Signal(1)
			}
		}()
	}
	consumed := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		if d.Consume(1) {
			consumed++
		}
		select {
		case <-done:
			if d.Consume(1) {
				consumed++
			}
			if d.Pending(1) {
				t.Error("signals still pending after final consume")
			}
			if consumed == 0 {
				t.Error("never consumed any signal")
			}
			return
		default:
		}
	}
}

func TestRecoverHelper(t *testing.T) {
	if _, ok := Recover(nil); ok {
		t.Fatal("Recover(nil) reported a neutralization")
	}
	n, ok := Recover(Neutralized{Tid: 3})
	if !ok || n.Tid != 3 {
		t.Fatalf("Recover returned %+v, %v", n, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Recover must re-panic for foreign panic values")
		}
	}()
	Recover("some other panic")
}

func TestNeutralizedError(t *testing.T) {
	err := Neutralized{Tid: 7}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestNewDomainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewDomain(0)
}
