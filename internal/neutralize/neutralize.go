// Package neutralize simulates the operating-system facilities DEBRA+ relies
// on: POSIX signals (pthread_kill + a signal handler) and non-local goto
// (sigsetjmp/siglongjmp).
//
// In the paper, a process p that cannot advance the epoch because process q
// has been non-quiescent for too long "neutralizes" q by sending it a
// signal. The OS guarantees that the next step q takes executes its signal
// handler; the handler sees that q is non-quiescent, enters the quiescent
// state, and performs siglongjmp into recovery code.
//
// Go has neither per-goroutine signals nor setjmp, so this package provides
// the closest equivalents:
//
//   - a Domain holds one signal word per thread. Signal(target) increments
//     the target's word ("pthread_kill");
//   - the target observes the signal at its next checkpoint (Pending /
//     Consume). Checkpoints are embedded in the reclaimer calls the data
//     structure body already performs (LeaveQstate, RProtect, EnterQstate,
//     and an explicit Checkpoint per search-loop iteration);
//   - delivery is a typed panic (Neutralized) thrown by the DEBRA+
//     reclaimer; the operation wrapper recovers it and runs recovery code —
//     the analogue of siglongjmp back to the sigsetjmp point.
//
// The weaker delivery guarantee ("next checkpoint" instead of "next step")
// is compensated for at the protocol level; see the DEBRA+ package
// (internal/reclaim/debraplus) for the safety argument.
package neutralize

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// Domain is a set of per-thread signal words. A Domain is shared by every
// reclaimer and data structure participating in neutralization for a fixed
// set of n threads.
type Domain struct {
	slots []slot
	sent  atomic.Int64
}

type slot struct {
	// sent counts signals sent to this thread; consumed counts signals the
	// thread has observed. sent > consumed means a signal is pending.
	sent     atomic.Int64
	consumed atomic.Int64
	_        [core.PadBytes]byte
}

// NewDomain creates a signalling domain for n threads.
func NewDomain(n int) *Domain {
	if n <= 0 {
		panic("neutralize: NewDomain requires n >= 1")
	}
	return &Domain{slots: make([]slot, n)}
}

// Threads returns the number of threads in the domain.
func (d *Domain) Threads() int { return len(d.slots) }

// Signal sends a neutralization signal to target (the analogue of
// pthread_kill). It never blocks and always succeeds; the return value
// mirrors pthread_kill's success for symmetry with the paper's pseudocode.
func (d *Domain) Signal(target int) bool {
	d.slots[target].sent.Add(1)
	d.sent.Add(1)
	return true
}

// Pending reports whether thread tid has an undelivered signal.
func (d *Domain) Pending(tid int) bool {
	s := &d.slots[tid]
	return s.sent.Load() > s.consumed.Load()
}

// Consume marks every signal sent to tid so far as delivered and reports
// whether there was at least one pending. It is called by the signal-handler
// analogue in the DEBRA+ reclaimer.
func (d *Domain) Consume(tid int) bool {
	s := &d.slots[tid]
	sent := s.sent.Load()
	if sent <= s.consumed.Load() {
		return false
	}
	s.consumed.Store(sent)
	return true
}

// SignalsSent returns the total number of signals sent in the domain.
func (d *Domain) SignalsSent() int64 { return d.sent.Load() }

// Neutralized is the value thrown (via panic) when a pending signal is
// delivered to a non-quiescent thread. Operation wrappers recover it and
// run recovery code; any other panic value is re-thrown.
type Neutralized struct {
	// Tid is the thread that was neutralized.
	Tid int
}

// Error implements the error interface so recovered values can be wrapped
// and inspected with errors.As if callers prefer error plumbing to
// panic/recover.
func (n Neutralized) Error() string {
	return fmt.Sprintf("thread %d neutralized", n.Tid)
}

// NeutralizationSignal marks the type so packages that must not import this
// one (core, which neutralize itself imports) can recognise a recovered
// neutralization through an anonymous interface assertion — the async
// reclaimer goroutines absorb a delivery this way.
func (n Neutralized) NeutralizationSignal() {}

// Recover converts a recover() result into (*Neutralized, true) when the
// panic was a neutralization, and re-panics for anything else. A nil input
// returns (nil, false).
func Recover(v any) (Neutralized, bool) {
	if v == nil {
		return Neutralized{}, false
	}
	if n, ok := v.(Neutralized); ok {
		return n, true
	}
	panic(v)
}

// RUnprotector is the slice of the Record Manager surface recovery needs
// (satisfied by core.RecordManager and core.Reclaimer).
type RUnprotector interface {
	RUnprotectAll(tid int)
}

// OnNeutralized is the shared recovery wrapper for operation bodies. It must
// be deferred directly (so its recover sees the body's panic):
//
//	defer neutralize.OnNeutralized(m, tid, func(neutralize.Neutralized) {
//		// inspect locals captured before the panic point, set the
//		// body's named results
//	})
//
// A neutralization panic runs fn — which must only inspect local state, the
// thread is quiescent — and then releases the thread's recovery
// protections; any other panic is re-thrown, and a normal return does
// nothing.
func OnNeutralized(m RUnprotector, tid int, fn func(Neutralized)) {
	v := recover()
	if v == nil {
		return
	}
	n, ok := Recover(v) // re-panics non-neutralization values
	if !ok {
		return
	}
	fn(n)
	m.RUnprotectAll(tid)
}
