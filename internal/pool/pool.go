// Package pool implements the object pools of the paper's Record Manager
// (Section 4, "Object pool"): each thread has a private pool bag of freed
// records; overflow is pushed, whole blocks at a time, onto a shared
// lock-free bag; allocation prefers the private bag, then the shared bag,
// and finally falls through to the Allocator.
//
// The package also provides Discard, the counting sink used by the paper's
// Experiment 1, where reclaimers perform all the work of reclamation but
// records are never reused.
package pool

import (
	"sync/atomic"

	"repro/internal/blockbag"
	"repro/internal/core"
)

// DefaultMaxPrivateBlocks is the number of full blocks a private pool bag
// may hold before overflow blocks are pushed to the shared bag.
const DefaultMaxPrivateBlocks = 8

// Pool is the standard Record Manager pool. It implements core.Pool,
// core.FreeSink, core.BlockFreeSink and core.HandledPool.
type Pool[T any] struct {
	alloc  core.Allocator[T]
	shared blockbag.SharedStack[T]

	threads []poolThread[T]
	handles []ThreadCache[T]

	maxPrivateBlocks int
}

type poolThread[T any] struct {
	bag       *blockbag.Bag[T]
	blockPool *blockbag.BlockPool[T]

	// Single-writer statistics counters (core.Counter): written by the
	// owning tid, read racily by Stats.
	reused        core.Counter
	fromAllocator core.Counter
	freed         core.Counter
	toShared      core.Counter
	fromShared    core.Counter
	_             [core.PadBytes]byte
}

// ThreadCache is one thread's fast-path view of the pool
// (core.PoolHandle): the private bag and counters resolved once, so the
// steady-state Allocate is a bag pop plus a counter bump with no slice
// indexing.
type ThreadCache[T any] struct {
	p   *Pool[T]
	t   *poolThread[T]
	tid int
}

// Allocate implements core.PoolHandle (see Pool.Allocate).
func (c *ThreadCache[T]) Allocate() *T {
	t := c.t
	if rec, ok := t.bag.Remove(); ok {
		t.reused.Inc()
		return rec
	}
	// Try to refill from the shared bag.
	if blk := c.p.shared.Pop(); blk != nil {
		n := int64(blk.Len())
		t.bag.AddBlock(blk)
		t.fromShared.Add(n)
		if rec, ok := t.bag.Remove(); ok {
			t.reused.Inc()
			return rec
		}
	}
	t.fromAllocator.Inc()
	return c.p.alloc.Allocate(c.tid)
}

// Free implements core.PoolHandle (see Pool.Free).
func (c *ThreadCache[T]) Free(rec *T) {
	c.t.bag.Add(rec)
	c.t.freed.Inc()
	c.p.spill(c.tid)
}

// Option configures a Pool.
type Option func(*config)

type config struct {
	maxPrivateBlocks int
	blockPoolCap     int
}

// WithMaxPrivateBlocks bounds the number of full blocks kept in each
// thread's private pool bag before overflow is pushed to the shared bag.
func WithMaxPrivateBlocks(n int) Option {
	return func(c *config) { c.maxPrivateBlocks = n }
}

// WithBlockPoolCap bounds the per-thread cache of empty blocks.
func WithBlockPoolCap(n int) Option {
	return func(c *config) { c.blockPoolCap = n }
}

// New creates a pool for n threads backed by alloc.
func New[T any](n int, alloc core.Allocator[T], opts ...Option) *Pool[T] {
	if n <= 0 {
		panic("pool: New requires n >= 1")
	}
	if alloc == nil {
		panic("pool: New requires an Allocator")
	}
	cfg := config{maxPrivateBlocks: DefaultMaxPrivateBlocks, blockPoolCap: blockbag.DefaultBlockPoolCap}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Pool[T]{
		alloc:            alloc,
		threads:          make([]poolThread[T], n),
		maxPrivateBlocks: cfg.maxPrivateBlocks,
	}
	for i := range p.threads {
		bp := blockbag.NewBlockPool[T](cfg.blockPoolCap)
		p.threads[i].blockPool = bp
		p.threads[i].bag = blockbag.New(bp)
	}
	p.handles = make([]ThreadCache[T], n)
	for i := range p.handles {
		p.handles[i] = ThreadCache[T]{p: p, t: &p.threads[i], tid: i}
	}
	return p
}

// Handle implements core.HandledPool: thread tid's fast-path view.
func (p *Pool[T]) Handle(tid int) core.PoolHandle[T] { return &p.handles[tid] }

// BlockPool exposes thread tid's block pool so that reclaimers owned by the
// same thread can share it (blocks then circulate between limbo bags and the
// pool bag without ever being reallocated).
func (p *Pool[T]) BlockPool(tid int) *blockbag.BlockPool[T] { return p.threads[tid].blockPool }

// Allocate returns a record for thread tid: private pool bag first, then the
// shared bag (whole blocks at a time), then the Allocator.
func (p *Pool[T]) Allocate(tid int) *T { return p.handles[tid].Allocate() }

// Free returns a reclaimed record to thread tid's private pool bag,
// spilling whole blocks to the shared bag when the private bag grows beyond
// its bound.
func (p *Pool[T]) Free(tid int, rec *T) { p.handles[tid].Free(rec) }

// FreeBlocks accepts a detached chain of full blocks (core.BlockFreeSink).
func (p *Pool[T]) FreeBlocks(tid int, chain *blockbag.Block[T]) {
	if chain == nil {
		return
	}
	t := &p.threads[tid]
	n := int64(0)
	for blk := chain; blk != nil; {
		next := blk.Next()
		n += int64(blk.Len())
		// AddBlock rewrites the block's chain pointer, so no explicit
		// detaching is needed; the loop variable already captured next.
		t.bag.AddBlock(blk)
		blk = next
	}
	t.freed.Add(n)
	p.spill(tid)
}

// DrainThread implements core.ThreadDrainer: move every full block of thread
// tid's private pool bag onto the shared bag, so records cached by a
// goroutine releasing its thread slot stay reusable by every other thread.
// A sub-block tail (at most BlockSize-1 records) remains private for the
// slot's next occupant — moving it would mean splitting a partial block,
// and the remainder is bounded and not leaked. Called by the slot's former
// owner from a quiescent context (the single-writer counter contract
// migrates with the slot across the release's happens-before edge).
func (p *Pool[T]) DrainThread(tid int) {
	t := &p.threads[tid]
	for {
		blk := t.bag.TakeFullBlock()
		if blk == nil {
			return
		}
		t.toShared.Add(int64(blk.Len()))
		p.shared.Push(blk)
	}
}

// spill pushes full blocks beyond the private bound onto the shared bag.
func (p *Pool[T]) spill(tid int) {
	t := &p.threads[tid]
	for t.bag.FullBlocks() > p.maxPrivateBlocks {
		blk := t.bag.TakeFullBlock()
		if blk == nil {
			return
		}
		t.toShared.Add(int64(blk.Len()))
		p.shared.Push(blk)
	}
}

// Stats sums the per-thread counters.
func (p *Pool[T]) Stats() core.PoolStats {
	var s core.PoolStats
	for i := range p.threads {
		t := &p.threads[i]
		s.Reused += t.reused.Load()
		s.FromAllocator += t.fromAllocator.Load()
		s.Freed += t.freed.Load()
		s.ToShared += t.toShared.Load()
		s.FromShared += t.fromShared.Load()
	}
	return s
}

// SharedBlocks returns the number of blocks currently on the shared bag
// (instrumentation for tests and the harness).
func (p *Pool[T]) SharedBlocks() int64 { return p.shared.Blocks() }

// Discard is a free sink that drops records, merely counting them. It is the
// configuration of the paper's Experiment 1: the data structure pays the
// cost of reclamation but does not enjoy its benefits (no reuse, growing
// footprint).
type Discard[T any] struct {
	// dropped is genuinely multi-writer (any tid frees into the one cell),
	// so it stays an atomic RMW — Discard is a measurement sink, not a
	// per-thread hot-path component.
	dropped atomic.Int64
}

// NewDiscard creates a discarding sink.
func NewDiscard[T any]() *Discard[T] { return &Discard[T]{} }

// Free drops rec.
func (d *Discard[T]) Free(tid int, rec *T) { d.dropped.Add(1) }

// Freed returns the number of records dropped.
func (d *Discard[T]) Freed() int64 { return d.dropped.Load() }

// Compile-time interface checks.
var (
	_ core.Pool[int]          = (*Pool[int])(nil)
	_ core.FreeSink[int]      = (*Pool[int])(nil)
	_ core.BlockFreeSink[int] = (*Pool[int])(nil)
	_ core.FreeSink[int]      = (*Discard[int])(nil)
	_ core.HandledPool[int]   = (*Pool[int])(nil)
	_ core.ThreadDrainer      = (*Pool[int])(nil)
)
