package pool

import (
	"sync"
	"testing"

	"repro/internal/arena"
	"repro/internal/blockbag"
)

type rec struct {
	id      int
	payload [4]int64
}

func newPool(threads int, opts ...Option) (*Pool[rec], *arena.Bump[rec]) {
	alloc := arena.NewBump[rec](threads, 256)
	return New(threads, alloc, opts...), alloc
}

func TestPoolAllocateFallsThroughToAllocator(t *testing.T) {
	p, alloc := newPool(1)
	r := p.Allocate(0)
	if r == nil {
		t.Fatal("nil record")
	}
	if alloc.Stats().Allocated != 1 {
		t.Fatalf("allocator served %d records, want 1", alloc.Stats().Allocated)
	}
	if p.Stats().FromAllocator != 1 {
		t.Fatalf("FromAllocator=%d want 1", p.Stats().FromAllocator)
	}
}

func TestPoolReusesFreedRecords(t *testing.T) {
	p, alloc := newPool(1)
	r1 := p.Allocate(0)
	p.Free(0, r1)
	r2 := p.Allocate(0)
	if r1 != r2 {
		t.Fatalf("expected pooled record %p to be reused, got %p", r1, r2)
	}
	s := p.Stats()
	if s.Reused != 1 || s.Freed != 1 {
		t.Fatalf("stats %+v", s)
	}
	if alloc.Stats().Allocated != 1 {
		t.Fatalf("allocator allocated %d records, want 1", alloc.Stats().Allocated)
	}
}

func TestPoolSpillsToSharedBagAndRefills(t *testing.T) {
	p, _ := newPool(2, WithMaxPrivateBlocks(1))
	// Thread 0 frees enough records to overflow its private bag.
	n := 4 * blockbag.BlockSize
	recs := make([]*rec, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, p.Allocate(0))
	}
	for _, r := range recs {
		p.Free(0, r)
	}
	if p.SharedBlocks() == 0 {
		t.Fatal("expected overflow blocks on the shared bag")
	}
	if p.Stats().ToShared == 0 {
		t.Fatal("ToShared counter did not move")
	}
	// Thread 1 should be able to reuse records that thread 0 freed.
	before := p.Stats().FromShared
	seen := map[*rec]bool{}
	for _, r := range recs {
		seen[r] = true
	}
	reusedFromOther := false
	for i := 0; i < n; i++ {
		r := p.Allocate(1)
		if seen[r] {
			reusedFromOther = true
			break
		}
	}
	if !reusedFromOther {
		t.Fatal("thread 1 never reused a record freed by thread 0")
	}
	if p.Stats().FromShared == before {
		t.Fatal("FromShared counter did not move")
	}
}

func TestPoolFreeBlocks(t *testing.T) {
	p, _ := newPool(1, WithMaxPrivateBlocks(100))
	// Build a detached chain of two full blocks using a scratch bag.
	bp := blockbag.NewBlockPool[rec](4)
	bag := blockbag.New(bp)
	n := 2*blockbag.BlockSize + 3
	for i := 0; i < n; i++ {
		bag.Add(&rec{id: i})
	}
	it := bag.Begin() // keep the first record, detach full blocks after it
	chain := bag.DetachFullBlocksAfter(it)
	if chain == nil {
		t.Fatal("expected a detached chain")
	}
	moved := blockbag.ChainLen(chain)
	p.FreeBlocks(0, chain)
	p.FreeBlocks(0, nil) // no-op
	if got := p.Stats().Freed; got != int64(moved) {
		t.Fatalf("Freed=%d want %d", got, moved)
	}
	// All the freed records must now be allocatable before the allocator is
	// consulted again.
	reused := 0
	for i := 0; i < moved; i++ {
		p.Allocate(0)
		reused++
	}
	if got := p.Stats().Reused; got != int64(reused) {
		t.Fatalf("Reused=%d want %d", got, reused)
	}
}

func TestPoolConcurrentFreeAllocate(t *testing.T) {
	const threads = 8
	const iters = 3000
	p, _ := newPool(threads, WithMaxPrivateBlocks(1))
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			local := make([]*rec, 0, 64)
			for i := 0; i < iters; i++ {
				local = append(local, p.Allocate(tid))
				if len(local) > 32 {
					for _, r := range local {
						p.Free(tid, r)
					}
					local = local[:0]
				}
			}
			for _, r := range local {
				p.Free(tid, r)
			}
		}(tid)
	}
	wg.Wait()
	s := p.Stats()
	if s.Freed == 0 || s.Reused == 0 {
		t.Fatalf("expected reuse under concurrency, got %+v", s)
	}
}

func TestDiscardCountsOnly(t *testing.T) {
	d := NewDiscard[rec]()
	for i := 0; i < 10; i++ {
		d.Free(0, &rec{id: i})
	}
	if d.Freed() != 10 {
		t.Fatalf("Freed=%d want 10", d.Freed())
	}
}

func TestNewPoolValidation(t *testing.T) {
	if !panics(func() { New[rec](0, arena.NewBump[rec](1, 8)) }) {
		t.Fatal("expected panic for n=0")
	}
	if !panics(func() { New[rec](1, nil) }) {
		t.Fatal("expected panic for nil allocator")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}
