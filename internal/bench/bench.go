// Package bench is the experiment harness that regenerates the tables and
// figures of the paper's evaluation (Section 7): throughput of a lock-free
// BST and a lock-based skip list under different reclamation schemes, thread
// counts, operation mixes, key ranges and allocation regimes, plus the
// memory-footprint measurement of Figure 9 and the qualitative scheme
// comparison of Figure 2.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ds/bst"
	"repro/internal/ds/hashmap"
	"repro/internal/ds/skiplist"
	"repro/internal/neutralize"
	"repro/internal/recordmgr"
)

// Data structure names accepted by Config.DataStructure.
const (
	DSBST      = "bst"
	DSSkipList = "skiplist"
	DSHashMap  = "hashmap"
	// DSHotPathPin and DSHotPathAlloc are not data structures but per-op
	// microcost probes (experiment 7): each "operation" of a trial is one
	// Record Manager primitive sequence on a thread handle, so the measured
	// Mops/s is the inverse of the scheme's per-op constant — the quantity
	// Hart et al. show dominates scheme comparisons.
	DSHotPathPin   = "hotpath:pin"   // LeaveQstate/EnterQstate pair
	DSHotPathAlloc = "hotpath:alloc" // pin + Allocate + Retire round-trip + unpin
)

// Workload describes the operation mix and key range of a trial.
type Workload struct {
	// InsertPct and DeletePct are percentages; the remainder are searches.
	InsertPct int
	DeletePct int
	// KeyRange is the size of the uniform key universe [0, KeyRange).
	KeyRange int64
	// PrefillFraction is the fraction of KeyRange inserted before the
	// timed phase (the paper prefills to half the key range).
	PrefillFraction float64
}

// String renders the mix the way the paper labels it (e.g. "50i-50d").
func (w Workload) String() string {
	return fmt.Sprintf("%di-%dd-%ds range %d", w.InsertPct, w.DeletePct, 100-w.InsertPct-w.DeletePct, w.KeyRange)
}

// Standard mixes from the paper.
var (
	// MixUpdateHeavy is 50% inserts, 50% deletes.
	MixUpdateHeavy = Workload{InsertPct: 50, DeletePct: 50, PrefillFraction: 0.5}
	// MixReadHeavy is 25% inserts, 25% deletes, 50% searches.
	MixReadHeavy = Workload{InsertPct: 25, DeletePct: 25, PrefillFraction: 0.5}
)

// Config describes one trial.
type Config struct {
	DataStructure string
	Scheme        string
	Threads       int
	Duration      time.Duration
	Workload      Workload
	Allocator     recordmgr.AllocatorKind
	UsePool       bool
	Seed          int64
	// InitialBuckets pre-sizes the hash map's table (hashmap only; 0 uses
	// the package default, which grows incrementally under load). Pre-sizing
	// to KeyRange/2 removes resizing from the measurement; the default
	// regime includes it.
	InitialBuckets int
	// Shards is the number of sharded reclamation domains (0/1 = one global
	// domain).
	Shards int
	// Placement is the tid→shard placement policy name ("block"/"stripe").
	Placement string
	// RetireBatch is the per-thread deferred-retire batch size (0 = direct
	// retirement).
	RetireBatch int
	// Reclaimers is the number of dedicated async reclaimer goroutines
	// (0 = reclamation on the worker threads; >0 implies retire batching,
	// defaulted by recordmgr.Build to a full block).
	Reclaimers int
	// ChurnOps, when > 0, switches the workers to the dynamic binding style
	// and makes each of them release its thread slot and acquire a fresh one
	// every ChurnOps operations (goroutine churn: at throughput T ops/s the
	// trial performs T/ChurnOps acquire+release cycles per second per
	// worker). The acquire+release latency is measured and reported as
	// ChurnNs/ChurnCycles.
	ChurnOps int
	// Partitions, ServiceBurst and ServiceDist configure the service trials
	// (DataStructure == DSService): the server's partition count, the
	// requests-per-slot-hold burst, and the load generator's key
	// distribution (kvload.DistZipf or DistUniform). Ignored by every other
	// data structure; for service trials, Threads is the connection count.
	Partitions   int
	ServiceBurst int
	ServiceDist  string
	// PipelineDepth configures a pipelined service trial (experiment 12) on
	// both sides of the wire: the server's maximum frames per batch
	// (kvservice.Config.PipelineDepth) and the load generator's in-flight
	// window per connection (kvload.Config.Pipeline). 0 leaves the load
	// generator in request/response lockstep against the server's default
	// batching, which is the experiment-9 configuration.
	PipelineDepth int
	// Phases, when non-empty, switches the trial to the phase-changing style
	// of experiment 10 (runPhasedTrial): the phases run back-to-back for
	// Duration/len(Phases) each, workers binding their slots dynamically per
	// phase, and Threads is derived from the busiest phase.
	Phases []Phase
	// StallThreads configures the fault-probe trials (DataStructure ==
	// DSFaultProbe): how many of the trial's threads are parked while pinned
	// during the stalled measurement phase (see internal/faultinject.Probe).
	// Must be < Threads; ignored by every other data structure.
	StallThreads int
	// ChaosStallEvery and ChaosKillEvery configure chaos-mode service trials
	// (DataStructure == DSService): the load generator's mid-frame stall and
	// connection-kill cadences (kvload.Config fields of the same names; 0 =
	// no chaos). Ignored by every other data structure.
	ChaosStallEvery int
	ChaosKillEvery  int
	// Adaptive enables the self-tuning runtime: the Record Manager's
	// controller retunes effective shards, retire batches and active
	// reclaimers from live load, with Shards/RetireBatch/Reclaimers as the
	// starting points. AdaptiveInterval is the decision period (0 picks a
	// default scaled to Duration for phased trials).
	Adaptive         bool
	AdaptiveInterval time.Duration
	// Repeat, when > 1, runs the trial that many times and keeps the
	// best-throughput result (every run builds a fresh data structure and
	// Record Manager). Best-of-N is the standard defense against scheduler
	// and frequency noise on shared or oversubscribed machines: downward
	// outliers — the only direction a regression gate acts on — are
	// suppressed, while the retained run's counters stay internally
	// consistent because they all come from the same run.
	Repeat int
}

// Result is the outcome of one trial.
type Result struct {
	Config Config
	// Ops is the total number of completed operations in the timed phase.
	Ops int64
	// Throughput is operations per second.
	Throughput float64
	// MopsPerSec is Throughput in millions, the unit the paper plots.
	MopsPerSec float64
	// AllocatedBytes is the total memory handed out for records (the bump
	// pointer movement the paper reports in Figure 9 right).
	AllocatedBytes int64
	// AllocatedRecords is the number of records handed out.
	AllocatedRecords int64
	// Reclaimer is the reclaimer's counter snapshot at the end.
	Reclaimer core.Stats
	// PoolReused counts allocations served from the pool.
	PoolReused int64
	// RetirePending is the number of records parked in deferred-retire
	// buffers at the end of the trial (0 unless RetireBatch is set).
	RetirePending int64
	// HandoffPending is the number of records parked in async hand-off
	// queues at the end of the trial (0 unless Reclaimers is set) — the
	// reclaimers' backlog behind the workers.
	HandoffPending int64
	// Unreclaimed is the true retired-but-not-freed count at the end of the
	// trial: Reclaimer.Limbo + RetirePending + HandoffPending. Limbo alone
	// understates memory held whenever batching or async hand-off parks
	// records outside the scheme.
	Unreclaimed int64
	// ChurnCycles is the number of release+acquire slot cycles the workers
	// performed during the timed phase (0 unless ChurnOps is set).
	ChurnCycles int64
	// ChurnNs is the total wall time the workers spent inside those
	// release+acquire cycles; ChurnNs/ChurnCycles is the per-cycle cost the
	// churn experiment reports.
	ChurnNs int64
	// AllocsPerOp is the process-wide heap allocations per completed request
	// of a service trial: the runtime.MemStats.Mallocs delta over the measured
	// phase (prefill excluded) divided by Ops. Server and in-process load
	// generator share the count, so it is an upper bound on the server's
	// per-request allocations — the hard per-path guarantees live in
	// kvservice's AllocsPerRun tests. 0 outside service trials.
	AllocsPerOp float64
	// P50Ns, P99Ns and P999Ns are request-latency quantiles in nanoseconds
	// (service trials only; 0 elsewhere). The tail quantiles are what
	// reclamation stalls move and what throughput averages hide.
	P50Ns  int64
	P99Ns  int64
	P999Ns int64
	// PhaseMops is the per-phase throughput of a phased trial (experiment
	// 10), in the order of Config.Phases; empty elsewhere. The adaptive
	// acceptance comparisons (arm vs arm per phase) read these, not the
	// blended MopsPerSec.
	PhaseMops []float64
	// TrajLive, TrajShards, TrajBatch and TrajReclaimers are the adaptive
	// controller's decision trajectory (downsampled, parallel slices): live
	// slot occupancy and the three lever positions at each retained control
	// step. Empty unless the trial ran with Adaptive.
	TrajLive       []int
	TrajShards     []int
	TrajBatch      []int
	TrajReclaimers []int
	// ControllerSteps and ControllerDecisions count the controller's control
	// periods and applied lever changes over the whole trial.
	ControllerSteps     int
	ControllerDecisions int64
	// FaultStalled is the number of threads parked while pinned during a
	// fault-probe trial's stalled phase (0 elsewhere). FaultBaselineSlope and
	// FaultStalledSlope are the Unreclaimed growth per operation measured
	// without and with the stall; FaultSlopeDelta is their difference — the
	// stall-induced growth — and FaultBounded is the classification
	// (delta under the slack: a stalled thread does not make unreclaimed
	// memory grow with continued operation). FaultMaxUnreclaimed is the
	// largest Unreclaimed sample of the probe.
	FaultStalled        int
	FaultBaselineSlope  float64
	FaultStalledSlope   float64
	FaultSlopeDelta     float64
	FaultBounded        bool
	FaultMaxUnreclaimed int64
	// ServiceBusy, ServiceRetries, ServiceReconnects and ServiceGaveUp are
	// the load generator's resilience counters of a service trial (ERR_BUSY
	// fast-fails absorbed, retry attempts, successful re-dials, connections
	// that exhausted their retries); ChaosStalls and ChaosKills count the
	// chaos injections that provoked them. All 0 outside service trials.
	ServiceBusy       int64
	ServiceRetries    int64
	ServiceReconnects int64
	ServiceGaveUp     int64
	ChaosStalls       int64
	ChaosKills        int64
	// Elapsed is the measured duration of the timed phase.
	Elapsed time.Duration
}

// set is the minimal data structure interface the harness drives. close
// shuts the Record Manager's reclamation pipeline down once the workers are
// joined (flush → async drain → limbo force-free), so trials never leak
// reclaimer goroutines into the next trial. handle returns the per-thread
// fast-path operations a worker resolves ONCE at registration — the measured
// loop then runs through the data structure's thread handles (zero slice
// indexing, at most one interface call per reclamation primitive), exactly
// like a real client of the handle API would.
type set interface {
	insert(tid int, key int64) bool
	delete(tid int, key int64) bool
	contains(tid int, key int64) bool
	handle(tid int) opHandle
	// acquire binds the calling goroutine to a vacant thread slot (the
	// dynamic binding style) and returns the slot-bound operations plus the
	// release function; churn trials bind, work and release repeatedly.
	acquire() (opHandle, func())
	stats() core.ManagerStats
	// controller exposes the Record Manager's adaptive controller (nil when
	// the trial runs without one) so phased trials can report its decision
	// trajectory.
	controller() *core.Controller
	close()
}

// opHandle is one worker's pre-resolved operation set.
type opHandle struct {
	insert   func(key int64) bool
	remove   func(key int64) bool
	contains func(key int64) bool
}

// bstSet adapts bst.Tree to the harness interface.
type bstSet struct{ t *bst.Tree[int64] }

func (s bstSet) insert(tid int, key int64) bool   { return s.t.Insert(tid, key, key) }
func (s bstSet) delete(tid int, key int64) bool   { return s.t.Delete(tid, key) }
func (s bstSet) contains(tid int, key int64) bool { return s.t.Contains(tid, key) }
func (s bstSet) stats() core.ManagerStats         { return s.t.Manager().Stats() }
func (s bstSet) controller() *core.Controller     { return s.t.Manager().Controller() }
func (s bstSet) close()                           { s.t.Manager().Close() }

func (s bstSet) handle(tid int) opHandle {
	return bstOps(s.t.Handle(tid))
}

func (s bstSet) acquire() (opHandle, func()) {
	h := s.t.AcquireHandle()
	return bstOps(h), func() { s.t.ReleaseHandle(h) }
}

func bstOps(h bst.Handle[int64]) opHandle {
	return opHandle{
		insert:   func(key int64) bool { return h.Insert(key, key) },
		remove:   h.Delete,
		contains: h.Contains,
	}
}

// skipSet adapts skiplist.List to the harness interface.
type skipSet struct{ l *skiplist.List[int64] }

func (s skipSet) insert(tid int, key int64) bool   { return s.l.Insert(tid, key, key) }
func (s skipSet) delete(tid int, key int64) bool   { return s.l.Delete(tid, key) }
func (s skipSet) contains(tid int, key int64) bool { return s.l.Contains(tid, key) }
func (s skipSet) stats() core.ManagerStats         { return s.l.Manager().Stats() }
func (s skipSet) controller() *core.Controller     { return s.l.Manager().Controller() }
func (s skipSet) close()                           { s.l.Manager().Close() }

func (s skipSet) handle(tid int) opHandle {
	return skipOps(s.l.Handle(tid))
}

func (s skipSet) acquire() (opHandle, func()) {
	h := s.l.AcquireHandle()
	return skipOps(h), func() { s.l.ReleaseHandle(h) }
}

func skipOps(h *skiplist.Handle[int64]) opHandle {
	return opHandle{
		insert:   func(key int64) bool { return h.Insert(key, key) },
		remove:   h.Delete,
		contains: h.Contains,
	}
}

// hashSet adapts hashmap.Map to the harness interface.
type hashSet struct{ m *hashmap.Map[int64] }

func (s hashSet) insert(tid int, key int64) bool   { return s.m.Insert(tid, key, key) }
func (s hashSet) delete(tid int, key int64) bool   { return s.m.Delete(tid, key) }
func (s hashSet) contains(tid int, key int64) bool { return s.m.Contains(tid, key) }
func (s hashSet) stats() core.ManagerStats         { return s.m.Manager().Stats() }
func (s hashSet) controller() *core.Controller     { return s.m.Manager().Controller() }
func (s hashSet) close()                           { s.m.Manager().Close() }

func (s hashSet) handle(tid int) opHandle {
	return hashOps(s.m.Handle(tid))
}

func (s hashSet) acquire() (opHandle, func()) {
	h := s.m.AcquireHandle()
	return hashOps(h), func() { s.m.ReleaseHandle(h) }
}

func hashOps(h *hashmap.Handle[int64]) opHandle {
	return opHandle{
		insert:   func(key int64) bool { return h.Insert(key, key) },
		remove:   h.Delete,
		contains: h.Contains,
	}
}

// hotRecord is the record type of the hotpath microcost probes: small, so a
// leaking configuration stays cheap, but real enough to exercise the pool
// and block machinery.
type hotRecord struct {
	_ [2]int64
}

// microSet adapts a bare Record Manager to the harness interface: every
// "operation" is one hot-path primitive sequence on the thread's handle.
// The probes measure exactly what the Record Manager charges a data
// structure per operation, with no data structure work in the way.
type microSet struct {
	mgr  *core.RecordManager[hotRecord]
	kind string
}

func (s microSet) op(h *core.ThreadHandle[hotRecord]) bool {
	if h.SupportsCrashRecovery() {
		// DEBRA+ may deliver a neutralization at EnterQstate; the probe has
		// no state to recover (the retire happened before the delivery
		// point), so absorbing the signal mirrors a data structure's trivial
		// recovery. The deferred recover is paid only by the neutralizing
		// scheme, exactly as in the data structures.
		return s.opRecovering(h)
	}
	s.body(h)
	return true
}

func (s microSet) opRecovering(h *core.ThreadHandle[hotRecord]) (done bool) {
	defer neutralize.OnNeutralized(h.Manager(), h.Tid(), func(neutralize.Neutralized) {
		done = true
	})
	s.body(h)
	return true
}

func (s microSet) body(h *core.ThreadHandle[hotRecord]) {
	switch s.kind {
	case DSHotPathAlloc:
		h.LeaveQstate()
		rec := h.Allocate()
		h.Retire(rec)
		h.EnterQstate()
	default: // DSHotPathPin
		h.LeaveQstate()
		h.EnterQstate()
	}
}

func (s microSet) insert(tid int, key int64) bool   { return s.op(s.mgr.Handle(tid)) }
func (s microSet) delete(tid int, key int64) bool   { return s.op(s.mgr.Handle(tid)) }
func (s microSet) contains(tid int, key int64) bool { return s.op(s.mgr.Handle(tid)) }
func (s microSet) stats() core.ManagerStats         { return s.mgr.Stats() }
func (s microSet) controller() *core.Controller     { return s.mgr.Controller() }
func (s microSet) close()                           { s.mgr.Close() }

func (s microSet) handle(tid int) opHandle {
	h := s.mgr.Handle(tid)
	op := func(key int64) bool { return s.op(h) }
	return opHandle{insert: op, remove: op, contains: op}
}

func (s microSet) acquire() (opHandle, func()) {
	h := s.mgr.AcquireHandle()
	op := func(key int64) bool { return s.op(h) }
	return opHandle{insert: op, remove: op, contains: op}, func() { s.mgr.ReleaseHandle(h) }
}

// SupportedSchemes returns the reclamation schemes the given data structure
// can run with: every implemented scheme, except that the skip list's
// lock-based updates cannot use the neutralizing DEBRA+ (interrupting a lock
// holder is unsafe — the limitation the paper notes for lock-based
// structures). The BST and skip list panels historically mirrored only the
// paper's scheme selection; they now include the EBR and QSBR ablation
// columns as well.
func SupportedSchemes(ds string) []string {
	switch ds {
	case DSSkipList:
		return []string{
			recordmgr.SchemeNone, recordmgr.SchemeEBR, recordmgr.SchemeQSBR,
			recordmgr.SchemeDEBRA, recordmgr.SchemeHP,
		}
	default:
		return []string{
			recordmgr.SchemeNone, recordmgr.SchemeEBR, recordmgr.SchemeQSBR,
			recordmgr.SchemeDEBRA, recordmgr.SchemeDEBRAPlus, recordmgr.SchemeHP,
		}
	}
}

// managerConfig translates a trial Config into the Record Manager
// construction options shared by every data structure.
func managerConfig(cfg Config) recordmgr.Config {
	return recordmgr.Config{
		Scheme:      cfg.Scheme,
		Threads:     cfg.Threads,
		Allocator:   cfg.Allocator,
		UsePool:     cfg.UsePool,
		Shards:      cfg.Shards,
		Placement:   core.ShardPlacement(cfg.Placement),
		RetireBatch: cfg.RetireBatch,
		Reclaimers:  cfg.Reclaimers,
		Adaptive:    cfg.Adaptive,
		// Only valid alongside Adaptive (recordmgr validates); bench sets it
		// exclusively for adaptive trials.
		AdaptiveInterval: cfg.AdaptiveInterval,
	}
}

// buildSet constructs the requested data structure and record manager.
func buildSet(cfg Config) (set, error) {
	switch cfg.DataStructure {
	case DSBST, "":
		mgr, err := recordmgr.Build[bst.Record[int64]](managerConfig(cfg))
		if err != nil {
			return nil, err
		}
		return bstSet{t: bst.New(mgr)}, nil
	case DSSkipList:
		mgr, err := recordmgr.Build[skiplist.Node[int64]](managerConfig(cfg))
		if err != nil {
			return nil, err
		}
		return skipSet{l: skiplist.New(mgr, cfg.Threads)}, nil
	case DSHashMap:
		mgr, err := recordmgr.Build[hashmap.Node[int64]](managerConfig(cfg))
		if err != nil {
			return nil, err
		}
		var opts []hashmap.Option
		if cfg.InitialBuckets > 0 {
			opts = append(opts, hashmap.WithInitialBuckets(cfg.InitialBuckets))
		}
		return hashSet{m: hashmap.New(mgr, cfg.Threads, opts...)}, nil
	case DSHotPathPin, DSHotPathAlloc:
		mgr, err := recordmgr.Build[hotRecord](managerConfig(cfg))
		if err != nil {
			return nil, err
		}
		return microSet{mgr: mgr, kind: cfg.DataStructure}, nil
	default:
		return nil, fmt.Errorf("bench: unknown data structure %q", cfg.DataStructure)
	}
}

// RunTrial prefills the data structure and runs one timed trial, returning
// its measurements. With Config.Repeat > 1 it runs the trial that many
// times and returns the best-throughput run's Result.
func RunTrial(cfg Config) (Result, error) {
	if cfg.Repeat > 1 {
		n := cfg.Repeat
		cfg.Repeat = 0
		best, err := RunTrial(cfg)
		if err != nil {
			return best, err
		}
		for i := 1; i < n; i++ {
			r, err := RunTrial(cfg)
			if err != nil {
				return best, err
			}
			if r.Throughput > best.Throughput {
				best = r
			}
		}
		return best, nil
	}
	if cfg.Threads <= 0 && len(cfg.Phases) == 0 {
		// Phased trials derive Threads from the busiest phase.
		return Result{}, fmt.Errorf("bench: Threads must be >= 1")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * time.Millisecond
	}
	if cfg.Workload.KeyRange <= 0 {
		return Result{}, fmt.Errorf("bench: KeyRange must be >= 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DataStructure == DSService {
		// The service arm runs a real server and load generator; it shares
		// RunTrial's validation and defaulting but none of the in-process
		// worker machinery.
		return runServiceTrial(cfg)
	}
	if cfg.DataStructure == DSFaultProbe {
		// The fault-probe arm (experiment 11) runs the two-phase stalled
		// unreclaimed-growth probe; op counts are fixed, not duration-scaled.
		return runFaultProbeTrial(cfg)
	}
	if len(cfg.Phases) > 0 {
		// The phase-changing arm (experiment 10) owns its worker lifecycle:
		// workers come and go at phase boundaries, which is the load signal
		// the adaptive controller exists to track.
		return runPhasedTrial(cfg)
	}
	s, err := buildSet(cfg)
	if err != nil {
		return Result{}, err
	}
	// Close no matter how the trial ends: runSafely converts panics (scheme
	// contract violations, escaped neutralizations) into errors, and an
	// unclosed manager would leak its async reclaimer goroutines into every
	// later trial of the sweep. Close is idempotent, so the normal-path
	// close below is unaffected.
	defer s.close()
	prefill(s, cfg)

	var (
		stop        atomic.Bool
		totalOps    atomic.Int64
		churnCycles atomic.Int64
		churnNs     atomic.Int64
		wg          sync.WaitGroup
	)
	start := time.Now()
	for tid := 0; tid < cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(tid)*104729))
			w := cfg.Workload
			// Worker registration. Static binding resolves the thread's
			// handles once; churn trials instead bind dynamically and cycle
			// the slot every ChurnOps operations, timing each cycle.
			var (
				h       opHandle
				release func()
			)
			if cfg.ChurnOps > 0 {
				h, release = s.acquire()
			} else {
				h = s.handle(tid)
			}
			ops := int64(0)
			cycles, spentNs := int64(0), int64(0)
			for !stop.Load() {
				key := rng.Int63n(w.KeyRange)
				p := rng.Intn(100)
				switch {
				case p < w.InsertPct:
					h.insert(key)
				case p < w.InsertPct+w.DeletePct:
					h.remove(key)
				default:
					h.contains(key)
				}
				ops++
				if cfg.ChurnOps > 0 && ops%int64(cfg.ChurnOps) == 0 {
					t0 := time.Now()
					release()
					h, release = s.acquire()
					spentNs += time.Since(t0).Nanoseconds()
					cycles++
				}
			}
			if release != nil {
				release()
			}
			totalOps.Add(ops)
			churnCycles.Add(cycles)
			churnNs.Add(spentNs)
		}(tid)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	// Snapshot before Close: the pending counters show how far reclamation
	// ran behind the workers (with async on, the reclaimers' backlog), which
	// is part of what the experiment measures. Close then drains everything
	// so reclaimer goroutines never outlive their trial.
	st := s.stats()
	s.close()
	ops := totalOps.Load()
	res := Result{
		Config:           cfg,
		Ops:              ops,
		Throughput:       float64(ops) / elapsed.Seconds(),
		AllocatedBytes:   st.Alloc.AllocatedBytes,
		AllocatedRecords: st.Alloc.Allocated,
		Reclaimer:        st.Reclaimer,
		PoolReused:       st.Pool.Reused,
		RetirePending:    st.RetirePending,
		HandoffPending:   st.HandoffPending,
		Unreclaimed:      st.Unreclaimed,
		ChurnCycles:      churnCycles.Load(),
		ChurnNs:          churnNs.Load(),
		Elapsed:          elapsed,
	}
	res.MopsPerSec = res.Throughput / 1e6
	return res, nil
}

// prefill inserts keys until the structure holds PrefillFraction*KeyRange
// elements, splitting the work across the trial's threads exactly as the
// paper does before starting the timed phase.
func prefill(s set, cfg Config) {
	target := int64(float64(cfg.Workload.KeyRange) * cfg.Workload.PrefillFraction)
	if target <= 0 {
		return
	}
	var inserted atomic.Int64
	var wg sync.WaitGroup
	workers := cfg.Threads
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(tid)))
			// Churn and phased trials must not wire the prefillers
			// statically: a static claim is permanent and would leave nothing
			// for the timed workers to acquire (and would pin the phased
			// trials' occupancy signal at full). Bind dynamically and release
			// at the end.
			var h opHandle
			if cfg.ChurnOps > 0 || len(cfg.Phases) > 0 {
				var release func()
				h, release = s.acquire()
				defer release()
			} else {
				h = s.handle(tid)
			}
			for inserted.Load() < target {
				key := rng.Int63n(cfg.Workload.KeyRange)
				if h.insert(key) {
					inserted.Add(1)
				}
			}
		}(tid)
	}
	wg.Wait()
}

// DefaultThreadCounts returns the thread counts used by the experiments on
// this machine: 1, 2, 4, ... up to max (the paper sweeps 1..16 on an
// 8-hardware-thread machine, i.e. up to 2x oversubscription).
func DefaultThreadCounts(max int) []int {
	if max <= 0 {
		max = 2 * runtime.NumCPU()
	}
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Recover converts panics from misconfigured trials into errors (used by the
// CLI so one bad configuration does not abort a whole sweep).
func runSafely(cfg Config) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			if n, ok := v.(neutralize.Neutralized); ok {
				err = fmt.Errorf("bench: unexpected neutralization escaped to the harness: %v", n)
				return
			}
			err = fmt.Errorf("bench: trial panicked: %v", v)
		}
	}()
	return RunTrial(cfg)
}
