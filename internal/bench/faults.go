package bench

// Experiment 11 ("faults"): what a stalled or dead thread costs each scheme.
// The paper's central robustness claim (Section 5) is that DEBRA's epoch
// mechanism is blocked by a single stalled thread while DEBRA+'s
// neutralisation and hazard pointers are not. This experiment measures that
// directly in two panels:
//
//   - A fault-probe panel per stall count: internal/faultinject parks N
//     threads while pinned and samples ManagerStats.Unreclaimed against
//     operations completed by the surviving threads, first without and then
//     with the stall. The reported classification is the slope *delta* —
//     bounded schemes (DEBRA+, HP, and the leaking baseline, which is
//     stall-indifferent by construction) show no stall-induced growth;
//     EBR, QSBR and plain DEBRA grow one unreclaimed record per retire for
//     as long as the victim stays parked.
//
//   - A chaos service panel: the loopback KV service of experiment 9 driven
//     by a load generator that randomly stalls mid-frame and kills its own
//     connections, exercising the server's read/write deadlines, ERR_BUSY
//     fast-fail and slow-peer reaper plus the client's retry/reconnect
//     logic. The trial inherits runServiceTrial's shutdown invariant
//     (Retired == Freed after Close), so surviving chaos is checked, not
//     merely survived.
//
// Fault rows are informational: benchdiff renders them (growth slopes,
// classifications, shed/retry counters) but excludes them from the
// throughput trend gate, since a probe's op count is fixed and a chaos run's
// throughput is policy noise.

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/kvload"
	"repro/internal/recordmgr"
)

// DSFaultProbe is the Config.DataStructure name of the stalled-thread
// unreclaimed-growth probe trials.
const DSFaultProbe = "faultprobe"

// ExperimentFaults is the experiment identifier of the fault panels.
const ExperimentFaults = 11

// FaultStallSweep is the stalled-thread counts the probe panels cover. Fixed
// so smoke rows match across machines.
var FaultStallSweep = []int{1, 2}

// FaultProbeOpsPerWorker is the per-phase operation count each live worker
// executes in a probe trial. Fixed rather than duration-scaled so the growth
// slopes are comparable across machines and baseline runs.
const FaultProbeOpsPerWorker = 4000

// Chaos cadences of the service panel: roughly one mid-frame stall per 200
// requests and one self-inflicted connection kill per 400 per connection.
const (
	faultChaosStallEvery = 200
	faultChaosKillEvery  = 400
)

// FaultPanels returns the experiment 11 panels: one fault-probe panel per
// FaultStallSweep entry (thread rows are the sweep entries that leave at
// least one live worker) and one chaos-mode service panel. The fault axes
// (stall count, chaos cadences) live in the Title, like the service axes,
// so pre-fault baseline row identities stay stable.
func FaultPanels(opts Options) []Panel {
	const figure = "Fault injection: stalled threads and service chaos (beyond the paper), Experiment 11"
	var panels []Panel
	for _, stall := range FaultStallSweep {
		var rows []int
		for _, t := range opts.threads() {
			if t > stall {
				rows = append(rows, t)
			}
		}
		if len(rows) == 0 {
			continue
		}
		panels = append(panels, Panel{
			Figure:        figure,
			Title:         fmt.Sprintf("%s alloc-retire stalls=%d", DSFaultProbe, stall),
			DataStructure: DSFaultProbe,
			Workload:      Workload{InsertPct: 50, DeletePct: 50, KeyRange: 1},
			Allocator:     recordmgr.AllocBump,
			UsePool:       true,
			Schemes:       SupportedSchemes(DSFaultProbe),
			Threads:       rows,
			Shards:        opts.Shards,
			Placement:     opts.Placement,
			RetireBatch:   opts.RetireBatch,
			Reclaimers:    opts.Reclaimers,
			StallThreads:  stall,
		})
	}
	w := withRange(Workload{InsertPct: 25, DeletePct: 25, PrefillFraction: 0.5}, opts.scaleRange(200_000))
	panels = append(panels, Panel{
		Figure: figure,
		Title: fmt.Sprintf("%s-chaos parts=%d burst=%d %s range [0,%d) %di-%dd stall=1/%d kill=1/%d",
			DSService, 2, ServiceBurstSweep[0], kvload.DistZipf, w.KeyRange, w.InsertPct, w.DeletePct,
			faultChaosStallEvery, faultChaosKillEvery),
		DataStructure:   DSService,
		Workload:        w,
		Allocator:       recordmgr.AllocBump,
		UsePool:         true,
		Schemes:         SupportedSchemes(DSService),
		Threads:         opts.threads(),
		Shards:          opts.Shards,
		Placement:       opts.Placement,
		RetireBatch:     opts.RetireBatch,
		Reclaimers:      opts.Reclaimers,
		Partitions:      2,
		ServiceBurst:    ServiceBurstSweep[0],
		ServiceDist:     kvload.DistZipf,
		ChaosStallEvery: faultChaosStallEvery,
		ChaosKillEvery:  faultChaosKillEvery,
	})
	return panels
}

// faultRecord is the record type the probe trials allocate and retire: the
// two-word node shape of the microbenchmarks.
type faultRecord struct {
	_ [2]int64
}

// runFaultProbeTrial is RunTrial's fault-probe arm: it builds a manager with
// a fault plan interposed (recordmgr.Config.FaultPlan), runs the two-phase
// unreclaimed-growth probe of internal/faultinject with cfg.StallThreads
// victims parked while pinned, and reports the growth slopes and the bounded
// classification. The victims are always the highest tids so the surviving
// workers keep dense low tids.
func runFaultProbeTrial(cfg Config) (Result, error) {
	stall := cfg.StallThreads
	if stall < 1 {
		stall = 1
	}
	if cfg.Threads <= stall {
		return Result{}, fmt.Errorf("bench: fault probe needs Threads > StallThreads, got %d <= %d", cfg.Threads, stall)
	}
	stallTids := make([]int, stall)
	for i := range stallTids {
		stallTids[i] = cfg.Threads - 1 - i
	}
	plan, stalls := faultinject.NewStallPlan(stallTids)
	mcfg := managerConfig(cfg)
	mcfg.FaultPlan = plan
	m, err := recordmgr.Build[faultRecord](mcfg)
	if err != nil {
		plan.Close()
		return Result{}, err
	}
	start := time.Now()
	pres := faultinject.Probe(m, plan, stalls, faultinject.ProbeConfig{
		Workers:      cfg.Threads,
		OpsPerWorker: FaultProbeOpsPerWorker,
	})
	elapsed := time.Since(start)
	// The plan must release its gates and disarm before Close: DrainLimbo
	// requires every thread quiescent, and Probe has already joined them.
	plan.Close()
	st := m.Stats()
	m.Close()
	ops := pres.BaselineOps + pres.StalledOps
	res := Result{
		Config:              cfg,
		Ops:                 ops,
		Throughput:          float64(ops) / elapsed.Seconds(),
		AllocatedBytes:      st.Alloc.AllocatedBytes,
		AllocatedRecords:    st.Alloc.Allocated,
		PoolReused:          st.Pool.Reused,
		Reclaimer:           st.Reclaimer,
		RetirePending:       st.RetirePending,
		HandoffPending:      st.HandoffPending,
		Unreclaimed:         st.Unreclaimed,
		Elapsed:             elapsed,
		FaultStalled:        pres.Stalled,
		FaultBaselineSlope:  pres.BaselineSlope,
		FaultStalledSlope:   pres.StalledSlope,
		FaultSlopeDelta:     pres.SlopeDelta,
		FaultBounded:        pres.Bounded,
		FaultMaxUnreclaimed: pres.MaxUnreclaimed,
	}
	res.MopsPerSec = res.Throughput / 1e6
	return res, nil
}
