package bench

// Experiment 9 ("service"): the whole stack measured as a network service.
// Each trial starts an in-process kvservice server (the same code path as
// cmd/kvserver) on a loopback port, drives it with kvload over real TCP
// connections — one connection per "thread" of the trial — and reports
// throughput plus p50/p99/p999 latency quantiles. The tail quantiles are the
// point: Mops/s panels average reclamation stalls away, while a p999 column
// shows exactly what a grace-period stall costs the requests that hit it.
// Every connection lives the burst contract (acquire handles, serve
// ServiceBurst requests, release), so the trial also exercises the dynamic
// slot registry the way a real front-end does.
//
// The trial fails — not merely reports — if the server's shutdown invariant
// Retired == Freed does not hold after Close for a reclaiming scheme, so the
// smoke run doubles as a lifecycle check on the whole service stack.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvload"
	"repro/internal/kvservice"
	"repro/internal/recordmgr"
)

// DSService is the Config.DataStructure name of the service trials.
const DSService = "service"

// ExperimentService is the experiment identifier of the service panels.
const ExperimentService = 9

// ServiceBurstSweep is the per-slot-hold request counts the service panels
// cover: a hot cadence (release every 64 requests) and a mild one. Fixed
// rather than machine-derived so smoke rows match across machines for the
// trend gate.
var ServiceBurstSweep = []int{64, 512}

// ServicePanels returns the KV service panels: closed-loop load against an
// in-process kvserver over loopback TCP, one panel per (partition count,
// burst, key distribution) shape, all six schemes as columns and connection
// counts as rows. The read-heavy zipfian shape is the realistic cache
// profile; the update-heavy uniform shape maximises retire pressure so the
// scheme differences (and the p999 stalls) have somewhere to show up.
func ServicePanels(opts Options) []Panel {
	const figure = "KV service over loopback TCP (beyond the paper), Experiment 9"
	type shape struct {
		partitions int
		burst      int
		dist       string
		mix        Workload
		keyRange   int64
	}
	shapes := []shape{
		{2, ServiceBurstSweep[0], kvload.DistZipf, Workload{InsertPct: 10, DeletePct: 10, PrefillFraction: 0.5}, 2_000_000},
		{4, ServiceBurstSweep[1], kvload.DistUniform, Workload{InsertPct: 25, DeletePct: 25, PrefillFraction: 0.5}, 2_000_000},
	}
	var panels []Panel
	for _, sh := range shapes {
		w := withRange(sh.mix, opts.scaleRange(sh.keyRange))
		panels = append(panels, Panel{
			Figure: figure,
			// The service axes (partitions, burst, distribution) live in the
			// Title: rowKey identities stay stable for every pre-service
			// baseline row, and the axes still disambiguate the new cells.
			Title: fmt.Sprintf("%s parts=%d burst=%d %s range [0,%d) %di-%dd",
				DSService, sh.partitions, sh.burst, sh.dist, w.KeyRange, w.InsertPct, w.DeletePct),
			DataStructure: DSService,
			Workload:      w,
			Allocator:     recordmgr.AllocBump,
			UsePool:       true,
			Schemes:       SupportedSchemes(DSService),
			Threads:       opts.threads(),
			Shards:        opts.Shards,
			Placement:     opts.Placement,
			RetireBatch:   opts.RetireBatch,
			Reclaimers:    opts.Reclaimers,
			Partitions:    sh.partitions,
			ServiceBurst:  sh.burst,
			ServiceDist:   sh.dist,
		})
	}
	return panels
}

// runServiceTrial is RunTrial's service arm: an in-process server, a load
// run, a clean shutdown, and the shutdown invariant checked.
func runServiceTrial(cfg Config) (Result, error) {
	partitions := cfg.Partitions
	if partitions == 0 {
		partitions = 1
	}
	srv, err := kvservice.New(kvservice.Config{
		Scheme:         cfg.Scheme,
		Partitions:     partitions,
		MaxConns:       cfg.Threads,
		Burst:          cfg.ServiceBurst,
		PipelineDepth:  cfg.PipelineDepth,
		UsePool:        cfg.UsePool,
		Shards:         cfg.Shards,
		Placement:      core.ShardPlacement(cfg.Placement),
		RetireBatch:    cfg.RetireBatch,
		Reclaimers:     cfg.Reclaimers,
		InitialBuckets: cfg.InitialBuckets,
	})
	if err != nil {
		return Result{}, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	dist := cfg.ServiceDist
	if dist == "" {
		dist = kvload.DistZipf
	}
	readPct := 100 - cfg.Workload.InsertPct - cfg.Workload.DeletePct
	lres, lerr := kvload.Run(kvload.Config{
		Addr:            addr.String(),
		Conns:           cfg.Threads,
		Duration:        cfg.Duration,
		Keys:            cfg.Workload.KeyRange,
		Dist:            dist,
		ReadPct:         readPct,
		DelPct:          cfg.Workload.DeletePct,
		Pipeline:        cfg.PipelineDepth,
		Seed:            cfg.Seed,
		Prefill:         int64(float64(cfg.Workload.KeyRange) * cfg.Workload.PrefillFraction),
		ChaosStallEvery: cfg.ChaosStallEvery,
		ChaosKillEvery:  cfg.ChaosKillEvery,
	})
	srv.Close()
	if lerr != nil {
		return Result{}, lerr
	}
	snap := srv.Stats()
	m := snap.Manager
	if cfg.Scheme != recordmgr.SchemeNone && (m.Retired != m.Freed || m.Unreclaimed != 0) {
		return Result{}, fmt.Errorf("bench: service shutdown invariant violated: Retired=%d Freed=%d Unreclaimed=%d", m.Retired, m.Freed, m.Unreclaimed)
	}
	res := Result{
		Config:            cfg,
		Ops:               lres.Ops,
		Throughput:        lres.Throughput(),
		AllocatedBytes:    m.AllocatedBytes,
		AllocatedRecords:  m.Allocated,
		PoolReused:        m.PoolReused,
		Unreclaimed:       m.Unreclaimed,
		Elapsed:           lres.Elapsed,
		P50Ns:             int64(lres.P50()),
		P99Ns:             int64(lres.P99()),
		P999Ns:            int64(lres.P999()),
		ServiceBusy:       lres.Busy,
		ServiceRetries:    lres.Retries,
		ServiceReconnects: lres.Reconnects,
		ServiceGaveUp:     lres.GaveUp,
		ChaosStalls:       lres.ChaosStalls,
		ChaosKills:        lres.ChaosKills,
	}
	if lres.Ops > 0 {
		res.AllocsPerOp = float64(lres.Mallocs) / float64(lres.Ops)
	}
	res.Reclaimer.Retired = m.Retired
	res.Reclaimer.Freed = m.Freed
	res.Reclaimer.Limbo = m.Limbo
	res.Reclaimer.EpochAdvances = m.EpochAdvances
	res.Reclaimer.Scans = m.Scans
	res.Reclaimer.Neutralizations = m.Neutralizations
	res.MopsPerSec = res.Throughput / 1e6
	return res, nil
}
