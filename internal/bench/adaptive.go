package bench

// Experiment 10 ("adaptive"): the self-tuning runtime measured against the
// static configurations it replaces. Each trial runs a PHASE-CHANGING
// workload — the live thread count and write rate shift mid-run — on the
// update-heavy hash map, three arms per scheme:
//
//   - adaptive: batching and async reclamation configured as starting
//     points, with the core.Controller retuning effective shards, retire
//     batches and active reclaimers from the live signals;
//   - static-opt: the hand-tuned static sweet spot for the heavy phases
//     (full-block batch, one async reclaimer) — what a per-workload
//     re-launch would pick;
//   - static-worst: a plausible mis-tuning (retire batch 1, synchronous
//     reclamation): every retirement pays the full per-record scheme path.
//
// The claim under test is the paper's own motivation applied to the knobs
// this module grew: reclamation overhead must track the live workload, and
// a feedback loop should sit within a few percent of the static optimum on
// every phase while beating a mis-tuned static configuration outright.
// Adaptive rows carry the controller's decision trajectory (shard, batch
// and reclaimer lever positions over time, downsampled) as JSON columns so
// benchdiff can render what the controller actually did.
//
// Like the service panels, the experiment's axes (arm, phase schedule) are
// encoded in the panel Title rather than new rowKey fields, so every
// pre-adaptive baseline row keeps its identity.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/recordmgr"
)

// ExperimentAdaptive is the experiment identifier of the self-tuning
// runtime panels.
const ExperimentAdaptive = 10

// Phase is one segment of a phase-changing workload (Config.Phases): the
// live worker count and the operation mix for the segment. The trial's
// Duration splits evenly across its phases.
type Phase struct {
	// Threads is the number of live workers during the phase; the trial's
	// other worker slots sit vacant, which is exactly the occupancy signal
	// the adaptive controller watches.
	Threads int
	// InsertPct and DeletePct are the phase's operation mix (the remainder
	// are searches); the trial Workload's key range applies throughout.
	InsertPct int
	DeletePct int
}

// String renders a phase compactly ("4t50i50d").
func (p Phase) String() string {
	return fmt.Sprintf("%dt%di%dd", p.Threads, p.InsertPct, p.DeletePct)
}

// AdaptivePhases is the phase schedule every experiment-10 trial runs: an
// update-heavy burst at full thread count, a near-idle read-mostly lull on
// one thread, and the burst again. Fixed rather than machine-derived so
// smoke rows match across machines for the trend gate; the lull is what
// separates the arms — a static configuration pays its heavy-phase tuning
// through the lull (or its lull tuning through the bursts), the controller
// re-tunes at the boundary.
var AdaptivePhases = []Phase{
	{Threads: 4, InsertPct: 50, DeletePct: 50},
	{Threads: 1, InsertPct: 5, DeletePct: 5},
	{Threads: 4, InsertPct: 50, DeletePct: 50},
}

// phasesLabel renders a phase schedule for panel titles ("4t50i50d,...").
func phasesLabel(phases []Phase) string {
	parts := make([]string, len(phases))
	for i, p := range phases {
		parts[i] = p.String()
	}
	return strings.Join(parts, ",")
}

// adaptiveArm is one column family of the experiment: a knob setting the
// phase schedule runs under.
type adaptiveArm struct {
	name       string
	batch      int
	reclaimers int
	adaptive   bool
}

// adaptiveArms returns the three arms (see the file comment).
func adaptiveArms() []adaptiveArm {
	return []adaptiveArm{
		{name: "adaptive", batch: blockbag.BlockSize, reclaimers: 2, adaptive: true},
		{name: "static-opt", batch: blockbag.BlockSize, reclaimers: 1},
		{name: "static-worst", batch: 1, reclaimers: 0},
	}
}

// AdaptivePanels returns the self-tuning runtime panels: the phase-changing
// hash map workload (pre-sized table), one panel per arm, with the EBR /
// DEBRA / HP scheme columns — a shared-state scheme, the paper's scheme and
// a per-record scheme, the three reclamation shapes the controller's levers
// interact with differently. One row per panel: the thread axis is the
// phase schedule's, not the sweep's.
func AdaptivePanels(opts Options) []Panel {
	const figure = "Self-tuning runtime on a phase-changing workload (beyond the paper), Experiment 10"
	w := withRange(MixUpdateHeavy, opts.scaleRange(100_000))
	initial := int(w.KeyRange / 2 / hashmap.DefaultMaxLoad)
	maxThreads := 0
	for _, p := range AdaptivePhases {
		if p.Threads > maxThreads {
			maxThreads = p.Threads
		}
	}
	schemes := []string{recordmgr.SchemeEBR, recordmgr.SchemeDEBRA, recordmgr.SchemeHP}
	var panels []Panel
	for _, arm := range adaptiveArms() {
		panels = append(panels, Panel{
			Figure: figure,
			// Arm and phase schedule live in the Title (service precedent):
			// rowKey identities of every pre-adaptive baseline row stay
			// stable, and the Title still fully identifies the cell.
			Title: fmt.Sprintf("adaptive arm=%s %s range [0,%d) phases=%s",
				arm.name, DSHashMap, w.KeyRange, phasesLabel(AdaptivePhases)),
			DataStructure:  DSHashMap,
			Workload:       w,
			Allocator:      recordmgr.AllocBump,
			UsePool:        true,
			Schemes:        schemes,
			Threads:        []int{maxThreads},
			InitialBuckets: initial,
			Shards:         2,
			RetireBatch:    arm.batch,
			Reclaimers:     arm.reclaimers,
			Phases:         AdaptivePhases,
			Adaptive:       arm.adaptive,
		})
	}
	return panels
}

// trajPoints bounds the trajectory columns emitted per adaptive row; the
// controller's own (already decimated) history is downsampled to this.
const trajPoints = 64

// downsample picks at most max evenly spaced entries of a trajectory.
func downsample(samples []core.ControllerSample, max int) []core.ControllerSample {
	if len(samples) <= max {
		return samples
	}
	out := make([]core.ControllerSample, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, samples[i*len(samples)/max])
	}
	return out
}

// runPhasedTrial is RunTrial's phase-changing arm (Config.Phases set): the
// phases run back-to-back against one data structure instance, workers
// binding their slots dynamically per phase so live occupancy — the
// controller's input — actually changes at the boundaries. Reclaiming
// schemes are held to the shutdown invariant Retired == Freed after Close,
// controller or not, so the experiment doubles as a lifecycle check on the
// adaptive runtime.
func runPhasedTrial(cfg Config) (Result, error) {
	if len(cfg.Phases) == 0 {
		return Result{}, fmt.Errorf("bench: runPhasedTrial requires Phases")
	}
	maxThreads := 0
	for i, p := range cfg.Phases {
		if p.Threads < 1 {
			return Result{}, fmt.Errorf("bench: phase %d has %d threads; every phase needs >= 1", i, p.Threads)
		}
		if p.Threads > maxThreads {
			maxThreads = p.Threads
		}
	}
	// The manager is sized for the busiest phase; quieter phases leave the
	// surplus slots vacant.
	cfg.Threads = maxThreads
	if cfg.Adaptive && cfg.AdaptiveInterval == 0 {
		// Scale the control period to the trial so even a 75ms smoke run
		// gives the controller a few dozen decisions per phase.
		iv := cfg.Duration / 50
		if iv < time.Millisecond {
			iv = time.Millisecond
		}
		cfg.AdaptiveInterval = iv
	}
	s, err := buildSet(cfg)
	if err != nil {
		return Result{}, err
	}
	defer s.close()
	prefill(s, cfg)

	phaseDur := cfg.Duration / time.Duration(len(cfg.Phases))
	var (
		totalOps int64
		elapsed  time.Duration
		res      Result
	)
	for pi, phase := range cfg.Phases {
		var (
			stop     atomic.Bool
			phaseOps atomic.Int64
			wg       sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < phase.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*15485863 + int64(w)*104729))
				h, release := s.acquire()
				defer release()
				ops := int64(0)
				for !stop.Load() {
					key := rng.Int63n(cfg.Workload.KeyRange)
					p := rng.Intn(100)
					switch {
					case p < phase.InsertPct:
						h.insert(key)
					case p < phase.InsertPct+phase.DeletePct:
						h.remove(key)
					default:
						h.contains(key)
					}
					ops++
				}
				phaseOps.Add(ops)
			}(w)
		}
		time.Sleep(phaseDur)
		stop.Store(true)
		wg.Wait()
		phaseElapsed := time.Since(start)
		elapsed += phaseElapsed
		ops := phaseOps.Load()
		totalOps += ops
		res.PhaseMops = append(res.PhaseMops, float64(ops)/phaseElapsed.Seconds()/1e6)
	}

	// Pre-Close snapshot (backlog columns), trajectory capture, Close, then
	// the shutdown invariant on a fresh snapshot.
	st := s.stats()
	if c := s.controller(); c != nil {
		res.ControllerSteps = c.Steps()
		res.ControllerDecisions = c.Decisions()
		for _, sm := range downsample(c.Trajectory(), trajPoints) {
			res.TrajLive = append(res.TrajLive, sm.Live)
			res.TrajShards = append(res.TrajShards, sm.EffectiveShards)
			res.TrajBatch = append(res.TrajBatch, sm.RetireBatch)
			res.TrajReclaimers = append(res.TrajReclaimers, sm.ActiveReclaimers)
		}
	}
	s.close()
	if cfg.Scheme != recordmgr.SchemeNone {
		end := s.stats()
		if end.Reclaimer.Retired != end.Reclaimer.Freed || end.Unreclaimed != 0 {
			return Result{}, fmt.Errorf("bench: adaptive shutdown invariant violated (%s): Retired=%d Freed=%d Unreclaimed=%d",
				cfg.Scheme, end.Reclaimer.Retired, end.Reclaimer.Freed, end.Unreclaimed)
		}
	}

	res.Config = cfg
	res.Ops = totalOps
	res.Throughput = float64(totalOps) / elapsed.Seconds()
	res.MopsPerSec = res.Throughput / 1e6
	res.AllocatedBytes = st.Alloc.AllocatedBytes
	res.AllocatedRecords = st.Alloc.Allocated
	res.Reclaimer = st.Reclaimer
	res.PoolReused = st.Pool.Reused
	res.RetirePending = st.RetirePending
	res.HandoffPending = st.HandoffPending
	res.Unreclaimed = st.Unreclaimed
	res.Elapsed = elapsed
	return res, nil
}
