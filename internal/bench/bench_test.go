package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/recordmgr"
)

func tinyOptions() Options {
	return Options{Duration: 25 * time.Millisecond, MaxThreads: 2, Quick: true, Seed: 7}
}

func TestRunTrialBSTAllSchemes(t *testing.T) {
	for _, scheme := range SupportedSchemes(DSBST) {
		t.Run(scheme, func(t *testing.T) {
			res, err := RunTrial(Config{
				DataStructure: DSBST,
				Scheme:        scheme,
				Threads:       2,
				Duration:      30 * time.Millisecond,
				Workload:      withRange(MixUpdateHeavy, 1024),
				Allocator:     recordmgr.AllocBump,
				UsePool:       true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 || res.Throughput <= 0 {
				t.Fatalf("no work performed: %+v", res)
			}
			if res.AllocatedRecords == 0 {
				t.Fatal("no records allocated")
			}
			if scheme != recordmgr.SchemeNone && res.Reclaimer.Retired == 0 {
				t.Fatal("nothing retired during an update-heavy trial")
			}
		})
	}
}

func TestRunTrialSkipListSchemes(t *testing.T) {
	for _, scheme := range SupportedSchemes(DSSkipList) {
		res, err := RunTrial(Config{
			DataStructure: DSSkipList,
			Scheme:        scheme,
			Threads:       2,
			Duration:      30 * time.Millisecond,
			Workload:      withRange(MixReadHeavy, 1024),
			Allocator:     recordmgr.AllocBump,
			UsePool:       true,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no operations", scheme)
		}
	}
}

func TestRunTrialHashMapAllSchemes(t *testing.T) {
	schemes := SupportedSchemes(DSHashMap)
	if len(schemes) != 6 {
		t.Fatalf("hash map must support all six schemes, got %v", schemes)
	}
	for _, scheme := range schemes {
		t.Run(scheme, func(t *testing.T) {
			res, err := RunTrial(Config{
				DataStructure:  DSHashMap,
				Scheme:         scheme,
				Threads:        2,
				Duration:       30 * time.Millisecond,
				Workload:       withRange(MixUpdateHeavy, 1024),
				Allocator:      recordmgr.AllocBump,
				UsePool:        true,
				InitialBuckets: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 || res.Throughput <= 0 {
				t.Fatalf("no work performed: %+v", res)
			}
			if scheme != recordmgr.SchemeNone && res.Reclaimer.Retired == 0 {
				t.Fatal("nothing retired during an update-heavy trial")
			}
		})
	}
}

// TestRunTrialChurnAllSchemes drives the goroutine-churn binding (workers
// release and re-acquire their thread slot every ChurnOps operations)
// through every scheme and every data structure kind the harness supports,
// asserting the cycles actually happened and were timed.
func TestRunTrialChurnAllSchemes(t *testing.T) {
	for _, scheme := range SupportedSchemes(DSHashMap) {
		t.Run(scheme, func(t *testing.T) {
			res, err := RunTrial(Config{
				DataStructure:  DSHashMap,
				Scheme:         scheme,
				Threads:        2,
				Duration:       30 * time.Millisecond,
				Workload:       withRange(MixUpdateHeavy, 1024),
				Allocator:      recordmgr.AllocBump,
				UsePool:        true,
				InitialBuckets: 8,
				ChurnOps:       32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatalf("no work performed: %+v", res)
			}
			if res.ChurnCycles == 0 {
				t.Fatal("churn trial performed no slot cycles")
			}
			if res.ChurnNs <= 0 {
				t.Fatal("churn cycles were not timed")
			}
		})
	}
	// The other binding surfaces: BST, skip list and the hotpath probes all
	// accept the dynamic style too.
	for _, ds := range []string{DSBST, DSSkipList, DSHotPathPin} {
		t.Run(ds, func(t *testing.T) {
			res, err := RunTrial(Config{
				DataStructure: ds,
				Scheme:        recordmgr.SchemeDEBRA,
				Threads:       2,
				Duration:      20 * time.Millisecond,
				Workload:      withRange(MixUpdateHeavy, 512),
				Allocator:     recordmgr.AllocBump,
				UsePool:       true,
				ChurnOps:      32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ChurnCycles == 0 {
				t.Fatalf("%s churn trial performed no slot cycles", ds)
			}
		})
	}
}

func TestChurnPanels(t *testing.T) {
	panels, err := ExperimentPanels(ExperimentChurn, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != len(ChurnOpsSweep) {
		t.Fatalf("got %d churn panels want %d", len(panels), len(ChurnOpsSweep))
	}
	for i, p := range panels {
		if p.ChurnOps != ChurnOpsSweep[i] {
			t.Fatalf("panel %d ChurnOps = %d want %d", i, p.ChurnOps, ChurnOpsSweep[i])
		}
		if len(p.Schemes) != 6 {
			t.Fatalf("churn panel must cover all six schemes, got %v", p.Schemes)
		}
	}
}

func TestHashMapPanels(t *testing.T) {
	panels, err := ExperimentPanels(ExperimentHashMap, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("%d hash map panels, want 6 (3 shapes x 2 mixes)", len(panels))
	}
	sawGrow, sawPresized := false, false
	for _, p := range panels {
		if p.DataStructure != DSHashMap {
			t.Fatalf("panel %q has wrong structure %q", p.Title, p.DataStructure)
		}
		if len(p.Schemes) != 6 {
			t.Fatalf("panel %q runs %d schemes, want all 6", p.Title, len(p.Schemes))
		}
		if p.InitialBuckets == 0 {
			sawGrow = true
		} else {
			sawPresized = true
		}
	}
	if !sawGrow || !sawPresized {
		t.Fatal("panel family must cover both table-sizing regimes")
	}
}

func TestRenderJSON(t *testing.T) {
	opts := tinyOptions()
	p := Panel{
		Figure:        "smoke",
		Title:         "hashmap tiny",
		DataStructure: DSHashMap,
		Workload:      withRange(MixUpdateHeavy, 512),
		Allocator:     recordmgr.AllocBump,
		UsePool:       true,
		Schemes:       SupportedSchemes(DSHashMap),
		Threads:       []int{1, 2},
	}
	pr := RunPanel(p, opts)
	if len(pr.Errors) != 0 {
		t.Fatalf("panel errors: %v", pr.Errors)
	}
	rep := BuildJSONReport([]PanelResult{pr})
	if rep.RowCount != len(p.Schemes)*len(p.Threads) || len(rep.Rows) != rep.RowCount {
		t.Fatalf("report has %d rows, want %d", rep.RowCount, len(p.Schemes)*len(p.Threads))
	}
	if rep.NumCPU <= 0 || rep.GOOS == "" {
		t.Fatalf("report missing environment: %+v", rep)
	}
	out, err := RenderJSON([]PanelResult{pr})
	if err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.RowCount != rep.RowCount {
		t.Fatalf("decoded row count %d != %d", decoded.RowCount, rep.RowCount)
	}
	for _, row := range decoded.Rows {
		if row.Scheme == "" || row.Threads == 0 || row.Ops == 0 {
			t.Fatalf("incomplete row: %+v", row)
		}
	}
}

func TestMemoryExperimentHashMap(t *testing.T) {
	opts := tinyOptions()
	opts.DataStructure = DSHashMap
	rows, schemes, err := MemoryExperiment(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(schemes) != 3 {
		t.Fatalf("rows=%d schemes=%v", len(rows), schemes)
	}
}

func TestRunTrialRepeatKeepsBestRun(t *testing.T) {
	res, err := RunTrial(Config{
		DataStructure: DSHashMap,
		Scheme:        recordmgr.SchemeDEBRA,
		Threads:       2,
		Duration:      10 * time.Millisecond,
		Workload:      withRange(MixUpdateHeavy, 1024),
		Allocator:     recordmgr.AllocBump,
		UsePool:       true,
		Repeat:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Throughput <= 0 {
		t.Fatalf("no work performed: %+v", res)
	}
	// The retained Result must be one internally consistent run, not a
	// merge: an update-heavy DEBRA trial retires records and frees them by
	// Close, so the run's own invariant must hold on whichever run won.
	if res.Reclaimer.Retired == 0 {
		t.Fatal("nothing retired during an update-heavy trial")
	}
	if res.Unreclaimed != res.Reclaimer.Retired-res.Reclaimer.Freed {
		t.Fatalf("inconsistent counters across repeat runs: unreclaimed=%d retired=%d freed=%d",
			res.Unreclaimed, res.Reclaimer.Retired, res.Reclaimer.Freed)
	}
	// Repeat on an invalid config still fails on the first run.
	if _, err := RunTrial(Config{DataStructure: DSBST, Scheme: "bogus", Threads: 1,
		Workload: withRange(MixUpdateHeavy, 10), Repeat: 3}); err == nil {
		t.Fatal("expected error from repeated invalid trial")
	}
}

func TestMergeBestResults(t *testing.T) {
	panel := func() PanelResult {
		return PanelResult{
			Panel:   Panel{Figure: "f", Title: "t", Schemes: []string{"debra"}, Threads: []int{1, 2}},
			Results: map[string]map[int]Result{"debra": {}},
		}
	}
	a, b := panel(), panel()
	a.Results["debra"][1] = Result{Throughput: 100}
	a.Results["debra"][2] = Result{Throughput: 900}
	a.Errors = append(a.Errors, fmt.Errorf("sweep-a failure"))
	b.Results["debra"][1] = Result{Throughput: 300}
	// threads=2 missing from sweep b (its trial errored there).
	b.Errors = append(b.Errors, fmt.Errorf("sweep-b failure"))

	merged, err := MergeBestResults([]PanelResult{a}, []PanelResult{b})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged[0].Results["debra"][1].Throughput; got != 300 {
		t.Fatalf("cell 1: kept %v, want the best run (300)", got)
	}
	if got := merged[0].Results["debra"][2].Throughput; got != 900 {
		t.Fatalf("cell 2: kept %v, want the only run (900)", got)
	}
	if len(merged[0].Errors) != 2 {
		t.Fatalf("errors from every sweep must survive the merge, got %d", len(merged[0].Errors))
	}

	if _, err := MergeBestResults(); err == nil {
		t.Fatal("expected error for zero sweeps")
	}
	if _, err := MergeBestResults([]PanelResult{panel()}, nil); err == nil {
		t.Fatal("expected error for sweeps of different lengths")
	}
	other := panel()
	other.Panel.Title = "different"
	if _, err := MergeBestResults([]PanelResult{panel()}, []PanelResult{other}); err == nil {
		t.Fatal("expected error for mismatched panels")
	}
}

func TestRunTrialValidation(t *testing.T) {
	if _, err := RunTrial(Config{DataStructure: DSBST, Threads: 0, Workload: withRange(MixUpdateHeavy, 10)}); err == nil {
		t.Fatal("expected error for zero threads")
	}
	if _, err := RunTrial(Config{DataStructure: DSBST, Scheme: "debra", Threads: 1, Workload: Workload{}}); err == nil {
		t.Fatal("expected error for zero key range")
	}
	if _, err := RunTrial(Config{DataStructure: "btree", Scheme: "debra", Threads: 1, Workload: withRange(MixUpdateHeavy, 10)}); err == nil {
		t.Fatal("expected error for unknown data structure")
	}
	if _, err := RunTrial(Config{DataStructure: DSBST, Scheme: "bogus", Threads: 1, Workload: withRange(MixUpdateHeavy, 10)}); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestExperimentPanels(t *testing.T) {
	for _, exp := range []int{Experiment1, Experiment2, Experiment3} {
		panels, err := ExperimentPanels(exp, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(panels) != 6 {
			t.Fatalf("experiment %d: %d panels, want 6 (3 shapes x 2 mixes)", exp, len(panels))
		}
		for _, p := range panels {
			if len(p.Schemes) == 0 || len(p.Threads) == 0 {
				t.Fatalf("panel %q missing schemes or threads", p.Title)
			}
			if p.DataStructure == DSSkipList {
				for _, s := range p.Schemes {
					if s == recordmgr.SchemeDEBRAPlus {
						t.Fatal("skip list panel must not include DEBRA+")
					}
				}
			}
		}
	}
	if _, err := ExperimentPanels(99, DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunPanelAndRendering(t *testing.T) {
	opts := tinyOptions()
	p := Panel{
		Figure:        "smoke",
		Title:         "bst tiny",
		DataStructure: DSBST,
		Workload:      withRange(MixUpdateHeavy, 512),
		Allocator:     recordmgr.AllocBump,
		UsePool:       true,
		Schemes:       []string{recordmgr.SchemeNone, recordmgr.SchemeDEBRA, recordmgr.SchemeDEBRAPlus, recordmgr.SchemeHP},
		Threads:       []int{1, 2},
	}
	pr := RunPanel(p, opts)
	if len(pr.Errors) != 0 {
		t.Fatalf("panel errors: %v", pr.Errors)
	}
	table := RenderThroughputTable(pr)
	for _, want := range []string{"threads", "debra", "debra+", "hp", "none", "bst tiny"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := RenderCSV(pr, true)
	if !strings.HasPrefix(csv, "figure,title,scheme,threads,") {
		t.Fatalf("csv missing header:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 1+len(p.Schemes)*len(p.Threads) {
		t.Fatalf("csv has %d lines", got)
	}
	summary := Summarize([]PanelResult{pr})
	if summary.Samples == 0 || summary.DebraVsNone <= 0 || summary.DebraVsHP <= 0 {
		t.Fatalf("summary not computed: %+v", summary)
	}
	if out := RenderSummary(summary); !strings.Contains(out, "DEBRA+ vs HP") {
		t.Fatalf("summary rendering incomplete:\n%s", out)
	}
	if got := SortedSchemes(pr); len(got) != len(p.Schemes) {
		t.Fatalf("SortedSchemes returned %v", got)
	}
}

func TestMemoryExperiment(t *testing.T) {
	rows, schemes, err := MemoryExperiment(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(schemes) != 3 {
		t.Fatalf("rows=%d schemes=%v", len(rows), schemes)
	}
	for _, row := range rows {
		for _, s := range schemes {
			if row.Bytes[s] <= 0 {
				t.Fatalf("scheme %s at %d threads reported %d bytes", s, row.Threads, row.Bytes[s])
			}
		}
	}
	out := RenderMemoryTable(rows, schemes, "")
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "neutralizations") || !strings.Contains(out, DSBST) {
		t.Fatalf("memory table incomplete:\n%s", out)
	}
}

func TestDefaultThreadCounts(t *testing.T) {
	got := DefaultThreadCounts(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if got := DefaultThreadCounts(6); got[len(got)-1] != 6 {
		t.Fatalf("max thread count not included: %v", got)
	}
	if got := DefaultThreadCounts(0); len(got) == 0 {
		t.Fatal("empty sweep for default max")
	}
}

func TestWorkloadString(t *testing.T) {
	w := withRange(MixReadHeavy, 100)
	if s := w.String(); !strings.Contains(s, "25i-25d-50s") || !strings.Contains(s, "100") {
		t.Fatalf("unexpected workload string %q", s)
	}
}

func TestRunExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-panel experiment in -short mode")
	}
	results, err := RunExperiment(Experiment2, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("expected 6 panels, got %d", len(results))
	}
	for _, pr := range results {
		if len(pr.Errors) != 0 {
			t.Fatalf("panel %q errors: %v", pr.Panel.Title, pr.Errors)
		}
	}
}
