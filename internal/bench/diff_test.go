package bench

import (
	"strings"
	"testing"
)

func mkRow(title, scheme string, threads, shards, batch int, mops float64) JSONRow {
	return JSONRow{Title: title, Scheme: scheme, Threads: threads,
		Shards: shards, RetireBatch: batch, MopsPerSec: mops}
}

func mkReport(rows ...JSONRow) JSONReport {
	return JSONReport{Rows: rows, RowCount: len(rows)}
}

// mustDiff fails the test on a degenerate comparison; most cases construct
// well-formed report pairs.
func mustDiff(t *testing.T, base, cur JSONReport, opts DiffOptions) DiffResult {
	t.Helper()
	res, err := DiffReports(base, cur, opts)
	if err != nil {
		t.Fatalf("DiffReports: %v", err)
	}
	return res
}

func TestDiffNoRegressionOnUniformSlowdown(t *testing.T) {
	// A CI machine half the speed of the baseline machine: every cell's
	// ratio moves together, the median normalisation cancels it.
	base := mkReport(
		mkRow("p", "debra", 1, 0, 0, 10),
		mkRow("p", "debra", 2, 0, 0, 20),
		mkRow("p", "hp", 1, 0, 0, 6),
		mkRow("p", "hp", 2, 0, 0, 8),
	)
	cur := mkReport(
		mkRow("p", "debra", 1, 0, 0, 5),
		mkRow("p", "debra", 2, 0, 0, 10),
		mkRow("p", "hp", 1, 0, 0, 3),
		mkRow("p", "hp", 2, 0, 0, 4),
	)
	res := mustDiff(t, base, cur, DefaultDiffOptions())
	if res.Compared != 4 {
		t.Fatalf("Compared = %d want 4", res.Compared)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("uniform slowdown flagged as regression: %+v", res.Regressions)
	}
}

func TestDiffFlagsRelativeRegression(t *testing.T) {
	base := mkReport(
		mkRow("p", "debra", 1, 0, 0, 10),
		mkRow("p", "debra", 2, 0, 0, 20),
		mkRow("p", "ebr", 1, 0, 0, 10),
		mkRow("p", "hp", 1, 0, 0, 6),
		mkRow("p", "hp", 2, 0, 0, 8),
	)
	// ebr/1 collapses to a third while everything else holds.
	cur := mkReport(
		mkRow("p", "debra", 1, 0, 0, 10),
		mkRow("p", "debra", 2, 0, 0, 20),
		mkRow("p", "ebr", 1, 0, 0, 3.3),
		mkRow("p", "hp", 1, 0, 0, 6),
		mkRow("p", "hp", 2, 0, 0, 8),
	)
	res := mustDiff(t, base, cur, DefaultDiffOptions())
	if len(res.Regressions) != 1 {
		t.Fatalf("want exactly one regression, got %+v", res.Regressions)
	}
	if !strings.Contains(res.Regressions[0].Key, "ebr") {
		t.Fatalf("wrong cell flagged: %s", res.Regressions[0].Key)
	}
	out := RenderDiff(res, DefaultDiffOptions())
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("rendered diff lacks the regression line:\n%s", out)
	}
}

func TestDiffAbsoluteMode(t *testing.T) {
	base := mkReport(mkRow("p", "debra", 1, 0, 0, 10), mkRow("p", "hp", 1, 0, 0, 10))
	cur := mkReport(mkRow("p", "debra", 1, 0, 0, 6), mkRow("p", "hp", 1, 0, 0, 6))
	// Relative mode: both cells moved together, nothing flagged.
	if res := mustDiff(t, base, cur, DefaultDiffOptions()); len(res.Regressions) != 0 {
		t.Fatalf("relative mode flagged a uniform move: %+v", res.Regressions)
	}
	// Absolute mode: both dropped 40% > 30%.
	opts := DiffOptions{Threshold: 0.30, Absolute: true}
	if res := mustDiff(t, base, cur, opts); len(res.Regressions) != 2 {
		t.Fatalf("absolute mode missed the drops: %+v", res)
	}
}

func TestDiffShardAxisDistinguishesCells(t *testing.T) {
	// Same title/scheme/threads but different shard counts are different
	// cells and must not be cross-matched.
	base := mkReport(mkRow("p", "ebr", 2, 1, 0, 5), mkRow("p", "ebr", 2, 4, 0, 10))
	cur := mkReport(mkRow("p", "ebr", 2, 1, 0, 5), mkRow("p", "ebr", 2, 4, 0, 10))
	res := mustDiff(t, base, cur, DefaultDiffOptions())
	if res.Compared != 2 || len(res.Regressions) != 0 {
		t.Fatalf("shard-axis cells mismatched: %+v", res)
	}
}

func TestDiffAsyncAxisDistinguishesCells(t *testing.T) {
	// Same identity except the reclaimer-goroutine count: distinct cells.
	a := mkRow("p", "ebr", 2, 0, 256, 5)
	b := mkRow("p", "ebr", 2, 0, 256, 9)
	b.Reclaimers = 2
	res := mustDiff(t, mkReport(a, b), mkReport(a, b), DefaultDiffOptions())
	if res.Compared != 2 || len(res.Regressions) != 0 {
		t.Fatalf("async-axis cells mismatched: %+v", res)
	}
}

func TestDiffChurnAxisDistinguishesCells(t *testing.T) {
	// Same identity except the churn cadence: distinct cells.
	a := mkRow("p", "ebr", 2, 0, 256, 5)
	b := mkRow("p", "ebr", 2, 0, 256, 9)
	b.ChurnOps = 64
	res := mustDiff(t, mkReport(a, b), mkReport(a, b), DefaultDiffOptions())
	if res.Compared != 2 || len(res.Regressions) != 0 {
		t.Fatalf("churn-axis cells mismatched: %+v", res)
	}
}

func TestRenderChurnCosts(t *testing.T) {
	a := mkRow("p churn=64", "debra", 2, 0, 0, 5)
	a.ChurnOps, a.ChurnCycles, a.ChurnNsPerCycle = 64, 1000, 420
	b := a
	b.ChurnNsPerCycle = 840
	out := RenderChurnCosts(mkReport(a), mkReport(b))
	if !strings.Contains(out, "churn=64") || !strings.Contains(out, "2.00") {
		t.Fatalf("churn cost table missing cells or ratio:\n%s", out)
	}
	// Reports without churn rows produce no table at all.
	if out := RenderChurnCosts(mkReport(mkRow("p", "ebr", 1, 0, 0, 1)), mkReport()); out != "" {
		t.Fatalf("expected empty table, got:\n%s", out)
	}
}

func TestDiffMinMopsFloorAndMissing(t *testing.T) {
	base := mkReport(mkRow("p", "a", 1, 0, 0, 0.01), mkRow("p", "b", 1, 0, 0, 5), mkRow("p", "gone", 1, 0, 0, 5))
	cur := mkReport(mkRow("p", "a", 1, 0, 0, 0.001), mkRow("p", "b", 1, 0, 0, 5), mkRow("p", "new", 1, 0, 0, 5))
	res := mustDiff(t, base, cur, DefaultDiffOptions())
	if res.Skipped != 1 {
		t.Fatalf("Skipped = %d want 1 (the sub-floor cell)", res.Skipped)
	}
	if res.MissingInCurrent != 1 || res.MissingInBaseline != 1 {
		t.Fatalf("missing counts = %d/%d want 1/1", res.MissingInCurrent, res.MissingInBaseline)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("noise cell flagged: %+v", res.Regressions)
	}
}

func TestDiffEmptyIntersectionIsError(t *testing.T) {
	// Disjoint row identities (e.g. a baseline that predates a new bench
	// axis) must be a hard error, not a silent "no regressions" pass.
	base := mkReport(mkRow("old-panel", "debra", 1, 0, 0, 10))
	cur := mkReport(mkRow("new-panel", "debra", 1, 0, 0, 10))
	if _, err := DiffReports(base, cur, DefaultDiffOptions()); err == nil {
		t.Fatal("disjoint reports diffed without error")
	} else if !strings.Contains(err.Error(), "share no cells") {
		t.Fatalf("unhelpful error for disjoint reports: %v", err)
	}
}

func TestDiffAllSkippedIsError(t *testing.T) {
	// Every matched cell under the MinMops floor: the gate compared nothing
	// and must say so instead of passing.
	base := mkReport(mkRow("p", "a", 1, 0, 0, 0.01), mkRow("p", "b", 1, 0, 0, 0.02))
	cur := mkReport(mkRow("p", "a", 1, 0, 0, 0.01), mkRow("p", "b", 1, 0, 0, 0.02))
	if _, err := DiffReports(base, cur, DefaultDiffOptions()); err == nil {
		t.Fatal("all-skipped comparison passed silently")
	} else if !strings.Contains(err.Error(), "noise floor") {
		t.Fatalf("unhelpful error for all-skipped comparison: %v", err)
	}
}

func TestParseReportRejectsEmpty(t *testing.T) {
	if _, err := ParseReport([]byte(`{"rows":[],"row_count":0}`)); err == nil {
		t.Fatal("empty report accepted")
	}
	if _, err := ParseReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
