package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/raceenabled"
	"repro/internal/recordmgr"
)

func TestFaultPanels(t *testing.T) {
	opts := Options{Quick: true, MaxThreads: 4, Duration: 50 * time.Millisecond}
	panels := FaultPanels(opts)
	if len(panels) != len(FaultStallSweep)+1 {
		t.Fatalf("got %d panels, want %d probe panels + 1 chaos panel", len(panels), len(FaultStallSweep))
	}
	var chaos int
	for _, p := range panels {
		switch p.DataStructure {
		case DSFaultProbe:
			if p.StallThreads < 1 {
				t.Fatalf("probe panel %q has StallThreads=%d", p.Title, p.StallThreads)
			}
			for _, th := range p.Threads {
				if th <= p.StallThreads {
					t.Fatalf("probe panel %q has thread row %d <= StallThreads %d (no live worker)",
						p.Title, th, p.StallThreads)
				}
			}
			if !strings.Contains(p.Title, "stalls=") {
				t.Fatalf("probe panel title %q does not encode the stall axis", p.Title)
			}
		case DSService:
			chaos++
			if p.ChaosStallEvery == 0 || p.ChaosKillEvery == 0 {
				t.Fatalf("chaos panel %q has no chaos cadences", p.Title)
			}
			if !strings.Contains(p.Title, DSService+"-chaos") {
				t.Fatalf("chaos panel title %q is not marked chaos (diff-gate exclusion keys on it)", p.Title)
			}
		default:
			t.Fatalf("unexpected panel data structure %q", p.DataStructure)
		}
	}
	if chaos != 1 {
		t.Fatalf("got %d chaos service panels, want 1", chaos)
	}
}

func TestRunFaultProbeTrial(t *testing.T) {
	base := Config{
		DataStructure: DSFaultProbe,
		Threads:       4,
		StallThreads:  1,
		Duration:      50 * time.Millisecond,
		Workload:      Workload{InsertPct: 50, DeletePct: 50, KeyRange: 1},
		UsePool:       true,
		Seed:          1,
	}
	cases := []struct {
		scheme  string
		bounded bool
	}{
		{recordmgr.SchemeEBR, false},
		{recordmgr.SchemeHP, true},
		{recordmgr.SchemeDEBRAPlus, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme, func(t *testing.T) {
			if tc.scheme == recordmgr.SchemeDEBRAPlus && raceenabled.Enabled {
				t.Skip("DEBRA+ degrades to DEBRA under -race (neutralization disabled)")
			}
			cfg := base
			cfg.Scheme = tc.scheme
			res, err := RunTrial(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.FaultStalled != 1 {
				t.Fatalf("FaultStalled = %d, want 1", res.FaultStalled)
			}
			if res.FaultBounded != tc.bounded {
				t.Fatalf("%s bounded=%v (delta %.3f), want %v",
					tc.scheme, res.FaultBounded, res.FaultSlopeDelta, tc.bounded)
			}
			if res.Ops == 0 {
				t.Fatal("probe trial reported zero operations")
			}
		})
	}

	cfg := base
	cfg.Scheme = recordmgr.SchemeEBR
	cfg.Threads = 1
	if _, err := RunTrial(cfg); err == nil {
		t.Fatal("probe trial with no live worker (Threads == StallThreads) did not error")
	}
}

// TestDiffExcludesFaultRows: fault rows never enter the throughput gate —
// a probe cell or chaos cell collapsing (or appearing fresh) must not fail
// or skew the comparison — but they are counted and surfaced.
func TestDiffExcludesFaultRows(t *testing.T) {
	probeRow := func(mops float64) JSONRow {
		return JSONRow{Title: "faultprobe alloc-retire stalls=1", DataStructure: DSFaultProbe,
			Scheme: "ebr", Threads: 4, MopsPerSec: mops, StallThreads: 1, FaultClass: "unbounded"}
	}
	chaosRow := func(mops float64) JSONRow {
		return JSONRow{Title: "service-chaos parts=2 burst=64", DataStructure: DSService,
			Scheme: "ebr", Threads: 4, MopsPerSec: mops}
	}
	base := mkReport(
		mkRow("p", "debra", 1, 0, 0, 10),
		mkRow("p", "hp", 1, 0, 0, 10),
		probeRow(9),
		chaosRow(9),
	)
	cur := mkReport(
		mkRow("p", "debra", 1, 0, 0, 10),
		mkRow("p", "hp", 1, 0, 0, 10),
		probeRow(0.1), // collapsed 90x: would trip any gate if compared
		chaosRow(0.1),
	)
	res := mustDiff(t, base, cur, DefaultDiffOptions())
	if res.Compared != 2 {
		t.Fatalf("Compared = %d, want 2 (fault rows excluded)", res.Compared)
	}
	if res.FaultRows != 2 {
		t.Fatalf("FaultRows = %d, want 2", res.FaultRows)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("fault rows leaked into the gate: %+v", res.Regressions)
	}
	if res.MissingInBaseline != 0 || res.MissingInCurrent != 0 {
		t.Fatalf("fault rows counted as missing: %+v", res)
	}
	out := RenderDiff(res, DefaultDiffOptions())
	if !strings.Contains(out, "fault-injection cells excluded") {
		t.Fatalf("RenderDiff does not mention the exclusion:\n%s", out)
	}
}

func TestRenderFaults(t *testing.T) {
	base := mkReport(JSONRow{
		Title: "faultprobe alloc-retire stalls=1", DataStructure: DSFaultProbe,
		Scheme: "debra+", Threads: 4, StallThreads: 1, FaultClass: "bounded",
		UnreclaimedSlopeDelta: 0.1,
	})
	cur := mkReport(
		JSONRow{
			Title: "faultprobe alloc-retire stalls=1", DataStructure: DSFaultProbe,
			Scheme: "debra+", Threads: 4, StallThreads: 1, FaultClass: "unbounded",
			UnreclaimedSlopeDelta: 0.9, FaultMaxUnreclaimed: 9000,
		},
		JSONRow{
			Title: "service-chaos parts=2 burst=64", DataStructure: DSService,
			Scheme: "ebr", Threads: 4, Busy: 3, Retries: 7, Reconnects: 5, ChaosKills: 5,
		},
	)
	out := RenderFaults(base, cur)
	if !strings.Contains(out, "CLASSIFICATION CHANGED") {
		t.Fatalf("a bounded->unbounded flip is not flagged:\n%s", out)
	}
	if !strings.Contains(out, "chaos-mode KV service") || !strings.Contains(out, "3/7/5/0") {
		t.Fatalf("chaos counters not rendered:\n%s", out)
	}
	if RenderFaults(mkReport(mkRow("p", "hp", 1, 0, 0, 1)), mkReport(mkRow("p", "hp", 1, 0, 0, 1))) != "" {
		t.Fatal("RenderFaults emitted a table for reports with no fault rows")
	}
}
