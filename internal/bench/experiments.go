package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/recordmgr"
)

// Panel is one plot panel of the paper (one data structure, key range and
// operation mix): a table of throughput with one row per thread count and
// one column per reclamation scheme.
type Panel struct {
	// Figure identifies the paper artifact ("Figure 8 left", ...).
	Figure string
	// Title describes the panel ("BST range [0,1e6), 50i-50d").
	Title string
	// DataStructure, Workload, Allocator and UsePool are shared by every
	// cell of the panel.
	DataStructure string
	Workload      Workload
	Allocator     recordmgr.AllocatorKind
	UsePool       bool
	// Schemes are the columns; Threads are the rows.
	Schemes []string
	Threads []int
	// InitialBuckets pre-sizes the hash map's table (hashmap panels only;
	// 0 uses the package default and exercises incremental resizing).
	InitialBuckets int
	// Shards, Placement and RetireBatch configure the sharded reclamation
	// domains and deferred-retire batching of every cell in the panel.
	Shards      int
	Placement   string
	RetireBatch int
	// Reclaimers enables asynchronous reclamation for every cell of the
	// panel (0 = reclamation on the worker threads).
	Reclaimers int
	// ChurnOps makes every cell's workers cycle their thread slot
	// (release + acquire) every ChurnOps operations — goroutine churn over
	// the dynamic slot registry (0 = static binding).
	ChurnOps int
	// Partitions, ServiceBurst and ServiceDist configure service panels
	// (DataStructure == DSService); see the Config fields of the same names.
	// They are deliberately NOT part of the trend gate's row identity —
	// service panels encode them in the Title instead, keeping every
	// pre-service baseline row's key stable.
	Partitions   int
	ServiceBurst int
	ServiceDist  string
	// PipelineDepth configures the pipelined service panels (experiment 12);
	// see the Config field of the same name. Like the other service axes it is
	// deliberately NOT part of the trend gate's row identity — the pipeline
	// panels encode the depth in the Title instead, keeping every pre-pipeline
	// baseline row's key stable.
	PipelineDepth int
	// Phases, Adaptive and AdaptiveInterval configure the phase-changing
	// adaptive panels (experiment 10); see the Config fields of the same
	// names. Like the service axes they are NOT part of the trend gate's row
	// identity — the adaptive panels encode arm and phase schedule in the
	// Title, keeping every pre-adaptive baseline row's key stable.
	Phases           []Phase
	Adaptive         bool
	AdaptiveInterval time.Duration
	// StallThreads, ChaosStallEvery and ChaosKillEvery configure the fault
	// panels (experiment 11); see the Config fields of the same names. Like
	// the service axes they are NOT part of the trend gate's row identity —
	// the fault panels encode them in the Title, keeping every pre-fault
	// baseline row's key stable.
	StallThreads    int
	ChaosStallEvery int
	ChaosKillEvery  int
}

// PanelResult holds the measured cells of a panel.
type PanelResult struct {
	Panel   Panel
	Results map[string]map[int]Result // scheme -> threads -> result
	Errors  []error
}

// Options controls an experiment run.
type Options struct {
	// Duration of each trial.
	Duration time.Duration
	// MaxThreads bounds the thread sweep (default: 2 x NumCPU).
	MaxThreads int
	// Quick shrinks key ranges and the thread sweep so the whole suite runs
	// in seconds (used by tests and the default CLI invocation).
	Quick bool
	// Seed for workload generators.
	Seed int64
	// DataStructure selects the structure driven by MemoryExperiment
	// (default DSBST, the paper's configuration; DSHashMap is also
	// supported since it runs every scheme the experiment compares).
	DataStructure string
	// Shards, Placement, RetireBatch and Reclaimers apply the
	// sharded-domain, deferred-retire and async-reclamation knobs to every
	// trial of the run (the -shards, -placement, -retirebatch and
	// -reclaimers CLI flags). The sharding and async experiments sweep
	// their own axis and ignore the corresponding Options value.
	Shards      int
	Placement   string
	RetireBatch int
	Reclaimers  int
	// ChurnOps applies goroutine churn (slot release + acquire every
	// ChurnOps operations) to every trial (the -churn CLI flag); the churn
	// experiment sweeps its own axis and ignores this value.
	ChurnOps int
}

// DefaultOptions returns options that mirror the paper's setup (scaled to
// this machine) with a reduced per-trial duration.
func DefaultOptions() Options {
	return Options{Duration: 500 * time.Millisecond, Seed: 1}
}

// QuickOptions returns options for smoke runs and tests.
func QuickOptions() Options {
	return Options{Duration: 60 * time.Millisecond, MaxThreads: 4, Quick: true, Seed: 1}
}

// scaleRange shrinks a key range in quick mode.
func (o Options) scaleRange(r int64) int64 {
	if o.Quick && r > 1<<12 {
		return 1 << 12
	}
	return r
}

// threads returns the thread sweep for the options.
func (o Options) threads() []int {
	return DefaultThreadCounts(o.MaxThreads)
}

// mix returns a workload with the panel's key range applied.
func withRange(w Workload, keyRange int64) Workload {
	w.KeyRange = keyRange
	return w
}

// Experiment identifiers.
const (
	Experiment1 = 1 // reclamation overhead without reuse (Figure 8 left)
	Experiment2 = 2 // bump allocator + pool (Figure 8 right, Figure 9 left)
	Experiment3 = 3 // heap allocator + pool (Figure 10)
	// ExperimentHashMap is not a paper figure: it runs the lock-free hash
	// map — the module's proof that the Record Manager generalises beyond
	// the paper's own benchmarks — across all six schemes, several key
	// ranges and two table-sizing regimes.
	ExperimentHashMap = 4
	// ExperimentSharding is the sharded-domain / batched-retirement
	// ablation (beyond the paper): the update-heavy hash map panel repeated
	// over a sweep of shard counts and retire-batch sizes, so the scaling
	// effect of partitioning the reclamation domains is measurable per
	// scheme and thread count.
	ExperimentSharding = 5
	// ExperimentAsync is the asynchronous-reclamation ablation (beyond the
	// paper): the update-heavy hash map panel with all six schemes, async
	// off versus on at a sweep of reclaimer-goroutine counts, all at the
	// same full-block retire batch so the measured axis is purely where the
	// grace-period work runs — on the workers or behind them.
	ExperimentAsync = 6
	// ExperimentHotPath sweeps the Record Manager's per-operation microcosts
	// per scheme (beyond the paper): a pin/unpin probe (LeaveQstate +
	// EnterQstate through a thread handle) and an allocate/retire round-trip
	// probe (pin + Allocate + Retire + unpin). Every probe "operation" is one
	// primitive sequence, so a cell's Mops/s is the inverse of the per-op
	// constant that Hart et al.'s reclamation study shows dominates scheme
	// comparisons — the quantity the single-writer counters and thread
	// handles exist to shrink.
	ExperimentHotPath = 7
	// ExperimentChurn is the goroutine-churn ablation of the dynamic
	// thread-slot registry (beyond the paper): the update-heavy hash map
	// panel with the workers bound dynamically, releasing and re-acquiring
	// their thread slot every ChurnOps operations — so at throughput T the
	// trial performs T/ChurnOps acquire/release cycles per second per
	// worker — swept over all six schemes and two churn cadences. Cells
	// report throughput under churn plus the measured acquire+release
	// latency (churn_ns_per_cycle in the JSON), which is what a server
	// binding request goroutines to slots actually pays.
	ExperimentChurn = 8
)

// ChurnOpsSweep is the slot-cycle cadences ExperimentChurn covers: a hot
// cadence (every 64 operations) and a mild one. Fixed rather than
// machine-derived so smoke rows match across machines for the trend gate.
var ChurnOpsSweep = []int{64, 1024}

// AsyncReclaimerSweep is the reclaimer-goroutine counts ExperimentAsync
// covers (0 = the synchronous baseline). Fixed rather than machine-derived
// so smoke rows match across machines for the trend gate.
var AsyncReclaimerSweep = []int{0, 1, 2}

// ExperimentPanels returns the panels of the given experiment, mirroring the
// rows of Figures 8 and 10: BST with key ranges 10^6 and 10^4 and the skip
// list with key range 2*10^5, each under the 50i-50d and 25i-25d-50s mixes.
func ExperimentPanels(experiment int, opts Options) ([]Panel, error) {
	var alloc recordmgr.AllocatorKind
	var usePool bool
	var figure string
	switch experiment {
	case Experiment1:
		alloc, usePool, figure = recordmgr.AllocBump, false, "Figure 8 (left), Experiment 1"
	case Experiment2:
		alloc, usePool, figure = recordmgr.AllocBump, true, "Figure 8 (right) / Figure 9 (left), Experiment 2"
	case Experiment3:
		alloc, usePool, figure = recordmgr.AllocHeap, true, "Figure 10, Experiment 3"
	case ExperimentHashMap:
		return HashMapPanels(opts), nil
	case ExperimentSharding:
		return ShardingPanels(opts), nil
	case ExperimentAsync:
		return AsyncPanels(opts), nil
	case ExperimentHotPath:
		return HotPathPanels(opts), nil
	case ExperimentChurn:
		return ChurnPanels(opts), nil
	case ExperimentService:
		return ServicePanels(opts), nil
	case ExperimentAdaptive:
		return AdaptivePanels(opts), nil
	case ExperimentFaults:
		return FaultPanels(opts), nil
	case ExperimentPipeline:
		return PipelinePanels(opts), nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %d", experiment)
	}
	type shape struct {
		ds       string
		keyRange int64
	}
	shapes := []shape{
		{DSBST, 1_000_000},
		{DSBST, 10_000},
		{DSSkipList, 200_000},
	}
	mixes := []Workload{MixUpdateHeavy, MixReadHeavy}
	var panels []Panel
	for _, sh := range shapes {
		for _, mix := range mixes {
			w := withRange(mix, opts.scaleRange(sh.keyRange))
			panels = append(panels, Panel{
				Figure:        figure,
				Title:         fmt.Sprintf("%s range [0,%d) %di-%dd", sh.ds, w.KeyRange, w.InsertPct, w.DeletePct),
				DataStructure: sh.ds,
				Workload:      w,
				Allocator:     alloc,
				UsePool:       usePool,
				Schemes:       SupportedSchemes(sh.ds),
				Threads:       opts.threads(),
				Shards:        opts.Shards,
				Placement:     opts.Placement,
				RetireBatch:   opts.RetireBatch,
				Reclaimers:    opts.Reclaimers,
				ChurnOps:      opts.ChurnOps,
			})
		}
	}
	return panels, nil
}

// HashMapPanels returns the hash map panel family (beyond the paper): the
// update-heavy and read-heavy mixes over a large and a small key range with
// the table pre-sized to the expected population, plus a grow-from-default
// regime on the small range where incremental resizing (dummy splicing and
// table doubling) happens inside the measured phase. The grow regime skips
// the prefill: prefilling would grow the table to its final size before the
// clock starts, which is exactly the pre-sized regime again.
func HashMapPanels(opts Options) []Panel {
	const figure = "Hash map panels (beyond the paper), Experiment 4"
	type shape struct {
		keyRange int64
		presize  bool
		label    string
	}
	shapes := []shape{
		{1_000_000, true, "pre-sized"},
		{10_000, true, "pre-sized"},
		{10_000, false, "grow-from-default"},
	}
	mixes := []Workload{MixUpdateHeavy, MixReadHeavy}
	var panels []Panel
	for _, sh := range shapes {
		for _, mix := range mixes {
			w := withRange(mix, opts.scaleRange(sh.keyRange))
			initial := 0
			if sh.presize {
				// Half the key range is resident after prefill; size the
				// table for it at the default load factor.
				initial = int(w.KeyRange / 2 / hashmap.DefaultMaxLoad)
			} else {
				w.PrefillFraction = 0
			}
			panels = append(panels, Panel{
				Figure: figure,
				Title: fmt.Sprintf("%s range [0,%d) %di-%dd %s",
					DSHashMap, w.KeyRange, w.InsertPct, w.DeletePct, sh.label),
				DataStructure:  DSHashMap,
				Workload:       w,
				Allocator:      recordmgr.AllocBump,
				UsePool:        true,
				Schemes:        SupportedSchemes(DSHashMap),
				Threads:        opts.threads(),
				InitialBuckets: initial,
				Shards:         opts.Shards,
				Placement:      opts.Placement,
				RetireBatch:    opts.RetireBatch,
				Reclaimers:     opts.Reclaimers,
				ChurnOps:       opts.ChurnOps,
			})
		}
	}
	return panels
}

// ShardingSweep returns the shard counts swept by ExperimentSharding on this
// machine (see core.DefaultShardSweep).
func ShardingSweep() []int { return core.DefaultShardSweep() }

// ShardingPanels returns the sharded-domain / batched-retirement ablation:
// the update-heavy hash map panel (pre-sized table, so reclamation — not
// resizing — dominates) repeated for every (shards, retire batch) point of
// the sweep. Schemes with shared reclamation state (EBR, QSBR) are where
// sharding moves the needle; DEBRA and HP are included as the distributed
// baselines the paper's argument predicts to be insensitive.
func ShardingPanels(opts Options) []Panel {
	const figure = "Sharded domains x batched retirement (beyond the paper), Experiment 5"
	w := withRange(MixUpdateHeavy, opts.scaleRange(100_000))
	initial := int(w.KeyRange / 2 / hashmap.DefaultMaxLoad)
	schemes := []string{
		recordmgr.SchemeEBR, recordmgr.SchemeQSBR, recordmgr.SchemeDEBRA, recordmgr.SchemeHP,
	}
	batches := []int{0, blockbag.BlockSize}
	var panels []Panel
	for _, shards := range ShardingSweep() {
		for _, batch := range batches {
			panels = append(panels, Panel{
				Figure: figure,
				Title: fmt.Sprintf("%s range [0,%d) %di-%dd shards=%d batch=%d",
					DSHashMap, w.KeyRange, w.InsertPct, w.DeletePct, shards, batch),
				DataStructure:  DSHashMap,
				Workload:       w,
				Allocator:      recordmgr.AllocBump,
				UsePool:        true,
				Schemes:        schemes,
				Threads:        opts.threads(),
				InitialBuckets: initial,
				Shards:         shards,
				Placement:      opts.Placement,
				RetireBatch:    batch,
			})
		}
	}
	return panels
}

// AsyncPanels returns the asynchronous-reclamation ablation: the
// update-heavy hash map panel (pre-sized table, so reclamation dominates)
// for every reclaimer count of AsyncReclaimerSweep, across all six schemes.
// Every arm — the synchronous baseline included — uses the same full-block
// retire batch, so the sweep isolates where the grace-period wait and the
// free run (on the workers, or behind them) rather than re-measuring
// batching itself.
func AsyncPanels(opts Options) []Panel {
	const figure = "Async reclamation (beyond the paper), Experiment 6"
	w := withRange(MixUpdateHeavy, opts.scaleRange(100_000))
	initial := int(w.KeyRange / 2 / hashmap.DefaultMaxLoad)
	var panels []Panel
	for _, reclaimers := range AsyncReclaimerSweep {
		panels = append(panels, Panel{
			Figure: figure,
			Title: fmt.Sprintf("%s range [0,%d) %di-%dd async=%d",
				DSHashMap, w.KeyRange, w.InsertPct, w.DeletePct, reclaimers),
			DataStructure:  DSHashMap,
			Workload:       w,
			Allocator:      recordmgr.AllocBump,
			UsePool:        true,
			Schemes:        SupportedSchemes(DSHashMap),
			Threads:        opts.threads(),
			InitialBuckets: initial,
			Shards:         opts.Shards,
			Placement:      opts.Placement,
			RetireBatch:    blockbag.BlockSize,
			Reclaimers:     reclaimers,
			ChurnOps:       opts.ChurnOps,
		})
	}
	return panels
}

// HotPathPanels returns the per-op microcost probes of ExperimentHotPath:
// one panel per probe kind, all schemes as columns. The pin/unpin probe runs
// every scheme; the allocate/retire probe excludes the leaking baseline
// ("none" never frees, so an unbounded-allocation microbenchmark would
// measure the allocator's slab growth, not the scheme). Probes use the
// trial's sharding/batching/async knobs like every other experiment, so the
// microcosts are measured in the same configuration the hash map panels run.
func HotPathPanels(opts Options) []Panel {
	const figure = "Hot-path per-op microcosts (beyond the paper), Experiment 7"
	w := Workload{InsertPct: 100, DeletePct: 0, KeyRange: 1, PrefillFraction: 0}
	kinds := []struct {
		ds      string
		label   string
		schemes []string
	}{
		{DSHotPathPin, "pin/unpin", SupportedSchemes(DSHashMap)},
		{DSHotPathAlloc, "alloc+retire round-trip", []string{
			recordmgr.SchemeEBR, recordmgr.SchemeQSBR, recordmgr.SchemeDEBRA,
			recordmgr.SchemeDEBRAPlus, recordmgr.SchemeHP,
		}},
	}
	var panels []Panel
	for _, k := range kinds {
		panels = append(panels, Panel{
			Figure:        figure,
			Title:         fmt.Sprintf("%s %s", k.ds, k.label),
			DataStructure: k.ds,
			Workload:      w,
			Allocator:     recordmgr.AllocBump,
			UsePool:       true,
			Schemes:       k.schemes,
			Threads:       opts.threads(),
			Shards:        opts.Shards,
			Placement:     opts.Placement,
			RetireBatch:   opts.RetireBatch,
			Reclaimers:    opts.Reclaimers,
			ChurnOps:      opts.ChurnOps,
		})
	}
	return panels
}

// ChurnPanels returns the goroutine-churn ablation of the dynamic
// thread-slot registry: the update-heavy hash map panel (pre-sized table,
// so reclamation — not resizing — dominates) with dynamically bound workers
// cycling their slots, one panel per cadence of ChurnOpsSweep, across all
// six schemes. Slot capacity equals the thread count, so every release is
// followed by a genuine free-list round-trip; the epoch schemes' occupancy
// fast paths see the vacancy windows every cycle.
func ChurnPanels(opts Options) []Panel {
	const figure = "Goroutine churn over the slot registry (beyond the paper), Experiment 8"
	w := withRange(MixUpdateHeavy, opts.scaleRange(100_000))
	initial := int(w.KeyRange / 2 / hashmap.DefaultMaxLoad)
	var panels []Panel
	for _, churn := range ChurnOpsSweep {
		panels = append(panels, Panel{
			Figure: figure,
			Title: fmt.Sprintf("%s range [0,%d) %di-%dd churn=%d",
				DSHashMap, w.KeyRange, w.InsertPct, w.DeletePct, churn),
			DataStructure:  DSHashMap,
			Workload:       w,
			Allocator:      recordmgr.AllocBump,
			UsePool:        true,
			Schemes:        SupportedSchemes(DSHashMap),
			Threads:        opts.threads(),
			InitialBuckets: initial,
			Shards:         opts.Shards,
			Placement:      opts.Placement,
			RetireBatch:    opts.RetireBatch,
			Reclaimers:     opts.Reclaimers,
			ChurnOps:       churn,
		})
	}
	return panels
}

// RunPanel measures every cell of a panel.
func RunPanel(p Panel, opts Options) PanelResult {
	out := PanelResult{Panel: p, Results: map[string]map[int]Result{}}
	for _, scheme := range p.Schemes {
		out.Results[scheme] = map[int]Result{}
		for _, threads := range p.Threads {
			cfg := Config{
				DataStructure:    p.DataStructure,
				Scheme:           scheme,
				Threads:          threads,
				Duration:         opts.Duration,
				Workload:         p.Workload,
				Allocator:        p.Allocator,
				UsePool:          p.UsePool,
				Seed:             opts.Seed,
				InitialBuckets:   p.InitialBuckets,
				Shards:           p.Shards,
				Placement:        p.Placement,
				RetireBatch:      p.RetireBatch,
				Reclaimers:       p.Reclaimers,
				ChurnOps:         p.ChurnOps,
				Partitions:       p.Partitions,
				ServiceBurst:     p.ServiceBurst,
				ServiceDist:      p.ServiceDist,
				PipelineDepth:    p.PipelineDepth,
				Phases:           p.Phases,
				Adaptive:         p.Adaptive,
				AdaptiveInterval: p.AdaptiveInterval,
				StallThreads:     p.StallThreads,
				ChaosStallEvery:  p.ChaosStallEvery,
				ChaosKillEvery:   p.ChaosKillEvery,
			}
			res, err := runSafely(cfg)
			if err != nil {
				out.Errors = append(out.Errors, fmt.Errorf("%s/%s/%d threads: %w", p.Title, scheme, threads, err))
				continue
			}
			out.Results[scheme][threads] = res
		}
	}
	return out
}

// RunExperiment runs every panel of an experiment.
func RunExperiment(experiment int, opts Options) ([]PanelResult, error) {
	panels, err := ExperimentPanels(experiment, opts)
	if err != nil {
		return nil, err
	}
	var out []PanelResult
	for _, p := range panels {
		out = append(out, RunPanel(p, opts))
	}
	return out, nil
}

// MergeBestResults folds repeated sweeps of the same experiment list into
// one result set, keeping each cell's best-throughput run (the -repeat CLI
// flag). Sweep-level repetition — rerunning the whole sweep rather than
// each trial back-to-back — is deliberate: a noisy machine's slow episodes
// last seconds to minutes, so immediate repeats of one cell all land inside
// the same episode, while repeats a full sweep apart straddle it. Errors
// from every sweep are concatenated, so an intermittent trial failure still
// fails a gated run. The first sweep is mutated and returned.
func MergeBestResults(sweeps ...[]PanelResult) ([]PanelResult, error) {
	if len(sweeps) == 0 {
		return nil, fmt.Errorf("bench: no sweeps to merge")
	}
	out := sweeps[0]
	for _, sweep := range sweeps[1:] {
		if len(sweep) != len(out) {
			return nil, fmt.Errorf("bench: merging sweeps of different shapes: %d panels vs %d", len(sweep), len(out))
		}
		for i := range sweep {
			if sweep[i].Panel.Title != out[i].Panel.Title || sweep[i].Panel.Figure != out[i].Panel.Figure {
				return nil, fmt.Errorf("bench: merging sweeps of different shapes: panel %d is %q vs %q",
					i, sweep[i].Panel.Title, out[i].Panel.Title)
			}
			for scheme, byThreads := range sweep[i].Results {
				dst, ok := out[i].Results[scheme]
				if !ok {
					dst = map[int]Result{}
					out[i].Results[scheme] = dst
				}
				for threads, r := range byThreads {
					if cur, ok := dst[threads]; !ok || r.Throughput > cur.Throughput {
						dst[threads] = r
					}
				}
			}
			out[i].Errors = append(out[i].Errors, sweep[i].Errors...)
		}
	}
	return out, nil
}

// RenderThroughputTable renders a panel result as an aligned text table of
// millions of operations per second (the paper's y axis), one row per
// thread count and one column per scheme.
func RenderThroughputTable(pr PanelResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s  (Mops/s; allocator=%s pool=%v",
		pr.Panel.Figure, pr.Panel.Title, allocName(pr.Panel.Allocator), pr.Panel.UsePool)
	if pr.Panel.Shards > 1 || pr.Panel.RetireBatch > 0 {
		fmt.Fprintf(&sb, " shards=%d batch=%d", pr.Panel.Shards, pr.Panel.RetireBatch)
	}
	if pr.Panel.Reclaimers > 0 {
		fmt.Fprintf(&sb, " reclaimers=%d", pr.Panel.Reclaimers)
	}
	if pr.Panel.ChurnOps > 0 {
		fmt.Fprintf(&sb, " churn=%d", pr.Panel.ChurnOps)
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "%8s", "threads")
	for _, s := range pr.Panel.Schemes {
		fmt.Fprintf(&sb, "%12s", s)
	}
	sb.WriteByte('\n')
	for _, th := range pr.Panel.Threads {
		fmt.Fprintf(&sb, "%8d", th)
		for _, s := range pr.Panel.Schemes {
			if r, ok := pr.Results[s][th]; ok {
				fmt.Fprintf(&sb, "%12.3f", r.MopsPerSec)
			} else {
				fmt.Fprintf(&sb, "%12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	for _, err := range pr.Errors {
		fmt.Fprintf(&sb, "error: %v\n", err)
	}
	return sb.String()
}

// RenderCSV renders a panel result as CSV rows. The unreclaimed column is
// the true retired-but-not-freed count (limbo + deferred-retire buffers +
// async hand-off queues); limbo alone understates it under batching or async
// reclamation.
func RenderCSV(pr PanelResult, includeHeader bool) string {
	var sb strings.Builder
	if includeHeader {
		sb.WriteString("figure,title,scheme,threads,shards,retire_batch,reclaimers,churn_ops,mops,allocated_bytes,retired,freed,limbo,unreclaimed,neutralizations\n")
	}
	for _, s := range pr.Panel.Schemes {
		for _, th := range pr.Panel.Threads {
			r, ok := pr.Results[s][th]
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "%q,%q,%s,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d\n",
				pr.Panel.Figure, pr.Panel.Title, s, th, r.Config.Shards, r.Config.RetireBatch, r.Config.Reclaimers, r.Config.ChurnOps,
				r.MopsPerSec, r.AllocatedBytes,
				r.Reclaimer.Retired, r.Reclaimer.Freed, r.Reclaimer.Limbo, r.Unreclaimed, r.Reclaimer.Neutralizations)
		}
	}
	return sb.String()
}

func allocName(a recordmgr.AllocatorKind) string {
	if a == "" {
		return string(recordmgr.AllocBump)
	}
	return string(a)
}

// MemoryFootprintRow is one row of the Figure 9 (right) reproduction: the
// total memory allocated for records during an Experiment-2 style trial of
// the BST (key range 10^4, 50i-50d), per scheme, at a given thread count.
// Unreclaimed is the end-of-trial retired-but-not-freed record count
// (scheme limbo + deferred-retire buffers + async hand-off queues) — the
// reclamation component of the footprint; reporting scheme limbo alone
// understates it whenever batching or async hand-off is enabled.
type MemoryFootprintRow struct {
	Threads     int
	Bytes       map[string]int64
	Neut        map[string]int64
	Unreclaimed map[string]int64
}

// MemoryExperiment reproduces Figure 9 (right): it measures the memory
// allocated for records as the thread count grows past the number of
// hardware threads. DEBRA's footprint grows sharply once threads are
// preempted mid-operation; DEBRA+ neutralizes the preempted threads and
// keeps the footprint close to HP's.
func MemoryExperiment(opts Options) ([]MemoryFootprintRow, []string, error) {
	schemes := []string{recordmgr.SchemeDEBRA, recordmgr.SchemeDEBRAPlus, recordmgr.SchemeHP}
	keyRange := opts.scaleRange(10_000)
	ds := opts.DataStructure
	if ds == "" {
		ds = DSBST
	}
	switch ds {
	case DSBST, DSHashMap:
	default:
		// The experiment compares DEBRA, DEBRA+ and HP, so the structure
		// must support all three (the lock-based skip list cannot run the
		// neutralizing DEBRA+).
		return nil, nil, fmt.Errorf("bench: MemoryExperiment supports %s and %s, got %q", DSBST, DSHashMap, ds)
	}
	var rows []MemoryFootprintRow
	for _, threads := range opts.threads() {
		row := MemoryFootprintRow{
			Threads: threads,
			Bytes:   map[string]int64{}, Neut: map[string]int64{}, Unreclaimed: map[string]int64{},
		}
		for _, scheme := range schemes {
			cfg := Config{
				DataStructure: ds,
				Scheme:        scheme,
				Threads:       threads,
				Duration:      opts.Duration,
				Workload:      withRange(MixUpdateHeavy, keyRange),
				Allocator:     recordmgr.AllocBump,
				UsePool:       true,
				Seed:          opts.Seed,
				Shards:        opts.Shards,
				Placement:     opts.Placement,
				RetireBatch:   opts.RetireBatch,
				Reclaimers:    opts.Reclaimers,
				ChurnOps:      opts.ChurnOps,
			}
			res, err := runSafely(cfg)
			if err != nil {
				return nil, nil, err
			}
			row.Bytes[scheme] = res.AllocatedBytes
			row.Neut[scheme] = res.Reclaimer.Neutralizations
			row.Unreclaimed[scheme] = res.Unreclaimed
		}
		rows = append(rows, row)
	}
	return rows, schemes, nil
}

// RenderMemoryTable renders the Figure 9 (right) reproduction. ds names the
// data structure the rows were measured with ("" defaults to the paper's
// BST).
func RenderMemoryTable(rows []MemoryFootprintRow, schemes []string, ds string) string {
	if ds == "" {
		ds = DSBST
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9 (right): memory allocated for records (MB), %s range [0,1e4), 50i-50d\n", ds)
	fmt.Fprintf(&sb, "(unreclaimed = retired-but-not-freed records at the end of the trial:\n")
	fmt.Fprintf(&sb, " scheme limbo + deferred-retire buffers + async hand-off queues)\n")
	fmt.Fprintf(&sb, "%8s", "threads")
	for _, s := range schemes {
		fmt.Fprintf(&sb, "%12s", s)
	}
	for _, s := range schemes {
		fmt.Fprintf(&sb, "%14s", "unrec:"+s)
	}
	fmt.Fprintf(&sb, "%16s\n", "neutralizations")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%8d", row.Threads)
		for _, s := range schemes {
			fmt.Fprintf(&sb, "%12.2f", float64(row.Bytes[s])/(1<<20))
		}
		for _, s := range schemes {
			fmt.Fprintf(&sb, "%14d", row.Unreclaimed[s])
		}
		fmt.Fprintf(&sb, "%16d\n", row.Neut[recordmgr.SchemeDEBRAPlus])
	}
	return sb.String()
}

// Summary holds the headline comparisons the paper quotes in its abstract
// and conclusion, computed from an Experiment-2 style panel.
type Summary struct {
	// DebraVsNone is the mean throughput ratio DEBRA / None.
	DebraVsNone float64
	// DebraPlusVsNone is the mean ratio DEBRA+ / None.
	DebraPlusVsNone float64
	// DebraPlusVsDebra is the mean ratio DEBRA+ / DEBRA.
	DebraPlusVsDebra float64
	// DebraVsHP and DebraPlusVsHP are the mean ratios against hazard
	// pointers (the paper reports ~1.75x-1.8x).
	DebraVsHP     float64
	DebraPlusVsHP float64
	// Samples is the number of (panel, thread-count) cells aggregated.
	Samples int
}

// Summarize computes the headline ratios across a set of panel results.
func Summarize(results []PanelResult) Summary {
	var s Summary
	var rDebraNone, rPlusNone, rPlusDebra, rDebraHP, rPlusHP []float64
	for _, pr := range results {
		for _, th := range pr.Panel.Threads {
			none, okN := pr.Results[recordmgr.SchemeNone][th]
			debra, okD := pr.Results[recordmgr.SchemeDEBRA][th]
			plus, okP := pr.Results[recordmgr.SchemeDEBRAPlus][th]
			hpres, okH := pr.Results[recordmgr.SchemeHP][th]
			if okN && okD && none.MopsPerSec > 0 {
				rDebraNone = append(rDebraNone, debra.MopsPerSec/none.MopsPerSec)
			}
			if okN && okP && none.MopsPerSec > 0 {
				rPlusNone = append(rPlusNone, plus.MopsPerSec/none.MopsPerSec)
			}
			if okD && okP && debra.MopsPerSec > 0 {
				rPlusDebra = append(rPlusDebra, plus.MopsPerSec/debra.MopsPerSec)
			}
			if okD && okH && hpres.MopsPerSec > 0 {
				rDebraHP = append(rDebraHP, debra.MopsPerSec/hpres.MopsPerSec)
			}
			if okP && okH && hpres.MopsPerSec > 0 {
				rPlusHP = append(rPlusHP, plus.MopsPerSec/hpres.MopsPerSec)
			}
			s.Samples++
		}
	}
	s.DebraVsNone = mean(rDebraNone)
	s.DebraPlusVsNone = mean(rPlusNone)
	s.DebraPlusVsDebra = mean(rPlusDebra)
	s.DebraVsHP = mean(rDebraHP)
	s.DebraPlusVsHP = mean(rPlusHP)
	return s
}

// RenderSummary renders the headline comparison next to the paper's claims.
func RenderSummary(s Summary) string {
	var sb strings.Builder
	sb.WriteString("Headline comparisons (geometric expectations from the paper in parentheses)\n")
	fmt.Fprintf(&sb, "  DEBRA  vs None : %.2fx   (paper: ~0.92x-1.0x, i.e. 4-12%% overhead, sometimes faster)\n", s.DebraVsNone)
	fmt.Fprintf(&sb, "  DEBRA+ vs None : %.2fx   (paper: ~0.90x, i.e. ~10%% overhead)\n", s.DebraPlusVsNone)
	fmt.Fprintf(&sb, "  DEBRA+ vs DEBRA: %.2fx   (paper: ~0.975x, i.e. ~2.5%% overhead)\n", s.DebraPlusVsDebra)
	fmt.Fprintf(&sb, "  DEBRA  vs HP   : %.2fx   (paper: ~1.8x)\n", s.DebraVsHP)
	fmt.Fprintf(&sb, "  DEBRA+ vs HP   : %.2fx   (paper: ~1.75x)\n", s.DebraPlusVsHP)
	fmt.Fprintf(&sb, "  samples: %d\n", s.Samples)
	return sb.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SortedSchemes returns the schemes of a panel result in a stable order
// (helper for deterministic output in tests).
func SortedSchemes(pr PanelResult) []string {
	out := append([]string(nil), pr.Panel.Schemes...)
	sort.Strings(out)
	return out
}
