package bench

import (
	"encoding/json"
	"runtime"
)

// JSONRow is one measured cell of a panel in the machine-readable report
// consumed by the CI benchmark-smoke job (and any external trend tracking).
type JSONRow struct {
	Figure        string `json:"figure"`
	Title         string `json:"title"`
	DataStructure string `json:"data_structure"`
	Workload      string `json:"workload"`
	Allocator     string `json:"allocator"`
	UsePool       bool   `json:"use_pool"`
	Scheme        string `json:"scheme"`
	Threads       int    `json:"threads"`
	Shards        int    `json:"shards"`
	Placement     string `json:"placement,omitempty"`
	RetireBatch   int    `json:"retire_batch"`
	Reclaimers    int    `json:"reclaimers"`
	// ChurnOps is the goroutine-churn cadence: workers released and
	// re-acquired their thread slot every ChurnOps operations (0 = static
	// binding, the fixed-Threads configuration).
	ChurnOps   int     `json:"churn_ops"`
	Ops        int64   `json:"ops"`
	MopsPerSec float64 `json:"mops_per_sec"`
	// NsPerOp is the inverse throughput in nanoseconds per operation. For
	// the hotpath probe rows (experiment 7) this IS the per-op microcost of
	// the measured Record Manager primitive sequence; for data structure
	// rows it is the whole-operation latency at full concurrency.
	NsPerOp        float64 `json:"ns_per_op"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	AllocatedBytes int64   `json:"allocated_bytes"`
	AllocatedRecs  int64   `json:"allocated_records"`
	PoolReused     int64   `json:"pool_reused"`
	Retired        int64   `json:"retired"`
	Freed          int64   `json:"freed"`
	Limbo          int64   `json:"limbo"`
	RetirePending  int64   `json:"retire_pending"`
	HandoffPending int64   `json:"handoff_pending"`
	// Unreclaimed is the true retired-but-not-freed count at the end of the
	// trial (limbo + retire_pending + handoff_pending); limbo alone
	// understates memory held under batching or async reclamation.
	Unreclaimed    int64 `json:"unreclaimed"`
	Neutralization int64 `json:"neutralizations"`
	EpochAdvances  int64 `json:"epoch_advances"`
	Scans          int64 `json:"scans"`
	// ChurnCycles is the number of slot release+acquire cycles performed in
	// the timed phase; ChurnNsPerCycle is their mean latency (0 when the
	// trial ran with static binding).
	ChurnCycles     int64   `json:"churn_cycles,omitempty"`
	ChurnNsPerCycle float64 `json:"churn_ns_per_cycle,omitempty"`
	// P50Ns/P99Ns/P999Ns are request-latency quantiles of the service rows
	// (experiment 9), measured end-to-end over loopback TCP; 0 (omitted) for
	// every in-process experiment. The tail columns are the numbers
	// reclamation stalls move and Mops/s averages hide.
	P50Ns  int64 `json:"p50_ns,omitempty"`
	P99Ns  int64 `json:"p99_ns,omitempty"`
	P999Ns int64 `json:"p999_ns,omitempty"`
	// PipelineDepth marks a pipelined service row (experiment 12): the load
	// generator's in-flight window per connection, which is also the server's
	// frames-per-batch cap for the trial. Omitted for lockstep service rows
	// and every in-process experiment. AllocsPerOp is the trial's process-wide
	// heap allocations per completed request (MemStats.Mallocs delta over the
	// measured phase / ops) — server and in-process load generator combined,
	// an upper bound on the server's per-request allocations.
	PipelineDepth int     `json:"pipeline_depth,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
	// PhaseMops is the per-phase throughput of the phase-changing rows
	// (experiment 10), in phase order — the columns the adaptive-vs-static
	// comparison reads; omitted for single-phase trials.
	PhaseMops []float64 `json:"phase_mops,omitempty"`
	// TrajLive/TrajShards/TrajBatch/TrajReclaimers are the adaptive
	// controller's decision trajectory (parallel slices, downsampled): live
	// slot occupancy and the effective-shard / retire-batch /
	// active-reclaimer lever positions at each retained control step.
	// Omitted for non-adaptive rows. ControllerSteps and ControllerDecisions
	// count control periods and applied lever changes over the whole trial.
	TrajLive            []int `json:"traj_live,omitempty"`
	TrajShards          []int `json:"traj_shards,omitempty"`
	TrajBatch           []int `json:"traj_batch,omitempty"`
	TrajReclaimers      []int `json:"traj_reclaimers,omitempty"`
	ControllerSteps     int   `json:"controller_steps,omitempty"`
	ControllerDecisions int64 `json:"controller_decisions,omitempty"`
	// StallThreads marks a fault-probe row (experiment 11): how many threads
	// were parked while pinned during the stalled phase. The slope columns
	// are the probe's Unreclaimed growth per operation without and with the
	// stall; FaultClass is the classification from their delta ("bounded":
	// a stalled thread does not make unreclaimed memory grow with continued
	// operation; "unbounded": it does, as for the paper's EBR/QSBR/DEBRA).
	// All omitted for non-fault rows.
	StallThreads            int     `json:"stall_threads,omitempty"`
	FaultClass              string  `json:"fault_class,omitempty"`
	UnreclaimedSlopeBase    float64 `json:"unreclaimed_slope_base,omitempty"`
	UnreclaimedSlopeStalled float64 `json:"unreclaimed_slope_stalled,omitempty"`
	UnreclaimedSlopeDelta   float64 `json:"unreclaimed_slope_delta,omitempty"`
	FaultMaxUnreclaimed     int64   `json:"fault_max_unreclaimed,omitempty"`
	// Busy/Retries/Reconnects/GaveUp are the load generator's resilience
	// counters of a service row (ERR_BUSY fast-fails absorbed, retry
	// attempts, successful re-dials, connections that exhausted their
	// retries); ChaosStalls and ChaosKills count the chaos injections of a
	// chaos-mode row. All omitted when zero.
	Busy        int64 `json:"busy,omitempty"`
	Retries     int64 `json:"retries,omitempty"`
	Reconnects  int64 `json:"reconnects,omitempty"`
	GaveUp      int64 `json:"gave_up,omitempty"`
	ChaosStalls int64 `json:"chaos_stalls,omitempty"`
	ChaosKills  int64 `json:"chaos_kills,omitempty"`
}

// JSONReport is the top-level machine-readable result document.
type JSONReport struct {
	GOOS     string    `json:"goos"`
	GOARCH   string    `json:"goarch"`
	NumCPU   int       `json:"num_cpu"`
	Rows     []JSONRow `json:"rows"`
	Errors   []string  `json:"errors,omitempty"`
	RowCount int       `json:"row_count"`
}

// BuildJSONReport flattens panel results into a JSONReport.
func BuildJSONReport(results []PanelResult) JSONReport {
	rep := JSONReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, pr := range results {
		for _, scheme := range pr.Panel.Schemes {
			for _, threads := range pr.Panel.Threads {
				r, ok := pr.Results[scheme][threads]
				if !ok {
					continue
				}
				nsPerOp := 0.0
				if r.MopsPerSec > 0 {
					nsPerOp = 1e3 / r.MopsPerSec
				}
				churnNsPerCycle := 0.0
				if r.ChurnCycles > 0 {
					churnNsPerCycle = float64(r.ChurnNs) / float64(r.ChurnCycles)
				}
				faultClass := ""
				if r.Config.DataStructure == DSFaultProbe {
					faultClass = "unbounded"
					if r.FaultBounded {
						faultClass = "bounded"
					}
				}
				rep.Rows = append(rep.Rows, JSONRow{
					Figure:                  pr.Panel.Figure,
					Title:                   pr.Panel.Title,
					DataStructure:           pr.Panel.DataStructure,
					Workload:                pr.Panel.Workload.String(),
					Allocator:               allocName(pr.Panel.Allocator),
					UsePool:                 pr.Panel.UsePool,
					Scheme:                  scheme,
					Threads:                 threads,
					Shards:                  r.Config.Shards,
					Placement:               r.Config.Placement,
					RetireBatch:             r.Config.RetireBatch,
					Reclaimers:              r.Config.Reclaimers,
					ChurnOps:                r.Config.ChurnOps,
					Ops:                     r.Ops,
					MopsPerSec:              r.MopsPerSec,
					NsPerOp:                 nsPerOp,
					ElapsedSeconds:          r.Elapsed.Seconds(),
					AllocatedBytes:          r.AllocatedBytes,
					AllocatedRecs:           r.AllocatedRecords,
					PoolReused:              r.PoolReused,
					Retired:                 r.Reclaimer.Retired,
					Freed:                   r.Reclaimer.Freed,
					Limbo:                   r.Reclaimer.Limbo,
					RetirePending:           r.RetirePending,
					HandoffPending:          r.HandoffPending,
					Unreclaimed:             r.Unreclaimed,
					Neutralization:          r.Reclaimer.Neutralizations,
					EpochAdvances:           r.Reclaimer.EpochAdvances,
					Scans:                   r.Reclaimer.Scans,
					ChurnCycles:             r.ChurnCycles,
					ChurnNsPerCycle:         churnNsPerCycle,
					P50Ns:                   r.P50Ns,
					P99Ns:                   r.P99Ns,
					P999Ns:                  r.P999Ns,
					PipelineDepth:           r.Config.PipelineDepth,
					AllocsPerOp:             r.AllocsPerOp,
					PhaseMops:               r.PhaseMops,
					TrajLive:                r.TrajLive,
					TrajShards:              r.TrajShards,
					TrajBatch:               r.TrajBatch,
					TrajReclaimers:          r.TrajReclaimers,
					ControllerSteps:         r.ControllerSteps,
					ControllerDecisions:     r.ControllerDecisions,
					StallThreads:            r.FaultStalled,
					FaultClass:              faultClass,
					UnreclaimedSlopeBase:    r.FaultBaselineSlope,
					UnreclaimedSlopeStalled: r.FaultStalledSlope,
					UnreclaimedSlopeDelta:   r.FaultSlopeDelta,
					FaultMaxUnreclaimed:     r.FaultMaxUnreclaimed,
					Busy:                    r.ServiceBusy,
					Retries:                 r.ServiceRetries,
					Reconnects:              r.ServiceReconnects,
					GaveUp:                  r.ServiceGaveUp,
					ChaosStalls:             r.ChaosStalls,
					ChaosKills:              r.ChaosKills,
				})
			}
		}
		for _, err := range pr.Errors {
			rep.Errors = append(rep.Errors, err.Error())
		}
	}
	rep.RowCount = len(rep.Rows)
	return rep
}

// Render renders the report as an indented JSON document.
func (r JSONReport) Render() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// RenderJSON renders panel results as an indented JSON document.
func RenderJSON(results []PanelResult) (string, error) {
	return BuildJSONReport(results).Render()
}
