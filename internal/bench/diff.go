package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file implements the bench trend gate: comparing a fresh bench-smoke
// JSON report against a committed baseline (BENCH_baseline.json) and failing
// on throughput regressions. CI machines differ wildly in absolute speed, so
// the default comparison is RELATIVE: each cell's current/baseline ratio is
// normalised by the median ratio across all matched cells, cancelling the
// machine-speed factor. A cell whose normalised ratio drops below
// 1-Threshold regressed relative to the rest of the suite — which is what a
// code-level regression looks like (one scheme/configuration got slower),
// while a uniformly slower machine moves every ratio together and trips
// nothing. Absolute mode is available for same-machine comparisons.

// DiffOptions tunes DiffReports.
type DiffOptions struct {
	// Threshold is the fractional throughput drop that fails (0.30 = 30%).
	Threshold float64
	// MinMops ignores cells whose baseline throughput is below this floor
	// (tiny cells are noise-dominated in 30ms smoke trials).
	MinMops float64
	// Absolute compares raw Mops/s instead of median-normalised ratios.
	Absolute bool
}

// DefaultDiffOptions returns the CI gate configuration.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{Threshold: 0.30, MinMops: 0.05}
}

// DiffCell is one matched (baseline, current) measurement.
type DiffCell struct {
	Key      string  // title/scheme/threads/shards/batch identity
	Baseline float64 // baseline Mops/s
	Current  float64 // current Mops/s
	Ratio    float64 // current / baseline
	Norm     float64 // Ratio / median ratio (== Ratio in absolute mode)
}

// DiffResult is the outcome of comparing two reports.
type DiffResult struct {
	Compared          int
	Skipped           int // cells under the MinMops floor
	FaultRows         int // fault-injection cells excluded from the gate
	MissingInCurrent  int
	MissingInBaseline int
	MedianRatio       float64
	Regressions       []DiffCell
	Improvements      []DiffCell // informational: cells past the threshold upward
}

// rowKey identifies a cell across runs. The title already encodes the data
// structure, key range, mix and table regime; scheme, threads and the
// sharding/placement/batching/async/churn axes complete the identity.
// (Baselines recorded before an axis existed decode its value as 0 — the
// configuration they actually measured — but adding an axis changes every
// key, so the committed baseline must be regenerated with make
// bench-baseline when one lands, which the degenerate-comparison error
// below enforces loudly.)
func rowKey(r JSONRow) string {
	return fmt.Sprintf("%s | %s | threads=%d shards=%d/%s batch=%d async=%d churn=%d",
		r.Title, r.Scheme, r.Threads, r.Shards, r.Placement, r.RetireBatch, r.Reclaimers, r.ChurnOps)
}

// faultRow reports whether a row belongs to the fault-injection experiment
// (11): the stalled-thread probe rows and the chaos-mode service rows. Fault
// rows are excluded from the throughput trend gate — a probe's op count is
// fixed rather than duration-scaled and a chaos run's throughput depends on
// how much chaos the schedule dealt it — but RenderFaults still reports
// them. Identification is by row identity (data structure / title), not by
// the chaos counters, so both sides of a diff filter identically even when a
// run's chaos schedule happened to inject nothing.
func faultRow(r JSONRow) bool {
	return r.DataStructure == DSFaultProbe || strings.Contains(r.Title, DSService+"-chaos")
}

// ParseReport decodes a JSON report produced by reclaimbench -json.
func ParseReport(data []byte) (JSONReport, error) {
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parsing report: %w", err)
	}
	if rep.RowCount == 0 || len(rep.Rows) == 0 {
		return rep, fmt.Errorf("bench: report contains no rows")
	}
	return rep, nil
}

// DiffReports compares current against baseline. Degenerate comparisons are
// hard errors rather than silent passes: a gate that matched zero cells
// (disjoint row identities — typically a baseline that predates a new bench
// axis) or skipped every matched cell (all below the MinMops noise floor)
// has verified nothing, and letting it return "no regressions" would archive
// a green artifact on top of a broken comparison.
func DiffReports(baseline, current JSONReport, opts DiffOptions) (DiffResult, error) {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultDiffOptions().Threshold
	}
	var res DiffResult
	base := map[string]JSONRow{}
	for _, r := range baseline.Rows {
		if faultRow(r) {
			continue
		}
		base[rowKey(r)] = r
	}
	cur := map[string]JSONRow{}
	for _, r := range current.Rows {
		if faultRow(r) {
			res.FaultRows++
			continue
		}
		cur[rowKey(r)] = r
	}

	for k := range base {
		if _, ok := cur[k]; !ok {
			res.MissingInCurrent++
		}
	}
	var cells []DiffCell
	var ratios []float64
	matched := 0
	for k, c := range cur {
		b, ok := base[k]
		if !ok {
			res.MissingInBaseline++
			continue
		}
		matched++
		if b.MopsPerSec < opts.MinMops || b.MopsPerSec == 0 {
			res.Skipped++
			continue
		}
		cell := DiffCell{Key: k, Baseline: b.MopsPerSec, Current: c.MopsPerSec}
		cell.Ratio = c.MopsPerSec / b.MopsPerSec
		cells = append(cells, cell)
		ratios = append(ratios, cell.Ratio)
	}
	res.Compared = len(cells)
	if matched == 0 {
		return res, fmt.Errorf("bench: baseline and current share no cells (%d baseline rows, %d current rows, 0 matching identities) — the baseline likely predates a bench-axis change; refresh it with make bench-baseline",
			len(baseline.Rows), len(current.Rows))
	}
	if res.Compared == 0 {
		return res, fmt.Errorf("bench: all %d matched cells fall below the %.2f Mops/s noise floor — nothing was actually compared; lower -min-mops or lengthen the trials",
			res.Skipped, opts.MinMops)
	}
	res.MedianRatio = median(ratios)
	norm := res.MedianRatio
	if opts.Absolute || norm <= 0 {
		norm = 1
	}
	for i := range cells {
		cells[i].Norm = cells[i].Ratio / norm
		switch {
		case cells[i].Norm < 1-opts.Threshold:
			res.Regressions = append(res.Regressions, cells[i])
		case cells[i].Norm > 1+opts.Threshold:
			res.Improvements = append(res.Improvements, cells[i])
		}
	}
	sort.Slice(res.Regressions, func(i, j int) bool { return res.Regressions[i].Norm < res.Regressions[j].Norm })
	sort.Slice(res.Improvements, func(i, j int) bool { return res.Improvements[i].Norm > res.Improvements[j].Norm })
	return res, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// RenderMicrocosts renders the per-op microcost columns of the hotpath probe
// rows (experiment 7) from both reports: scheme, threads, probe kind,
// baseline and current ns/op, and the ratio. Rows missing from one side
// print a dash; reports recorded before the hotpath experiment existed
// simply produce no table.
func RenderMicrocosts(baseline, current JSONReport) string {
	type cell struct{ base, cur float64 }
	cells := map[string]*cell{}
	var keys []string
	get := func(r JSONRow) *cell {
		k := rowKey(r)
		c, ok := cells[k]
		if !ok {
			c = &cell{}
			cells[k] = c
			keys = append(keys, k)
		}
		return c
	}
	nsOf := func(r JSONRow) float64 {
		if r.NsPerOp > 0 {
			return r.NsPerOp
		}
		if r.MopsPerSec > 0 {
			return 1e3 / r.MopsPerSec
		}
		return 0
	}
	for _, r := range baseline.Rows {
		if strings.HasPrefix(r.DataStructure, "hotpath:") {
			get(r).base = nsOf(r)
		}
	}
	for _, r := range current.Rows {
		if strings.HasPrefix(r.DataStructure, "hotpath:") {
			get(r).cur = nsOf(r)
		}
	}
	if len(cells) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("hot-path per-op microcosts (experiment 7):\n")
	fmt.Fprintf(&sb, "  %-72s %12s %12s %8s\n", "probe", "base ns/op", "cur ns/op", "ratio")
	for _, k := range keys {
		c := cells[k]
		base, cur, ratio := "-", "-", "-"
		if c.base > 0 {
			base = fmt.Sprintf("%.1f", c.base)
		}
		if c.cur > 0 {
			cur = fmt.Sprintf("%.1f", c.cur)
		}
		if c.base > 0 && c.cur > 0 {
			ratio = fmt.Sprintf("%.2f", c.cur/c.base)
		}
		fmt.Fprintf(&sb, "  %-72s %12s %12s %8s\n", k, base, cur, ratio)
	}
	return sb.String()
}

// RenderChurnCosts renders the acquire/release latency columns of the
// goroutine-churn rows (experiment 8) from both reports: cell identity,
// baseline and current ns per release+acquire cycle, and the ratio. Rows
// missing from one side print a dash; reports recorded before the churn
// experiment existed simply produce no table.
func RenderChurnCosts(baseline, current JSONReport) string {
	type cell struct{ base, cur float64 }
	cells := map[string]*cell{}
	var keys []string
	get := func(r JSONRow) *cell {
		k := rowKey(r)
		c, ok := cells[k]
		if !ok {
			c = &cell{}
			cells[k] = c
			keys = append(keys, k)
		}
		return c
	}
	for _, r := range baseline.Rows {
		if r.ChurnOps > 0 && r.ChurnNsPerCycle > 0 {
			get(r).base = r.ChurnNsPerCycle
		}
	}
	for _, r := range current.Rows {
		if r.ChurnOps > 0 && r.ChurnNsPerCycle > 0 {
			get(r).cur = r.ChurnNsPerCycle
		}
	}
	if len(cells) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("slot acquire/release latency under churn (experiment 8):\n")
	fmt.Fprintf(&sb, "  %-72s %14s %14s %8s\n", "cell", "base ns/cycle", "cur ns/cycle", "ratio")
	for _, k := range keys {
		c := cells[k]
		base, cur, ratio := "-", "-", "-"
		if c.base > 0 {
			base = fmt.Sprintf("%.0f", c.base)
		}
		if c.cur > 0 {
			cur = fmt.Sprintf("%.0f", c.cur)
		}
		if c.base > 0 && c.cur > 0 {
			ratio = fmt.Sprintf("%.2f", c.cur/c.base)
		}
		fmt.Fprintf(&sb, "  %-72s %14s %14s %8s\n", k, base, cur, ratio)
	}
	return sb.String()
}

// RenderServiceLatencies renders the latency-quantile columns of the KV
// service rows (experiment 9) from both reports: cell identity, baseline and
// current p50/p99/p999 in microseconds, and the p99 ratio. Latencies are
// informational alongside the Mops/s gate — wall-clock quantiles over
// loopback TCP are too machine-dependent for a hard threshold, but the trend
// is exactly where a reclamation stall would surface. Rows missing from one
// side print a dash; reports recorded before the service experiment existed
// simply produce no table.
func RenderServiceLatencies(baseline, current JSONReport) string {
	type cell struct{ base, cur JSONRow }
	cells := map[string]*cell{}
	var keys []string
	get := func(r JSONRow) *cell {
		k := rowKey(r)
		c, ok := cells[k]
		if !ok {
			c = &cell{}
			cells[k] = c
			keys = append(keys, k)
		}
		return c
	}
	for _, r := range baseline.Rows {
		if r.DataStructure == DSService && r.P99Ns > 0 {
			get(r).base = r
		}
	}
	for _, r := range current.Rows {
		if r.DataStructure == DSService && r.P99Ns > 0 {
			get(r).cur = r
		}
	}
	if len(cells) == 0 {
		return ""
	}
	sort.Strings(keys)
	us := func(ns int64) string {
		if ns <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(ns)/1e3)
	}
	var sb strings.Builder
	sb.WriteString("KV service latency quantiles, microseconds (experiment 9):\n")
	fmt.Fprintf(&sb, "  %-88s %21s %21s %9s\n", "cell", "base p50/p99/p999", "cur p50/p99/p999", "p99 ratio")
	for _, k := range keys {
		c := cells[k]
		base := fmt.Sprintf("%s/%s/%s", us(c.base.P50Ns), us(c.base.P99Ns), us(c.base.P999Ns))
		cur := fmt.Sprintf("%s/%s/%s", us(c.cur.P50Ns), us(c.cur.P99Ns), us(c.cur.P999Ns))
		ratio := "-"
		if c.base.P99Ns > 0 && c.cur.P99Ns > 0 {
			ratio = fmt.Sprintf("%.2f", float64(c.cur.P99Ns)/float64(c.base.P99Ns))
		}
		fmt.Fprintf(&sb, "  %-88s %21s %21s %9s\n", k, base, cur, ratio)
	}
	return sb.String()
}

// RenderPipeline renders the pipelined KV service rows (experiment 12) from
// both reports: cell identity (the Title carries the pipeline depth),
// baseline and current Mops/s with their ratio, and the current process-wide
// allocations per request. The depth sweep shares the trend gate with every
// other row — this table adds the two columns the gate does not compare: the
// batching amortisation visible across the depths of one scheme, and the
// allocs/op figure the zero-alloc request path is supposed to hold near zero.
// Rows missing from one side print a dash; reports recorded before the
// pipeline experiment existed simply produce no table.
func RenderPipeline(baseline, current JSONReport) string {
	type cell struct{ base, cur JSONRow }
	cells := map[string]*cell{}
	var keys []string
	get := func(r JSONRow) *cell {
		k := rowKey(r)
		c, ok := cells[k]
		if !ok {
			c = &cell{}
			cells[k] = c
			keys = append(keys, k)
		}
		return c
	}
	for _, r := range baseline.Rows {
		if r.PipelineDepth > 0 {
			get(r).base = r
		}
	}
	for _, r := range current.Rows {
		if r.PipelineDepth > 0 {
			get(r).cur = r
		}
	}
	if len(cells) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("pipelined KV service throughput and allocations (experiment 12):\n")
	fmt.Fprintf(&sb, "  %-96s %10s %10s %8s %12s\n", "cell", "base Mops", "cur Mops", "ratio", "cur allocs/op")
	for _, k := range keys {
		c := cells[k]
		base, cur, ratio, allocs := "-", "-", "-", "-"
		if c.base.MopsPerSec > 0 {
			base = fmt.Sprintf("%.3f", c.base.MopsPerSec)
		}
		if c.cur.MopsPerSec > 0 {
			cur = fmt.Sprintf("%.3f", c.cur.MopsPerSec)
		}
		if c.base.MopsPerSec > 0 && c.cur.MopsPerSec > 0 {
			ratio = fmt.Sprintf("%.2f", c.cur.MopsPerSec/c.base.MopsPerSec)
		}
		if c.cur.Title != "" {
			allocs = fmt.Sprintf("%.2f", c.cur.AllocsPerOp)
		}
		fmt.Fprintf(&sb, "  %-96s %10s %10s %8s %12s\n", k, base, cur, ratio, allocs)
	}
	return sb.String()
}

// RenderAdaptiveTrajectories renders the phase-changing rows of the
// self-tuning runtime experiment (experiment 10) from both reports: cell
// identity, baseline and current per-phase Mops/s, and — for adaptive rows —
// what the controller actually did: the range each lever (effective shards,
// retire batch, active reclaimers) travelled over the trial and the number of
// applied decisions. The per-phase columns are where the adaptive-vs-static
// comparison lives (the blended Mops/s hides the lull); the lever ranges make
// a controller that sat still (decisions=0, every range flat) visible at a
// glance. Rows missing from one side print a dash; reports recorded before
// the adaptive experiment existed simply produce no table.
func RenderAdaptiveTrajectories(baseline, current JSONReport) string {
	type cell struct{ base, cur JSONRow }
	cells := map[string]*cell{}
	var keys []string
	get := func(r JSONRow) *cell {
		k := rowKey(r)
		c, ok := cells[k]
		if !ok {
			c = &cell{}
			cells[k] = c
			keys = append(keys, k)
		}
		return c
	}
	for _, r := range baseline.Rows {
		if len(r.PhaseMops) > 0 {
			get(r).base = r
		}
	}
	for _, r := range current.Rows {
		if len(r.PhaseMops) > 0 {
			get(r).cur = r
		}
	}
	if len(cells) == 0 {
		return ""
	}
	sort.Strings(keys)
	phases := func(r JSONRow) string {
		if len(r.PhaseMops) == 0 {
			return "-"
		}
		parts := make([]string, len(r.PhaseMops))
		for i, m := range r.PhaseMops {
			parts[i] = fmt.Sprintf("%.2f", m)
		}
		return strings.Join(parts, "/")
	}
	span := func(xs []int) string {
		if len(xs) == 0 {
			return "-"
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if lo == hi {
			return fmt.Sprintf("%d", lo)
		}
		return fmt.Sprintf("%d..%d", lo, hi)
	}
	var sb strings.Builder
	sb.WriteString("self-tuning runtime, per-phase Mops/s and controller levers (experiment 10):\n")
	fmt.Fprintf(&sb, "  %-88s %18s %18s %-26s\n", "cell", "base per-phase", "cur per-phase", "cur levers shards/batch/recl")
	for _, k := range keys {
		c := cells[k]
		levers := "-"
		if c.cur.ControllerSteps > 0 {
			levers = fmt.Sprintf("%s/%s/%s (%d decisions)",
				span(c.cur.TrajShards), span(c.cur.TrajBatch), span(c.cur.TrajReclaimers), c.cur.ControllerDecisions)
		}
		fmt.Fprintf(&sb, "  %-88s %18s %18s %-26s\n", k, phases(c.base), phases(c.cur), levers)
	}
	return sb.String()
}

// RenderFaults renders the fault-injection rows (experiment 11) from both
// reports. Probe rows show the bounded/unbounded classification and the
// stall-induced Unreclaimed growth slope next to the baseline run's — the
// robustness claim itself (one stalled thread: DEBRA+/HP bounded, EBR/QSBR/
// DEBRA unbounded) rendered as data. Chaos service rows show the resilience
// counters: ERR_BUSY fast-fails absorbed, retries, reconnects, give-ups and
// the chaos injections that provoked them. Both are informational (fault
// rows are excluded from the throughput gate); a probe row whose
// classification CHANGED between baseline and current is flagged, since that
// is a robustness regression no throughput gate would see. Reports recorded
// before the fault experiment existed simply produce no table.
func RenderFaults(baseline, current JSONReport) string {
	type cell struct{ base, cur JSONRow }
	collect := func(keep func(JSONRow) bool) (map[string]*cell, []string) {
		cells := map[string]*cell{}
		var keys []string
		get := func(r JSONRow) *cell {
			k := rowKey(r)
			c, ok := cells[k]
			if !ok {
				c = &cell{}
				cells[k] = c
				keys = append(keys, k)
			}
			return c
		}
		for _, r := range baseline.Rows {
			if keep(r) {
				get(r).base = r
			}
		}
		for _, r := range current.Rows {
			if keep(r) {
				get(r).cur = r
			}
		}
		sort.Strings(keys)
		return cells, keys
	}
	var sb strings.Builder
	probeCells, probeKeys := collect(func(r JSONRow) bool { return r.DataStructure == DSFaultProbe })
	if len(probeKeys) > 0 {
		sb.WriteString("stalled-thread unreclaimed growth (experiment 11):\n")
		fmt.Fprintf(&sb, "  %-72s %-10s %-10s %14s %14s\n", "cell", "base", "cur", "cur slope", "cur max unrecl")
		for _, k := range probeKeys {
			c := probeCells[k]
			class := func(r JSONRow) string {
				if r.FaultClass == "" {
					return "-"
				}
				return r.FaultClass
			}
			flag := ""
			if c.base.FaultClass != "" && c.cur.FaultClass != "" && c.base.FaultClass != c.cur.FaultClass {
				flag = "  <-- CLASSIFICATION CHANGED"
			}
			slope := "-"
			if c.cur.FaultClass != "" {
				slope = fmt.Sprintf("%+.3f/op", c.cur.UnreclaimedSlopeDelta)
			}
			fmt.Fprintf(&sb, "  %-72s %-10s %-10s %14s %14d%s\n",
				k, class(c.base), class(c.cur), slope, c.cur.FaultMaxUnreclaimed, flag)
		}
	}
	chaosCells, chaosKeys := collect(func(r JSONRow) bool {
		return r.DataStructure == DSService && strings.Contains(r.Title, DSService+"-chaos")
	})
	if len(chaosKeys) > 0 {
		if sb.Len() > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString("chaos-mode KV service resilience counters (experiment 11):\n")
		fmt.Fprintf(&sb, "  %-88s %28s %16s\n", "cell", "cur busy/retry/reconn/gaveup", "cur stalls/kills")
		for _, k := range chaosKeys {
			c := chaosCells[k]
			counters, chaos := "-", "-"
			if c.cur.Title != "" {
				counters = fmt.Sprintf("%d/%d/%d/%d", c.cur.Busy, c.cur.Retries, c.cur.Reconnects, c.cur.GaveUp)
				chaos = fmt.Sprintf("%d/%d", c.cur.ChaosStalls, c.cur.ChaosKills)
			}
			fmt.Fprintf(&sb, "  %-88s %28s %16s\n", k, counters, chaos)
		}
	}
	return sb.String()
}

// RenderDiff renders the comparison for humans (and the CI log).
func RenderDiff(res DiffResult, opts DiffOptions) string {
	var sb strings.Builder
	mode := "relative (median-normalised)"
	if opts.Absolute {
		mode = "absolute"
	}
	fmt.Fprintf(&sb, "bench diff: %d cells compared, %d skipped (< %.2f Mops/s baseline), mode %s, threshold %.0f%%\n",
		res.Compared, res.Skipped, opts.MinMops, mode, opts.Threshold*100)
	if res.FaultRows > 0 {
		fmt.Fprintf(&sb, "%d fault-injection cells excluded from the gate (probe op counts are fixed and chaos throughput is schedule noise; see the fault tables)\n", res.FaultRows)
	}
	fmt.Fprintf(&sb, "median current/baseline ratio: %.3f (machine-speed factor cancelled in relative mode)\n", res.MedianRatio)
	if !opts.Absolute && res.MedianRatio > 0 && res.MedianRatio < 1-opts.Threshold {
		// Relative mode cannot tell a slow machine from a uniform code-level
		// slowdown (e.g. a shared Record Manager hot path getting slower
		// everywhere) — both move every ratio together. Surface the shift
		// loudly so a human (or a same-machine -absolute rerun) decides.
		fmt.Fprintf(&sb, "WARNING: the whole suite runs at %.0f%% of baseline; relative mode cannot distinguish a slower machine from a uniform regression — rerun with -absolute on the baseline machine to rule one out\n",
			res.MedianRatio*100)
	}
	if res.MissingInCurrent > 0 || res.MissingInBaseline > 0 {
		fmt.Fprintf(&sb, "warning: %d baseline cells missing from current, %d current cells not in baseline\n",
			res.MissingInCurrent, res.MissingInBaseline)
	}
	if len(res.Regressions) == 0 {
		sb.WriteString("no regressions past the threshold\n")
	}
	for _, c := range res.Regressions {
		fmt.Fprintf(&sb, "REGRESSION %5.1f%%  %s  (%.3f -> %.3f Mops/s)\n",
			(1-c.Norm)*100, c.Key, c.Baseline, c.Current)
	}
	for _, c := range res.Improvements {
		fmt.Fprintf(&sb, "improved  +%5.1f%%  %s  (%.3f -> %.3f Mops/s)\n",
			(c.Norm-1)*100, c.Key, c.Baseline, c.Current)
	}
	return sb.String()
}
