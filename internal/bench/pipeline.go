package bench

// Experiment 12 ("pipeline"): the batched request path measured end-to-end.
// The service shapes of experiment 9 are repeated at a sweep of pipeline
// depths — the load generator keeps N requests in flight per connection and
// the server executes every buffered frame as one batch under a single slot
// acquisition, answering with a single write. Depth 1 is the lockstep
// baseline (the experiment-9 discipline through the same panels), so the
// depth-64 / depth-1 ratio of a column is the amortisation win of batching:
// fewer syscalls, slot acquisitions and handle resolutions per request. The
// allocs_per_op column tracks the zero-alloc steady state of the server's
// GET/PUT path; pipelining is exactly the regime where a per-request
// allocation would dominate, because everything else got cheaper.
//
// Like every service trial, a pipelined trial hard-fails if a reclaiming
// scheme exits with Retired != Freed — batching must not change where
// retired records end up.

import (
	"fmt"

	"repro/internal/kvload"
	"repro/internal/recordmgr"
)

// ExperimentPipeline is the experiment identifier of the pipelined service
// panels.
const ExperimentPipeline = 12

// PipelineDepthSweep is the in-flight window sizes the pipeline panels cover:
// the lockstep baseline, a mild window and a deep one. Fixed rather than
// machine-derived so smoke rows match across machines for the trend gate.
var PipelineDepthSweep = []int{1, 8, 64}

// PipelinePanels returns the pipelined KV service panels: both experiment-9
// service shapes repeated at every depth of PipelineDepthSweep, all schemes
// as columns and connection counts as rows. The depth lives in the Title —
// like the other service axes it is deliberately NOT part of the trend
// gate's row identity, so every pre-pipeline baseline row's key stays
// stable.
func PipelinePanels(opts Options) []Panel {
	const figure = "Pipelined KV service over loopback TCP (beyond the paper), Experiment 12"
	type shape struct {
		partitions int
		burst      int
		dist       string
		mix        Workload
		keyRange   int64
	}
	shapes := []shape{
		{2, ServiceBurstSweep[0], kvload.DistZipf, Workload{InsertPct: 10, DeletePct: 10, PrefillFraction: 0.5}, 2_000_000},
		{4, ServiceBurstSweep[1], kvload.DistUniform, Workload{InsertPct: 25, DeletePct: 25, PrefillFraction: 0.5}, 2_000_000},
	}
	var panels []Panel
	for _, sh := range shapes {
		w := withRange(sh.mix, opts.scaleRange(sh.keyRange))
		for _, depth := range PipelineDepthSweep {
			panels = append(panels, Panel{
				Figure: figure,
				Title: fmt.Sprintf("%s parts=%d burst=%d %s range [0,%d) %di-%dd pipe=%d",
					DSService, sh.partitions, sh.burst, sh.dist, w.KeyRange, w.InsertPct, w.DeletePct, depth),
				DataStructure: DSService,
				Workload:      w,
				Allocator:     recordmgr.AllocBump,
				UsePool:       true,
				Schemes:       SupportedSchemes(DSService),
				Threads:       opts.threads(),
				Shards:        opts.Shards,
				Placement:     opts.Placement,
				RetireBatch:   opts.RetireBatch,
				Reclaimers:    opts.Reclaimers,
				Partitions:    sh.partitions,
				ServiceBurst:  sh.burst,
				ServiceDist:   sh.dist,
				PipelineDepth: depth,
			})
		}
	}
	return panels
}
