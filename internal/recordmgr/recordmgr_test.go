package recordmgr_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/recordmgr"
)

type node struct {
	key   int64
	value int64
}

func TestBuildEveryScheme(t *testing.T) {
	for _, scheme := range recordmgr.Schemes() {
		for _, usePool := range []bool{false, true} {
			for _, alloc := range []recordmgr.AllocatorKind{recordmgr.AllocBump, recordmgr.AllocHeap} {
				m, err := recordmgr.Build[node](recordmgr.Config{
					Scheme:    scheme,
					Threads:   3,
					Allocator: alloc,
					UsePool:   usePool,
				})
				if err != nil {
					t.Fatalf("Build(%s, pool=%v, alloc=%s): %v", scheme, usePool, alloc, err)
				}
				if got := m.Reclaimer().Name(); got != scheme {
					t.Fatalf("built %q, reclaimer reports %q", scheme, got)
				}
				if usePool && m.Pool() == nil {
					t.Fatalf("Build(%s) with UsePool did not attach a pool", scheme)
				}
				if !usePool && m.Pool() != nil {
					t.Fatalf("Build(%s) without UsePool attached a pool", scheme)
				}
				// Smoke: one allocate/retire cycle.
				m.LeaveQstate(0)
				r := m.Allocate(0)
				m.Retire(0, r)
				m.EnterQstate(0)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: "nope", Threads: 1}); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 0}); err == nil {
		t.Fatal("expected error for zero threads")
	}
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 1, Allocator: "weird"}); err == nil {
		t.Fatal("expected error for unknown allocator kind")
	}
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 4, MaxThreads: 2}); err == nil {
		t.Fatal("expected error for MaxThreads < Threads")
	}
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 1, MaxThreads: -1}); err == nil {
		t.Fatal("expected error for negative MaxThreads")
	}
}

// TestMaxThreadsDynamicBinding: Config.MaxThreads sizes the slot registry
// (and every per-thread component) beyond the nominal worker count, so
// goroutines can bind and release slots at runtime across every scheme —
// including with retire batching and async reclamation, whose reclaimer
// tids must stay out of the acquirable range.
func TestMaxThreadsDynamicBinding(t *testing.T) {
	for _, scheme := range recordmgr.Schemes() {
		for _, reclaimers := range []int{0, 1} {
			t.Run(fmt.Sprintf("%s/reclaimers=%d", scheme, reclaimers), func(t *testing.T) {
				mgr, err := recordmgr.Build[node](recordmgr.Config{
					Scheme:     scheme,
					Threads:    2,
					MaxThreads: 4,
					UsePool:    true,
					Reclaimers: reclaimers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := mgr.WorkerSlots(); got != 4 {
					t.Fatalf("WorkerSlots = %d want 4", got)
				}
				if got := mgr.Participants(); got != 4+reclaimers {
					t.Fatalf("Participants = %d want %d", got, 4+reclaimers)
				}
				// All four slots are acquirable; the async reclaimer tids are not.
				handles := make([]*core.ThreadHandle[node], 4)
				for i := range handles {
					handles[i] = mgr.AcquireHandle()
					if tid := handles[i].Tid(); tid < 0 || tid >= 4 {
						t.Fatalf("acquired tid %d outside the worker-slot range", tid)
					}
				}
				//lint:allow handlepair exhaustion probe: ok is asserted false, so there is no handle to release
				if _, ok := mgr.TryAcquireHandle(); ok {
					t.Fatal("TryAcquireHandle succeeded beyond MaxThreads")
				}
				for _, h := range handles {
					h.LeaveQstate()
					h.Retire(h.Allocate())
					h.EnterQstate()
					mgr.ReleaseHandle(h)
				}
				mgr.Close()
				st := mgr.Stats()
				if st.Reclaimer.Retired != 4 {
					t.Fatalf("Retired = %d want 4", st.Reclaimer.Retired)
				}
				if scheme != recordmgr.SchemeNone && st.Reclaimer.Freed != st.Reclaimer.Retired {
					t.Fatalf("after Close: retired %d != freed %d", st.Reclaimer.Retired, st.Reclaimer.Freed)
				}
			})
		}
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	recordmgr.MustBuild[node](recordmgr.Config{Scheme: "nope", Threads: 1})
}

func TestNewReclaimerSharedDomain(t *testing.T) {
	dom := neutralize.NewDomain(2)
	r, err := recordmgr.NewReclaimer[node](recordmgr.SchemeDEBRAPlus, 2, pool.NewDiscard[node](), dom)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SupportsCrashRecovery() {
		t.Fatal("DEBRA+ must support crash recovery")
	}
}

func TestDefaultSchemeIsNone(t *testing.T) {
	r, err := recordmgr.NewReclaimer[node]("", 1, pool.NewDiscard[node](), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != recordmgr.SchemeNone {
		t.Fatalf("default scheme = %q, want none", r.Name())
	}
}

func TestPropertiesCoversAllSchemesAndReferences(t *testing.T) {
	props := recordmgr.Properties()
	if len(props) < len(recordmgr.Schemes()) {
		t.Fatalf("Properties returned %d rows, want at least %d", len(props), len(recordmgr.Schemes()))
	}
	seen := map[string]bool{}
	for _, p := range props {
		seen[p.Scheme] = true
	}
	for _, want := range []string{"DEBRA", "DEBRA+", "HP", "EBR", "None", "RC", "TS", "OA"} {
		if !seen[want] {
			t.Fatalf("Properties missing scheme %q", want)
		}
	}
}
