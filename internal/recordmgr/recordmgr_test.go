package recordmgr_test

import (
	"testing"

	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/recordmgr"
)

type node struct {
	key   int64
	value int64
}

func TestBuildEveryScheme(t *testing.T) {
	for _, scheme := range recordmgr.Schemes() {
		for _, usePool := range []bool{false, true} {
			for _, alloc := range []recordmgr.AllocatorKind{recordmgr.AllocBump, recordmgr.AllocHeap} {
				m, err := recordmgr.Build[node](recordmgr.Config{
					Scheme:    scheme,
					Threads:   3,
					Allocator: alloc,
					UsePool:   usePool,
				})
				if err != nil {
					t.Fatalf("Build(%s, pool=%v, alloc=%s): %v", scheme, usePool, alloc, err)
				}
				if got := m.Reclaimer().Name(); got != scheme {
					t.Fatalf("built %q, reclaimer reports %q", scheme, got)
				}
				if usePool && m.Pool() == nil {
					t.Fatalf("Build(%s) with UsePool did not attach a pool", scheme)
				}
				if !usePool && m.Pool() != nil {
					t.Fatalf("Build(%s) without UsePool attached a pool", scheme)
				}
				// Smoke: one allocate/retire cycle.
				m.LeaveQstate(0)
				r := m.Allocate(0)
				m.Retire(0, r)
				m.EnterQstate(0)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: "nope", Threads: 1}); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 0}); err == nil {
		t.Fatal("expected error for zero threads")
	}
	if _, err := recordmgr.Build[node](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 1, Allocator: "weird"}); err == nil {
		t.Fatal("expected error for unknown allocator kind")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	recordmgr.MustBuild[node](recordmgr.Config{Scheme: "nope", Threads: 1})
}

func TestNewReclaimerSharedDomain(t *testing.T) {
	dom := neutralize.NewDomain(2)
	r, err := recordmgr.NewReclaimer[node](recordmgr.SchemeDEBRAPlus, 2, pool.NewDiscard[node](), dom)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SupportsCrashRecovery() {
		t.Fatal("DEBRA+ must support crash recovery")
	}
}

func TestDefaultSchemeIsNone(t *testing.T) {
	r, err := recordmgr.NewReclaimer[node]("", 1, pool.NewDiscard[node](), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != recordmgr.SchemeNone {
		t.Fatalf("default scheme = %q, want none", r.Name())
	}
}

func TestPropertiesCoversAllSchemesAndReferences(t *testing.T) {
	props := recordmgr.Properties()
	if len(props) < len(recordmgr.Schemes()) {
		t.Fatalf("Properties returned %d rows, want at least %d", len(props), len(recordmgr.Schemes()))
	}
	seen := map[string]bool{}
	for _, p := range props {
		seen[p.Scheme] = true
	}
	for _, want := range []string{"DEBRA", "DEBRA+", "HP", "EBR", "None", "RC", "TS", "OA"} {
		if !seen[want] {
			t.Fatalf("Properties missing scheme %q", want)
		}
	}
}
