package recordmgr_test

// Tests for the asynchronous reclamation pipeline: dedicated reclaimer
// goroutines (extra epoch participants) draining hand-off queues behind the
// workers, and the deterministic shutdown ordering — workers quiesce,
// buffers flush, reclaimers drain, limbo is force-freed.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blockbag"
	"repro/internal/recordmgr"
)

// TestAsyncLeakFreeShutdown is the leak test the async pipeline must pass:
// after Close, every retired record has been freed — nothing stranded in
// deferred-retire buffers, hand-off queues or scheme limbo — for every
// reclaiming scheme, at reclaimer counts 1 and 2. The leaking baseline
// (none) is excluded: it never frees by design.
func TestAsyncLeakFreeShutdown(t *testing.T) {
	const threads = 4
	ops := 4000
	if testing.Short() {
		ops = 1000
	}
	for _, scheme := range recordmgr.Schemes() {
		if scheme == recordmgr.SchemeNone {
			continue
		}
		for _, reclaimers := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/reclaimers=%d", scheme, reclaimers), func(t *testing.T) {
				mgr, err := recordmgr.Build[node](recordmgr.Config{
					Scheme:     scheme,
					Threads:    threads,
					UsePool:    true,
					Reclaimers: reclaimers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := mgr.AsyncReclaimers(); got != reclaimers {
					t.Fatalf("AsyncReclaimers = %d want %d", got, reclaimers)
				}
				var wg sync.WaitGroup
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						for i := 0; i < ops; i++ {
							mgr.LeaveQstate(tid)
							mgr.Retire(tid, mgr.Allocate(tid))
							mgr.EnterQstate(tid)
						}
					}(tid)
				}
				wg.Wait()
				mgr.Close()
				st := mgr.Stats()
				if st.Reclaimer.Retired != int64(threads*ops) {
					t.Fatalf("retired %d want %d", st.Reclaimer.Retired, threads*ops)
				}
				if st.Reclaimer.Freed != st.Reclaimer.Retired {
					t.Fatalf("after Close: retired %d != freed %d (limbo %d, pending %d, handoff %d)",
						st.Reclaimer.Retired, st.Reclaimer.Freed,
						st.Reclaimer.Limbo, st.RetirePending, st.HandoffPending)
				}
				if st.Unreclaimed != 0 {
					t.Fatalf("after Close: unreclaimed = %d", st.Unreclaimed)
				}
				if got := mgr.AsyncSpareBlocks(); got != 0 {
					t.Fatalf("after Close: %d spare blocks still parked on the return stacks", got)
				}
			})
		}
	}
}

// TestAsyncCloseReturnsSpareBlocks: the reclaimers' spare exchange blocks
// must come back to the workers' retire-buffer block pools at Close instead
// of being dropped to the garbage collector (the shutdown half of the
// blockbag circulation property; Close used to drop them). The discarding
// sink configuration routes block recycling through the scheme's own block
// pools, which is the path that produces exchange spares.
func TestAsyncCloseReturnsSpareBlocks(t *testing.T) {
	const threads = 4
	const ops = 4000
	mgr, err := recordmgr.Build[node](recordmgr.Config{
		Scheme:     recordmgr.SchemeDEBRA,
		Threads:    threads,
		UsePool:    false, // Discard sink: frees recycle blocks scheme-side
		Reclaimers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				mgr.LeaveQstate(tid)
				mgr.Retire(tid, mgr.Allocate(tid))
				mgr.EnterQstate(tid)
			}
		}(tid)
	}
	wg.Wait()
	// Let the reclaimer drain the full-block hand-offs behind the idle
	// workers. (The partial batch tails — ops % BlockSize records per
	// worker — stay parked in the retire buffers until Close flushes them,
	// so RetirePending is legitimately non-zero here; the old wait condition
	// demanded zero and always burned its full deadline.)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := mgr.Stats()
		if st.HandoffPending == 0 && st.Reclaimer.Freed > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Steady state balances spare production against the workers' TakeSpare
	// consumption (each flush pops one), so whether any spare is parked at
	// a given instant is a race the machine's core count decides — and
	// Close's own buffer flush would pop one more per non-empty buffer
	// before DrainSpares runs. Set up a deterministic end state instead:
	// empty every retire buffer first (so Close's flushes are no-ops that
	// consume nothing), then produce one last full-block hand-off whose
	// drain parks an exchange spare that only DrainSpares can pick up.
	for tid := 0; tid < threads; tid++ {
		mgr.FlushRetired(tid)
	}
	mgr.LeaveQstate(0)
	for i := 0; i < blockbag.BlockSize; i++ {
		mgr.Retire(0, mgr.Allocate(0))
	}
	mgr.EnterQstate(0) // the 256th retire flushed the batch: buffers all empty
	for time.Now().Before(deadline) {
		if mgr.Stats().HandoffPending == 0 && mgr.AsyncSpareBlocks() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := mgr.AsyncSpareBlocks(); got == 0 {
		t.Fatal("no spare block parked on the return stacks; the drain-side exchange produced nothing")
	}
	mgr.Close()
	if got := mgr.AsyncSpareBlocks(); got != 0 {
		t.Fatalf("after Close: %d spare blocks still parked", got)
	}
	if got := mgr.SparesRecovered(); got == 0 {
		t.Fatalf("Close recovered no spare blocks; the shutdown return path did not run (exchange spares were produced and must be parked on the return stacks)")
	}
}

// TestSyncCloseAlsoDrains: the same leak-freedom holds without async —
// Close flushes the buffers (pinned) and force-frees the limbo.
func TestSyncCloseAlsoDrains(t *testing.T) {
	const threads = 3
	const ops = 1500
	for _, scheme := range recordmgr.Schemes() {
		if scheme == recordmgr.SchemeNone {
			continue
		}
		t.Run(scheme, func(t *testing.T) {
			mgr, err := recordmgr.Build[node](recordmgr.Config{
				Scheme:      scheme,
				Threads:     threads,
				UsePool:     true,
				RetireBatch: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						mgr.LeaveQstate(tid)
						mgr.Retire(tid, mgr.Allocate(tid))
						mgr.EnterQstate(tid)
					}
				}(tid)
			}
			wg.Wait()
			mgr.Close()
			st := mgr.Stats()
			if st.Reclaimer.Freed != st.Reclaimer.Retired || st.Unreclaimed != 0 {
				t.Fatalf("after Close: retired=%d freed=%d unreclaimed=%d",
					st.Reclaimer.Retired, st.Reclaimer.Freed, st.Unreclaimed)
			}
		})
	}
}

// TestAsyncDrainsBehindIdleWorkers: records handed off while the workers go
// idle must still reach the free sink without anyone calling Close — the
// reclaimer goroutines advance grace periods on their own (the quiescent
// workers do not block them).
func TestAsyncDrainsBehindIdleWorkers(t *testing.T) {
	for _, scheme := range []string{recordmgr.SchemeEBR, recordmgr.SchemeQSBR, recordmgr.SchemeDEBRA} {
		t.Run(scheme, func(t *testing.T) {
			mgr, err := recordmgr.Build[node](recordmgr.Config{
				Scheme:      scheme,
				Threads:     2,
				UsePool:     true,
				Reclaimers:  1,
				RetireBatch: blockbag.BlockSize,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Close()
			// Retire two full batches from pinned ops, then go idle.
			for tid := 0; tid < 2; tid++ {
				mgr.LeaveQstate(tid)
				for i := 0; i < 2*blockbag.BlockSize; i++ {
					mgr.Retire(tid, mgr.Allocate(tid))
				}
				mgr.EnterQstate(tid)
			}
			// The workers are quiescent; only the reclaimer goroutine can
			// make progress now. Wait (bounded) for the frees — DEBRA paces
			// its epoch advances (INCR_THRESH pin cycles per advance), so
			// this legitimately takes hundreds of reclaimer cycles.
			want := int64(4 * blockbag.BlockSize)
			deadline := time.Now().Add(15 * time.Second)
			for time.Now().Before(deadline) {
				if mgr.Stats().Reclaimer.Freed >= want {
					return
				}
				time.Sleep(time.Millisecond)
			}
			// Close would drain it; the point here is that the background
			// pipeline alone did not. Report what got stuck where.
			st := mgr.Stats()
			t.Fatalf("reclaimers did not drain behind idle workers: retired=%d freed=%d limbo=%d handoff=%d",
				st.Reclaimer.Retired, st.Reclaimer.Freed, st.Reclaimer.Limbo, st.HandoffPending)
		})
	}
}

// TestAsyncBuildValidation: the config layer rejects nonsense and defaults
// the retire batch when async is requested without one.
func TestAsyncBuildValidation(t *testing.T) {
	if _, err := recordmgr.Build[node](recordmgr.Config{
		Scheme: recordmgr.SchemeDEBRA, Threads: 1, Reclaimers: -1,
	}); err == nil {
		t.Fatal("negative Reclaimers accepted")
	}
	mgr, err := recordmgr.Build[node](recordmgr.Config{
		Scheme: recordmgr.SchemeDEBRA, Threads: 1, Reclaimers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if got := mgr.RetireBatchSize(); got != blockbag.BlockSize {
		t.Fatalf("async default RetireBatch = %d want %d", got, blockbag.BlockSize)
	}
}

// TestAsyncCloseIdempotent: Close twice is fine; stats stay consistent.
func TestAsyncCloseIdempotent(t *testing.T) {
	mgr, err := recordmgr.Build[node](recordmgr.Config{
		Scheme: recordmgr.SchemeEBR, Threads: 1, UsePool: true, Reclaimers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.LeaveQstate(0)
	for i := 0; i < 10; i++ {
		mgr.Retire(0, mgr.Allocate(0))
	}
	mgr.EnterQstate(0)
	mgr.Close()
	st1 := mgr.Stats()
	mgr.Close()
	st2 := mgr.Stats()
	if st1 != st2 {
		t.Fatalf("second Close changed stats: %+v -> %+v", st1, st2)
	}
	if st2.Reclaimer.Freed != st2.Reclaimer.Retired {
		t.Fatalf("close did not drain: %+v", st2)
	}
}
