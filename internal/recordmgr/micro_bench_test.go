package recordmgr_test

// Microbenchmarks for the Record Manager's per-operation primitives — the
// constants the hot-path work (single-writer counters, per-thread handles)
// exists to shrink. The *Handle variants are the fast path workers are meant
// to use (resolve Handle(tid) once, then zero slice indexing per op); the
// tid-based variants measure the compatibility wrappers. Run with:
//
//	go test -bench Micro -run '^$' ./internal/recordmgr/

import (
	"testing"

	"repro/internal/recordmgr"
)

func BenchmarkMicroPinUnpin(b *testing.B) {
	for _, scheme := range recordmgr.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[node](recordmgr.Config{Scheme: scheme, Threads: 2, UsePool: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.LeaveQstate(0)
				mgr.EnterQstate(0)
			}
		})
	}
}

func BenchmarkMicroAllocRetire(b *testing.B) {
	for _, scheme := range recordmgr.Schemes() {
		if scheme == recordmgr.SchemeNone {
			continue
		}
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[node](recordmgr.Config{Scheme: scheme, Threads: 2, UsePool: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.LeaveQstate(0)
				mgr.Retire(0, mgr.Allocate(0))
				mgr.EnterQstate(0)
			}
		})
	}
}

func BenchmarkMicroPinUnpinHandle(b *testing.B) {
	for _, scheme := range recordmgr.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[node](recordmgr.Config{Scheme: scheme, Threads: 2, UsePool: true})
			h := mgr.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.LeaveQstate()
				h.EnterQstate()
			}
		})
	}
}

func BenchmarkMicroAllocRetireHandle(b *testing.B) {
	for _, scheme := range recordmgr.Schemes() {
		if scheme == recordmgr.SchemeNone {
			continue
		}
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[node](recordmgr.Config{Scheme: scheme, Threads: 2, UsePool: true})
			h := mgr.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.LeaveQstate()
				h.Retire(h.Allocate())
				h.EnterQstate()
			}
		})
	}
}
