package recordmgr_test

// Lifecycle tests for the self-tuning runtime at the assembled-manager
// level: a controller moving all three levers (effective shards, retire
// batch, active reclaimers) concurrently with worker traffic must preserve
// the leak-free shutdown invariant — after Close, every retired record has
// been freed, for every reclaiming scheme.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/recordmgr"
)

// TestAdaptiveLeakFreeShutdown is the controller's version of the async
// leak test: the full adaptive pipeline (sharded domains + deferred retire
// + async reclaimers + a fast-ticking controller) retires from several
// goroutines, and Close must still sequence controller stop, buffer flush
// and reclaimer drain so that Retired == Freed and nothing is stranded.
func TestAdaptiveLeakFreeShutdown(t *testing.T) {
	const threads = 4
	ops := 4000
	if testing.Short() {
		ops = 1000
	}
	for _, scheme := range recordmgr.Schemes() {
		if scheme == recordmgr.SchemeNone {
			continue // never frees by design
		}
		t.Run(scheme, func(t *testing.T) {
			mgr, err := recordmgr.Build[node](recordmgr.Config{
				Scheme:      scheme,
				Threads:     threads,
				UsePool:     true,
				Shards:      2,
				RetireBatch: 16,
				Reclaimers:  2,
				Adaptive:    true,
				// A near-pathological control period: the levers move as often
				// as the runtime allows, maximising interleavings with the
				// workers' retire traffic and the shutdown sequence.
				AdaptiveInterval: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if mgr.Controller() == nil {
				t.Fatal("Adaptive manager has no controller")
			}
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						mgr.LeaveQstate(tid)
						mgr.Retire(tid, mgr.Allocate(tid))
						mgr.EnterQstate(tid)
					}
				}(tid)
			}
			wg.Wait()
			mgr.Close()
			st := mgr.Stats()
			if st.Reclaimer.Retired != int64(threads*ops) {
				t.Fatalf("retired %d want %d", st.Reclaimer.Retired, threads*ops)
			}
			if st.Reclaimer.Freed != st.Reclaimer.Retired {
				t.Fatalf("after Close: retired %d != freed %d (limbo %d, pending %d, handoff %d)",
					st.Reclaimer.Retired, st.Reclaimer.Freed,
					st.Reclaimer.Limbo, st.RetirePending, st.HandoffPending)
			}
			if st.Unreclaimed != 0 {
				t.Fatalf("after Close: unreclaimed = %d", st.Unreclaimed)
			}
			if ctrl := mgr.Controller(); ctrl.Steps() == 0 {
				t.Error("controller took no steps during the run")
			}
		})
	}
}

// TestAdaptiveConfigValidation: the adaptive knobs are rejected without
// Adaptive, and the batch bounds must be ordered.
func TestAdaptiveConfigValidation(t *testing.T) {
	base := recordmgr.Config{Scheme: recordmgr.SchemeEBR, Threads: 1, UsePool: true}

	cfg := base
	cfg.MinRetireBatch = 8
	if _, err := recordmgr.Build[node](cfg); err == nil {
		t.Error("MinRetireBatch without Adaptive was accepted")
	}
	cfg = base
	cfg.AdaptiveInterval = time.Millisecond
	if _, err := recordmgr.Build[node](cfg); err == nil {
		t.Error("AdaptiveInterval without Adaptive was accepted")
	}
	cfg = base
	cfg.Adaptive = true
	cfg.MinRetireBatch = 64
	cfg.MaxRetireBatch = 8
	if _, err := recordmgr.Build[node](cfg); err == nil {
		t.Error("MaxRetireBatch < MinRetireBatch was accepted")
	}

	// A manager with no tunable subsystems still accepts Adaptive: the
	// controller observes but has nothing to move.
	cfg = base
	cfg.Adaptive = true
	mgr, err := recordmgr.Build[node](cfg)
	if err != nil {
		t.Fatalf("Adaptive without subsystems: %v", err)
	}
	if mgr.Controller() == nil {
		t.Fatal("Adaptive manager has no controller")
	}
	mgr.Close()
}
