// Package recordmgr provides convenience constructors that assemble a
// complete Record Manager (allocator + pool + reclaimer) from a scheme name.
// This is the "change a single line of code" experience described in
// Section 6 of the paper: a data structure receives a *core.RecordManager[T]
// and neither knows nor cares which reclamation scheme is behind it.
package recordmgr

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/arena"
	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/raceenabled"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/debraplus"
	"repro/internal/reclaim/ebr"
	"repro/internal/reclaim/hp"
	"repro/internal/reclaim/none"
	"repro/internal/reclaim/qsbr"
)

// Scheme names accepted by Build and NewReclaimer.
const (
	SchemeNone      = "none"
	SchemeEBR       = "ebr"
	SchemeQSBR      = "qsbr"
	SchemeDEBRA     = "debra"
	SchemeDEBRAPlus = "debra+"
	SchemeHP        = "hp"
)

// Schemes returns the list of supported scheme names in a stable order.
func Schemes() []string {
	s := []string{SchemeNone, SchemeEBR, SchemeQSBR, SchemeDEBRA, SchemeDEBRAPlus, SchemeHP}
	sort.Strings(s)
	return s
}

// AllocatorKind selects the allocator used by Build.
type AllocatorKind string

// Allocator kinds.
const (
	// AllocBump pre-reserves slabs per thread (Experiments 1 and 2).
	AllocBump AllocatorKind = "bump"
	// AllocHeap allocates each record from the Go runtime (Experiment 3's
	// malloc stand-in).
	AllocHeap AllocatorKind = "heap"
)

// Config describes the Record Manager to build.
type Config struct {
	// Scheme is the reclamation scheme name (see Schemes).
	Scheme string
	// Threads is the number of worker threads (dense ids 0..Threads-1).
	Threads int
	// MaxThreads is the capacity of the dynamic thread-slot registry: the
	// total number of worker slots goroutines can bind to, statically via
	// Handle(tid) or at runtime via AcquireHandle/ReleaseHandle. 0 defaults
	// to Threads (the fixed-Threads compatibility configuration: every slot
	// corresponds to one static worker). Setting MaxThreads > Threads gives
	// a churning goroutine population headroom beyond the nominal worker
	// count; every per-thread component (scheme, allocator, pool, retire
	// buffers, handles) is sized for MaxThreads worker slots.
	MaxThreads int
	// Allocator selects bump or heap allocation; defaults to bump.
	Allocator AllocatorKind
	// UsePool controls whether reclaimed records are reused. When false the
	// reclaimer's free sink discards records (Experiment 1's configuration).
	UsePool bool
	// Domain optionally shares a neutralization domain across managers
	// (DEBRA+ only).
	Domain *neutralize.Domain
	// Shards is the number of sharded reclamation domains the scheme is
	// partitioned into (0 or 1 = one global domain, the historical
	// behaviour).
	Shards int
	// Placement is the tid→shard placement policy (core.PlaceBlock or
	// core.PlaceStripe; empty = block). A NUMA-style knob: block keeps
	// contiguous worker ids in one domain.
	Placement core.ShardPlacement
	// RetireBatch enables per-thread deferred retirement with the given
	// batch size (0 = retire records directly). Batches of
	// blockbag.BlockSize transfer to the scheme as O(1) block splices.
	RetireBatch int
	// Reclaimers enables asynchronous reclamation with the given number of
	// dedicated reclaimer goroutines (0 = reclamation stays on the worker
	// threads). The reclaimers register as extra epoch participants: the
	// scheme, allocator and pool are constructed for Threads+Reclaimers
	// dense ids, workers use tids 0..Threads-1, and retirement becomes an
	// O(1) hand-off drained behind the workers. Implies RetireBatch
	// (defaulted to blockbag.BlockSize when unset); callers must Close the
	// manager after the workers have quiesced.
	Reclaimers int
	// Adaptive attaches the self-tuning controller (core.Controller): a
	// feedback loop that retunes the effective shard count from live slot
	// occupancy, the per-thread retire batch from the retire rate and
	// Unreclaimed backlog (AIMD between MinRetireBatch and MaxRetireBatch),
	// and the active reclaimer-goroutine count from the hand-off backlog.
	// Each lever only engages when its subsystem is configured (Shards > 1,
	// RetireBatch > 0, Reclaimers > 0 respectively); with none of them the
	// controller observes but has nothing to move. The static knobs above
	// become starting points rather than pinned values.
	Adaptive bool
	// AdaptiveInterval is the controller's decision period (0 defaults to
	// core.DefaultControllerInterval). Only meaningful with Adaptive.
	AdaptiveInterval time.Duration
	// MinRetireBatch and MaxRetireBatch bound the adaptive batch lever
	// (0 defaults: floor 8, ceiling 4*blockbag.BlockSize). Only meaningful
	// with Adaptive; a static RetireBatch outside the bounds is clamped at
	// controller attach.
	MinRetireBatch int
	MaxRetireBatch int
	// FaultPlan, when non-nil, interposes the deterministic fault plane on
	// the reclaimer (faultinject.Wrap): the plan's triggers inject stalls
	// and crashes at the scheme's operation boundaries, per tid, exactly as
	// scheduled. Nil (the default, and every production configuration)
	// adds nothing to any path. See internal/faultinject.
	FaultPlan *faultinject.Plan
}

// Build assembles a Record Manager for record type T according to cfg.
func Build[T any](cfg Config) (*core.RecordManager[T], error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("recordmgr: Threads must be >= 1, got %d", cfg.Threads)
	}
	if cfg.MaxThreads < 0 {
		return nil, fmt.Errorf("recordmgr: MaxThreads must be >= 0, got %d", cfg.MaxThreads)
	}
	if cfg.MaxThreads > 0 && cfg.MaxThreads < cfg.Threads {
		return nil, fmt.Errorf("recordmgr: MaxThreads (%d) must be >= Threads (%d)", cfg.MaxThreads, cfg.Threads)
	}
	if cfg.Reclaimers < 0 {
		return nil, fmt.Errorf("recordmgr: Reclaimers must be >= 0, got %d", cfg.Reclaimers)
	}
	if cfg.RetireBatch < 0 {
		return nil, fmt.Errorf("recordmgr: RetireBatch must be >= 0, got %d", cfg.RetireBatch)
	}
	if cfg.MinRetireBatch < 0 || cfg.MaxRetireBatch < 0 {
		return nil, fmt.Errorf("recordmgr: MinRetireBatch/MaxRetireBatch must be >= 0, got %d/%d", cfg.MinRetireBatch, cfg.MaxRetireBatch)
	}
	if cfg.MinRetireBatch > 0 && cfg.MaxRetireBatch > 0 && cfg.MaxRetireBatch < cfg.MinRetireBatch {
		return nil, fmt.Errorf("recordmgr: MaxRetireBatch (%d) must be >= MinRetireBatch (%d)", cfg.MaxRetireBatch, cfg.MinRetireBatch)
	}
	if !cfg.Adaptive && (cfg.AdaptiveInterval != 0 || cfg.MinRetireBatch != 0 || cfg.MaxRetireBatch != 0) {
		return nil, fmt.Errorf("recordmgr: AdaptiveInterval/MinRetireBatch/MaxRetireBatch require Adaptive")
	}
	if cfg.Reclaimers > 0 && cfg.RetireBatch == 0 {
		// Async hand-off granularity is the retire batch; a full block is the
		// O(1)-splice sweet spot.
		cfg.RetireBatch = blockbag.BlockSize
	}
	// Worker slots: the slot-registry capacity every per-thread component is
	// sized for. The async reclaimer goroutines are extra participants
	// beyond the worker slots.
	workers := cfg.Threads
	if cfg.MaxThreads > workers {
		workers = cfg.MaxThreads
	}
	participants := workers + cfg.Reclaimers

	var alloc core.Allocator[T]
	switch cfg.Allocator {
	case AllocBump, "":
		alloc = arena.NewBump[T](participants, 0)
	case AllocHeap:
		alloc = arena.NewHeap[T](participants)
	default:
		return nil, fmt.Errorf("recordmgr: unknown allocator kind %q", cfg.Allocator)
	}

	var p core.Pool[T]
	var sink core.FreeSink[T]
	if cfg.UsePool {
		pl := pool.New(participants, alloc)
		p = pl
		sink = pl
	} else {
		sink = pool.NewDiscard[T]()
	}

	if _, err := core.ParsePlacement(string(cfg.Placement)); err != nil {
		return nil, err
	}
	spec := core.ShardSpec{Shards: cfg.Shards, Placement: cfg.Placement}
	rec, err := NewShardedReclaimer[T](cfg.Scheme, participants, sink, cfg.Domain, spec)
	if err != nil {
		return nil, err
	}
	if cfg.FaultPlan != nil {
		// Interpose the fault plane between the manager and the scheme: the
		// wrapper forwards the whole extended reclaimer surface (blocks,
		// retire pins, limbo draining, shard map, per-thread handles), so
		// every construction decision below sees the same capabilities.
		rec = faultinject.Wrap(rec, cfg.FaultPlan)
	}
	var mopts []core.ManagerOption
	if cfg.RetireBatch > 0 {
		mopts = append(mopts, core.WithRetireBatching(workers, cfg.RetireBatch))
	}
	if cfg.Reclaimers > 0 {
		mopts = append(mopts, core.WithAsyncReclaim(cfg.Reclaimers))
	}
	if cfg.Adaptive {
		mopts = append(mopts, core.WithController(core.ControllerConfig{
			Interval: cfg.AdaptiveInterval,
			MinBatch: cfg.MinRetireBatch,
			MaxBatch: cfg.MaxRetireBatch,
		}))
	}
	return core.NewRecordManager(alloc, p, rec, mopts...), nil
}

// MustBuild is Build that panics on error; convenient in examples and tests.
func MustBuild[T any](cfg Config) *core.RecordManager[T] {
	m, err := Build[T](cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewReclaimer constructs the named reclamation scheme for n threads with
// the given free sink as one global domain. domain may be nil (a private one
// is created for DEBRA+).
func NewReclaimer[T any](scheme string, n int, sink core.FreeSink[T], domain *neutralize.Domain) (core.Reclaimer[T], error) {
	return NewShardedReclaimer[T](scheme, n, sink, domain, core.ShardSpec{})
}

// NewShardedReclaimer constructs the named reclamation scheme for n threads
// partitioned into the sharded domains described by spec (the zero spec is
// one global domain). domain may be nil (a private one is created for
// DEBRA+).
func NewShardedReclaimer[T any](scheme string, n int, sink core.FreeSink[T], domain *neutralize.Domain, spec core.ShardSpec) (core.Reclaimer[T], error) {
	switch scheme {
	case SchemeNone, "":
		return none.New[T](n, none.WithShards(spec)), nil
	case SchemeEBR:
		return ebr.New[T](n, sink, ebr.WithShards(spec)), nil
	case SchemeQSBR:
		return qsbr.New[T](n, sink, qsbr.WithShards(spec)), nil
	case SchemeDEBRA:
		return debra.New[T](n, sink, debra.WithShards(spec)), nil
	case SchemeDEBRAPlus:
		opts := []debraplus.Option{debraplus.WithShards(spec)}
		if domain != nil {
			opts = append(opts, debraplus.WithDomain(domain))
		}
		if raceenabled.Enabled {
			// The Go race detector cannot model the asynchronous-signal
			// semantics DEBRA+ simulates cooperatively: between a signal being
			// sent (at which point the epoch may advance past the target and
			// records may be reclaimed and recycled) and the target consuming
			// it at its next checkpoint, the doomed operation keeps executing
			// and may read records another thread is re-initialising. Those
			// reads are discarded with the neutralized operation — the C++
			// original interrupts the thread with a real signal, so the window
			// does not exist there — but they are genuine unsynchronised
			// accesses, which the detector rightly reports. Under `-race`,
			// neutralization is therefore disabled and DEBRA+ degrades to
			// DEBRA-equivalent (still safe) reclamation; tests that force
			// neutralization skip themselves when raceenabled.Enabled.
			opts = append(opts, debraplus.WithNeutralizationDisabled())
		}
		return debraplus.New[T](n, sink, opts...), nil
	case SchemeHP:
		return hp.New[T](n, sink, hp.WithShards(spec)), nil
	default:
		return nil, fmt.Errorf("recordmgr: unknown scheme %q (supported: %v)", scheme, Schemes())
	}
}

// Properties returns the Figure 2 rows for every implemented scheme plus the
// reference rows for the surveyed-but-not-implemented schemes.
func Properties() []core.Properties {
	var out []core.Properties
	for _, s := range []string{SchemeHP, SchemeEBR, SchemeQSBR, SchemeDEBRA, SchemeDEBRAPlus, SchemeNone} {
		r, err := NewReclaimer[int](s, 1, pool.NewDiscard[int](), nil)
		if err != nil {
			continue
		}
		out = append(out, r.Props())
	}
	out = append(out, core.ReferenceProperties()...)
	return out
}
