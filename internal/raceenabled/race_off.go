//go:build !race

package raceenabled

// Enabled reports whether the binary was built with the Go race detector.
const Enabled = false
