package hashmap_test

import (
	"sync"
	"testing"

	"repro/internal/ds/hashmap"
	"repro/internal/recordmgr"
)

// newPartitioned builds a partitioned map whose partitions all use the named
// scheme with MaxThreads worker slots each.
func newPartitioned(t testing.TB, scheme string, partitions, threads, maxThreads int) *hashmap.Partitioned[int64] {
	t.Helper()
	return hashmap.NewPartitioned(partitions, func(int) *hashmap.Manager[int64] {
		return recordmgr.MustBuild[hashmap.Node[int64]](recordmgr.Config{
			Scheme:     scheme,
			Threads:    threads,
			MaxThreads: maxThreads,
			Allocator:  recordmgr.AllocBump,
			UsePool:    true,
		})
	}, maxThreads)
}

func TestPartitionedBasicOps(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			pm := newPartitioned(t, scheme, 4, 1, 2)
			h := pm.AcquireHandle()
			const n = 1000
			for k := int64(0); k < n; k++ {
				if !h.Insert(k, k*10) {
					t.Fatalf("Insert(%d) on a fresh map returned false", k)
				}
			}
			if h.Insert(5, 0) {
				t.Fatal("Insert of a present key returned true")
			}
			for k := int64(0); k < n; k++ {
				v, ok := h.Get(k)
				if !ok || v != k*10 {
					t.Fatalf("Get(%d) = %d,%v; want %d,true", k, v, ok, k*10)
				}
				if !h.Contains(k) {
					t.Fatalf("Contains(%d) = false", k)
				}
			}
			if got := pm.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			if got := pm.Count(); got != n {
				t.Fatalf("Count = %d, want %d", got, n)
			}
			if prev, replaced := h.Upsert(7, 700); !replaced || prev != 70 {
				t.Fatalf("Upsert(7) = %d,%v; want 70,true", prev, replaced)
			}
			if v, _ := h.Get(7); v != 700 {
				t.Fatalf("Get(7) after Upsert = %d, want 700", v)
			}
			for k := int64(0); k < n; k += 2 {
				if !h.Delete(k) {
					t.Fatalf("Delete(%d) returned false", k)
				}
			}
			if h.Delete(0) {
				t.Fatal("Delete of an absent key returned true")
			}
			if got := pm.Len(); got != n/2 {
				t.Fatalf("Len after deletes = %d, want %d", got, n/2)
			}
			if err := pm.Validate(); err != nil {
				t.Fatal(err)
			}
			pm.ReleaseHandle(h)
			pm.Close()
			ms := pm.ManagerStats()
			if scheme != recordmgr.SchemeNone && ms.Reclaimer.Retired != ms.Reclaimer.Freed {
				t.Fatalf("after Close: Retired=%d Freed=%d", ms.Reclaimer.Retired, ms.Reclaimer.Freed)
			}
		})
	}
}

// TestPartitionedRoutingCoversPartitions checks the high-bit router actually
// spreads a dense key range over every partition, and that PartitionFor
// agrees with where the keys land.
func TestPartitionedRoutingCoversPartitions(t *testing.T) {
	const parts = 8
	pm := newPartitioned(t, recordmgr.SchemeDEBRA, parts, 1, 1)
	h := pm.AcquireHandle()
	const n = int64(4096)
	for k := int64(0); k < n; k++ {
		h.Insert(k, k)
	}
	pm.ReleaseHandle(h)
	total := 0
	for p := 0; p < parts; p++ {
		got := pm.Partition(p).Len()
		total += got
		if got == 0 {
			t.Fatalf("partition %d received no keys from a dense %d-key range", p, n)
		}
		// A starved router (e.g. low-bit routing aliasing the bucket index)
		// shows up as wildly unbalanced partitions; allow generous slack.
		if got < int(n)/parts/4 || got > int(n)/parts*4 {
			t.Fatalf("partition %d holds %d of %d keys; expected ~%d", p, got, n, int(n)/parts)
		}
	}
	if total != int(n) {
		t.Fatalf("partitions hold %d keys in total, want %d", total, n)
	}
	for k := int64(0); k < n; k++ {
		p := pm.PartitionFor(k)
		if p < 0 || p >= parts {
			t.Fatalf("PartitionFor(%d) = %d, out of range", k, p)
		}
	}
	pm.Close()
}

// TestPartitionedHandleReuse exercises the burst contract: one handle,
// acquired and released repeatedly, operating between acquisitions.
func TestPartitionedHandleReuse(t *testing.T) {
	pm := newPartitioned(t, recordmgr.SchemeEBR, 2, 1, 2)
	h := pm.NewHandle()
	if h.Bound() {
		t.Fatal("fresh handle claims to be bound")
	}
	for burst := 0; burst < 5; burst++ {
		h.Acquire()
		if !h.Bound() {
			t.Fatal("Acquire left the handle unbound")
		}
		base := int64(burst * 100)
		for k := base; k < base+50; k++ {
			h.Insert(k, k)
		}
		for k := base; k < base+50; k += 2 {
			h.Delete(k)
		}
		h.Release()
		if h.Bound() {
			t.Fatal("Release left the handle bound")
		}
	}
	pm.Close()
	ms := pm.ManagerStats()
	if ms.Reclaimer.Retired != ms.Reclaimer.Freed {
		t.Fatalf("after Close: Retired=%d Freed=%d", ms.Reclaimer.Retired, ms.Reclaimer.Freed)
	}
}

// TestPartitionedTryAcquireExhaustion fills every partition slot and checks
// TryAcquire fails cleanly — holding nothing — then succeeds after a release.
func TestPartitionedTryAcquireExhaustion(t *testing.T) {
	pm := newPartitioned(t, recordmgr.SchemeQSBR, 2, 1, 2)
	a := pm.AcquireHandle()
	b := pm.AcquireHandle()
	c := pm.NewHandle()
	if c.TryAcquire() {
		t.Fatal("TryAcquire succeeded with every slot taken")
	}
	if c.Bound() {
		t.Fatal("failed TryAcquire left the handle bound")
	}
	pm.ReleaseHandle(b)
	if !c.TryAcquire() {
		t.Fatal("TryAcquire failed with a vacant slot")
	}
	c.Release()
	a.Release()
	pm.Close()
}

// TestPartitionedConcurrent churns goroutines through acquire/operate/release
// cycles across partitions (run under -race to check the handoff).
func TestPartitionedConcurrent(t *testing.T) {
	const (
		parts   = 4
		workers = 4
		bursts  = 20
		opsPer  = 200
	)
	for _, scheme := range []string{recordmgr.SchemeEBR, recordmgr.SchemeDEBRA, recordmgr.SchemeHP} {
		t.Run(scheme, func(t *testing.T) {
			pm := newPartitioned(t, scheme, parts, 1, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := pm.NewHandle()
					for burst := 0; burst < bursts; burst++ {
						h.Acquire()
						base := int64(w*1_000_000 + burst*opsPer)
						for k := base; k < base+opsPer; k++ {
							h.Insert(k, k)
							if k%3 == 0 {
								h.Delete(k)
							} else {
								h.Get(k)
							}
						}
						h.Release()
					}
				}(w)
			}
			wg.Wait()
			if err := pm.Validate(); err != nil {
				t.Fatal(err)
			}
			pm.Close()
			ms := pm.ManagerStats()
			if ms.Reclaimer.Retired != ms.Reclaimer.Freed {
				t.Fatalf("after Close: Retired=%d Freed=%d", ms.Reclaimer.Retired, ms.Reclaimer.Freed)
			}
			if ms.Unreclaimed != 0 {
				t.Fatalf("after Close: Unreclaimed=%d", ms.Unreclaimed)
			}
		})
	}
}
