package hashmap

// This file implements the partitioned-namespace wrapper the KV service
// (internal/kvservice) serves from: N independent Maps, each with its own
// Record Manager — and therefore its own slot registry, sharded reclamation
// domains and async reclaimers — with keys routed by hash. Partitioning
// multiplies every per-manager resource by N, which is exactly the point: a
// partition is a reclamation blast radius. A stalled reader in one partition
// delays grace periods (and memory reuse) for that partition's keys only.
//
// Routing uses the high half of the same mixed hash the map's buckets use
// the low bits of, so the two levels stay uncorrelated: a partition receives
// keys with every low-bit pattern and populates its bucket table uniformly
// (routing on low bits would leave each partition's table with only every
// N-th bucket occupied).

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Partitioned is a hash map split into N independently managed partitions.
// Construct with NewPartitioned, bind goroutines with NewHandle +
// PartitionedHandle.Acquire (or the one-shot AcquireHandle), and Close when
// done to shut every partition's reclamation pipeline down.
type Partitioned[V any] struct {
	parts []*Map[V]
}

// NewPartitioned creates a map of `partitions` independent partitions.
// build constructs partition p's Record Manager (called once per partition,
// so each can be configured — scheme, slot capacity, shards, reclaimers —
// identically or not); threads and opts are passed to each partition's Map
// exactly as in New.
func NewPartitioned[V any](partitions int, build func(p int) *Manager[V], threads int, opts ...Option) *Partitioned[V] {
	if partitions < 1 {
		panic("hashmap: NewPartitioned requires partitions >= 1")
	}
	if build == nil {
		panic("hashmap: NewPartitioned requires a manager builder")
	}
	pm := &Partitioned[V]{parts: make([]*Map[V], partitions)}
	for p := range pm.parts {
		mgr := build(p)
		if mgr == nil {
			panic(fmt.Sprintf("hashmap: NewPartitioned: builder returned nil for partition %d", p))
		}
		pm.parts[p] = New(mgr, threads, opts...)
	}
	return pm
}

// Partitions returns the partition count.
func (pm *Partitioned[V]) Partitions() int { return len(pm.parts) }

// Partition returns partition p's Map (instrumentation and tests; keyed
// operations go through a PartitionedHandle, which routes automatically).
func (pm *Partitioned[V]) Partition(p int) *Map[V] { return pm.parts[p] }

// PartitionFor returns the partition index key routes to.
func (pm *Partitioned[V]) PartitionFor(key int64) int {
	// High half of the mixed hash: uncorrelated with the low bits the
	// partition's bucket table indexes by.
	return int((hashOf(key) >> 32) % uint64(len(pm.parts)))
}

// Len returns the number of live keys across all partitions (quiescent use
// only, like Map.Len).
func (pm *Partitioned[V]) Len() int {
	n := 0
	for _, m := range pm.parts {
		n += m.Len()
	}
	return n
}

// Count returns the summed element counters of all partitions (exact when
// quiescent, like Map.Count).
func (pm *Partitioned[V]) Count() int {
	n := 0
	for _, m := range pm.parts {
		n += m.Count()
	}
	return n
}

// Stats returns the summed operation counters of all partitions.
func (pm *Partitioned[V]) Stats() Stats {
	var s Stats
	for _, m := range pm.parts {
		ps := m.Stats()
		s.Restarts += ps.Restarts
		s.Unlinks += ps.Unlinks
		s.Resizes += ps.Resizes
		s.Dummies += ps.Dummies
	}
	return s
}

// ManagerStats returns the summed Record Manager statistics of all
// partitions (the fields kvservice reports through STATS; exact when
// quiescent, like every Stats snapshot in the stack).
func (pm *Partitioned[V]) ManagerStats() core.ManagerStats {
	var out core.ManagerStats
	for _, m := range pm.parts {
		s := m.Manager().Stats()
		out.Reclaimer.Retired += s.Reclaimer.Retired
		out.Reclaimer.Freed += s.Reclaimer.Freed
		out.Reclaimer.Limbo += s.Reclaimer.Limbo
		out.Reclaimer.EpochAdvances += s.Reclaimer.EpochAdvances
		out.Reclaimer.Scans += s.Reclaimer.Scans
		out.Reclaimer.Neutralizations += s.Reclaimer.Neutralizations
		out.Reclaimer.Restarts += s.Reclaimer.Restarts
		out.Alloc.Allocated += s.Alloc.Allocated
		out.Alloc.Deallocated += s.Alloc.Deallocated
		out.Alloc.AllocatedBytes += s.Alloc.AllocatedBytes
		out.Pool.Reused += s.Pool.Reused
		out.Pool.FromAllocator += s.Pool.FromAllocator
		out.Pool.Freed += s.Pool.Freed
		out.Pool.ToShared += s.Pool.ToShared
		out.Pool.FromShared += s.Pool.FromShared
		out.RetirePending += s.RetirePending
		out.HandoffPending += s.HandoffPending
		out.Unreclaimed += s.Unreclaimed
	}
	return out
}

// Close shuts every partition's reclamation pipeline down (see
// core.RecordManager.Close): every handle must have been released and every
// statically wired thread quiesced first. After Close, Retired == Freed
// holds per partition for every reclaiming scheme.
func (pm *Partitioned[V]) Close() {
	for _, m := range pm.parts {
		m.Manager().Close()
	}
}

// Validate checks the structural invariants of every partition (quiescent
// use only).
func (pm *Partitioned[V]) Validate() error {
	var errs []error
	for p, m := range pm.parts {
		if err := m.Validate(); err != nil {
			errs = append(errs, fmt.Errorf("partition %d: %w", p, err))
		}
	}
	return errors.Join(errs...)
}

// PartitionedHandle is one goroutine's bound view of every partition: one
// slot-bound Map handle per partition, acquired and released together, so a
// request burst can touch any key while the goroutine holds exactly one slot
// in each partition's registry. The struct is reusable across bursts —
// allocate it once per goroutine with NewHandle, then Acquire/Release per
// burst without further allocation.
type PartitionedHandle[V any] struct {
	pm    *Partitioned[V]
	hs    []*Handle[V]
	bound bool
}

// NewHandle returns an unbound handle sized for the map's partitions. Call
// Acquire before the first operation.
func (pm *Partitioned[V]) NewHandle() *PartitionedHandle[V] {
	return &PartitionedHandle[V]{pm: pm, hs: make([]*Handle[V], len(pm.parts))}
}

// Acquire binds the calling goroutine to a vacant worker slot in every
// partition (the dynamic binding style, per partition). Panics when any
// partition's slots are exhausted; use TryAcquire to back off instead.
func (h *PartitionedHandle[V]) Acquire() {
	if !h.TryAcquire() {
		panic("hashmap: PartitionedHandle.Acquire: a partition's worker slots are exhausted (raise MaxThreads)")
	}
}

// TryAcquire is Acquire that reports slot exhaustion instead of panicking.
// On failure no slot is held: partitions acquired before the exhausted one
// are released again.
func (h *PartitionedHandle[V]) TryAcquire() bool {
	if h.bound {
		panic("hashmap: PartitionedHandle.Acquire on an already-bound handle")
	}
	for p, m := range h.pm.parts {
		hd, ok := m.TryAcquireHandle()
		if !ok {
			for q := 0; q < p; q++ {
				h.pm.parts[q].ReleaseHandle(h.hs[q])
				h.hs[q] = nil
			}
			return false
		}
		h.hs[p] = hd
	}
	h.bound = true
	return true
}

// Release returns every partition's slot to its registry. The calling
// goroutine must be quiescent in every partition (between operations is
// always legal — every map operation leaves the thread quiescent). The
// handle may be re-Acquired afterwards.
func (h *PartitionedHandle[V]) Release() {
	if !h.bound {
		panic("hashmap: PartitionedHandle.Release on an unbound handle")
	}
	for p, m := range h.pm.parts {
		m.ReleaseHandle(h.hs[p])
		h.hs[p] = nil
	}
	h.bound = false
}

// Bound reports whether the handle currently holds its partition slots.
func (h *PartitionedHandle[V]) Bound() bool { return h.bound }

// AcquireHandle is the one-shot convenience form: NewHandle + Acquire.
func (pm *Partitioned[V]) AcquireHandle() *PartitionedHandle[V] {
	h := pm.NewHandle()
	h.Acquire()
	return h
}

// ReleaseHandle releases a handle obtained from AcquireHandle (equivalent to
// h.Release; mirrors the Map-level API shape).
func (pm *Partitioned[V]) ReleaseHandle(h *PartitionedHandle[V]) { h.Release() }

// part returns the bound per-partition handle for key.
func (h *PartitionedHandle[V]) part(key int64) *Handle[V] {
	return h.hs[h.pm.PartitionFor(key)]
}

// Part returns the bound handle for partition p (from PartitionFor). Batch
// executors that group requests by partition resolve each partition's handle
// once per batch through this instead of re-routing per request; the handle
// is only valid while h remains bound.
func (h *PartitionedHandle[V]) Part(p int) *Handle[V] { return h.hs[p] }

// Get returns the value associated with key and whether it is present.
func (h *PartitionedHandle[V]) Get(key int64) (V, bool) { return h.part(key).Get(key) }

// Contains reports whether key is present.
func (h *PartitionedHandle[V]) Contains(key int64) bool { return h.part(key).Contains(key) }

// Insert adds key with the given value, returning false if it was already
// present (set semantics, like Map.Insert).
func (h *PartitionedHandle[V]) Insert(key int64, value V) bool {
	return h.part(key).Insert(key, value)
}

// Delete removes key, returning true if it was present.
func (h *PartitionedHandle[V]) Delete(key int64) bool { return h.part(key).Delete(key) }

// Upsert sets key to value, returning the previous value and whether the key
// was present (see Map.Upsert for the replace protocol and its
// transient-absence caveat).
func (h *PartitionedHandle[V]) Upsert(key int64, value V) (V, bool) {
	return h.part(key).Upsert(key, value)
}
