package hashmap

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/core"
)

// Node kinds. A node's kind is assigned before it is published and never
// changes while the node is reachable, so readers that hold a safe reference
// (epoch-covered or hazard-protected) may read it without synchronisation.
const (
	// kindRegular is a key/value node inserted by Insert.
	kindRegular uint8 = iota
	// kindDummy is a bucket sentinel of the split-ordered list. Dummy nodes
	// are never removed, so traversals may keep unprotected references to
	// them (they are the stable re-entry points of every bucket).
	kindDummy
	// kindMarker is the logical-deletion marker spliced after a deleted node
	// (the Harris/CSLM marker-node technique: Go has no pointer mark bits, so
	// the mark is a one-shot successor node that makes a deleted node's next
	// field CAS-incomparable to any plain successor).
	kindMarker
)

// Node is the hash map's managed record type. One record type covers the
// three roles (regular, dummy, marker) so a single Record Manager manages
// every allocation of the structure, as the paper recommends for multi-role
// structures (fold the types into one record with a kind discriminator).
type Node[V any] struct {
	key   int64
	value V
	// sokey is the split-order key: the bit-reversed mixed hash with the low
	// bit set for regular nodes, or the bit-reversed bucket index (low bit
	// clear) for dummy nodes. The list is sorted by (sokey, key).
	sokey uint64
	kind  uint8
	next  atomic.Pointer[Node[V]]

	// poisoned is test instrumentation: the reclaimtest poison wrappers set
	// it when the record is handed to the free path and clear it on reuse,
	// and the safety harness asserts through the map's visit hook that a
	// traversal never observes it on a node protection made safe to access.
	// It costs nothing on the hot path (nothing in this package reads it).
	poisoned atomic.Bool
}

// Key returns the node's key (meaningful for regular nodes only).
func (n *Node[V]) Key() int64 { return n.key }

// Value returns the node's value (meaningful for regular nodes only).
func (n *Node[V]) Value() V { return n.value }

// SplitOrderKey returns the node's split-order key.
func (n *Node[V]) SplitOrderKey() uint64 { return n.sokey }

// IsDummy reports whether the node is a bucket sentinel.
func (n *Node[V]) IsDummy() bool { return n.kind == kindDummy }

// IsMarker reports whether the node is a logical-deletion marker.
func (n *Node[V]) IsMarker() bool { return n.kind == kindMarker }

// Poison implements the reclaimtest Poisonable contract: mark the record as
// freed, reporting whether it already was (a double free).
func (n *Node[V]) Poison() bool { return n.poisoned.Swap(true) }

// Unpoison clears the freed mark (called by pool wrappers on reuse).
func (n *Node[V]) Unpoison() { n.poisoned.Store(false) }

// IsPoisoned reports whether the record is currently marked freed.
func (n *Node[V]) IsPoisoned() bool { return n.poisoned.Load() }

// Manager is the Record Manager type the hash map programs against.
type Manager[V any] = core.RecordManager[Node[V]]

// mix64 is the splitmix64 finalizer: a bijective scrambler that spreads
// adjacent integer keys across the whole 64-bit hash space, so the uniform
// integer workloads of the benchmarks do not degenerate into sequential
// bucket probes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashOf returns the mixed hash of a user key.
func hashOf(key int64) uint64 { return mix64(uint64(key)) }

// regularSoKey converts a mixed hash to a regular node's split-order key.
// Setting the low bit sacrifices the hash's top bit (two hashes differing
// only there share a sokey), which is why the list order and equality tests
// tiebreak on the full user key.
func regularSoKey(hash uint64) uint64 { return bits.Reverse64(hash) | 1 }

// dummySoKey converts a bucket index to its dummy node's split-order key.
// Bucket indexes are < 2^63, so the result always has the low bit clear and
// sorts immediately before every regular key hashing into the bucket.
func dummySoKey(bucket uint64) uint64 { return bits.Reverse64(bucket) }

// soLess reports whether position a=(aSo,aKey) precedes b in split order.
func soLess(aSo uint64, aKey int64, bSo uint64, bKey int64) bool {
	if aSo != bSo {
		return aSo < bSo
	}
	return aKey < bKey
}

// parentBucket returns the parent of bucket b in the split-order recursive
// initialisation scheme: b with its most significant set bit cleared.
func parentBucket(b uint64) uint64 {
	return b &^ (1 << (bits.Len64(b) - 1))
}

// initRegular (re)initialises a recycled record as a key/value node.
func initRegular[V any](n *Node[V], key int64, value V, sokey uint64, next *Node[V]) {
	n.key = key
	n.value = value
	n.sokey = sokey
	n.kind = kindRegular
	n.next.Store(next)
}

// initDummy (re)initialises a recycled record as a bucket sentinel.
func initDummy[V any](n *Node[V], sokey uint64) {
	var zero V
	n.key = 0
	n.value = zero
	n.sokey = sokey
	n.kind = kindDummy
	n.next.Store(nil)
}

// initMarker (re)initialises a recycled record as a deletion marker whose
// frozen successor is next.
func initMarker[V any](n *Node[V], next *Node[V]) {
	var zero V
	n.key = 0
	n.value = zero
	n.sokey = 0
	n.kind = kindMarker
	n.next.Store(next)
}
