// Package hashmap implements a lock-free hash map over the Record Manager
// abstraction: a split-ordered list (Shalev and Shavit's recursive
// split-ordering) of Michael-style lock-free bucket lists, with lock-free
// incremental resizing. It is the first data structure of this module that
// is not part of the paper's own evaluation, added to demonstrate that the
// Record Manager generalises beyond the paper's benchmarks: the map is
// programmed once against core.RecordManager and every reclamation scheme in
// the module (none, ebr, qsbr, debra, debra+, hp) drops in unchanged.
//
// Reclamation-relevant structure:
//
//   - All nodes — key/value nodes, bucket sentinels ("dummies") and deletion
//     markers — are allocated, retired and recycled through one Record
//     Manager, so retired nodes may be reused while slow readers still hold
//     references to them: exactly the situation safe memory reclamation must
//     make survivable.
//   - Under hazard-pointer style schemes (NeedsPerRecordProtection) the
//     traversal maintains a sliding pred/curr/next window of protections,
//     validating each announcement against the link it was read from and
//     restarting the operation when validation fails.
//   - Under DEBRA+ (SupportsCrashRecovery) every operation body is wrapped
//     in a neutralization recovery: allocation happens in a quiescent
//     preamble, the linearizing CAS result is captured in a local before any
//     further checkpoint, and recovery inspects only that local state — it
//     never touches shared records, so it needs no recovery protections.
//   - Dummy nodes are never retired; they are the stable re-entry points
//     that let a restarted traversal re-enter its bucket without re-running
//     the whole operation from a global head.
//
// Resizing is incremental and lock-free: the bucket table is a lazily
// allocated two-level segment directory, growing the table is a single CAS
// on the bucket count, and new buckets splice their dummy node into the
// split-ordered list on first access (no node is ever rehashed or moved).
package hashmap

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/neutralize"
)

// maxSegments bounds the segment directory. Segment p holds the buckets
// [2^p, 2^(p+1)), so the directory supports 2^maxSegments buckets — far
// beyond anything the benchmarks reach.
const maxSegments = 40

// Defaults for the tuning options.
const (
	// DefaultInitialBuckets is the bucket count a map starts with.
	DefaultInitialBuckets = 8
	// DefaultMaxLoad is the mean nodes-per-bucket threshold above which the
	// table doubles.
	DefaultMaxLoad = 4
	// DefaultMaxBuckets caps table growth.
	DefaultMaxBuckets = 1 << 26
)

// Option tunes a Map at construction time.
type Option func(*config)

type config struct {
	initialBuckets uint64
	maxLoad        int64
	maxBuckets     uint64
}

// WithInitialBuckets sets the initial bucket count (rounded up to a power of
// two). Pre-sizing to the expected element count divided by the load factor
// removes the resize phase from a workload; the default grows from
// DefaultInitialBuckets and exercises incremental resizing instead.
func WithInitialBuckets(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.initialBuckets = ceilPow2(uint64(n))
	}
}

// WithMaxLoad sets the load factor (mean chain length) that triggers a table
// doubling.
func WithMaxLoad(l int) Option {
	return func(c *config) {
		if l < 1 {
			l = 1
		}
		c.maxLoad = int64(l)
	}
}

// WithMaxBuckets caps the table size (rounded up to a power of two).
func WithMaxBuckets(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.maxBuckets = ceilPow2(uint64(n))
	}
}

func ceilPow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len64(v-1)
}

// segment is one lazily allocated block of the bucket directory. Entries
// hold the bucket's dummy node once the bucket has been initialised.
type segment[V any] struct {
	buckets []atomic.Pointer[Node[V]]
}

// spareSlot is a per-thread scratch holding a pre-allocated dummy node
// across neutralization retries (allocation must not happen inside a
// restartable body, so bucket initialisation parks its dummy here until the
// splice succeeds). Padded to keep the single-writer slots off each other's
// cache lines.
type spareSlot[V any] struct {
	node *Node[V]
	_    [core.PadBytes]byte
}

// threadStats is one thread's single-writer data-structure-level counters
// (not reclamation counters): written only by the owning slot (core.Counter
// contract), read racily by Stats, padded so neighbouring slots' cells do
// not share cache lines. These used to be four global atomic.Int64 cells —
// a LOCK-prefixed RMW on a line shared by every thread, once per restart,
// unlink, resize and dummy splice.
type threadStats struct {
	restarts core.Counter // operation restarts (CAS failures, HP validation failures)
	unlinks  core.Counter // marked pairs physically unlinked by traversals
	resizes  core.Counter // successful table doublings
	dummies  core.Counter // bucket sentinels spliced into the list
	_        [core.PadBytes]byte
}

// Stats is a snapshot of the map's operation counters.
type Stats struct {
	Restarts int64
	Unlinks  int64
	Resizes  int64
	Dummies  int64
}

// Map is a lock-free hash map from int64 keys to values of type V. All
// concurrent operations take the dense thread id of the calling worker,
// which must be in [0, n) for the Record Manager the map was built with.
// The whole int64 key range is usable (the split-ordered list needs no
// sentinel keys).
type Map[V any] struct {
	mgr  *Manager[V]
	head *Node[V] // bucket 0's dummy: the head of the split-ordered list

	size  atomic.Uint64 // current bucket count (power of two)
	count atomic.Int64  // regular nodes inserted minus logically deleted

	maxLoad    int64
	maxBuckets uint64

	segments [maxSegments]atomic.Pointer[segment[V]]
	spares   []spareSlot[V]
	handles  []Handle[V]

	// perRecord caches whether the reclaimer needs Protect/validate per
	// record; crashRecovery caches whether bodies can be neutralized.
	perRecord     bool
	crashRecovery bool

	// visit, when non-nil, is called for every node a traversal has made
	// safe to access (set before concurrent use; see SetVisitHook).
	visit func(tid int, n *Node[V])

	stats []threadStats
}

// New creates an empty map whose records are managed by mgr, for the given
// number of worker threads (which must match the manager's). When the
// manager has more worker slots than threads (recordmgr.Config.MaxThreads),
// the per-thread tables cover every slot, so both binding styles — static
// dense tids and AcquireHandle/ReleaseHandle — work.
func New[V any](mgr *Manager[V], threads int, opts ...Option) *Map[V] {
	if mgr == nil {
		panic("hashmap: New requires a RecordManager")
	}
	if threads <= 0 {
		panic("hashmap: New requires threads >= 1")
	}
	if ws := mgr.WorkerSlots(); ws > threads {
		threads = ws
	}
	cfg := config{
		initialBuckets: DefaultInitialBuckets,
		maxLoad:        DefaultMaxLoad,
		maxBuckets:     DefaultMaxBuckets,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxBuckets < cfg.initialBuckets {
		cfg.maxBuckets = cfg.initialBuckets
	}
	if cfg.maxBuckets > 1<<(maxSegments-1) {
		cfg.maxBuckets = 1 << (maxSegments - 1)
	}
	h := &Map[V]{
		mgr:           mgr,
		maxLoad:       cfg.maxLoad,
		maxBuckets:    cfg.maxBuckets,
		spares:        make([]spareSlot[V], threads),
		perRecord:     mgr.NeedsPerRecordProtection(),
		crashRecovery: mgr.SupportsCrashRecovery(),
	}
	h.head = mgr.Allocate(0)
	initDummy(h.head, dummySoKey(0))
	h.size.Store(cfg.initialBuckets)
	h.stats = make([]threadStats, threads)
	h.handles = make([]Handle[V], threads)
	for i := range h.handles {
		// PeekHandle: prebuilding the table must not claim the slots, or
		// nothing would remain acquirable and reclamation scans could never
		// skip a vacant slot. Handle(tid) claims on first static use.
		h.handles[i] = Handle[V]{h: h, rm: mgr.PeekHandle(i), spare: &h.spares[i], st: &h.stats[i], tid: i}
	}
	return h
}

// Handle is one worker thread's pre-resolved view of the map: the Record
// Manager thread handle and the thread's scratch state bound once, so
// steady-state operations index no per-thread slices and pay at most one
// interface call per reclamation primitive. Resolve it once at worker
// registration (h.Handle(tid)) and call the operation methods on it; the
// tid-based Map methods remain as thin wrappers.
type Handle[V any] struct {
	h     *Map[V]
	rm    *core.ThreadHandle[Node[V]]
	spare *spareSlot[V]
	st    *threadStats
	tid   int
}

// Handle returns thread tid's pre-resolved operation handle, claiming the
// slot for static dense-tid wiring (see core.RecordManager.Handle; a slot a
// thread operates on must be visible to reclamation scans). Goroutines that
// come and go use AcquireHandle/ReleaseHandle instead.
func (h *Map[V]) Handle(tid int) *Handle[V] {
	h.mgr.Handle(tid)
	return &h.handles[tid]
}

// AcquireHandle binds the calling goroutine to a vacant worker slot of the
// map's Record Manager and returns the slot's operation handle (the dynamic
// binding style). Release it with ReleaseHandle once the goroutine is done;
// the slot — and everything cached under its tid — is then reused by later
// acquirers.
func (h *Map[V]) AcquireHandle() *Handle[V] {
	rm := h.mgr.AcquireHandle()
	return h.bindHandle(rm)
}

// TryAcquireHandle is AcquireHandle that reports slot exhaustion instead of
// panicking, for callers that can back off and retry (e.g. a server admitting
// more connections than worker slots).
func (h *Map[V]) TryAcquireHandle() (*Handle[V], bool) {
	rm, ok := h.mgr.TryAcquireHandle()
	if !ok {
		return nil, false
	}
	return h.bindHandle(rm), true
}

// bindHandle rebuilds the slot's pre-resolved handle for a fresh acquirer.
func (h *Map[V]) bindHandle(rm *core.ThreadHandle[Node[V]]) *Handle[V] {
	tid := rm.Tid()
	h.handles[tid] = Handle[V]{h: h, rm: rm, spare: &h.spares[tid], st: &h.stats[tid], tid: tid}
	return &h.handles[tid]
}

// ReleaseHandle returns an acquired slot to the manager's registry. The
// calling goroutine must be quiescent (every map operation leaves the thread
// quiescent, so between operations is always legal) and must not use the
// handle afterwards. The slot's pre-allocated spare dummy, if any, is
// returned to the pool rather than parked for the next occupant.
func (h *Map[V]) ReleaseHandle(hd *Handle[V]) {
	if spare := hd.spare.node; spare != nil {
		hd.spare.node = nil
		hd.rm.Deallocate(spare)
	}
	h.mgr.ReleaseHandle(hd.rm)
}

// Tid returns the dense thread id the handle is bound to.
func (hd *Handle[V]) Tid() int { return hd.tid }

// Map returns the map the handle operates on.
func (hd *Handle[V]) Map() *Map[V] { return hd.h }

// Manager returns the map's Record Manager (for instrumentation).
func (h *Map[V]) Manager() *Manager[V] { return h.mgr }

// Stats returns a snapshot of the map's operation counters, aggregated from
// the per-thread single-writer cells (exact when the workers are quiescent,
// like every other Stats snapshot in the stack).
func (h *Map[V]) Stats() Stats {
	var s Stats
	for i := range h.stats {
		st := &h.stats[i]
		s.Restarts += st.restarts.Load()
		s.Unlinks += st.unlinks.Load()
		s.Resizes += st.resizes.Load()
		s.Dummies += st.dummies.Load()
	}
	return s
}

// Buckets returns the current bucket count.
func (h *Map[V]) Buckets() int { return int(h.size.Load()) }

// Count returns the map's element count (maintained with atomic counters;
// exact when quiescent).
func (h *Map[V]) Count() int { return int(h.count.Load()) }

// SetVisitHook installs fn to be called for every node a traversal has made
// safe to access (after protection and validation under per-record schemes).
// It exists for the reclaimtest safety harness, which uses it to assert that
// no traversal ever observes a freed record. It must be set before any
// concurrent use of the map and costs one predictable branch per visited
// node when unset. Note for neutralizing schemes (DEBRA+): a visit made
// while the thread has a neutralization signal pending belongs to a doomed
// attempt whose observations are discarded, and the hook must account for
// that (see the scheme's Domain.Pending).
func (h *Map[V]) SetVisitHook(fn func(tid int, n *Node[V])) { h.visit = fn }

func (h *Map[V]) observe(tid int, n *Node[V]) {
	if h.visit != nil {
		h.visit(tid, n)
	}
}

// --- Bucket directory -------------------------------------------------------

// bucketLoc returns the directory slot of bucket b >= 1, allocating the
// owning segment on first touch.
func (h *Map[V]) bucketLoc(b uint64) *atomic.Pointer[Node[V]] {
	p := bits.Len64(b) - 1 // segment p covers [2^p, 2^(p+1))
	seg := h.segments[p].Load()
	if seg == nil {
		ns := &segment[V]{buckets: make([]atomic.Pointer[Node[V]], 1<<p)}
		h.segments[p].CompareAndSwap(nil, ns)
		seg = h.segments[p].Load()
	}
	return &seg.buckets[b-1<<p]
}

// bucketDummy returns the dummy node of bucket b, initialising the bucket
// (and, recursively, its parents) on first access. It is called inside an
// operation body: the thread is not quiescent, and ok=false propagates a
// per-record protection failure to the body, which restarts.
func (h *Map[V]) bucketDummy(hd *Handle[V], b uint64) (*Node[V], bool) {
	if b == 0 {
		return h.head, true
	}
	loc := h.bucketLoc(b)
	if d := loc.Load(); d != nil {
		return d, true
	}
	parent, ok := h.bucketDummy(hd, parentBucket(b))
	if !ok {
		return nil, false
	}
	// The spare slot carries the pre-allocated dummy across neutralization
	// retries so a restarted body does not allocate again.
	spare := hd.spare.node
	if spare == nil {
		spare = hd.rm.Allocate()
		hd.spare.node = spare
	}
	initDummy(spare, dummySoKey(b))
	d, ok := h.insertDummy(hd, parent, spare)
	if !ok {
		return nil, false
	}
	if d == spare {
		// Published: the slot no longer owns it. No checkpoint can run
		// between the winning CAS (inside insertDummy) and this line.
		hd.spare.node = nil
		hd.st.dummies.Inc()
	}
	loc.CompareAndSwap(nil, d)
	return d, true
}

// insertDummy splices dummy into the list starting at the parent dummy,
// returning the list's sentinel for that split-order key: dummy itself when
// our splice won, or the already-present sentinel when another initialiser
// beat us (in which case the caller keeps its spare for later reuse).
func (h *Map[V]) insertDummy(hd *Handle[V], start, dummy *Node[V]) (*Node[V], bool) {
	for {
		pos, ok := h.find(hd, start, dummy.sokey, dummy.key)
		if !ok {
			return nil, false
		}
		if pos.found {
			d := pos.curr
			h.releasePos(hd, pos)
			return d, true
		}
		dummy.next.Store(pos.curr)
		if pos.pred.next.CompareAndSwap(pos.curr, dummy) {
			h.releasePos(hd, pos)
			return dummy, true
		}
		h.releasePos(hd, pos)
	}
}

// startBucket locates the dummy node heading the bucket key hashes to under
// the current table size.
func (h *Map[V]) startBucket(hd *Handle[V], hash uint64) (*Node[V], bool) {
	return h.bucketDummy(hd, hash&(h.size.Load()-1))
}

// maybeGrow doubles the table when the load factor is exceeded. A single CAS
// publishes the new size; the new buckets initialise lazily on first access,
// so growth is incremental and never moves a node. Touches no records, so it
// is safe to call at any point of an operation (including recovery).
func (h *Map[V]) maybeGrow(hd *Handle[V]) {
	size := h.size.Load()
	if size >= h.maxBuckets {
		return
	}
	if h.count.Load() > h.maxLoad*int64(size) {
		if h.size.CompareAndSwap(size, size*2) {
			hd.st.resizes.Inc()
		}
	}
}

// --- Traversal --------------------------------------------------------------

// findPos is a position in the list: curr is the first node at or past the
// search key (nil at the end of the list), pred its predecessor. Under
// per-record protection the recorded nodes are protected as flagged.
type findPos[V any] struct {
	pred, curr *Node[V]
	predProt   bool
	currProt   bool
	found      bool
}

// releasePos drops the protections recorded in pos.
func (h *Map[V]) releasePos(hd *Handle[V], pos findPos[V]) {
	if !h.perRecord {
		return
	}
	if pos.predProt {
		hd.rm.Unprotect(pos.pred)
	}
	if pos.currProt && pos.curr != nil {
		hd.rm.Unprotect(pos.curr)
	}
}

// find walks the bucket list from start to the position of (sokey, key),
// physically unlinking any marked node it passes (Michael's find). ok=false
// means a protection validation or an unlink CAS failed and the operation
// must restart; every protection has been released in that case.
//
// On ok=true the returned position holds: pred protected (unless it is
// start, which is a dummy and never retired), curr protected (when non-nil),
// and found reporting whether curr's (sokey, key) equals the search key.
// The caller must eventually releasePos.
func (h *Map[V]) find(hd *Handle[V], start *Node[V], sokey uint64, key int64) (findPos[V], bool) {
	rm := hd.rm
	pos := findPos[V]{pred: start}
	curr := start.next.Load()
	if h.perRecord && curr != nil {
		if !rm.Protect(curr) {
			return pos, false
		}
		if start.next.Load() != curr {
			rm.Unprotect(curr)
			return pos, false
		}
	}
	for {
		rm.Checkpoint()
		if curr == nil {
			return pos, true
		}
		h.observe(hd.tid, curr)
		next := curr.next.Load()
		if next != nil {
			if h.perRecord {
				if !rm.Protect(next) {
					h.failFind(hd, pos, curr, nil)
					return pos, false
				}
				if curr.next.Load() != next {
					h.failFind(hd, pos, curr, next)
					return pos, false
				}
				if pos.pred.next.Load() != curr {
					// If next is a marker, curr.next froze when curr was
					// marked, so the validation above cannot prove the
					// (curr, marker) pair has not already been unlinked and
					// reclaimed — and telling markers apart would itself
					// dereference next. curr still being reachable from the
					// protected pred proves the pair is not yet retired,
					// making the announcement in time for any kind of next.
					h.failFind(hd, pos, curr, next)
					return pos, false
				}
			}
			h.observe(hd.tid, next)
			if next.kind == kindMarker {
				// curr is logically deleted; unlink the (curr, marker) pair.
				// Only the winning CAS retires: curr leaves the list exactly
				// once, and its next field froze at the marker when it was
				// marked, so the pair cannot be unlinked twice.
				succ := next.next.Load()
				if pos.pred.next.CompareAndSwap(curr, succ) {
					rm.Retire(curr)
					rm.Retire(next)
					hd.st.unlinks.Inc()
					if h.perRecord {
						rm.Unprotect(curr)
						rm.Unprotect(next)
					}
					curr = succ
					if h.perRecord && curr != nil {
						if !rm.Protect(curr) {
							h.failFind(hd, pos, nil, nil)
							return pos, false
						}
						if pos.pred.next.Load() != curr {
							h.failFind(hd, pos, curr, nil)
							return pos, false
						}
					}
					continue
				}
				h.failFind(hd, pos, curr, next)
				return pos, false
			}
		}
		if !soLess(curr.sokey, curr.key, sokey, key) {
			if h.perRecord && next != nil {
				rm.Unprotect(next)
			}
			pos.curr = curr
			pos.currProt = h.perRecord
			pos.found = curr.sokey == sokey && curr.key == key
			return pos, true
		}
		// Advance the window: curr's protection slides to the pred slot,
		// next's (acquired above) to the curr slot.
		if h.perRecord && pos.predProt {
			rm.Unprotect(pos.pred)
		}
		pos.pred = curr
		pos.predProt = h.perRecord
		curr = next
	}
}

// failFind releases the protections held by an aborted find: the sliding
// pred plus whichever of curr/next the failing iteration still holds.
func (h *Map[V]) failFind(hd *Handle[V], pos findPos[V], curr, next *Node[V]) {
	if !h.perRecord {
		return
	}
	rm := hd.rm
	if next != nil {
		rm.Unprotect(next)
	}
	if curr != nil {
		rm.Unprotect(curr)
	}
	if pos.predProt {
		rm.Unprotect(pos.pred)
	}
}

// --- Operations -------------------------------------------------------------

// Body outcomes.
const (
	opRetry = iota
	opTrue
	opFalse
)

// Insert adds key with the given value to the map. It returns true if the
// key was inserted and false if it was already present (the value is not
// replaced, matching the set semantics of the module's other structures).
func (h *Map[V]) Insert(tid int, key int64, value V) bool {
	return h.Handle(tid).Insert(key, value)
}

// Insert adds key with the given value through the thread's handle.
func (hd *Handle[V]) Insert(key int64, value V) bool {
	h := hd.h
	// Quiescent preamble: allocate the node the body may publish.
	// Allocation is not re-entrant, so it must not happen inside the body
	// (which can be neutralized and re-run).
	node := hd.rm.Allocate()
	for {
		switch h.insertBody(hd, key, value, node) {
		case opTrue:
			return true
		case opFalse:
			hd.rm.Deallocate(node)
			return false
		default:
			hd.st.restarts.Inc()
		}
	}
}

// insertBody is one execution of the insert body. The linearizing CAS result
// is captured in published before EnterQstate (which can deliver a pending
// neutralization), so recovery decides retry-vs-success from local state
// alone and never touches shared records.
func (h *Map[V]) insertBody(hd *Handle[V], key int64, value V, node *Node[V]) (outcome int) {
	rm := hd.rm
	published := false
	if h.crashRecovery {
		defer neutralize.OnNeutralized(h.mgr, hd.tid, func(neutralize.Neutralized) {
			if published {
				outcome = opTrue
			} else {
				outcome = opRetry
			}
		})
	}
	rm.LeaveQstate()
	hash := hashOf(key)
	sokey := regularSoKey(hash)
	start, ok := h.startBucket(hd, hash)
	if !ok {
		rm.EnterQstate()
		return opRetry
	}
	pos, ok := h.find(hd, start, sokey, key)
	if !ok {
		rm.EnterQstate()
		return opRetry
	}
	if pos.found {
		rm.EnterQstate()
		h.releasePos(hd, pos)
		return opFalse
	}
	initRegular(node, key, value, sokey, pos.curr)
	if pos.pred.next.CompareAndSwap(pos.curr, node) {
		published = true
		h.count.Add(1)
		h.maybeGrow(hd)
		rm.EnterQstate()
		h.releasePos(hd, pos)
		return opTrue
	}
	rm.EnterQstate()
	h.releasePos(hd, pos)
	return opRetry
}

// Delete removes key from the map, returning true if it was present.
func (h *Map[V]) Delete(tid int, key int64) bool { return h.Handle(tid).Delete(key) }

// Delete removes key through the thread's handle.
func (hd *Handle[V]) Delete(key int64) bool {
	h := hd.h
	// Quiescent preamble: allocate the marker the body may publish.
	marker := hd.rm.Allocate()
	for {
		outcome, unlinkedN, unlinkedM := h.deleteBody(hd, key, marker)
		switch outcome {
		case opTrue:
			// Quiescent postamble: if our own unlink CAS won, the node and
			// its marker are unreachable and it is on us to retire them
			// (otherwise a later traversal unlinks and retires the pair).
			if unlinkedN != nil {
				hd.rm.Retire(unlinkedN)
				hd.rm.Retire(unlinkedM)
			}
			return true
		case opFalse:
			hd.rm.Deallocate(marker)
			return false
		default:
			hd.st.restarts.Inc()
		}
	}
}

// deleteBody is one execution of the delete body. Linearization is the
// marker CAS on the victim's next field; its result is captured in marked
// before any further checkpoint, so neutralization recovery never has to
// guess whether the delete took effect.
func (h *Map[V]) deleteBody(hd *Handle[V], key int64, marker *Node[V]) (outcome int, unlinkedN, unlinkedM *Node[V]) {
	rm := hd.rm
	marked := false
	if h.crashRecovery {
		defer neutralize.OnNeutralized(h.mgr, hd.tid, func(neutralize.Neutralized) {
			if marked {
				// The named unlinked pair (set before EnterQstate) rides
				// out through the named returns.
				outcome = opTrue
			} else {
				outcome = opRetry
				unlinkedN, unlinkedM = nil, nil
			}
		})
	}
	rm.LeaveQstate()
	hash := hashOf(key)
	sokey := regularSoKey(hash)
	start, ok := h.startBucket(hd, hash)
	if !ok {
		rm.EnterQstate()
		return opRetry, nil, nil
	}
	pos, ok := h.find(hd, start, sokey, key)
	if !ok {
		rm.EnterQstate()
		return opRetry, nil, nil
	}
	if !pos.found {
		rm.EnterQstate()
		h.releasePos(hd, pos)
		return opFalse, nil, nil
	}
	n := pos.curr
	s := n.next.Load()
	if s != nil {
		// s must be inspected (is n already marked?) and is dereferenced as
		// the marker's frozen successor, so protect-and-validate it first.
		// As in find, validating through n.next alone is not enough when s
		// is a marker (the field froze at the mark), so n's own continued
		// reachability from the protected pred completes the proof that s
		// has not been reclaimed.
		if h.perRecord {
			if !rm.Protect(s) {
				rm.EnterQstate()
				h.releasePos(hd, pos)
				return opRetry, nil, nil
			}
			if n.next.Load() != s || pos.pred.next.Load() != n {
				rm.EnterQstate()
				rm.Unprotect(s)
				h.releasePos(hd, pos)
				return opRetry, nil, nil
			}
		}
		h.observe(hd.tid, s)
		if s.kind == kindMarker {
			// Another delete already marked n: this delete linearizes after
			// it and finds the key absent. The retry's find unlinks the pair
			// and reports not-found.
			rm.EnterQstate()
			if h.perRecord {
				rm.Unprotect(s)
			}
			h.releasePos(hd, pos)
			return opRetry, nil, nil
		}
	}
	initMarker(marker, s)
	if n.next.CompareAndSwap(s, marker) {
		// Linearized: key removed. Try to unlink the pair ourselves; on
		// failure a later traversal's find will (helping is cheap here —
		// unlinking needs no descriptor, just the pair itself).
		marked = true
		h.count.Add(-1)
		if pos.pred.next.CompareAndSwap(n, s) {
			unlinkedN, unlinkedM = n, marker
			hd.st.unlinks.Inc()
		}
		rm.EnterQstate()
		if h.perRecord && s != nil {
			rm.Unprotect(s)
		}
		h.releasePos(hd, pos)
		return opTrue, unlinkedN, unlinkedM
	}
	rm.EnterQstate()
	if h.perRecord && s != nil {
		rm.Unprotect(s)
	}
	h.releasePos(hd, pos)
	return opRetry, nil, nil
}

// Upsert outcomes beyond the shared opRetry/opTrue/opFalse (the body needs
// to distinguish how far the replace protocol progressed).
const (
	// opUpsertInserted: the key was absent and node was spliced in.
	opUpsertInserted = iota + 16
	// opUpsertReplaced: the existing node was marked and replaced by node in
	// the same attempt (the caller retires the unlinked pair).
	opUpsertReplaced
	// opUpsertMarkedOnly: the existing node was marked (the delete
	// linearized and the marker is consumed) but the replace CAS lost; the
	// caller retries, which will insert.
	opUpsertMarkedOnly
)

// Upsert sets key to value: it inserts the key when absent and replaces the
// existing binding otherwise, returning the previous value and whether the
// key was present. A replacement is performed as a logical delete of the
// current node (the linearization point of the removal) followed by the
// insertion of the new node — when possible both happen in one window where
// the second CAS simultaneously unlinks the marked pair and splices the new
// node, but a concurrent reader may still observe the transient absence
// between the two linearization points (Upsert is a Delete+Insert
// composition, not a single atomic read-modify-write).
func (h *Map[V]) Upsert(tid int, key int64, value V) (prev V, replaced bool) {
	return h.Handle(tid).Upsert(key, value)
}

// Upsert sets key to value through the thread's handle (see Map.Upsert).
func (hd *Handle[V]) Upsert(key int64, value V) (prev V, replaced bool) {
	h := hd.h
	// Quiescent preamble: allocate the node the body publishes and the
	// marker a replacement consumes (re-allocated when an attempt consumes
	// it without finishing; allocation must not happen inside a body that
	// can be neutralized and re-run).
	node := hd.rm.Allocate()
	var marker *Node[V]
	for {
		if marker == nil {
			marker = hd.rm.Allocate()
		}
		outcome, pv, uN, uM := h.upsertBody(hd, key, value, node, marker)
		switch outcome {
		case opUpsertInserted:
			// prev/replaced may have been set by an earlier attempt that
			// marked the old node but lost the replace CAS.
			hd.rm.Deallocate(marker)
			return prev, replaced
		case opUpsertReplaced:
			if uN != nil {
				hd.rm.Retire(uN)
				hd.rm.Retire(uM)
			}
			return pv, true
		case opUpsertMarkedOnly:
			prev, replaced = pv, true
			marker = nil // published as the old node's mark; not reusable
			hd.st.restarts.Inc()
		default:
			hd.st.restarts.Inc()
		}
	}
}

// upsertBody is one execution of the upsert body. Two linearizing CASes can
// happen: the marker CAS (removal of the old binding, captured in marked)
// and the splice CAS (publication of the new one, captured in published);
// both locals are set before any further checkpoint so neutralization
// recovery reconstructs the outcome from local state alone, exactly as in
// insertBody/deleteBody.
func (h *Map[V]) upsertBody(hd *Handle[V], key int64, value V, node, marker *Node[V]) (outcome int, prevVal V, unlinkedN, unlinkedM *Node[V]) {
	rm := hd.rm
	published := false
	marked := false
	if h.crashRecovery {
		defer neutralize.OnNeutralized(h.mgr, hd.tid, func(neutralize.Neutralized) {
			switch {
			case published && marked:
				outcome = opUpsertReplaced // unlinked pair rides the named returns
			case published:
				outcome = opUpsertInserted
				unlinkedN, unlinkedM = nil, nil
			case marked:
				outcome = opUpsertMarkedOnly
				unlinkedN, unlinkedM = nil, nil
			default:
				outcome = opRetry
				unlinkedN, unlinkedM = nil, nil
			}
		})
	}
	rm.LeaveQstate()
	hash := hashOf(key)
	sokey := regularSoKey(hash)
	start, ok := h.startBucket(hd, hash)
	if !ok {
		rm.EnterQstate()
		return opRetry, prevVal, nil, nil
	}
	pos, ok := h.find(hd, start, sokey, key)
	if !ok {
		rm.EnterQstate()
		return opRetry, prevVal, nil, nil
	}
	if !pos.found {
		// Absent: plain insert (cf. insertBody).
		initRegular(node, key, value, sokey, pos.curr)
		if pos.pred.next.CompareAndSwap(pos.curr, node) {
			published = true
			h.count.Add(1)
			h.maybeGrow(hd)
			rm.EnterQstate()
			h.releasePos(hd, pos)
			return opUpsertInserted, prevVal, nil, nil
		}
		rm.EnterQstate()
		h.releasePos(hd, pos)
		return opRetry, prevVal, nil, nil
	}
	// Present: replace. Mark the current node first (cf. deleteBody), then
	// try to swap the (node, marker) pair for the replacement in one CAS.
	n := pos.curr
	s := n.next.Load()
	if s != nil {
		if h.perRecord {
			if !rm.Protect(s) {
				rm.EnterQstate()
				h.releasePos(hd, pos)
				return opRetry, prevVal, nil, nil
			}
			if n.next.Load() != s || pos.pred.next.Load() != n {
				rm.EnterQstate()
				rm.Unprotect(s)
				h.releasePos(hd, pos)
				return opRetry, prevVal, nil, nil
			}
		}
		h.observe(hd.tid, s)
		if s.kind == kindMarker {
			// A concurrent delete marked n: retry; the next find unlinks the
			// pair and reports the key absent.
			rm.EnterQstate()
			if h.perRecord {
				rm.Unprotect(s)
			}
			h.releasePos(hd, pos)
			return opRetry, prevVal, nil, nil
		}
	}
	prevVal = n.value
	initMarker(marker, s)
	if n.next.CompareAndSwap(s, marker) {
		// Removal linearized. Try to replace the pair with the new node:
		// node takes n's place with n's frozen successor.
		marked = true
		h.count.Add(-1)
		initRegular(node, key, value, sokey, s)
		if pos.pred.next.CompareAndSwap(n, node) {
			published = true
			h.count.Add(1)
			unlinkedN, unlinkedM = n, marker
			hd.st.unlinks.Inc()
		}
		rm.EnterQstate()
		if h.perRecord && s != nil {
			rm.Unprotect(s)
		}
		h.releasePos(hd, pos)
		if published {
			return opUpsertReplaced, prevVal, unlinkedN, unlinkedM
		}
		return opUpsertMarkedOnly, prevVal, nil, nil
	}
	rm.EnterQstate()
	if h.perRecord && s != nil {
		rm.Unprotect(s)
	}
	h.releasePos(hd, pos)
	return opRetry, prevVal, nil, nil
}

// Get returns the value associated with key and whether it is present.
func (h *Map[V]) Get(tid int, key int64) (V, bool) { return h.Handle(tid).Get(key) }

// Get returns the value associated with key through the thread's handle.
func (hd *Handle[V]) Get(key int64) (V, bool) {
	h := hd.h
	for {
		v, ok, done := h.getBody(hd, key)
		if done {
			return v, ok
		}
		hd.st.restarts.Inc()
	}
}

// getBody is one attempt of Get. done=false means restart (protection
// validation failed or the attempt was neutralized; read-only recovery is
// trivially discard-and-retry).
func (h *Map[V]) getBody(hd *Handle[V], key int64) (val V, found, done bool) {
	rm := hd.rm
	if h.crashRecovery {
		defer neutralize.OnNeutralized(h.mgr, hd.tid, func(neutralize.Neutralized) {
			var zero V
			val, found, done = zero, false, false
		})
	}
	rm.LeaveQstate()
	hash := hashOf(key)
	sokey := regularSoKey(hash)
	start, ok := h.startBucket(hd, hash)
	if !ok {
		rm.EnterQstate()
		return val, false, false
	}
	pos, ok := h.find(hd, start, sokey, key)
	if !ok {
		rm.EnterQstate()
		return val, false, false
	}
	if pos.found {
		// Read the value while curr is still safe to access, before
		// EnterQstate can deliver a neutralization that would invalidate it.
		val = pos.curr.value
		found = true
	}
	rm.EnterQstate()
	h.releasePos(hd, pos)
	return val, found, true
}

// Contains reports whether key is in the map.
func (h *Map[V]) Contains(tid int, key int64) bool { return h.Handle(tid).Contains(key) }

// Contains reports whether key is in the map through the thread's handle.
func (hd *Handle[V]) Contains(key int64) bool {
	_, ok := hd.Get(key)
	return ok
}

// --- Quiescent helpers ------------------------------------------------------

// step follows a node's next link, skipping over a deletion marker.
func step[V any](n *Node[V]) *Node[V] {
	next := n.next.Load()
	if next != nil && next.kind == kindMarker {
		return next.next.Load()
	}
	return next
}

// isLive reports whether a node is an unmarked regular node.
func isLive[V any](n *Node[V]) bool {
	if n.kind != kindRegular {
		return false
	}
	next := n.next.Load()
	return next == nil || next.kind != kindMarker
}

// Len returns the number of live keys by walking the list (quiescent use
// only; Count is the O(1) counter-based alternative).
func (h *Map[V]) Len() int {
	n := 0
	for curr := h.head; curr != nil; curr = step(curr) {
		if isLive(curr) {
			n++
		}
	}
	return n
}

// ForEach visits every live key/value pair (quiescent use only). The order
// is split-order, not key order.
func (h *Map[V]) ForEach(fn func(key int64, value V) bool) {
	for curr := h.head; curr != nil; curr = step(curr) {
		if isLive(curr) {
			if !fn(curr.key, curr.value) {
				return
			}
		}
	}
}

// Validate checks the structural invariants (quiescent use only): the list
// is strictly sorted by (sokey, key), markers only follow regular nodes, and
// every initialised bucket's dummy is reachable.
func (h *Map[V]) Validate() error {
	// Order along the list.
	prev := h.head
	seen := map[*Node[V]]bool{h.head: true}
	for curr := step(h.head); curr != nil; curr = step(curr) {
		if curr.kind == kindMarker {
			return fmt.Errorf("hashmap: marker reachable as a primary node")
		}
		if seen[curr] {
			return fmt.Errorf("hashmap: cycle at sokey %#x", curr.sokey)
		}
		seen[curr] = true
		if !soLess(prev.sokey, prev.key, curr.sokey, curr.key) {
			return fmt.Errorf("hashmap: out of split order: (%#x,%d) before (%#x,%d)",
				prev.sokey, prev.key, curr.sokey, curr.key)
		}
		prev = curr
	}
	// Every initialised bucket's dummy is on the list.
	size := h.size.Load()
	for b := uint64(1); b < size; b++ {
		p := bits.Len64(b) - 1
		seg := h.segments[p].Load()
		if seg == nil {
			continue
		}
		if d := seg.buckets[b-1<<p].Load(); d != nil && !seen[d] {
			return fmt.Errorf("hashmap: bucket %d dummy not reachable", b)
		}
	}
	return nil
}
