package hashmap_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/raceenabled"
	"repro/internal/reclaim/debraplus"
	"repro/internal/reclaim/hp"
	"repro/internal/reclaimtest"
	"repro/internal/recordmgr"
)

func allSchemes() []string { return recordmgr.Schemes() }

// newMap builds a map for the named scheme with a bump allocator and pool.
func newMap(t testing.TB, scheme string, threads int, opts ...hashmap.Option) *hashmap.Map[int64] {
	t.Helper()
	mgr, err := recordmgr.Build[hashmap.Node[int64]](recordmgr.Config{
		Scheme:    scheme,
		Threads:   threads,
		Allocator: recordmgr.AllocBump,
		UsePool:   true,
	})
	if err != nil {
		t.Fatalf("building record manager: %v", err)
	}
	return hashmap.New(mgr, threads, opts...)
}

func TestEmptyMap(t *testing.T) {
	m := newMap(t, recordmgr.SchemeDEBRA, 1)
	if m.Contains(0, 42) {
		t.Fatal("empty map claims to contain a key")
	}
	if m.Delete(0, 42) {
		t.Fatal("empty map deleted a key")
	}
	if _, ok := m.Get(0, 42); ok {
		t.Fatal("empty map returned a value")
	}
	if m.Len() != 0 || m.Count() != 0 {
		t.Fatalf("empty map has Len=%d Count=%d", m.Len(), m.Count())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetDelete(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			m := newMap(t, scheme, 1)
			if !m.Insert(0, 1, 100) {
				t.Fatal("first insert failed")
			}
			if m.Insert(0, 1, 200) {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok := m.Get(0, 1); !ok || v != 100 {
				t.Fatalf("Get(1) = %d,%v want 100,true (duplicate insert must not replace)", v, ok)
			}
			if !m.Delete(0, 1) {
				t.Fatal("delete of present key failed")
			}
			if m.Delete(0, 1) {
				t.Fatal("delete of absent key succeeded")
			}
			if m.Contains(0, 1) {
				t.Fatal("deleted key still present")
			}
			// Reinsertion after delete recycles through the pool.
			if !m.Insert(0, 1, 300) {
				t.Fatal("reinsert failed")
			}
			if v, _ := m.Get(0, 1); v != 300 {
				t.Fatalf("reinserted value = %d want 300", v)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFullKeyRange(t *testing.T) {
	// The split-ordered list needs no sentinel keys: the extremes of int64
	// are usable, including negatives.
	m := newMap(t, recordmgr.SchemeDEBRA, 1)
	keys := []int64{0, -1, 1, 1<<63 - 1, -1 << 63, 1234567890123456789}
	for _, k := range keys {
		if !m.Insert(0, k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for _, k := range keys {
		if v, ok := m.Get(0, k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", m.Len(), len(keys))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeGrowth(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			m := newMap(t, scheme, 1, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
			const n = 2000
			for i := int64(0); i < n; i++ {
				if !m.Insert(0, i, i*10) {
					t.Fatalf("insert %d failed", i)
				}
			}
			if got := m.Buckets(); got <= 2 {
				t.Fatalf("table never grew: %d buckets", got)
			}
			if s := m.Stats(); s.Resizes == 0 || s.Dummies == 0 {
				t.Fatalf("expected resizes and dummy splices, got %+v", s)
			}
			for i := int64(0); i < n; i++ {
				if v, ok := m.Get(0, i); !ok || v != i*10 {
					t.Fatalf("after resize Get(%d) = %d,%v", i, v, ok)
				}
			}
			if m.Len() != n || m.Count() != n {
				t.Fatalf("Len=%d Count=%d want %d", m.Len(), m.Count(), n)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMaxBucketsCap(t *testing.T) {
	m := newMap(t, recordmgr.SchemeNone, 1,
		hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(1), hashmap.WithMaxBuckets(4))
	for i := int64(0); i < 200; i++ {
		m.Insert(0, i, i)
	}
	if got := m.Buckets(); got > 4 {
		t.Fatalf("table grew past the cap: %d buckets", got)
	}
	if m.Len() != 200 {
		t.Fatalf("Len=%d want 200", m.Len())
	}
}

func TestForEachAndLen(t *testing.T) {
	m := newMap(t, recordmgr.SchemeEBR, 1)
	want := map[int64]int64{}
	for i := int64(0); i < 300; i++ {
		m.Insert(0, i, i*i)
		want[i] = i * i
	}
	for i := int64(0); i < 300; i += 3 {
		m.Delete(0, i)
		delete(want, i)
	}
	got := map[int64]int64{}
	m.ForEach(func(k, v int64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) || m.Len() != len(want) {
		t.Fatalf("iterated %d keys, Len=%d, want %d", len(got), m.Len(), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d want %d", k, got[k], v)
		}
	}
	// Early termination.
	visits := 0
	m.ForEach(func(int64, int64) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("ForEach visited %d after stop request", visits)
	}
}

func TestAgainstModelSequential(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			m := newMap(t, scheme, 1, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(512)
				switch rng.Intn(3) {
				case 0:
					_, present := model[key]
					if m.Insert(0, key, key) == present {
						t.Fatalf("op %d: Insert(%d) disagrees with model (present=%v)", i, key, present)
					}
					model[key] = key
				case 1:
					_, present := model[key]
					if m.Delete(0, key) != present {
						t.Fatalf("op %d: Delete(%d) disagrees with model (present=%v)", i, key, present)
					}
					delete(model, key)
				default:
					_, present := model[key]
					if m.Contains(0, key) != present {
						t.Fatalf("op %d: Contains(%d) disagrees with model (present=%v)", i, key, present)
					}
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("final Len=%d want %d", m.Len(), len(model))
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// --- reclaimtest wiring: poison-sink safety harness under every scheme ------

// setAdapter adapts Map to the reclaimtest.Set surface.
type setAdapter struct{ m *hashmap.Map[int64] }

func (s setAdapter) Insert(tid int, key int64) bool   { return s.m.Insert(tid, key, key) }
func (s setAdapter) Delete(tid int, key int64) bool   { return s.m.Delete(tid, key) }
func (s setAdapter) Contains(tid int, key int64) bool { return s.m.Contains(tid, key) }

// poisonedMapFactory builds a map whose pool poisons freed records and whose
// visit hook counts observations of poisoned records, for the given
// reclaimer constructor. The neutralization domain is created here and
// handed to the constructor so the hook can discard observations made with a
// signal pending: those belong to a doomed DEBRA+ attempt whose results are
// thrown away, the same discard rule the raw-reclaimer Stress applies (for
// non-neutralizing schemes Pending is always false and every observation
// counts).
func poisonedMapFactory(newReclaimer func(n int, sink core.FreeSink[hashmap.Node[int64]], dom *neutralize.Domain) core.Reclaimer[hashmap.Node[int64]]) reclaimtest.SetFactory {
	return poisonedBatchedMapFactory(0, newReclaimer)
}

// poisonedBatchedMapFactory additionally enables the Record Manager's
// deferred-retire batching with the given batch size (0 = direct retirement).
func poisonedBatchedMapFactory(batch int, newReclaimer func(n int, sink core.FreeSink[hashmap.Node[int64]], dom *neutralize.Domain) core.Reclaimer[hashmap.Node[int64]]) reclaimtest.SetFactory {
	return func(n int) reclaimtest.SetUnderTest {
		type rec = hashmap.Node[int64]
		alloc := arena.NewBump[rec](n, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](n, alloc))
		dom := neutralize.NewDomain(n)
		rcl := newReclaimer(n, pp, dom)
		var mopts []core.ManagerOption
		if batch > 0 {
			mopts = append(mopts, core.WithRetireBatching(n, batch))
		}
		mgr := core.NewRecordManager[rec](alloc, pp, rcl, mopts...)
		// Start tiny with an aggressive load factor so the stress exercises
		// incremental resizing and dummy splicing, not just list churn.
		m := hashmap.New[int64](mgr, n, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
		var violations atomic.Int64
		m.SetVisitHook(func(tid int, nd *hashmap.Node[int64]) {
			if nd.IsPoisoned() && !dom.Pending(tid) {
				violations.Add(1)
			}
		})
		return reclaimtest.SetUnderTest{
			Set:         setAdapter{m},
			Violations:  violations.Load,
			DoubleFrees: pp.DoubleFrees,
			Stats:       rcl.Stats,
			Validate:    m.Validate,
		}
	}
}

// poisonedAsyncMapFactory builds a map whose Record Manager runs the
// asynchronous reclamation pipeline (reclaimer goroutines as extra epoch
// participants) over the given sharded-domain spec, with the same poison
// instrumentation as the synchronous factories. Everything per-thread — the
// allocator, the poison pool, the neutralization domain and the scheme — is
// sized for n workers + reclaimers participants, mirroring recordmgr.Build.
func poisonedAsyncMapFactory(t *testing.T, scheme string, reclaimers int, spec core.ShardSpec) reclaimtest.SetFactory {
	return func(n int) reclaimtest.SetUnderTest {
		type rec = hashmap.Node[int64]
		participants := n + reclaimers
		alloc := arena.NewBump[rec](participants, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](participants, alloc))
		dom := neutralize.NewDomain(participants)
		rcl, err := recordmgr.NewShardedReclaimer[rec](scheme, participants, pp, dom, spec)
		if err != nil {
			t.Fatal(err)
		}
		mgr := core.NewRecordManager[rec](alloc, pp, rcl,
			core.WithRetireBatching(n, blockbag.BlockSize),
			core.WithAsyncReclaim(reclaimers))
		m := hashmap.New[int64](mgr, n, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
		var violations atomic.Int64
		m.SetVisitHook(func(tid int, nd *hashmap.Node[int64]) {
			if nd.IsPoisoned() && !dom.Pending(tid) {
				violations.Add(1)
			}
		})
		return reclaimtest.SetUnderTest{
			Set:         setAdapter{m},
			Violations:  violations.Load,
			DoubleFrees: pp.DoubleFrees,
			Stats:       rcl.Stats,
			Validate:    m.Validate,
			Close:       mgr.Close,
		}
	}
}

// churnMapWorker adapts an acquired hashmap.Handle to the
// reclaimtest.ChurnWorker surface.
type churnMapWorker struct {
	m *hashmap.Map[int64]
	h *hashmap.Handle[int64]
}

func (w churnMapWorker) Insert(key int64) bool   { return w.h.Insert(key, key) }
func (w churnMapWorker) Delete(key int64) bool   { return w.h.Delete(key) }
func (w churnMapWorker) Contains(key int64) bool { return w.h.Contains(key) }
func (w churnMapWorker) Release()                { w.m.ReleaseHandle(w.h) }

// poisonedChurnMapFactory builds a poison-instrumented map whose Record
// Manager has more worker slots than stress goroutines (MaxThreads-style
// headroom), exposing the AcquireHandle/ReleaseHandle surface so the churn
// stress can migrate goroutines across slots.
func poisonedChurnMapFactory(t *testing.T, scheme string, spec core.ShardSpec) reclaimtest.SetFactory {
	return func(n int) reclaimtest.SetUnderTest {
		type rec = hashmap.Node[int64]
		// Two spare slots beyond the goroutine count: releases and acquires
		// then genuinely migrate tids instead of always reusing the same one.
		slots := n + 2
		alloc := arena.NewBump[rec](slots, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](slots, alloc))
		dom := neutralize.NewDomain(slots)
		rcl, err := recordmgr.NewShardedReclaimer[rec](scheme, slots, pp, dom, spec)
		if err != nil {
			t.Fatal(err)
		}
		mgr := core.NewRecordManager[rec](alloc, pp, rcl,
			core.WithRetireBatching(slots, 32))
		m := hashmap.New[int64](mgr, slots, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
		var violations atomic.Int64
		m.SetVisitHook(func(tid int, nd *hashmap.Node[int64]) {
			if nd.IsPoisoned() && !dom.Pending(tid) {
				violations.Add(1)
			}
		})
		return reclaimtest.SetUnderTest{
			Set:           setAdapter{m},
			AcquireWorker: func() reclaimtest.ChurnWorker { return churnMapWorker{m: m, h: m.AcquireHandle()} },
			Violations:    violations.Load,
			DoubleFrees:   pp.DoubleFrees,
			Stats:         rcl.Stats,
			Validate:      m.Validate,
			Close:         mgr.Close,
			// Every reclaiming scheme must end with Retired == Freed once
			// Close has flushed and drained; the leaking baseline keeps its
			// garbage by design.
			RequireDrained: scheme != recordmgr.SchemeNone,
		}
	}
}

// TestStressSlotChurn is the slot-churn poison-sink stress of the dynamic
// thread-slot registry: goroutines continually acquire a slot, work, and
// release it (which flushes the slot's retire buffer and returns its pool
// cache), across every scheme and shard counts {1, NumCPU}, with two spare
// slots so tids genuinely migrate between goroutines. A poisoned read after
// slot reuse, a double free during shutdown draining, a wrong answer on a
// goroutine-private key, or leftover limbo after Close fails the test. Run
// under -race in CI.
func TestStressSlotChurn(t *testing.T) {
	shardCounts := []int{1, runtime.NumCPU()}
	if shardCounts[1] == 1 {
		shardCounts = shardCounts[:1]
	}
	for _, scheme := range allSchemes() {
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				spec := core.ShardSpec{Shards: shards}
				factory := poisonedChurnMapFactory(t, scheme, spec)
				opts := reclaimtest.DefaultSetStressOptions()
				opts.Duration = 100 * time.Millisecond
				opts.OpsPerSlot = 48
				reclaimtest.StressSetChurn(t, factory, opts)
			})
		}
	}
}

// TestStressAsyncReclaim runs the poison-sink safety stress with
// asynchronous reclamation enabled, across shard counts {1, NumCPU} and
// reclaimer counts {1, 2}, for every scheme. The reclaimer goroutines
// perform the grace-period wait and the free behind the workers, so this is
// the end-to-end safety check of the hand-off path: a freed-record
// observation or double free here means the async pipeline broke the
// scheme's reclamation contract. After the stress, Close drains the
// pipeline and the poison counters are re-checked.
func TestStressAsyncReclaim(t *testing.T) {
	shardCounts := []int{1, runtime.NumCPU()}
	if shardCounts[1] == 1 {
		shardCounts = shardCounts[:1]
	}
	for _, scheme := range allSchemes() {
		for _, shards := range shardCounts {
			for _, reclaimers := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/shards=%d/reclaimers=%d", scheme, shards, reclaimers), func(t *testing.T) {
					spec := core.ShardSpec{Shards: shards}
					factory := poisonedAsyncMapFactory(t, scheme, reclaimers, spec)
					opts := reclaimtest.DefaultSetStressOptions()
					opts.Duration = 80 * time.Millisecond
					reclaimtest.StressSet(t, factory, opts)
				})
			}
		}
	}
}

// TestStressAllSchemes runs the poison-sink safety stress under all six
// reclamation schemes and shard counts 1, 2 and NumCPU: the tentpole claim
// of this data structure is that every scheme (and every domain
// partitioning) drops in unchanged.
func TestStressAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes() {
		for _, shards := range reclaimtest.ShardCounts() {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				spec := core.ShardSpec{Shards: shards}
				factory := poisonedMapFactory(func(n int, sink core.FreeSink[hashmap.Node[int64]], dom *neutralize.Domain) core.Reclaimer[hashmap.Node[int64]] {
					rcl, err := recordmgr.NewShardedReclaimer[hashmap.Node[int64]](scheme, n, sink, dom, spec)
					if err != nil {
						t.Fatal(err)
					}
					return rcl
				})
				opts := reclaimtest.DefaultSetStressOptions()
				if shards > 1 {
					opts.Duration = 80 * time.Millisecond
				}
				reclaimtest.StressSet(t, factory, opts)
			})
		}
	}
}

// TestStressBatchedRetirement runs the same poison harness with the Record
// Manager's deferred-retire batching enabled: one full-block batch size (the
// O(1) splice path) and one sub-block size (the per-record fallback), each
// over two sharded domains so the batch hand-off and the shard-local limbo
// interact.
func TestStressBatchedRetirement(t *testing.T) {
	for _, scheme := range allSchemes() {
		for _, batch := range []int{blockbag.BlockSize, 32} {
			t.Run(fmt.Sprintf("%s/batch=%d", scheme, batch), func(t *testing.T) {
				spec := core.ShardSpec{Shards: 2, Placement: core.PlaceStripe}
				factory := poisonedBatchedMapFactory(batch, func(n int, sink core.FreeSink[hashmap.Node[int64]], dom *neutralize.Domain) core.Reclaimer[hashmap.Node[int64]] {
					rcl, err := recordmgr.NewShardedReclaimer[hashmap.Node[int64]](scheme, n, sink, dom, spec)
					if err != nil {
						t.Fatal(err)
					}
					return rcl
				})
				opts := reclaimtest.DefaultSetStressOptions()
				opts.Duration = 80 * time.Millisecond
				reclaimtest.StressSet(t, factory, opts)
			})
		}
	}
}

// TestStressAggressiveDebraPlus tunes DEBRA+ so epochs advance and
// neutralization fires as often as possible, exercising the recovery paths
// (retry-on-neutralize, publish-before-EnterQstate capture) rather than only
// the happy path.
func TestStressAggressiveDebraPlus(t *testing.T) {
	if raceenabled.Enabled {
		// Forced neutralization is not race-detector clean: a doomed
		// (signal-pending) operation may read records being re-initialised
		// after recycling, an artifact of simulating asynchronous signals
		// cooperatively (see the note in recordmgr.NewReclaimer).
		t.Skip("skipping forced-neutralization test under the race detector")
	}
	type rec = hashmap.Node[int64]
	var rcl *debraplus.Reclaimer[rec]
	factory := poisonedMapFactory(func(n int, sink core.FreeSink[rec], dom *neutralize.Domain) core.Reclaimer[rec] {
		rcl = debraplus.New[rec](n, sink,
			debraplus.WithDomain(dom),
			debraplus.WithCheckThresh(1),
			debraplus.WithIncrThresh(1),
			debraplus.WithSuspectThresholdBlocks(1),
			debraplus.WithScanThresholdBlocks(1),
		)
		return rcl
	})
	opts := reclaimtest.DefaultSetStressOptions()
	opts.Duration = 300 * time.Millisecond
	reclaimtest.StressSet(t, factory, opts)
	if rcl.Stats().Neutralizations == 0 {
		t.Log("warning: aggressive DEBRA+ stress saw no neutralizations (timing dependent)")
	}
}

// TestStressAggressiveHP shrinks the HP retire threshold so hazard pointer
// scans (and frees behind unprotected readers) happen constantly.
func TestStressAggressiveHP(t *testing.T) {
	type rec = hashmap.Node[int64]
	factory := poisonedMapFactory(func(n int, sink core.FreeSink[rec], dom *neutralize.Domain) core.Reclaimer[rec] {
		return hp.New[rec](n, sink, hp.WithRetireThreshold(32))
	})
	opts := reclaimtest.DefaultSetStressOptions()
	opts.Duration = 300 * time.Millisecond
	reclaimtest.StressSet(t, factory, opts)
}

// --- concurrent churn under the race detector -------------------------------

// TestConcurrentChurn drives every scheme with plain goroutine churn and
// per-thread disjoint final states, small enough to stay fast under
// `go test -race -short`.
func TestConcurrentChurn(t *testing.T) {
	threads := 4
	iters := int64(3000)
	if testing.Short() {
		iters = 800
	}
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			m := newMap(t, scheme, threads, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := int64(tid) * iters
					// Insert a private band, churn a shared band, then
					// delete every other private key.
					for i := int64(0); i < iters; i++ {
						if !m.Insert(tid, base+i, base+i) {
							t.Errorf("tid %d: insert %d failed", tid, base+i)
							return
						}
						shared := -1 - (i % 97) // negative: disjoint from bands
						m.Insert(tid, shared, shared)
						m.Contains(tid, shared)
						m.Delete(tid, shared)
					}
					for i := int64(0); i < iters; i += 2 {
						if !m.Delete(tid, base+i) {
							t.Errorf("tid %d: delete %d failed", tid, base+i)
							return
						}
					}
				}(tid)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Every thread's odd private keys survive.
			for tid := 0; tid < threads; tid++ {
				base := int64(tid) * iters
				for i := int64(1); i < iters; i += 2 {
					if !m.Contains(0, base+i) {
						t.Fatalf("surviving key %d missing", base+i)
					}
				}
				if m.Contains(0, base) {
					t.Fatalf("deleted key %d still present", base)
				}
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			st := m.Manager().Stats()
			if st.Reclaimer.Freed > st.Reclaimer.Retired {
				t.Fatalf("freed %d > retired %d", st.Reclaimer.Freed, st.Reclaimer.Retired)
			}
		})
	}
}

// TestConcurrentReaders checks lock-free readers against a steady writer.
func TestConcurrentReaders(t *testing.T) {
	threads := 4
	m := newMap(t, recordmgr.SchemeHP, threads, hashmap.WithInitialBuckets(4))
	const keys = 128
	for i := int64(0); i < keys; i++ {
		m.Insert(0, i, i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Writer flips keys in and out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !stop.Load() {
			k := rng.Int63n(keys)
			if !m.Delete(0, k) {
				m.Insert(0, k, k)
			}
		}
	}()
	for tid := 1; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)))
			for !stop.Load() {
				k := rng.Int63n(keys)
				if v, ok := m.Get(tid, k); ok && v != k {
					t.Errorf("Get(%d) returned foreign value %d", k, v)
					return
				}
			}
		}(tid)
	}
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

// --- Upsert -----------------------------------------------------------------

func TestUpsertSequential(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			m := newMap(t, scheme, 1, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 10000; i++ {
				key := rng.Int63n(256)
				switch rng.Intn(4) {
				case 0:
					want, present := model[key]
					prev, replaced := m.Upsert(0, key, int64(i))
					if replaced != present || (present && prev != want) {
						t.Fatalf("op %d: Upsert(%d) = (%d,%v), model (%d,%v)", i, key, prev, replaced, want, present)
					}
					model[key] = int64(i)
				case 1:
					_, present := model[key]
					if m.Delete(0, key) != present {
						t.Fatalf("op %d: Delete(%d) disagrees with model", i, key)
					}
					delete(model, key)
				case 2:
					_, present := model[key]
					if m.Insert(0, key, int64(i)) == present {
						t.Fatalf("op %d: Insert(%d) disagrees with model", i, key)
					}
					if !present {
						model[key] = int64(i)
					}
				default:
					want, present := model[key]
					got, ok := m.Get(0, key)
					if ok != present || (present && got != want) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, key, got, ok, want, present)
					}
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("final Len=%d want %d", m.Len(), len(model))
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUpsertConcurrent hammers a small key set with concurrent upserts and
// readers: every observed value must be one some thread actually wrote for
// that key (values encode (key, writer) so cross-key leaks are caught), and
// the final state must be consistent.
func TestUpsertConcurrent(t *testing.T) {
	threads := 4
	const keys = 32
	iters := int64(4000)
	if testing.Short() {
		iters = 1000
	}
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			m := newMap(t, scheme, threads, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid) + 99))
					for i := int64(0); i < iters; i++ {
						key := rng.Int63n(keys)
						if rng.Intn(4) == 0 {
							if v, ok := m.Get(tid, key); ok && v%keys != key {
								t.Errorf("Get(%d) observed value %d written for key %d", key, v, v%keys)
								return
							}
						} else {
							// value encodes the key so readers can detect
							// cross-key corruption.
							m.Upsert(tid, key, key+keys*(int64(tid)*iters+i))
						}
					}
				}(tid)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			m.ForEach(func(k, v int64) bool {
				if v%keys != k {
					t.Errorf("final value %d does not belong to key %d", v, k)
					return false
				}
				return true
			})
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if c, l := m.Count(), m.Len(); c != l {
				t.Fatalf("Count=%d disagrees with Len=%d", c, l)
			}
		})
	}
}

func TestNewPanics(t *testing.T) {
	if !panics(func() { hashmap.New[int64](nil, 1) }) {
		t.Fatal("New(nil) did not panic")
	}
	mgr := recordmgr.MustBuild[hashmap.Node[int64]](recordmgr.Config{Scheme: recordmgr.SchemeNone, Threads: 1})
	if !panics(func() { hashmap.New(mgr, 0) }) {
		t.Fatal("New with 0 threads did not panic")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

// BenchmarkMapSequential is a quick single-thread sanity benchmark; the real
// panels live in the repo-level bench_test.go.
func BenchmarkMapSequential(b *testing.B) {
	for _, scheme := range allSchemes() {
		b.Run(scheme, func(b *testing.B) {
			mgr := recordmgr.MustBuild[hashmap.Node[int64]](recordmgr.Config{
				Scheme: scheme, Threads: 1, UsePool: true,
			})
			m := hashmap.New(mgr, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i % 4096)
				m.Insert(0, k, k)
				m.Contains(0, k)
				m.Delete(0, k)
			}
		})
	}
}
