package bst

import "repro/internal/neutralize"

// attemptOutcome is the result of one body execution of an update operation.
type attemptOutcome int

const (
	// attemptRetry: nothing was published; run the body again.
	attemptRetry attemptOutcome = iota
	// attemptSucceeded: the operation's descriptor was published and the
	// operation took effect.
	attemptSucceeded
	// attemptFailedPublished: the descriptor was published but the
	// operation was backtracked (delete only); the descriptor must be
	// retired and the operation retried with a fresh one.
	attemptFailedPublished
	// attemptKeyAbsent / attemptKeyPresent: the operation completed without
	// publishing anything because the key was missing (delete) or already
	// present (insert).
	attemptKeyAbsent
	attemptKeyPresent
)

// Insert adds key with the given value to the set. It returns true if the
// key was inserted and false if it was already present (the value is not
// replaced, matching the set semantics used in the paper's experiments).
// key must be smaller than Infinity1.
func (t *Tree[V]) Insert(tid int, key int64, value V) bool {
	return t.Handle(tid).Insert(key, value)
}

// Insert adds key with the given value through the thread's handle.
func (hd Handle[V]) Insert(key int64, value V) bool {
	if key >= Infinity1 {
		panic("bst: key must be smaller than Infinity1")
	}
	t, rm := hd.t, hd.rm
	// Quiescent preamble: allocate everything the body might publish.
	// Allocation is not re-entrant, so it must not happen inside the body
	// (which can be neutralized and re-run).
	newLeaf := rm.Allocate()
	sibling := rm.Allocate()
	internal := rm.Allocate()
	desc := rm.Allocate()
	for {
		outcome, oldLeaf := t.insertBody(hd, key, value, newLeaf, sibling, internal, desc)
		switch outcome {
		case attemptSucceeded:
			// Quiescent postamble: the replaced leaf and, eventually, the
			// descriptor become garbage. The descriptor stays reachable
			// through p's update field until a later operation replaces it
			// (retire-on-replace), so only the leaf is retired here.
			if oldLeaf != nil {
				rm.Retire(oldLeaf)
			}
			return true
		case attemptKeyPresent:
			// Nothing was published; recycle the scratch records.
			rm.Deallocate(newLeaf)
			rm.Deallocate(sibling)
			rm.Deallocate(internal)
			rm.Deallocate(desc)
			return false
		default:
			hd.st.restarts.Inc()
		}
	}
}

// insertBody is one execution of the insert body (Figure 5's structure). It
// returns the outcome and, on success, the leaf that was replaced.
func (t *Tree[V]) insertBody(hd Handle[V], key int64, value V,
	newLeaf, sibling, internal, desc *Record[V]) (outcome attemptOutcome, oldLeaf *Record[V]) {
	rm := hd.rm
	if t.crashRecovery {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := neutralize.Recover(v); ok {
					// Recovery (running quiescent): if we announced the
					// descriptor we may already have published it, so help
					// it to completion; otherwise simply retry.
					hd.st.recov.Inc()
					if rm.IsRProtected(desc) && t.ownerInsert(hd, desc, true) {
						outcome = attemptSucceeded
						oldLeaf = desc.l
					} else {
						outcome = attemptRetry
					}
					rm.RUnprotectAll()
				}
			}
		}()
	}
	rm.LeaveQstate()
	res := t.search(hd, key)
	if !res.ok {
		rm.EnterQstate()
		return attemptRetry, nil
	}
	if res.l.key == key {
		rm.EnterQstate()
		t.releaseAllProtection(hd, res)
		return attemptKeyPresent, nil
	}
	if res.pupdate != nil && res.pupdate.state != StateClean {
		// p is flagged or marked by another operation: help it (epoch
		// schemes) or back off (per-record schemes, which cannot safely
		// chase another operation's records — the paper's HP compromise).
		if !t.perRecord {
			t.help(hd, res.p, res.pupdate)
		}
		rm.EnterQstate()
		t.releaseAllProtection(hd, res)
		return attemptRetry, nil
	}

	// Initialise the records to publish. The new internal node's children
	// are the new leaf and a copy of the existing leaf, ordered by key; the
	// existing leaf is replaced (and later retired), as in the original
	// algorithm.
	initLeaf(newLeaf, key, value)
	initLeaf(sibling, res.l.key, res.l.value)
	var left, right *Record[V]
	if key < res.l.key {
		left, right = newLeaf, sibling
	} else {
		left, right = sibling, newLeaf
	}
	maxKey := key
	if res.l.key > maxKey {
		maxKey = res.l.key
	}
	initInternal(internal, maxKey, left, right, &t.initialClean)
	initIInfo(desc, key, res.p, res.l, internal, res.pupdate)

	if t.crashRecovery {
		rm.RProtect(res.p)
		rm.RProtect(res.l)
		rm.RProtect(internal)
		if info := cellInfo(res.pupdate); info != nil {
			rm.RProtect(info)
		}
		rm.RProtect(desc)
	}
	ok := t.ownerInsert(hd, desc, false)
	rm.EnterQstate()
	if t.crashRecovery {
		rm.RUnprotectAll()
	}
	t.releaseAllProtection(hd, res)
	if ok {
		return attemptSucceeded, res.l
	}
	return attemptRetry, nil
}

// ownerInsert is the owner's (idempotent) help procedure for its own
// insertion descriptor: ensure the parent is flagged with desc and the
// insertion is carried out. It returns true when the insertion took effect
// and false when the flag could not be installed (the operation was never
// published and must be retried). inRecovery suppresses helping other
// operations, which recovery code must not do because it only holds
// recovery protections for its own operation's records.
func (t *Tree[V]) ownerInsert(hd Handle[V], desc *Record[V], inRecovery bool) bool {
	for {
		if desc.outcome.Load() == outcomeSucceeded {
			return true
		}
		cur := desc.p.update.Load()
		switch cur {
		case &desc.flagCell:
			// Flag already installed (possibly before a neutralization).
			t.helpInsert(hd, desc)
			return true
		case &desc.cleanCell:
			// Fully completed (possibly by a helper).
			return true
		case desc.pupdate:
			if desc.p.update.CompareAndSwap(desc.pupdate, &desc.flagCell) {
				t.retireReplacedInfo(hd, desc.pupdate)
				t.helpInsert(hd, desc)
				return true
			}
		default:
			// Our flag is not installed and p's update has moved on. If the
			// operation had been published and completed, outcome would have
			// been set before p.update could move past our clean cell.
			if desc.outcome.Load() == outcomeSucceeded {
				return true
			}
			if !t.perRecord && !inRecovery && !t.crashRecovery {
				t.help(hd, desc.p, cur)
			}
			return false
		}
	}
}

// helpInsert completes a published insertion: splice the new internal node
// in place of the old leaf and unflag the parent. Idempotent; callable by
// any thread that holds a safe reference to desc.
func (t *Tree[V]) helpInsert(hd Handle[V], desc *Record[V]) {
	t.casChild(desc.p, desc.l, desc.newChild, desc.searchK)
	desc.outcome.CompareAndSwap(outcomePending, outcomeSucceeded)
	desc.p.update.CompareAndSwap(&desc.flagCell, &desc.cleanCell)
}

// Delete removes key from the set, returning true if it was present.
func (t *Tree[V]) Delete(tid int, key int64) bool { return t.Handle(tid).Delete(key) }

// Delete removes key from the set through the thread's handle.
func (hd Handle[V]) Delete(key int64) bool {
	if key >= Infinity1 {
		return false
	}
	t, rm := hd.t, hd.rm
	// Quiescent preamble.
	desc := rm.Allocate()
	for {
		outcome, removedParent, removedLeaf := t.deleteBody(hd, key, desc)
		switch outcome {
		case attemptSucceeded:
			// The spliced-out parent and the removed leaf are garbage; the
			// descriptor remains referenced by gp's update field and is
			// retired by whichever operation later replaces that reference.
			// The two records were captured inside the body, while the
			// descriptor was still safe to read: once we are quiescent the
			// descriptor itself may be retired (retire-on-replace) and
			// recycled by another thread at any moment.
			rm.Retire(removedParent)
			rm.Retire(removedLeaf)
			return true
		case attemptKeyAbsent:
			rm.Deallocate(desc)
			return false
		case attemptFailedPublished:
			// The descriptor was flagged into gp and then backtracked; it
			// stays reachable through gp's update field, so allocate a
			// fresh descriptor for the next attempt and let
			// retire-on-replace dispose of this one.
			desc = rm.Allocate()
			hd.st.restarts.Inc()
		default:
			hd.st.restarts.Inc()
		}
	}
}

// deleteBody is one execution of the delete body. On success it also returns
// the spliced-out parent and removed leaf (captured while the descriptor was
// still safe to read) so the caller can retire them in its quiescent
// postamble.
func (t *Tree[V]) deleteBody(hd Handle[V], key int64, desc *Record[V]) (outcome attemptOutcome, removedParent, removedLeaf *Record[V]) {
	rm := hd.rm
	if t.crashRecovery {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := neutralize.Recover(v); ok {
					hd.st.recov.Inc()
					if rm.IsRProtected(desc) {
						// The descriptor (and the records it names) are
						// still recovery-protected here, so reading its
						// fields is safe until RUnprotectAll below.
						switch t.ownerDelete(hd, desc, true) {
						case outcomeSucceeded:
							outcome = attemptSucceeded
							removedParent, removedLeaf = desc.p, desc.l
						case outcomeFailed:
							outcome = attemptFailedPublished
						default:
							outcome = attemptRetry
						}
					} else {
						outcome = attemptRetry
					}
					rm.RUnprotectAll()
				}
			}
		}()
	}
	rm.LeaveQstate()
	res := t.search(hd, key)
	if !res.ok {
		rm.EnterQstate()
		return attemptRetry, nil, nil
	}
	if res.l.key != key {
		rm.EnterQstate()
		t.releaseAllProtection(hd, res)
		return attemptKeyAbsent, nil, nil
	}
	if res.gpupdate != nil && res.gpupdate.state != StateClean {
		if !t.perRecord {
			t.help(hd, res.gp, res.gpupdate)
		}
		rm.EnterQstate()
		t.releaseAllProtection(hd, res)
		return attemptRetry, nil, nil
	}
	if res.pupdate != nil && res.pupdate.state != StateClean {
		if !t.perRecord {
			t.help(hd, res.p, res.pupdate)
		}
		rm.EnterQstate()
		t.releaseAllProtection(hd, res)
		return attemptRetry, nil, nil
	}

	initDInfo(desc, key, res.gp, res.p, res.l, res.pupdate, res.gpupdate)

	if t.crashRecovery {
		rm.RProtect(res.gp)
		rm.RProtect(res.p)
		rm.RProtect(res.l)
		if info := cellInfo(res.pupdate); info != nil {
			rm.RProtect(info)
		}
		if info := cellInfo(res.gpupdate); info != nil {
			rm.RProtect(info)
		}
		rm.RProtect(desc)
	}
	result := t.ownerDelete(hd, desc, false)
	rm.EnterQstate()
	if t.crashRecovery {
		rm.RUnprotectAll()
	}
	t.releaseAllProtection(hd, res)
	switch result {
	case outcomeSucceeded:
		// res.p and res.l were captured by the search while protected.
		return attemptSucceeded, res.p, res.l
	case outcomeFailed:
		return attemptFailedPublished, nil, nil
	default:
		return attemptRetry, nil, nil
	}
}

// ownerDelete is the owner's (idempotent) help procedure for its own
// deletion descriptor. It returns outcomeSucceeded, outcomeFailed (the
// descriptor was published and backtracked) or outcomePending (the flag was
// never installed; nothing was published). inRecovery suppresses helping
// other operations (see ownerInsert).
func (t *Tree[V]) ownerDelete(hd Handle[V], desc *Record[V], inRecovery bool) int32 {
	for {
		if o := desc.outcome.Load(); o != outcomePending {
			return o
		}
		cur := desc.gp.update.Load()
		switch cur {
		case &desc.flagCell:
			if t.helpDelete(hd, desc, inRecovery) {
				return outcomeSucceeded
			}
			return outcomeFailed
		case desc.gpupdate:
			if desc.gp.update.CompareAndSwap(desc.gpupdate, &desc.flagCell) {
				t.retireReplacedInfo(hd, desc.gpupdate)
				if t.helpDelete(hd, desc, inRecovery) {
					return outcomeSucceeded
				}
				return outcomeFailed
			}
		default:
			// gp's update moved past our flag (or we never installed it).
			// If it was installed, its fate was decided (outcome set) before
			// the unflag, so re-reading outcome disambiguates.
			if o := desc.outcome.Load(); o != outcomePending {
				return o
			}
			if !t.perRecord && !inRecovery && !t.crashRecovery {
				t.help(hd, desc.gp, cur)
			}
			return outcomePending
		}
	}
}

// helpDelete attempts to complete a published deletion (Ellen et al.'s
// helpDelete): mark the parent, then splice it out; if the parent cannot be
// marked because a different operation got in the way, back the deletion
// out by unflagging the grandparent. Returns true when the deletion took
// effect. inRecovery suppresses helping the obstructing operation.
func (t *Tree[V]) helpDelete(hd Handle[V], desc *Record[V], inRecovery bool) bool {
	marked := desc.p.update.CompareAndSwap(desc.pupdate, &desc.markCell)
	if marked {
		// We removed the last tree reference to the parent's previous Info.
		t.retireReplacedInfo(hd, desc.pupdate)
	}
	if marked || desc.p.update.Load() == &desc.markCell {
		t.helpMarked(hd, desc)
		return true
	}
	// Something else is installed at p: the deletion must back out.
	desc.outcome.CompareAndSwap(outcomePending, outcomeFailed)
	if !t.perRecord && !inRecovery && !t.crashRecovery {
		t.help(hd, desc.p, desc.p.update.Load())
	}
	desc.gp.update.CompareAndSwap(&desc.flagCell, &desc.cleanCell)
	return false
}

// helpMarked completes a deletion whose parent has been marked: splice the
// parent out of the tree (replacing it with the leaf's sibling) and unflag
// the grandparent. Idempotent.
func (t *Tree[V]) helpMarked(hd Handle[V], desc *Record[V]) {
	desc.outcome.CompareAndSwap(outcomePending, outcomeSucceeded)
	// The sibling of the removed leaf under p. p is marked, so its children
	// can no longer change and these reads are stable.
	var other *Record[V]
	if desc.p.right.Load() == desc.l {
		other = desc.p.left.Load()
	} else {
		other = desc.p.right.Load()
	}
	t.casChild(desc.gp, desc.p, other, desc.searchK)
	desc.gp.update.CompareAndSwap(&desc.flagCell, &desc.cleanCell)
}

// help completes (or helps along) the operation owning the update cell that
// was read from node's update field. It is only called by epoch-protected
// threads (the per-record protection path restarts instead of helping, as
// discussed in the paper; under DEBRA+ helping happens only before the
// operation announces its own recovery protections).
func (t *Tree[V]) help(hd Handle[V], node *Record[V], cell *UpdateCell[V]) {
	if cell == nil || node == nil || cellInfo(cell) == nil {
		return
	}
	// Delivering a pending neutralization signal here (rather than inside
	// the CAS-heavy help procedures) keeps the window between the signal
	// and the thread's next shared-memory write as small as the simulation
	// allows; see internal/neutralize.
	hd.rm.Checkpoint()
	// Re-validate that the cell is still installed. By the retire-on-replace
	// rule an Info record is only retired after its cell has been replaced,
	// so "still installed" implies the Info has not been retired (and hence
	// not recycled) and its fields are safe to read. This guards the helper
	// against descriptors that were reclaimed behind a neutralized reader.
	if node.update.Load() != cell {
		return
	}
	hd.st.helps.Inc()
	info := cellInfo(cell)
	switch cell.state {
	case StateIFlag:
		t.helpInsert(hd, info)
	case StateMark:
		t.helpMarked(hd, info)
	case StateDFlag:
		t.helpDelete(hd, info, false)
	}
}

// casChild installs new in place of old as the child of parent on the side
// that searchKey routes to. The side is determined by comparing the
// operation's search key with the parent's key, which is stable because the
// parent's children cannot have changed since the operation's flag CAS
// succeeded (children only change under a flag, and a flag change would have
// failed that CAS).
func (t *Tree[V]) casChild(parent, old, new *Record[V], searchKey int64) bool {
	if searchKey < parent.key {
		return parent.left.CompareAndSwap(old, new)
	}
	return parent.right.CompareAndSwap(old, new)
}

// retireReplacedInfo retires the Info record whose clean cell has just been
// replaced by a successful CAS (the retire-on-replace rule). The initial
// clean cell has no owning Info and is never retired.
func (t *Tree[V]) retireReplacedInfo(hd Handle[V], replaced *UpdateCell[V]) {
	if info := cellInfo(replaced); info != nil {
		hd.rm.Retire(info)
	}
}
