package bst

import "fmt"

// ForEach visits every user key/value pair currently in the tree in
// ascending key order. It walks the structure without any synchronisation
// beyond atomic pointer loads, so it is intended for quiescent moments
// (tests, statistics, shutdown); concurrent updates may or may not be
// observed.
func (t *Tree[V]) ForEach(fn func(key int64, value V) bool) {
	t.forEach(t.root, fn)
}

func (t *Tree[V]) forEach(n *Record[V], fn func(key int64, value V) bool) bool {
	if n == nil {
		return true
	}
	if n.IsLeaf() {
		if n.key >= Infinity1 {
			return true // sentinel
		}
		return fn(n.key, n.value)
	}
	if !t.forEach(n.left.Load(), fn) {
		return false
	}
	return t.forEach(n.right.Load(), fn)
}

// Len returns the number of user keys currently in the tree (quiescent use
// only; see ForEach).
func (t *Tree[V]) Len() int {
	n := 0
	t.ForEach(func(int64, V) bool { n++; return true })
	return n
}

// bound is an optional key bound used by Validate.
type bound struct {
	set bool
	key int64
}

// Validate checks the structural invariants of the external BST: every
// reachable node is an internal node or a leaf, internal nodes have two
// children, routing keys separate the subtrees (left strictly smaller,
// right greater or equal), leaves appear in strictly ascending key order,
// and at least the two sentinel leaves are present. It is intended for
// tests run at quiescent moments and returns a descriptive error on the
// first violation found.
func (t *Tree[V]) Validate() error {
	var prev *int64
	var leaves int
	var err error
	var walk func(n *Record[V], lo, hi bound) bool
	inRange := func(k int64, lo, hi bound) bool {
		if lo.set && k < lo.key {
			return false
		}
		if hi.set && k >= hi.key {
			return false
		}
		return true
	}
	walk = func(n *Record[V], lo, hi bound) bool {
		if n == nil {
			err = fmt.Errorf("bst: nil child reached")
			return false
		}
		switch n.kind {
		case KindLeaf:
			leaves++
			if !inRange(n.key, lo, hi) && n.key < Infinity1 {
				err = fmt.Errorf("bst: leaf key %d outside its routing range", n.key)
				return false
			}
			if prev != nil && n.key <= *prev {
				err = fmt.Errorf("bst: leaf keys out of order: %d after %d", n.key, *prev)
				return false
			}
			k := n.key
			prev = &k
			return true
		case KindInternal:
			// External BST invariant: left subtree keys < node key <= right
			// subtree keys.
			if !walk(n.left.Load(), lo, bound{set: true, key: n.key}) {
				return false
			}
			return walk(n.right.Load(), bound{set: true, key: n.key}, hi)
		default:
			err = fmt.Errorf("bst: node with unexpected kind %d reached from the root", n.kind)
			return false
		}
	}
	if !walk(t.root, bound{}, bound{}) {
		return err
	}
	if leaves < 2 {
		return fmt.Errorf("bst: expected at least the two sentinel leaves, found %d", leaves)
	}
	return nil
}
