// Package bst implements the lock-free external (leaf-oriented) binary
// search tree of Ellen, Fatourou, Ruppert and van Breugel, programmed
// against the Record Manager abstraction so that any reclamation scheme can
// be plugged in. It is the primary data structure of the paper's evaluation
// (the paper uses Brown's balanced chromatic tree, which has the same
// reclamation-relevant structure — searches traverse marked/retired nodes,
// updates synchronise through flag/mark descriptors, and helping uses those
// descriptors — which is why this tree substitutes for it in the
// reproduction's evaluation).
//
// # Memory layout
//
// All records managed by the tree — internal nodes, leaves and operation
// descriptors (Info records) — are folded into a single Record type with a
// kind discriminator, so one Record Manager instance serves the whole tree.
//
// The (state, Info*) pairs that Ellen et al. store in each internal node's
// update field are represented without pointer tagging (which would hide
// pointers from Go's garbage collector): every Info record embeds three
// UpdateCell values — a flag cell, a mark cell and a clean cell — and a
// node's update field points at one of those cells. Which cell it points at
// encodes the state; the cell's owner pointer leads back to the Info record.
// Cells are part of the Info record's allocation, so protecting the Info
// protects the cells, and the unique cell addresses preserve the
// ABA-prevention role the original algorithm assigns to the Info pointer.
//
// # Reclamation protocol
//
// Nodes are retired by the operation that unlinks them (delete retires the
// spliced-out internal node and the removed leaf; insert retires the leaf it
// replaces with a copy). Info records are retired by the thread whose CAS
// removes the last tree-internal reference to them: every successful CAS of
// an update field from a Clean cell of Info A to a cell of Info B retires A.
// This "retire on replace" rule is what lets readers validate that a cell
// they loaded still belongs to a live Info simply by re-reading the update
// field.
package bst

import (
	"sync/atomic"

	"repro/internal/core"
)

// Kind discriminates the role a Record is currently playing.
type Kind uint8

// Record kinds.
const (
	// KindFree marks a record that is not currently in use (fresh from the
	// allocator or recycled through the pool).
	KindFree Kind = iota
	// KindInternal is a routing node with a key and two children.
	KindInternal
	// KindLeaf holds a key/value pair.
	KindLeaf
	// KindIInfo is an insertion descriptor.
	KindIInfo
	// KindDInfo is a deletion descriptor.
	KindDInfo
)

// State is the update-field state encoded by which cell of an Info record a
// node's update field points to.
type State uint8

// Update states from the original algorithm.
const (
	StateClean State = iota
	StateIFlag
	StateDFlag
	StateMark
)

// UpdateCell is one of the addresses an internal node's update field can
// hold. Cells are embedded in Info records (and one process-wide initial
// cell represents "clean, no operation yet").
//
// The owner pointer is atomic because it is the one field a reader must
// load before it can protect (and only then validate) the owning Info
// record: that load can race with the re-initialisation of a recycled
// record, and its value is discarded when the subsequent validation fails.
// state, by contrast, is only read after validation (or under epoch cover),
// where the protection scheme's synchronisation already orders it against
// recycling.
type UpdateCell[V any] struct {
	state State
	info  atomic.Pointer[Record[V]] // owning Info record; nil only for the initial cell
}

// State returns the update state this cell encodes.
func (c *UpdateCell[V]) State() State { return c.state }

// Info returns the Info record owning this cell (nil for the initial cell).
func (c *UpdateCell[V]) Info() *Record[V] { return c.info.Load() }

// set initialises a cell in place (cells cannot be copy-assigned once they
// contain an atomic pointer).
func (c *UpdateCell[V]) set(state State, info *Record[V]) {
	c.state = state
	c.info.Store(info)
}

// Record is the single managed record type of the tree: internal node, leaf
// or operation descriptor, discriminated by kind. Folding the roles into one
// type lets a single Record Manager (and therefore a single reclaimer
// instance with one epoch announcement per operation) manage every
// allocation the tree makes.
type Record[V any] struct {
	kind Kind

	// Node fields (internal and leaf).
	key    int64
	value  V
	left   atomic.Pointer[Record[V]]
	right  atomic.Pointer[Record[V]]
	update atomic.Pointer[UpdateCell[V]]

	// Info fields (insertion and deletion descriptors).
	gp       *Record[V]     // grandparent of the leaf (delete only)
	p        *Record[V]     // parent of the leaf
	l        *Record[V]     // the leaf the operation applies to
	newChild *Record[V]     // replacement internal node (insert only)
	pupdate  *UpdateCell[V] // p's update value observed by the search (delete)
	gpupdate *UpdateCell[V] // gp's update value observed by the search (delete)
	searchK  int64          // the key the operation searched for

	// outcome records whether a published operation succeeded (1) or was
	// backtracked (2); 0 while undecided. It makes the owner's help
	// procedure idempotent across neutralization and recovery.
	outcome atomic.Int32

	// The three update-cell addresses this record provides when acting as
	// an Info record.
	flagCell  UpdateCell[V]
	markCell  UpdateCell[V]
	cleanCell UpdateCell[V]

	// poisoned is test instrumentation for the reclaimtest poison-sink
	// harness (see the hash map's Node for the contract); nothing on the
	// tree's hot path reads it.
	poisoned atomic.Bool
}

// Poison implements the reclaimtest Poisonable contract: mark the record as
// freed, reporting whether it already was (a double free).
func (r *Record[V]) Poison() bool { return r.poisoned.Swap(true) }

// Unpoison clears the freed mark (called by pool wrappers on reuse).
func (r *Record[V]) Unpoison() { r.poisoned.Store(false) }

// IsPoisoned reports whether the record is currently marked freed.
func (r *Record[V]) IsPoisoned() bool { return r.poisoned.Load() }

// Operation outcomes stored in Record.outcome.
const (
	outcomePending   = 0
	outcomeSucceeded = 1
	outcomeFailed    = 2
)

// Kind returns the record's current role.
func (r *Record[V]) Kind() Kind { return r.kind }

// Key returns the record's key (meaningful for nodes).
func (r *Record[V]) Key() int64 { return r.key }

// Value returns the record's value (meaningful for leaves).
func (r *Record[V]) Value() V { return r.value }

// IsLeaf reports whether the record is currently a leaf node.
func (r *Record[V]) IsLeaf() bool { return r.kind == KindLeaf }

// initLeaf (re)initialises a record as a leaf.
func initLeaf[V any](r *Record[V], key int64, value V) *Record[V] {
	r.kind = KindLeaf
	r.key = key
	r.value = value
	r.left.Store(nil)
	r.right.Store(nil)
	r.update.Store(nil)
	r.resetInfoFields()
	return r
}

// initInternal (re)initialises a record as an internal node with the given
// children and a clean update field.
func initInternal[V any](r *Record[V], key int64, left, right *Record[V], clean *UpdateCell[V]) *Record[V] {
	var zero V
	r.kind = KindInternal
	r.key = key
	r.value = zero
	r.left.Store(left)
	r.right.Store(right)
	r.update.Store(clean)
	r.resetInfoFields()
	return r
}

// initIInfo (re)initialises a record as an insertion descriptor.
func initIInfo[V any](r *Record[V], key int64, p, l, newChild *Record[V], pupdate *UpdateCell[V]) *Record[V] {
	var zero V
	r.kind = KindIInfo
	r.key = key
	r.value = zero
	r.left.Store(nil)
	r.right.Store(nil)
	r.update.Store(nil)
	r.gp = nil
	r.p = p
	r.l = l
	r.newChild = newChild
	r.pupdate = pupdate
	r.gpupdate = nil
	r.searchK = key
	r.outcome.Store(outcomePending)
	r.flagCell.set(StateIFlag, r)
	r.markCell.set(StateMark, r)
	r.cleanCell.set(StateClean, r)
	return r
}

// initDInfo (re)initialises a record as a deletion descriptor.
func initDInfo[V any](r *Record[V], key int64, gp, p, l *Record[V], pupdate, gpupdate *UpdateCell[V]) *Record[V] {
	var zero V
	r.kind = KindDInfo
	r.key = key
	r.value = zero
	r.left.Store(nil)
	r.right.Store(nil)
	r.update.Store(nil)
	r.gp = gp
	r.p = p
	r.l = l
	r.newChild = nil
	r.pupdate = pupdate
	r.gpupdate = gpupdate
	r.searchK = key
	r.outcome.Store(outcomePending)
	r.flagCell.set(StateDFlag, r)
	r.markCell.set(StateMark, r)
	r.cleanCell.set(StateClean, r)
	return r
}

// resetInfoFields clears descriptor fields so recycled records do not pin
// stale references.
func (r *Record[V]) resetInfoFields() {
	r.gp = nil
	r.p = nil
	r.l = nil
	r.newChild = nil
	r.pupdate = nil
	r.gpupdate = nil
	r.searchK = 0
	r.outcome.Store(outcomePending)
	r.flagCell.set(StateClean, nil)
	r.markCell.set(StateClean, nil)
	r.cleanCell.set(StateClean, nil)
}

// Manager is the Record Manager type the tree programs against.
type Manager[V any] = core.RecordManager[Record[V]]
