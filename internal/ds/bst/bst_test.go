package bst_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/bst"
	"repro/internal/pool"
	"repro/internal/raceenabled"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/debraplus"
	"repro/internal/reclaim/hp"
	"repro/internal/recordmgr"
)

// newTree builds a tree for the named scheme with a bump allocator and pool.
func newTree(t testing.TB, scheme string, threads int) *bst.Tree[int64] {
	t.Helper()
	mgr, err := recordmgr.Build[bst.Record[int64]](recordmgr.Config{
		Scheme:    scheme,
		Threads:   threads,
		Allocator: recordmgr.AllocBump,
		UsePool:   true,
	})
	if err != nil {
		t.Fatalf("building record manager: %v", err)
	}
	return bst.New(mgr)
}

// newAggressiveDebraPlusTree builds a DEBRA+ tree tuned so that epochs
// advance and neutralization triggers as often as possible, to exercise the
// recovery paths under test rather than only under long benchmarks.
func newAggressiveDebraPlusTree(t testing.TB, threads int) *bst.Tree[int64] {
	t.Helper()
	if raceenabled.Enabled {
		// Forced neutralization is not race-detector clean: a doomed
		// (signal-pending) operation may read records being re-initialised
		// after recycling, an artifact of simulating asynchronous signals
		// cooperatively (see the note in recordmgr.NewReclaimer).
		t.Skip("skipping forced-neutralization test under the race detector")
	}
	type rec = bst.Record[int64]
	alloc := arena.NewBump[rec](threads, 0)
	pl := pool.New[rec](threads, alloc)
	rcl := debraplus.New[rec](threads, pl,
		debraplus.WithCheckThresh(1),
		debraplus.WithIncrThresh(1),
		debraplus.WithSuspectThresholdBlocks(1),
		debraplus.WithScanThresholdBlocks(1),
	)
	return bst.New(core.NewRecordManager[rec](alloc, pl, rcl))
}

// newAggressiveHPTree builds an HP tree with a small retire threshold so
// scans occur frequently during tests.
func newAggressiveHPTree(t testing.TB, threads int) *bst.Tree[int64] {
	t.Helper()
	if raceenabled.Enabled {
		// The BST's hazard-pointer support is the paper's acknowledged
		// compromise: a traversal that steps through an already-marked
		// internal node cannot prove its child is still live, so with an
		// aggressive retire threshold the detector can observe a doomed
		// read of a recycled record. The hardened validation in search
		// closes the other windows; the residual one is inherent (the paper
		// concedes HP cannot be applied to this tree without modifying the
		// algorithm, which is DEBRA+'s motivation).
		t.Skip("skipping aggressive-HP stress under the race detector")
	}
	type rec = bst.Record[int64]
	alloc := arena.NewBump[rec](threads, 0)
	pl := pool.New[rec](threads, alloc)
	rcl := hp.New[rec](threads, pl, hp.WithRetireThreshold(64))
	return bst.New(core.NewRecordManager[rec](alloc, pl, rcl))
}

// newFastDebraTree builds a DEBRA tree with fast epochs.
func newFastDebraTree(t testing.TB, threads int) *bst.Tree[int64] {
	t.Helper()
	type rec = bst.Record[int64]
	alloc := arena.NewBump[rec](threads, 0)
	pl := pool.New[rec](threads, alloc)
	rcl := debra.New[rec](threads, pl, debra.WithIncrThresh(4))
	return bst.New(core.NewRecordManager[rec](alloc, pl, rcl))
}

func allSchemes() []string { return recordmgr.Schemes() }

func TestEmptyTree(t *testing.T) {
	tree := newTree(t, recordmgr.SchemeDEBRA, 1)
	if _, ok := tree.Get(0, 42); ok {
		t.Fatal("empty tree claims to contain a key")
	}
	if tree.Delete(0, 42) {
		t.Fatal("Delete on empty tree returned true")
	}
	if tree.Len() != 0 {
		t.Fatalf("Len=%d want 0", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicInsertGetDelete(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tree := newTree(t, scheme, 1)
			if !tree.Insert(0, 10, 100) {
				t.Fatal("insert of fresh key returned false")
			}
			if tree.Insert(0, 10, 200) {
				t.Fatal("insert of duplicate key returned true")
			}
			if v, ok := tree.Get(0, 10); !ok || v != 100 {
				t.Fatalf("Get(10) = %d, %v", v, ok)
			}
			if !tree.Contains(0, 10) {
				t.Fatal("Contains(10) = false")
			}
			if tree.Contains(0, 11) {
				t.Fatal("Contains(11) = true")
			}
			if !tree.Delete(0, 10) {
				t.Fatal("delete of present key returned false")
			}
			if tree.Delete(0, 10) {
				t.Fatal("delete of absent key returned true")
			}
			if _, ok := tree.Get(0, 10); ok {
				t.Fatal("Get after delete found the key")
			}
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tree := newTree(t, scheme, 1)
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(12345))
			const ops = 6000
			const keyRange = 300
			for i := 0; i < ops; i++ {
				k := rng.Int63n(keyRange)
				switch rng.Intn(3) {
				case 0:
					_, inModel := model[k]
					inserted := tree.Insert(0, k, k*10)
					if inserted == inModel {
						t.Fatalf("op %d: Insert(%d)=%v but model present=%v", i, k, inserted, inModel)
					}
					if !inModel {
						model[k] = k * 10
					}
				case 1:
					_, inModel := model[k]
					deleted := tree.Delete(0, k)
					if deleted != inModel {
						t.Fatalf("op %d: Delete(%d)=%v but model present=%v", i, k, deleted, inModel)
					}
					delete(model, k)
				default:
					v, ok := tree.Get(0, k)
					mv, inModel := model[k]
					if ok != inModel || (ok && v != mv) {
						t.Fatalf("op %d: Get(%d)=(%d,%v) model=(%d,%v)", i, k, v, ok, mv, inModel)
					}
				}
			}
			// Final state must match the model exactly.
			if tree.Len() != len(model) {
				t.Fatalf("final size %d, model %d", tree.Len(), len(model))
			}
			tree.ForEach(func(k, v int64) bool {
				mv, ok := model[k]
				if !ok || mv != v {
					t.Fatalf("tree contains (%d,%d), model has (%d,%v)", k, v, mv, ok)
				}
				return true
			})
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickSequentialModel(t *testing.T) {
	// Property: for any random operation sequence, the tree behaves like a
	// map (sequential execution, DEBRA reclamation with fast epochs so that
	// records are actually recycled during the run).
	f := func(ops []uint16, seed int64) bool {
		tree := newFastDebraTree(t, 1)
		model := map[int64]int64{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := int64(op % 128)
			switch rng.Intn(3) {
			case 0:
				_, inModel := model[k]
				if tree.Insert(0, k, k) == inModel {
					return false
				}
				model[k] = k
			case 1:
				_, inModel := model[k]
				if tree.Delete(0, k) != inModel {
					return false
				}
				delete(model, k)
			default:
				_, ok := tree.Get(0, k)
				_, inModel := model[k]
				if ok != inModel {
					return false
				}
			}
		}
		return tree.Len() == len(model) && tree.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAndBoundaryKeys(t *testing.T) {
	tree := newTree(t, recordmgr.SchemeDEBRA, 1)
	keys := []int64{-1 << 40, -7, 0, 7, 1 << 40, bst.Infinity1 - 1}
	for _, k := range keys {
		if !tree.Insert(0, k, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	for _, k := range keys {
		if v, ok := tree.Get(0, k); !ok || v != k {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !tree.Delete(0, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len=%d want 0", tree.Len())
	}
}

func TestInsertRejectsSentinelKeys(t *testing.T) {
	tree := newTree(t, recordmgr.SchemeDEBRA, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sentinel key")
		}
	}()
	tree.Insert(0, bst.Infinity1, 0)
}

func TestDeleteSentinelKeyIsNoop(t *testing.T) {
	tree := newTree(t, recordmgr.SchemeDEBRA, 1)
	if tree.Delete(0, bst.Infinity2) {
		t.Fatal("deleting a sentinel key must fail")
	}
}

// concurrentStripes runs each thread on a disjoint key stripe and checks the
// exact final contents stripe by stripe, plus structural validation.
func concurrentStripes(t *testing.T, tree *bst.Tree[int64], threads, opsPerThread int) {
	t.Helper()
	const stripe = 1 << 20
	finals := make([]map[int64]int64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)*999 + 5))
			model := map[int64]int64{}
			base := int64(tid) * stripe
			for i := 0; i < opsPerThread; i++ {
				k := base + rng.Int63n(256)
				switch rng.Intn(3) {
				case 0:
					_, inModel := model[k]
					if tree.Insert(tid, k, k) == inModel {
						t.Errorf("tid %d: Insert(%d) inconsistent with thread-local model", tid, k)
						return
					}
					model[k] = k
				case 1:
					_, inModel := model[k]
					if tree.Delete(tid, k) != inModel {
						t.Errorf("tid %d: Delete(%d) inconsistent with thread-local model", tid, k)
						return
					}
					delete(model, k)
				default:
					_, ok := tree.Get(tid, k)
					if _, inModel := model[k]; ok != inModel {
						t.Errorf("tid %d: Get(%d) inconsistent with thread-local model", tid, k)
						return
					}
				}
			}
			finals[tid] = model
		}(tid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Verify the final tree contents: the union of the per-thread models.
	want := map[int64]int64{}
	for _, m := range finals {
		for k, v := range m {
			want[k] = v
		}
	}
	got := map[int64]int64{}
	tree.ForEach(func(k, v int64) bool { got[k] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("final tree has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("final tree missing or wrong value for key %d: got (%d,%v) want %d", k, gv, ok, v)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointStripes(t *testing.T) {
	const threads = 6
	const ops = 4000
	for _, scheme := range allSchemes() {
		t.Run(scheme, func(t *testing.T) {
			concurrentStripes(t, newTree(t, scheme, threads), threads, ops)
		})
	}
}

func TestConcurrentDisjointStripesAggressiveDebraPlus(t *testing.T) {
	const threads = 6
	tree := newAggressiveDebraPlusTree(t, threads)
	concurrentStripes(t, tree, threads, 4000)
	// The aggressive thresholds should have produced actual recoveries in
	// most runs; do not fail if not (it is timing dependent), but surface
	// the counters so regressions in the recovery path are visible.
	t.Logf("tree stats: %+v, reclaimer stats: %+v", tree.Stats(), tree.Manager().Stats().Reclaimer)
}

func TestConcurrentDisjointStripesAggressiveHP(t *testing.T) {
	const threads = 6
	tree := newAggressiveHPTree(t, threads)
	concurrentStripes(t, tree, threads, 3000)
	st := tree.Manager().Stats()
	if st.Reclaimer.Freed == 0 {
		t.Fatal("hazard pointer reclaimer never freed a record during the stress")
	}
}

// TestConcurrentSharedKeys hammers a small shared key range from all threads
// and checks structural integrity plus set semantics (each key present at
// most once) at the end.
func TestConcurrentSharedKeys(t *testing.T) {
	schemes := append(allSchemes(), "debra+aggressive", "hp-aggressive")
	for _, scheme := range schemes {
		t.Run(scheme, func(t *testing.T) {
			const threads = 8
			const ops = 3000
			var tree *bst.Tree[int64]
			switch scheme {
			case "debra+aggressive":
				tree = newAggressiveDebraPlusTree(t, threads)
			case "hp-aggressive":
				tree = newAggressiveHPTree(t, threads)
			default:
				tree = newTree(t, scheme, threads)
			}
			var wg sync.WaitGroup
			var inserted, deleted [64]int64
			var mu sync.Mutex
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid) + 99))
					localIns := make([]int64, 64)
					localDel := make([]int64, 64)
					for i := 0; i < ops; i++ {
						k := rng.Int63n(64)
						switch rng.Intn(3) {
						case 0:
							if tree.Insert(tid, k, k) {
								localIns[k]++
							}
						case 1:
							if tree.Delete(tid, k) {
								localDel[k]++
							}
						default:
							tree.Get(tid, k)
						}
					}
					mu.Lock()
					for k := 0; k < 64; k++ {
						inserted[k] += localIns[k]
						deleted[k] += localDel[k]
					}
					mu.Unlock()
				}(tid)
			}
			wg.Wait()
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
			// Set semantics: for every key, successful inserts minus
			// successful deletes must be 0 (absent) or 1 (present), and must
			// match the final contents.
			present := map[int64]bool{}
			tree.ForEach(func(k, v int64) bool {
				if present[k] {
					t.Fatalf("key %d appears twice in the final tree", k)
				}
				present[k] = true
				return true
			})
			for k := int64(0); k < 64; k++ {
				diff := inserted[k] - deleted[k]
				if diff != 0 && diff != 1 {
					t.Fatalf("key %d: %d successful inserts vs %d successful deletes", k, inserted[k], deleted[k])
				}
				if (diff == 1) != present[k] {
					t.Fatalf("key %d: balance %d but present=%v", k, diff, present[k])
				}
			}
		})
	}
}

// TestReclamationActuallyRecyclesRecords verifies the end-to-end pipeline:
// under a churn workload with DEBRA and a pool, the allocator hands out far
// fewer records than the number of insertions because retired records are
// recycled.
func TestReclamationActuallyRecyclesRecords(t *testing.T) {
	tree := newFastDebraTree(t, 1)
	const churns = 20000
	for i := 0; i < churns; i++ {
		k := int64(i % 64)
		tree.Insert(0, k, k)
		tree.Delete(0, k)
	}
	st := tree.Manager().Stats()
	if st.Reclaimer.Freed == 0 {
		t.Fatal("no records were freed")
	}
	if st.Pool.Reused == 0 {
		t.Fatal("no records were reused from the pool")
	}
	// Each churn iteration allocates a handful of records; without reuse the
	// allocator would serve hundreds of thousands. With reclamation the
	// steady-state footprint is tiny.
	if st.Alloc.Allocated > 40000 {
		t.Fatalf("allocator served %d records; reclamation/pooling appears ineffective (freed=%d reused=%d)",
			st.Alloc.Allocated, st.Reclaimer.Freed, st.Pool.Reused)
	}
}

// TestNoReclamationLeaks is the Experiment-1 configuration: without a pool
// the allocator footprint grows with the number of updates.
func TestNoReclamationLeaks(t *testing.T) {
	mgr := recordmgr.MustBuild[bst.Record[int64]](recordmgr.Config{
		Scheme:  recordmgr.SchemeNone,
		Threads: 1,
		UsePool: false,
	})
	tree := bst.New(mgr)
	const churns = 2000
	for i := 0; i < churns; i++ {
		k := int64(i % 16)
		tree.Insert(0, k, k)
		tree.Delete(0, k)
	}
	if got := mgr.Stats().Alloc.Allocated; got < churns {
		t.Fatalf("expected the leaky configuration to keep allocating (got %d allocations)", got)
	}
}

func TestTreeStatsCounters(t *testing.T) {
	tree := newAggressiveDebraPlusTree(t, 2)
	var wg sync.WaitGroup
	for tid := 0; tid < 2; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := int64(i % 32)
				tree.Insert(tid, k, k)
				tree.Delete(tid, k)
			}
		}(tid)
	}
	wg.Wait()
	st := tree.Stats()
	if st.Restarts < 0 || st.Helps < 0 || st.Recoveries < 0 {
		t.Fatalf("negative counters: %+v", st)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewTreeRequiresManager(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bst.New[int64](nil)
}

func TestManyKeysSorted(t *testing.T) {
	tree := newTree(t, recordmgr.SchemeDEBRA, 1)
	const n = 5000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range perm {
		if !tree.Insert(0, int64(k), int64(k)*3) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if tree.Len() != n {
		t.Fatalf("Len=%d want %d", tree.Len(), n)
	}
	last := int64(-1)
	tree.ForEach(func(k, v int64) bool {
		if k <= last {
			t.Fatalf("keys not ascending: %d after %d", k, last)
		}
		if v != k*3 {
			t.Fatalf("wrong value for %d: %d", k, v)
		}
		last = k
		return true
	})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Delete every other key and re-validate.
	for k := 0; k < n; k += 2 {
		if !tree.Delete(0, int64(k)) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tree.Len() != n/2 {
		t.Fatalf("Len=%d want %d", tree.Len(), n/2)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func ExampleTree() {
	mgr := recordmgr.MustBuild[bst.Record[string]](recordmgr.Config{
		Scheme:  recordmgr.SchemeDEBRA,
		Threads: 1,
		UsePool: true,
	})
	tree := bst.New(mgr)
	tree.Insert(0, 1, "one")
	tree.Insert(0, 2, "two")
	v, ok := tree.Get(0, 1)
	fmt.Println(v, ok)
	fmt.Println(tree.Delete(0, 3))
	// Output:
	// one true
	// false
}
