package bst

import (
	"math"

	"repro/internal/core"
	"repro/internal/neutralize"
)

// Sentinel keys: user keys must be strictly smaller than Infinity1.
const (
	// Infinity2 is the key of the root and of the right sentinel leaf.
	Infinity2 = math.MaxInt64
	// Infinity1 is the key of the left sentinel leaf; the largest key any
	// user-supplied key must stay below.
	Infinity1 = math.MaxInt64 - 1
)

// Tree is a lock-free external binary search tree storing int64 keys and
// values of type V. All concurrent operations take the dense thread id of
// the calling worker, which must be in [0, n) for the Record Manager the
// tree was built with.
type Tree[V any] struct {
	mgr  *Manager[V]
	root *Record[V]

	// initialClean is the shared "clean, no operation" update cell used by
	// freshly created internal nodes.
	initialClean UpdateCell[V]

	// perRecord caches whether the reclaimer needs Protect/validate per
	// record (hazard-pointer style schemes).
	perRecord bool
	// crashRecovery caches whether the reclaimer neutralizes threads and
	// therefore requires the recovery path (DEBRA+).
	crashRecovery bool

	// visit, when non-nil, is called for every node the search path has
	// made safe to access (set before concurrent use; see SetVisitHook).
	visit func(tid int, r *Record[V])

	stats []threadStats
}

// SetVisitHook installs fn to be called for every node the search path has
// made safe to access (after protection and validation under per-record
// schemes). It exists for the reclaimtest safety harness; it must be set
// before any concurrent use of the tree. For neutralizing schemes (DEBRA+)
// the hook must discard observations made with a signal pending (see the
// scheme's Domain.Pending): they belong to a doomed attempt whose
// observations are thrown away.
func (t *Tree[V]) SetVisitHook(fn func(tid int, r *Record[V])) { t.visit = fn }

func (t *Tree[V]) observe(tid int, r *Record[V]) {
	if t.visit != nil {
		t.visit(tid, r)
	}
}

// threadStats is one thread's single-writer data-structure-level counters
// (core.Counter contract: written only by the owning slot, read racily by
// Stats), padded so neighbouring slots' cells do not share cache lines.
// These used to be three global atomic.Int64 cells — a LOCK-prefixed RMW on
// a line shared by every thread, once per restart, help and recovery.
type threadStats struct {
	restarts core.Counter // operation restarts (CAS failures, HP validation failures)
	helps    core.Counter // help calls on other operations' descriptors
	recov    core.Counter // recovery executions after neutralization
	_        [core.PadBytes]byte
}

// Stats is a snapshot of the tree's operation counters.
type Stats struct {
	Restarts   int64
	Helps      int64
	Recoveries int64
}

// New creates an empty tree whose records are managed by mgr. The Record
// Manager must have been built for the same number of threads that will
// operate on the tree.
func New[V any](mgr *Manager[V]) *Tree[V] {
	if mgr == nil {
		panic("bst: New requires a RecordManager")
	}
	t := &Tree[V]{
		mgr:           mgr,
		perRecord:     mgr.NeedsPerRecordProtection(),
		crashRecovery: mgr.SupportsCrashRecovery(),
		stats:         make([]threadStats, mgr.WorkerSlots()),
	}
	t.initialClean.set(StateClean, nil)
	// The initial tree: a root with key Infinity2 whose children are the
	// two sentinel leaves. These records are allocated from the manager
	// (thread 0) but never retired.
	var zero V
	left := initLeaf(mgr.Allocate(0), Infinity1, zero)
	right := initLeaf(mgr.Allocate(0), Infinity2, zero)
	t.root = initInternal(mgr.Allocate(0), Infinity2, left, right, &t.initialClean)
	return t
}

// Manager returns the tree's Record Manager (for instrumentation).
func (t *Tree[V]) Manager() *Manager[V] { return t.mgr }

// Handle is one worker thread's pre-resolved view of the tree: the Record
// Manager thread handle bound once, so steady-state operations index no
// per-thread slices and pay at most one interface call per reclamation
// primitive. It is a small value type — resolve it once at worker
// registration and reuse it; the tid-based Tree methods remain as thin
// wrappers.
type Handle[V any] struct {
	t   *Tree[V]
	rm  *core.ThreadHandle[Record[V]]
	st  *threadStats
	tid int
}

// Handle returns thread tid's pre-resolved operation handle, claiming the
// slot for static dense-tid wiring (core.RecordManager.Handle does the
// claim). Goroutines that come and go use AcquireHandle/ReleaseHandle.
func (t *Tree[V]) Handle(tid int) Handle[V] {
	return Handle[V]{t: t, rm: t.mgr.Handle(tid), st: &t.stats[tid], tid: tid}
}

// AcquireHandle binds the calling goroutine to a vacant worker slot of the
// tree's Record Manager and returns the slot's operation handle (the
// dynamic binding style); release it with ReleaseHandle.
func (t *Tree[V]) AcquireHandle() Handle[V] {
	rm := t.mgr.AcquireHandle()
	return Handle[V]{t: t, rm: rm, st: &t.stats[rm.Tid()], tid: rm.Tid()}
}

// ReleaseHandle returns an acquired slot to the manager's registry. The
// calling goroutine must be quiescent (between operations) and must not use
// the handle afterwards.
func (t *Tree[V]) ReleaseHandle(hd Handle[V]) { t.mgr.ReleaseHandle(hd.rm) }

// Tid returns the dense thread id the handle is bound to.
func (hd Handle[V]) Tid() int { return hd.tid }

// Tree returns the tree the handle operates on.
func (hd Handle[V]) Tree() *Tree[V] { return hd.t }

// Stats returns a snapshot of the tree's operation counters, aggregated
// from the per-thread single-writer cells (exact when the workers are
// quiescent).
func (t *Tree[V]) Stats() Stats {
	var s Stats
	for i := range t.stats {
		st := &t.stats[i]
		s.Restarts += st.restarts.Load()
		s.Helps += st.helps.Load()
		s.Recoveries += st.recov.Load()
	}
	return s
}

// searchResult carries the outcome of one tree search: the leaf, its parent
// and grandparent, the update values observed at the parent and grandparent,
// and (under per-record protection) which Info records the search protected.
type searchResult[V any] struct {
	gp, p, l           *Record[V]
	pupdate, gpupdate  *UpdateCell[V]
	ok                 bool // false: protection validation failed, restart
	gpInfoP, pInfoProt *Record[V]
}

// child returns p's child on the side key routes to.
func child[V any](p *Record[V], key int64) *Record[V] {
	if key < p.key {
		return p.left.Load()
	}
	return p.right.Load()
}

// search descends from the root to the leaf where key belongs, returning the
// leaf, its parent and grandparent together with the update values read at
// the parent and grandparent (the standard Ellen et al. search). Under
// per-record protection schemes it maintains hazard pointers on gp, p and l,
// validating each step and reporting ok=false when the caller must restart.
// It also protects the Info records owning the returned update cells so they
// can safely be used as CAS expected values and dereferenced.
func (t *Tree[V]) search(hd Handle[V], key int64) searchResult[V] {
	rm := hd.rm
	var res searchResult[V]
	var gp, p *Record[V]
	var gpupdate, pupdate *UpdateCell[V]
	l := t.root
	if t.perRecord {
		//lint:allow protectorder the root sentinel is never retired, so the announcement needs no re-validation
		rm.Protect(l)
	}
	for !l.IsLeaf() {
		rm.Checkpoint()
		if t.perRecord && gp != nil {
			// gp is about to become unreachable from our working set.
			rm.Unprotect(gp)
		}
		gp = p
		gpupdate = pupdate
		p = l
		pupdate = p.update.Load()
		l = child(p, key)
		if l == nil {
			// A node is being initialised concurrently in a way we can no
			// longer trust (can only happen if protection failed); restart.
			res.ok = false
			t.releaseSearchProtection(hd, gp, p, nil)
			return res
		}
		if t.perRecord {
			if !rm.Protect(l) {
				res.ok = false
				t.releaseSearchProtection(hd, gp, p, nil)
				return res
			}
			if child(p, key) != l {
				// p's child changed under us: l may already be retired.
				rm.Unprotect(l)
				res.ok = false
				t.releaseSearchProtection(hd, gp, p, nil)
				return res
			}
			if p.update.Load() != pupdate {
				// A deleted internal node keeps its stale child pointers, so
				// the check above alone cannot prove l is still reachable.
				// But removal marks p first (its update field moves to a mark
				// cell and never moves back), so p's update still holding the
				// value read before l was loaded proves p was unmarked — and
				// therefore still in the tree — when child(p) == l held,
				// which makes the protection announcement in time. Restart
				// when it moved. (This hardens the paper's HP compromise; the
				// residual window — stepping through a node that was already
				// marked when pupdate was read — remains, as the paper
				// concedes for hazard pointers on this tree.)
				rm.Unprotect(l)
				res.ok = false
				t.releaseSearchProtection(hd, gp, p, nil)
				return res
			}
		}
		t.observe(hd.tid, l)
	}
	res.gp, res.p, res.l = gp, p, l
	res.pupdate, res.gpupdate = pupdate, gpupdate
	res.ok = true
	if t.perRecord {
		// Protect the Info records owning the observed update cells so that
		// (a) dereferencing their state remains safe and (b) they cannot be
		// reused while we hold them as CAS expected values. The validation
		// relies on the retire-on-replace rule: an Info is only retired once
		// its cell is no longer installed, so "still installed" implies
		// "not retired when the protection was announced".
		if !t.protectCellInfo(hd, p, pupdate) {
			res.ok = false
			t.releaseSearchProtection(hd, gp, p, l)
			return res
		}
		res.pInfoProt = cellInfo(pupdate)
		if gp != nil && !t.protectCellInfo(hd, gp, gpupdate) {
			if res.pInfoProt != nil {
				rm.Unprotect(res.pInfoProt)
			}
			res.ok = false
			t.releaseSearchProtection(hd, gp, p, l)
			return res
		}
		if gp != nil {
			res.gpInfoP = cellInfo(gpupdate)
		}
	}
	return res
}

// cellInfo returns the Info record owning a cell (nil for the initial cell
// or a nil cell).
func cellInfo[V any](c *UpdateCell[V]) *Record[V] {
	if c == nil {
		return nil
	}
	return c.info.Load()
}

// protectCellInfo announces a hazard pointer to the Info record owning cell
// (if any) and validates that node's update field still holds the cell.
func (t *Tree[V]) protectCellInfo(hd Handle[V], node *Record[V], cell *UpdateCell[V]) bool {
	info := cellInfo(cell)
	if info == nil {
		return true
	}
	rm := hd.rm
	if !rm.Protect(info) {
		return false
	}
	if node.update.Load() != cell {
		rm.Unprotect(info)
		return false
	}
	return true
}

// releaseSearchProtection drops the sliding hazard pointers held by search.
func (t *Tree[V]) releaseSearchProtection(hd Handle[V], gp, p, l *Record[V]) {
	if !t.perRecord {
		return
	}
	rm := hd.rm
	if gp != nil {
		rm.Unprotect(gp)
	}
	if p != nil {
		rm.Unprotect(p)
	}
	if l != nil {
		rm.Unprotect(l)
	}
}

// releaseAll drops every protection the operation still holds (cheap: only
// per-record schemes track any).
func (t *Tree[V]) releaseAllProtection(hd Handle[V], res searchResult[V]) {
	if !t.perRecord {
		return
	}
	rm := hd.rm
	if res.pInfoProt != nil {
		rm.Unprotect(res.pInfoProt)
	}
	if res.gpInfoP != nil {
		rm.Unprotect(res.gpInfoP)
	}
	t.releaseSearchProtection(hd, res.gp, res.p, res.l)
}

// Get returns the value associated with key and whether it is present.
func (t *Tree[V]) Get(tid int, key int64) (V, bool) { return t.Handle(tid).Get(key) }

// Get returns the value associated with key through the thread's handle.
func (hd Handle[V]) Get(key int64) (V, bool) {
	t := hd.t
	var zero V
	if key >= Infinity1 {
		return zero, false
	}
	for {
		v, ok, done := t.getAttempt(hd, key)
		if done {
			return v, ok
		}
		hd.st.restarts.Inc()
	}
}

// getAttempt performs one attempt of Get. done=false means restart (hazard
// pointer validation failed or the attempt was neutralized).
func (t *Tree[V]) getAttempt(hd Handle[V], key int64) (val V, found, done bool) {
	rm := hd.rm
	if t.crashRecovery {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := neutralize.Recover(v); ok {
					// Read-only operations have trivial recovery: discard
					// and retry.
					hd.st.recov.Inc()
					rm.RUnprotectAll()
					done = false
					return
				}
			}
		}()
	}
	rm.LeaveQstate()
	res := t.search(hd, key)
	if !res.ok {
		rm.EnterQstate()
		return val, false, false
	}
	found = res.l.key == key
	if found {
		val = res.l.value
	}
	rm.EnterQstate()
	t.releaseAllProtection(hd, res)
	return val, found, true
}

// Contains reports whether key is in the set.
func (t *Tree[V]) Contains(tid int, key int64) bool { return t.Handle(tid).Contains(key) }

// Contains reports whether key is in the set through the thread's handle.
func (hd Handle[V]) Contains(key int64) bool {
	_, ok := hd.Get(key)
	return ok
}
