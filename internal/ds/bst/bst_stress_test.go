package bst_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/bst"
	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/reclaimtest"
	"repro/internal/recordmgr"
)

// treeAdapter adapts Tree to the reclaimtest.Set surface.
type treeAdapter struct{ t *bst.Tree[int64] }

func (a treeAdapter) Insert(tid int, key int64) bool   { return a.t.Insert(tid, key, key) }
func (a treeAdapter) Delete(tid int, key int64) bool   { return a.t.Delete(tid, key) }
func (a treeAdapter) Contains(tid int, key int64) bool { return a.t.Contains(tid, key) }

// poisonedTreeFactory builds a tree whose pool poisons freed records and
// whose visit hook counts observations of poisoned records on the search
// path. The neutralization domain is created here so the hook can discard
// observations made with a signal pending (a doomed DEBRA+ attempt whose
// results are thrown away). Under hazard pointers the violation check is
// skipped: the tree's searches traverse retired-to-retired pointers, the
// structural property the paper identifies as fundamentally incompatible
// with HP's reachability proof (a narrow validated-but-stale window
// remains); the double-free, semantic and structural checks still apply.
func poisonedTreeFactory(t *testing.T, scheme string, spec core.ShardSpec, batch int) reclaimtest.SetFactory {
	return func(n int) reclaimtest.SetUnderTest {
		type rec = bst.Record[int64]
		alloc := arena.NewBump[rec](n, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](n, alloc))
		dom := neutralize.NewDomain(n)
		rcl, err := recordmgr.NewShardedReclaimer[rec](scheme, n, pp, dom, spec)
		if err != nil {
			t.Fatal(err)
		}
		var mopts []core.ManagerOption
		if batch > 0 {
			mopts = append(mopts, core.WithRetireBatching(n, batch))
		}
		mgr := core.NewRecordManager[rec](alloc, pp, rcl, mopts...)
		tree := bst.New[int64](mgr)
		su := reclaimtest.SetUnderTest{
			Set:         treeAdapter{tree},
			DoubleFrees: pp.DoubleFrees,
			Stats:       rcl.Stats,
			Validate:    tree.Validate,
		}
		if scheme != recordmgr.SchemeHP {
			var violations atomic.Int64
			tree.SetVisitHook(func(tid int, nd *bst.Record[int64]) {
				if nd.IsPoisoned() && !dom.Pending(tid) {
					violations.Add(1)
				}
			})
			su.Violations = violations.Load
		}
		return su
	}
}

// TestStressAllSchemes runs the poison-sink safety stress under all six
// reclamation schemes and shard counts 1, 2 and NumCPU.
func TestStressAllSchemes(t *testing.T) {
	for _, scheme := range recordmgr.Schemes() {
		for _, shards := range reclaimtest.ShardCounts() {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				factory := poisonedTreeFactory(t, scheme, core.ShardSpec{Shards: shards}, 0)
				opts := reclaimtest.DefaultSetStressOptions()
				if shards > 1 {
					opts.Duration = 80 * time.Millisecond
				}
				reclaimtest.StressSet(t, factory, opts)
			})
		}
	}
}

// TestStressBatchedRetirement runs the stress with deferred-retire batching
// over two striped domains.
func TestStressBatchedRetirement(t *testing.T) {
	for _, scheme := range recordmgr.Schemes() {
		t.Run(scheme, func(t *testing.T) {
			spec := core.ShardSpec{Shards: 2, Placement: core.PlaceStripe}
			factory := poisonedTreeFactory(t, scheme, spec, 64)
			opts := reclaimtest.DefaultSetStressOptions()
			opts.Duration = 80 * time.Millisecond
			reclaimtest.StressSet(t, factory, opts)
		})
	}
}
