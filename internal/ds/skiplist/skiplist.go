// Package skiplist implements a lock-based lazy skip list (Herlihy, Lev,
// Luchangco and Shavit's LazySkipList) with lock-free, wait-free searches,
// programmed against the Record Manager abstraction. It is the second data
// structure of the paper's evaluation: because its updates take locks it can
// use None, HP, DEBRA (and the StackTrack baseline), but not DEBRA+ —
// interrupting a lock holder with a neutralization signal is not safe, which
// is exactly the limitation the paper notes for lock-based structures.
//
// Reclamation-relevant behaviour matches the paper's discussion: searches
// are lock-free and may traverse marked (logically deleted) and even
// physically unlinked nodes, so a correct reclamation scheme is required for
// nodes removed by Delete.
package skiplist

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// MaxLevel is the maximum number of levels of the skip list (supports key
// ranges far beyond the paper's 2*10^5 experiment).
const MaxLevel = 20

// pFactor is the probability denominator for promoting a node one level.
const pFactor = 2

// Sentinel keys: user keys must lie strictly between them.
const (
	headKey = -1 << 63
	tailKey = 1<<63 - 1
)

// Node is the skip list's managed record type.
type Node[V any] struct {
	key   int64
	value V

	next     [MaxLevel]atomic.Pointer[Node[V]]
	topLevel int32

	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool

	// poisoned is test instrumentation for the reclaimtest poison-sink
	// harness (see the hash map's Node for the contract); nothing on the
	// list's hot path reads it.
	poisoned atomic.Bool
}

// Poison implements the reclaimtest Poisonable contract: mark the record as
// freed, reporting whether it already was (a double free).
func (n *Node[V]) Poison() bool { return n.poisoned.Swap(true) }

// Unpoison clears the freed mark (called by pool wrappers on reuse).
func (n *Node[V]) Unpoison() { n.poisoned.Store(false) }

// IsPoisoned reports whether the record is currently marked freed.
func (n *Node[V]) IsPoisoned() bool { return n.poisoned.Load() }

// Key returns the node's key.
func (n *Node[V]) Key() int64 { return n.key }

// Value returns the node's value.
func (n *Node[V]) Value() V { return n.value }

// Manager is the Record Manager type the skip list programs against.
type Manager[V any] = core.RecordManager[Node[V]]

// List is a concurrent ordered set of int64 keys with values of type V.
type List[V any] struct {
	mgr  *Manager[V]
	head *Node[V]
	tail *Node[V]

	perRecord bool

	seeds   []seedState
	handles []Handle[V]

	// visit, when non-nil, is called for every node a traversal has made
	// safe to access (set before concurrent use; see SetVisitHook).
	visit func(tid int, n *Node[V])
}

// SetVisitHook installs fn to be called for every node a traversal has made
// safe to access (after protection and validation under per-record schemes).
// It exists for the reclaimtest safety harness; it must be set before any
// concurrent use of the list.
func (l *List[V]) SetVisitHook(fn func(tid int, n *Node[V])) { l.visit = fn }

func (l *List[V]) observe(tid int, n *Node[V]) {
	if l.visit != nil {
		l.visit(tid, n)
	}
}

// seedState is a per-thread pseudo random generator used to pick node
// heights without contention or locking.
type seedState struct {
	rng *rand.Rand
	_   [core.PadBytes]byte
}

// New creates an empty skip list for the given Record Manager and number of
// worker threads (which must match the manager's). When the manager has
// more worker slots than threads (recordmgr.Config.MaxThreads), the
// per-thread tables cover every slot, so both binding styles — static dense
// tids and AcquireHandle/ReleaseHandle — work.
func New[V any](mgr *Manager[V], threads int) *List[V] {
	if mgr == nil {
		panic("skiplist: New requires a RecordManager")
	}
	if threads <= 0 {
		panic("skiplist: New requires threads >= 1")
	}
	if ws := mgr.WorkerSlots(); ws > threads {
		threads = ws
	}
	if mgr.SupportsCrashRecovery() {
		panic("skiplist: lock-based updates cannot be used with a neutralizing reclaimer (DEBRA+); use DEBRA or HP")
	}
	l := &List[V]{mgr: mgr, perRecord: mgr.NeedsPerRecordProtection()}
	var zero V
	l.head = mgr.Allocate(0)
	l.tail = mgr.Allocate(0)
	initNode(l.head, headKey, zero, MaxLevel-1)
	initNode(l.tail, tailKey, zero, MaxLevel-1)
	l.head.fullyLinked.Store(true)
	l.tail.fullyLinked.Store(true)
	for i := 0; i < MaxLevel; i++ {
		l.head.next[i].Store(l.tail)
	}
	l.seeds = make([]seedState, threads)
	for i := range l.seeds {
		l.seeds[i].rng = rand.New(rand.NewSource(int64(i)*2654435761 + 1))
	}
	l.handles = make([]Handle[V], threads)
	for i := range l.handles {
		// PeekHandle: prebuilding must not claim the slots (see hashmap.New).
		l.handles[i] = Handle[V]{l: l, rm: mgr.PeekHandle(i), seed: &l.seeds[i], tid: i}
	}
	return l
}

// Handle is one worker thread's pre-resolved view of the list: the Record
// Manager thread handle and the thread's level generator bound once, so
// steady-state operations index no per-thread slices and pay at most one
// interface call per reclamation primitive. Resolve it once at worker
// registration (l.Handle(tid)); the tid-based List methods remain as thin
// wrappers.
type Handle[V any] struct {
	l    *List[V]
	rm   *core.ThreadHandle[Node[V]]
	seed *seedState
	tid  int
}

// Handle returns thread tid's pre-resolved operation handle, claiming the
// slot for static dense-tid wiring (core.RecordManager.Handle does the
// claim). Goroutines that come and go use AcquireHandle/ReleaseHandle.
func (l *List[V]) Handle(tid int) *Handle[V] {
	l.mgr.Handle(tid)
	return &l.handles[tid]
}

// AcquireHandle binds the calling goroutine to a vacant worker slot of the
// list's Record Manager and returns the slot's operation handle (the
// dynamic binding style); release it with ReleaseHandle.
func (l *List[V]) AcquireHandle() *Handle[V] {
	rm := l.mgr.AcquireHandle()
	tid := rm.Tid()
	l.handles[tid] = Handle[V]{l: l, rm: rm, seed: &l.seeds[tid], tid: tid}
	return &l.handles[tid]
}

// ReleaseHandle returns an acquired slot to the manager's registry. The
// calling goroutine must be quiescent (between operations) and must not use
// the handle afterwards.
func (l *List[V]) ReleaseHandle(hd *Handle[V]) { l.mgr.ReleaseHandle(hd.rm) }

// Tid returns the dense thread id the handle is bound to.
func (hd *Handle[V]) Tid() int { return hd.tid }

// List returns the list the handle operates on.
func (hd *Handle[V]) List() *List[V] { return hd.l }

// initNode (re)initialises a recycled record as a fresh node.
func initNode[V any](n *Node[V], key int64, value V, topLevel int32) {
	n.key = key
	n.value = value
	n.topLevel = topLevel
	n.marked.Store(false)
	n.fullyLinked.Store(false)
	for i := range n.next {
		n.next[i].Store(nil)
	}
}

// Manager returns the list's Record Manager.
func (l *List[V]) Manager() *Manager[V] { return l.mgr }

// randomLevel picks a node height with geometric distribution.
func (hd *Handle[V]) randomLevel() int32 {
	lvl := int32(0)
	rng := hd.seed.rng
	for lvl < MaxLevel-1 && rng.Intn(pFactor) == 0 {
		lvl++
	}
	return lvl
}

// find locates key's predecessors and successors at every level. It returns
// the level at which a node with the key was found (or -1) and ok=false when
// a per-record protection validation failed and the operation must restart.
// Under per-record protection every recorded predecessor and successor is
// left protected; the caller releases them via EnterQstate / Unprotect.
func (l *List[V]) find(hd *Handle[V], key int64, preds, succs *[MaxLevel]*Node[V]) (foundLevel int, ok bool) {
	rm := hd.rm
	foundLevel = -1
	pred := l.head
	for level := MaxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for {
			if curr == nil {
				// Only reachable when a protection race let pred be recycled
				// under us (initNode resets its next pointers to nil while we
				// traverse): the traversal is broken, restart the operation.
				return -1, false
			}
			if l.perRecord {
				if !rm.Protect(curr) {
					return -1, false
				}
				if pred.next[level].Load() != curr {
					// pred's successor changed: curr may already be retired.
					rm.Unprotect(curr)
					return -1, false
				}
			}
			l.observe(hd.tid, curr)
			if curr.key < key {
				if l.perRecord && pred != l.head && !l.isRecorded(pred, preds, succs, level) {
					rm.Unprotect(pred)
				}
				pred = curr
				curr = pred.next[level].Load()
				continue
			}
			break
		}
		if foundLevel == -1 && curr.key == key {
			foundLevel = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return foundLevel, true
}

// isRecorded reports whether node is already stored in preds/succs at a
// level above the given one (in which case its protection must be kept).
func (l *List[V]) isRecorded(node *Node[V], preds, succs *[MaxLevel]*Node[V], above int) bool {
	for lvl := above; lvl < MaxLevel; lvl++ {
		if preds[lvl] == node || succs[lvl] == node {
			return true
		}
	}
	return false
}

// Contains reports whether key is present (wait-free, lock-free reads).
func (l *List[V]) Contains(tid int, key int64) bool { return l.Handle(tid).Contains(key) }

// Contains reports whether key is present through the thread's handle.
func (hd *Handle[V]) Contains(key int64) bool {
	_, ok := hd.Get(key)
	return ok
}

// Get returns the value stored for key.
func (l *List[V]) Get(tid int, key int64) (V, bool) { return l.Handle(tid).Get(key) }

// Get returns the value stored for key through the thread's handle.
func (hd *Handle[V]) Get(key int64) (V, bool) {
	l, rm := hd.l, hd.rm
	var zero V
	if key <= headKey || key >= tailKey {
		return zero, false
	}
	for {
		rm.LeaveQstate()
		var preds, succs [MaxLevel]*Node[V]
		lvl, ok := l.find(hd, key, &preds, &succs)
		if !ok {
			rm.EnterQstate()
			continue
		}
		var val V
		found := false
		if lvl >= 0 {
			n := succs[lvl]
			if n.fullyLinked.Load() && !n.marked.Load() {
				val = n.value
				found = true
			}
		}
		rm.EnterQstate()
		return val, found
	}
}

// Insert adds key to the set, returning true if it was inserted and false if
// it was already present.
func (l *List[V]) Insert(tid int, key int64, value V) bool {
	return l.Handle(tid).Insert(key, value)
}

// Insert adds key to the set through the thread's handle.
func (hd *Handle[V]) Insert(key int64, value V) bool {
	if key <= headKey || key >= tailKey {
		panic("skiplist: key out of supported range")
	}
	l, rm := hd.l, hd.rm
	topLevel := hd.randomLevel()
	// Quiescent preamble: allocate the node we may link.
	node := rm.Allocate()
	for {
		rm.LeaveQstate()
		var preds, succs [MaxLevel]*Node[V]
		lvl, ok := l.find(hd, key, &preds, &succs)
		if !ok {
			rm.EnterQstate()
			continue
		}
		if lvl >= 0 {
			existing := succs[lvl]
			if !existing.marked.Load() {
				// Wait until the concurrent inserter finishes linking, then
				// report "already present".
				for !existing.fullyLinked.Load() {
					rm.Checkpoint()
				}
				rm.EnterQstate()
				rm.Deallocate(node)
				return false
			}
			// The node with this key is marked (being removed): retry.
			rm.EnterQstate()
			continue
		}

		// Lock the predecessors bottom-up and validate.
		initNode(node, key, value, topLevel)
		valid := true
		highestLocked := -1
		var prevPred *Node[V]
		for level := int32(0); valid && level <= topLevel; level++ {
			pred := preds[level]
			succ := succs[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = int(level)
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[level].Load() == succ
		}
		if !valid {
			l.unlock(preds, highestLocked)
			rm.EnterQstate()
			continue
		}
		for level := int32(0); level <= topLevel; level++ {
			node.next[level].Store(succs[level])
		}
		for level := int32(0); level <= topLevel; level++ {
			preds[level].next[level].Store(node)
		}
		node.fullyLinked.Store(true)
		l.unlock(preds, highestLocked)
		rm.EnterQstate()
		return true
	}
}

// Delete removes key from the set, returning true if it was present.
func (l *List[V]) Delete(tid int, key int64) bool { return l.Handle(tid).Delete(key) }

// Delete removes key from the set through the thread's handle.
func (hd *Handle[V]) Delete(key int64) bool {
	if key <= headKey || key >= tailKey {
		return false
	}
	l, rm := hd.l, hd.rm
	var victim *Node[V]
	isMarked := false
	topLevel := int32(-1)
	for {
		rm.LeaveQstate()
		var preds, succs [MaxLevel]*Node[V]
		lvl, ok := l.find(hd, key, &preds, &succs)
		if !ok {
			rm.EnterQstate()
			continue
		}
		if !isMarked {
			if lvl < 0 {
				rm.EnterQstate()
				return false
			}
			victim = succs[lvl]
			if !victim.fullyLinked.Load() || victim.marked.Load() || victim.topLevel != int32(lvl) {
				rm.EnterQstate()
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				rm.EnterQstate()
				return false
			}
			victim.marked.Store(true)
			isMarked = true
		}

		// Lock predecessors and validate that they still point at victim.
		valid := true
		highestLocked := -1
		var prevPred *Node[V]
		for level := int32(0); valid && level <= topLevel; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = int(level)
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			l.unlock(preds, highestLocked)
			rm.EnterQstate()
			continue
		}
		for level := topLevel; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		victim.mu.Unlock()
		l.unlock(preds, highestLocked)
		// The victim is unlinked from every level and unreachable for new
		// searches; hand it to the reclaimer while the operation's epoch pin
		// still stands. (This used to happen after EnterQstate — a quiescent
		// retire whose observed epoch nothing pins, which is exactly the
		// advance-drain race core.RetirePinner describes; the epoch schemes
		// now reject that ordering.)
		rm.Retire(victim)
		rm.EnterQstate()
		return true
	}
}

// unlock releases the predecessor locks acquired up to highestLocked.
func (l *List[V]) unlock(preds [MaxLevel]*Node[V], highestLocked int) {
	var prev *Node[V]
	for level := 0; level <= highestLocked; level++ {
		if preds[level] != prev {
			preds[level].mu.Unlock()
			prev = preds[level]
		}
	}
}

// Len returns the number of keys currently in the list (quiescent use only).
func (l *List[V]) Len() int {
	n := 0
	for curr := l.head.next[0].Load(); curr != nil && curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}

// ForEach visits every key/value pair in ascending order (quiescent use
// only).
func (l *List[V]) ForEach(fn func(key int64, value V) bool) {
	for curr := l.head.next[0].Load(); curr != nil && curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			if !fn(curr.key, curr.value) {
				return
			}
		}
	}
}

// Validate checks the bottom-level ordering invariant (quiescent use only).
func (l *List[V]) Validate() error {
	prev := l.head
	for curr := l.head.next[0].Load(); curr != nil; curr = curr.next[0].Load() {
		if curr.key <= prev.key && prev != l.head {
			return errOutOfOrder(prev.key, curr.key)
		}
		if curr.key == tailKey {
			return nil
		}
		prev = curr
	}
	return errMissingTail
}

// errMissingTail reports a bottom level that does not terminate at the tail
// sentinel.
var errMissingTail = fmt.Errorf("skiplist: bottom level does not reach the tail sentinel")

// errOutOfOrder reports adjacent bottom-level keys that are not strictly
// ascending.
func errOutOfOrder(a, b int64) error {
	return fmt.Errorf("skiplist: bottom level out of order: %d before %d", a, b)
}
