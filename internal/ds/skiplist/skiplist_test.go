package skiplist_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/skiplist"
	"repro/internal/pool"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/hp"
	"repro/internal/recordmgr"
)

// schemes usable with the lock-based skip list (no DEBRA+; see package doc).
func schemes() []string {
	return []string{
		recordmgr.SchemeNone,
		recordmgr.SchemeEBR,
		recordmgr.SchemeQSBR,
		recordmgr.SchemeDEBRA,
		recordmgr.SchemeHP,
	}
}

func newList(t testing.TB, scheme string, threads int) *skiplist.List[int64] {
	t.Helper()
	mgr, err := recordmgr.Build[skiplist.Node[int64]](recordmgr.Config{
		Scheme:    scheme,
		Threads:   threads,
		Allocator: recordmgr.AllocBump,
		UsePool:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return skiplist.New(mgr, threads)
}

func newFastDebraList(t testing.TB, threads int) *skiplist.List[int64] {
	t.Helper()
	type node = skiplist.Node[int64]
	alloc := arena.NewBump[node](threads, 0)
	pl := pool.New[node](threads, alloc)
	rcl := debra.New[node](threads, pl, debra.WithIncrThresh(4))
	return skiplist.New(core.NewRecordManager[node](alloc, pl, rcl), threads)
}

func newAggressiveHPList(t testing.TB, threads int) *skiplist.List[int64] {
	t.Helper()
	type node = skiplist.Node[int64]
	alloc := arena.NewBump[node](threads, 0)
	pl := pool.New[node](threads, alloc)
	rcl := hp.New[node](threads, pl, hp.WithRetireThreshold(64))
	return skiplist.New(core.NewRecordManager[node](alloc, pl, rcl), threads)
}

func TestRejectsDebraPlus(t *testing.T) {
	mgr := recordmgr.MustBuild[skiplist.Node[int64]](recordmgr.Config{
		Scheme:  recordmgr.SchemeDEBRAPlus,
		Threads: 1,
		UsePool: true,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: a lock-based structure must refuse a neutralizing reclaimer")
		}
	}()
	skiplist.New(mgr, 1)
}

func TestBasicOperations(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			l := newList(t, scheme, 1)
			if l.Contains(0, 5) {
				t.Fatal("empty list contains 5")
			}
			if !l.Insert(0, 5, 50) {
				t.Fatal("insert failed")
			}
			if l.Insert(0, 5, 51) {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok := l.Get(0, 5); !ok || v != 50 {
				t.Fatalf("Get(5) = %d, %v", v, ok)
			}
			if l.Delete(0, 6) {
				t.Fatal("deleted a missing key")
			}
			if !l.Delete(0, 5) {
				t.Fatal("delete failed")
			}
			if l.Contains(0, 5) {
				t.Fatal("contains after delete")
			}
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			l := newList(t, scheme, 1)
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 5000; i++ {
				k := rng.Int63n(200)
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if l.Insert(0, k, k) == in {
						t.Fatalf("Insert(%d) disagrees with model at op %d", k, i)
					}
					model[k] = k
				case 1:
					_, in := model[k]
					if l.Delete(0, k) != in {
						t.Fatalf("Delete(%d) disagrees with model at op %d", k, i)
					}
					delete(model, k)
				default:
					_, ok := l.Get(0, k)
					if _, in := model[k]; ok != in {
						t.Fatalf("Get(%d) disagrees with model at op %d", k, i)
					}
				}
			}
			if l.Len() != len(model) {
				t.Fatalf("final size %d, model %d", l.Len(), len(model))
			}
			l.ForEach(func(k, v int64) bool {
				if mv, ok := model[k]; !ok || mv != v {
					t.Fatalf("list has (%d,%d) not in model", k, v)
				}
				return true
			})
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickSequentialModel(t *testing.T) {
	f := func(ops []uint16) bool {
		l := newFastDebraList(t, 1)
		model := map[int64]bool{}
		for i, op := range ops {
			k := int64(op % 64)
			switch i % 3 {
			case 0:
				if l.Insert(0, k, k) == model[k] {
					return false
				}
				model[k] = true
			case 1:
				if l.Delete(0, k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if l.Contains(0, k) != model[k] {
					return false
				}
			}
		}
		return l.Len() == len(model) && l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func concurrentStripes(t *testing.T, l *skiplist.List[int64], threads, ops int) {
	t.Helper()
	const stripe = 1 << 20
	finals := make([]map[int64]int64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) + 7))
			model := map[int64]int64{}
			base := int64(tid) * stripe
			for i := 0; i < ops; i++ {
				k := base + rng.Int63n(200)
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if l.Insert(tid, k, k) == in {
						t.Errorf("tid %d: Insert(%d) inconsistent", tid, k)
						return
					}
					model[k] = k
				case 1:
					_, in := model[k]
					if l.Delete(tid, k) != in {
						t.Errorf("tid %d: Delete(%d) inconsistent", tid, k)
						return
					}
					delete(model, k)
				default:
					if _, ok := l.Get(tid, k); ok != (model[k] != 0) {
						_, in := model[k]
						if ok != in {
							t.Errorf("tid %d: Get(%d) inconsistent", tid, k)
							return
						}
					}
				}
			}
			finals[tid] = model
		}(tid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := map[int64]int64{}
	for _, m := range finals {
		for k, v := range m {
			want[k] = v
		}
	}
	got := map[int64]int64{}
	l.ForEach(func(k, v int64) bool { got[k] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("final list has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("key %d: got (%d,%v) want %d", k, gv, ok, v)
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointStripes(t *testing.T) {
	const threads = 6
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			concurrentStripes(t, newList(t, scheme, threads), threads, 2500)
		})
	}
}

func TestConcurrentDisjointStripesAggressiveHP(t *testing.T) {
	const threads = 6
	l := newAggressiveHPList(t, threads)
	concurrentStripes(t, l, threads, 2000)
	if l.Manager().Stats().Reclaimer.Freed == 0 {
		t.Fatal("HP reclaimer never freed a node")
	}
}

func TestConcurrentSharedKeys(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			const threads = 8
			l := newList(t, scheme, threads)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid) * 31))
					for i := 0; i < 2500; i++ {
						k := rng.Int63n(48)
						switch rng.Intn(3) {
						case 0:
							l.Insert(tid, k, k)
						case 1:
							l.Delete(tid, k)
						default:
							l.Get(tid, k)
						}
					}
				}(tid)
			}
			wg.Wait()
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
			seen := map[int64]bool{}
			l.ForEach(func(k, v int64) bool {
				if seen[k] {
					t.Fatalf("duplicate key %d in final list", k)
				}
				seen[k] = true
				return true
			})
		})
	}
}

func TestReclamationRecyclesNodes(t *testing.T) {
	l := newFastDebraList(t, 1)
	for i := 0; i < 20000; i++ {
		k := int64(i % 32)
		l.Insert(0, k, k)
		l.Delete(0, k)
	}
	st := l.Manager().Stats()
	if st.Reclaimer.Freed == 0 || st.Pool.Reused == 0 {
		t.Fatalf("reclamation pipeline inactive: %+v", st.Reclaimer)
	}
	if st.Alloc.Allocated > 20000 {
		t.Fatalf("allocator served %d nodes; expected heavy reuse", st.Alloc.Allocated)
	}
}

func TestNewValidation(t *testing.T) {
	mgr := recordmgr.MustBuild[skiplist.Node[int64]](recordmgr.Config{Scheme: recordmgr.SchemeDEBRA, Threads: 1, UsePool: true})
	if !panics(func() { skiplist.New[int64](nil, 1) }) {
		t.Fatal("expected panic for nil manager")
	}
	if !panics(func() { skiplist.New(mgr, 0) }) {
		t.Fatal("expected panic for zero threads")
	}
	if !panics(func() { newList(t, recordmgr.SchemeDEBRA, 1).Insert(0, -1<<63, 0) }) {
		t.Fatal("expected panic for out-of-range key")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}
