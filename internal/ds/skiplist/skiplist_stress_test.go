package skiplist_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/skiplist"
	"repro/internal/pool"
	"repro/internal/reclaimtest"
	"repro/internal/recordmgr"
)

// stressSchemes are the schemes the skip list runs under: everything except
// the neutralizing DEBRA+ (interrupting a lock holder is unsafe; the list's
// constructor rejects crash-recovery reclaimers).
func stressSchemes() []string {
	return []string{
		recordmgr.SchemeNone, recordmgr.SchemeEBR, recordmgr.SchemeQSBR,
		recordmgr.SchemeDEBRA, recordmgr.SchemeHP,
	}
}

// listAdapter adapts List to the reclaimtest.Set surface.
type listAdapter struct{ l *skiplist.List[int64] }

func (a listAdapter) Insert(tid int, key int64) bool   { return a.l.Insert(tid, key, key) }
func (a listAdapter) Delete(tid int, key int64) bool   { return a.l.Delete(tid, key) }
func (a listAdapter) Contains(tid int, key int64) bool { return a.l.Contains(tid, key) }

// poisonedListFactory builds a skip list whose pool poisons freed records
// and whose visit hook counts observations of poisoned records. Under hazard
// pointers the violation check is skipped: the list's lock-free searches may
// traverse from a retired (protected but unlinked) predecessor whose
// successor pointer is frozen, a residual window the paper concedes for
// HP on structures that traverse retired records; the double-free,
// conservation and semantic checks still apply there.
func poisonedListFactory(t *testing.T, scheme string, spec core.ShardSpec, batch int) reclaimtest.SetFactory {
	return func(n int) reclaimtest.SetUnderTest {
		type rec = skiplist.Node[int64]
		alloc := arena.NewBump[rec](n, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](n, alloc))
		rcl, err := recordmgr.NewShardedReclaimer[rec](scheme, n, pp, nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		var mopts []core.ManagerOption
		if batch > 0 {
			mopts = append(mopts, core.WithRetireBatching(n, batch))
		}
		mgr := core.NewRecordManager[rec](alloc, pp, rcl, mopts...)
		l := skiplist.New[int64](mgr, n)
		su := reclaimtest.SetUnderTest{
			Set:         listAdapter{l},
			DoubleFrees: pp.DoubleFrees,
			Stats:       rcl.Stats,
			Validate:    l.Validate,
		}
		if scheme != recordmgr.SchemeHP {
			var violations atomic.Int64
			l.SetVisitHook(func(tid int, nd *skiplist.Node[int64]) {
				if nd.IsPoisoned() {
					violations.Add(1)
				}
			})
			su.Violations = violations.Load
		}
		return su
	}
}

// TestStressAllSchemes runs the poison-sink safety stress under every
// supported scheme and shard counts 1, 2 and NumCPU.
func TestStressAllSchemes(t *testing.T) {
	for _, scheme := range stressSchemes() {
		for _, shards := range reclaimtest.ShardCounts() {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				factory := poisonedListFactory(t, scheme, core.ShardSpec{Shards: shards}, 0)
				opts := reclaimtest.DefaultSetStressOptions()
				if shards > 1 {
					opts.Duration = 80 * time.Millisecond
				}
				reclaimtest.StressSet(t, factory, opts)
			})
		}
	}
}

// TestStressBatchedRetirement runs the stress with deferred-retire batching
// over two striped domains.
func TestStressBatchedRetirement(t *testing.T) {
	for _, scheme := range stressSchemes() {
		t.Run(scheme, func(t *testing.T) {
			spec := core.ShardSpec{Shards: 2, Placement: core.PlaceStripe}
			factory := poisonedListFactory(t, scheme, spec, 64)
			opts := reclaimtest.DefaultSetStressOptions()
			opts.Duration = 80 * time.Millisecond
			reclaimtest.StressSet(t, factory, opts)
		})
	}
}
