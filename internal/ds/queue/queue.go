// Package queue implements the Michael-Scott lock-free FIFO queue against
// the Record Manager abstraction. It is not part of the paper's evaluation
// but serves as the canonical "small" client of safe memory reclamation
// (hazard pointers were originally presented with this queue), and is used
// by the example programs.
package queue

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/neutralize"
)

// Node is the queue's managed record type.
type Node[V any] struct {
	value V
	next  atomic.Pointer[Node[V]]

	// poisoned is test instrumentation for the reclaimtest poison-sink
	// harness (see the hash map's Node for the contract); nothing on the
	// queue's hot path reads it.
	poisoned atomic.Bool
}

// Poison implements the reclaimtest Poisonable contract: mark the record as
// freed, reporting whether it already was (a double free).
func (n *Node[V]) Poison() bool { return n.poisoned.Swap(true) }

// Unpoison clears the freed mark (called by pool wrappers on reuse).
func (n *Node[V]) Unpoison() { n.poisoned.Store(false) }

// IsPoisoned reports whether the record is currently marked freed.
func (n *Node[V]) IsPoisoned() bool { return n.poisoned.Load() }

// Manager is the Record Manager type the queue programs against.
type Manager[V any] = core.RecordManager[Node[V]]

// Queue is a lock-free multi-producer multi-consumer FIFO queue.
type Queue[V any] struct {
	mgr  *Manager[V]
	head atomic.Pointer[Node[V]]
	tail atomic.Pointer[Node[V]]

	perRecord     bool
	crashRecovery bool

	// visit, when non-nil, is called for every node an operation has made
	// safe to access (set before concurrent use; see SetVisitHook).
	visit func(tid int, n *Node[V])
}

// SetVisitHook installs fn to be called for every node an operation has made
// safe to access (after protection and validation under per-record schemes).
// It exists for the reclaimtest safety harness; it must be set before any
// concurrent use. For neutralizing schemes the hook must discard
// observations made with a signal pending (see the scheme's Domain.Pending),
// as those belong to a doomed attempt.
func (q *Queue[V]) SetVisitHook(fn func(tid int, n *Node[V])) { q.visit = fn }

func (q *Queue[V]) observe(tid int, n *Node[V]) {
	if q.visit != nil && n != nil {
		q.visit(tid, n)
	}
}

// New creates an empty queue managed by mgr.
func New[V any](mgr *Manager[V]) *Queue[V] {
	if mgr == nil {
		panic("queue: New requires a RecordManager")
	}
	q := &Queue[V]{
		mgr:           mgr,
		perRecord:     mgr.NeedsPerRecordProtection(),
		crashRecovery: mgr.SupportsCrashRecovery(),
	}
	dummy := mgr.Allocate(0)
	var zero V
	dummy.value = zero
	dummy.next.Store(nil)
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Manager returns the queue's Record Manager.
func (q *Queue[V]) Manager() *Manager[V] { return q.mgr }

// Enqueue appends value to the tail of the queue.
func (q *Queue[V]) Enqueue(tid int, value V) {
	// Quiescent preamble: allocate the node the body publishes (allocation
	// is not re-entrant, so it must not happen inside a body that can be
	// neutralized and re-run).
	node := q.mgr.Allocate(tid)
	node.value = value
	node.next.Store(nil)
	for !q.enqueueBody(tid, node) {
	}
}

// enqueueBody is one execution of the enqueue body. The linearizing CAS
// result is captured in published before EnterQstate (which can deliver a
// pending neutralization), so recovery decides retry-vs-done from local
// state alone.
func (q *Queue[V]) enqueueBody(tid int, node *Node[V]) (done bool) {
	m := q.mgr
	published := false
	if q.crashRecovery {
		defer neutralize.OnNeutralized(m, tid, func(neutralize.Neutralized) {
			done = published
		})
	}
	m.LeaveQstate(tid)
	for {
		m.Checkpoint(tid)
		tail := q.tail.Load()
		if q.perRecord {
			if !m.Protect(tid, tail) || q.tail.Load() != tail {
				m.Unprotect(tid, tail)
				continue
			}
		}
		q.observe(tid, tail)
		next := tail.next.Load()
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			if q.perRecord {
				m.Unprotect(tid, tail)
			}
			continue
		}
		if tail.next.CompareAndSwap(nil, node) {
			published = true
			q.tail.CompareAndSwap(tail, node)
			if q.perRecord {
				m.Unprotect(tid, tail)
			}
			break
		}
		if q.perRecord {
			m.Unprotect(tid, tail)
		}
	}
	m.EnterQstate(tid)
	return true
}

// Dequeue removes and returns the value at the head of the queue; ok is
// false when the queue is empty.
func (q *Queue[V]) Dequeue(tid int) (V, bool) {
	for {
		value, ok, done := q.dequeueBody(tid)
		if done {
			return value, ok
		}
	}
}

// dequeueBody is one execution of the dequeue body. A successful head CAS is
// durable (captured in the named returns before EnterQstate); an
// empty-queue observation made by a neutralized attempt is discarded and
// retried, because it may have been computed from reclaimed records.
func (q *Queue[V]) dequeueBody(tid int) (value V, ok, done bool) {
	m := q.mgr
	if q.crashRecovery {
		defer neutralize.OnNeutralized(m, tid, func(neutralize.Neutralized) {
			if !done {
				var zero V
				value, ok = zero, false
			}
		})
	}
	m.LeaveQstate(tid)
	empty := false
	for {
		m.Checkpoint(tid)
		head := q.head.Load()
		if q.perRecord {
			if !m.Protect(tid, head) || q.head.Load() != head {
				m.Unprotect(tid, head)
				continue
			}
		}
		q.observe(tid, head)
		tail := q.tail.Load()
		next := head.next.Load()
		if q.perRecord && next != nil {
			if !m.Protect(tid, next) || head.next.Load() != next {
				m.Unprotect(tid, head)
				m.Unprotect(tid, next)
				continue
			}
		}
		if head == q.head.Load() {
			// Only now is next proven reachable (head is still the head, so
			// next cannot have been retired): the announcement made above is
			// in time, and the observation is of a live record.
			q.observe(tid, next)
			if head == tail {
				if next == nil {
					q.releasePair(tid, head, next)
					empty = true
					break
				}
				// Tail lagging behind; help it forward.
				q.tail.CompareAndSwap(tail, next)
			} else {
				value = next.value
				if q.head.CompareAndSwap(head, next) {
					ok, done = true, true
					q.releasePair(tid, head, next)
					// The old dummy head is unreachable for new operations.
					m.Retire(tid, head)
					break
				}
				var zero V
				value = zero
			}
		}
		q.releasePair(tid, head, next)
	}
	m.EnterQstate(tid)
	if empty && !done {
		// The empty observation commits only once EnterQstate returned
		// without delivering a neutralization: a doomed attempt may have
		// computed "empty" from reclaimed records, so it retries instead.
		ok, done = false, true
	}
	return value, ok, done
}

// releasePair drops the hazard pointers acquired by Dequeue.
func (q *Queue[V]) releasePair(tid int, head, next *Node[V]) {
	if !q.perRecord {
		return
	}
	q.mgr.Unprotect(tid, head)
	if next != nil {
		q.mgr.Unprotect(tid, next)
	}
}

// Len returns the number of elements currently in the queue (quiescent use
// only: it walks the list without protection).
func (q *Queue[V]) Len() int {
	n := 0
	for node := q.head.Load().next.Load(); node != nil; node = node.next.Load() {
		n++
	}
	return n
}
