// Package queue implements the Michael-Scott lock-free FIFO queue against
// the Record Manager abstraction. It is not part of the paper's evaluation
// but serves as the canonical "small" client of safe memory reclamation
// (hazard pointers were originally presented with this queue), and is used
// by the example programs.
package queue

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/neutralize"
)

// Node is the queue's managed record type.
type Node[V any] struct {
	value V
	next  atomic.Pointer[Node[V]]

	// poisoned is test instrumentation for the reclaimtest poison-sink
	// harness (see the hash map's Node for the contract); nothing on the
	// queue's hot path reads it.
	poisoned atomic.Bool
}

// Poison implements the reclaimtest Poisonable contract: mark the record as
// freed, reporting whether it already was (a double free).
func (n *Node[V]) Poison() bool { return n.poisoned.Swap(true) }

// Unpoison clears the freed mark (called by pool wrappers on reuse).
func (n *Node[V]) Unpoison() { n.poisoned.Store(false) }

// IsPoisoned reports whether the record is currently marked freed.
func (n *Node[V]) IsPoisoned() bool { return n.poisoned.Load() }

// Manager is the Record Manager type the queue programs against.
type Manager[V any] = core.RecordManager[Node[V]]

// Queue is a lock-free multi-producer multi-consumer FIFO queue.
type Queue[V any] struct {
	mgr  *Manager[V]
	head atomic.Pointer[Node[V]]
	tail atomic.Pointer[Node[V]]

	perRecord     bool
	crashRecovery bool

	// visit, when non-nil, is called for every node an operation has made
	// safe to access (set before concurrent use; see SetVisitHook).
	visit func(tid int, n *Node[V])
}

// SetVisitHook installs fn to be called for every node an operation has made
// safe to access (after protection and validation under per-record schemes).
// It exists for the reclaimtest safety harness; it must be set before any
// concurrent use. For neutralizing schemes the hook must discard
// observations made with a signal pending (see the scheme's Domain.Pending),
// as those belong to a doomed attempt.
func (q *Queue[V]) SetVisitHook(fn func(tid int, n *Node[V])) { q.visit = fn }

func (q *Queue[V]) observe(tid int, n *Node[V]) {
	if q.visit != nil && n != nil {
		q.visit(tid, n)
	}
}

// New creates an empty queue managed by mgr.
func New[V any](mgr *Manager[V]) *Queue[V] {
	if mgr == nil {
		panic("queue: New requires a RecordManager")
	}
	q := &Queue[V]{
		mgr:           mgr,
		perRecord:     mgr.NeedsPerRecordProtection(),
		crashRecovery: mgr.SupportsCrashRecovery(),
	}
	dummy := mgr.Allocate(0)
	var zero V
	dummy.value = zero
	dummy.next.Store(nil)
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Manager returns the queue's Record Manager.
func (q *Queue[V]) Manager() *Manager[V] { return q.mgr }

// Handle is one worker thread's pre-resolved view of the queue: the Record
// Manager thread handle bound once, so steady-state operations index no
// per-thread slices and pay at most one interface call per reclamation
// primitive. It is a small value type — resolve it once at worker
// registration and reuse it; the tid-based Queue methods remain as thin
// wrappers.
type Handle[V any] struct {
	q   *Queue[V]
	rm  *core.ThreadHandle[Node[V]]
	tid int
}

// Handle returns thread tid's pre-resolved operation handle, claiming the
// slot for static dense-tid wiring (core.RecordManager.Handle does the
// claim). Goroutines that come and go use AcquireHandle/ReleaseHandle.
func (q *Queue[V]) Handle(tid int) Handle[V] {
	return Handle[V]{q: q, rm: q.mgr.Handle(tid), tid: tid}
}

// AcquireHandle binds the calling goroutine to a vacant worker slot of the
// queue's Record Manager and returns the slot's operation handle (the
// dynamic binding style); release it with ReleaseHandle.
func (q *Queue[V]) AcquireHandle() Handle[V] {
	rm := q.mgr.AcquireHandle()
	return Handle[V]{q: q, rm: rm, tid: rm.Tid()}
}

// ReleaseHandle returns an acquired slot to the manager's registry. The
// calling goroutine must be quiescent (between operations) and must not use
// the handle afterwards.
func (q *Queue[V]) ReleaseHandle(hd Handle[V]) { q.mgr.ReleaseHandle(hd.rm) }

// Tid returns the dense thread id the handle is bound to.
func (hd Handle[V]) Tid() int { return hd.tid }

// Queue returns the queue the handle operates on.
func (hd Handle[V]) Queue() *Queue[V] { return hd.q }

// Enqueue appends value to the tail of the queue.
func (q *Queue[V]) Enqueue(tid int, value V) { q.Handle(tid).Enqueue(value) }

// Enqueue appends value through the thread's handle.
func (hd Handle[V]) Enqueue(value V) {
	// Quiescent preamble: allocate the node the body publishes (allocation
	// is not re-entrant, so it must not happen inside a body that can be
	// neutralized and re-run).
	node := hd.rm.Allocate()
	node.value = value
	node.next.Store(nil)
	for !hd.q.enqueueBody(hd, node) {
	}
}

// enqueueBody is one execution of the enqueue body. The linearizing CAS
// result is captured in published before EnterQstate (which can deliver a
// pending neutralization), so recovery decides retry-vs-done from local
// state alone.
func (q *Queue[V]) enqueueBody(hd Handle[V], node *Node[V]) (done bool) {
	rm := hd.rm
	published := false
	if q.crashRecovery {
		defer neutralize.OnNeutralized(q.mgr, hd.tid, func(neutralize.Neutralized) {
			done = published
		})
	}
	rm.LeaveQstate()
	for {
		rm.Checkpoint()
		tail := q.tail.Load()
		if q.perRecord {
			if !rm.Protect(tail) || q.tail.Load() != tail {
				rm.Unprotect(tail)
				continue
			}
		}
		q.observe(hd.tid, tail)
		next := tail.next.Load()
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			if q.perRecord {
				rm.Unprotect(tail)
			}
			continue
		}
		if tail.next.CompareAndSwap(nil, node) {
			published = true
			q.tail.CompareAndSwap(tail, node)
			if q.perRecord {
				rm.Unprotect(tail)
			}
			break
		}
		if q.perRecord {
			rm.Unprotect(tail)
		}
	}
	rm.EnterQstate()
	return true
}

// Dequeue removes and returns the value at the head of the queue; ok is
// false when the queue is empty.
func (q *Queue[V]) Dequeue(tid int) (V, bool) { return q.Handle(tid).Dequeue() }

// Dequeue removes and returns the head value through the thread's handle.
func (hd Handle[V]) Dequeue() (V, bool) {
	for {
		value, ok, done := hd.q.dequeueBody(hd)
		if done {
			return value, ok
		}
	}
}

// dequeueBody is one execution of the dequeue body. A successful head CAS is
// durable (captured in the named returns before EnterQstate); an
// empty-queue observation made by a neutralized attempt is discarded and
// retried, because it may have been computed from reclaimed records.
func (q *Queue[V]) dequeueBody(hd Handle[V]) (value V, ok, done bool) {
	rm := hd.rm
	if q.crashRecovery {
		defer neutralize.OnNeutralized(q.mgr, hd.tid, func(neutralize.Neutralized) {
			if !done {
				var zero V
				value, ok = zero, false
			}
		})
	}
	rm.LeaveQstate()
	empty := false
	for {
		rm.Checkpoint()
		head := q.head.Load()
		if q.perRecord {
			if !rm.Protect(head) || q.head.Load() != head {
				rm.Unprotect(head)
				continue
			}
		}
		q.observe(hd.tid, head)
		tail := q.tail.Load()
		next := head.next.Load()
		if q.perRecord && next != nil {
			if !rm.Protect(next) || head.next.Load() != next {
				rm.Unprotect(head)
				rm.Unprotect(next)
				continue
			}
		}
		if head == q.head.Load() {
			// Only now is next proven reachable (head is still the head, so
			// next cannot have been retired): the announcement made above is
			// in time, and the observation is of a live record.
			q.observe(hd.tid, next)
			if head == tail {
				if next == nil {
					q.releasePair(hd, head, next)
					empty = true
					break
				}
				// Tail lagging behind; help it forward.
				q.tail.CompareAndSwap(tail, next)
			} else {
				value = next.value
				if q.head.CompareAndSwap(head, next) {
					ok, done = true, true
					q.releasePair(hd, head, next)
					// The old dummy head is unreachable for new operations.
					rm.Retire(head)
					break
				}
				var zero V
				value = zero
			}
		}
		q.releasePair(hd, head, next)
	}
	rm.EnterQstate()
	if empty && !done {
		// The empty observation commits only once EnterQstate returned
		// without delivering a neutralization: a doomed attempt may have
		// computed "empty" from reclaimed records, so it retries instead.
		ok, done = false, true
	}
	return value, ok, done
}

// releasePair drops the hazard pointers acquired by Dequeue.
func (q *Queue[V]) releasePair(hd Handle[V], head, next *Node[V]) {
	if !q.perRecord {
		return
	}
	hd.rm.Unprotect(head)
	if next != nil {
		hd.rm.Unprotect(next)
	}
}

// Len returns the number of elements currently in the queue (quiescent use
// only: it walks the list without protection).
func (q *Queue[V]) Len() int {
	n := 0
	for node := q.head.Load().next.Load(); node != nil; node = node.next.Load() {
		n++
	}
	return n
}
