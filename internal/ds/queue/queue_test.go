package queue_test

import (
	"sync"
	"testing"

	"repro/internal/ds/queue"
	"repro/internal/recordmgr"
)

func newQueue(t testing.TB, scheme string, threads int) *queue.Queue[int64] {
	t.Helper()
	mgr, err := recordmgr.Build[queue.Node[int64]](recordmgr.Config{
		Scheme:    scheme,
		Threads:   threads,
		Allocator: recordmgr.AllocBump,
		UsePool:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return queue.New(mgr)
}

func schemes() []string { return recordmgr.Schemes() }

func TestFIFOOrderSingleThread(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			q := newQueue(t, scheme, 1)
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("dequeue on empty queue returned a value")
			}
			const n = 1000
			for i := int64(0); i < n; i++ {
				q.Enqueue(0, i)
			}
			if q.Len() != n {
				t.Fatalf("Len=%d want %d", q.Len(), n)
			}
			for i := int64(0); i < n; i++ {
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("Dequeue = (%d,%v), want %d", v, ok, i)
				}
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			const producers = 4
			const consumers = 4
			const perProducer = 3000
			q := newQueue(t, scheme, producers+consumers)

			var wg sync.WaitGroup
			results := make([][]int64, consumers)
			var remaining sync.WaitGroup
			remaining.Add(producers)

			done := make(chan struct{})
			go func() {
				remaining.Wait()
				close(done)
			}()

			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					tid := producers + c
					var got []int64
					for {
						v, ok := q.Dequeue(tid)
						if ok {
							got = append(got, v)
							continue
						}
						select {
						case <-done:
							// Drain whatever is left.
							for {
								v, ok := q.Dequeue(tid)
								if !ok {
									results[c] = got
									return
								}
								got = append(got, v)
							}
						default:
						}
					}
				}(c)
			}
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					defer remaining.Done()
					for i := 0; i < perProducer; i++ {
						q.Enqueue(p, int64(p*perProducer+i))
					}
				}(p)
			}
			wg.Wait()

			seen := map[int64]bool{}
			total := 0
			perProducerLast := make(map[int][]int64)
			for c, got := range results {
				for _, v := range got {
					if seen[v] {
						t.Fatalf("value %d dequeued twice", v)
					}
					seen[v] = true
					total++
					producer := int(v) / perProducer
					perProducerLast[producer] = append(perProducerLast[producer], v)
					_ = c
				}
			}
			if total != producers*perProducer {
				t.Fatalf("dequeued %d values, want %d", total, producers*perProducer)
			}
			if q.Len() != 0 {
				t.Fatalf("queue not empty at end: %d", q.Len())
			}
			st := q.Manager().Stats()
			if st.Reclaimer.Retired == 0 {
				t.Fatal("no nodes were retired")
			}
		})
	}
}

func TestReclamationRecyclesNodes(t *testing.T) {
	q := newQueue(t, recordmgr.SchemeDEBRA, 1)
	for i := 0; i < 50000; i++ {
		q.Enqueue(0, int64(i))
		q.Dequeue(0)
	}
	st := q.Manager().Stats()
	if st.Reclaimer.Freed == 0 || st.Pool.Reused == 0 {
		t.Fatalf("reclamation pipeline inactive: %+v", st.Reclaimer)
	}
}

func TestNewRequiresManager(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	queue.New[int64](nil)
}
