package queue_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/queue"
	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/reclaimtest"
	"repro/internal/recordmgr"
)

// queueAdapter adapts Queue to the reclaimtest.QueueIface surface.
type queueAdapter struct{ q *queue.Queue[int64] }

func (a queueAdapter) Enqueue(tid int, v int64)      { a.q.Enqueue(tid, v) }
func (a queueAdapter) Dequeue(tid int) (int64, bool) { return a.q.Dequeue(tid) }

// poisonedQueueFactory builds a queue whose pool poisons freed records and
// whose visit hook counts observations of poisoned records, mirroring the
// hash map's poison-sink harness (see poisonedMapFactory there). The
// neutralization domain is created here so the hook can discard observations
// made with a signal pending (a doomed DEBRA+ attempt whose results are
// thrown away).
func poisonedQueueFactory(t *testing.T, scheme string, spec core.ShardSpec, batch int) reclaimtest.QueueFactory {
	return func(n int) reclaimtest.QueueUnderTest {
		type rec = queue.Node[int64]
		alloc := arena.NewBump[rec](n, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](n, alloc))
		dom := neutralize.NewDomain(n)
		rcl, err := recordmgr.NewShardedReclaimer[rec](scheme, n, pp, dom, spec)
		if err != nil {
			t.Fatal(err)
		}
		var mopts []core.ManagerOption
		if batch > 0 {
			mopts = append(mopts, core.WithRetireBatching(n, batch))
		}
		mgr := core.NewRecordManager[rec](alloc, pp, rcl, mopts...)
		q := queue.New[int64](mgr)
		var violations atomic.Int64
		q.SetVisitHook(func(tid int, nd *queue.Node[int64]) {
			if nd.IsPoisoned() && !dom.Pending(tid) {
				violations.Add(1)
			}
		})
		return reclaimtest.QueueUnderTest{
			Queue:       queueAdapter{q},
			Violations:  violations.Load,
			DoubleFrees: pp.DoubleFrees,
			Stats:       rcl.Stats,
			Len:         q.Len,
		}
	}
}

// TestStressAllSchemes runs the poison-sink queue stress under all six
// reclamation schemes and shard counts 1, 2 and NumCPU.
func TestStressAllSchemes(t *testing.T) {
	for _, scheme := range schemes() {
		for _, shards := range reclaimtest.ShardCounts() {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				factory := poisonedQueueFactory(t, scheme, core.ShardSpec{Shards: shards}, 0)
				opts := reclaimtest.DefaultQueueStressOptions()
				if shards > 1 {
					opts.Duration = 80 * time.Millisecond
				}
				reclaimtest.StressQueue(t, factory, opts)
			})
		}
	}
}

// TestStressBatchedRetirement runs the queue stress with deferred-retire
// batching over two striped domains. The queue retires one record per
// dequeue, so a batch parks up to the batch size per thread — the
// conservation check still balances because parked records are already
// dequeued (their values were delivered before retirement).
func TestStressBatchedRetirement(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme, func(t *testing.T) {
			spec := core.ShardSpec{Shards: 2, Placement: core.PlaceStripe}
			factory := poisonedQueueFactory(t, scheme, spec, 64)
			opts := reclaimtest.DefaultQueueStressOptions()
			opts.Duration = 80 * time.Millisecond
			reclaimtest.StressQueue(t, factory, opts)
		})
	}
}
