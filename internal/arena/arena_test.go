package arena

import (
	"sync"
	"testing"
	"unsafe"
)

type node struct {
	key   int64
	value int64
	left  *node
	right *node
}

func TestBumpAllocateDistinctRecords(t *testing.T) {
	b := NewBump[node](2, 8)
	seen := map[*node]bool{}
	for i := 0; i < 100; i++ {
		r := b.Allocate(0)
		if r == nil {
			t.Fatal("Allocate returned nil")
		}
		if seen[r] {
			t.Fatalf("record %p handed out twice", r)
		}
		seen[r] = true
	}
	if got := b.Stats().Allocated; got != 100 {
		t.Fatalf("Allocated=%d want 100", got)
	}
}

func TestBumpRecordsAreZeroed(t *testing.T) {
	b := NewBump[node](1, 4)
	for i := 0; i < 20; i++ {
		r := b.Allocate(0)
		if r.key != 0 || r.value != 0 || r.left != nil || r.right != nil {
			t.Fatalf("record %d not zeroed: %+v", i, *r)
		}
		r.key = int64(i)
		r.left = r
	}
}

func TestBumpAllocatedBytesTracksBumpMovement(t *testing.T) {
	b := NewBump[node](1, 16)
	const n = 1000
	for i := 0; i < n; i++ {
		b.Allocate(0)
	}
	want := int64(n) * int64(unsafe.Sizeof(node{}))
	if got := b.Stats().AllocatedBytes; got != want {
		t.Fatalf("AllocatedBytes=%d want %d", got, want)
	}
}

func TestBumpDeallocateOnlyCounts(t *testing.T) {
	b := NewBump[node](1, 8)
	r := b.Allocate(0)
	b.Deallocate(0, r)
	b.Deallocate(0, nil) // must be a no-op, not a panic
	s := b.Stats()
	if s.Deallocated != 1 {
		t.Fatalf("Deallocated=%d want 1", s.Deallocated)
	}
	if s.Allocated != 1 {
		t.Fatalf("Allocated=%d want 1", s.Allocated)
	}
}

func TestBumpPerThreadIsolation(t *testing.T) {
	const threads = 4
	const perThread = 5000
	b := NewBump[node](threads, 64)
	var wg sync.WaitGroup
	results := make([]map[*node]bool, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			m := map[*node]bool{}
			for i := 0; i < perThread; i++ {
				m[b.Allocate(tid)] = true
			}
			results[tid] = m
		}(tid)
	}
	wg.Wait()
	all := map[*node]bool{}
	total := 0
	for _, m := range results {
		for r := range m {
			if all[r] {
				t.Fatalf("record %p handed out by two threads", r)
			}
			all[r] = true
			total++
		}
	}
	if total != threads*perThread {
		t.Fatalf("total distinct records %d want %d", total, threads*perThread)
	}
	if got := b.Stats().Allocated; got != int64(threads*perThread) {
		t.Fatalf("Allocated=%d want %d", got, threads*perThread)
	}
}

func TestBumpPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBump[node](0, 8)
}

func TestHeapAllocate(t *testing.T) {
	h := NewHeap[node](2)
	seen := map[*node]bool{}
	for i := 0; i < 50; i++ {
		r := h.Allocate(i % 2)
		if r == nil || seen[r] {
			t.Fatalf("bad record %p at %d", r, i)
		}
		seen[r] = true
	}
	h.Deallocate(0, nil)
	h.Deallocate(0, &node{})
	s := h.Stats()
	if s.Allocated != 50 {
		t.Fatalf("Allocated=%d want 50", s.Allocated)
	}
	if s.Deallocated != 1 {
		t.Fatalf("Deallocated=%d want 1", s.Deallocated)
	}
	if s.AllocatedBytes != 50*int64(unsafe.Sizeof(node{})) {
		t.Fatalf("AllocatedBytes=%d", s.AllocatedBytes)
	}
}

func TestHeapPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHeap[node](0)
}
