// Package arena provides the Allocator implementations used by the
// experiments in the paper:
//
//   - Bump: each thread reserves large slabs of records up front and hands
//     them out in sequence (the paper's "Bump Allocator", Experiments 1
//     and 2). Because slab movement is just a per-thread counter, the total
//     memory allocated for records can be computed after a trial without
//     perturbing it, which is how Figure 9 (right) measures footprint.
//   - Heap: every allocation comes from the runtime allocator (the role
//     played by malloc/tcmalloc in Experiment 3); deallocation simply drops
//     the reference.
//
// Records handed out by the Bump allocator are type-stable: they live in
// slabs owned by the allocator and are never returned to the garbage
// collector while the allocator is alive. This is the property that makes
// reclamation meaningful in Go — a record freed too early will be recycled
// and re-initialised while another thread still holds a pointer to it,
// reproducing exactly the hazards the paper's schemes must prevent.
package arena

import (
	"unsafe"

	"repro/internal/core"
)

// DefaultSlabRecords is the number of records reserved per slab by the Bump
// allocator.
const DefaultSlabRecords = 4096

// Bump is a per-thread bump allocator over pre-reserved slabs.
//
// It intentionally has no free list: Deallocate only counts. Reuse of records
// is the Pool's job; the bump allocator exists to make "total memory
// allocated for records" a meaningful, cheaply measurable quantity.
type Bump[T any] struct {
	threads []bumpThread[T]

	recordBytes int64
	slabRecords int
}

type bumpThread[T any] struct {
	slab []T
	next int

	// Single-writer statistics counters (core.Counter): written by the
	// owning tid, read racily by Stats.
	allocated   core.Counter
	deallocated core.Counter
	slabs       core.Counter
	_           [core.PadBytes]byte
}

// NewBump creates a bump allocator for n threads. slabRecords is the number
// of records reserved each time a thread exhausts its slab; zero or negative
// selects DefaultSlabRecords.
func NewBump[T any](n, slabRecords int) *Bump[T] {
	if n <= 0 {
		panic("arena: NewBump requires n >= 1")
	}
	if slabRecords <= 0 {
		slabRecords = DefaultSlabRecords
	}
	var zero T
	return &Bump[T]{
		threads:     make([]bumpThread[T], n),
		recordBytes: int64(unsafe.Sizeof(zero)),
		slabRecords: slabRecords,
	}
}

// Allocate returns the next record from thread tid's slab, reserving a new
// slab when the current one is exhausted.
func (b *Bump[T]) Allocate(tid int) *T {
	t := &b.threads[tid]
	if t.slab == nil || t.next == len(t.slab) {
		t.slab = make([]T, b.slabRecords)
		t.next = 0
		t.slabs.Inc()
	}
	rec := &t.slab[t.next]
	t.next++
	t.allocated.Inc()
	return rec
}

// Deallocate records that rec has been returned. The bump allocator never
// reuses memory itself (that is the Pool's job), so this only counts.
func (b *Bump[T]) Deallocate(tid int, rec *T) {
	if rec == nil {
		return
	}
	b.threads[tid].deallocated.Inc()
}

// Stats sums the per-thread counters.
func (b *Bump[T]) Stats() core.AllocStats {
	var s core.AllocStats
	for i := range b.threads {
		t := &b.threads[i]
		s.Allocated += t.allocated.Load()
		s.Deallocated += t.deallocated.Load()
	}
	s.AllocatedBytes = s.Allocated * b.recordBytes
	return s
}

// RecordBytes returns the size of one record in bytes.
func (b *Bump[T]) RecordBytes() int64 { return b.recordBytes }

// Heap is an Allocator that defers to the Go runtime allocator, playing the
// role of malloc/free in the paper's Experiment 3. Deallocate drops the
// record (the garbage collector reclaims it once truly unreachable), so
// records allocated by Heap are NOT type-stable; they are safe to use with
// every reclaimer in this module because reclaimers only hand records to
// their free sink, they never touch freed memory.
type Heap[T any] struct {
	threads     []heapThread
	recordBytes int64
}

type heapThread struct {
	// Single-writer statistics counters (core.Counter; see bumpThread).
	allocated   core.Counter
	deallocated core.Counter
	_           [core.PadBytes]byte
}

// NewHeap creates a heap allocator for n threads.
func NewHeap[T any](n int) *Heap[T] {
	if n <= 0 {
		panic("arena: NewHeap requires n >= 1")
	}
	var zero T
	return &Heap[T]{threads: make([]heapThread, n), recordBytes: int64(unsafe.Sizeof(zero))}
}

// Allocate returns a freshly allocated record.
func (h *Heap[T]) Allocate(tid int) *T {
	h.threads[tid].allocated.Inc()
	return new(T)
}

// Deallocate counts the return; the garbage collector does the actual work.
func (h *Heap[T]) Deallocate(tid int, rec *T) {
	if rec == nil {
		return
	}
	h.threads[tid].deallocated.Inc()
}

// Stats sums the per-thread counters.
func (h *Heap[T]) Stats() core.AllocStats {
	var s core.AllocStats
	for i := range h.threads {
		t := &h.threads[i]
		s.Allocated += t.allocated.Load()
		s.Deallocated += t.deallocated.Load()
	}
	s.AllocatedBytes = s.Allocated * h.recordBytes
	return s
}

// Compile-time interface checks.
var (
	_ core.Allocator[int] = (*Bump[int])(nil)
	_ core.Allocator[int] = (*Heap[int])(nil)
)
