// Package faultinject is the deterministic fault plane of the reclamation
// stack: it injects stalls and crashes at the reclaimer operation boundaries
// (the ReclaimerHandle surface) of a chosen thread, at a chosen operation
// count, so the paper's central claim — a stalled or crashed thread wedges
// epoch-based reclamation forever, while neutralizing and pointer-based
// schemes degrade gracefully — becomes something the repository measures and
// gates instead of asserts.
//
// The pieces:
//
//   - a Plan holds per-tid Triggers. Arm freezes it; from then on every
//     armed injection point crossing is counted and, when a trigger's
//     schedule says so, fired. Firing either sleeps (Trigger.Hold, a timed
//     stall) or parks the thread on a gate until Release/Close (a "crash"
//     abandoning the slot mid-operation — the paper's failed process).
//   - Wrap (wrap.go) interposes a Plan on any core.Reclaimer, injecting at
//     the three operation boundaries that matter for reclamation: right
//     after LeaveQstate (stalled while pinned, announcement live), right
//     before EnterQstate (stalled before unpin), and before Retire /
//     RetireBlock (stalled retirer; on an async reclaimer's tid this is a
//     delayed drain). recordmgr.Config.FaultPlan threads it through Build.
//   - Probe (probe.go) measures ManagerStats.Unreclaimed growth with and
//     without a stalled thread and classifies the scheme as bounded or
//     unbounded-growth — the paper's Figure-style robustness result as a
//     testable predicate.
//
// Schedules are explicit (tid, point, operation count) or derived from a
// seed (AddChaos), so every run replays exactly: the fault plane adds no
// wall-clock or scheduler nondeterminism of its own beyond the sleeps it is
// told to inject.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Point identifies a reclaimer operation boundary a Trigger fires at.
type Point int

// Injection points, in the order a data structure operation crosses them.
const (
	// PointPinned fires right after LeaveQstate returns: the thread holds a
	// live epoch announcement (or, for HP, has merely started an operation).
	// A stall here is the paper's adversary — a preempted thread pinning the
	// epoch while every other thread keeps retiring.
	PointPinned Point = iota
	// PointBeforeUnpin fires at EnterQstate, before the announcement is
	// withdrawn: the thread finished its operation but never got to quiesce.
	PointBeforeUnpin
	// PointRetire fires before each Retire/RetireBlock hand-off. Armed on an
	// async reclaimer's participant tid it delays the drain behind the
	// workers; armed on a worker it stalls the retire path itself.
	PointRetire
)

// String names the point for diagnostics.
func (p Point) String() string {
	switch p {
	case PointPinned:
		return "pinned"
	case PointBeforeUnpin:
		return "before-unpin"
	case PointRetire:
		return "retire"
	default:
		return fmt.Sprintf("Point(%d)", int(p))
	}
}

// Trigger describes one injection: which thread, which boundary, when, and
// what kind of fault.
type Trigger struct {
	// Tid is the dense thread id the trigger arms (workers 0..Threads-1;
	// async reclaimer goroutines are Threads+i).
	Tid int
	// Point is the operation boundary the trigger fires at.
	Point Point
	// AfterOps is the number of Point crossings by Tid to let pass before
	// the first firing (0 = fire at the first crossing).
	AfterOps int64
	// Every, when > 0, re-fires the trigger every Every crossings after the
	// first; 0 fires exactly once. Only valid for timed stalls (Hold > 0):
	// a gate can park a thread once, not repeatedly.
	Every int64
	// Hold is the stall duration. Hold > 0 sleeps the thread at the
	// boundary and lets it continue (a timed stall — the delayed thread of
	// the paper's motivation). Hold == 0 parks the thread on a gate until
	// Armed.Release, Plan.ReleaseAll or Plan.Close: a permanent "crash"
	// that abandons the slot mid-operation, announcement and all.
	Hold time.Duration
}

// Armed is a Trigger registered with a Plan: the handle tests and probes use
// to steer and observe it. All methods are safe from any goroutine.
type Armed struct {
	t    Trigger
	plan *Plan

	enabled atomic.Bool
	// seen counts Point crossings by the trigger's tid; fired counts
	// firings. Both are written only by the owning tid (single-writer
	// cells), read from anywhere.
	seen  core.Counter
	fired core.Counter

	// entered is closed when a goroutine parks on the gate; release is
	// closed to let it go. Gated (Hold == 0) triggers only.
	entered     chan struct{}
	release     chan struct{}
	enterOnce   sync.Once
	releaseOnce sync.Once
}

// Trigger returns the schedule the handle was armed with.
func (a *Armed) Trigger() Trigger { return a.t }

// Enable lets the trigger fire. Triggers start enabled unless added with
// Plan.AddDisabled; probes flip them on between measurement phases.
func (a *Armed) Enable() { a.enabled.Store(true) }

// Disable stops the trigger from firing (crossings are still counted).
func (a *Armed) Disable() { a.enabled.Store(false) }

// Enabled reports whether the trigger currently fires.
func (a *Armed) Enabled() bool { return a.enabled.Load() }

// Crossings returns how many times the trigger's (tid, point) boundary has
// been crossed since Arm.
func (a *Armed) Crossings() int64 { return a.seen.Load() }

// Fired returns how many times the trigger has fired.
func (a *Armed) Fired() int64 { return a.fired.Load() }

// Stalled reports whether a goroutine is currently parked (or has ever
// parked) on the trigger's gate.
func (a *Armed) Stalled() bool {
	select {
	case <-a.entered:
		return true
	default:
		return false
	}
}

// AwaitStall blocks until a goroutine parks on the trigger's gate, or until
// timeout. It reports whether the stall was observed.
func (a *Armed) AwaitStall(timeout time.Duration) bool {
	select {
	case <-a.entered:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Release opens the trigger's gate, letting a parked thread continue (it
// resumes mid-operation, exactly where it stalled). Idempotent; a released
// gate never parks again.
func (a *Armed) Release() {
	a.releaseOnce.Do(func() { close(a.release) })
}

// fire performs the trigger's fault on the calling (owning) tid.
func (a *Armed) fire() {
	a.fired.Inc()
	if a.t.Hold > 0 {
		time.Sleep(a.t.Hold)
		return
	}
	a.enterOnce.Do(func() { close(a.entered) })
	<-a.release
}

// PlanStats aggregates a plan's activity counters.
type PlanStats struct {
	// Triggers is the number of armed triggers.
	Triggers int
	// Fired is the total firing count over all triggers.
	Fired int64
	// Parked is the number of gated triggers a thread has parked on.
	Parked int
}

// Plan is a set of armed triggers plus the arming state machine. Build one
// with NewPlan, register triggers with Add/AddDisabled (or AddChaos), hand
// it to recordmgr.Config.FaultPlan (or Wrap directly), then Arm it. Hooks
// are free no-ops until Arm and after Close.
type Plan struct {
	mu    sync.Mutex
	byTid map[int][]*Armed
	all   []*Armed
	// armed gates the hook fast path; its Store in Arm publishes the frozen
	// byTid map to the hook's Load.
	armed  atomic.Bool
	closed atomic.Bool
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{byTid: make(map[int][]*Armed)}
}

// Add registers t and returns its handle, enabled. It panics after Arm (the
// trigger map is frozen then — determinism depends on it) and on an invalid
// schedule (Every with a gated trigger, negative fields).
func (p *Plan) Add(t Trigger) *Armed {
	a := p.add(t)
	a.enabled.Store(true)
	return a
}

// AddDisabled registers t disabled; Armed.Enable arms it later (probes
// enable their stall between measurement phases).
func (p *Plan) AddDisabled(t Trigger) *Armed {
	return p.add(t)
}

func (p *Plan) add(t Trigger) *Armed {
	if t.Tid < 0 || t.AfterOps < 0 || t.Every < 0 || t.Hold < 0 {
		panic(fmt.Sprintf("faultinject: invalid trigger %+v", t))
	}
	if t.Every > 0 && t.Hold == 0 {
		panic("faultinject: a gated (Hold == 0) trigger cannot repeat (Every > 0); a gate parks a thread once")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.armed.Load() {
		panic("faultinject: Add after Arm (the trigger map is frozen)")
	}
	a := &Armed{
		t:       t,
		plan:    p,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	p.byTid[t.Tid] = append(p.byTid[t.Tid], a)
	p.all = append(p.all, a)
	return a
}

// Arm freezes the trigger map and activates the hooks. Idempotent; a plan
// with no triggers may be armed (every hook is then a cheap map miss).
func (p *Plan) Arm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed.Store(true)
}

// Armed reports whether Arm has run (and Close has not).
func (p *Plan) Armed() bool { return p.armed.Load() && !p.closed.Load() }

// ReleaseAll opens every gate, letting every parked thread continue. The
// plan stays armed: timed stalls keep firing.
func (p *Plan) ReleaseAll() {
	p.mu.Lock()
	all := p.all
	p.mu.Unlock()
	for _, a := range all {
		a.Release()
	}
}

// Close deactivates every hook and opens every gate. A closed plan injects
// nothing; call it before closing the Record Manager, so shutdown's flush
// and drain paths run fault-free and parked victims can quiesce (DrainLimbo
// verifies every participant's quiescence and would panic on a thread still
// parked inside an operation). Idempotent.
func (p *Plan) Close() {
	p.closed.Store(true)
	p.ReleaseAll()
}

// Stats returns the plan's aggregate activity counters.
func (p *Plan) Stats() PlanStats {
	p.mu.Lock()
	all := p.all
	p.mu.Unlock()
	st := PlanStats{Triggers: len(all)}
	for _, a := range all {
		st.Fired += a.Fired()
		if a.Stalled() {
			st.Parked++
		}
	}
	return st
}

// hook is the injection-point crossing, called by the wrapping reclaimer on
// the owning tid. Disarmed or closed plans return immediately; otherwise the
// tid's triggers at point are counted and fired per their schedules.
func (p *Plan) hook(tid int, point Point) {
	if !p.armed.Load() || p.closed.Load() {
		return
	}
	// byTid is frozen by Arm; the armed.Load above acquired its publication.
	for _, a := range p.byTid[tid] {
		if a.t.Point != point {
			continue
		}
		a.seen.Inc()
		if !a.enabled.Load() {
			continue
		}
		n := a.seen.Load()
		if n <= a.t.AfterOps {
			continue
		}
		if a.t.Every == 0 {
			// One-shot: the first enabled crossing past AfterOps fires, even
			// when earlier crossings passed while the trigger was disabled
			// (probes enable their stall between measurement phases).
			if a.fired.Load() == 0 {
				a.fire()
			}
		} else if (n-a.t.AfterOps-1)%a.t.Every == 0 {
			a.fire()
		}
	}
}

// ChaosConfig derives a deterministic chaos schedule from a seed: each tid
// gets one repeating timed stall at a pseudo-randomly chosen boundary, phase
// and period, so a whole worker population experiences scattered delays that
// replay exactly under the same seed.
type ChaosConfig struct {
	// Seed seeds the schedule derivation (0 is treated as 1).
	Seed int64
	// Tids are the threads to afflict.
	Tids []int
	// MeanEvery is the mean number of crossings between stalls per tid
	// (each tid's period is drawn from [MeanEvery/2, 3*MeanEvery/2];
	// default 512).
	MeanEvery int64
	// Hold is the maximum stall duration (each tid's hold is drawn from
	// [Hold/2, Hold]; default 1ms).
	Hold time.Duration
	// Points are the candidate boundaries (default: all three).
	Points []Point
}

// AddChaos registers the derived schedule on p and returns the trigger
// handles, enabled. Same seed, tids and knobs ⇒ same schedule.
func AddChaos(p *Plan, cfg ChaosConfig) []*Armed {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MeanEvery <= 0 {
		cfg.MeanEvery = 512
	}
	if cfg.Hold <= 0 {
		cfg.Hold = time.Millisecond
	}
	points := cfg.Points
	if len(points) == 0 {
		points = []Point{PointPinned, PointBeforeUnpin, PointRetire}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*Armed, 0, len(cfg.Tids))
	for _, tid := range cfg.Tids {
		every := cfg.MeanEvery/2 + rng.Int63n(cfg.MeanEvery) + 1
		hold := cfg.Hold/2 + time.Duration(rng.Int63n(int64(cfg.Hold)/2+1))
		out = append(out, p.Add(Trigger{
			Tid:      tid,
			Point:    points[rng.Intn(len(points))],
			AfterOps: rng.Int63n(every),
			Every:    every,
			Hold:     hold,
		}))
	}
	return out
}
