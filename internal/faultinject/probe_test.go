package faultinject_test

// The leak-style robustness tests: every scheme's bounded-unreclaimed
// contract under one injected stalled thread, asserted through the
// growth-slope probe rather than a hang. The bounded schemes (DEBRA+, HP —
// and the leaking baseline, stall-indifferent by construction) must show no
// stall-induced Unreclaimed growth; the epoch schemes (EBR, QSBR, DEBRA) are
// documented unbounded: the probe asserts their growth slope goes to ~1
// record/op behind the stalled announcement, which is the paper's motivating
// failure measured, not waited for.

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/raceenabled"
	"repro/internal/recordmgr"
)

type proberec struct {
	_ [2]int64
}

func TestProbeClassifiesSchemes(t *testing.T) {
	cases := []struct {
		scheme  string
		bounded bool
	}{
		{recordmgr.SchemeNone, true},
		{recordmgr.SchemeEBR, false},
		{recordmgr.SchemeQSBR, false},
		{recordmgr.SchemeDEBRA, false},
		{recordmgr.SchemeDEBRAPlus, true},
		{recordmgr.SchemeHP, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme, func(t *testing.T) {
			t.Parallel()
			if tc.scheme == recordmgr.SchemeDEBRAPlus && raceenabled.Enabled {
				// Under the race detector DEBRA+ is built with neutralization
				// disabled (recordmgr gates the signal-simulating panics) and
				// degrades to plain DEBRA, which is unbounded; the bounded
				// claim only holds in normal builds.
				t.Skip("DEBRA+ degrades to DEBRA under -race (neutralization disabled)")
			}
			plan, stalls := faultinject.NewStallPlan([]int{3})
			m, err := recordmgr.Build[proberec](recordmgr.Config{
				Scheme:    tc.scheme,
				Threads:   4,
				UsePool:   true,
				FaultPlan: plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := faultinject.Probe(m, plan, stalls, faultinject.ProbeConfig{
				Workers:      4,
				OpsPerWorker: 4000,
			})
			plan.Close()
			m.Close()

			if res.Scheme != tc.scheme {
				t.Fatalf("probe measured scheme %q, want %q", res.Scheme, tc.scheme)
			}
			if res.Stalled != 1 {
				t.Fatalf("Stalled = %d, want 1", res.Stalled)
			}
			if res.Bounded != tc.bounded {
				t.Fatalf("%s classified bounded=%v (delta %.3f = %.3f stalled - %.3f baseline), want bounded=%v",
					tc.scheme, res.Bounded, res.SlopeDelta, res.StalledSlope, res.BaselineSlope, tc.bounded)
			}
			if !tc.bounded && res.StalledSlope < 0.5 {
				// The unbounded schemes must actually exhibit the failure: the
				// stalled announcement pins every epoch, so close to every
				// retired record of the stalled phase stays unreclaimed.
				t.Fatalf("%s stalled-phase slope %.3f; an epoch scheme behind a stalled thread should approach 1 record/op",
					tc.scheme, res.StalledSlope)
			}
			if tc.scheme == recordmgr.SchemeDEBRAPlus && res.Neutralizations == 0 {
				t.Fatal("DEBRA+ stayed bounded without neutralizing the stalled thread — the probe did not exercise the mechanism")
			}
		})
	}
}

// TestProbeSurvivesBatchingAndAsync: the probe's quiescence recovery (release
// victims, join, Close) must hold with deferred-retire batching and the async
// hand-off pipeline interposed, where Unreclaimed spans three buffers — the
// wrapper forwards the capability interfaces (BlockReclaimer, Sharded) the
// manager sizes those paths by.
func TestProbeSurvivesBatchingAndAsync(t *testing.T) {
	plan, stalls := faultinject.NewStallPlan([]int{2})
	m, err := recordmgr.Build[proberec](recordmgr.Config{
		Scheme:      recordmgr.SchemeDEBRA,
		Threads:     3,
		UsePool:     true,
		RetireBatch: 16,
		Reclaimers:  1,
		FaultPlan:   plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := faultinject.Probe(m, plan, stalls, faultinject.ProbeConfig{Workers: 3, OpsPerWorker: 2000})
	plan.Close()
	m.Close()
	st := m.Stats()
	if st.Reclaimer.Retired != st.Reclaimer.Freed {
		t.Fatalf("after Close: Retired=%d Freed=%d; shutdown draining must survive a fault-injected run",
			st.Reclaimer.Retired, st.Reclaimer.Freed)
	}
	if res.BaselineOps == 0 || res.StalledOps == 0 {
		t.Fatalf("probe phases ran no operations: %+v", res)
	}
}
