package faultinject

// This file interposes a Plan on a core.Reclaimer. The wrapper forwards the
// whole extended reclaimer surface — BlockReclaimer, RetirePinner,
// LimboDrainer, Sharded, HandledReclaimer — with safe fallbacks where the
// wrapped scheme lacks a capability, and fires the plan's hooks at the three
// injected boundaries. The per-thread fast path is covered too: Handle(tid)
// wraps the *scheme's* handle directly (not the tid-routing methods below),
// so an injection point crossed through a ThreadHandle fires exactly once.

import (
	"repro/internal/blockbag"
	"repro/internal/core"
)

// Reclaimer wraps an inner reclamation scheme with a fault Plan. Construct
// with Wrap.
type Reclaimer[T any] struct {
	inner core.Reclaimer[T]
	plan  *Plan

	// Capabilities resolved once at Wrap, not per call.
	block   core.BlockReclaimer[T]
	pinner  core.RetirePinner
	drainer core.LimboDrainer
	sharded core.Sharded
	handled core.HandledReclaimer[T]
}

// Wrap interposes plan on inner. The wrapper claims the full extended
// reclaimer surface; capabilities inner lacks degrade safely (per-record
// RetireBlock, no-op PinRetire, zero DrainLimbo). Note that
// core.NewRecordManager sizes its handle table from core.Sharded — every
// scheme in this module implements it, and Wrap forwards it; wrapping an
// external reclaimer without it is only supported for direct use.
func Wrap[T any](inner core.Reclaimer[T], plan *Plan) *Reclaimer[T] {
	w := &Reclaimer[T]{inner: inner, plan: plan}
	w.block, _ = inner.(core.BlockReclaimer[T])
	w.pinner, _ = inner.(core.RetirePinner)
	w.drainer, _ = inner.(core.LimboDrainer)
	w.sharded, _ = inner.(core.Sharded)
	w.handled, _ = inner.(core.HandledReclaimer[T])
	return w
}

// Unwrap returns the wrapped scheme.
func (w *Reclaimer[T]) Unwrap() core.Reclaimer[T] { return w.inner }

// Plan returns the interposed fault plan.
func (w *Reclaimer[T]) Plan() *Plan { return w.plan }

// Name forwards to the wrapped scheme (bench rows and tests keep seeing the
// scheme's own name; the fault plane is orthogonal to identity).
func (w *Reclaimer[T]) Name() string { return w.inner.Name() }

// Props forwards to the wrapped scheme.
func (w *Reclaimer[T]) Props() core.Properties { return w.inner.Props() }

// LeaveQstate forwards, then crosses PointPinned: the stall happens with the
// thread's announcement live, the adversarial timing the paper describes.
func (w *Reclaimer[T]) LeaveQstate(tid int) bool {
	v := w.inner.LeaveQstate(tid)
	w.plan.hook(tid, PointPinned)
	return v
}

// EnterQstate crosses PointBeforeUnpin, then forwards: the stall happens
// after the operation's work but before the thread quiesces.
func (w *Reclaimer[T]) EnterQstate(tid int) {
	w.plan.hook(tid, PointBeforeUnpin)
	w.inner.EnterQstate(tid)
}

// IsQuiescent forwards to the wrapped scheme.
func (w *Reclaimer[T]) IsQuiescent(tid int) bool { return w.inner.IsQuiescent(tid) }

// Retire crosses PointRetire, then forwards.
func (w *Reclaimer[T]) Retire(tid int, rec *T) {
	w.plan.hook(tid, PointRetire)
	w.inner.Retire(tid, rec)
}

// RetireBlock crosses PointRetire once per block, then forwards — or, for a
// scheme without the block fast path, retires the block's records one by
// one (returning no spare, exactly as core.RetireChain would have).
func (w *Reclaimer[T]) RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T] {
	w.plan.hook(tid, PointRetire)
	if w.block != nil {
		return w.block.RetireBlock(tid, blk)
	}
	for i := 0; i < blk.Len(); i++ {
		w.inner.Retire(tid, blk.Record(i))
	}
	return nil
}

// Protect forwards to the wrapped scheme.
func (w *Reclaimer[T]) Protect(tid int, rec *T) bool { return w.inner.Protect(tid, rec) }

// Unprotect forwards to the wrapped scheme.
func (w *Reclaimer[T]) Unprotect(tid int, rec *T) { w.inner.Unprotect(tid, rec) }

// IsProtected forwards to the wrapped scheme.
func (w *Reclaimer[T]) IsProtected(tid int, rec *T) bool { return w.inner.IsProtected(tid, rec) }

// RProtect forwards to the wrapped scheme.
func (w *Reclaimer[T]) RProtect(tid int, rec *T) { w.inner.RProtect(tid, rec) }

// RUnprotectAll forwards to the wrapped scheme.
func (w *Reclaimer[T]) RUnprotectAll(tid int) { w.inner.RUnprotectAll(tid) }

// IsRProtected forwards to the wrapped scheme.
func (w *Reclaimer[T]) IsRProtected(tid int, rec *T) bool { return w.inner.IsRProtected(tid, rec) }

// SupportsCrashRecovery forwards to the wrapped scheme.
func (w *Reclaimer[T]) SupportsCrashRecovery() bool { return w.inner.SupportsCrashRecovery() }

// Checkpoint forwards to the wrapped scheme (neutralization delivery is the
// scheme's own business; the fault plane only delays and parks).
func (w *Reclaimer[T]) Checkpoint(tid int) { w.inner.Checkpoint(tid) }

// Stats forwards to the wrapped scheme.
func (w *Reclaimer[T]) Stats() core.Stats { return w.inner.Stats() }

// PinRetire forwards when the wrapped scheme pins retires; otherwise it is
// the same no-op schemes without epoch state use.
func (w *Reclaimer[T]) PinRetire(tid int) {
	if w.pinner != nil {
		w.pinner.PinRetire(tid)
	}
}

// UnpinRetire reverses PinRetire (forwarded or no-op, matching it).
func (w *Reclaimer[T]) UnpinRetire(tid int) {
	if w.pinner != nil {
		w.pinner.UnpinRetire(tid)
	}
}

// DrainLimbo forwards when the wrapped scheme supports quiescent shutdown
// draining, and reports nothing drainable otherwise.
func (w *Reclaimer[T]) DrainLimbo(tid int) int64 {
	if w.drainer != nil {
		return w.drainer.DrainLimbo(tid)
	}
	return 0
}

// ShardMap forwards the wrapped scheme's shard map (nil for a non-sharded
// external reclaimer; see Wrap).
func (w *Reclaimer[T]) ShardMap() *core.ShardMap {
	if w.sharded != nil {
		return w.sharded.ShardMap()
	}
	return nil
}

// Handle returns tid's injecting fast-path handle: the scheme's own handle
// (or a tid-routing adapter) with the plan's hooks at the same boundaries as
// the tid-based methods above. The scheme handle is wrapped directly, so a
// crossing through a ThreadHandle fires exactly once.
func (w *Reclaimer[T]) Handle(tid int) core.ReclaimerHandle[T] {
	var inner core.ReclaimerHandle[T]
	if w.handled != nil {
		inner = w.handled.Handle(tid)
	} else {
		inner = &tidHandle[T]{rec: w.inner, tid: tid}
	}
	return &handle[T]{inner: inner, plan: w.plan, tid: tid}
}

// handle is the injecting ReclaimerHandle: the scheme's per-thread fast path
// with hook crossings at the boundaries the plan knows.
type handle[T any] struct {
	inner core.ReclaimerHandle[T]
	plan  *Plan
	tid   int
}

// LeaveQstate forwards, then crosses PointPinned.
func (h *handle[T]) LeaveQstate() bool {
	v := h.inner.LeaveQstate()
	h.plan.hook(h.tid, PointPinned)
	return v
}

// EnterQstate crosses PointBeforeUnpin, then forwards.
func (h *handle[T]) EnterQstate() {
	h.plan.hook(h.tid, PointBeforeUnpin)
	h.inner.EnterQstate()
}

// Retire crosses PointRetire, then forwards.
func (h *handle[T]) Retire(rec *T) {
	h.plan.hook(h.tid, PointRetire)
	h.inner.Retire(rec)
}

// Protect forwards to the scheme handle.
func (h *handle[T]) Protect(rec *T) bool { return h.inner.Protect(rec) }

// Unprotect forwards to the scheme handle.
func (h *handle[T]) Unprotect(rec *T) { h.inner.Unprotect(rec) }

// Checkpoint forwards to the scheme handle.
func (h *handle[T]) Checkpoint() { h.inner.Checkpoint() }

// tidHandle routes handle calls through the tid-based interface for wrapped
// reclaimers without per-thread handles of their own.
type tidHandle[T any] struct {
	rec core.Reclaimer[T]
	tid int
}

// LeaveQstate routes through the tid-based interface.
func (g *tidHandle[T]) LeaveQstate() bool { return g.rec.LeaveQstate(g.tid) }

// EnterQstate routes through the tid-based interface.
func (g *tidHandle[T]) EnterQstate() { g.rec.EnterQstate(g.tid) }

// Retire routes through the tid-based interface.
func (g *tidHandle[T]) Retire(rec *T) { g.rec.Retire(g.tid, rec) }

// Protect routes through the tid-based interface.
func (g *tidHandle[T]) Protect(rec *T) bool { return g.rec.Protect(g.tid, rec) }

// Unprotect routes through the tid-based interface.
func (g *tidHandle[T]) Unprotect(rec *T) { g.rec.Unprotect(g.tid, rec) }

// Checkpoint routes through the tid-based interface.
func (g *tidHandle[T]) Checkpoint() { g.rec.Checkpoint(g.tid) }
