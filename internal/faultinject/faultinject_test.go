package faultinject

import (
	"testing"
	"time"
)

// TestGatedTriggerParksUntilRelease covers the "crash" fault: a Hold == 0
// trigger parks the crossing goroutine on its gate until Release, and the
// gate never parks again afterwards (one crash per trigger).
func TestGatedTriggerParksUntilRelease(t *testing.T) {
	p := NewPlan()
	a := p.Add(Trigger{Tid: 3, Point: PointPinned})
	p.Arm()

	done := make(chan struct{})
	go func() {
		p.hook(3, PointPinned)
		close(done)
	}()
	if !a.AwaitStall(2 * time.Second) {
		t.Fatal("goroutine never parked on the gate")
	}
	if !a.Stalled() {
		t.Fatal("Stalled() false while a goroutine is parked")
	}
	select {
	case <-done:
		t.Fatal("goroutine continued past the gate before Release")
	default:
	}
	a.Release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("goroutine still parked after Release")
	}
	// A released gate is spent: further crossings pass straight through.
	p.hook(3, PointPinned)
	if got := a.Fired(); got != 1 {
		t.Fatalf("Fired() = %d after a crossing past a spent one-shot gate, want 1", got)
	}
}

// TestTimedStallRepeats covers the repeating timed stall: AfterOps crossings
// pass untouched, then every Every-th crossing fires and sleeps.
func TestTimedStallRepeats(t *testing.T) {
	p := NewPlan()
	a := p.Add(Trigger{Tid: 0, Point: PointRetire, AfterOps: 2, Every: 2, Hold: time.Microsecond})
	p.Arm()
	for i := 0; i < 8; i++ {
		p.hook(0, PointRetire)
	}
	if got := a.Crossings(); got != 8 {
		t.Fatalf("Crossings() = %d, want 8", got)
	}
	// Crossings 3, 5 and 7 fire (first past AfterOps=2, then every 2nd).
	if got := a.Fired(); got != 3 {
		t.Fatalf("Fired() = %d, want 3", got)
	}
}

// TestOneShotFiresAtFirstEnabledCrossing covers the probe pattern: a trigger
// added disabled counts crossings but never fires until Enable, and then
// fires exactly once even though the AfterOps threshold passed long ago.
func TestOneShotFiresAtFirstEnabledCrossing(t *testing.T) {
	p := NewPlan()
	a := p.AddDisabled(Trigger{Tid: 1, Point: PointBeforeUnpin, AfterOps: 1, Hold: time.Microsecond})
	p.Arm()
	for i := 0; i < 5; i++ {
		p.hook(1, PointBeforeUnpin)
	}
	if got := a.Fired(); got != 0 {
		t.Fatalf("disabled trigger fired %d times", got)
	}
	a.Enable()
	p.hook(1, PointBeforeUnpin)
	if got := a.Fired(); got != 1 {
		t.Fatalf("Fired() = %d after first enabled crossing, want 1", got)
	}
	p.hook(1, PointBeforeUnpin)
	if got := a.Fired(); got != 1 {
		t.Fatalf("one-shot fired again: Fired() = %d", got)
	}
}

// TestHooksInertUntilArmAndAfterClose: a plan injects nothing before Arm and
// nothing after Close, so the fault plane is free when not in use.
func TestHooksInertUntilArmAndAfterClose(t *testing.T) {
	p := NewPlan()
	a := p.Add(Trigger{Tid: 0, Point: PointPinned, Hold: time.Microsecond})
	p.hook(0, PointPinned)
	if got := a.Crossings(); got != 0 {
		t.Fatalf("unarmed plan counted %d crossings", got)
	}
	p.Arm()
	p.hook(0, PointPinned)
	if a.Fired() != 1 {
		t.Fatalf("armed plan did not fire: Fired() = %d", a.Fired())
	}
	p.Close()
	p.hook(0, PointPinned)
	if got := a.Crossings(); got != 1 {
		t.Fatalf("closed plan still counting: Crossings() = %d, want 1", got)
	}
	if p.Armed() {
		t.Fatal("Armed() true after Close")
	}
}

// TestCloseReleasesParkedThreads: Close opens every gate, so a victim parked
// mid-operation can quiesce before the Record Manager shuts down.
func TestCloseReleasesParkedThreads(t *testing.T) {
	p := NewPlan()
	a := p.Add(Trigger{Tid: 0, Point: PointPinned})
	p.Arm()
	done := make(chan struct{})
	go func() {
		p.hook(0, PointPinned)
		close(done)
	}()
	if !a.AwaitStall(2 * time.Second) {
		t.Fatal("goroutine never parked")
	}
	if st := p.Stats(); st.Parked != 1 {
		t.Fatalf("Stats().Parked = %d, want 1", st.Parked)
	}
	p.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the parked goroutine")
	}
}

// TestAddAfterArmPanics: the trigger map freezes at Arm; late additions are
// programming errors, not silent no-ops.
func TestAddAfterArmPanics(t *testing.T) {
	p := NewPlan()
	p.Arm()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Arm did not panic")
		}
	}()
	p.Add(Trigger{Tid: 0, Point: PointPinned, Hold: time.Microsecond})
}

// TestRepeatingGatedTriggerPanics: a gate parks a thread once; asking it to
// repeat is a schedule error.
func TestRepeatingGatedTriggerPanics(t *testing.T) {
	p := NewPlan()
	defer func() {
		if recover() == nil {
			t.Fatal("gated trigger with Every > 0 did not panic")
		}
	}()
	p.Add(Trigger{Tid: 0, Point: PointPinned, Every: 4})
}

// TestAddChaosDeterministic: the same seed and knobs derive the same
// schedule, trigger for trigger — the replay guarantee chaos runs rest on.
func TestAddChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, Tids: []int{0, 1, 2, 3}, MeanEvery: 64, Hold: time.Millisecond}
	a := AddChaos(NewPlan(), cfg)
	b := AddChaos(NewPlan(), cfg)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Trigger() != b[i].Trigger() {
			t.Fatalf("trigger %d differs: %+v vs %+v", i, a[i].Trigger(), b[i].Trigger())
		}
	}
	other := AddChaos(NewPlan(), ChaosConfig{Seed: 43, Tids: cfg.Tids, MeanEvery: 64, Hold: time.Millisecond})
	same := true
	for i := range a {
		if a[i].Trigger() != other[i].Trigger() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds derived identical schedules")
	}
}
