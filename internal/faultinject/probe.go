package faultinject

// This file is the bounded-unreclaimed probe: the paper's robustness figure
// as a predicate. It measures ManagerStats.Unreclaimed growth per operation
// twice — once with every worker live, once with a subset parked while
// pinned — and classifies the scheme by the *stall-induced* slope delta.
// The delta is what separates the schemes cleanly: the leaking baseline
// grows at ~1 record/op with or without the stall (stall-indifferent ⇒
// bounded in the paper's sense: a crashed thread changes nothing), the
// epoch schemes go from ~0 to ~1 (every retire parks behind the stalled
// announcement forever), and DEBRA+ (neutralizing the laggard) and HP
// (never blocking on laggards) stay near zero on both sides.

import (
	"sync"

	"repro/internal/core"
	"repro/internal/neutralize"
)

// DefaultBoundSlack is the classification threshold on the stall-induced
// Unreclaimed slope delta, in records per operation: the unbounded schemes
// sit near 1.0 (every retired record parks forever), the bounded ones near
// 0.0 (transient plateaus only), so the midpoint separates them with wide
// margins on both sides.
const DefaultBoundSlack = 0.5

// ProbeConfig tunes Probe.
type ProbeConfig struct {
	// Workers is the number of worker tids driven (0..Workers-1); the
	// manager must have at least that many worker slots. Default 4.
	Workers int
	// OpsPerWorker is each live worker's operation count per measurement
	// phase. It must be large enough for the scheme's amortized machinery
	// (epoch advances, DEBRA+'s suspicion threshold) to engage; default
	// 4000.
	OpsPerWorker int
	// BoundSlack overrides DefaultBoundSlack when > 0.
	BoundSlack float64
}

// ProbeResult is one scheme's measured robustness classification.
type ProbeResult struct {
	// Scheme is the wrapped reclaimer's name.
	Scheme string
	// Workers and Stalled are the worker count and the number of threads
	// parked during the stalled phase.
	Workers, Stalled int
	// BaselineOps/StalledOps are the completed operations per phase.
	BaselineOps, StalledOps int64
	// BaselineGrowth/StalledGrowth are each phase's ΔUnreclaimed.
	BaselineGrowth, StalledGrowth int64
	// BaselineSlope/StalledSlope are the growth-per-operation slopes; their
	// difference is the stall-induced growth the classification keys on.
	BaselineSlope, StalledSlope float64
	// SlopeDelta is StalledSlope - BaselineSlope.
	SlopeDelta float64
	// Bounded reports SlopeDelta < BoundSlack: a stalled thread does not
	// make unreclaimed memory grow with continued operation.
	Bounded bool
	// MaxUnreclaimed is the largest Unreclaimed sample observed.
	MaxUnreclaimed int64
	// Neutralizations counts the scheme's neutralizations over the whole
	// probe (non-zero only for DEBRA+ with neutralization active).
	Neutralizations int64
}

// NewStallPlan returns a plan with one gated stall-while-pinned trigger per
// tid, disabled (Probe enables them between its phases), plus the handles.
// Wire the plan through recordmgr.Config.FaultPlan when building the
// manager, then hand both to Probe.
func NewStallPlan(stallTids []int) (*Plan, []*Armed) {
	p := NewPlan()
	stalls := make([]*Armed, len(stallTids))
	for i, tid := range stallTids {
		stalls[i] = p.AddDisabled(Trigger{Tid: tid, Point: PointPinned})
	}
	return p, stalls
}

// Probe measures m's Unreclaimed growth with and without the plan's stall
// triggers parked and classifies the scheme (see ProbeResult). The manager
// must have been built over plan (recordmgr.Config.FaultPlan or Wrap) with
// the stall triggers disabled; Probe arms the plan, runs the baseline phase
// with every worker live, parks the stall tids, runs the stalled phase on
// the remaining workers, then releases and joins the victims — neutralized
// ones recover through the standard neutralize.OnNeutralized path — leaving
// every thread quiescent so the caller can Close the manager normally.
func Probe[T any](m *core.RecordManager[T], plan *Plan, stalls []*Armed, cfg ProbeConfig) ProbeResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 4000
	}
	slack := cfg.BoundSlack
	if slack <= 0 {
		slack = DefaultBoundSlack
	}
	if len(stalls) >= cfg.Workers {
		panic("faultinject: Probe needs at least one live (non-stalled) worker")
	}
	plan.Arm()

	stalled := make(map[int]bool, len(stalls))
	for _, a := range stalls {
		stalled[a.Trigger().Tid] = true
	}
	live := make([]int, 0, cfg.Workers)
	victims := make([]int, 0, len(stalls))
	for tid := 0; tid < cfg.Workers; tid++ {
		if stalled[tid] {
			victims = append(victims, tid)
		} else {
			live = append(live, tid)
		}
	}

	res := ProbeResult{
		Scheme:  m.Reclaimer().Name(),
		Workers: cfg.Workers,
		Stalled: len(victims),
	}
	neut0 := m.Stats().Reclaimer.Neutralizations

	// Baseline phase: every worker (including the future victims) runs, so
	// the scheme's steady-state plateau — limbo a few epochs deep, batching
	// residue — is measured and subtracted out by the delta.
	s0 := m.Stats().Unreclaimed
	runWorkers(m, append(append([]int(nil), live...), victims...), cfg.OpsPerWorker)
	s1 := m.Stats().Unreclaimed
	res.BaselineOps = int64(cfg.Workers) * int64(cfg.OpsPerWorker)
	res.BaselineGrowth = s1 - s0
	res.BaselineSlope = float64(res.BaselineGrowth) / float64(res.BaselineOps)

	// Park the victims: each one's first LeaveQstate crosses the enabled
	// gate and blocks while pinned. AwaitStall synchronises the measurement
	// start with every victim actually holding its announcement.
	for _, a := range stalls {
		a.Enable()
	}
	var victimWG sync.WaitGroup
	for _, tid := range victims {
		victimWG.Add(1)
		go func(tid int) {
			defer victimWG.Done()
			runOps(m, tid, 1)
		}(tid)
	}
	for _, a := range stalls {
		// The gate has no timeout here by design: a victim that never
		// parks would make the phases overlap and the measurement lie.
		<-a.entered
	}

	// Stalled phase: only the live workers run.
	s2 := m.Stats().Unreclaimed
	runWorkers(m, live, cfg.OpsPerWorker)
	s3 := m.Stats().Unreclaimed
	res.StalledOps = int64(len(live)) * int64(cfg.OpsPerWorker)
	res.StalledGrowth = s3 - s2
	res.StalledSlope = float64(res.StalledGrowth) / float64(res.StalledOps)

	// Recovery: open the gates and join the victims. A neutralized victim
	// panics at its next checkpoint and recovers through OnNeutralized in
	// runOps; either way every thread ends quiescent and the caller's Close
	// (flush → drain → DrainLimbo) runs on a fault-free plan.
	for _, a := range stalls {
		a.Release()
	}
	victimWG.Wait()

	res.SlopeDelta = res.StalledSlope - res.BaselineSlope
	res.Bounded = res.SlopeDelta < slack
	res.MaxUnreclaimed = maxInt64(maxInt64(s0, s1), maxInt64(s2, s3))
	res.Neutralizations = m.Stats().Reclaimer.Neutralizations - neut0
	return res
}

// runWorkers runs n operations on each tid concurrently and joins them.
func runWorkers[T any](m *core.RecordManager[T], tids []int, n int) {
	var wg sync.WaitGroup
	for _, tid := range tids {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			runOps(m, tid, n)
		}(tid)
	}
	wg.Wait()
}

// runOps performs n alloc→retire probe operations on tid's handle. Each
// operation absorbs a neutralization delivery the way a real data structure
// would: the retire precedes the delivery point (EnterQstate), so a doomed
// operation loses nothing, and the thread comes out quiescent.
func runOps[T any](m *core.RecordManager[T], tid, n int) {
	h := m.Handle(tid)
	for i := 0; i < n; i++ {
		opOnce(h)
	}
}

// opOnce is one pin → allocate → retire → unpin round-trip with
// neutralization recovery.
func opOnce[T any](h *core.ThreadHandle[T]) {
	defer neutralize.OnNeutralized(h.Manager(), h.Tid(), func(neutralize.Neutralized) {})
	h.LeaveQstate()
	rec := h.Allocate()
	h.Retire(rec)
	h.EnterQstate()
}

// maxInt64 returns the larger of a and b.
func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
