package faultinject_test

// The chaos poison-sink stress: the standard hash-map safety harness
// (poisoned free sink, traversal visit hook, thread-private semantic model)
// run with a seeded chaos schedule of timed stalls injected at the reclaimer
// operation boundaries of every worker. Chaos must not be able to provoke a
// use-after-free, a double free, or a wrong answer — the stalls only delay
// threads, which is exactly the adversary the schemes claim to tolerate.
// Runs under -race -short in CI (timed stalls never park, so every scheme
// supports the schedule).
//
// DEBRA+ runs with neutralization disabled here (degrading to DEBRA-
// equivalent reclamation) in every build, not just under -race. The chaos
// stalls hold epochs back long enough to trip the suspicion threshold
// constantly, and the cooperative signal simulation cannot stop a doomed,
// signal-pending thread from executing one more mutating CAS before its next
// checkpoint — by then the epoch has advanced past it and the CAS can land
// in a recycled record (the C++ original preempts with a real signal, so the
// window does not exist there). Under mass concurrent neutralization that
// window is hit often enough to corrupt the list. Neutralization itself is
// exercised by the deterministic probe tests, whose only neutralized
// threads run structure-free allocate/retire bodies; making the full
// mechanism safe under live traffic is the ROADMAP's "race-clean DEBRA+
// neutralization" item.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/faultinject"
	"repro/internal/neutralize"
	"repro/internal/pool"
	"repro/internal/reclaim/debraplus"
	"repro/internal/reclaimtest"
	"repro/internal/recordmgr"
)

// chaosSet adapts hashmap.Map to the reclaimtest.Set surface.
type chaosSet struct{ m *hashmap.Map[int64] }

func (s chaosSet) Insert(tid int, key int64) bool   { return s.m.Insert(tid, key, key) }
func (s chaosSet) Delete(tid int, key int64) bool   { return s.m.Delete(tid, key) }
func (s chaosSet) Contains(tid int, key int64) bool { return s.m.Contains(tid, key) }

// chaosMapFactory builds a poison-instrumented hash map whose reclaimer is
// wrapped with a seeded chaos plan: every worker tid gets a repeating timed
// stall at a derived boundary and period. The plan closes before the manager
// (reclaimtest runs Close after its quiescent checks), so shutdown draining
// runs fault-free.
func chaosMapFactory(t *testing.T, scheme string, seed int64) reclaimtest.SetFactory {
	return func(n int) reclaimtest.SetUnderTest {
		type rec = hashmap.Node[int64]
		alloc := arena.NewBump[rec](n, 0)
		pp := reclaimtest.NewPoisonPool[rec, *rec](pool.New[rec](n, alloc))
		dom := neutralize.NewDomain(n)
		var rcl core.Reclaimer[rec]
		if scheme == recordmgr.SchemeDEBRAPlus {
			// Neutralization off under chaos in every build — see the file
			// comment. With no signals pending, the visit hook's doomed-read
			// exemption never applies, so any poisoned visit is a violation,
			// exactly as for the other schemes.
			rcl = debraplus.New[rec](n, pp,
				debraplus.WithDomain(dom), debraplus.WithNeutralizationDisabled())
		} else {
			var err error
			rcl, err = recordmgr.NewShardedReclaimer[rec](scheme, n, pp, dom, core.ShardSpec{})
			if err != nil {
				t.Fatal(err)
			}
		}
		plan := faultinject.NewPlan()
		tids := make([]int, n)
		for i := range tids {
			tids[i] = i
		}
		faultinject.AddChaos(plan, faultinject.ChaosConfig{
			Seed:      seed,
			Tids:      tids,
			MeanEvery: 256,
			Hold:      200 * time.Microsecond,
		})
		plan.Arm()
		mgr := core.NewRecordManager[rec](alloc, pp, faultinject.Wrap(rcl, plan))
		m := hashmap.New[int64](mgr, n, hashmap.WithInitialBuckets(2), hashmap.WithMaxLoad(2))
		var violations atomic.Int64
		m.SetVisitHook(func(tid int, nd *hashmap.Node[int64]) {
			if nd.IsPoisoned() && !dom.Pending(tid) {
				violations.Add(1)
			}
		})
		return reclaimtest.SetUnderTest{
			Set:         chaosSet{m},
			Violations:  violations.Load,
			DoubleFrees: pp.DoubleFrees,
			Stats:       rcl.Stats,
			Validate:    m.Validate,
			Close: func() {
				plan.Close()
				mgr.Close()
			},
		}
	}
}

func TestChaosStressSet(t *testing.T) {
	opts := reclaimtest.DefaultSetStressOptions()
	if testing.Short() {
		opts.Duration = 60 * time.Millisecond
	}
	for _, scheme := range recordmgr.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			reclaimtest.StressSet(t, chaosMapFactory(t, scheme, 0xC4A05), opts)
		})
	}
}
