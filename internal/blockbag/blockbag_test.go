package blockbag

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

type rec struct{ id int }

func mkRecs(n int) []*rec {
	out := make([]*rec, n)
	for i := range out {
		out[i] = &rec{id: i}
	}
	return out
}

func TestBagAddRemoveSingle(t *testing.T) {
	b := New[rec](nil)
	if !b.Empty() || b.Len() != 0 {
		t.Fatalf("new bag not empty: len=%d", b.Len())
	}
	r := &rec{id: 1}
	b.Add(r)
	if b.Len() != 1 || b.Empty() {
		t.Fatalf("after Add: len=%d", b.Len())
	}
	got, ok := b.Remove()
	if !ok || got != r {
		t.Fatalf("Remove returned %v, %v", got, ok)
	}
	if _, ok := b.Remove(); ok {
		t.Fatal("Remove on empty bag returned ok")
	}
}

func TestBagAddNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Add(nil)")
		}
	}()
	New[rec](nil).Add(nil)
}

func TestBagHeadBlockInvariant(t *testing.T) {
	b := New[rec](nil)
	recs := mkRecs(5*BlockSize + 17)
	for i, r := range recs {
		b.Add(r)
		if b.head.n >= BlockSize {
			t.Fatalf("head block reached %d records after %d adds", b.head.n, i+1)
		}
		for blk := b.head.next; blk != nil; blk = blk.next {
			if !blk.Full() {
				t.Fatalf("non-head block has %d records after %d adds", blk.n, i+1)
			}
		}
	}
	if b.Len() != len(recs) {
		t.Fatalf("len=%d want %d", b.Len(), len(recs))
	}
	// Drain and verify the invariant holds throughout removal too.
	seen := map[*rec]bool{}
	for {
		r, ok := b.Remove()
		if !ok {
			break
		}
		if seen[r] {
			t.Fatalf("record %d returned twice", r.id)
		}
		seen[r] = true
		for blk := b.head.next; blk != nil; blk = blk.next {
			if !blk.Full() {
				t.Fatalf("non-head block has %d records during removal", blk.n)
			}
		}
	}
	if len(seen) != len(recs) {
		t.Fatalf("drained %d records, want %d", len(seen), len(recs))
	}
}

func TestDetachAllTakesPartialHeadAndFulls(t *testing.T) {
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize, BlockSize + 7, 3*BlockSize + 5} {
		bag := New[rec](nil)
		recs := mkRecs(n)
		for _, r := range recs {
			bag.Add(r)
		}
		chain := bag.DetachAll()
		if n == 0 {
			if chain != nil {
				t.Fatalf("DetachAll on empty bag returned a chain")
			}
			continue
		}
		if got := ChainLen(chain); got != n {
			t.Fatalf("DetachAll(%d records): chain holds %d", n, got)
		}
		if bag.Len() != 0 || !bag.Empty() {
			t.Fatalf("bag not empty after DetachAll: %d", bag.Len())
		}
		// The bag must remain usable with a fresh head.
		bag.Add(&rec{id: -1})
		if bag.Len() != 1 {
			t.Fatalf("bag unusable after DetachAll")
		}
		// Every record must appear exactly once in the chain.
		seen := map[*rec]bool{}
		for blk := chain; blk != nil; blk = blk.Next() {
			for i := 0; i < blk.Len(); i++ {
				r := blk.Record(i)
				if seen[r] {
					t.Fatalf("record duplicated in DetachAll chain")
				}
				seen[r] = true
			}
		}
		for _, r := range recs {
			if !seen[r] {
				t.Fatalf("record lost by DetachAll")
			}
		}
	}
}

func TestBagContentPreservation(t *testing.T) {
	// Property: any sequence of adds followed by a full drain returns exactly
	// the added multiset.
	f := func(sizes []uint8) bool {
		b := New[rec](nil)
		want := map[*rec]bool{}
		for range sizes {
			n := int(sizes[0]%7) + 1
			for i := 0; i < n; i++ {
				r := &rec{id: len(want)}
				want[r] = true
				b.Add(r)
			}
		}
		got := map[*rec]bool{}
		b.Drain(func(r *rec) { got[r] = true })
		if len(got) != len(want) {
			return false
		}
		for r := range want {
			if !got[r] {
				return false
			}
		}
		return b.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBagRandomAddRemoveQuick(t *testing.T) {
	// Property: under a random interleaving of adds and removes the bag's
	// length always matches a reference counter and removed records are a
	// subset of added records with no duplicates.
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New[rec](nil)
		live := map[*rec]bool{}
		next := 0
		for _, add := range ops {
			if add || len(live) == 0 {
				r := &rec{id: next}
				next++
				live[r] = true
				b.Add(r)
			} else {
				r, ok := b.Remove()
				if !ok {
					return false
				}
				if !live[r] {
					return false
				}
				delete(live, r)
			}
			if b.Len() != len(live) {
				return false
			}
			_ = rng
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveFullBlocksTo(t *testing.T) {
	pool := NewBlockPool[rec](0)
	src := New(pool)
	dst := New(pool)
	n := 3*BlockSize + 10
	for _, r := range mkRecs(n) {
		src.Add(r)
	}
	moved := src.MoveFullBlocksTo(dst)
	if moved != 3*BlockSize {
		t.Fatalf("moved %d records, want %d", moved, 3*BlockSize)
	}
	if src.Len() != 10 {
		t.Fatalf("src len=%d want 10", src.Len())
	}
	if dst.Len() != 3*BlockSize {
		t.Fatalf("dst len=%d want %d", dst.Len(), 3*BlockSize)
	}
	// The destination must keep the head-partial/others-full invariant.
	for blk := dst.head.next; blk != nil; blk = blk.next {
		if !blk.Full() {
			t.Fatalf("dst non-head block has %d records", blk.n)
		}
	}
}

func TestMoveAllTo(t *testing.T) {
	src := New[rec](nil)
	dst := New[rec](nil)
	recs := mkRecs(2*BlockSize + 5)
	for _, r := range recs {
		src.Add(r)
	}
	moved := src.MoveAllTo(dst)
	if moved != len(recs) {
		t.Fatalf("moved %d want %d", moved, len(recs))
	}
	if !src.Empty() {
		t.Fatalf("src not empty: %d", src.Len())
	}
	if dst.Len() != len(recs) {
		t.Fatalf("dst len=%d want %d", dst.Len(), len(recs))
	}
}

func TestIteratorVisitsEverything(t *testing.T) {
	b := New[rec](nil)
	recs := mkRecs(2*BlockSize + 77)
	for _, r := range recs {
		b.Add(r)
	}
	seen := map[*rec]bool{}
	for it := b.Begin(); !it.Done(); it.Next() {
		if seen[it.Get()] {
			t.Fatal("iterator visited a record twice")
		}
		seen[it.Get()] = true
	}
	if len(seen) != len(recs) {
		t.Fatalf("iterator visited %d records, want %d", len(seen), len(recs))
	}
}

func TestIteratorOnEmptyBag(t *testing.T) {
	b := New[rec](nil)
	if it := b.Begin(); !it.Done() {
		t.Fatal("iterator on empty bag is not Done")
	}
}

func TestIteratorSwapAndDetach(t *testing.T) {
	// Simulate DEBRA+'s partition: mark some records as "protected", swap
	// them to the front, detach full blocks after the partition point, and
	// check that no protected record was detached.
	b := New[rec](nil)
	n := 4*BlockSize + 100
	recs := mkRecs(n)
	protected := map[*rec]bool{}
	for i, r := range recs {
		b.Add(r)
		if i%97 == 0 {
			protected[r] = true
		}
	}
	it1 := b.Begin()
	it2 := b.Begin()
	for ; !it1.Done(); it1.Next() {
		if protected[it1.Get()] {
			it1.Swap(&it2)
			it2.Next()
		}
	}
	chain := b.DetachFullBlocksAfter(it2)
	for blk := chain; blk != nil; blk = blk.Next() {
		if !blk.Full() {
			t.Fatalf("detached block with %d records", blk.Len())
		}
		for i := 0; i < blk.Len(); i++ {
			if protected[blk.Record(i)] {
				t.Fatalf("protected record %d was detached", blk.Record(i).id)
			}
		}
	}
	// Every protected record must still be in the bag.
	for r := range protected {
		if !b.Contains(r) {
			t.Fatalf("protected record %d missing from bag", r.id)
		}
	}
	// Total conservation.
	if got := b.Len() + ChainLen(chain); got != n {
		t.Fatalf("records lost: bag %d + chain %d = %d, want %d", b.Len(), ChainLen(chain), got, n)
	}
}

func TestDetachAfterDoneIteratorDetachesNothing(t *testing.T) {
	b := New[rec](nil)
	for _, r := range mkRecs(3 * BlockSize) {
		b.Add(r)
	}
	it := b.Begin()
	for ; !it.Done(); it.Next() {
	}
	if chain := b.DetachFullBlocksAfter(it); chain != nil {
		t.Fatalf("Done iterator detached %d records", ChainLen(chain))
	}
	if b.Len() != 3*BlockSize {
		t.Fatalf("bag lost records: %d", b.Len())
	}
}

func TestBlockPoolRecycles(t *testing.T) {
	p := NewBlockPool[rec](4)
	var blocks []*Block[rec]
	for i := 0; i < 8; i++ {
		blocks = append(blocks, p.Get())
	}
	if p.Allocated() != 8 {
		t.Fatalf("allocated=%d want 8", p.Allocated())
	}
	for _, b := range blocks {
		p.Put(b)
	}
	for i := 0; i < 4; i++ {
		p.Get()
	}
	if p.Recycled() != 4 {
		t.Fatalf("recycled=%d want 4", p.Recycled())
	}
	if p.Allocated() != 8 {
		t.Fatalf("allocated=%d want 8 (pool should have served from cache)", p.Allocated())
	}
}

func TestBlockPoolPutNil(t *testing.T) {
	p := NewBlockPool[rec](1)
	p.Put(nil) // must not panic
}

func TestBagReducesBlockAllocationsViaPool(t *testing.T) {
	// Repeatedly filling and draining a bag through a shared block pool must
	// allocate only a handful of blocks (the paper reports >99.9% reuse).
	pool := NewBlockPool[rec](16)
	b := New(pool)
	recs := mkRecs(4 * BlockSize)
	for round := 0; round < 50; round++ {
		for _, r := range recs {
			b.Add(r)
		}
		b.Drain(nil)
	}
	if pool.Allocated() > 16 {
		t.Fatalf("allocated %d blocks across 50 rounds; expected reuse to cap this at <=16", pool.Allocated())
	}
}

func TestAddBlockRejectsPartialBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for AddBlock of partial block")
		}
	}()
	b := New[rec](nil)
	blk := &Block[rec]{}
	blk.push(&rec{})
	b.AddBlock(blk)
}

func TestSharedStackPushPop(t *testing.T) {
	var s SharedStack[rec]
	if s.Pop() != nil {
		t.Fatal("pop on empty stack returned a block")
	}
	mk := func(base int) *Block[rec] {
		blk := &Block[rec]{}
		for i := 0; i < BlockSize; i++ {
			blk.push(&rec{id: base + i})
		}
		return blk
	}
	b1, b2, b3 := mk(0), mk(1000), mk(2000)
	s.Push(b1)
	s.Push(b2)
	s.Push(b3)
	if s.Blocks() != 3 {
		t.Fatalf("blocks=%d want 3", s.Blocks())
	}
	got := map[*Block[rec]]bool{}
	for i := 0; i < 3; i++ {
		blk := s.Pop()
		if blk == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		got[blk] = true
	}
	if !got[b1] || !got[b2] || !got[b3] {
		t.Fatal("pop did not return all pushed blocks")
	}
	if s.Blocks() != 0 {
		t.Fatalf("blocks=%d want 0", s.Blocks())
	}
}

func TestSharedStackPopAll(t *testing.T) {
	var s SharedStack[rec]
	if s.PopAll() != nil {
		t.Fatal("PopAll on empty stack returned a chain")
	}
	for i := 0; i < 5; i++ {
		blk := &Block[rec]{}
		for j := 0; j < BlockSize; j++ {
			blk.push(&rec{id: i*BlockSize + j})
		}
		s.Push(blk)
	}
	chain := s.PopAll()
	if n := ChainLen(chain); n != 5*BlockSize {
		t.Fatalf("chain holds %d records, want %d", n, 5*BlockSize)
	}
	if s.Blocks() != 0 {
		t.Fatalf("blocks=%d want 0 after PopAll", s.Blocks())
	}
	// Push the chain back and pop again.
	s.PushChain(chain)
	if s.Blocks() != 5 {
		t.Fatalf("blocks=%d want 5 after PushChain", s.Blocks())
	}
}

func TestSharedStackConcurrent(t *testing.T) {
	// Hammer the shared stack from many goroutines; every block pushed must
	// be popped exactly once across the whole run.
	const (
		workers   = 8
		perWorker = 200
	)
	var s SharedStack[rec]
	var mu sync.Mutex
	popped := map[*Block[rec]]int{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]*Block[rec], 0, perWorker)
			for i := 0; i < perWorker; i++ {
				blk := &Block[rec]{}
				for j := 0; j < BlockSize; j++ {
					blk.push(&rec{id: j})
				}
				s.Push(blk)
				if i%3 == 0 {
					if got := s.Pop(); got != nil {
						local = append(local, got)
					}
				}
			}
			mu.Lock()
			for _, blk := range local {
				popped[blk]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	// Drain the remainder.
	for {
		blk := s.Pop()
		if blk == nil {
			break
		}
		popped[blk]++
	}
	if len(popped) != workers*perWorker {
		t.Fatalf("popped %d distinct blocks, want %d", len(popped), workers*perWorker)
	}
	for blk, n := range popped {
		if n != 1 {
			t.Fatalf("block %p popped %d times", blk, n)
		}
	}
	if s.Blocks() != 0 {
		t.Fatalf("stack not empty at end: %d", s.Blocks())
	}
}
