package blockbag

import "sync/atomic"

// SharedStack is a lock-free stack of full blocks, shared by all threads.
// The paper's object pool keeps one such shared bag: when a thread's private
// pool bag grows too large it pushes full blocks here, and a thread whose
// private pool bag is empty pops full blocks from here. Only whole blocks are
// exchanged, which keeps synchronisation costs negligible.
//
// Pushes use the classic Treiber CAS loop, which is ABA-safe (the CAS only
// succeeds when the observed top is still the top, and the new block's next
// pointer was written before the CAS). Pops avoid the Treiber-pop ABA
// problem entirely by detaching the whole chain with an atomic swap
// (PopAll) and pushing back whatever the caller does not keep. Since blocks
// cross the shared stack only when a private pool bag over- or under-flows,
// the extra push-back traffic is negligible.
type SharedStack[T any] struct {
	top    atomic.Pointer[Block[T]]
	blocks atomic.Int64 // current number of blocks on the stack
	pushes atomic.Int64
	pops   atomic.Int64
}

// Push adds a detached full block to the shared stack.
func (s *SharedStack[T]) Push(blk *Block[T]) {
	if blk == nil {
		return
	}
	if blk.next != nil {
		panic("blockbag: Push of a chained block; use PushChain")
	}
	for {
		old := s.top.Load()
		blk.next = old
		if s.top.CompareAndSwap(old, blk) {
			s.blocks.Add(1)
			s.pushes.Add(1)
			return
		}
	}
}

// PushChain pushes every block of a detached chain.
func (s *SharedStack[T]) PushChain(chain *Block[T]) {
	for chain != nil {
		next := chain.next
		chain.next = nil
		s.Push(chain)
		chain = next
	}
}

// PopAll atomically detaches and returns the entire chain of blocks (which
// may be nil). The caller owns the returned chain and typically keeps a few
// blocks and pushes the remainder back with PushChain.
func (s *SharedStack[T]) PopAll() *Block[T] {
	chain := s.top.Swap(nil)
	if chain == nil {
		return nil
	}
	n := int64(0)
	for blk := chain; blk != nil; blk = blk.next {
		n++
	}
	s.blocks.Add(-n)
	s.pops.Add(n)
	return chain
}

// Pop removes and returns one block, or nil when the stack is empty. It is
// implemented as PopAll plus a push-back of the remainder, so it is ABA-safe
// without version counters; prefer PopAll when several blocks are wanted.
func (s *SharedStack[T]) Pop() *Block[T] {
	chain := s.PopAll()
	if chain == nil {
		return nil
	}
	rest := chain.next
	chain.next = nil
	s.PushChain(rest)
	return chain
}

// Blocks returns the current number of blocks on the stack.
func (s *SharedStack[T]) Blocks() int64 { return s.blocks.Load() }

// Pushes returns the total number of blocks ever pushed.
func (s *SharedStack[T]) Pushes() int64 { return s.pushes.Load() }

// Pops returns the total number of blocks ever popped.
func (s *SharedStack[T]) Pops() int64 { return s.pops.Load() }
