// Package blockbag implements the block bags used by DEBRA's limbo bags and
// object pools (Section 4 of the paper, "Block bags").
//
// A block bag is a singly-linked list of blocks, each holding up to B record
// pointers. The head block always contains fewer than B records and every
// subsequent block contains exactly B records. With this invariant, adding a
// record, removing a record, and moving all full blocks from one bag to
// another are all constant-time operations. Operating on whole blocks rather
// than individual records is what makes DEBRA's epoch rotation and pool
// transfers cheap.
//
// A bag is owned by a single thread and is NOT safe for concurrent use; the
// lock-free SharedStack type is provided for the one place the paper shares
// blocks between threads (the shared portion of the object pool).
package blockbag

import "fmt"

// BlockSize is the number of records stored per block (the paper uses
// B = 256 in its experiments).
const BlockSize = 256

// Block is a fixed-capacity container of record pointers, chained into bags
// and shared stacks. Blocks are recycled through per-thread block pools so
// that steady-state operation allocates no blocks at all.
type Block[T any] struct {
	next *Block[T]
	n    int
	recs [BlockSize]*T
}

// Len returns the number of records currently stored in the block.
func (b *Block[T]) Len() int { return b.n }

// Full reports whether the block holds exactly BlockSize records.
func (b *Block[T]) Full() bool { return b.n == BlockSize }

// Next returns the next block in the chain, or nil.
func (b *Block[T]) Next() *Block[T] { return b.next }

// Record returns the i'th record of the block.
func (b *Block[T]) Record(i int) *T { return b.recs[i] }

// push appends a record; the caller must ensure the block is not full.
func (b *Block[T]) push(rec *T) {
	b.recs[b.n] = rec
	b.n++
}

// pop removes and returns the last record; the caller must ensure the block
// is not empty.
func (b *Block[T]) pop() *T {
	b.n--
	rec := b.recs[b.n]
	b.recs[b.n] = nil
	return rec
}

// reset empties the block without clearing the backing array beyond what is
// needed for garbage-collector hygiene.
func (b *Block[T]) reset() {
	for i := 0; i < b.n; i++ {
		b.recs[i] = nil
	}
	b.n = 0
	b.next = nil
}

// BlockPool is a bounded per-thread cache of empty blocks. Instead of
// deallocating a block, a thread returns it to its block pool; if the pool is
// full the block is dropped (left for the garbage collector, the moral
// equivalent of free()). The paper reports that a pool of 16 blocks per
// thread eliminates more than 99.9% of block allocations.
type BlockPool[T any] struct {
	blocks []*Block[T]
	cap    int

	allocated int64 // total blocks ever allocated by this pool
	recycled  int64 // blocks served from the pool instead of allocating
}

// DefaultBlockPoolCap is the default bound on cached empty blocks per thread.
const DefaultBlockPoolCap = 16

// NewBlockPool creates a block pool bounded at capacity blocks. A capacity of
// zero or less selects DefaultBlockPoolCap.
func NewBlockPool[T any](capacity int) *BlockPool[T] {
	if capacity <= 0 {
		capacity = DefaultBlockPoolCap
	}
	return &BlockPool[T]{blocks: make([]*Block[T], 0, capacity), cap: capacity}
}

// Get returns an empty block, reusing a cached one when possible.
func (p *BlockPool[T]) Get() *Block[T] {
	if b := p.TryGet(); b != nil {
		return b
	}
	p.allocated++
	return &Block[T]{}
}

// TryGet returns a cached empty block or nil, never allocating. It lets a
// block consumer hand a spare back to its producer (the Record Manager's
// batched-retire exchange) without forcing an allocation when the cache is
// empty.
func (p *BlockPool[T]) TryGet() *Block[T] {
	if n := len(p.blocks); n > 0 {
		b := p.blocks[n-1]
		p.blocks[n-1] = nil
		p.blocks = p.blocks[:n-1]
		p.recycled++
		return b
	}
	return nil
}

// Put returns an empty (or emptied) block to the pool; blocks beyond the
// pool's capacity are dropped.
func (p *BlockPool[T]) Put(b *Block[T]) {
	if b == nil {
		return
	}
	b.reset()
	if len(p.blocks) < p.cap {
		p.blocks = append(p.blocks, b)
	}
}

// Allocated returns the number of blocks this pool ever allocated.
func (p *BlockPool[T]) Allocated() int64 { return p.allocated }

// Recycled returns the number of Get calls served from cached blocks.
func (p *BlockPool[T]) Recycled() int64 { return p.recycled }

// Bag is a single-owner bag of record pointers organised as a chain of
// blocks. The zero value is not usable; construct bags with New.
type Bag[T any] struct {
	head *Block[T] // head block: 0 <= head.n < BlockSize; all others full
	size int       // total records
	pool *BlockPool[T]
}

// New creates an empty bag whose blocks are allocated from (and returned to)
// pool. Several bags owned by the same thread may share one pool.
func New[T any](pool *BlockPool[T]) *Bag[T] {
	if pool == nil {
		pool = NewBlockPool[T](0)
	}
	return &Bag[T]{head: pool.Get(), pool: pool}
}

// Len returns the number of records in the bag.
func (b *Bag[T]) Len() int { return b.size }

// Empty reports whether the bag holds no records.
func (b *Bag[T]) Empty() bool { return b.size == 0 }

// LenBlocks returns the number of blocks in the bag, counting the
// (possibly empty) head block.
func (b *Bag[T]) LenBlocks() int {
	n := 0
	for blk := b.head; blk != nil; blk = blk.next {
		n++
	}
	return n
}

// FullBlocks returns the number of completely full blocks in the bag.
func (b *Bag[T]) FullBlocks() int {
	n := 0
	for blk := b.head.next; blk != nil; blk = blk.next {
		n++
	}
	return n
}

// Add appends a record to the bag in O(1).
func (b *Bag[T]) Add(rec *T) {
	if rec == nil {
		panic("blockbag: Add(nil)")
	}
	b.head.push(rec)
	b.size++
	if b.head.Full() {
		nb := b.pool.Get()
		nb.next = b.head
		b.head = nb
	}
}

// Remove removes and returns an arbitrary record from the bag, or
// (nil, false) when the bag is empty. O(1).
func (b *Bag[T]) Remove() (*T, bool) {
	if b.size == 0 {
		return nil, false
	}
	if b.head.n == 0 {
		// Head is empty but the bag is not: recycle the empty head and pop
		// from the (full) next block.
		old := b.head
		b.head = old.next
		b.pool.Put(old)
	}
	rec := b.head.pop()
	b.size--
	return rec, true
}

// AddBlock splices a detached full block into the bag in O(1). The block must
// be full; the head block keeps its "partial" role.
func (b *Bag[T]) AddBlock(blk *Block[T]) {
	if blk == nil {
		return
	}
	if !blk.Full() {
		panic(fmt.Sprintf("blockbag: AddBlock of non-full block (%d records)", blk.n))
	}
	blk.next = b.head.next
	b.head.next = blk
	b.size += blk.n
}

// DetachAllFullBlocks detaches and returns the chain of every full block in
// the bag (or nil when there are none), leaving only the partial head block
// behind. O(1).
func (b *Bag[T]) DetachAllFullBlocks() *Block[T] {
	chain := b.head.next
	b.head.next = nil
	for blk := chain; blk != nil; blk = blk.next {
		b.size -= blk.n
	}
	return chain
}

// DetachAll detaches and returns every block of the bag — the full blocks
// AND the partial head — as one chain (partial block first when non-empty),
// leaving the bag empty with a fresh head block from the pool. O(1). Unlike
// DetachAllFullBlocks the returned chain may start with a non-full block, so
// consumers must route it through interfaces that accept partial blocks
// (core.RetireChain, SharedStack). Returns nil when the bag is empty.
func (b *Bag[T]) DetachAll() *Block[T] {
	if b.size == 0 {
		return nil
	}
	chain := b.head
	if chain.n == 0 {
		// Empty partial head: reuse it as the new head and hand off only the
		// full blocks behind it.
		next := chain.next
		chain.next = nil
		b.head = chain
		chain = next
	} else {
		b.head = b.pool.Get()
	}
	b.size = 0
	return chain
}

// TakeFullBlock detaches and returns one full block from the bag, or nil when
// the bag has no full blocks. O(1).
func (b *Bag[T]) TakeFullBlock() *Block[T] {
	blk := b.head.next
	if blk == nil {
		return nil
	}
	b.head.next = blk.next
	blk.next = nil
	b.size -= blk.n
	return blk
}

// MoveAllTo moves every record (including the partial head block's records)
// from b into dst, leaving b empty. Full blocks are moved wholesale; the
// records of the partial head block are re-added individually. Returns the
// number of records moved.
func (b *Bag[T]) MoveAllTo(dst *Bag[T]) int {
	moved := b.MoveFullBlocksTo(dst)
	for {
		rec, ok := b.Remove()
		if !ok {
			break
		}
		dst.Add(rec)
		moved++
	}
	return moved
}

// MoveFullBlocksTo moves every full block from b into dst in O(#blocks)
// pointer operations (no per-record work). Records in the partial head block
// stay behind, exactly as in the paper: they are at most BlockSize-1 records
// that will be moved once their block fills. Returns the number of records
// moved.
func (b *Bag[T]) MoveFullBlocksTo(dst *Bag[T]) int {
	moved := 0
	for {
		blk := b.TakeFullBlock()
		if blk == nil {
			return moved
		}
		moved += blk.n
		dst.AddBlock(blk)
	}
}

// Drain removes every record from the bag, invoking fn on each. Blocks are
// returned to the block pool.
func (b *Bag[T]) Drain(fn func(*T)) int {
	n := 0
	for {
		rec, ok := b.Remove()
		if !ok {
			return n
		}
		n++
		if fn != nil {
			fn(rec)
		}
	}
}

// Contains reports whether rec is present in the bag. O(n); intended for
// tests and assertions only.
func (b *Bag[T]) Contains(rec *T) bool {
	for blk := b.head; blk != nil; blk = blk.next {
		for i := 0; i < blk.n; i++ {
			if blk.recs[i] == rec {
				return true
			}
		}
	}
	return false
}

// Iterator walks the records of a bag and permits in-place swaps, which is
// how DEBRA+ partitions a limbo bag into RProtected records (moved to the
// front) and records that are safe to free (full blocks after the partition
// point are detached wholesale).
type Iterator[T any] struct {
	bag *Bag[T]
	blk *Block[T]
	idx int
}

// Begin returns an iterator positioned at the first record of the bag
// (iteration order is head block first, then each full block).
func (b *Bag[T]) Begin() Iterator[T] {
	it := Iterator[T]{bag: b, blk: b.head, idx: 0}
	it.skipEmpty()
	return it
}

// skipEmpty advances past exhausted blocks.
func (it *Iterator[T]) skipEmpty() {
	for it.blk != nil && it.idx >= it.blk.n {
		it.blk = it.blk.next
		it.idx = 0
	}
}

// Done reports whether the iterator has passed the last record.
func (it *Iterator[T]) Done() bool { return it.blk == nil }

// Get returns the record at the iterator's position.
func (it *Iterator[T]) Get() *T { return it.blk.recs[it.idx] }

// Set replaces the record at the iterator's position.
func (it *Iterator[T]) Set(rec *T) { it.blk.recs[it.idx] = rec }

// Next advances the iterator by one record.
func (it *Iterator[T]) Next() {
	it.idx++
	it.skipEmpty()
}

// Swap exchanges the records at positions it and other. Both iterators must
// belong to the same bag and must not be Done.
func (it *Iterator[T]) Swap(other *Iterator[T]) {
	a, b := it.Get(), other.Get()
	it.Set(b)
	other.Set(a)
}

// DetachFullBlocksAfter removes from the bag every full block that comes
// strictly after the block the iterator is positioned in, returning the
// detached chain (or nil). The partial head block and the iterator's own
// block always stay in the bag, so records at or before the iterator are
// preserved. If the iterator is Done (it walked past every record), nothing
// is detached. O(1).
func (b *Bag[T]) DetachFullBlocksAfter(it Iterator[T]) *Block[T] {
	if it.Done() {
		return nil
	}
	boundary := it.blk
	chain := boundary.next
	boundary.next = nil
	for blk := chain; blk != nil; blk = blk.next {
		b.size -= blk.n
	}
	return chain
}

// ChainLen returns the number of records stored in a detached block chain.
func ChainLen[T any](chain *Block[T]) int {
	n := 0
	for blk := chain; blk != nil; blk = blk.next {
		n += blk.n
	}
	return n
}
