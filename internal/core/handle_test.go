package core_test

// Tests for the per-thread handle layer: RecordManager.Handle and the
// scheme/pool fast paths it caches.

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/hp"
)

func TestThreadHandleBasics(t *testing.T) {
	const n = 3
	alloc := arena.NewBump[node](n, 64)
	pl := pool.New[node](n, alloc)
	rec := debra.New[node](n, pl, debra.WithIncrThresh(1))
	m := core.NewRecordManager[node](alloc, pl, rec)

	h := m.Handle(1)
	if h.Tid() != 1 || h.Manager() != m {
		t.Fatalf("handle identity wrong: tid=%d", h.Tid())
	}
	if h != m.Handle(1) {
		t.Fatal("Handle(tid) must return a stable pointer for dense tids")
	}
	if h.NeedsPerRecordProtection() || h.SupportsCrashRecovery() {
		t.Fatal("handle capability caching disagrees with DEBRA")
	}

	// A full operation through the handle: pin, allocate, retire, unpin.
	h.LeaveQstate()
	r := h.Allocate()
	if r == nil {
		t.Fatal("handle Allocate returned nil")
	}
	h.Retire(r)
	h.EnterQstate()
	if got := m.Stats().Reclaimer.Retired; got != 1 {
		t.Fatalf("retired = %d after handle Retire", got)
	}

	// Deallocate through the handle recycles via the pool.
	r2 := h.Allocate()
	h.Deallocate(r2)
	if got := m.Stats().Pool.Freed; got == 0 {
		t.Fatal("handle Deallocate did not reach the pool")
	}
}

// TestThreadHandleQuiescentRetirePins: like RecordManager.Retire, a handle
// Retire from a quiescent context must auto-pin on the epoch schemes rather
// than panic or corrupt the scheme's bag rotation argument.
func TestThreadHandleQuiescentRetire(t *testing.T) {
	const n = 2
	alloc := arena.NewBump[node](n, 64)
	pl := pool.New[node](n, alloc)
	rec := debra.New[node](n, pl)
	m := core.NewRecordManager[node](alloc, pl, rec)
	h := m.Handle(0)
	// Quiescent: no LeaveQstate. The handle must pin around the hand-off.
	h.Retire(h.Allocate())
	if got := m.Stats().Reclaimer.Retired; got != 1 {
		t.Fatalf("retired = %d after quiescent handle Retire", got)
	}
	if !m.IsQuiescent(0) {
		t.Fatal("thread left non-quiescent by the auto-pinned Retire")
	}
}

// TestThreadHandleBatchedRetire: with batching, handle Retires park in the
// thread's buffer and flush at the batch boundary through the same block
// machinery the tid-based path uses.
func TestThreadHandleBatchedRetire(t *testing.T) {
	const n, batch = 2, 8
	alloc := arena.NewBump[node](n, 64)
	pl := pool.New[node](n, alloc)
	rec := debra.New[node](n, pl, debra.WithIncrThresh(1))
	m := core.NewRecordManager[node](alloc, pl, rec, core.WithRetireBatching(n, batch))
	h := m.Handle(0)
	h.LeaveQstate()
	for i := 0; i < batch-1; i++ {
		h.Retire(h.Allocate())
	}
	if got := m.Stats().RetirePending; got != batch-1 {
		t.Fatalf("RetirePending = %d want %d (nothing must reach the scheme yet)", got, batch-1)
	}
	if got := m.Stats().Reclaimer.Retired; got != 0 {
		t.Fatalf("scheme saw %d retires before the batch filled", got)
	}
	h.Retire(h.Allocate()) // batch boundary: flush
	if got := m.Stats().RetirePending; got != 0 {
		t.Fatalf("RetirePending = %d after the flush", got)
	}
	if got := m.Stats().Reclaimer.Retired; got != batch {
		t.Fatalf("scheme saw %d retires want %d", got, batch)
	}
	h.EnterQstate()

	// FlushRetired through the handle from a quiescent context (the
	// shutdown path) must also work.
	h.Retire(h.Allocate())
	h.FlushRetired()
	if got := m.Stats().RetirePending; got != 0 {
		t.Fatalf("RetirePending = %d after handle FlushRetired", got)
	}
}

// TestThreadHandleHPProtect: the hazard-pointer fast path goes through the
// cached slot array and agrees with the tid-based interface.
func TestThreadHandleHPProtect(t *testing.T) {
	const n = 2
	alloc := arena.NewBump[node](n, 64)
	pl := pool.New[node](n, alloc)
	rec := hp.New[node](n, pl, hp.WithSlots(4))
	m := core.NewRecordManager[node](alloc, pl, rec)
	h := m.Handle(0)
	r := h.Allocate()
	if !h.Protect(r) {
		t.Fatal("handle Protect failed")
	}
	if !m.IsProtected(0, r) {
		t.Fatal("tid-based IsProtected does not see the handle's announcement")
	}
	h.Unprotect(r)
	if m.IsProtected(0, r) {
		t.Fatal("handle Unprotect did not release the slot")
	}
}
