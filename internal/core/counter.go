package core

import "sync/atomic"

// Counter is a single-writer statistics counter: the cheapest cell that lets
// exactly one owner thread count events on a hot path while concurrent
// Stats() readers take racy-but-coherent snapshots.
//
// The Record Manager stack's per-thread stats counters (records retired,
// freed, scans, pool reuse, ...) used to be atomic.Int64 values bumped with
// Add — a LOCK-prefixed read-modify-write per event, several times per data
// structure operation, even though every one of those counters has a single
// writer by construction (its owning dense tid). Counter replaces the RMW
// with the single-writer idiom: the owner reads its own last value with a
// plain load (no other thread ever writes it, so the read needs no
// synchronisation) and publishes the sum with an atomic store. Readers use an
// atomic load and may observe a slightly stale value, never a torn one —
// exactly the contract Stats() snapshots always had ("exact only when the
// workers are quiescent").
//
// Ownership may migrate between threads across a happens-before edge (for
// example DrainLimbo charging frees after the worker goroutines are joined);
// what is forbidden is two goroutines Adding concurrently.
//
// Padding note: a Counter is a bare 8-byte cell so that the several counters
// of one thread can share the cache lines that thread already owns. The
// per-thread aggregates that embed Counters (scheme thread state, pool
// thread state, retire buffers, ...) carry the [PadBytes] tail that keeps
// NEIGHBOURING threads' counters off each other's cache lines; a standalone
// per-thread counter array should do the same.
type Counter struct {
	v int64
}

// Add increments the counter by n. Only the owner may call Add (or Store);
// the plain read of the previous value is what makes this cheaper than an
// atomic read-modify-write, and it is only sound with a single writer.
func (c *Counter) Add(n int64) { atomic.StoreInt64(&c.v, c.v+n) }

// Inc increments the counter by one (owner only).
func (c *Counter) Inc() { c.Add(1) }

// Store sets the counter to n (owner only).
func (c *Counter) Store(n int64) { atomic.StoreInt64(&c.v, n) }

// Load returns the most recently published value. Safe from any goroutine;
// concurrent with the owner it may lag by in-flight Adds but is never torn.
func (c *Counter) Load() int64 { return atomic.LoadInt64(&c.v) }
