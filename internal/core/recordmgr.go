package core

// RecordManager composes an Allocator, a Pool and a Reclaimer into the
// single object a data structure programs against (the paper's Record
// Manager, Figure 7). It exposes the union of their operations; the
// data structure never needs to know which concrete scheme is behind it,
// so interchanging reclamation, pooling and allocation strategies is a
// one-line change at construction time.
//
// The type parameter T is the record type managed (for example a tree node).
// Data structures that use several record types create one RecordManager per
// type, or fold the types into a single record with a kind discriminator;
// the reclaimers in this module are cheap enough that either choice works.
type RecordManager[T any] struct {
	alloc     Allocator[T]
	pool      Pool[T]
	reclaimer Reclaimer[T]

	// perRecord caches Props().PerRecordProtection so hot paths can branch
	// on a plain bool field.
	perRecord bool
	// crashRecovery caches SupportsCrashRecovery().
	crashRecovery bool
}

// NewRecordManager assembles a Record Manager from its three components.
// pool may be nil, in which case Allocate goes straight to the allocator and
// freed records are discarded (the configuration of the paper's Experiment 1,
// where reclamation work is performed but records are not reused).
func NewRecordManager[T any](alloc Allocator[T], pool Pool[T], rec Reclaimer[T]) *RecordManager[T] {
	if alloc == nil {
		panic("core: NewRecordManager requires an Allocator")
	}
	if rec == nil {
		panic("core: NewRecordManager requires a Reclaimer")
	}
	return &RecordManager[T]{
		alloc:         alloc,
		pool:          pool,
		reclaimer:     rec,
		perRecord:     rec.Props().PerRecordProtection,
		crashRecovery: rec.SupportsCrashRecovery(),
	}
}

// Allocator returns the underlying allocator.
func (m *RecordManager[T]) Allocator() Allocator[T] { return m.alloc }

// Pool returns the underlying pool (nil when records are not reused).
func (m *RecordManager[T]) Pool() Pool[T] { return m.pool }

// Reclaimer returns the underlying reclaimer.
func (m *RecordManager[T]) Reclaimer() Reclaimer[T] { return m.reclaimer }

// Allocate returns a record for thread tid, preferring the pool.
func (m *RecordManager[T]) Allocate(tid int) *T {
	if m.pool != nil {
		return m.pool.Allocate(tid)
	}
	return m.alloc.Allocate(tid)
}

// Deallocate returns an unused (never inserted or already reclaimed) record
// directly to the pool or allocator. Records that were inserted into the
// data structure must be Retired instead.
func (m *RecordManager[T]) Deallocate(tid int, rec *T) {
	if m.pool != nil {
		m.pool.Free(tid, rec)
		return
	}
	m.alloc.Deallocate(tid, rec)
}

// Retire hands a removed record to the reclaimer.
func (m *RecordManager[T]) Retire(tid int, rec *T) { m.reclaimer.Retire(tid, rec) }

// LeaveQstate marks the start of an operation by thread tid.
func (m *RecordManager[T]) LeaveQstate(tid int) bool { return m.reclaimer.LeaveQstate(tid) }

// EnterQstate marks the end of an operation by thread tid.
func (m *RecordManager[T]) EnterQstate(tid int) { m.reclaimer.EnterQstate(tid) }

// IsQuiescent reports whether thread tid is quiescent.
func (m *RecordManager[T]) IsQuiescent(tid int) bool { return m.reclaimer.IsQuiescent(tid) }

// NeedsPerRecordProtection reports whether the reclaimer requires Protect to
// be called (and validated) for every record accessed. Data structures read
// this once and skip the protection path entirely for epoch-based schemes,
// mirroring the paper's compile-time elimination of no-op protect calls.
func (m *RecordManager[T]) NeedsPerRecordProtection() bool { return m.perRecord }

// SupportsCrashRecovery reports whether the reclaimer neutralizes stalled
// threads, in which case operations must be wrapped in recovery code.
func (m *RecordManager[T]) SupportsCrashRecovery() bool { return m.crashRecovery }

// Protect announces that thread tid may access rec (see Reclaimer.Protect).
func (m *RecordManager[T]) Protect(tid int, rec *T) bool { return m.reclaimer.Protect(tid, rec) }

// Unprotect revokes a Protect.
func (m *RecordManager[T]) Unprotect(tid int, rec *T) { m.reclaimer.Unprotect(tid, rec) }

// IsProtected reports whether rec is protected by thread tid.
func (m *RecordManager[T]) IsProtected(tid int, rec *T) bool {
	return m.reclaimer.IsProtected(tid, rec)
}

// RProtect announces a recovery protection (DEBRA+).
func (m *RecordManager[T]) RProtect(tid int, rec *T) { m.reclaimer.RProtect(tid, rec) }

// RUnprotectAll releases all recovery protections held by thread tid.
func (m *RecordManager[T]) RUnprotectAll(tid int) { m.reclaimer.RUnprotectAll(tid) }

// IsRProtected reports whether thread tid holds a recovery protection of rec.
func (m *RecordManager[T]) IsRProtected(tid int, rec *T) bool {
	return m.reclaimer.IsRProtected(tid, rec)
}

// Checkpoint delivers a pending neutralization signal, if any (DEBRA+).
func (m *RecordManager[T]) Checkpoint(tid int) { m.reclaimer.Checkpoint(tid) }

// Stats aggregates the statistics of all three components.
func (m *RecordManager[T]) Stats() ManagerStats {
	s := ManagerStats{
		Reclaimer: m.reclaimer.Stats(),
		Alloc:     m.alloc.Stats(),
	}
	if m.pool != nil {
		s.Pool = m.pool.Stats()
	}
	return s
}

// ManagerStats bundles the statistics of the three Record Manager
// components.
type ManagerStats struct {
	Reclaimer Stats
	Alloc     AllocStats
	Pool      PoolStats
}
