package core

import "repro/internal/blockbag"

// RecordManager composes an Allocator, a Pool and a Reclaimer into the
// single object a data structure programs against (the paper's Record
// Manager, Figure 7). It exposes the union of their operations; the
// data structure never needs to know which concrete scheme is behind it,
// so interchanging reclamation, pooling and allocation strategies is a
// one-line change at construction time.
//
// The type parameter T is the record type managed (for example a tree node).
// Data structures that use several record types create one RecordManager per
// type, or fold the types into a single record with a kind discriminator;
// the reclaimers in this module are cheap enough that either choice works.
type RecordManager[T any] struct {
	alloc     Allocator[T]
	pool      Pool[T]
	reclaimer Reclaimer[T]

	// perRecord caches Props().PerRecordProtection so hot paths can branch
	// on a plain bool field.
	perRecord bool
	// crashRecovery caches SupportsCrashRecovery().
	crashRecovery bool

	// batch is the deferred-retire batch size; 0 disables batching and
	// Retire goes straight to the reclaimer (the historical behaviour).
	batch int
	// bufs holds the per-thread deferred-retire buffers when batching is
	// enabled. A retired record parks in its thread's buffer until the
	// buffer reaches the batch size, then the whole batch is handed to the
	// reclaimer — as an O(1) block splice when the scheme implements
	// BlockReclaimer and the batch fills whole blocks.
	bufs []retireBuf[T]
}

// retireBuf is one thread's deferred-retire buffer, padded so neighbouring
// single-writer buffers do not share cache lines. The block pool is refilled
// with the spare blocks the scheme hands back from RetireBlock, so at steady
// state batches circulate existing blocks instead of allocating.
type retireBuf[T any] struct {
	bag     *blockbag.Bag[T]
	pool    *blockbag.BlockPool[T]
	pending int64
	_       [PadBytes]byte
}

// ManagerOption configures a RecordManager at construction time.
type ManagerOption func(*managerConfig)

type managerConfig struct {
	threads int
	batch   int
}

// WithRetireBatching enables per-thread deferred retirement for the given
// number of worker threads: Retire parks records in a thread-local buffer
// and hands them to the reclaimer batch-at-a-time once the buffer holds
// batch records. Batches of blockbag.BlockSize (or multiples) transfer as
// whole detached blocks — O(1) per batch for schemes implementing
// BlockReclaimer; other sizes fall back to one Retire call per record,
// still amortising the per-call overhead over the batch.
//
// Deferring retirement is always safe (a retired record is already
// unreachable; delaying the hand-off only delays its reuse) but parks up to
// batch records per thread indefinitely if the thread stops operating; call
// FlushRetired to force the hand-off (quiescent shutdown paths, tests).
func WithRetireBatching(threads, batch int) ManagerOption {
	return func(c *managerConfig) {
		c.threads = threads
		c.batch = batch
	}
}

// NewRecordManager assembles a Record Manager from its three components.
// pool may be nil, in which case Allocate goes straight to the allocator and
// freed records are discarded (the configuration of the paper's Experiment 1,
// where reclamation work is performed but records are not reused).
func NewRecordManager[T any](alloc Allocator[T], pool Pool[T], rec Reclaimer[T], opts ...ManagerOption) *RecordManager[T] {
	if alloc == nil {
		panic("core: NewRecordManager requires an Allocator")
	}
	if rec == nil {
		panic("core: NewRecordManager requires a Reclaimer")
	}
	var cfg managerConfig
	for _, o := range opts {
		o(&cfg)
	}
	m := &RecordManager[T]{
		alloc:         alloc,
		pool:          pool,
		reclaimer:     rec,
		perRecord:     rec.Props().PerRecordProtection,
		crashRecovery: rec.SupportsCrashRecovery(),
	}
	if cfg.batch > 0 {
		if cfg.threads <= 0 {
			panic("core: WithRetireBatching requires threads >= 1")
		}
		m.batch = cfg.batch
		m.bufs = make([]retireBuf[T], cfg.threads)
		for i := range m.bufs {
			m.bufs[i].pool = blockbag.NewBlockPool[T](0)
			m.bufs[i].bag = blockbag.New[T](m.bufs[i].pool)
		}
	}
	return m
}

// Allocator returns the underlying allocator.
func (m *RecordManager[T]) Allocator() Allocator[T] { return m.alloc }

// Pool returns the underlying pool (nil when records are not reused).
func (m *RecordManager[T]) Pool() Pool[T] { return m.pool }

// Reclaimer returns the underlying reclaimer.
func (m *RecordManager[T]) Reclaimer() Reclaimer[T] { return m.reclaimer }

// Allocate returns a record for thread tid, preferring the pool.
func (m *RecordManager[T]) Allocate(tid int) *T {
	if m.pool != nil {
		return m.pool.Allocate(tid)
	}
	return m.alloc.Allocate(tid)
}

// Deallocate returns an unused (never inserted or already reclaimed) record
// directly to the pool or allocator. Records that were inserted into the
// data structure must be Retired instead.
func (m *RecordManager[T]) Deallocate(tid int, rec *T) {
	if m.pool != nil {
		m.pool.Free(tid, rec)
		return
	}
	m.alloc.Deallocate(tid, rec)
}

// Retire hands a removed record to the reclaimer — directly, or through the
// thread's deferred-retire buffer when batching is enabled.
func (m *RecordManager[T]) Retire(tid int, rec *T) {
	if m.batch == 0 {
		m.reclaimer.Retire(tid, rec)
		return
	}
	b := &m.bufs[tid]
	b.bag.Add(rec)
	b.pending++
	if int(b.pending) >= m.batch {
		m.FlushRetired(tid)
	}
}

// FlushRetired hands every record parked in thread tid's deferred-retire
// buffer to the reclaimer. Full blocks transfer as O(1) splices for schemes
// implementing BlockReclaimer; the partial tail (always fewer than
// blockbag.BlockSize records) is retired record-at-a-time. A no-op when
// batching is disabled.
func (m *RecordManager[T]) FlushRetired(tid int) {
	if m.batch == 0 {
		return
	}
	b := &m.bufs[tid]
	if b.pending == 0 {
		return
	}
	if chain := b.bag.DetachAllFullBlocks(); chain != nil {
		RetireChain(m.reclaimer, tid, chain, b.pool)
	}
	b.bag.Drain(func(rec *T) { m.reclaimer.Retire(tid, rec) })
	b.pending = 0
}

// RetireBatchSize returns the configured deferred-retire batch size (0 when
// batching is disabled).
func (m *RecordManager[T]) RetireBatchSize() int { return m.batch }

// LeaveQstate marks the start of an operation by thread tid.
func (m *RecordManager[T]) LeaveQstate(tid int) bool { return m.reclaimer.LeaveQstate(tid) }

// EnterQstate marks the end of an operation by thread tid.
func (m *RecordManager[T]) EnterQstate(tid int) { m.reclaimer.EnterQstate(tid) }

// IsQuiescent reports whether thread tid is quiescent.
func (m *RecordManager[T]) IsQuiescent(tid int) bool { return m.reclaimer.IsQuiescent(tid) }

// NeedsPerRecordProtection reports whether the reclaimer requires Protect to
// be called (and validated) for every record accessed. Data structures read
// this once and skip the protection path entirely for epoch-based schemes,
// mirroring the paper's compile-time elimination of no-op protect calls.
func (m *RecordManager[T]) NeedsPerRecordProtection() bool { return m.perRecord }

// SupportsCrashRecovery reports whether the reclaimer neutralizes stalled
// threads, in which case operations must be wrapped in recovery code.
func (m *RecordManager[T]) SupportsCrashRecovery() bool { return m.crashRecovery }

// Protect announces that thread tid may access rec (see Reclaimer.Protect).
func (m *RecordManager[T]) Protect(tid int, rec *T) bool { return m.reclaimer.Protect(tid, rec) }

// Unprotect revokes a Protect.
func (m *RecordManager[T]) Unprotect(tid int, rec *T) { m.reclaimer.Unprotect(tid, rec) }

// IsProtected reports whether rec is protected by thread tid.
func (m *RecordManager[T]) IsProtected(tid int, rec *T) bool {
	return m.reclaimer.IsProtected(tid, rec)
}

// RProtect announces a recovery protection (DEBRA+).
func (m *RecordManager[T]) RProtect(tid int, rec *T) { m.reclaimer.RProtect(tid, rec) }

// RUnprotectAll releases all recovery protections held by thread tid.
func (m *RecordManager[T]) RUnprotectAll(tid int) { m.reclaimer.RUnprotectAll(tid) }

// IsRProtected reports whether thread tid holds a recovery protection of rec.
func (m *RecordManager[T]) IsRProtected(tid int, rec *T) bool {
	return m.reclaimer.IsRProtected(tid, rec)
}

// Checkpoint delivers a pending neutralization signal, if any (DEBRA+).
func (m *RecordManager[T]) Checkpoint(tid int) { m.reclaimer.Checkpoint(tid) }

// Stats aggregates the statistics of all three components. RetirePending is
// read from the single-writer deferred-retire buffers and is exact only when
// the worker threads are quiescent (which is when the harnesses snapshot).
func (m *RecordManager[T]) Stats() ManagerStats {
	s := ManagerStats{
		Reclaimer: m.reclaimer.Stats(),
		Alloc:     m.alloc.Stats(),
	}
	if m.pool != nil {
		s.Pool = m.pool.Stats()
	}
	for i := range m.bufs {
		s.RetirePending += m.bufs[i].pending
	}
	return s
}

// ManagerStats bundles the statistics of the three Record Manager
// components.
type ManagerStats struct {
	Reclaimer Stats
	Alloc     AllocStats
	Pool      PoolStats
	// RetirePending is the number of records parked in deferred-retire
	// buffers (0 unless retire batching is enabled).
	RetirePending int64
}
