package core

import "repro/internal/blockbag"

// RecordManager composes an Allocator, a Pool and a Reclaimer into the
// single object a data structure programs against (the paper's Record
// Manager, Figure 7). It exposes the union of their operations; the
// data structure never needs to know which concrete scheme is behind it,
// so interchanging reclamation, pooling and allocation strategies is a
// one-line change at construction time.
//
// The type parameter T is the record type managed (for example a tree node).
// Data structures that use several record types create one RecordManager per
// type, or fold the types into a single record with a kind discriminator;
// the reclaimers in this module are cheap enough that either choice works.
type RecordManager[T any] struct {
	alloc     Allocator[T]
	pool      Pool[T]
	reclaimer Reclaimer[T]

	// perRecord caches Props().PerRecordProtection so hot paths can branch
	// on a plain bool field.
	perRecord bool
	// crashRecovery caches SupportsCrashRecovery().
	crashRecovery bool

	// batch is the deferred-retire batch size; 0 disables batching and
	// Retire goes straight to the reclaimer (the historical behaviour).
	batch int
	// bufs holds the per-thread deferred-retire buffers when batching is
	// enabled. A retired record parks in its thread's buffer until the
	// buffer reaches the batch size, then the whole batch is handed to the
	// reclaimer — as an O(1) block splice when the scheme implements
	// BlockReclaimer and the batch fills whole blocks.
	bufs []retireBuf[T]
	// pinner is the reclaimer's pin-while-retiring entry point (nil when the
	// scheme does not provide one); FlushRetired uses it to make the
	// hand-off from a quiescent caller safe.
	pinner RetirePinner
	// async is the asynchronous reclamation pipeline (nil when reclamation
	// is synchronous). With async set, batch hand-offs become lock-free
	// queue pushes instead of scheme retires.
	async *AsyncReclaimer[T]
	// handles is the prebuilt per-thread handle table (see Handle); sized to
	// the scheme's participant count when that is discoverable. Worker slots
	// are re-initialised in place when the slot registry reuses a tid.
	handles []ThreadHandle[T]
	// reg is the dynamic thread-slot registry over the manager's worker
	// slots: AcquireHandle/ReleaseHandle bind goroutines to dense tids at
	// runtime, Handle(tid) claims slots permanently for static wiring.
	reg *SlotRegistry
	// ctrl is the adaptive controller (nil unless WithController): the
	// self-tuning loop over effective shards, retire batches and active
	// reclaimers. Close stops it before anything else so no lever moves
	// mid-shutdown.
	ctrl *Controller
	// sparesRecovered counts the spare exchange blocks Close returned to the
	// workers' retire-buffer pools (instrumentation for the leak tests).
	sparesRecovered int
}

// retireBuf is one thread's deferred-retire buffer, padded so neighbouring
// single-writer buffers do not share cache lines. The block pool is refilled
// with the spare blocks the scheme hands back from RetireBlock, so at steady
// state batches circulate existing blocks instead of allocating.
type retireBuf[T any] struct {
	bag  *blockbag.Bag[T]
	pool *blockbag.BlockPool[T]
	// pending counts the parked records: single-writer (the owning tid, or
	// the closer after the workers are joined), racy-safe for Stats readers.
	pending Counter
	// limit is the thread's current flush threshold. Statically it simply
	// holds the configured batch size; under an adaptive controller the
	// controller is the cell's single writer (ownership transfers from the
	// constructor across the controller goroutine's start) and the owning
	// thread only ever Loads it — so the adaptive batch lever adds no
	// read-modify-write, and no new atomic, to the retire hot path.
	limit Counter
	_     [PadBytes]byte
}

// ManagerOption configures a RecordManager at construction time.
type ManagerOption func(*managerConfig)

type managerConfig struct {
	threads    int
	batch      int
	reclaimers int
	ctrl       *ControllerConfig
}

// WithRetireBatching enables per-thread deferred retirement for the given
// number of worker threads: Retire parks records in a thread-local buffer
// and hands them to the reclaimer batch-at-a-time once the buffer holds
// batch records. Batches of blockbag.BlockSize (or multiples) transfer as
// whole detached blocks — O(1) per batch for schemes implementing
// BlockReclaimer; other sizes fall back to one Retire call per record,
// still amortising the per-call overhead over the batch.
//
// Deferring retirement is always safe (a retired record is already
// unreachable; delaying the hand-off only delays its reuse) but parks up to
// batch records per thread indefinitely if the thread stops operating; call
// FlushRetired to force the hand-off (quiescent shutdown paths, tests).
// FlushRetired pins the thread around the hand-off when it is quiescent, so
// it is safe from any same-thread context; the epoch schemes reject a raw
// unpinned Retire (see RetirePinner for the contract and the hazard).
func WithRetireBatching(threads, batch int) ManagerOption {
	return func(c *managerConfig) {
		c.threads = threads
		c.batch = batch
	}
}

// WithAsyncReclaim moves reclamation off the workers' critical path:
// reclaimers dedicated goroutines register as extra epoch participants (tids
// threads..threads+reclaimers-1) and drain hand-off queues of retired blocks
// behind the workers, performing the grace-period wait and the free there. A
// worker's Retire becomes an O(1) buffer append plus, once per batch, an O(1)
// lock-free push of the detached blocks — the worker never touches the
// scheme's retire path at all.
//
// Requires WithRetireBatching (the hand-off granularity is the batch), and a
// reclaimer — with its allocator, pool and free sink — constructed for
// threads+reclaimers dense thread ids. The recordmgr package's Build does
// this plumbing from Config.Reclaimers. Callers must Close the manager when
// done: the shutdown ordering is workers quiesce → buffers flush →
// reclaimers drain → limbo is force-freed.
func WithAsyncReclaim(reclaimers int) ManagerOption {
	return func(c *managerConfig) {
		c.reclaimers = reclaimers
	}
}

// WithController attaches and starts an adaptive Controller: a feedback loop
// that retunes the effective shard count from live slot occupancy, the
// per-thread retire-batch threshold from the retire rate and Unreclaimed
// backlog (AIMD between cfg's floor and ceiling), and the active async
// reclaimer count from the hand-off backlog — each lever degrading to the
// static configuration when its subsystem is absent (no batching → no batch
// lever, no async pipeline → no reclaimer lever, one shard → no shard
// lever). The controller runs on its own goroutine at cfg.Interval;
// RecordManager.Close stops it before flushing, so the shutdown ordering —
// and the Retired == Freed post-Close invariant — are untouched. See
// recordmgr.Config.Adaptive for the configuration-layer entry point.
func WithController(cfg ControllerConfig) ManagerOption {
	return func(c *managerConfig) {
		c.ctrl = &cfg
	}
}

// NewRecordManager assembles a Record Manager from its three components.
// pool may be nil, in which case Allocate goes straight to the allocator and
// freed records are discarded (the configuration of the paper's Experiment 1,
// where reclamation work is performed but records are not reused).
func NewRecordManager[T any](alloc Allocator[T], pool Pool[T], rec Reclaimer[T], opts ...ManagerOption) *RecordManager[T] {
	if alloc == nil {
		panic("core: NewRecordManager requires an Allocator")
	}
	if rec == nil {
		panic("core: NewRecordManager requires a Reclaimer")
	}
	var cfg managerConfig
	for _, o := range opts {
		o(&cfg)
	}
	m := &RecordManager[T]{
		alloc:         alloc,
		pool:          pool,
		reclaimer:     rec,
		perRecord:     rec.Props().PerRecordProtection,
		crashRecovery: rec.SupportsCrashRecovery(),
	}
	if p, ok := rec.(RetirePinner); ok && rec.Props().ModPerOperation {
		// Only the per-operation (epoch) schemes need the quiescent-retire
		// pin; for HP and the leaking baseline a pin would be a per-retire
		// tax with nothing to protect (and HP's IsQuiescent is O(slots)).
		m.pinner = p
	}
	if cfg.batch > 0 {
		if cfg.threads <= 0 {
			panic("core: WithRetireBatching requires threads >= 1")
		}
		m.batch = cfg.batch
		m.bufs = make([]retireBuf[T], cfg.threads)
		for i := range m.bufs {
			m.bufs[i].pool = blockbag.NewBlockPool[T](0)
			m.bufs[i].bag = blockbag.New[T](m.bufs[i].pool)
			m.bufs[i].limit.Store(int64(cfg.batch))
		}
	}
	if cfg.reclaimers > 0 {
		if cfg.batch <= 0 {
			panic("core: WithAsyncReclaim requires WithRetireBatching (the hand-off granularity is the retire batch)")
		}
		m.async = NewAsyncReclaimer(rec, cfg.threads, cfg.reclaimers)
	}
	// Prebuild the per-thread handle table for every participant the scheme
	// was constructed for (workers and async reclaimer tids alike), so
	// Handle(tid) is a pointer into this table rather than an allocation.
	n := cfg.threads
	var smap *ShardMap
	if sh, ok := rec.(Sharded); ok {
		smap = sh.ShardMap()
		if t := smap.Threads(); t > n {
			n = t
		}
	}
	m.handles = make([]ThreadHandle[T], n)
	for i := range m.handles {
		m.handles[i] = m.newHandle(i)
	}
	// The slot registry covers the worker slots only: the async reclaimer
	// tids at the top of the participant range are permanent infrastructure,
	// never acquirable. Attaching the registry to the scheme's shard map is
	// what lets the schemes' scan paths consult occupancy.
	workers := n - cfg.reclaimers
	if workers < 1 {
		workers = 1
	}
	m.reg = NewSlotRegistry(workers, smap)
	if smap != nil {
		smap.AttachRegistry(m.reg)
	}
	if cfg.ctrl != nil {
		var scaler ReclaimerScaler
		if m.async != nil {
			scaler = m.async
		}
		var setBatch func(int)
		if m.batch > 0 {
			setBatch = func(b int) {
				for i := range m.bufs {
					m.bufs[i].limit.Store(int64(b))
				}
			}
		}
		m.ctrl = NewController(*cfg.ctrl, m.reg, scaler, m.batch, setBatch, func() ControllerSignal {
			s := m.Stats()
			// The rate signal is WORKER inflow, not scheme-level Retired:
			// with batching and async hand-off, records reach the scheme's
			// Retire only when a reclaimer drains them, so scheme-Retired
			// stalls exactly when the pipeline is busiest (and catches up in
			// the lulls — an inverted signal). Each record sits in exactly
			// one of the three terms, so the sum is monotone.
			return ControllerSignal{
				Retired:        s.Reclaimer.Retired + s.RetirePending + s.HandoffPending,
				Unreclaimed:    s.Unreclaimed,
				HandoffPending: s.HandoffPending,
			}
		})
		m.ctrl.Start()
	}
	return m
}

// Controller returns the manager's adaptive controller (nil unless
// constructed with WithController).
func (m *RecordManager[T]) Controller() *Controller { return m.ctrl }

// SlotRegistry returns the manager's dynamic thread-slot registry
// (instrumentation; applications go through AcquireHandle/ReleaseHandle).
func (m *RecordManager[T]) SlotRegistry() *SlotRegistry { return m.reg }

// WorkerSlots returns the number of acquirable worker slots (the slot
// registry's capacity): the participant count minus the async reclaimer
// tids. Data structures size their per-thread tables from this so both
// binding styles — static dense tids and AcquireHandle — fit.
func (m *RecordManager[T]) WorkerSlots() int { return m.reg.Capacity() }

// Participants returns the total number of dense thread ids the manager's
// components were constructed for (worker slots plus async reclaimer tids).
func (m *RecordManager[T]) Participants() int { return len(m.handles) }

// Allocator returns the underlying allocator.
func (m *RecordManager[T]) Allocator() Allocator[T] { return m.alloc }

// Pool returns the underlying pool (nil when records are not reused).
func (m *RecordManager[T]) Pool() Pool[T] { return m.pool }

// Reclaimer returns the underlying reclaimer.
func (m *RecordManager[T]) Reclaimer() Reclaimer[T] { return m.reclaimer }

// Allocate returns a record for thread tid, preferring the pool.
func (m *RecordManager[T]) Allocate(tid int) *T {
	if m.pool != nil {
		return m.pool.Allocate(tid)
	}
	return m.alloc.Allocate(tid)
}

// Deallocate returns an unused (never inserted or already reclaimed) record
// directly to the pool or allocator. Records that were inserted into the
// data structure must be Retired instead.
func (m *RecordManager[T]) Deallocate(tid int, rec *T) {
	if m.pool != nil {
		m.pool.Free(tid, rec)
		return
	}
	m.alloc.Deallocate(tid, rec)
}

// Retire hands a removed record to the reclaimer — directly, or through the
// thread's deferred-retire buffer when batching is enabled. Unlike the raw
// scheme Retire (which the epoch schemes reject from a quiescent context),
// this is safe from any same-thread context: a quiescent caller — a
// data-structure postamble after EnterQstate, a DEBRA+ recovery path — is
// routed through the scheme's pin-while-retiring entry point so the hand-off
// happens under an active announcement.
func (m *RecordManager[T]) Retire(tid int, rec *T) { m.Handle(tid).Retire(rec) }

// FlushRetired hands every record parked in thread tid's deferred-retire
// buffer to the reclaimer. Full blocks transfer as O(1) splices for schemes
// implementing BlockReclaimer; the partial tail (always fewer than
// blockbag.BlockSize records) is retired record-at-a-time. A no-op when
// batching is disabled.
//
// Contract: when thread tid is quiescent (shutdown paths, tests, a
// coordinator flushing on behalf of finished workers), the hand-off is
// wrapped in the scheme's pin-while-retiring entry point, because the epoch
// schemes' retire paths are only safe under an active announcement — a
// quiescent retirer's observed epoch can go arbitrarily stale before its
// records land in a limbo bag, racing an advance winner's drain of that very
// bag (see RetirePinner). When tid is mid-operation the operation's own pin
// already covers the hand-off and no extra pin is taken. With asynchronous
// reclamation the flush is a lock-free queue push that never touches the
// scheme, so no pin is needed at all.
func (m *RecordManager[T]) FlushRetired(tid int) {
	if m.batch == 0 || tid < 0 || tid >= len(m.bufs) {
		return
	}
	m.flushBuf(tid, &m.bufs[tid])
}

// flushBuf is FlushRetired's body, shared with the ThreadHandle fast path
// (which holds a direct buffer pointer instead of re-indexing bufs[tid]).
func (m *RecordManager[T]) flushBuf(tid int, b *retireBuf[T]) {
	if b.pending.Load() == 0 {
		return
	}
	if m.async != nil {
		m.async.Enqueue(tid, b.bag.DetachAll())
		b.pending.Store(0)
		// Refill the buffer's block pool from the reclaimers' spare-return
		// stack, so batches keep circulating existing blocks instead of
		// allocating one per hand-off.
		if blk := m.async.TakeSpare(tid); blk != nil {
			b.pool.Put(blk)
		}
		return
	}
	if m.pinner != nil && m.reclaimer.IsQuiescent(tid) {
		// The pin announces tid as an active retirer; the slot must be
		// claimed first or scanners would skip the announcement (a no-op for
		// slots already claimed or dynamically held, i.e. every caller that
		// arrived through the public binding APIs).
		m.reg.EnsureStatic(tid)
		m.pinner.PinRetire(tid)
		defer m.pinner.UnpinRetire(tid)
	}
	if chain := b.bag.DetachAllFullBlocks(); chain != nil {
		//lint:allow retirepin flushBuf pins conditionally above: only a quiescent thread needs the PinRetire window
		RetireChain(m.reclaimer, tid, chain, b.pool)
	}
	//lint:allow retirepin same conditional-pin window as the chain hand-off above
	b.bag.Drain(func(rec *T) { m.reclaimer.Retire(tid, rec) })
	b.pending.Store(0)
}

// AsyncReclaimers returns the number of dedicated reclaimer goroutines (0
// when reclamation is synchronous).
func (m *RecordManager[T]) AsyncReclaimers() int {
	if m.async == nil {
		return 0
	}
	return m.async.Reclaimers()
}

// Close shuts the Record Manager's reclamation pipeline down
// deterministically: every thread's deferred-retire buffer is flushed, the
// asynchronous reclaimers (if any) drain their hand-off queues and stop, and
// the scheme's remaining limbo is force-freed when it supports quiescent
// draining (LimboDrainer) — after which Retired == Freed for every
// reclaiming scheme. Contract: every worker has quiesced (EnterQstate) and
// performs no further operations; the caller has joined the worker
// goroutines (that join is the happens-before edge under which Close may
// touch their single-owner buffers). Close is idempotent and managers that
// never enabled batching or async reclamation may skip it.
func (m *RecordManager[T]) Close() {
	if m.ctrl != nil {
		// Stop the adaptive controller first: after Stop no lever moves, so
		// the flush/drain sequence below runs against frozen knobs and the
		// PR 3 shutdown ordering is preserved verbatim.
		m.ctrl.Stop()
	}
	for tid := range m.bufs {
		m.FlushRetired(tid)
	}
	if m.async != nil {
		m.async.Close()
		// Reclaim the reclaimers' spare exchange blocks into the workers'
		// retire-buffer block pools (round-robin; pool bounds drop overflow),
		// instead of leaking them to the garbage collector at shutdown.
		if len(m.bufs) > 0 {
			i := 0
			m.async.DrainSpares(func(blk *blockbag.Block[T]) {
				m.bufs[i%len(m.bufs)].pool.Put(blk)
				i++
			})
			m.sparesRecovered += i
		}
	}
	if d, ok := m.reclaimer.(LimboDrainer); ok {
		d.DrainLimbo(0)
	}
}

// RetireBatchSize returns the configured deferred-retire batch size (0 when
// batching is disabled).
func (m *RecordManager[T]) RetireBatchSize() int { return m.batch }

// SparesRecovered returns the number of spare exchange blocks Close
// returned from the async pipeline to the workers' retire-buffer block
// pools (0 before Close or without async reclamation).
func (m *RecordManager[T]) SparesRecovered() int { return m.sparesRecovered }

// AsyncSpareBlocks returns the number of spare blocks still parked on the
// async pipeline's return stacks (0 without async reclamation; 0 after
// Close, which drains them — the leak tests assert this).
func (m *RecordManager[T]) AsyncSpareBlocks() int64 {
	if m.async == nil {
		return 0
	}
	return m.async.SpareBlocks()
}

// LeaveQstate marks the start of an operation by thread tid. Routed through
// Handle(tid), so a static caller's first operation claims the slot in the
// slot registry (a thread operating on a vacant slot would be invisible to
// reclamation scans).
func (m *RecordManager[T]) LeaveQstate(tid int) bool { return m.Handle(tid).LeaveQstate() }

// EnterQstate marks the end of an operation by thread tid.
func (m *RecordManager[T]) EnterQstate(tid int) { m.reclaimer.EnterQstate(tid) }

// IsQuiescent reports whether thread tid is quiescent.
func (m *RecordManager[T]) IsQuiescent(tid int) bool { return m.reclaimer.IsQuiescent(tid) }

// NeedsPerRecordProtection reports whether the reclaimer requires Protect to
// be called (and validated) for every record accessed. Data structures read
// this once and skip the protection path entirely for epoch-based schemes,
// mirroring the paper's compile-time elimination of no-op protect calls.
func (m *RecordManager[T]) NeedsPerRecordProtection() bool { return m.perRecord }

// SupportsCrashRecovery reports whether the reclaimer neutralizes stalled
// threads, in which case operations must be wrapped in recovery code.
func (m *RecordManager[T]) SupportsCrashRecovery() bool { return m.crashRecovery }

// Protect announces that thread tid may access rec (see Reclaimer.Protect).
// Routed through Handle(tid) so a hazard-pointer announcement always comes
// from a claimed, scanner-visible slot.
func (m *RecordManager[T]) Protect(tid int, rec *T) bool { return m.Handle(tid).Protect(rec) }

// Unprotect revokes a Protect.
func (m *RecordManager[T]) Unprotect(tid int, rec *T) { m.reclaimer.Unprotect(tid, rec) }

// IsProtected reports whether rec is protected by thread tid.
func (m *RecordManager[T]) IsProtected(tid int, rec *T) bool {
	return m.reclaimer.IsProtected(tid, rec)
}

// RProtect announces a recovery protection (DEBRA+).
func (m *RecordManager[T]) RProtect(tid int, rec *T) { m.reclaimer.RProtect(tid, rec) }

// RUnprotectAll releases all recovery protections held by thread tid.
func (m *RecordManager[T]) RUnprotectAll(tid int) { m.reclaimer.RUnprotectAll(tid) }

// IsRProtected reports whether thread tid holds a recovery protection of rec.
func (m *RecordManager[T]) IsRProtected(tid int, rec *T) bool {
	return m.reclaimer.IsRProtected(tid, rec)
}

// Checkpoint delivers a pending neutralization signal, if any (DEBRA+).
func (m *RecordManager[T]) Checkpoint(tid int) { m.reclaimer.Checkpoint(tid) }

// Stats aggregates the statistics of all three components. RetirePending is
// read from the single-writer deferred-retire buffers and is exact only when
// the worker threads are quiescent (which is when the harnesses snapshot).
func (m *RecordManager[T]) Stats() ManagerStats {
	s := ManagerStats{
		Reclaimer: m.reclaimer.Stats(),
		Alloc:     m.alloc.Stats(),
	}
	if m.pool != nil {
		s.Pool = m.pool.Stats()
	}
	for i := range m.bufs {
		s.RetirePending += m.bufs[i].pending.Load()
	}
	if m.async != nil {
		s.HandoffPending = m.async.HandoffPending()
	}
	s.Unreclaimed = s.Reclaimer.Limbo + s.RetirePending + s.HandoffPending
	return s
}

// ManagerStats bundles the statistics of the three Record Manager
// components.
type ManagerStats struct {
	Reclaimer Stats
	Alloc     AllocStats
	Pool      PoolStats
	// RetirePending is the number of records parked in deferred-retire
	// buffers (0 unless retire batching is enabled).
	RetirePending int64
	// HandoffPending is the number of records parked in asynchronous
	// hand-off queues (0 unless async reclamation is enabled). Exact when
	// the pipeline is idle or closed; a chain a reclaimer is mid-drain is
	// transiently counted neither here nor in the scheme's limbo.
	HandoffPending int64
	// Unreclaimed is the true number of retired-but-not-freed records:
	// Reclaimer.Limbo + RetirePending + HandoffPending. Reclaimer.Limbo
	// alone understates the footprint whenever batching or async hand-off
	// parks records outside the scheme, so memory reporting uses this field.
	Unreclaimed int64
}
