package core

import (
	"fmt"
	"runtime"
)

// This file defines the sharded reclamation domain layer: the mapping from
// dense thread ids onto reclamation shards ("domains"). A Record Manager
// built over N shards partitions its threads so that the reclaimer's
// per-operation bookkeeping — epoch announcement scans, limbo-bag rotation,
// retire-path locking — touches mostly shard-local state. Only the slow path
// (verifying that a lagging shard is quiescent before a global epoch
// advance) crosses shard boundaries, which is what makes the scheme safe for
// data structures whose threads span multiple domains: records are never
// freed until every shard has been verified quiescent for the retiring
// epoch, exactly as in the single-domain schemes, but the verification work
// is distributed and memoised per shard.
//
// The tid→shard placement policy is the NUMA-style knob: "block" placement
// assigns contiguous tid ranges to the same shard (matching the common
// practice of pinning consecutive worker ids to the same socket), "stripe"
// round-robins tids across shards (matching hardware that enumerates
// hyperthreads across sockets first).

// ShardPlacement selects how dense thread ids are mapped onto shards.
type ShardPlacement string

// Placement policies.
const (
	// PlaceBlock assigns contiguous blocks of tids to each shard
	// (tids 0..k-1 -> shard 0, k..2k-1 -> shard 1, ...). This is the
	// default and matches "consecutive worker ids share a socket" pinning.
	PlaceBlock ShardPlacement = "block"
	// PlaceStripe round-robins tids across shards (tid % shards).
	PlaceStripe ShardPlacement = "stripe"
)

// ShardSpec describes a sharded reclamation domain: how many shards to run
// and how threads are placed onto them. The zero value (or Shards <= 1)
// selects a single domain, which preserves the unsharded behaviour of every
// scheme exactly.
type ShardSpec struct {
	// Shards is the number of reclamation domains. Values <= 1 mean one
	// domain; values larger than the thread count are clamped to it.
	Shards int
	// Placement is the tid→shard policy; empty means PlaceBlock.
	Placement ShardPlacement
}

// String renders the spec the way the bench harness labels it.
func (s ShardSpec) String() string {
	n := s.Shards
	if n < 1 {
		n = 1
	}
	p := s.Placement
	if p == "" {
		p = PlaceBlock
	}
	return fmt.Sprintf("shards=%d/%s", n, p)
}

// ParsePlacement validates a placement name from a CLI flag.
func ParsePlacement(name string) (ShardPlacement, error) {
	switch ShardPlacement(name) {
	case "", PlaceBlock:
		return PlaceBlock, nil
	case PlaceStripe:
		return PlaceStripe, nil
	default:
		return "", fmt.Errorf("core: unknown shard placement %q (want %q or %q)", name, PlaceBlock, PlaceStripe)
	}
}

// ShardMap is the resolved form of a ShardSpec for a fixed thread count: a
// precomputed tid→shard index and the member list of every shard. Reclaimers
// embed one and consult it on their hot paths; the topology is immutable
// after construction and therefore safe for concurrent use. A dynamic
// thread-slot registry may be attached once, before concurrent use (the
// Record Manager does this at construction); the occupancy queries below
// then let the schemes' scan paths skip slots nobody currently owns, and
// degrade to "everything occupied" when no registry is attached — the
// historical fixed-Threads behaviour.
type ShardMap struct {
	spec    ShardSpec
	n       int
	shardOf []int
	members [][]int
	reg     *SlotRegistry
}

// NewShardMap resolves spec for n threads. Shard counts are clamped to
// [1, n]; an unknown placement panics (Build validates names before they
// reach this point, so a panic here is a programming error).
func NewShardMap(n int, spec ShardSpec) *ShardMap {
	if n <= 0 {
		panic("core: NewShardMap requires n >= 1")
	}
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	if spec.Shards > n {
		spec.Shards = n
	}
	if spec.Placement == "" {
		spec.Placement = PlaceBlock
	}
	m := &ShardMap{
		spec:    spec,
		n:       n,
		shardOf: make([]int, n),
		members: make([][]int, spec.Shards),
	}
	for tid := 0; tid < n; tid++ {
		var s int
		switch spec.Placement {
		case PlaceBlock:
			s = tid * spec.Shards / n
		case PlaceStripe:
			s = tid % spec.Shards
		default:
			panic(fmt.Sprintf("core: unknown shard placement %q", spec.Placement))
		}
		m.shardOf[tid] = s
		m.members[s] = append(m.members[s], tid)
	}
	return m
}

// Spec returns the (normalised) spec the map was built from.
func (m *ShardMap) Spec() ShardSpec { return m.spec }

// Threads returns the number of threads the map covers.
func (m *ShardMap) Threads() int { return m.n }

// Shards returns the number of shards.
func (m *ShardMap) Shards() int { return len(m.members) }

// ShardOf returns the shard index of a thread.
func (m *ShardMap) ShardOf(tid int) int { return m.shardOf[tid] }

// Members returns the tids placed on shard s. The returned slice is shared
// and must not be mutated.
func (m *ShardMap) Members(s int) []int { return m.members[s] }

// AttachRegistry attaches a dynamic slot registry to the map, enabling the
// occupancy queries below. It must be called before concurrent use of the
// reclaimer holding the map (the Record Manager attaches at construction,
// which precedes any worker goroutine); attaching twice — two managers built
// over one externally shared reclaimer — is rejected, because the second
// manager's registry would silently shadow the first's occupancy.
func (m *ShardMap) AttachRegistry(r *SlotRegistry) {
	if m.reg != nil && m.reg != r {
		panic("core: ShardMap already has a slot registry attached (one reclaimer cannot serve two Record Managers' slot registries)")
	}
	m.reg = r
}

// Registry returns the attached slot registry (nil when none).
func (m *ShardMap) Registry() *SlotRegistry { return m.reg }

// SlotOccupied reports whether tid's slot is currently owned. Without an
// attached registry every slot reads as occupied (the fixed-Threads
// behaviour). A vacant slot is quiescent by the release contract, so scan
// paths may treat SlotOccupied==false exactly like an observed-quiescent
// announcement.
func (m *ShardMap) SlotOccupied(tid int) bool {
	if m.reg == nil {
		return true
	}
	return m.reg.Occupied(tid)
}

// ShardLive returns the number of occupied members of shard s, or -1 when
// no registry is attached (occupancy unknown — scan everything). A shard
// with ShardLive(s) == 0 has only vacant, hence quiescent, members and may
// be verified without touching a single announcement; ShardLive(s) == 1
// lets a scanning member skip its shard loop entirely when it is the only
// occupant.
func (m *ShardMap) ShardLive(s int) int {
	if m.reg == nil || m.reg.shards == nil {
		return -1
	}
	return int(m.reg.shardLive(s))
}

// DefaultShardSweep returns the shard counts the ablation experiments and
// the DS-level safety stresses cover on this machine: 1 (the single-domain
// baseline), 2, and NumCPU, deduplicated and ascending.
func DefaultShardSweep() []int {
	out := []int{1}
	for _, s := range []int{2, runtime.NumCPU()} {
		if s > out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// Sharded is implemented by reclaimers that support sharded domains; it
// exposes the resolved shard map for instrumentation (tests, the bench
// harness). Every scheme in this module implements it — schemes with no
// shared reclamation state (hazard pointers, the leaking baseline) hold a
// map but have nothing to shard, which the package comments document.
type Sharded interface {
	ShardMap() *ShardMap
}
