package core

import (
	"sync"
	"time"

	"repro/internal/blockbag"
)

// This file implements the self-tuning runtime: a low-overhead feedback loop
// that moves the Record Manager's three reclamation knobs — effective shard
// count, per-thread retire batch, and active async-reclaimer count — with the
// live workload instead of leaving them as static per-run configuration. The
// controller is deliberately dumb and cheap: one observation and at most
// three lever writes per control interval (default 10ms), reading only the
// snapshots the stack already publishes (slot occupancy summaries, the
// single-writer stat counters) and writing only single-writer or
// store-only state (the registry's effective-shard word, the padded
// per-thread batch-limit cells, the reclaimer's active count). Nothing it
// does is load-bearing for safety: every lever is a placement or batching
// bias whose extreme settings degenerate to configurations the stack already
// runs — so a mis-tuned controller costs throughput, never correctness.
//
// # The three levers
//
//   - Effective shards (lever a): Acquire places new slot bindings into a
//     prefix of the shards (SlotRegistry.SetEffectiveShards). The target
//     tracks live slot occupancy — roughly "as many shards as are needed to
//     home the live population at the registry's slots-per-shard density" —
//     so a mostly-idle service concentrates its few live threads on few
//     shards and the schemes' occupancy-aware scans skip the rest in O(1)
//     per shard.
//   - Retire batch (lever b): AIMD between a configurable floor and ceiling,
//     tracking the observed retire rate. The target is a few control
//     intervals' worth of per-thread retirement, so a parked record waits a
//     bounded number of intervals before its buffer flushes: when the batch
//     is several times oversized for the rate (a lull) it halves
//     (multiplicative decrease — stragglers flush promptly and the memory
//     comes back); while the rate affords a bigger batch and the Unreclaimed
//     backlog is modest or shrinking it grows toward the ceiling (slow-start
//     doubling when far below the rate target, additive steps near it),
//     amortising per-flush costs. The backlog gates only the INCREASE:
//     backlog under a reclamation-side scheme (epoch lag, reclaimer lag) is
//     not something a smaller batch can drain, so shrinking on backlog alone
//     would pin the lever at the floor and pay the per-retire flush cost
//     forever without freeing anything sooner. The per-thread limit cells
//     live on the existing padded retireBuf blocks and are written only
//     here.
//   - Active reclaimers (lever c): when the hand-off backlog exceeds what
//     the active reclaimers should clear in a couple of batches, one more
//     reclaimer goroutine is activated (additive increase, up to the
//     constructed pool); after several consecutive idle observations one is
//     deactivated (its queue is then drained by work stealing — see
//     AsyncReclaimer).
//
// The controller runs on its own goroutine (Start/Stop) in production;
// Step() is the entire decision logic and is called directly by unit tests,
// so the tests need no wall clock at all — the "clock" is the step counter
// and the nominal interval.

// DefaultControllerInterval is the control period used when
// ControllerConfig.Interval is unset.
const DefaultControllerInterval = 10 * time.Millisecond

// controllerMaxSamples bounds the in-memory decision trajectory; on
// overflow the history is decimated (every other sample dropped, stride
// doubled), so arbitrarily long runs keep a bounded, uniformly spaced
// record.
const controllerMaxSamples = 2048

// ControllerConfig tunes the adaptive controller. The zero value selects
// the defaults documented on each field.
type ControllerConfig struct {
	// Interval is the control period (default DefaultControllerInterval).
	Interval time.Duration
	// MinBatch and MaxBatch bound the retire-batch AIMD lever (defaults 8
	// and 4*blockbag.BlockSize). The additive-increase step is
	// max(MinBatch, MaxBatch/16), so recovery from a multiplicative
	// decrease spans the whole range in a bounded number of steps.
	MinBatch int
	MaxBatch int
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg ControllerConfig) withDefaults() ControllerConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultControllerInterval
	}
	if cfg.MinBatch <= 0 {
		cfg.MinBatch = 8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4 * blockbag.BlockSize
	}
	if cfg.MaxBatch < cfg.MinBatch {
		cfg.MaxBatch = cfg.MinBatch
	}
	return cfg
}

// ControllerSignal is one observation of the reclamation pipeline, supplied
// to the Controller by the Record Manager each control step.
type ControllerSignal struct {
	// Retired is the cumulative count of records retired BY WORKER THREADS
	// — buffered, queued for hand-off, or already scheme-retired all count
	// (the rate signal is the per-step delta, and scheme-level Retired
	// alone stalls exactly when buffering and hand-off are busiest).
	Retired int64
	// Unreclaimed is the current retired-but-not-freed backlog (limbo +
	// retire buffers + hand-off queues).
	Unreclaimed int64
	// HandoffPending is the async hand-off queue backlog (0 when
	// reclamation is synchronous).
	HandoffPending int64
}

// ControllerSample is one recorded control decision: the observation and
// the lever positions after acting on it. The bench harness emits
// trajectories of these as JSON columns.
type ControllerSample struct {
	// Step is the 1-based control step index; Step * the configured
	// interval is the nominal time offset.
	Step int
	// Live is the observed number of occupied worker slots.
	Live int
	// EffectiveShards, RetireBatch and ActiveReclaimers are the lever
	// positions after this step.
	EffectiveShards  int
	RetireBatch      int
	ActiveReclaimers int
	// Unreclaimed and HandoffPending echo the observation.
	Unreclaimed    int64
	HandoffPending int64
	// RetiredDelta is the retired-record count observed since the previous
	// step (the retire-rate signal, in records per interval).
	RetiredDelta int64
}

// ReclaimerScaler is the scaling surface of an asynchronous reclamation
// pipeline: the Controller holds it as a non-generic interface so one
// controller type serves every record type. AsyncReclaimer implements it.
type ReclaimerScaler interface {
	// SetActiveReclaimers sets the number of actively draining reclaimer
	// goroutines, clamped to [1, pool size], returning the applied value.
	SetActiveReclaimers(n int) int
	// ActiveReclaimers returns the current active count.
	ActiveReclaimers() int
	// Reclaimers returns the constructed pool size (the scaling ceiling).
	Reclaimers() int
}

// Controller is the adaptive feedback loop (see the file comment for the
// control laws). Construct with NewController, run with Start, stop with
// Stop; Step is public so tests can drive the loop deterministically
// without wall-clock sleeps. A Controller is wired and owned by its
// RecordManager (recordmgr.Config.Adaptive); the accessors are safe for
// concurrent use, everything else belongs to the control goroutine.
type Controller struct {
	cfg      ControllerConfig
	reg      *SlotRegistry
	scaler   ReclaimerScaler // nil when reclamation is synchronous
	setBatch func(int)       // writes every thread's batch-limit cell; nil without batching
	observe  func() ControllerSignal

	// Control-goroutine-only state.
	batch           int // current batch lever position (0 = lever disabled)
	idleSteps       int // consecutive steps with a near-empty hand-off backlog
	lastRetired     int64
	lastUnreclaimed int64

	mu        sync.Mutex
	last      ControllerSample
	samples   []ControllerSample
	stride    int // decimation stride (power of two)
	sinceKeep int
	step      int
	decisions int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewController wires a controller to its signals and levers. reg and
// observe are required; scaler is nil when there is no async pipeline to
// scale, and setBatch is nil (with initialBatch 0) when retire batching is
// disabled — the corresponding lever then stays off. The controller does
// not run until Start.
func NewController(cfg ControllerConfig, reg *SlotRegistry, scaler ReclaimerScaler, initialBatch int, setBatch func(int), observe func() ControllerSignal) *Controller {
	if reg == nil {
		panic("core: NewController requires a SlotRegistry")
	}
	if observe == nil {
		panic("core: NewController requires an observe func")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:     cfg,
		reg:     reg,
		scaler:  scaler,
		observe: observe,
		stride:  1,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if setBatch != nil && initialBatch > 0 {
		c.batch = clampInt(initialBatch, cfg.MinBatch, cfg.MaxBatch)
		c.setBatch = setBatch
		if c.batch != initialBatch {
			// The configured batch starts outside the AIMD bounds; publish
			// the clamped value so the lever and the buffers agree.
			c.setBatch(c.batch)
		}
	}
	return c
}

// Interval returns the (defaulted) control period.
func (c *Controller) Interval() time.Duration { return c.cfg.Interval }

// Start launches the control goroutine; idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go c.run()
	})
}

// Stop halts the control goroutine and waits for it to exit; idempotent,
// and safe to call on a controller that was never started. After Stop no
// further lever writes happen, which is what lets RecordManager.Close
// sequence the shutdown (controller first, then flush, then reclaimers).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
	})
	// Only a started controller has a goroutine to join; Step-driven test
	// controllers just flip the stop flag.
	select {
	case <-c.done:
	default:
		c.startOnce.Do(func() { close(c.done) })
		<-c.done
	}
}

// run is the production control loop: one Step per interval until Stop.
func (c *Controller) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.Step()
		}
	}
}

// Step performs one control decision: observe, move the levers, record a
// sample. It is the whole controller; the production goroutine calls it on
// a ticker and unit tests call it directly (no wall time involved — the
// retire "rate" is the per-step delta against the nominal interval).
// Owner-only: the control goroutine, or the test driving a never-started
// controller.
func (c *Controller) Step() {
	live := c.reg.Live()
	sig := c.observe()
	decided := int64(0)

	// Lever (a): effective shards track the live population at the
	// registry's slots-per-shard density — enough prefix shards to home
	// every live binding, no more.
	shards := c.reg.EffectiveShards()
	if total := c.reg.Shards(); total > 1 {
		target := clampInt(ceilDiv(live*total, c.reg.Capacity()), 1, total)
		if target != shards {
			shards = c.reg.SetEffectiveShards(target)
			decided++
		}
	}

	// Lever (b): rate-tracking AIMD on the retire batch. The target is a
	// few intervals' worth of per-thread retirement, so a parked record
	// waits a bounded number of control intervals before its buffer
	// flushes. Decrease is driven by the RATE (the batch is several times
	// oversized — a lull), never by the backlog alone: most of Unreclaimed
	// is scheme limbo and hand-off lag, which a smaller batch cannot
	// drain, so a backlog-triggered decrease would pin the lever at the
	// floor (each halving also halves what the buffers park, the
	// limbo-dominated backlog stands still, and the condition re-fires
	// forever). The backlog instead gates the INCREASE: while reclamation
	// is behind, the batch does not grow the parked population further.
	delta := sig.Retired - c.lastRetired
	c.lastRetired = sig.Retired
	if c.batch > 0 {
		liveFloor := live
		if liveFloor < 1 {
			liveFloor = 1
		}
		step := c.cfg.MaxBatch / 16
		if step < c.cfg.MinBatch {
			step = c.cfg.MinBatch
		}
		perThread := int(delta) / liveFloor
		target := clampInt(4*perThread, c.cfg.MinBatch, c.cfg.MaxBatch)
		// The backlog gate passes when the backlog is modest in absolute
		// terms OR simply not growing: schemes whose steady state parks a
		// large limbo (epoch lag) would otherwise never pass an absolute
		// test, and the batch could never recover from a lull collapse.
		backlogOK := sig.Unreclaimed <= int64(4*c.cfg.MaxBatch)*int64(liveFloor) ||
			sig.Unreclaimed <= c.lastUnreclaimed
		next := c.batch
		switch {
		case c.batch > 4*target:
			next = clampInt(c.batch/2, c.cfg.MinBatch, c.cfg.MaxBatch)
		case c.batch < target && backlogOK:
			if 4*c.batch < target {
				// Slow-start: far below the rate target (fresh out of a
				// lull), double — additive steps alone would spend a whole
				// phase ramping.
				next = clampInt(2*c.batch, c.cfg.MinBatch, c.cfg.MaxBatch)
			} else {
				next = clampInt(c.batch+step, c.cfg.MinBatch, c.cfg.MaxBatch)
			}
		}
		if next != c.batch {
			// RetireBatch() reads the lever under mu before the first
			// recorded sample; publish the write under the same lock.
			c.mu.Lock()
			c.batch = next
			c.mu.Unlock()
			c.setBatch(next)
			decided++
		}
	}
	c.lastUnreclaimed = sig.Unreclaimed

	// Lever (c): scale the active reclaimers with the hand-off backlog.
	active := 0
	if c.scaler != nil {
		active = c.scaler.ActiveReclaimers()
		batchful := int64(c.batch)
		if batchful < 1 {
			batchful = 1
		}
		switch {
		case sig.HandoffPending > 2*batchful*int64(active) && active < c.scaler.Reclaimers():
			active = c.scaler.SetActiveReclaimers(active + 1)
			c.idleSteps = 0
			decided++
		case sig.HandoffPending < batchful:
			// Under one batch outstanding counts as idle: a live hand-off
			// stream keeps at least a batch in flight, so waiting for an
			// exactly empty queue would never scale down.
			if c.idleSteps++; c.idleSteps >= 4 && active > 1 {
				active = c.scaler.SetActiveReclaimers(active - 1)
				c.idleSteps = 0
				decided++
			}
		default:
			c.idleSteps = 0
		}
	}

	c.record(decided, ControllerSample{
		Live:             live,
		EffectiveShards:  shards,
		RetireBatch:      c.batch,
		ActiveReclaimers: active,
		Unreclaimed:      sig.Unreclaimed,
		HandoffPending:   sig.HandoffPending,
		RetiredDelta:     delta,
	})
}

// record appends a sample to the bounded trajectory (decimating on
// overflow) and publishes it as the latest observation, folding this step's
// lever-write count into the decision counter under the same lock that
// Decisions() reads it.
func (c *Controller) record(decided int64, s ControllerSample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decisions += decided
	c.step++
	s.Step = c.step
	c.last = s
	if c.sinceKeep++; c.sinceKeep < c.stride {
		return
	}
	c.sinceKeep = 0
	c.samples = append(c.samples, s)
	if len(c.samples) >= controllerMaxSamples {
		kept := c.samples[:0]
		for i := 1; i < len(c.samples); i += 2 {
			kept = append(kept, c.samples[i])
		}
		c.samples = kept
		c.stride *= 2
	}
}

// Last returns the most recent control sample; ok is false before the
// first step.
func (c *Controller) Last() (ControllerSample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, c.step > 0
}

// Steps returns the number of control steps taken so far.
func (c *Controller) Steps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// Decisions returns the number of lever writes the controller has made
// (instrumentation: a converged controller makes few).
func (c *Controller) Decisions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decisions
}

// Trajectory returns a copy of the recorded decision trajectory. The
// history is decimated to a bounded length with uniform stride, so long
// runs return a coarser — never truncated — record.
func (c *Controller) Trajectory() []ControllerSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ControllerSample(nil), c.samples...)
}

// RetireBatch returns the batch lever's current position (0 when the lever
// is disabled). Exact between steps; racy-but-coherent while the control
// goroutine runs.
func (c *Controller) RetireBatch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step > 0 {
		return c.last.RetireBatch
	}
	return c.batch
}

// clampInt clamps v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
