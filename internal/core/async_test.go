package core_test

// Unit tests for the AsyncReclaimer hand-off machinery itself; the
// end-to-end behaviour (leak-free shutdown, drain-behind-idle-workers, the
// poison-sink stress) is covered at the recordmgr and data-structure layers.

import (
	"testing"

	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/reclaim/ebr"
	"repro/internal/reclaimtest"
)

// chain builds a detached chain holding n records (full blocks plus a
// partial), the shape FlushRetired enqueues.
func chain(n int) *blockbag.Block[rec] {
	bag := blockbag.New[rec](nil)
	for i := 0; i < n; i++ {
		bag.Add(&rec{ID: int64(i)})
	}
	return bag.DetachAll()
}

func TestAsyncReclaimerCountersAndClose(t *testing.T) {
	const workers, reclaimers = 2, 2
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[rec](workers+reclaimers, sink)
	a := core.NewAsyncReclaimer[rec](r, workers, reclaimers)
	if got := a.Reclaimers(); got != reclaimers {
		t.Fatalf("Reclaimers = %d", got)
	}
	const n = 3*blockbag.BlockSize + 11
	a.Enqueue(0, chain(n))
	a.Enqueue(1, chain(n))
	a.Close()
	if got := a.Enqueued(); got != 2*n {
		t.Fatalf("Enqueued = %d want %d", got, 2*n)
	}
	if got := a.Drained(); got != 2*n {
		t.Fatalf("Drained = %d want %d after Close", got, 2*n)
	}
	if got := a.HandoffPending(); got != 0 {
		t.Fatalf("HandoffPending = %d after Close", got)
	}
	if got := r.Stats().Retired; got != 2*n {
		t.Fatalf("scheme saw %d retires, want %d", got, 2*n)
	}
	// The EBR limbo still holds the records (Close does not force-free; that
	// is DrainLimbo's job, under the all-quiescent contract).
	if drained := r.DrainLimbo(0); drained != 2*n {
		t.Fatalf("DrainLimbo freed %d want %d", drained, 2*n)
	}
	if got := sink.Freed(); got != 2*n {
		t.Fatalf("sink saw %d frees", got)
	}
}

// TestAsyncReclaimerDrainSparesEmptyPipeline: DrainSpares and SpareBlocks
// are well-behaved no-ops on a pipeline that never produced exchange spares.
// The live spare-return path (spares produced by a real workload must be
// parked at Close and handed back to the workers' retire-buffer pools) is
// covered end-to-end by TestAsyncCloseReturnsSpareBlocks in
// internal/recordmgr, where a scheme configuration that actually produces
// exchange spares can be built.
func TestAsyncReclaimerDrainSparesEmptyPipeline(t *testing.T) {
	const workers, reclaimers = 1, 1
	sink := reclaimtest.NewRecordingSink()
	r := ebr.New[rec](workers+reclaimers, sink)
	a := core.NewAsyncReclaimer[rec](r, workers, reclaimers)
	a.Close()
	if got := a.SpareBlocks(); got != 0 {
		t.Fatalf("SpareBlocks = %d on an idle pipeline", got)
	}
	n := 0
	a.DrainSpares(func(blk *blockbag.Block[rec]) { n++ })
	if n != 0 {
		t.Fatalf("DrainSpares returned %d blocks from an empty stack", n)
	}
}

func TestAsyncReclaimerValidatesCapacity(t *testing.T) {
	r := ebr.New[rec](2, reclaimtest.NewRecordingSink())
	if !panics(func() { core.NewAsyncReclaimer[rec](r, 2, 1) }) {
		t.Fatal("undersized reclaimer accepted (2 participants for 2 workers + 1 reclaimer)")
	}
}

func TestAsyncReclaimerEnqueueAfterClosePanics(t *testing.T) {
	r := ebr.New[rec](2, reclaimtest.NewRecordingSink())
	a := core.NewAsyncReclaimer[rec](r, 1, 1)
	a.Close()
	if !panics(func() { a.Enqueue(0, chain(5)) }) {
		t.Fatal("Enqueue after Close accepted")
	}
}
