package core

// This file implements the per-thread handle layer: the Record Manager's
// answer to the observation (Hart et al., and the paper's own O(1)-per-op
// claim) that reclamation scheme comparisons are dominated by per-operation
// constants. A ThreadHandle is resolved once, at worker registration, and
// caches everything a steady-state operation needs — the thread's
// deferred-retire buffer, its pool fast path, the scheme's per-thread
// fast-path view, and the capability interfaces (RetirePinner, ...) that the
// generic path would otherwise type-assert per call — so an operation issued
// through the handle performs zero slice indexing and at most one interface
// call per Record Manager primitive.

// ReclaimerHandle is the per-thread fast-path view of a Reclaimer: the
// operations a data structure issues on (nearly) every operation, with the
// calling thread id bound at construction. Schemes implement it with a
// concrete per-thread struct that caches direct pointers to the thread's
// announcement slot, limbo state and counters, so the per-op cost is one
// interface dispatch and no threads[tid] indexing at all. Rare operations
// (RProtect, DrainLimbo, Stats, ...) stay on the tid-based Reclaimer
// interface.
type ReclaimerHandle[T any] interface {
	// LeaveQstate starts an operation (Reclaimer.LeaveQstate).
	LeaveQstate() bool
	// EnterQstate ends an operation (Reclaimer.EnterQstate).
	EnterQstate()
	// Retire hands the reclaimer a removed record (Reclaimer.Retire); the
	// thread must be pinned, exactly as for the tid-based call.
	Retire(rec *T)
	// Protect announces per-record protection (Reclaimer.Protect).
	Protect(rec *T) bool
	// Unprotect revokes a Protect (Reclaimer.Unprotect).
	Unprotect(rec *T)
	// Checkpoint delivers a pending neutralization (Reclaimer.Checkpoint).
	Checkpoint()
}

// HandledReclaimer is implemented by schemes that provide per-thread
// fast-path handles. Every scheme in this module does; the generic adapter
// below covers external reclaimers.
type HandledReclaimer[T any] interface {
	// Handle returns thread tid's fast-path view. The returned handle is
	// owned by tid: only that thread may call its methods.
	Handle(tid int) ReclaimerHandle[T]
}

// PoolHandle is the per-thread fast-path view of a Pool: allocation and free
// with the thread's private pool bag resolved at construction.
type PoolHandle[T any] interface {
	// Allocate returns a record, preferring the thread's private bag.
	Allocate() *T
	// Free returns a record to the thread's private bag.
	Free(rec *T)
}

// HandledPool is implemented by pools that provide per-thread handles.
type HandledPool[T any] interface {
	// Handle returns thread tid's fast-path view (owned by tid).
	Handle(tid int) PoolHandle[T]
}

// genericReclaimerHandle adapts any Reclaimer to ReclaimerHandle by routing
// every call through the tid-based interface (the compatibility path for
// reclaimers outside this module).
type genericReclaimerHandle[T any] struct {
	rec Reclaimer[T]
	tid int
}

func (g *genericReclaimerHandle[T]) LeaveQstate() bool   { return g.rec.LeaveQstate(g.tid) }
func (g *genericReclaimerHandle[T]) EnterQstate()        { g.rec.EnterQstate(g.tid) }
func (g *genericReclaimerHandle[T]) Retire(rec *T)       { g.rec.Retire(g.tid, rec) }
func (g *genericReclaimerHandle[T]) Protect(rec *T) bool { return g.rec.Protect(g.tid, rec) }
func (g *genericReclaimerHandle[T]) Unprotect(rec *T)    { g.rec.Unprotect(g.tid, rec) }
func (g *genericReclaimerHandle[T]) Checkpoint()         { g.rec.Checkpoint(g.tid) }

// genericPoolHandle adapts any Pool to PoolHandle.
type genericPoolHandle[T any] struct {
	pool Pool[T]
	tid  int
}

func (g *genericPoolHandle[T]) Allocate() *T { return g.pool.Allocate(g.tid) }
func (g *genericPoolHandle[T]) Free(rec *T)  { g.pool.Free(g.tid, rec) }

// ThreadHandle is one thread's pre-resolved view of a RecordManager. Obtain
// it once per worker with RecordManager.Handle(tid) — at registration, not
// per operation — and issue the hot-path primitives through it. All methods
// are owner-only (thread tid), like the tid-based calls they replace; the
// handle stays valid for the manager's lifetime.
type ThreadHandle[T any] struct {
	tid int
	m   *RecordManager[T]

	rec    Reclaimer[T]       // full interface, for the rare operations
	fast   ReclaimerHandle[T] // per-thread fast path (never nil)
	buf    *retireBuf[T]      // deferred-retire buffer; nil when batching is off
	pool   PoolHandle[T]      // pool fast path; nil when records are not reused
	alloc  Allocator[T]
	pinner RetirePinner // asserted once at construction, not per Retire

	perRecord     bool
	crashRecovery bool
}

// newHandle resolves thread tid's handle (see RecordManager.Handle).
func (m *RecordManager[T]) newHandle(tid int) ThreadHandle[T] {
	h := ThreadHandle[T]{
		tid:           tid,
		m:             m,
		rec:           m.reclaimer,
		alloc:         m.alloc,
		pinner:        m.pinner,
		perRecord:     m.perRecord,
		crashRecovery: m.crashRecovery,
	}
	if m.batch > 0 && tid < len(m.bufs) {
		h.buf = &m.bufs[tid]
	}
	// Only ask the scheme for a fast-path handle for the participant ids it
	// was built for (the in-module schemes back Handle with a fixed table
	// and would reject anything else); other ids get the tid-routing
	// adapter, whose calls fail exactly where the tid-based API would.
	if hr, ok := m.reclaimer.(HandledReclaimer[T]); ok && tid >= 0 && tid < len(m.handles) {
		h.fast = hr.Handle(tid)
	} else {
		h.fast = &genericReclaimerHandle[T]{rec: m.reclaimer, tid: tid}
	}
	if m.pool != nil {
		if hp, ok := m.pool.(HandledPool[T]); ok {
			h.pool = hp.Handle(tid)
		} else {
			h.pool = &genericPoolHandle[T]{pool: m.pool, tid: tid}
		}
	}
	return h
}

// Handle returns thread tid's pre-resolved fast-path view of the manager.
// For the dense ids the manager was constructed for this is a pointer into a
// prebuilt table (no allocation); other ids get a freshly built
// compatibility handle that routes through the tid-based interfaces — those
// calls fail for ids the scheme was not built for, exactly as the tid-based
// API always has. Resolve once at worker registration and reuse for the
// worker's lifetime.
//
// Handle is the static binding style: it permanently claims tid's slot in
// the manager's slot registry (a vacant slot is skipped by reclamation
// scans, which would be unsafe for a thread operating on it), so the slot is
// scanned forever — the fixed-Threads behaviour. Goroutines that come and go
// use AcquireHandle/ReleaseHandle instead.
func (m *RecordManager[T]) Handle(tid int) *ThreadHandle[T] {
	if tid >= 0 && tid < len(m.handles) {
		m.reg.EnsureStatic(tid)
		return &m.handles[tid]
	}
	h := m.newHandle(tid)
	return &h
}

// PeekHandle returns the same prebuilt handle as Handle without claiming the
// slot. It exists for data structure constructors that prebuild per-thread
// handle tables covering every slot: prebuilding must not mark slots
// occupied, or nothing would be left for AcquireHandle and reclamation scans
// could never skip anything. Any actual use of the returned handle must go
// through a claimed or acquired slot.
func (m *RecordManager[T]) PeekHandle(tid int) *ThreadHandle[T] {
	if tid >= 0 && tid < len(m.handles) {
		return &m.handles[tid]
	}
	h := m.newHandle(tid)
	return &h
}

// AcquireHandle binds the calling goroutine to a vacant worker slot and
// returns the slot's thread handle, re-initialised for its new owner. It is
// the dynamic binding style: goroutines that come and go acquire a slot for
// their working lifetime and release it with ReleaseHandle, so a server does
// not need to know its peak goroutine count per worker — only the capacity
// (recordmgr.Config.MaxThreads) of the manager. Panics when every slot is
// claimed or held; use TryAcquireHandle to handle exhaustion gracefully.
func (m *RecordManager[T]) AcquireHandle() *ThreadHandle[T] {
	h, ok := m.TryAcquireHandle()
	if !ok {
		panic("core: AcquireHandle: every worker slot is statically claimed or dynamically held (raise MaxThreads)")
	}
	return h
}

// TryAcquireHandle is AcquireHandle that reports exhaustion instead of
// panicking.
func (m *RecordManager[T]) TryAcquireHandle() (*ThreadHandle[T], bool) {
	tid, ok := m.reg.Acquire()
	if !ok {
		return nil, false
	}
	// Re-initialise the slot's table entry for its new owner. The previous
	// owner's release (free-list push) happens-before this pop, so the write
	// does not race its final reads; everything the handle caches is
	// per-slot state that survives reuse, but rebuilding keeps any handle
	// field ever added from leaking one owner's view to the next.
	m.handles[tid] = m.newHandle(tid)
	return &m.handles[tid], true
}

// ReleaseHandle returns an acquired slot to the registry for reuse. The
// contract mirrors the quiescent-retire fix: release is only legal from a
// quiescent, flushed state. The slot must be quiescent (EnterQstate has run
// and, for hazard pointers, every slot is released) — violations panic,
// because a vacant slot is skipped by reclamation scans and an active
// announcement left behind would be invisible. ReleaseHandle then drains the
// slot's deferred-retire buffer (under the scheme's retire pin, exactly like
// FlushRetired) and hands the slot's private pool cache back to the shared
// pool, so a reused tid starts from a fresh, empty state and records freed
// by the departed goroutine stay reusable by everyone.
func (m *RecordManager[T]) ReleaseHandle(h *ThreadHandle[T]) {
	if h == nil || h.m != m {
		panic("core: ReleaseHandle of a handle from a different manager")
	}
	tid := h.tid
	if !m.reclaimer.IsQuiescent(tid) {
		panic("core: ReleaseHandle from a non-quiescent slot; call EnterQstate (and release protections) first")
	}
	m.FlushRetired(tid)
	if d, ok := m.pool.(ThreadDrainer); ok {
		d.DrainThread(tid)
	}
	m.reg.Release(tid)
}

// Tid returns the dense thread id the handle is bound to.
func (h *ThreadHandle[T]) Tid() int { return h.tid }

// Manager returns the RecordManager the handle views.
func (h *ThreadHandle[T]) Manager() *RecordManager[T] { return h.m }

// NeedsPerRecordProtection mirrors RecordManager.NeedsPerRecordProtection.
func (h *ThreadHandle[T]) NeedsPerRecordProtection() bool { return h.perRecord }

// SupportsCrashRecovery mirrors RecordManager.SupportsCrashRecovery.
func (h *ThreadHandle[T]) SupportsCrashRecovery() bool { return h.crashRecovery }

// LeaveQstate marks the start of an operation by the handle's thread.
func (h *ThreadHandle[T]) LeaveQstate() bool { return h.fast.LeaveQstate() }

// EnterQstate marks the end of an operation by the handle's thread.
func (h *ThreadHandle[T]) EnterQstate() { h.fast.EnterQstate() }

// Checkpoint delivers a pending neutralization signal, if any (DEBRA+).
func (h *ThreadHandle[T]) Checkpoint() { h.fast.Checkpoint() }

// Protect announces that the thread may access rec (Reclaimer.Protect).
func (h *ThreadHandle[T]) Protect(rec *T) bool { return h.fast.Protect(rec) }

// Unprotect revokes a Protect.
func (h *ThreadHandle[T]) Unprotect(rec *T) { h.fast.Unprotect(rec) }

// RProtect announces a recovery protection (DEBRA+; recovery path, not hot).
func (h *ThreadHandle[T]) RProtect(rec *T) { h.rec.RProtect(h.tid, rec) }

// RUnprotectAll releases all recovery protections held by the thread.
func (h *ThreadHandle[T]) RUnprotectAll() { h.rec.RUnprotectAll(h.tid) }

// IsRProtected reports whether the thread holds a recovery protection of rec.
func (h *ThreadHandle[T]) IsRProtected(rec *T) bool { return h.rec.IsRProtected(h.tid, rec) }

// Allocate returns a record for the handle's thread, preferring the pool.
func (h *ThreadHandle[T]) Allocate() *T {
	if h.pool != nil {
		return h.pool.Allocate()
	}
	return h.alloc.Allocate(h.tid)
}

// Deallocate returns an unused (never inserted or already reclaimed) record
// to the pool or allocator (RecordManager.Deallocate).
func (h *ThreadHandle[T]) Deallocate(rec *T) {
	if h.pool != nil {
		h.pool.Free(rec)
		return
	}
	h.alloc.Deallocate(h.tid, rec)
}

// Retire hands a removed record to the reclaimer, exactly like
// RecordManager.Retire (safe from any same-thread context): with batching it
// is a buffer append with no interface call at all; without, the call goes
// through the scheme's per-thread fast path, pinned first when the thread is
// quiescent.
func (h *ThreadHandle[T]) Retire(rec *T) {
	if b := h.buf; b != nil {
		b.bag.Add(rec)
		b.pending.Inc()
		// The flush threshold is the buffer's limit cell, not a cached
		// constant: statically it never changes, and under an adaptive
		// controller the controller retunes it — an atomic load the thread's
		// own pending publish already paid for the line fill of.
		if b.pending.Load() >= b.limit.Load() {
			h.m.flushBuf(h.tid, b)
		}
		return
	}
	if h.pinner != nil && h.rec.IsQuiescent(h.tid) {
		h.pinner.PinRetire(h.tid)
		h.fast.Retire(rec)
		h.pinner.UnpinRetire(h.tid)
		return
	}
	h.fast.Retire(rec)
}

// FlushRetired hands every record parked in the thread's deferred-retire
// buffer to the reclaimer (RecordManager.FlushRetired).
func (h *ThreadHandle[T]) FlushRetired() {
	if h.buf != nil {
		h.m.flushBuf(h.tid, h.buf)
	}
}
