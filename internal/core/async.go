package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockbag"
)

// This file implements asynchronous reclamation: dedicated reclaimer
// goroutines that drain per-shard hand-off queues of retired blocks behind
// the workers, so the grace-period bookkeeping and the free hand-off happen
// off the workers' critical path. A worker's Retire becomes an O(1) append to
// its deferred-retire buffer plus, once per batch, an O(1) lock-free push of
// the detached blocks onto a hand-off queue.
//
// The reclaimer goroutines are first-class epoch participants: an
// AsyncReclaimer for w workers and r reclaimers requires the underlying
// scheme (and the allocator/pool behind it) to be constructed for w+r dense
// thread ids, and reclaimer i operates exclusively under tid w+i. Each drain
// cycle is a complete LeaveQstate / retire / EnterQstate operation on that
// tid, which is what makes handing another thread's retired records to an
// epoch scheme sound: the reclaimer's own active announcement pins the epoch
// exactly as a worker's would (see RetirePinner for why an unpinned retire is
// not), and the records land in the reclaimer tid's own limbo state, so no
// single-owner invariant is crossed. Idle reclaimers keep cycling
// pin/unpin — with backoff — while the scheme still holds limbo, because
// per-thread schemes (QSBR, DEBRA, DEBRA+) only rotate a tid's bags from that
// tid's own operation boundaries.
//
// Lifecycle: Close stops the goroutines (each performs a final drain of its
// queue before exiting), synchronously retires anything that raced into the
// queues afterwards, and leaves force-freeing the remaining limbo to the
// caller (RecordManager.Close follows with LimboDrainer.DrainLimbo). The
// shutdown ordering contract is: workers quiesce, buffers are flushed,
// reclaimers drain, then Close.

// DefaultAsyncReclaimers is the reclaimer-goroutine count selected by
// configuration layers when asynchronous reclamation is requested without an
// explicit count.
const DefaultAsyncReclaimers = 1

// spareCap bounds the spare-block return stack per hand-off queue; blocks
// beyond it are dropped to the garbage collector, exactly like a full
// per-thread BlockPool drops its overflow.
const spareCap = 16

// handoffQueue is one hand-off shard: a lock-free stack of detached blocks
// (full or partial) pushed by workers and drained by the shard's dedicated
// reclaimer goroutine, plus a capacity-1 wake token so an idle reclaimer
// blocks instead of polling, plus the return path — a bounded stack of
// emptied spare blocks the reclaimer hands back so the workers' retire
// buffers keep circulating existing blocks instead of allocating (the
// blockbag design's zero-allocation property, preserved across the
// asynchronous hand-off).
type handoffQueue[T any] struct {
	stack  blockbag.SharedStack[T]
	spares blockbag.SharedStack[T]
	wake   chan struct{}
	_      [PadBytes]byte
}

// AsyncReclaimer drains retired records behind a set of worker threads.
// Construct it through RecordManager's WithAsyncReclaim option (or directly
// with NewAsyncReclaimer for custom stacks); Enqueue is the worker-side
// hand-off, Close the deterministic shutdown.
type AsyncReclaimer[T any] struct {
	rec     Reclaimer[T]
	workers int
	queues  []handoffQueue[T]

	// active is the number of queues currently in the steady rotation:
	// Enqueue routes into queues [0, active) and goroutines with index >=
	// active park (no idle epoch cycling) until reactivated. Residue left
	// in a deactivated queue is drained by its parked goroutine on wake and
	// stolen by the active ones, so no chain is ever stranded by a scaling
	// decision. Written by SetActiveReclaimers (the adaptive Controller's
	// lever c), loaded on the worker-side hand-off — a hand-off already
	// pays a lock-free push, so one extra atomic load is noise there.
	active atomic.Int32

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// counts holds one padded single-writer counter pair per participant:
	// workers bump their enqueued cell from Enqueue, each reclaimer bumps its
	// drained cell from its own drain loop, and the pending hand-off backlog
	// is derived as sum(enqueued) - sum(drained) — so the worker-side
	// hand-off performs no atomic read-modify-write at all.
	counts []asyncCounters
}

// asyncCounters is one participant's hand-off statistics, padded so
// neighbouring single-writer cells do not share cache lines. stolen counts
// the records this reclaimer drained out of *other* queues (work stealing);
// those records are also counted in drained, so the pending derivation is
// unchanged.
type asyncCounters struct {
	enqueued Counter
	drained  Counter
	stolen   Counter
	_        [PadBytes]byte
}

// NewAsyncReclaimer spawns reclaimers dedicated goroutines draining retired
// blocks into rec under tids workers..workers+reclaimers-1. rec (and every
// per-thread component behind its free sink) must have been constructed for
// at least workers+reclaimers dense thread ids; when rec exposes a ShardMap
// this is verified at construction.
func NewAsyncReclaimer[T any](rec Reclaimer[T], workers, reclaimers int) *AsyncReclaimer[T] {
	if rec == nil {
		panic("core: NewAsyncReclaimer requires a Reclaimer")
	}
	if workers <= 0 || reclaimers <= 0 {
		panic("core: NewAsyncReclaimer requires workers >= 1 and reclaimers >= 1")
	}
	if sh, ok := rec.(Sharded); ok {
		if n := sh.ShardMap().Threads(); n < workers+reclaimers {
			panic(fmt.Sprintf("core: async reclamation needs %d participants (%d workers + %d reclaimers) but the reclaimer was built for %d threads",
				workers+reclaimers, workers, reclaimers, n))
		}
	}
	a := &AsyncReclaimer[T]{
		rec:     rec,
		workers: workers,
		queues:  make([]handoffQueue[T], reclaimers),
		counts:  make([]asyncCounters, workers+reclaimers),
		stop:    make(chan struct{}),
	}
	for i := range a.queues {
		a.queues[i].wake = make(chan struct{}, 1)
	}
	a.active.Store(int32(reclaimers))
	a.wg.Add(reclaimers)
	for i := 0; i < reclaimers; i++ {
		go a.run(i)
	}
	return a
}

// Reclaimers returns the number of reclaimer goroutines (the constructed
// pool size; ActiveReclaimers returns how many currently drain).
func (a *AsyncReclaimer[T]) Reclaimers() int { return len(a.queues) }

// ActiveReclaimers returns the number of reclaimer goroutines currently in
// the steady drain rotation.
func (a *AsyncReclaimer[T]) ActiveReclaimers() int { return int(a.active.Load()) }

// SetActiveReclaimers sets how many of the constructed reclaimer goroutines
// actively drain, clamped to [1, Reclaimers], and returns the applied
// value. Deactivated goroutines do not exit — they park on their wake
// channel (skipping the idle epoch-cycling that is the cost being saved)
// and still drain their own queue when woken, so a chain that raced into a
// deactivated queue is never stranded; active reclaimers additionally steal
// deactivated (and lagging) queues' backlogs. Safe to call at any time,
// including concurrently with Enqueue; the adaptive Controller is the
// expected caller.
func (a *AsyncReclaimer[T]) SetActiveReclaimers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > len(a.queues) {
		n = len(a.queues)
	}
	a.active.Store(int32(n))
	// Nudge every goroutine: newly deactivated ones re-check their index
	// and park, reactivated ones resume the drain loop, and active ones get
	// a chance to steal residue out of the queues that just lost their
	// dedicated drainer.
	for i := range a.queues {
		select {
		case a.queues[i].wake <- struct{}{}:
		default:
		}
	}
	return n
}

// activeQueues returns the current Enqueue routing width, defensively
// clamped so a torn or stale load can never index out of range.
func (a *AsyncReclaimer[T]) activeQueues() int {
	n := int(a.active.Load())
	if n < 1 || n > len(a.queues) {
		n = len(a.queues)
	}
	return n
}

// HandoffPending returns the number of records currently parked in hand-off
// queues (exact only when the pipeline is idle or closed, like the other
// snapshots): the enqueued records minus the drained ones. A chain mid-drain
// is counted as drained from the start of its drain cycle, so — exactly as
// before — it appears in neither this count nor the scheme's limbo for the
// duration of one cycle rather than in both.
func (a *AsyncReclaimer[T]) HandoffPending() int64 {
	n := a.Enqueued() - a.Drained()
	if n < 0 {
		// Counter snapshots are racy-but-coherent; a drain publishing before
		// the matching enqueue load lands reads as a transient negative.
		return 0
	}
	return n
}

// Enqueued returns the cumulative number of records handed off by workers.
func (a *AsyncReclaimer[T]) Enqueued() int64 {
	var n int64
	for i := range a.counts {
		n += a.counts[i].enqueued.Load()
	}
	return n
}

// Drained returns the cumulative number of records reclaimer goroutines have
// handed to the scheme (counted at the start of each drain cycle).
func (a *AsyncReclaimer[T]) Drained() int64 {
	var n int64
	for i := range a.counts {
		n += a.counts[i].drained.Load()
	}
	return n
}

// Enqueue hands a detached chain of retired blocks (full or partial) from
// worker tid to the reclamation pipeline. O(1) per block; lock-free; never
// touches the scheme, so it is safe from any context, quiescent included —
// this is what makes the worker-side retire hand-off contract-free.
func (a *AsyncReclaimer[T]) Enqueue(tid int, chain *blockbag.Block[T]) {
	if chain == nil {
		return
	}
	if a.closed.Load() {
		panic("core: AsyncReclaimer.Enqueue after Close (flush buffers before closing)")
	}
	if tid < 0 || tid >= len(a.counts) {
		// An unknown tid would have to drop its enqueued count (each cell is
		// single-writer), permanently skewing HandoffPending; the contract is
		// that Enqueue is called with a participant's dense id.
		panic(fmt.Sprintf("core: AsyncReclaimer.Enqueue with tid %d outside the %d participants", tid, len(a.counts)))
	}
	n := int64(blockbag.ChainLen(chain))
	q := &a.queues[tid%a.activeQueues()]
	a.counts[tid].enqueued.Add(n)
	q.stack.PushChain(chain)
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// TakeSpare returns an empty block from worker tid's hand-off shard's
// return stack, or nil when none is cached. Workers call it after an
// Enqueue to refill their retire-buffer block pools with the spares the
// reclaimers' scheme exchange handed back.
func (a *AsyncReclaimer[T]) TakeSpare(tid int) *blockbag.Block[T] {
	return a.queues[tid%a.activeQueues()].spares.Pop()
}

// Stolen returns the cumulative number of records drained out of a queue by
// a reclaimer other than the queue's own (work-stealing instrumentation;
// these records are included in Drained).
func (a *AsyncReclaimer[T]) Stolen() int64 {
	var n int64
	for i := range a.counts {
		n += a.counts[i].stolen.Load()
	}
	return n
}

// run is the body of reclaimer goroutine i, operating under its dedicated
// participant tid.
func (a *AsyncReclaimer[T]) run(i int) {
	defer a.wg.Done()
	q := &a.queues[i]
	rtid := a.workers + i
	// Idle backoff: when there is no queued work but the scheme still holds
	// limbo, keep performing pin/unpin cycles so grace periods advance and
	// this tid's bags rotate; back off exponentially while no progress is
	// observable (for example a leaking scheme, or a worker pinned mid-op).
	// rec.Stats() aggregates every participant's counters — cache lines the
	// measured workers are writing — so it is refreshed only every
	// statsRefreshEvery idle cycles while limbo is known positive; the
	// decision to BLOCK is always taken on a fresh read, so a stale zero can
	// never strand records.
	const minIdle, maxIdle = 20 * time.Microsecond, 2 * time.Millisecond
	const statsRefreshEvery = 16
	idle := minIdle
	limbo, staleFor := int64(0), 0
	// pool catches the spare blocks the scheme's RetireBlock exchange hands
	// back; drainChain returns them to the workers through q.spares.
	pool := blockbag.NewBlockPool[T](spareCap)
	// One reusable timer for the idle backoff (time.After would allocate a
	// timer per iteration, down to one per 20µs at minIdle).
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		if chain := q.stack.PopAll(); chain != nil {
			a.drainChain(q, rtid, chain, pool)
			idle = minIdle
			staleFor = 0 // our own retires grew the limbo; force a re-read
			continue
		}
		select {
		case <-a.stop:
			// Final deterministic drain: nothing new arrives for this queue
			// once Close has been observed here and workers have flushed.
			if chain := q.stack.PopAll(); chain != nil {
				a.drainChain(q, rtid, chain, pool)
			}
			// Park the remaining cached spares on the queue's return stack
			// (bounded) so Close can hand them back to the workers' retire
			// buffer pools instead of dropping them to the garbage collector.
			a.returnSpares(q, pool)
			return
		default:
		}
		if i >= int(a.active.Load()) {
			// Deactivated by the controller. The queue was just observed
			// empty (the PopAll above), new hand-offs route elsewhere, and a
			// racing Enqueue that still chose this queue re-arms the wake
			// token — so parking here, with no idle epoch cycling (that CPU
			// burn is exactly what scaling down saves), strands nothing.
			select {
			case <-q.wake:
				staleFor = 0
			case <-a.stop:
			}
			continue
		}
		// Own queue is empty: steal a lagging or deactivated queue's backlog
		// before falling into the idle path.
		if a.steal(q, rtid, pool) {
			idle = minIdle
			staleFor = 0
			continue
		}
		if staleFor <= 0 || limbo <= 0 {
			prev := limbo
			limbo = a.rec.Stats().Limbo
			staleFor = statsRefreshEvery
			if limbo != prev {
				idle = minIdle
			} else if idle *= 2; idle > maxIdle {
				idle = maxIdle
			}
		}
		staleFor--
		if limbo > 0 {
			a.cycle(rtid, nil, nil)
			timer.Reset(idle)
			select {
			case <-q.wake:
				timer.Stop()
				staleFor = 0
			case <-a.stop:
				timer.Stop()
			case <-timer.C:
			}
			continue
		}
		// limbo == 0 from a fresh read: nothing to push through; sleep until
		// a hand-off (or shutdown) arrives.
		select {
		case <-q.wake:
		case <-a.stop:
		}
		staleFor = 0
	}
}

// steal scans the other hand-off queues and drains the first backlog it
// finds under this reclaimer's own tid — sound for the same reason the
// ordinary drain is: the records land in the thief's pinned operation and
// the thief tid's limbo, crossing no single-owner invariant (SharedStack
// detach is lock-free, so thief and owner never block each other; at worst
// the owner wakes to an empty queue and re-parks). This is what keeps one
// lagging reclaimer — or a deactivated queue's residue — from backing up
// the whole pipeline. Spares from stolen chains refill the thief's own
// return stack.
func (a *AsyncReclaimer[T]) steal(own *handoffQueue[T], rtid int, pool *blockbag.BlockPool[T]) bool {
	if len(a.queues) == 1 {
		return false
	}
	for j := range a.queues {
		q := &a.queues[j]
		if q == own {
			continue
		}
		if chain := q.stack.PopAll(); chain != nil {
			a.counts[rtid].stolen.Add(int64(blockbag.ChainLen(chain)))
			a.drainChain(own, rtid, chain, pool)
			return true
		}
	}
	return false
}

// drainChain retires every record of a detached chain under rtid, one pinned
// operation per chain, and hands the spare blocks the scheme exchange
// returned back to the workers via the queue's bounded return stack. The
// drained counter is bumped up front, before the records land in the
// scheme's limbo counters: a chain mid-drain is therefore counted in
// neither bucket for the duration of one cycle (a transient undercount of
// Unreclaimed bounded by the in-flight chains) rather than in both — and
// exactly once whenever the pipeline is idle or closed, which is when the
// harnesses snapshot.
func (a *AsyncReclaimer[T]) drainChain(q *handoffQueue[T], rtid int, chain *blockbag.Block[T], pool *blockbag.BlockPool[T]) {
	n := int64(blockbag.ChainLen(chain))
	a.counts[rtid].drained.Add(n)
	a.cycle(rtid, chain, pool)
	if pool != nil {
		for q.spares.Blocks() < spareCap {
			blk := pool.TryGet()
			if blk == nil {
				break
			}
			q.spares.Push(blk)
		}
	}
}

// cycle performs one full operation boundary on rtid — LeaveQstate, an
// optional chain retire, EnterQstate — absorbing a neutralization delivery
// (DEBRA+ may signal a reclaimer that lags the epoch; the delivery marks the
// thread quiescent before unwinding, and a reclaimer holds no references and
// computes nothing from shared records, so there is nothing to recover).
func (a *AsyncReclaimer[T]) cycle(rtid int, chain *blockbag.Block[T], pool *blockbag.BlockPool[T]) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(interface{ NeutralizationSignal() }); ok && a.rec.IsQuiescent(rtid) {
				return
			}
			panic(v)
		}
	}()
	a.rec.LeaveQstate(rtid)
	if chain != nil {
		RetireChain(a.rec, rtid, chain, pool)
	}
	a.rec.EnterQstate(rtid)
}

// Close shuts the pipeline down deterministically: it stops the reclaimer
// goroutines (each drains its queue once more before exiting), then
// synchronously retires anything still queued. It does not force-free the
// scheme's limbo — callers that need Retired == Freed follow up with
// LimboDrainer.DrainLimbo once everything is quiescent, which is exactly what
// RecordManager.Close does. Contract: all workers have quiesced and flushed
// their deferred-retire buffers before Close; Close is idempotent.
func (a *AsyncReclaimer[T]) Close() {
	if !a.closed.CompareAndSwap(false, true) {
		return
	}
	close(a.stop)
	a.wg.Wait()
	pool := blockbag.NewBlockPool[T](spareCap)
	for i := range a.queues {
		// The exchange spares from this final drain go onto the queues'
		// return stacks like the steady-state ones; RecordManager.Close
		// collects them back into the workers' retire-buffer block pools via
		// DrainSpares (they used to be dropped to the garbage collector).
		if chain := a.queues[i].stack.PopAll(); chain != nil {
			a.drainChain(&a.queues[i], a.workers+i, chain, pool)
		}
		a.returnSpares(&a.queues[i], pool)
	}
}

// returnSpares moves every block cached in pool onto q's bounded spare
// return stack; blocks beyond the bound stay in the (discarded) pool.
func (a *AsyncReclaimer[T]) returnSpares(q *handoffQueue[T], pool *blockbag.BlockPool[T]) {
	if pool == nil {
		return
	}
	for q.spares.Blocks() < spareCap {
		blk := pool.TryGet()
		if blk == nil {
			return
		}
		q.spares.Push(blk)
	}
}

// SpareBlocks returns the number of empty exchange blocks currently parked
// on the queues' spare-return stacks (instrumentation for the leak tests).
func (a *AsyncReclaimer[T]) SpareBlocks() int64 {
	var n int64
	for i := range a.queues {
		n += a.queues[i].spares.Blocks()
	}
	return n
}

// DrainSpares pops every parked spare block and hands it to fn.
// RecordManager.Close uses it to return the reclaimers' emptied exchange
// blocks to the workers' retire-buffer block pools at shutdown, closing the
// last gap in the blockbag design's block-circulation property.
func (a *AsyncReclaimer[T]) DrainSpares(fn func(*blockbag.Block[T])) {
	for i := range a.queues {
		for {
			blk := a.queues[i].spares.Pop()
			if blk == nil {
				break
			}
			fn(blk)
		}
	}
}
