package core

import (
	"fmt"
	"strings"
)

// Progress classifies the termination guarantee of a scheme's memory
// reclamation procedures (last-but-one row of the paper's Figure 2).
type Progress int

// Progress values, ordered roughly from weakest to strongest.
const (
	// ProgressBlocking means a crashed process can block reclamation code
	// of other processes (e.g. ThreadScan's global lock + acknowledgments).
	ProgressBlocking Progress = iota
	// ProgressLockFree means reclamation procedures are lock-free.
	ProgressLockFree
	// ProgressLockFreeConditional means lock-free only under an extra
	// assumption (e.g. QSense's rooster processes never crash).
	ProgressLockFreeConditional
	// ProgressWaitFree means reclamation procedures are wait-free.
	ProgressWaitFree
	// ProgressWaitFreeSignal means wait-free provided the operating
	// system's signalling mechanism is wait-free (DEBRA+).
	ProgressWaitFreeSignal
)

// String implements fmt.Stringer.
func (p Progress) String() string {
	switch p {
	case ProgressBlocking:
		return "Blocking"
	case ProgressLockFree:
		return "L"
	case ProgressLockFreeConditional:
		return "L (conditional)"
	case ProgressWaitFree:
		return "W"
	case ProgressWaitFreeSignal:
		return "W (signal)"
	default:
		return fmt.Sprintf("Progress(%d)", int(p))
	}
}

// Properties records the qualitative characteristics of a reclamation scheme
// that the paper tabulates in Figure 2, plus two flags this reproduction
// needs at runtime (PerRecordProtection, UsesPool).
type Properties struct {
	// Scheme is the display name used in the Figure 2 table ("DEBRA+").
	Scheme string

	// Necessary code modifications (Figure 2, first block of rows).
	ModPerAccessedRecord bool   // code required per record accessed
	ModPerOperation      bool   // code required per operation
	ModPerRetiredRecord  bool   // code required per retired record
	ModOther             string // other modifications ("write recovery code", ...)

	// TimingAssumptions notes special timing assumptions: "" (none),
	// "for progress" (ThreadScan) or "for correctness" (QSense).
	TimingAssumptions string

	// FaultTolerant reports whether crashed processes can only prevent a
	// bounded number of records from being reclaimed.
	FaultTolerant bool

	// Termination is the progress guarantee of the reclamation procedures.
	Termination Progress

	// TraverseRetiredToRetired reports whether the scheme supports data
	// structures in which an operation can traverse a pointer from a
	// retired record to another retired record (the property that rules
	// out HP, ThreadScan and StackTrack for many natural structures).
	TraverseRetiredToRetired bool

	// BoundedGarbage reports whether the number of retired-but-unfreed
	// records is bounded (O(mn^2) for DEBRA+ and HP; unbounded for EBR and
	// DEBRA when a thread stalls mid-operation).
	BoundedGarbage bool

	// PerRecordProtection tells data structures whether they must invoke
	// Protect (and validate) for every record they access. It is the
	// runtime analogue of compiling the data structure against an HP-style
	// reclaimer; epoch-based schemes set it to false so the calls are
	// skipped entirely.
	PerRecordProtection bool
}

// FigureTwoHeader returns the column headers of the Figure 2 comparison
// table rendered by RenderFigureTwo.
func FigureTwoHeader() []string {
	return []string{
		"scheme",
		"per accessed record",
		"per operation",
		"per retired record",
		"other modifications",
		"timing assumptions",
		"fault tolerant",
		"termination",
		"retired->retired traversal",
		"bounded garbage",
	}
}

// Row renders the Properties as one row of the Figure 2 table.
func (p Properties) Row() []string {
	check := func(b bool) string {
		if b {
			return "X"
		}
		return ""
	}
	other := p.ModOther
	if other == "" {
		other = "-"
	}
	timing := p.TimingAssumptions
	if timing == "" {
		timing = "-"
	}
	return []string{
		p.Scheme,
		check(p.ModPerAccessedRecord),
		check(p.ModPerOperation),
		check(p.ModPerRetiredRecord),
		other,
		timing,
		check(p.FaultTolerant),
		p.Termination.String(),
		check(p.TraverseRetiredToRetired),
		check(p.BoundedGarbage),
	}
}

// RenderFigureTwo renders an aligned, plain-text version of the paper's
// Figure 2 for the given schemes.
func RenderFigureTwo(props []Properties) string {
	rows := [][]string{FigureTwoHeader()}
	for _, p := range props {
		rows = append(rows, p.Row())
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// ReferenceProperties returns Figure 2 rows for the schemes surveyed in the
// paper that this module does not implement (RC, B&C, TS, DTA, QS, OA), so
// cmd/schemes can reproduce the complete table. Implemented schemes report
// their own Properties via Reclaimer.Props.
func ReferenceProperties() []Properties {
	return []Properties{
		{
			Scheme:                   "RC",
			ModPerAccessedRecord:     true,
			ModPerRetiredRecord:      true,
			ModOther:                 "break pointer cycles",
			FaultTolerant:            true,
			Termination:              ProgressLockFree,
			TraverseRetiredToRetired: true,
			BoundedGarbage:           true,
		},
		{
			Scheme:               "B&C",
			ModPerAccessedRecord: true,
			ModPerRetiredRecord:  true,
			ModOther:             "recovery when HP acquisition fails; replace retired->retired pointers",
			FaultTolerant:        true,
			Termination:          ProgressLockFree,
			// B&C's whole point is allowing HPs to retired records.
			TraverseRetiredToRetired: true,
			BoundedGarbage:           true,
		},
		{
			Scheme:              "TS",
			ModPerRetiredRecord: true,
			TimingAssumptions:   "for progress",
			Termination:         ProgressBlocking,
			BoundedGarbage:      true,
		},
		{
			Scheme:               "DTA",
			ModPerAccessedRecord: true,
			ModPerOperation:      true,
			ModPerRetiredRecord:  true,
			ModOther:             "integrate crash recovery with list synchronisation (lists only)",
			FaultTolerant:        true,
			Termination:          ProgressLockFree,
			BoundedGarbage:       true,
		},
		{
			Scheme:               "QS",
			ModPerAccessedRecord: true,
			ModPerOperation:      true,
			ModPerRetiredRecord:  true,
			TimingAssumptions:    "for correctness",
			FaultTolerant:        true,
			Termination:          ProgressLockFreeConditional,
			BoundedGarbage:       true,
		},
		{
			Scheme:               "OA",
			ModPerAccessedRecord: true,
			ModPerOperation:      true,
			ModPerRetiredRecord:  true,
			ModOther:             "normalized form; instrument every read, write and CAS",
			FaultTolerant:        true,
			Termination:          ProgressLockFree,
			BoundedGarbage:       true,
		},
	}
}
