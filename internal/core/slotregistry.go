package core

import (
	"fmt"
	"sync/atomic"
)

// This file implements the dynamic thread-slot registry: the layer that
// refactors the fixed-Threads contract out of the Record Manager stack. The
// schemes, pool, allocator and handle tables are still sized once, at
// construction, for a fixed capacity of dense thread ids — that is what makes
// their per-thread state a flat padded array with no indirection on the hot
// path — but which goroutine owns which id is no longer wired by hand:
// slots are acquired and released at runtime through a lock-free free list,
// and per-shard occupancy summary words let the schemes' announcement scans
// skip slots nobody currently owns.
//
// # Slot states and the two binding styles
//
// Every worker slot is in one of three states:
//
//   - vacant: unowned. A vacant slot is quiescent by construction (see the
//     release contract below), so reclamation scans may skip it.
//   - dynamic: owned by a goroutine that called Acquire; Release returns it
//     to the free list for reuse.
//   - static: permanently claimed by the legacy dense-tid wiring. The first
//     RecordManager.Handle(tid) (or data structure tid-method) touch of a
//     slot claims it; it is never released and is scanned forever — exactly
//     the fixed-Threads behaviour every existing caller relies on.
//
// The two styles compose on one manager (static claims simply remove slots
// from the acquirable pool), but a single tid must not be used both ways at
// once: Acquire never hands out a statically claimed slot, and a static
// claim of a dynamically held slot is the caller wiring two goroutines to
// one tid — the same misuse the fixed-Threads contract always had.
//
// # Why skipping a vacant slot is safe
//
// A slot only becomes vacant through Release, whose caller (the Record
// Manager) requires the slot to be quiescent and its retire buffer drained
// first — so a vacant slot has no active announcement, no hazard pointers
// and no parked retirements, and treating it as quiescent is not an
// approximation but the truth. The remaining race — a scanner reads the slot
// as vacant while another goroutine concurrently acquires it and announces —
// is exactly the classic quiescent-thread-wakes-during-scan race every epoch
// scheme already tolerates: the waking thread announces the *current* epoch
// (and a hazard-pointer protect must still validate reachability), so the
// scanner's verdict was correct at the instant it read the summary, which is
// all the advance argument needs. Occupancy is published with sequentially
// consistent atomics: the acquirer's occupancy store precedes every
// announcement it can make, so a scanner that misses the occupancy saw the
// slot before it could have been anything but quiescent.
//
// # Why a reused slot cannot inherit a stale announcement
//
// Release requires quiescence (the epoch/HP announcement is already
// withdrawn, enforced with a panic — the same contract family as the
// quiescent-retire fix) and drains the slot's deferred-retire buffer under
// the scheme's retire pin before the slot is pushed onto the free list. The
// free-list push/pop CAS pair is the happens-before edge to the next
// acquirer, so by the time Acquire returns the tid, its last announcement is
// visibly quiescent and its buffers are empty: the new owner starts from the
// same state a freshly constructed thread slot has.

// Slot states (the values of a slot's state word).
const (
	slotVacant  int32 = iota // unowned; scans may skip it
	slotDynamic              // owned via Acquire; Release returns it
	slotStatic               // permanently claimed by dense-tid wiring
)

// slotState is one slot's registry state, padded so the state words of
// neighbouring slots (written on acquire/release, read by scanners) do not
// share cache lines.
type slotState struct {
	// state is the slot's occupancy word (slotVacant/slotDynamic/slotStatic).
	state atomic.Int32
	// next is the slot's free-list link: the (index+1) of the next free slot,
	// 0 for end-of-list. Written by the pusher before the head CAS publishes
	// it; a stale read is caught by the head's tag.
	next atomic.Uint32
	_    [PadBytes]byte
}

// shardOcc is one shard's occupancy summary word: the number of registry
// slots in the shard that are currently occupied (dynamic or static), padded
// onto its own cache lines. extra counts the shard's members that are not
// registry slots at all (async reclaimer tids) and is immutable after
// construction; the shard's live count is occ + extra.
type shardOcc struct {
	occ   atomic.Int64
	extra int64
	_     [PadBytes]byte
}

// freeHead is one shard's free-list head word, padded so neighbouring
// shards' heads (CASed on every acquire/release in that shard) do not share
// cache lines. The low 32 bits hold (index+1) of the top slot (0 = empty),
// the high 32 bits a tag bumped by every successful CAS, which defeats ABA
// on the Treiber stack.
type freeHead struct {
	head atomic.Uint64
	_    [PadBytes]byte
}

// SlotRegistry hands out dense thread ids ("slots") in [0, Capacity()) at
// runtime: Acquire pops a vacant slot from a lock-free free list, Release
// returns it. All methods are safe for concurrent use. The registry is the
// mechanism only — the safety half of the release contract (quiescence,
// drained buffers) is enforced by RecordManager.ReleaseHandle, which is the
// entry point applications use.
//
// # Per-shard free lists and the effective shard count
//
// The free list is partitioned by shard (one Treiber stack per shard of the
// attached ShardMap; a single stack when there is none): a slot is pushed to
// and popped from its home shard's list only, so slots never migrate between
// lists. Acquire prefers the shards below the registry's *effective* shard
// count — a runtime lever (SetEffectiveShards) the adaptive Controller moves
// with live occupancy — and falls back to the remaining shards only when the
// preferred ones are exhausted, so shrinking the effective count concentrates
// placement (and therefore the schemes' announcement scans) on a prefix of
// the shards without ever stranding capacity. Correctness does not depend on
// the effective count at all: it biases placement, while the scan paths keep
// working off the per-shard occupancy summaries exactly as before.
type SlotRegistry struct {
	capacity int
	smap     *ShardMap // nil when the reclaimer exposes no shard map

	// heads is one free-list head per shard (length 1 when smap is nil);
	// homes maps a slot to its immutable free-list index.
	heads []freeHead
	homes []int

	// effective is the number of preferred shards: Acquire scans the free
	// lists of shards [0, effective) first. Always in [1, len(heads)].
	effective atomic.Int32

	slots  []slotState
	shards []shardOcc // nil when smap is nil
}

// NewSlotRegistry creates a registry for capacity worker slots. smap, when
// non-nil, is the reclaimer's shard map; the registry then maintains one
// occupancy summary word and one free list per shard (members of the map
// beyond the registry's capacity — async reclaimer tids — count as
// permanently occupied). All slots start vacant, with each shard's free list
// ordered ascending and every shard effective, so the first Acquire returns
// slot 0 — the dense-id habit everything downstream relies on.
func NewSlotRegistry(capacity int, smap *ShardMap) *SlotRegistry {
	if capacity <= 0 {
		panic("core: NewSlotRegistry requires capacity >= 1")
	}
	lists := 1
	if smap != nil {
		lists = smap.Shards()
	}
	r := &SlotRegistry{
		capacity: capacity,
		smap:     smap,
		heads:    make([]freeHead, lists),
		homes:    make([]int, capacity),
		slots:    make([]slotState, capacity),
	}
	if smap != nil {
		for i := 0; i < capacity; i++ {
			r.homes[i] = smap.ShardOf(i)
		}
	}
	r.effective.Store(int32(lists))
	// Build the initial free lists in descending push order so pops come out
	// ascending within each shard (slot 0 first in shard 0), matching the
	// dense-id habits of everything downstream (shard placement, NUMA
	// pinning, test expectations).
	for i := capacity - 1; i >= 0; i-- {
		r.pushFree(i)
	}
	if smap != nil {
		r.shards = make([]shardOcc, smap.Shards())
		for s := range r.shards {
			for _, m := range smap.Members(s) {
				if m >= capacity {
					r.shards[s].extra++
				}
			}
		}
	}
	return r
}

// Capacity returns the number of worker slots the registry manages.
func (r *SlotRegistry) Capacity() int { return r.capacity }

// Shards returns the number of per-shard free lists (1 without a shard map).
func (r *SlotRegistry) Shards() int { return len(r.heads) }

// EffectiveShards returns the current number of preferred shards: Acquire
// places new bindings into shards [0, EffectiveShards()) while they have
// vacancies. Equal to Shards() unless SetEffectiveShards shrank it.
func (r *SlotRegistry) EffectiveShards() int { return int(r.effective.Load()) }

// SetEffectiveShards sets the number of preferred shards, clamped to
// [1, Shards()], and returns the applied value. It is a placement bias, not
// a capacity limit: slots homed beyond the effective prefix remain
// acquirable through Acquire's fallback pass, and slots already held there
// are untouched — so the adaptive Controller may shrink and grow the value
// concurrently with Acquire/Release traffic without any coordination.
func (r *SlotRegistry) SetEffectiveShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > len(r.heads) {
		n = len(r.heads)
	}
	r.effective.Store(int32(n))
	return n
}

// pushFree pushes slot i onto its home shard's free list.
func (r *SlotRegistry) pushFree(i int) {
	h := &r.heads[r.homes[i]].head
	for {
		old := h.Load()
		r.slots[i].next.Store(uint32(old))
		next := (old>>32+1)<<32 | uint64(uint32(i+1))
		if h.CompareAndSwap(old, next) {
			return
		}
	}
}

// popFree pops a slot from shard list l; ok is false when the list is
// empty. Lock-free: a CAS failure means another pop or push won, and the
// tag in the head word rules out ABA against a concurrently recycled slot.
func (r *SlotRegistry) popFree(l int) (int, bool) {
	h := &r.heads[l].head
	for {
		old := h.Load()
		idx := int(uint32(old)) - 1
		if idx < 0 {
			return -1, false
		}
		link := uint64(r.slots[idx].next.Load())
		next := (old>>32+1)<<32 | uint64(uint32(link))
		if h.CompareAndSwap(old, next) {
			return idx, true
		}
	}
}

// noteOccupied bumps the occupancy summary of tid's shard.
func (r *SlotRegistry) noteOccupied(tid int) {
	if r.shards != nil {
		r.shards[r.smap.ShardOf(tid)].occ.Add(1)
	}
}

// noteVacant drops the occupancy summary of tid's shard.
func (r *SlotRegistry) noteVacant(tid int) {
	if r.shards != nil {
		r.shards[r.smap.ShardOf(tid)].occ.Add(-1)
	}
}

// Acquire pops a vacant slot and marks it dynamically owned, returning its
// dense tid. ok is false when every slot is statically claimed or
// dynamically held. The occupancy summary is published before Acquire
// returns, so the slot is visible to scanners before its new owner can
// announce anything.
//
// Placement: the shards below the effective count are scanned first (in
// ascending order, so low tids are preferred — the dense-id habit), the
// remaining shards only as a fallback, which is what lets the adaptive
// Controller concentrate live slots on a shard prefix without making any
// slot unacquirable. The multi-list scan is not one atomic snapshot, but it
// stays linearizable: slots never migrate between lists, so a scan that
// finds every list empty while a concurrent Release pushes is
// indistinguishable from the Acquire having run entirely before the Release.
func (r *SlotRegistry) Acquire() (int, bool) {
	eff := int(r.effective.Load())
	if eff < 1 || eff > len(r.heads) {
		eff = len(r.heads)
	}
	for pass := 0; pass < 2; pass++ {
		lo, hi := 0, eff
		if pass == 1 {
			lo, hi = eff, len(r.heads)
		}
		for l := lo; l < hi; l++ {
			for {
				idx, ok := r.popFree(l)
				if !ok {
					break
				}
				if r.slots[idx].state.CompareAndSwap(slotVacant, slotDynamic) {
					r.noteOccupied(idx)
					return idx, true
				}
				// The slot was claimed statically while parked on the free
				// list; a static claim is permanent, so drop it and keep
				// popping.
			}
		}
	}
	return -1, false
}

// Release marks a dynamically acquired slot vacant and returns it to the
// free list. It panics when tid is not currently dynamically held — a
// double release, or a release of a statically wired tid. The caller
// (RecordManager.ReleaseHandle) has already verified quiescence and drained
// the slot's buffers; after the push the slot is immediately reusable.
func (r *SlotRegistry) Release(tid int) {
	if tid < 0 || tid >= r.capacity {
		panic(fmt.Sprintf("core: SlotRegistry.Release(%d) out of range [0,%d)", tid, r.capacity))
	}
	if !r.slots[tid].state.CompareAndSwap(slotDynamic, slotVacant) {
		panic(fmt.Sprintf("core: SlotRegistry.Release(%d): slot is not dynamically held (double release, or a statically wired tid)", tid))
	}
	r.noteVacant(tid)
	r.pushFree(tid)
}

// EnsureStatic permanently claims tid for static dense-id wiring if it is
// still vacant; a slot already owned (statically or dynamically) is left
// untouched. Out-of-range tids (async reclaimer participants) are no-ops.
// The fast path is one atomic load and a predicted branch, cheap enough for
// the tid-based compatibility wrappers to call on every operation.
func (r *SlotRegistry) EnsureStatic(tid int) {
	if tid < 0 || tid >= r.capacity {
		return
	}
	if r.slots[tid].state.Load() != slotVacant {
		return
	}
	if r.slots[tid].state.CompareAndSwap(slotVacant, slotStatic) {
		r.noteOccupied(tid)
	}
	// A statically claimed slot stays on the free list until an Acquire pops
	// and discards it; the state word is what makes it unacquirable.
}

// Occupied reports whether tid is currently owned (statically or
// dynamically). Tids beyond the registry's capacity — async reclaimer
// participants — are always occupied.
func (r *SlotRegistry) Occupied(tid int) bool {
	if tid < 0 || tid >= r.capacity {
		return true
	}
	return r.slots[tid].state.Load() != slotVacant
}

// shardLive returns the number of occupied members of shard s (registry
// slots plus the shard's permanent non-registry members).
func (r *SlotRegistry) shardLive(s int) int64 {
	return r.shards[s].occ.Load() + r.shards[s].extra
}

// Live returns the number of currently occupied slots (instrumentation).
func (r *SlotRegistry) Live() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].state.Load() != slotVacant {
			n++
		}
	}
	return n
}
