package core

// PadBytes is the number of padding bytes appended to per-thread slots of
// shared arrays to keep them on separate cache lines (two lines, to defeat
// adjacent-line prefetching). Getting this wrong only costs performance,
// never correctness.
const PadBytes = 128
