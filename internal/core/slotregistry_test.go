package core_test

// Tests for the dynamic thread-slot registry: the lock-free free list, the
// static/dynamic claim interplay, the per-shard occupancy summaries, and the
// Record Manager's acquire/release contract — including the headline
// regression that releasing a non-quiescent slot panics (the slot-registry
// sibling of the quiescent-retire contract).

import (
	"sync"
	"testing"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/reclaim/hp"
)

func TestSlotRegistryAcquireRelease(t *testing.T) {
	r := core.NewSlotRegistry(3, nil)
	if r.Capacity() != 3 {
		t.Fatalf("Capacity = %d want 3", r.Capacity())
	}
	// Slots come out dense and ascending.
	for want := 0; want < 3; want++ {
		tid, ok := r.Acquire()
		if !ok || tid != want {
			t.Fatalf("Acquire #%d = (%d, %v) want (%d, true)", want, tid, ok, want)
		}
		if !r.Occupied(tid) {
			t.Fatalf("slot %d not occupied after Acquire", tid)
		}
	}
	if _, ok := r.Acquire(); ok {
		t.Fatal("Acquire succeeded beyond capacity")
	}
	if r.Live() != 3 {
		t.Fatalf("Live = %d want 3", r.Live())
	}
	r.Release(1)
	if r.Occupied(1) {
		t.Fatal("slot 1 still occupied after Release")
	}
	if tid, ok := r.Acquire(); !ok || tid != 1 {
		t.Fatalf("re-Acquire = (%d, %v) want (1, true)", tid, ok)
	}
	// Double release and foreign release panic.
	r.Release(2)
	if !panics(func() { r.Release(2) }) {
		t.Fatal("double Release did not panic")
	}
	if !panics(func() { r.Release(99) }) {
		t.Fatal("out-of-range Release did not panic")
	}
}

func TestSlotRegistryStaticClaim(t *testing.T) {
	r := core.NewSlotRegistry(3, nil)
	r.EnsureStatic(0)
	r.EnsureStatic(0) // idempotent
	if !r.Occupied(0) {
		t.Fatal("slot 0 not occupied after EnsureStatic")
	}
	// Acquire skips the statically claimed slot.
	if tid, ok := r.Acquire(); !ok || tid == 0 {
		t.Fatalf("Acquire = (%d, %v); must skip the static slot 0", tid, ok)
	}
	if tid, ok := r.Acquire(); !ok || tid == 0 {
		t.Fatalf("Acquire = (%d, %v); must skip the static slot 0", tid, ok)
	}
	if _, ok := r.Acquire(); ok {
		t.Fatal("Acquire succeeded with every slot claimed or held")
	}
	// A static claim is permanent: Release rejects it.
	if !panics(func() { r.Release(0) }) {
		t.Fatal("Release of a statically claimed slot did not panic")
	}
	// EnsureStatic of a dynamically held slot is a no-op, not a takeover.
	r.EnsureStatic(1)
	r.Release(1) // still dynamically held, so this must succeed
	// Out-of-range tids (async reclaimer participants) are always occupied.
	if !r.Occupied(17) {
		t.Fatal("out-of-range tid not reported occupied")
	}
	r.EnsureStatic(17) // must not panic
}

func TestSlotRegistryShardOccupancy(t *testing.T) {
	// 4 worker slots + 2 permanent (reclaimer-style) members over 2 shards.
	smap := core.NewShardMap(6, core.ShardSpec{Shards: 2})
	r := core.NewSlotRegistry(4, smap)
	smap.AttachRegistry(r)
	// Block placement: shard 0 = {0,1,2}, shard 1 = {3,4,5}; tids 4 and 5
	// are beyond the registry and count as permanently live in shard 1.
	if got := smap.ShardLive(0); got != 0 {
		t.Fatalf("shard 0 live = %d want 0", got)
	}
	if got := smap.ShardLive(1); got != 2 {
		t.Fatalf("shard 1 live = %d want 2 (permanent members)", got)
	}
	tid, _ := r.Acquire() // slot 0, shard 0
	if got := smap.ShardLive(0); got != 1 {
		t.Fatalf("shard 0 live = %d want 1 after acquire", got)
	}
	if smap.SlotOccupied(1) {
		t.Fatal("slot 1 occupied before any claim")
	}
	r.EnsureStatic(3) // shard 1
	if got := smap.ShardLive(1); got != 3 {
		t.Fatalf("shard 1 live = %d want 3 after static claim", got)
	}
	r.Release(tid)
	if got := smap.ShardLive(0); got != 0 {
		t.Fatalf("shard 0 live = %d want 0 after release", got)
	}
	// A map without a registry reports occupancy unknown/occupied.
	bare := core.NewShardMap(2, core.ShardSpec{})
	if bare.ShardLive(0) != -1 || !bare.SlotOccupied(0) {
		t.Fatal("registry-less map must report unknown occupancy")
	}
}

// TestSlotRegistryConcurrentChurn hammers the free list from many goroutines
// and asserts mutual exclusion: no slot is ever held by two goroutines at
// once. Run under -race in CI.
func TestSlotRegistryConcurrentChurn(t *testing.T) {
	const (
		capacity   = 8
		goroutines = 16
		iters      = 2000
	)
	r := core.NewSlotRegistry(capacity, nil)
	owners := make([]int32, capacity) // 0 = free, else goroutine id+1
	var mu sync.Mutex                 // guards owners; the registry is what's under test
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, ok := r.Acquire()
				if !ok {
					continue // capacity oversubscribed by design
				}
				mu.Lock()
				if owners[tid] != 0 {
					mu.Unlock()
					t.Errorf("slot %d acquired by goroutine %d while held by %d", tid, g+1, owners[tid])
					return
				}
				owners[tid] = int32(g + 1)
				mu.Unlock()

				mu.Lock()
				owners[tid] = 0
				mu.Unlock()
				r.Release(tid)
			}
		}(g)
	}
	wg.Wait()
	if r.Live() != 0 {
		t.Fatalf("Live = %d after all goroutines released", r.Live())
	}
}

// TestSlotRegistryReleaseVsResize interleaves Release (and Acquire) traffic
// with concurrent SetEffectiveShards churn — the adaptive controller's
// shard lever moving while workers come and go. The ordering property under
// test: a release pushes the slot onto its HOME shard's free list no matter
// what the effective count is at that instant, and Acquire's fallback pass
// covers the shards beyond the effective prefix — so a shrink decision can
// never strand a slot or lose one. Run under -race in CI.
func TestSlotRegistryReleaseVsResize(t *testing.T) {
	const (
		capacity   = 16
		shards     = 4
		goroutines = 8
		iters      = 2000
	)
	smap := core.NewShardMap(capacity, core.ShardSpec{Shards: shards})
	r := core.NewSlotRegistry(capacity, smap)
	smap.AttachRegistry(r)

	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if got := r.SetEffectiveShards(1 + i%shards); got != 1+i%shards {
				t.Errorf("SetEffectiveShards(%d) applied %d", 1+i%shards, got)
				return
			}
		}
	}()

	owners := make([]int32, capacity)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, ok := r.Acquire()
				if !ok {
					// capacity >= goroutines and slots are never stranded, so
					// exhaustion here would be exactly the lost-slot bug.
					t.Errorf("goroutine %d: Acquire failed with %d slots for %d goroutines", g, capacity, goroutines)
					return
				}
				mu.Lock()
				if owners[tid] != 0 {
					mu.Unlock()
					t.Errorf("slot %d acquired by goroutine %d while held by %d", tid, g+1, owners[tid])
					return
				}
				owners[tid] = int32(g + 1)
				mu.Unlock()
				if eff := r.EffectiveShards(); eff < 1 || eff > shards {
					t.Errorf("EffectiveShards = %d outside [1, %d]", eff, shards)
					return
				}
				mu.Lock()
				owners[tid] = 0
				mu.Unlock()
				r.Release(tid)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	resizer.Wait()
	if t.Failed() {
		return
	}

	if got := r.Live(); got != 0 {
		t.Fatalf("Live = %d after all goroutines released, want 0", got)
	}
	// With the effective count pinned at 1, every slot — including those
	// homed in shards the prefix no longer prefers — must still come back
	// through the fallback pass: releases under a shrunken prefix did not
	// strand anything.
	r.SetEffectiveShards(1)
	seen := make(map[int]bool)
	for i := 0; i < capacity; i++ {
		tid, ok := r.Acquire()
		if !ok {
			t.Fatalf("re-Acquire #%d failed: a slot was stranded by the resize churn", i)
		}
		if seen[tid] {
			t.Fatalf("slot %d handed out twice", tid)
		}
		seen[tid] = true
	}
	total := 0
	for s := 0; s < shards; s++ {
		live := smap.ShardLive(s)
		if live < 0 || live > len(smap.Members(s)) {
			t.Fatalf("shard %d live = %d outside [0, %d]", s, live, len(smap.Members(s)))
		}
		total += live
	}
	if total != capacity {
		t.Fatalf("occupancy summaries total %d with every slot held, want %d", total, capacity)
	}
}

// TestShardMapOccupancyUnderChurn hammers acquire/release churn while
// reader goroutines continuously poll ShardMap.SlotOccupied and ShardLive —
// the controller's input signal and the schemes' scan-skip predicate. The
// summaries may lag individual transitions but must stay within [0,
// members] per shard, and must be exact once the churn quiesces. Run under
// -race in CI.
func TestShardMapOccupancyUnderChurn(t *testing.T) {
	const (
		capacity   = 8
		shards     = 2
		goroutines = 4
		iters      = 2000
	)
	smap := core.NewShardMap(capacity, core.ShardSpec{Shards: shards})
	r := core.NewSlotRegistry(capacity, smap)
	smap.AttachRegistry(r)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for s := 0; s < shards; s++ {
					if live := smap.ShardLive(s); live < 0 || live > len(smap.Members(s)) {
						t.Errorf("shard %d live = %d outside [0, %d]", s, live, len(smap.Members(s)))
						return
					}
				}
				for tid := 0; tid < capacity; tid++ {
					smap.SlotOccupied(tid) // either answer is legal mid-churn
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, ok := r.Acquire()
				if !ok {
					continue
				}
				if !smap.SlotOccupied(tid) {
					t.Errorf("own slot %d not occupied while held", tid)
					r.Release(tid)
					return
				}
				r.Release(tid)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: the summaries are exact again.
	for s := 0; s < shards; s++ {
		if live := smap.ShardLive(s); live != 0 {
			t.Fatalf("shard %d live = %d after churn quiesced, want 0", s, live)
		}
	}
	for tid := 0; tid < capacity; tid++ {
		if smap.SlotOccupied(tid) {
			t.Fatalf("slot %d occupied after every goroutine released", tid)
		}
	}
}

// TestReleaseHandleRequiresQuiescence is the regression mirroring the PR 3
// quiescent-retire contract: releasing a slot whose announcement is still
// active must panic, for the epoch schemes (active announcement) and hazard
// pointers (held protection slot) alike.
func TestReleaseHandleRequiresQuiescence(t *testing.T) {
	for name, build := range map[string]func(n int, sink core.FreeSink[rec]) core.Reclaimer[rec]{
		"ebr":    func(n int, s core.FreeSink[rec]) core.Reclaimer[rec] { return epochSchemes(n, s)["ebr"] },
		"qsbr":   func(n int, s core.FreeSink[rec]) core.Reclaimer[rec] { return epochSchemes(n, s)["qsbr"] },
		"debra":  func(n int, s core.FreeSink[rec]) core.Reclaimer[rec] { return epochSchemes(n, s)["debra"] },
		"debra+": func(n int, s core.FreeSink[rec]) core.Reclaimer[rec] { return epochSchemes(n, s)["debra+"] },
		"hp":     func(n int, s core.FreeSink[rec]) core.Reclaimer[rec] { return hp.New[rec](n, s) },
	} {
		t.Run(name, func(t *testing.T) {
			alloc := arena.NewBump[rec](2, 0)
			p := pool.New[rec](2, alloc)
			mgr := core.NewRecordManager[rec](alloc, p, build(2, p))

			h := mgr.AcquireHandle()
			if name == "hp" {
				// HP has no epoch announcement; "non-quiescent" means a held
				// protection slot.
				h.Protect(mgr.Allocate(h.Tid()))
			} else {
				h.LeaveQstate()
			}
			if !panics(func() { mgr.ReleaseHandle(h) }) {
				t.Fatal("ReleaseHandle of a non-quiescent slot did not panic")
			}
			h.EnterQstate() // quiesce (HP: releases every slot)
			mgr.ReleaseHandle(h)

			// The slot is reusable after a legal release.
			h2 := mgr.AcquireHandle()
			if h2.Tid() != h.Tid() {
				t.Fatalf("expected slot %d to be reused, got %d", h.Tid(), h2.Tid())
			}
			mgr.ReleaseHandle(h2)
		})
	}
}

// TestAcquireReleaseRetireDrains: records retired through a dynamically
// bound slot are flushed at release (nothing is stranded in the slot's
// retire buffer) and fully reclaimed by Close, across slot reuse.
func TestAcquireReleaseRetireDrains(t *testing.T) {
	for _, name := range []string{"ebr", "qsbr", "debra", "debra+"} {
		t.Run(name, func(t *testing.T) {
			alloc := arena.NewBump[rec](2, 0)
			p := pool.New[rec](2, alloc)
			r := epochSchemes(2, p)[name]
			mgr := core.NewRecordManager[rec](alloc, p, r, core.WithRetireBatching(2, 32))

			const rounds = 5
			for i := 0; i < rounds; i++ {
				h := mgr.AcquireHandle()
				h.LeaveQstate()
				for j := 0; j < 11; j++ { // a partial batch stays parked
					h.Retire(h.Allocate())
				}
				h.EnterQstate()
				mgr.ReleaseHandle(h)
				if got := mgr.Stats().RetirePending; got != 0 {
					t.Fatalf("round %d: RetirePending = %d after release, want 0 (release must flush)", i, got)
				}
			}
			mgr.Close()
			st := mgr.Stats()
			if st.Reclaimer.Retired != rounds*11 {
				t.Fatalf("Retired = %d want %d", st.Reclaimer.Retired, rounds*11)
			}
			if st.Reclaimer.Freed != st.Reclaimer.Retired || st.Unreclaimed != 0 {
				t.Fatalf("after Close: retired=%d freed=%d unreclaimed=%d",
					st.Reclaimer.Retired, st.Reclaimer.Freed, st.Unreclaimed)
			}
		})
	}
}

// TestStaticClaimBlocksAcquire: the two binding styles compose on one
// manager — tid-based wiring claims slots permanently, AcquireHandle hands
// out the rest.
func TestStaticClaimBlocksAcquire(t *testing.T) {
	alloc := arena.NewBump[rec](3, 0)
	p := pool.New[rec](3, alloc)
	mgr := core.NewRecordManager[rec](alloc, p, epochSchemes(3, p)["debra"])

	mgr.Handle(0) // static claim
	h1 := mgr.AcquireHandle()
	h2 := mgr.AcquireHandle()
	if h1.Tid() == 0 || h2.Tid() == 0 || h1.Tid() == h2.Tid() {
		t.Fatalf("acquired tids %d, %d must be distinct and skip the static slot 0", h1.Tid(), h2.Tid())
	}
	//lint:allow handlepair exhaustion probe: ok is asserted false, so there is no handle to release
	if _, ok := mgr.TryAcquireHandle(); ok {
		t.Fatal("TryAcquireHandle succeeded with all slots taken")
	}
	//lint:allow handlepair the acquire is asserted to panic; no handle is ever produced
	if !panics(func() { mgr.AcquireHandle() }) {
		t.Fatal("AcquireHandle did not panic on exhaustion")
	}
	mgr.ReleaseHandle(h1)
	mgr.ReleaseHandle(h2)
}
