package core

import (
	"sync"
	"testing"
)

func TestCounterSingleWriter(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero Counter loads %d", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("after Inc+Add(41): %d, want 42", got)
	}
	c.Add(-2)
	if got := c.Load(); got != 40 {
		t.Fatalf("after Add(-2): %d, want 40", got)
	}
	c.Store(7)
	if got := c.Load(); got != 7 {
		t.Fatalf("after Store(7): %d, want 7", got)
	}
}

// TestCounterReadersRaceWriter is the Stats() contract under -race: one
// owner Adds while concurrent readers Load. Readers must observe coherent,
// monotonically consistent values and the detector must stay quiet (the
// owner's plain read of its own last store races nothing; the publication is
// an atomic store).
func TestCounterReadersRaceWriter(t *testing.T) {
	var c Counter
	const n = 100000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := c.Load()
				if v < prev || v > n {
					t.Errorf("reader observed %d after %d (max %d)", v, prev, n)
					return
				}
				prev = v
			}
		}()
	}
	for i := 0; i < n; i++ {
		c.Inc()
	}
	close(stop)
	wg.Wait()
	if got := c.Load(); got != n {
		t.Fatalf("final value %d, want %d", got, n)
	}
}

// TestCounterOwnershipMigration models the shutdown drains: the owner
// goroutine counts, is joined, and a drainer continues the same counter —
// single-writer at every instant, handed over across a happens-before edge.
func TestCounterOwnershipMigration(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Inc()
		}
	}()
	<-done // the join: ownership migrates here
	c.Add(500)
	if got := c.Load(); got != 1500 {
		t.Fatalf("after migration: %d, want 1500", got)
	}
}
