package core

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// This guard enforces the hot-path counter contract: per-thread statistics
// counters in the Record Manager stack (the reclamation schemes, the pool,
// the allocators, core itself, and the data structures' operation counters
// under internal/ds) must be single-writer core.Counter cells,
// never atomic.Int64 — an atomic Add is a LOCK-prefixed read-modify-write
// paid several times per data structure operation. The guard is textual on
// purpose: it fails the moment someone re-declares one of the known
// per-thread stat fields as atomic.Int64, before any benchmark can notice.
//
// Multi-writer cells (epoch words, announcement slots, shared-stack depth,
// pool.Discard's one-cell sink) legitimately remain atomic; they are not in
// the guarded name set.

// guardedPackages are the hot-path package directories, relative to this
// package's directory (internal/core).
var guardedPackages = []string{
	".",
	"../pool",
	"../arena",
	"../reclaim/debra",
	"../reclaim/debraplus",
	"../reclaim/ebr",
	"../reclaim/qsbr",
	"../reclaim/hp",
	"../reclaim/none",
	"../ds/hashmap",
	"../ds/bst",
	"../ds/queue",
	"../ds/skiplist",
}

// statFieldPattern matches a struct field declaring one of the known
// per-thread statistics counters with an atomic.Int64 type.
var statFieldPattern = regexp.MustCompile(
	`^\s*(retired|freed|scans|epochAdvances|grace|neutralizations|selfNeutralized|` +
		`reused|fromAllocator|toShared|fromShared|allocated|deallocated|slabs|` +
		`pending|enqueued|drained|handoff|` +
		`restarts|unlinks|resizes|dummies|helps|recov)\s+atomic\.Int64\b`)

// threadStructPattern matches the declarations of the per-thread state
// carriers the guard applies to. Fields outside these structs (a scheme's
// global epoch/grace clock, announcement slots, shard summaries) are
// multi-thread synchronisation words and legitimately atomic.
var threadStructPattern = regexp.MustCompile(
	`^type\s+(thread|threadStats|poolThread|bumpThread|heapThread|retireBuf|asyncCounters)(\[[^\]]*\])?\s+struct\b`)

// typeDeclPattern matches any type declaration (used to leave a guarded
// struct's scope).
var typeDeclPattern = regexp.MustCompile(`^type\s+\w+`)

// counterFieldPattern matches a field using the sanctioned type; counted to
// prove the guard is scanning real declarations, not an empty set.
var counterFieldPattern = regexp.MustCompile(`\b(core\.)?Counter\b`)

func TestNoAtomicRMWOnPerThreadStatCounters(t *testing.T) {
	counterDecls := 0
	for _, dir := range guardedPackages {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("opening %s: %v", path, err)
			}
			sc := bufio.NewScanner(f)
			lineNo := 0
			inThreadStruct := false
			for sc.Scan() {
				lineNo++
				line := sc.Text()
				switch {
				case threadStructPattern.MatchString(line):
					inThreadStruct = true
				case typeDeclPattern.MatchString(line) || strings.HasPrefix(line, "}"):
					inThreadStruct = false
				}
				if inThreadStruct && statFieldPattern.MatchString(line) {
					t.Errorf("%s:%d declares a per-thread stat counter as atomic.Int64 (use core.Counter):\n\t%s",
						path, lineNo, strings.TrimSpace(line))
				}
				if counterFieldPattern.MatchString(line) {
					counterDecls++
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("scanning %s: %v", path, err)
			}
			f.Close()
		}
	}
	// If this trips, the Counter type was renamed or removed and the guard
	// above is probably matching nothing — update both together.
	if counterDecls < 10 {
		t.Fatalf("guard sanity check: found only %d core.Counter references across the hot-path packages; expected the per-thread stats to use core.Counter", counterDecls)
	}
}
