package core_test

import (
	"strings"
	"testing"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/none"
)

type node struct {
	key  int64
	next *node
}

func TestRecordManagerComposition(t *testing.T) {
	const n = 2
	alloc := arena.NewBump[node](n, 64)
	pl := pool.New[node](n, alloc)
	rec := debra.New[node](n, pl, debra.WithIncrThresh(1))
	m := core.NewRecordManager[node](alloc, pl, rec)

	if m.Allocator() != core.Allocator[node](alloc) || m.Pool() == nil || m.Reclaimer() == nil {
		t.Fatal("accessors returned unexpected components")
	}
	if m.NeedsPerRecordProtection() {
		t.Fatal("DEBRA must not require per-record protection")
	}
	if m.SupportsCrashRecovery() {
		t.Fatal("DEBRA does not support crash recovery")
	}

	m.LeaveQstate(0)
	r := m.Allocate(0)
	if r == nil {
		t.Fatal("Allocate returned nil")
	}
	if !m.Protect(0, r) || !m.IsProtected(0, r) {
		t.Fatal("protect path failed")
	}
	m.Unprotect(0, r)
	m.RProtect(0, r)
	m.RUnprotectAll(0)
	m.Checkpoint(0)
	m.Retire(0, r)
	m.EnterQstate(0)
	if !m.IsQuiescent(0) {
		t.Fatal("not quiescent after EnterQstate")
	}

	stats := m.Stats()
	if stats.Reclaimer.Retired != 1 {
		t.Fatalf("Retired=%d want 1", stats.Reclaimer.Retired)
	}
	if stats.Alloc.Allocated != 1 {
		t.Fatalf("Allocated=%d want 1", stats.Alloc.Allocated)
	}
}

func TestRecordManagerWithoutPool(t *testing.T) {
	alloc := arena.NewBump[node](1, 64)
	m := core.NewRecordManager[node](alloc, nil, none.New[node](1))
	r := m.Allocate(0)
	if r == nil {
		t.Fatal("Allocate returned nil")
	}
	m.Deallocate(0, r)
	if m.Pool() != nil {
		t.Fatal("Pool should be nil")
	}
	if got := m.Stats().Alloc.Deallocated; got != 1 {
		t.Fatalf("Deallocated=%d want 1", got)
	}
}

func TestRecordManagerDeallocateUsesPool(t *testing.T) {
	alloc := arena.NewBump[node](1, 64)
	pl := pool.New[node](1, alloc)
	m := core.NewRecordManager[node](alloc, pl, none.New[node](1))
	r := m.Allocate(0)
	m.Deallocate(0, r)
	if got := m.Allocate(0); got != r {
		t.Fatal("deallocated record was not recycled through the pool")
	}
}

func TestNewRecordManagerValidation(t *testing.T) {
	alloc := arena.NewBump[node](1, 64)
	if !panics(func() { core.NewRecordManager[node](nil, nil, none.New[node](1)) }) {
		t.Fatal("expected panic for nil allocator")
	}
	if !panics(func() { core.NewRecordManager[node](alloc, nil, nil) }) {
		t.Fatal("expected panic for nil reclaimer")
	}
}

func TestRenderFigureTwo(t *testing.T) {
	props := []core.Properties{
		none.New[node](1).Props(),
		debra.New[node](1, pool.NewDiscard[node]()).Props(),
	}
	props = append(props, core.ReferenceProperties()...)
	out := core.RenderFigureTwo(props)
	for _, want := range []string{"scheme", "DEBRA", "None", "RC", "B&C", "QS", "OA", "fault tolerant"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(props)+2 { // header + separator + rows
		t.Fatalf("expected %d lines, got %d:\n%s", len(props)+2, len(lines), out)
	}
}

func TestProgressString(t *testing.T) {
	cases := map[core.Progress]string{
		core.ProgressBlocking:            "Blocking",
		core.ProgressLockFree:            "L",
		core.ProgressLockFreeConditional: "L (conditional)",
		core.ProgressWaitFree:            "W",
		core.ProgressWaitFreeSignal:      "W (signal)",
		core.Progress(99):                "Progress(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Fatalf("Progress(%d).String()=%q want %q", int(p), got, want)
		}
	}
}

func TestPropertiesRowMatchesHeader(t *testing.T) {
	for _, p := range core.ReferenceProperties() {
		if len(p.Row()) != len(core.FigureTwoHeader()) {
			t.Fatalf("row length mismatch for %s", p.Scheme)
		}
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}
