// Package core defines the Record Manager abstraction from Section 6 of the
// paper: the first Allocator-style abstraction suitable for lock-free
// programming. A data structure is written once against the Reclaimer,
// Pool and Allocator interfaces and any safe-memory-reclamation scheme
// (hazard pointers, classical EBR, DEBRA, DEBRA+, ...) can be plugged in by
// changing a single constructor call.
//
// Terminology follows the paper's record lifecycle (Figure 1):
//
//	unallocated -> allocate -> uninitialized -> insert -> in data structure
//	            -> remove (retire) -> retired -> safe to free -> reclaimed
//
// A Reclaimer decides when a retired record is safe to free; a Pool decides
// whether a freed record is reused or handed back to the Allocator; the
// Allocator is the ultimate source and sink of records.
package core

import "repro/internal/blockbag"

// Reclaimer is the safe-memory-reclamation component of a Record Manager.
// All methods are invoked with the dense thread id (0 <= tid < n) of the
// calling worker; a Reclaimer instance serves a fixed set of n threads.
//
// The operation set is the union of what the schemes discussed in the paper
// need (Section 6): epoch-style quiescence (LeaveQstate/EnterQstate),
// hazard-pointer-style per-record protection (Protect/Unprotect/IsProtected),
// retiring (Retire), and the recovery protection used by DEBRA+
// (RProtect/RUnprotectAll/IsRProtected). Schemes implement unused operations
// as cheap no-ops so that data-structure code can call them unconditionally,
// or consult Props() once and skip the per-record calls entirely.
type Reclaimer[T any] interface {
	// Name returns a short identifier such as "debra", "debra+", "hp".
	Name() string

	// Props describes the scheme's qualitative properties (Figure 2).
	Props() Properties

	// LeaveQstate announces that thread tid is starting a data structure
	// operation (leaving its quiescent state). It must be called at the
	// beginning of every operation. The return value reports whether the
	// thread observed (and announced) a new epoch, which some callers use
	// for instrumentation; most ignore it.
	LeaveQstate(tid int) bool

	// EnterQstate announces that thread tid has finished its operation and
	// holds no pointers to records of the data structure.
	EnterQstate(tid int)

	// IsQuiescent reports whether thread tid is currently quiescent.
	IsQuiescent(tid int) bool

	// Retire hands the reclaimer a record that has been removed from the
	// data structure by thread tid. The record will be freed (passed to the
	// free sink) once no thread can be holding a pointer to it.
	Retire(tid int, rec *T)

	// Protect announces that thread tid may access rec. For hazard-pointer
	// style schemes this publishes an announcement and issues the required
	// fence; the caller must afterwards validate that rec is still
	// reachable (e.g. by re-reading the pointer it was loaded from) and
	// call Unprotect/restart if not. Epoch-based schemes return true
	// without doing anything. The bool result is false only when the
	// scheme itself can already tell the protection failed.
	Protect(tid int, rec *T) bool

	// Unprotect revokes a previous Protect of rec by thread tid.
	Unprotect(tid int, rec *T)

	// IsProtected reports whether thread tid currently protects rec.
	IsProtected(tid int, rec *T) bool

	// RProtect announces a recovery hazard pointer to rec (DEBRA+ only;
	// a no-op for other schemes). Recovery protections survive
	// neutralization and are released with RUnprotectAll.
	RProtect(tid int, rec *T)

	// RUnprotectAll releases all recovery protections held by thread tid.
	RUnprotectAll(tid int)

	// IsRProtected reports whether thread tid holds a recovery protection
	// for rec. Schemes without crash recovery always return false.
	IsRProtected(tid int, rec *T) bool

	// SupportsCrashRecovery reports whether the scheme neutralizes stalled
	// threads and therefore requires the data structure to provide recovery
	// code (the paper's supportsCrashRecovery predicate). It mirrors
	// Props().FaultTolerant for the schemes in this module but is kept as a
	// separate method because data-structure fast paths branch on it.
	SupportsCrashRecovery() bool

	// Checkpoint gives the reclaimer an opportunity to deliver a pending
	// neutralization signal to thread tid. Data structure bodies call it at
	// least once per search-loop iteration. It is a no-op for every scheme
	// except DEBRA+, where it may panic with a neutralization token that
	// the operation wrapper recovers (the Go analogue of siglongjmp).
	Checkpoint(tid int)

	// Stats returns a snapshot of the reclaimer's counters.
	Stats() Stats
}

// BlockReclaimer is the optional batched-retirement extension of the
// Reclaimer contract: schemes that keep their limbo state in block bags can
// accept a whole detached full block of retired records in O(1) (a block
// splice, cf. blockbag.Bag.AddBlock) instead of one Retire call per record.
// The Record Manager's deferred-retire path hands over full blocks through
// this interface when the scheme provides it and falls back to per-record
// Retire calls otherwise (see RetireChain), so existing schemes compile and
// run unchanged.
type BlockReclaimer[T any] interface {
	Reclaimer[T]
	// RetireBlock hands the reclaimer one detached FULL block of records
	// retired by thread tid; ownership of that block transfers to the
	// reclaimer. In exchange the scheme returns an empty block from its own
	// block caches when one is available (nil otherwise), which the caller
	// recycles into the buffer the batch came from — at steady state blocks
	// circulate between the retire buffers, the limbo bags and the free
	// sink without ever being reallocated, preserving the blockbag design's
	// zero-allocation property.
	RetireBlock(tid int, blk *blockbag.Block[T]) *blockbag.Block[T]
}

// RetirePinner is the pin-while-retiring extension of the Reclaimer
// contract. The epoch schemes' Retire/RetireBlock paths are only safe while
// the calling tid is non-quiescent: the thread's active announcement is what
// bounds how far the global epoch can run ahead of the epoch a retire
// observed, and therefore which limbo bag a concurrent advance winner may
// drain. A retire from a quiescent context has no such pin — its observed
// epoch can be arbitrarily stale by the time the record lands in a bag, which
// is exactly the window an advance winner's drain races. Those schemes
// therefore panic on a quiescent Retire and expose this entry point instead:
// PinRetire announces the thread as an active retirer (without the
// scan/advance/rotation work of a full LeaveQstate, and without the
// neutralization side effects of an operation boundary), Retire/RetireBlock
// are safe in between, and UnpinRetire returns the thread to its quiescent
// state. Schemes with no epoch state (hazard pointers, the leaking baseline)
// implement both as no-ops.
//
// PinRetire/UnpinRetire pairs must not be issued from inside an operation
// (between LeaveQstate and EnterQstate): re-announcing mid-operation would
// release the operation's own epoch pin while it may still hold references.
// Callers that may be either pinned or quiescent consult IsQuiescent first,
// as RecordManager.FlushRetired does.
type RetirePinner interface {
	// PinRetire marks tid as an active (non-quiescent) retirer.
	PinRetire(tid int)
	// UnpinRetire reverses PinRetire, returning tid to quiescence.
	UnpinRetire(tid int)
}

// LimboDrainer is the quiescent-shutdown extension of the Reclaimer
// contract: DrainLimbo frees every record still parked in the scheme's limbo
// structures, returning the number freed. It is only safe once every
// participant has quiesced for good — the caller must guarantee that no
// thread holds references to retired records and that no further operations
// begin (the schemes verify the announced quiescence of every thread and
// panic loudly when the precondition is violated, but they cannot see
// references). Records that are still individually protected (hazard
// pointers, DEBRA+ recovery protections) are skipped, not freed.
type LimboDrainer interface {
	// DrainLimbo frees the drainable limbo of every thread/shard; tid is the
	// dense id charged for the sink hand-off.
	DrainLimbo(tid int) int64
}

// RetireChain retires every record of a detached block chain through r,
// using the O(1) RetireBlock path for full blocks when the scheme supports
// it and per-record Retire calls otherwise (and for any non-full block).
// It returns the number of records retired. This is the default adapter for
// callers without a block pool of their own; spare blocks the scheme hands
// back are given to pool when non-nil and dropped otherwise.
func RetireChain[T any](r Reclaimer[T], tid int, chain *blockbag.Block[T], pool *blockbag.BlockPool[T]) int {
	br, native := r.(BlockReclaimer[T])
	n := 0
	for blk := chain; blk != nil; {
		next := blk.Next()
		n += blk.Len()
		if native && blk.Full() {
			if spare := br.RetireBlock(tid, blk); spare != nil && pool != nil {
				pool.Put(spare)
			}
		} else {
			for i := 0; i < blk.Len(); i++ {
				r.Retire(tid, blk.Record(i))
			}
		}
		blk = next
	}
	return n
}

// FreeChain hands every record of a detached block chain to sink — whole
// blocks when blockSink is non-nil (ownership of the blocks transfers with
// them), record-at-a-time otherwise, recycling the emptied blocks into pool
// when one is supplied. Returns the number of records freed. This is the
// shared chain-freeing idiom of the schemes' drain paths.
func FreeChain[T any](sink FreeSink[T], blockSink BlockFreeSink[T], pool *blockbag.BlockPool[T], tid int, chain *blockbag.Block[T]) int64 {
	if chain == nil {
		return 0
	}
	n := int64(blockbag.ChainLen(chain))
	if blockSink != nil {
		blockSink.FreeBlocks(tid, chain)
		return n
	}
	for blk := chain; blk != nil; {
		next := blk.Next()
		for i := 0; i < blk.Len(); i++ {
			sink.Free(tid, blk.Record(i))
		}
		if pool != nil {
			pool.Put(blk)
		}
		blk = next
	}
	return n
}

// FreeSink receives records that a Reclaimer has determined are safe to
// free. An object Pool is the usual sink (records get reused); experiment 1
// of the paper uses a counting sink that discards records to measure
// reclamation overhead in isolation.
type FreeSink[T any] interface {
	// Free hands a single reclaimed record to the sink.
	Free(tid int, rec *T)
}

// BlockFreeSink is an optional optimisation interface: sinks that store
// records in block bags can accept whole detached blocks in O(1), which is
// how DEBRA moves the contents of a limbo bag to the pool without touching
// individual records.
type BlockFreeSink[T any] interface {
	FreeSink[T]
	// FreeBlocks accepts a detached chain of full blocks.
	FreeBlocks(tid int, chain *blockbag.Block[T])
}

// Allocator is the component that ultimately creates and destroys records.
type Allocator[T any] interface {
	// Allocate returns a new, zeroed record for thread tid.
	Allocate(tid int) *T
	// Deallocate returns a record to the operating system / runtime.
	Deallocate(tid int, rec *T)
	// Stats returns allocation counters (total records and bytes handed
	// out), which the harness uses to reproduce the paper's Figure 9
	// memory-footprint measurement.
	Stats() AllocStats
}

// Pool sits between the Reclaimer and the Allocator: freed records are
// recycled through the pool and reused by subsequent Allocate calls, and the
// pool decides when to fall back to (or unload records onto) the Allocator.
type Pool[T any] interface {
	FreeSink[T]
	// Allocate returns a record for thread tid, reusing a pooled record
	// when one is available and calling the Allocator otherwise.
	Allocate(tid int) *T
	// Stats returns pool counters.
	Stats() PoolStats
}

// ThreadDrainer is the slot-release extension of the Pool contract: pools
// that keep per-thread private bags can hand a released slot's cached
// records back to their shared structures, so records freed by a departed
// goroutine are reusable by every other thread instead of stranded until
// the slot is reacquired. DrainThread is called by the slot's (former)
// owner, from a quiescent context, as part of ReleaseHandle.
type ThreadDrainer interface {
	// DrainThread moves thread tid's privately cached records to the pool's
	// shared structures (whole blocks; a sub-block tail may remain private).
	DrainThread(tid int)
}

// Stats is a snapshot of a Reclaimer's counters. All values are cumulative
// since construction except Limbo, which is instantaneous.
type Stats struct {
	Retired         int64 // records passed to Retire
	Freed           int64 // records handed to the free sink
	Limbo           int64 // records currently retired but not yet freed
	EpochAdvances   int64 // successful epoch CASes (epoch-based schemes)
	Scans           int64 // full scans of announcements / hazard pointers
	Neutralizations int64 // signals sent (DEBRA+ only)
	Restarts        int64 // operations restarted because of the scheme (HP)
}

// AllocStats is a snapshot of an Allocator's counters.
type AllocStats struct {
	Allocated      int64 // records handed out
	Deallocated    int64 // records returned
	AllocatedBytes int64 // bytes handed out (bump-pointer movement)
}

// PoolStats is a snapshot of a Pool's counters.
type PoolStats struct {
	Reused        int64 // Allocate calls served from the pool
	FromAllocator int64 // Allocate calls that fell through to the Allocator
	Freed         int64 // records received via Free/FreeBlocks
	ToShared      int64 // records moved to the shared bag
	FromShared    int64 // records taken from the shared bag
}
