package core_test

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/ebr"
)

func TestShardMapBlockPlacement(t *testing.T) {
	m := core.NewShardMap(8, core.ShardSpec{Shards: 4, Placement: core.PlaceBlock})
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d want 4", m.Shards())
	}
	// Block placement keeps contiguous tids together.
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for tid, s := range want {
		if got := m.ShardOf(tid); got != s {
			t.Fatalf("ShardOf(%d) = %d want %d", tid, got, s)
		}
	}
	total := 0
	for s := 0; s < m.Shards(); s++ {
		members := m.Members(s)
		total += len(members)
		for _, tid := range members {
			if m.ShardOf(tid) != s {
				t.Fatalf("member %d of shard %d maps to shard %d", tid, s, m.ShardOf(tid))
			}
		}
	}
	if total != 8 {
		t.Fatalf("members cover %d tids, want 8", total)
	}
}

func TestShardMapStripePlacement(t *testing.T) {
	m := core.NewShardMap(8, core.ShardSpec{Shards: 3, Placement: core.PlaceStripe})
	for tid := 0; tid < 8; tid++ {
		if got := m.ShardOf(tid); got != tid%3 {
			t.Fatalf("ShardOf(%d) = %d want %d", tid, got, tid%3)
		}
	}
}

func TestShardMapUnevenBlockPlacementIsBalanced(t *testing.T) {
	m := core.NewShardMap(7, core.ShardSpec{Shards: 3})
	for s := 0; s < 3; s++ {
		if l := len(m.Members(s)); l < 2 || l > 3 {
			t.Fatalf("shard %d has %d members, want 2 or 3", s, l)
		}
	}
}

func TestShardMapClamping(t *testing.T) {
	// Zero / oversized shard counts clamp to [1, n].
	if got := core.NewShardMap(4, core.ShardSpec{}).Shards(); got != 1 {
		t.Fatalf("zero spec: %d shards, want 1", got)
	}
	if got := core.NewShardMap(2, core.ShardSpec{Shards: 64}).Shards(); got != 2 {
		t.Fatalf("oversized: %d shards, want 2", got)
	}
	if got := core.NewShardMap(3, core.ShardSpec{Shards: 2}).Spec().Placement; got != core.PlaceBlock {
		t.Fatalf("default placement = %q want %q", got, core.PlaceBlock)
	}
}

func TestParsePlacement(t *testing.T) {
	for name, want := range map[string]core.ShardPlacement{
		"": core.PlaceBlock, "block": core.PlaceBlock, "stripe": core.PlaceStripe,
	} {
		got, err := core.ParsePlacement(name)
		if err != nil || got != want {
			t.Fatalf("ParsePlacement(%q) = %q, %v", name, got, err)
		}
	}
	if _, err := core.ParsePlacement("socket"); err == nil {
		t.Fatal("ParsePlacement accepted an unknown policy")
	}
}

// chainOf builds a detached chain of full blocks holding n*BlockSize records.
func chainOf(t *testing.T, blocks int) *blockbag.Block[node] {
	t.Helper()
	bag := blockbag.New[node](nil)
	for i := 0; i < blocks*blockbag.BlockSize; i++ {
		bag.Add(&node{key: int64(i)})
	}
	chain := bag.DetachAllFullBlocks()
	if blockbag.ChainLen(chain) != blocks*blockbag.BlockSize {
		t.Fatalf("chain holds %d records", blockbag.ChainLen(chain))
	}
	return chain
}

func TestRetireChainNativeAndFallback(t *testing.T) {
	// Native path: EBR implements BlockReclaimer. The retiring thread is
	// quiescent, so the hand-off must happen inside a pin-while-retiring
	// window (the epoch schemes reject an unpinned retire).
	sinkN := pool.NewDiscard[node]()
	rN := ebr.New[node](1, sinkN)
	rN.PinRetire(0)
	if n := core.RetireChain[node](rN, 0, chainOf(t, 3), nil); n != 3*blockbag.BlockSize {
		t.Fatalf("native RetireChain retired %d records", n)
	}
	rN.UnpinRetire(0)
	if got := rN.Stats().Retired; got != int64(3*blockbag.BlockSize) {
		t.Fatalf("native: Retired = %d", got)
	}

	// Fallback path: a reclaimer hidden behind a wrapper that strips the
	// BlockReclaimer interface must still retire every record.
	rF := ebr.New[node](1, pool.NewDiscard[node]())
	wrapped := plainReclaimer{rF}
	rF.PinRetire(0)
	if n := core.RetireChain[node](wrapped, 0, chainOf(t, 2), nil); n != 2*blockbag.BlockSize {
		t.Fatalf("fallback RetireChain retired %d records", n)
	}
	rF.UnpinRetire(0)
	if got := rF.Stats().Retired; got != int64(2*blockbag.BlockSize) {
		t.Fatalf("fallback: Retired = %d", got)
	}
}

// plainReclaimer hides the concrete type so only core.Reclaimer is visible.
type plainReclaimer struct{ core.Reclaimer[node] }

func TestRecordManagerRetireBatching(t *testing.T) {
	const n = 2
	const batch = blockbag.BlockSize
	alloc := arena.NewBump[node](n, 0)
	p := pool.New[node](n, alloc)
	rec := debra.New[node](n, p, debra.WithCheckThresh(1), debra.WithIncrThresh(1))
	mgr := core.NewRecordManager[node](alloc, p, rec, core.WithRetireBatching(n, batch))
	if mgr.RetireBatchSize() != batch {
		t.Fatalf("RetireBatchSize = %d", mgr.RetireBatchSize())
	}

	// Retire batch-1 records: everything parks in the buffer, nothing
	// reaches the reclaimer.
	mgr.LeaveQstate(0)
	for i := 0; i < batch-1; i++ {
		mgr.Retire(0, mgr.Allocate(0))
	}
	if got := rec.Stats().Retired; got != 0 {
		t.Fatalf("reclaimer saw %d retires before the batch filled", got)
	}
	if got := mgr.Stats().RetirePending; got != batch-1 {
		t.Fatalf("RetirePending = %d want %d", got, batch-1)
	}
	// The batch-th retire hands the whole block over.
	mgr.Retire(0, mgr.Allocate(0))
	if got := rec.Stats().Retired; got != batch {
		t.Fatalf("reclaimer saw %d retires after the batch filled, want %d", got, batch)
	}
	if got := mgr.Stats().RetirePending; got != 0 {
		t.Fatalf("RetirePending = %d after flush", got)
	}
	mgr.EnterQstate(0)

	// FlushRetired drains a partial buffer on demand.
	mgr.LeaveQstate(1)
	mgr.Retire(1, mgr.Allocate(1))
	mgr.Retire(1, mgr.Allocate(1))
	mgr.FlushRetired(1)
	mgr.EnterQstate(1)
	if got := rec.Stats().Retired; got != batch+2 {
		t.Fatalf("after FlushRetired: reclaimer saw %d retires, want %d", got, batch+2)
	}
	if got := mgr.Stats().RetirePending; got != 0 {
		t.Fatalf("RetirePending = %d after explicit flush", got)
	}
}

func TestRecordManagerBatchingDisabledByDefault(t *testing.T) {
	alloc := arena.NewBump[node](1, 0)
	p := pool.New[node](1, alloc)
	rec := debra.New[node](1, p)
	mgr := core.NewRecordManager[node](alloc, p, rec)
	mgr.LeaveQstate(0)
	mgr.Retire(0, mgr.Allocate(0))
	mgr.EnterQstate(0)
	if got := rec.Stats().Retired; got != 1 {
		t.Fatalf("direct retire did not reach the reclaimer (saw %d)", got)
	}
	// FlushRetired is a no-op without batching.
	mgr.FlushRetired(0)
}
