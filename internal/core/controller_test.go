package core_test

// Unit tests for the adaptive controller's three control laws. Every test
// drives Step() directly on a never-started controller — the "clock" is the
// step counter, so there are no wall-time sleeps and no timing sensitivity:
// the same sequence of observations always produces the same sequence of
// lever positions.

import (
	"testing"

	"repro/internal/core"
)

// fakeScaler is a ReclaimerScaler the reclaimer lever can move without an
// async pipeline behind it.
type fakeScaler struct {
	active, pool int
	sets         int // SetActiveReclaimers call count
}

func (s *fakeScaler) SetActiveReclaimers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.pool {
		n = s.pool
	}
	s.active = n
	s.sets++
	return n
}

func (s *fakeScaler) ActiveReclaimers() int { return s.active }
func (s *fakeScaler) Reclaimers() int       { return s.pool }

// newShardedRegistry builds a capacity-slot registry over shards shards with
// an attached map (so the controller's lever (a) has something to move).
func newShardedRegistry(t *testing.T, capacity, shards int) *core.SlotRegistry {
	t.Helper()
	smap := core.NewShardMap(capacity, core.ShardSpec{Shards: shards})
	r := core.NewSlotRegistry(capacity, smap)
	smap.AttachRegistry(r)
	return r
}

func TestControllerRequiresRegistryAndObserve(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	obs := func() core.ControllerSignal { return core.ControllerSignal{} }
	if !panics(func() { core.NewController(core.ControllerConfig{}, nil, nil, 0, nil, obs) }) {
		t.Fatal("NewController with a nil registry did not panic")
	}
	if !panics(func() { core.NewController(core.ControllerConfig{}, r, nil, 0, nil, nil) }) {
		t.Fatal("NewController with a nil observe func did not panic")
	}
}

// TestControllerShardLever: the effective shard count tracks live occupancy
// at the registry's slots-per-shard density — ceil(live*shards/capacity),
// clamped to [1, shards].
func TestControllerShardLever(t *testing.T) {
	r := newShardedRegistry(t, 8, 4) // 2 slots per shard
	c := core.NewController(core.ControllerConfig{}, r, nil, 0, nil,
		func() core.ControllerSignal { return core.ControllerSignal{} })

	if got := r.EffectiveShards(); got != 4 {
		t.Fatalf("EffectiveShards = %d before any step, want 4 (all)", got)
	}
	c.Step() // live 0 -> minimum of one preferred shard
	if got := r.EffectiveShards(); got != 1 {
		t.Fatalf("EffectiveShards = %d with live=0, want 1", got)
	}
	var tids []int
	for i := 0; i < 3; i++ {
		tid, ok := r.Acquire()
		if !ok {
			t.Fatalf("Acquire #%d failed", i)
		}
		tids = append(tids, tid)
	}
	c.Step() // live 3 -> ceil(3*4/8) = 2
	if got := r.EffectiveShards(); got != 2 {
		t.Fatalf("EffectiveShards = %d with live=3, want 2", got)
	}
	for i := 3; i < 8; i++ {
		tid, ok := r.Acquire()
		if !ok {
			t.Fatalf("Acquire #%d failed", i)
		}
		tids = append(tids, tid)
	}
	c.Step() // live 8 -> every shard preferred again
	if got := r.EffectiveShards(); got != 4 {
		t.Fatalf("EffectiveShards = %d with live=8, want 4", got)
	}
	// A converged controller stops deciding: the same occupancy must not
	// produce another lever write.
	before := c.Decisions()
	c.Step()
	if got := c.Decisions(); got != before {
		t.Fatalf("Decisions grew %d -> %d on a converged step", before, got)
	}
	last, ok := c.Last()
	if !ok || last.Step != 4 || last.Live != 8 || last.EffectiveShards != 4 {
		t.Fatalf("Last() = %+v, %v; want step=4 live=8 shards=4", last, ok)
	}
	for _, tid := range tids {
		r.Release(tid)
	}
	c.Step() // back to idle
	if got := r.EffectiveShards(); got != 1 {
		t.Fatalf("EffectiveShards = %d after releasing all slots, want 1", got)
	}
}

// TestControllerBatchLeverTracksRate: the AIMD lever grows toward the rate
// target (slow-start doubling far below it, additive steps near it) while
// the rate is high, and halves back when the rate collapses — settling
// within the configured bounds at both extremes.
func TestControllerBatchLeverTracksRate(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	if _, ok := r.Acquire(); !ok { // live = 1: per-thread rate == raw delta
		t.Fatal("Acquire failed")
	}
	var published []int
	var sig core.ControllerSignal
	cfg := core.ControllerConfig{MinBatch: 8, MaxBatch: 1024}
	c := core.NewController(cfg, r, nil, 8, func(b int) { published = append(published, b) },
		func() core.ControllerSignal { return sig })

	if got := c.RetireBatch(); got != 8 {
		t.Fatalf("initial RetireBatch = %d want 8", got)
	}
	// A sustained rate of 1000 retires per interval targets the ceiling
	// (4*1000 clamped to 1024). From 8 the lever must ramp monotonically:
	// doublings while far below the target, then additive steps.
	prev := 8
	doublings := 0
	for i := 0; i < 32 && c.RetireBatch() < 1024; i++ {
		sig.Retired += 1000
		c.Step()
		got := c.RetireBatch()
		if got < prev || got > 1024 {
			t.Fatalf("step %d: batch %d -> %d; must grow monotonically within bounds", i, prev, got)
		}
		if got == 2*prev {
			doublings++
		}
		prev = got
	}
	if got := c.RetireBatch(); got != 1024 {
		t.Fatalf("batch = %d after sustained high rate, want ceiling 1024", got)
	}
	if doublings < 4 {
		t.Fatalf("saw %d doublings on the ramp, want slow-start (>= 4)", doublings)
	}
	// Rate collapse: the batch halves back until it is no longer several
	// times oversized for the (floored) target — never below MinBatch.
	for i := 0; i < 16; i++ {
		c.Step() // sig.Retired unchanged: delta = 0
	}
	if got := c.RetireBatch(); got != 32 {
		// target floors at MinBatch=8; halving stops once batch <= 4*target.
		t.Fatalf("batch = %d after rate collapse, want 32", got)
	}
	for _, b := range published {
		if b < 8 || b > 1024 {
			t.Fatalf("published batch %d outside [8, 1024]", b)
		}
	}
}

// TestControllerBatchBacklogGate: a large and growing Unreclaimed backlog
// blocks the increase (growing the batch would park more memory behind a
// lagging reclamation pipeline) but a merely large, stable backlog does not
// — schemes whose steady state parks a big limbo must not pin the lever.
func TestControllerBatchBacklogGate(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	if _, ok := r.Acquire(); !ok {
		t.Fatal("Acquire failed")
	}
	var sig core.ControllerSignal
	cfg := core.ControllerConfig{MinBatch: 8, MaxBatch: 1024}
	c := core.NewController(cfg, r, nil, 64, func(int) {},
		func() core.ControllerSignal { return sig })

	// High rate, but the backlog exceeds the absolute bound (4*MaxBatch*live
	// = 4096) and grows every step: the increase must not fire.
	for i := 0; i < 5; i++ {
		sig.Retired += 1000
		sig.Unreclaimed += 10_000
		c.Step()
		if got := c.RetireBatch(); got != 64 {
			t.Fatalf("step %d: batch = %d; a growing backlog must gate the increase", i, got)
		}
	}
	// Same backlog, no longer growing: the trend half of the gate passes and
	// growth resumes.
	sig.Retired += 1000
	c.Step()
	if got := c.RetireBatch(); got != 128 {
		t.Fatalf("batch = %d with a stable backlog, want 128 (growth resumed)", got)
	}
	// The decrease is rate-driven and must ignore the backlog entirely.
	sig.Unreclaimed += 50_000
	c.Step() // delta = 0 with batch 128 > 4*MinBatch
	if got := c.RetireBatch(); got != 64 {
		t.Fatalf("batch = %d after rate collapse under backlog, want 64 (halved)", got)
	}
}

// TestControllerReclaimerLever: the active-reclaimer count grows while the
// hand-off backlog exceeds a couple of batches per active reclaimer, and
// shrinks only after several consecutive near-idle observations.
func TestControllerReclaimerLever(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	sc := &fakeScaler{active: 1, pool: 3}
	var sig core.ControllerSignal
	// No batch lever: the backlog is measured in batches of 1.
	c := core.NewController(core.ControllerConfig{}, r, sc, 0, nil,
		func() core.ControllerSignal { return sig })

	sig.HandoffPending = 100
	c.Step()
	if sc.active != 2 {
		t.Fatalf("active = %d after one loaded step, want 2", sc.active)
	}
	c.Step()
	c.Step()
	if sc.active != 3 {
		t.Fatalf("active = %d under sustained load, want pool ceiling 3", sc.active)
	}
	c.Step() // at the ceiling: no further increase
	if sc.active != 3 {
		t.Fatalf("active = %d, scaled past the pool", sc.active)
	}

	// Three idle steps are not enough to scale down...
	sig.HandoffPending = 0
	c.Step()
	c.Step()
	c.Step()
	if sc.active != 3 {
		t.Fatalf("active = %d after 3 idle steps, want 3 (patience is 4)", sc.active)
	}
	// ...and a loaded step in between resets the patience counter.
	sig.HandoffPending = 2 // neither idle (< 1 batch) nor overloaded
	c.Step()
	sig.HandoffPending = 0
	c.Step()
	c.Step()
	c.Step()
	if sc.active != 3 {
		t.Fatalf("active = %d; the idle counter must reset on a busy step", sc.active)
	}
	c.Step() // 4th consecutive idle step
	if sc.active != 2 {
		t.Fatalf("active = %d after 4 consecutive idle steps, want 2", sc.active)
	}
	for i := 0; i < 8; i++ {
		c.Step()
	}
	if sc.active != 1 {
		t.Fatalf("active = %d after a long idle stretch, want floor 1", sc.active)
	}
}

// TestControllerTrajectoryDecimation: arbitrarily long runs keep a bounded,
// uniformly spaced decision history — decimated, never truncated.
func TestControllerTrajectoryDecimation(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	c := core.NewController(core.ControllerConfig{}, r, nil, 0, nil,
		func() core.ControllerSignal { return core.ControllerSignal{} })

	if _, ok := c.Last(); ok {
		t.Fatal("Last() reported a sample before the first step")
	}
	const steps = 5000
	for i := 0; i < steps; i++ {
		c.Step()
	}
	if got := c.Steps(); got != steps {
		t.Fatalf("Steps = %d want %d", got, steps)
	}
	traj := c.Trajectory()
	if len(traj) == 0 || len(traj) > 2048 {
		t.Fatalf("trajectory length %d; want bounded (0, 2048]", len(traj))
	}
	// Uniform stride: after decimation the retained samples are evenly
	// spaced and in step order.
	stride := 0
	for i := 1; i < len(traj); i++ {
		d := traj[i].Step - traj[i-1].Step
		if d <= 0 {
			t.Fatalf("trajectory steps not increasing at %d: %d then %d", i, traj[i-1].Step, traj[i].Step)
		}
		if stride == 0 {
			stride = d
		} else if d != stride {
			t.Fatalf("non-uniform stride at %d: %d vs %d", i, d, stride)
		}
	}
	last, ok := c.Last()
	if !ok || last.Step != steps {
		t.Fatalf("Last() = step %d, %v; want %d", last.Step, ok, steps)
	}
}

// TestControllerInitialBatchClamp: a configured batch outside the AIMD
// bounds is clamped at construction and the clamped value is published to
// the buffers immediately, so the lever and the limit cells agree.
func TestControllerInitialBatchClamp(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	obs := func() core.ControllerSignal { return core.ControllerSignal{} }
	cfg := core.ControllerConfig{MinBatch: 16, MaxBatch: 256}

	var published []int
	c := core.NewController(cfg, r, nil, 4096, func(b int) { published = append(published, b) }, obs)
	if got := c.RetireBatch(); got != 256 {
		t.Fatalf("RetireBatch = %d for an oversized initial batch, want 256", got)
	}
	if len(published) != 1 || published[0] != 256 {
		t.Fatalf("published = %v; the clamped batch must be pushed at construction", published)
	}

	published = nil
	c = core.NewController(cfg, r, nil, 2, func(b int) { published = append(published, b) }, obs)
	if got := c.RetireBatch(); got != 16 {
		t.Fatalf("RetireBatch = %d for an undersized initial batch, want 16", got)
	}
	if len(published) != 1 || published[0] != 16 {
		t.Fatalf("published = %v; the clamped batch must be pushed at construction", published)
	}

	// A batch already inside the bounds is not republished.
	published = nil
	c = core.NewController(cfg, r, nil, 64, func(b int) { published = append(published, b) }, obs)
	if got := c.RetireBatch(); got != 64 {
		t.Fatalf("RetireBatch = %d want 64", got)
	}
	if len(published) != 0 {
		t.Fatalf("published = %v for an in-bounds initial batch, want none", published)
	}
}

// TestControllerStopIdempotent: Stop is safe on a controller that was never
// started, safe twice, and joins the control goroutine when there is one.
func TestControllerStopIdempotent(t *testing.T) {
	r := core.NewSlotRegistry(1, nil)
	obs := func() core.ControllerSignal { return core.ControllerSignal{} }

	c := core.NewController(core.ControllerConfig{}, r, nil, 0, nil, obs)
	c.Stop() // never started: must not hang
	c.Stop() // and must stay idempotent

	c = core.NewController(core.ControllerConfig{}, r, nil, 0, nil, obs)
	c.Start()
	c.Start() // idempotent
	c.Stop()  // joins the goroutine
	c.Stop()
}
